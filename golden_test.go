// Golden equivalence tests: every benchmark circuit is mapped in both Area
// and Delay mode, formally verified against its subject graph (the flow's
// VerifyEquivalence step runs internal/equiv), and compared against pinned
// goldens: the SHA-256 of the mapped, placed BLIF output and the paper's
// cost metrics to 1e-9. The BLIF hash catches any behavioral drift in the
// mapper — the hot-path optimizations of the cover DP must keep output
// byte-identical — while the metric goldens catch cost regressions that a
// purely functional check would miss.
//
// Refresh the goldens (only after an intentional mapper change) with
//
//	go test -run TestGolden -update-golden .
package lily_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"lily"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden.json from the current mapper output")

// goldenEntry pins one (circuit, objective) mapping outcome.
type goldenEntry struct {
	// BLIFSHA256 is the hash of the WriteMappedBLIF byte stream.
	BLIFSHA256 string `json:"blif_sha256"`
	// Gates is the mapped cell count.
	Gates int `json:"gates"`
	// The paper's cost metrics, asserted to 1e-9.
	ActiveAreaMM2 float64 `json:"active_area_mm2"`
	ChipAreaMM2   float64 `json:"chip_area_mm2"`
	WirelengthMM  float64 `json:"wirelength_mm"`
	DelayNS       float64 `json:"delay_ns"`
}

const goldenPath = "testdata/golden.json"

// goldenTol is the absolute tolerance on metric goldens. The mapper is
// deterministic, so stored values should reproduce exactly; 1e-9 allows
// only for JSON round-trip rounding of float64 values.
const goldenTol = 1e-9

// shortSkip lists the circuits skipped under -short: the four largest
// pipelines dominate the suite's wall time, and the remaining eleven keep
// the same code paths hot for quick local iteration. CI and the tier-1
// `go test ./...` run everything.
var shortSkip = map[string]bool{
	"C5315": true, "apex3": true, "apex6": true, "C3540": true,
}

func goldenKey(circuit string, obj lily.Objective) string {
	return fmt.Sprintf("%s/%s", circuit, obj)
}

// lutGoldenKey names a LUT-target golden. ASIC keys keep the historical
// two-part form so the PR 8 entries (and hashes) survive verbatim.
func lutGoldenKey(circuit string, obj lily.Objective, tgt lily.TechnologyTarget) string {
	return fmt.Sprintf("%s/%s/%s", circuit, obj, tgt)
}

func loadGoldens(t *testing.T) map[string]goldenEntry {
	t.Helper()
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read goldens (run `go test -run TestGolden -update-golden .` to create): %v", err)
	}
	var m map[string]goldenEntry
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}
	return m
}

func writeGoldens(t *testing.T, m map[string]goldenEntry) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d goldens to %s", len(m), goldenPath)
}

// mergeGoldens folds freshly computed entries into the stored golden
// file, preserving every key the current run did not produce. Refreshes
// merge rather than rebuild so `-update-golden` with a -run filter (or a
// partial harness: paper suite, scale suite, generated-BLIF pins) cannot
// silently drop the other harnesses' entries.
func mergeGoldens(t *testing.T, entries map[string]goldenEntry) {
	t.Helper()
	m := make(map[string]goldenEntry)
	if data, err := os.ReadFile(goldenPath); err == nil {
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatalf("parse %s: %v", goldenPath, err)
		}
	}
	for k, v := range entries {
		m[k] = v
	}
	writeGoldens(t, m)
}

// mapGolden runs the Lily pipeline for one (circuit, objective, target)
// with formal equivalence checking enabled and returns the pinned entry.
func mapGolden(t *testing.T, circuit string, obj lily.Objective, tgt lily.TechnologyTarget) goldenEntry {
	t.Helper()
	c, err := lily.GenerateBenchmark(circuit)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res, err := lily.WriteMappedBLIF(c, lily.FlowOptions{
		Mapper:            lily.MapperLily,
		Objective:         obj,
		Target:            tgt,
		VerifyEquivalence: true, // internal/equiv: BDD with simulation fallback
	}, &buf)
	if err != nil {
		t.Fatalf("%s/%s: %v", circuit, obj, err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return goldenEntry{
		BLIFSHA256:    hex.EncodeToString(sum[:]),
		Gates:         res.Gates,
		ActiveAreaMM2: res.ActiveAreaMM2,
		ChipAreaMM2:   res.ChipAreaMM2,
		WirelengthMM:  res.WirelengthMM,
		DelayNS:       res.DelayNS,
	}
}

// goldenCases enumerates the pinned (objective, target, key) grid: the
// ASIC target at both objectives (the paper's tables), and each LUT
// target in area mode (LUT count is the FPGA resource metric; delay-mode
// LUT output is covered by the determinism soak).
func goldenCases(circuit string) []struct {
	obj lily.Objective
	tgt lily.TechnologyTarget
	key string
} {
	type gc = struct {
		obj lily.Objective
		tgt lily.TechnologyTarget
		key string
	}
	return []gc{
		{lily.ObjectiveArea, lily.TargetASIC, goldenKey(circuit, lily.ObjectiveArea)},
		{lily.ObjectiveDelay, lily.TargetASIC, goldenKey(circuit, lily.ObjectiveDelay)},
		{lily.ObjectiveArea, lily.TargetLUT4, lutGoldenKey(circuit, lily.ObjectiveArea, lily.TargetLUT4)},
		{lily.ObjectiveArea, lily.TargetLUT6, lutGoldenKey(circuit, lily.ObjectiveArea, lily.TargetLUT6)},
	}
}

// TestGoldenMapping is the table-driven golden harness: every benchmark
// circuit, both objectives, every technology target, verified and pinned.
func TestGoldenMapping(t *testing.T) {
	circuits := lily.BenchmarkNames()
	sort.Strings(circuits)

	if *updateGolden {
		goldens := make(map[string]goldenEntry)
		for _, circuit := range circuits {
			for _, c := range goldenCases(circuit) {
				goldens[c.key] = mapGolden(t, circuit, c.obj, c.tgt)
			}
		}
		mergeGoldens(t, goldens)
		return
	}

	goldens := loadGoldens(t)
	for _, circuit := range circuits {
		for _, c := range goldenCases(circuit) {
			circuit, c := circuit, c
			t.Run(c.key, func(t *testing.T) {
				if testing.Short() && shortSkip[circuit] {
					t.Skipf("skipping %s under -short (covered by the full run)", circuit)
				}
				want, ok := goldens[c.key]
				if !ok {
					t.Fatalf("no golden for %s (refresh with -update-golden)", c.key)
				}
				got := mapGolden(t, circuit, c.obj, c.tgt)
				if got.BLIFSHA256 != want.BLIFSHA256 {
					t.Errorf("mapped BLIF hash drifted: got %s want %s\n"+
						"the mapper's output changed — if intentional, refresh with -update-golden",
						got.BLIFSHA256, want.BLIFSHA256)
				}
				if got.Gates != want.Gates {
					t.Errorf("gates = %d, want %d", got.Gates, want.Gates)
				}
				check := func(name string, got, want float64) {
					if math.Abs(got-want) > goldenTol {
						t.Errorf("%s = %.12f, want %.12f (|Δ| = %g > %g)",
							name, got, want, math.Abs(got-want), goldenTol)
					}
				}
				check("active_area_mm2", got.ActiveAreaMM2, want.ActiveAreaMM2)
				check("chip_area_mm2", got.ChipAreaMM2, want.ChipAreaMM2)
				check("wirelength_mm", got.WirelengthMM, want.WirelengthMM)
				check("delay_ns", got.DelayNS, want.DelayNS)
			})
		}
	}
}
