package lily

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"lily/internal/obs"
)

func TestWriteMappedBLIFContext(t *testing.T) {
	c, err := GenerateBenchmark("misex1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res, err := WriteMappedBLIFContext(context.Background(), c, FlowOptions{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Gates == 0 {
		t.Fatalf("empty flow result: %+v", res)
	}
	if !strings.Contains(buf.String(), ".gate") {
		t.Fatal("mapped BLIF output has no .gate lines")
	}
}

func TestWriteMappedBLIFContextCancelled(t *testing.T) {
	c, err := GenerateBenchmark("misex1")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the pipeline starts
	var buf bytes.Buffer
	_, err = WriteMappedBLIFContext(ctx, c, FlowOptions{}, &buf)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("cancelled run wrote %d bytes of BLIF", buf.Len())
	}
}

// flattenSpans counts span names in a forest.
func flattenSpans(nodes []*obs.SpanNode, into map[string]int) {
	for _, n := range nodes {
		into[n.Name]++
		flattenSpans(n.Children, into)
	}
}

// TestFlowTraceCoversPhases runs the full-featured flow under a tracer
// and asserts every pipeline phase recorded a span.
func TestFlowTraceCoversPhases(t *testing.T) {
	c, err := GenerateBenchmark("misex1")
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	if _, err := RunFlowContext(ctx, c, FlowOptions{
		PreOptimize:    true,
		FanoutOptimize: true,
		ClockPeriodNS:  100,
	}); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]int)
	flattenSpans(tr.Tree(), names)
	for _, phase := range []string{"preopt", "premap", "placement", "cover", "fanout", "layout", "timing"} {
		if names[phase] == 0 {
			t.Errorf("trace missing %q span (got %v)", phase, names)
		}
	}
}

// TestPortfolioTraceIncludesLosers asserts the AutoTune portfolio records
// one variant span per configuration — winners and losers alike — plus
// the winner attribution on the portfolio span.
func TestPortfolioTraceIncludesLosers(t *testing.T) {
	c, err := GenerateBenchmark("misex1")
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	if _, err := RunFlowContext(ctx, c, FlowOptions{AutoTune: true}); err != nil {
		t.Fatal(err)
	}
	roots := tr.Tree()
	names := make(map[string]int)
	flattenSpans(roots, names)
	if names["portfolio"] != 1 {
		t.Fatalf("portfolio spans = %d, want 1 (%v)", names["portfolio"], names)
	}
	if names["variant"] != 4 {
		t.Fatalf("variant spans = %d, want 4 (%v)", names["variant"], names)
	}
	// The portfolio root carries winner attribution.
	var portfolio *obs.SpanNode
	for _, r := range roots {
		if r.Name == "portfolio" {
			portfolio = r
		}
	}
	if portfolio == nil {
		t.Fatal("no portfolio root span")
	}
	if _, ok := portfolio.Attrs["winner_config"]; !ok {
		t.Fatalf("portfolio span lacks winner_config: %+v", portfolio.Attrs)
	}
}

// TestFlowMetricsCount asserts the mapper feeds the flow counters when a
// FlowMetrics bundle is installed in the context.
func TestFlowMetricsCount(t *testing.T) {
	c, err := GenerateBenchmark("misex1")
	if err != nil {
		t.Fatal(err)
	}
	r := obs.NewRegistry()
	fm := obs.RegisterFlowMetrics(r)
	ctx := obs.ContextWithFlowMetrics(context.Background(), fm)
	if _, err := RunFlowContext(ctx, c, FlowOptions{}); err != nil {
		t.Fatal(err)
	}
	if fm.ConesMapped.Value() == 0 {
		t.Error("no cones counted")
	}
	if fm.WireEvals.Value() == 0 {
		t.Error("no wire-cost evaluations counted")
	}
	if fm.CGIterations.Value() == 0 {
		t.Error("no CG iterations counted")
	}
}
