package timing

import (
	"math"
	"sort"

	"lily/internal/library"
	"lily/internal/netlist"
)

// SlackReport extends an analysis with required times and slacks against a
// target clock period: required times propagate backward from the primary
// outputs (required = period at every PO), and slack = required − arrival.
// Negative slack marks cells on paths that miss the period.
type SlackReport struct {
	// Period is the timing constraint the report was computed against.
	Period float64
	// CellSlack is the worst-phase slack at each cell output.
	CellSlack []float64
	// WorstSlack is the minimum slack over all cells.
	WorstSlack float64
	// ViolatingCells counts cells with negative slack.
	ViolatingCells int
	// CriticalCells lists cell indices in ascending slack order (the
	// worst first), capped at 32 entries.
	CriticalCells []int
}

// Slack computes required times and slacks for a finished analysis.
// Wire delay is lumped into the driving gate (the net is a capacitance,
// §4.2), so the required time at a gate input equals the required time at
// the driver output.
func Slack(nl *netlist.Netlist, lib *library.Library, res *Result, period float64) (*SlackReport, error) {
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	reqRise := make([]float64, len(nl.Cells))
	reqFall := make([]float64, len(nl.Cells))
	for i := range reqRise {
		reqRise[i] = math.Inf(1)
		reqFall[i] = math.Inf(1)
	}
	for _, po := range nl.POs {
		if !po.Driver.IsPI {
			ci := po.Driver.Index
			reqRise[ci] = math.Min(reqRise[ci], period)
			reqFall[ci] = math.Min(reqFall[ci], period)
		}
	}
	// Backward propagation in reverse topological order: the required time
	// at input pin i of cell c constrains the driver of that pin.
	for k := len(order) - 1; k >= 0; k-- {
		ci := order[k]
		c := nl.Cells[ci]
		cl := res.CellLoad[ci]
		for pin, r := range c.Inputs {
			if r.IsPI {
				continue
			}
			di := r.Index
			pt := c.Gate.Timing[pin]
			u := c.Gate.Unate[pin]
			// An output-rise requirement constrains whichever input phase
			// can cause the rise.
			if u == library.UnatePos || u == library.Binate {
				reqRise[di] = math.Min(reqRise[di], reqRise[ci]-pt.IntrinsicRise-pt.ResistRise*cl)
				reqFall[di] = math.Min(reqFall[di], reqFall[ci]-pt.IntrinsicFall-pt.ResistFall*cl)
			}
			if u == library.UnateNeg || u == library.Binate {
				reqFall[di] = math.Min(reqFall[di], reqRise[ci]-pt.IntrinsicRise-pt.ResistRise*cl)
				reqRise[di] = math.Min(reqRise[di], reqFall[ci]-pt.IntrinsicFall-pt.ResistFall*cl)
			}
		}
	}

	rep := &SlackReport{Period: period, CellSlack: make([]float64, len(nl.Cells)), WorstSlack: math.Inf(1)}
	for ci := range nl.Cells {
		sr := reqRise[ci] - res.CellArrival[ci].Rise
		sf := reqFall[ci] - res.CellArrival[ci].Fall
		s := math.Min(sr, sf)
		rep.CellSlack[ci] = s
		if s < rep.WorstSlack {
			rep.WorstSlack = s
		}
		if s < -1e-12 {
			rep.ViolatingCells++
		}
	}
	idx := make([]int, len(nl.Cells))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return rep.CellSlack[idx[a]] < rep.CellSlack[idx[b]] })
	if len(idx) > 32 {
		idx = idx[:32]
	}
	rep.CriticalCells = idx
	return rep, nil
}
