package timing

import (
	"math"
	"testing"

	"lily/internal/library"
)

func TestSlackLoosePeriod(t *testing.T) {
	lib := library.Big()
	nl := chain(4, 50)
	res, err := Analyze(nl, lib, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Slack(nl, lib, res, res.MaxDelay+10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ViolatingCells != 0 {
		t.Errorf("%d violations at a loose period", rep.ViolatingCells)
	}
	if math.Abs(rep.WorstSlack-10) > 1e-9 {
		t.Errorf("worst slack = %v, want 10 (period = delay + 10)", rep.WorstSlack)
	}
}

func TestSlackTightPeriod(t *testing.T) {
	lib := library.Big()
	nl := chain(4, 50)
	res, err := Analyze(nl, lib, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Slack(nl, lib, res, res.MaxDelay-5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ViolatingCells == 0 {
		t.Error("no violations at an infeasible period")
	}
	if math.Abs(rep.WorstSlack-(-5)) > 1e-9 {
		t.Errorf("worst slack = %v, want -5", rep.WorstSlack)
	}
	// The critical list starts with the worst cell.
	if len(rep.CriticalCells) == 0 ||
		rep.CellSlack[rep.CriticalCells[0]] != rep.WorstSlack {
		t.Error("critical list does not start at the worst slack")
	}
}

func TestSlackAtExactPeriod(t *testing.T) {
	// At period == MaxDelay the worst slack is zero (within epsilon) and
	// every cell on the critical path has (near) zero slack.
	lib := library.Big()
	nl := chain(6, 30)
	res, err := Analyze(nl, lib, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Slack(nl, lib, res, res.MaxDelay)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.WorstSlack) > 1e-9 {
		t.Errorf("worst slack = %v at exact period", rep.WorstSlack)
	}
	// In a pure chain every cell is on the critical path; all slacks are
	// (near) zero.
	for ci, s := range rep.CellSlack {
		if s < -1e-9 || s > 1e-6 {
			t.Errorf("cell %d slack %v; whole chain should be critical", ci, s)
		}
	}
}

func TestSlackMonotoneInPeriod(t *testing.T) {
	lib := library.Big()
	nl := chain(3, 40)
	res, err := Analyze(nl, lib, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := Slack(nl, lib, res, 10)
	r2, _ := Slack(nl, lib, res, 20)
	for ci := range r1.CellSlack {
		if got := r2.CellSlack[ci] - r1.CellSlack[ci]; math.Abs(got-10) > 1e-9 {
			t.Fatalf("slack did not shift by the period delta: %v", got)
		}
	}
}
