// Package timing implements the linear delay model and static timing
// analysis of the paper (§4): delay through a gate from input i is
// I_i + R_i·C_L with separate rising and falling parameters, the load
// C_L = ΣC_j + C_w sums the fanout pin capacitances and a wiring
// capacitance C_w = c_h·X + c_v·Y derived from the estimated net geometry,
// and wire resistance is ignored (the net is a lumped capacitance, so the
// arrival time at a fanout input equals the arrival at the driver output).
package timing

import (
	"fmt"
	"math"

	"lily/internal/library"
	"lily/internal/netlist"
	"lily/internal/wire"
)

// Options selects the load model.
type Options struct {
	// Model is the wiring estimator used for net geometry.
	Model wire.Model
	// UseWireCap enables the positional wiring capacitance (Lily, §4.2).
	// When false, C_w falls back to FanoutCapPerPin × fanout count — the
	// MIS 2.1 model the paper describes ("In MIS, Cw is modeled as a
	// function of the n", §4.2).
	UseWireCap bool
	// FanoutCapPerPin is the per-fanout wire capacitance (pF) for the
	// fanout-count model.
	FanoutCapPerPin float64
	// PIArrival is the arrival time at every primary input (ns).
	PIArrival float64
}

// DefaultOptions returns the Lily-style wiring-aware analysis options.
func DefaultOptions() Options {
	return Options{Model: wire.ModelHPWLSteiner, UseWireCap: true, FanoutCapPerPin: 0.03}
}

// Arrival is a rise/fall arrival-time pair.
type Arrival struct {
	Rise, Fall float64
}

// Max returns the worse of the two phases.
func (a Arrival) Max() float64 {
	if a.Rise > a.Fall {
		return a.Rise
	}
	return a.Fall
}

// PathStep is one element of a critical path.
type PathStep struct {
	Name    string  // cell or PI name
	Gate    string  // gate name, empty for PIs
	Arrival float64 // worst arrival at this signal
	Load    float64 // pF driven by this signal
}

// Result holds the analysis outcome.
type Result struct {
	// CellArrival holds the output arrival of each cell.
	CellArrival []Arrival
	// CellLoad holds each cell's output load in pF.
	CellLoad []float64
	// MaxDelay is the worst arrival over all primary outputs (ns).
	MaxDelay float64
	// CriticalPO names the output where MaxDelay occurs.
	CriticalPO string
	// CriticalPath walks from a primary input to the critical output.
	CriticalPath []PathStep
}

// Analyze runs static timing analysis over the mapped, placed netlist.
func Analyze(nl *netlist.Netlist, lib *library.Library, opt Options) (*Result, error) {
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}

	// Output load per driver.
	cellLoad := make([]float64, len(nl.Cells))
	piLoad := make([]float64, len(nl.PINames))
	for _, net := range nl.Nets() {
		cl := 0.0
		for _, s := range net.Sinks {
			cl += nl.Cells[s.Cell].Gate.InputCap
		}
		if opt.UseWireCap {
			x, y := wire.LengthXY(opt.Model, nl.NetPins(net))
			cl += lib.WireCapH*x + lib.WireCapV*y
		} else {
			cl += opt.FanoutCapPerPin * float64(len(net.Sinks)+len(net.POPads))
		}
		if net.Driver.IsPI {
			piLoad[net.Driver.Index] = cl
		} else {
			cellLoad[net.Driver.Index] = cl
		}
	}

	arr := make([]Arrival, len(nl.Cells))
	type argMax struct {
		pin      int
		fromRise bool
	}
	argRise := make([]argMax, len(nl.Cells))
	argFall := make([]argMax, len(nl.Cells))

	refArr := func(r netlist.Ref) Arrival {
		if r.IsPI {
			return Arrival{Rise: opt.PIArrival, Fall: opt.PIArrival}
		}
		return arr[r.Index]
	}

	for _, ci := range order {
		c := nl.Cells[ci]
		cl := cellLoad[ci]
		rise, fall := math.Inf(-1), math.Inf(-1)
		var ar, af argMax
		for pin, r := range c.Inputs {
			in := refArr(r)
			pt := c.Gate.Timing[pin]
			u := c.Gate.Unate[pin]
			// Candidate output-rise arrivals through this pin.
			if u == library.UnatePos || u == library.Binate {
				if t := in.Rise + pt.IntrinsicRise + pt.ResistRise*cl; t > rise {
					rise, ar = t, argMax{pin, true}
				}
			}
			if u == library.UnateNeg || u == library.Binate {
				if t := in.Fall + pt.IntrinsicRise + pt.ResistRise*cl; t > rise {
					rise, ar = t, argMax{pin, false}
				}
			}
			// Candidate output-fall arrivals.
			if u == library.UnatePos || u == library.Binate {
				if t := in.Fall + pt.IntrinsicFall + pt.ResistFall*cl; t > fall {
					fall, af = t, argMax{pin, false}
				}
			}
			if u == library.UnateNeg || u == library.Binate {
				if t := in.Rise + pt.IntrinsicFall + pt.ResistFall*cl; t > fall {
					fall, af = t, argMax{pin, true}
				}
			}
		}
		if len(c.Inputs) == 0 {
			rise, fall = opt.PIArrival, opt.PIArrival
		}
		arr[ci] = Arrival{Rise: rise, Fall: fall}
		argRise[ci] = ar
		argFall[ci] = af
	}

	res := &Result{CellArrival: arr, CellLoad: cellLoad, MaxDelay: math.Inf(-1)}
	var critRef netlist.Ref
	for _, po := range nl.POs {
		a := refArr(po.Driver).Max()
		if a > res.MaxDelay {
			res.MaxDelay = a
			res.CriticalPO = po.Name
			critRef = po.Driver
		}
	}
	if len(nl.POs) == 0 {
		return nil, fmt.Errorf("timing: netlist has no primary outputs")
	}

	// Backtrack the critical path.
	var path []PathStep
	r := critRef
	useRise := true
	if !r.IsPI {
		useRise = arr[r.Index].Rise >= arr[r.Index].Fall
	}
	for !r.IsPI {
		ci := r.Index
		c := nl.Cells[ci]
		path = append(path, PathStep{
			Name: c.Name, Gate: c.Gate.Name,
			Arrival: arr[ci].Max(), Load: cellLoad[ci],
		})
		var am argMax
		if useRise {
			am = argRise[ci]
		} else {
			am = argFall[ci]
		}
		if am.pin >= len(c.Inputs) {
			break
		}
		r = c.Inputs[am.pin]
		useRise = am.fromRise
	}
	if r.IsPI {
		path = append(path, PathStep{
			Name: nl.PINames[r.Index], Arrival: opt.PIArrival, Load: piLoad[r.Index],
		})
	}
	// Reverse: PI first.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	res.CriticalPath = path
	return res, nil
}

// GateOutputArrival computes the rise/fall output arrival of one gate given
// per-pin input arrivals and the output load — the recursive formula of
// §4.1, used both by the analyzer and by the delay-mode mappers.
func GateOutputArrival(g *library.Gate, in []Arrival, cl float64) Arrival {
	rise, fall := math.Inf(-1), math.Inf(-1)
	for pin := range in {
		pt := g.Timing[pin]
		u := g.Unate[pin]
		if u == library.UnatePos || u == library.Binate {
			if t := in[pin].Rise + pt.IntrinsicRise + pt.ResistRise*cl; t > rise {
				rise = t
			}
			if t := in[pin].Fall + pt.IntrinsicFall + pt.ResistFall*cl; t > fall {
				fall = t
			}
		}
		if u == library.UnateNeg || u == library.Binate {
			if t := in[pin].Fall + pt.IntrinsicRise + pt.ResistRise*cl; t > rise {
				rise = t
			}
			if t := in[pin].Rise + pt.IntrinsicFall + pt.ResistFall*cl; t > fall {
				fall = t
			}
		}
	}
	if len(in) == 0 {
		return Arrival{}
	}
	return Arrival{Rise: rise, Fall: fall}
}

// BlockArrival is the load-independent part of an arrival computation
// (paper §4.3): b_i = t_i + I_i per pin and phase. Adding R_i·C_L later
// gives the output arrival without revisiting the inputs — "only the
// R_i·C_L part has to be redone for different loads".
type BlockArrival struct {
	// RiseB[i] is the block arrival contributing to the OUTPUT rise
	// through pin i (already routed through the pin's unateness);
	// similarly FallB.
	RiseB []float64
	FallB []float64
	// RiseR and FallR are the per-pin output resistances.
	RiseR []float64
	FallR []float64
}

// NewBlockArrival precomputes block arrival times for a gate instance.
func NewBlockArrival(g *library.Gate, in []Arrival) *BlockArrival {
	b := new(BlockArrival)
	b.Fill(g, in)
	return b
}

// Fill populates b for a gate instance, reusing its slices — the zero-alloc
// equivalent of NewBlockArrival for the delay-mode mapper's per-match inner
// loop. The computed values are identical.
func (b *BlockArrival) Fill(g *library.Gate, in []Arrival) {
	n := len(in)
	if cap(b.RiseB) < n {
		b.RiseB = make([]float64, n)
		b.FallB = make([]float64, n)
		b.RiseR = make([]float64, n)
		b.FallR = make([]float64, n)
	}
	b.RiseB, b.FallB = b.RiseB[:n], b.FallB[:n]
	b.RiseR, b.FallR = b.RiseR[:n], b.FallR[:n]
	for pin := 0; pin < n; pin++ {
		pt := g.Timing[pin]
		u := g.Unate[pin]
		riseIn := math.Inf(-1)
		fallIn := math.Inf(-1)
		if u == library.UnatePos || u == library.Binate {
			riseIn = math.Max(riseIn, in[pin].Rise)
			fallIn = math.Max(fallIn, in[pin].Fall)
		}
		if u == library.UnateNeg || u == library.Binate {
			riseIn = math.Max(riseIn, in[pin].Fall)
			fallIn = math.Max(fallIn, in[pin].Rise)
		}
		b.RiseB[pin] = riseIn + pt.IntrinsicRise
		b.FallB[pin] = fallIn + pt.IntrinsicFall
		b.RiseR[pin] = pt.ResistRise
		b.FallR[pin] = pt.ResistFall
	}
}

// Clone returns a deep copy of b, for retaining a winning candidate's
// block arrivals beyond a scratch buffer's lifetime.
func (b *BlockArrival) Clone() *BlockArrival {
	return &BlockArrival{
		RiseB: append([]float64(nil), b.RiseB...),
		FallB: append([]float64(nil), b.FallB...),
		RiseR: append([]float64(nil), b.RiseR...),
		FallR: append([]float64(nil), b.FallR...),
	}
}

// Output computes the output arrival for a given load from the block
// arrival times: t_y = max_i { b_i + R_i·C_L }.
func (b *BlockArrival) Output(cl float64) Arrival {
	rise, fall := math.Inf(-1), math.Inf(-1)
	for i := range b.RiseB {
		if t := b.RiseB[i] + b.RiseR[i]*cl; t > rise {
			rise = t
		}
		if t := b.FallB[i] + b.FallR[i]*cl; t > fall {
			fall = t
		}
	}
	if len(b.RiseB) == 0 {
		return Arrival{}
	}
	return Arrival{Rise: rise, Fall: fall}
}
