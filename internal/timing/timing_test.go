package timing

import (
	"math"
	"testing"

	"lily/internal/geom"
	"lily/internal/library"
	"lily/internal/netlist"
	"lily/internal/wire"
)

// chain builds a linear chain of n inverters with unit spacing.
func chain(n int, spacing float64) *netlist.Netlist {
	lib := library.Big()
	nl := &netlist.Netlist{
		Name:    "chain",
		PINames: []string{"a"},
		PIPos:   []geom.Point{{X: 0, Y: 0}},
	}
	prev := netlist.Ref{IsPI: true, Index: 0}
	for i := 0; i < n; i++ {
		ci := nl.AddCell(&netlist.Cell{
			Name: "inv" + string(rune('0'+i)), Gate: lib.GateByName("inv"),
			Inputs: []netlist.Ref{prev},
			Pos:    geom.Point{X: float64(i+1) * spacing, Y: 0},
		})
		prev = netlist.Ref{Index: ci}
	}
	nl.POs = append(nl.POs, netlist.PO{Name: "y", Driver: prev,
		Pad: geom.Point{X: float64(n+1) * spacing, Y: 0}})
	return nl
}

func TestChainDelayMonotone(t *testing.T) {
	lib := library.Big()
	var prevDelay float64
	for _, n := range []int{1, 2, 4, 8} {
		nl := chain(n, 50)
		res, err := Analyze(nl, lib, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxDelay <= prevDelay {
			t.Errorf("chain %d delay %v not larger than %v", n, res.MaxDelay, prevDelay)
		}
		prevDelay = res.MaxDelay
		if len(res.CriticalPath) != n+1 {
			t.Errorf("chain %d critical path len %d, want %d", n, len(res.CriticalPath), n+1)
		}
		if res.CriticalPO != "y" {
			t.Errorf("critical PO = %s", res.CriticalPO)
		}
	}
}

func TestWireCapIncreasesDelay(t *testing.T) {
	lib := library.Big()
	short := chain(4, 10)
	long := chain(4, 2000)
	opt := DefaultOptions()
	rs, err := Analyze(short, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Analyze(long, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rl.MaxDelay <= rs.MaxDelay {
		t.Errorf("long wires (%v) not slower than short (%v)", rl.MaxDelay, rs.MaxDelay)
	}
	// Without wire cap the two are identical.
	opt.UseWireCap = false
	rs2, _ := Analyze(short, lib, opt)
	rl2, _ := Analyze(long, lib, opt)
	if math.Abs(rs2.MaxDelay-rl2.MaxDelay) > 1e-12 {
		t.Error("fanout-count model should ignore distance")
	}
}

func TestArrivalHandPropagation(t *testing.T) {
	// Single inverter, zero wire (UseWireCap off, zero fanout cap):
	// load = 0, delay = intrinsic only. Output rise comes from input fall.
	lib := library.Big()
	nl := chain(1, 10)
	opt := Options{UseWireCap: false, FanoutCapPerPin: 0}
	res, err := Analyze(nl, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	inv := lib.GateByName("inv")
	// The PO net still has zero load; cell delay = intrinsic.
	want := math.Max(inv.Timing[0].IntrinsicRise, inv.Timing[0].IntrinsicFall)
	if math.Abs(res.MaxDelay-want) > 1e-9 {
		t.Errorf("delay = %v, want %v", res.MaxDelay, want)
	}
}

func TestLoadDependence(t *testing.T) {
	// One inverter driving k inverters: delay of the first stage grows
	// linearly with k under the constant-pin-cap model.
	lib := library.Big()
	build := func(k int) *netlist.Netlist {
		nl := &netlist.Netlist{Name: "fan", PINames: []string{"a"},
			PIPos: []geom.Point{{X: 0, Y: 0}}}
		drv := nl.AddCell(&netlist.Cell{Name: "drv", Gate: lib.GateByName("inv"),
			Inputs: []netlist.Ref{{IsPI: true, Index: 0}}, Pos: geom.Point{X: 10, Y: 0}})
		for i := 0; i < k; i++ {
			ci := nl.AddCell(&netlist.Cell{Name: "ld" + string(rune('a'+i)),
				Gate: lib.GateByName("inv"), Inputs: []netlist.Ref{{Index: drv}},
				Pos: geom.Point{X: 20, Y: float64(i)}})
			nl.POs = append(nl.POs, netlist.PO{Name: "y" + string(rune('a'+i)),
				Driver: netlist.Ref{Index: ci}, Pad: geom.Point{X: 30, Y: float64(i)}})
		}
		return nl
	}
	opt := Options{UseWireCap: false, FanoutCapPerPin: 0}
	r1, _ := Analyze(build(1), lib, opt)
	r4, _ := Analyze(build(4), lib, opt)
	inv := lib.GateByName("inv")
	extra := 3 * inv.InputCap * inv.Timing[0].ResistRise
	got := r4.MaxDelay - r1.MaxDelay
	if math.Abs(got-extra) > 1e-9 {
		t.Errorf("fanout-4 delta = %v, want %v", got, extra)
	}
}

func TestUnatenessRouting(t *testing.T) {
	lib := library.Big()
	inv := lib.GateByName("inv")
	if inv.Unate[0] != library.UnateNeg {
		t.Fatal("inverter should be negative unate")
	}
	// Input: rise at 10, fall at 0. Inverter output fall comes from input
	// rise (10 + fall intrinsic); output rise from input fall (0 + rise
	// intrinsic).
	in := []Arrival{{Rise: 10, Fall: 0}}
	out := GateOutputArrival(inv, in, 0)
	if math.Abs(out.Fall-(10+inv.Timing[0].IntrinsicFall)) > 1e-9 {
		t.Errorf("out.Fall = %v", out.Fall)
	}
	if math.Abs(out.Rise-(0+inv.Timing[0].IntrinsicRise)) > 1e-9 {
		t.Errorf("out.Rise = %v", out.Rise)
	}
	// XOR is binate: both phases of the input matter.
	xor := lib.GateByName("xor2")
	if xor.Unate[0] != library.Binate || xor.Unate[1] != library.Binate {
		t.Error("xor should be binate in both inputs")
	}
	and2 := lib.GateByName("and2")
	if and2.Unate[0] != library.UnatePos {
		t.Error("and2 should be positive unate")
	}
}

func TestBlockArrivalMatchesDirect(t *testing.T) {
	lib := library.Big()
	for _, name := range []string{"inv", "nand3", "aoi22", "xor2"} {
		g := lib.GateByName(name)
		in := make([]Arrival, g.NumInputs)
		for i := range in {
			in[i] = Arrival{Rise: float64(i) * 1.3, Fall: float64(i) * 0.7}
		}
		ba := NewBlockArrival(g, in)
		for _, cl := range []float64{0, 0.1, 0.5, 2.0} {
			direct := GateOutputArrival(g, in, cl)
			viaBlock := ba.Output(cl)
			if math.Abs(direct.Rise-viaBlock.Rise) > 1e-9 ||
				math.Abs(direct.Fall-viaBlock.Fall) > 1e-9 {
				t.Errorf("%s cl=%v: direct %+v != block %+v", name, cl, direct, viaBlock)
			}
		}
	}
}

func TestCriticalPathStartsAtPI(t *testing.T) {
	lib := library.Big()
	nl := chain(5, 25)
	res, err := Analyze(nl, lib, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.CriticalPath[0].Name != "a" || res.CriticalPath[0].Gate != "" {
		t.Errorf("path does not start at PI: %+v", res.CriticalPath[0])
	}
	// Arrivals along the path must be non-decreasing.
	for i := 1; i < len(res.CriticalPath); i++ {
		if res.CriticalPath[i].Arrival < res.CriticalPath[i-1].Arrival-1e-9 {
			t.Errorf("path arrival decreases at %d: %+v", i, res.CriticalPath)
		}
	}
}

func TestSpanningTreeModelOption(t *testing.T) {
	lib := library.Big()
	nl := chain(3, 100)
	optH := DefaultOptions()
	optS := DefaultOptions()
	optS.Model = wire.ModelSpanningTree
	rh, err := Analyze(nl, lib, optH)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Analyze(nl, lib, optS)
	if err != nil {
		t.Fatal(err)
	}
	// Both positive, same order of magnitude; 2-pin nets are identical
	// under both models so the chain matches exactly.
	if math.Abs(rh.MaxDelay-rs.MaxDelay) > 1e-9 {
		t.Errorf("2-pin nets should agree: %v vs %v", rh.MaxDelay, rs.MaxDelay)
	}
}

func TestNoPOsRejected(t *testing.T) {
	lib := library.Big()
	nl := &netlist.Netlist{Name: "empty", PINames: []string{"a"},
		PIPos: []geom.Point{{X: 0, Y: 0}}}
	if _, err := Analyze(nl, lib, DefaultOptions()); err == nil {
		t.Error("expected error for netlist without POs")
	}
}
