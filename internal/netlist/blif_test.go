package netlist

import (
	"bytes"
	"strings"
	"testing"

	"lily/internal/library"
)

func TestMappedBLIFRoundTrip(t *testing.T) {
	nl := buildMux(t)
	lib := library.Big()
	var buf bytes.Buffer
	if err := WriteBLIF(&buf, nl); err != nil {
		t.Fatal(err)
	}
	nl2, err := ParseBLIF(&buf, lib)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	// Functional equivalence.
	for r := 0; r < 8; r++ {
		in := map[string]bool{"sel": r&1 != 0, "a": r&2 != 0, "b": r&4 != 0}
		o1, err := nl.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		o2, err := nl2.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		for k := range o1 {
			if o1[k] != o2[k] {
				t.Fatalf("round trip differs at %s", k)
			}
		}
	}
	// Placement survives.
	for _, c2 := range nl2.Cells {
		found := false
		for _, c := range nl.Cells {
			if c.Name == c2.Name {
				found = true
				if c.Pos != c2.Pos {
					t.Errorf("cell %s position lost: %v -> %v", c.Name, c.Pos, c2.Pos)
				}
			}
		}
		if !found && c2.Gate.Name != "buf" {
			t.Errorf("unexpected cell %s after round trip", c2.Name)
		}
	}
	for i := range nl2.PIPos {
		if nl2.PIPos[i] != nl.PIPos[nl.PIIndex(nl2.PINames[i])] {
			t.Errorf("PI pad %s lost", nl2.PINames[i])
		}
	}
}

func TestMappedBLIFErrors(t *testing.T) {
	lib := library.Big()
	cases := []struct {
		name    string
		src     string
		wantErr string // substring the error must contain
	}{
		{"unknown-gate", ".model m\n.inputs a\n.outputs y\n.gate frob a=a z=y\n.end", "unknown gate"},
		{"pin-count", ".model m\n.inputs a\n.outputs y\n.gate and2 a=a z=y\n.end", "wants 2"},
		{"bad-pin", ".model m\n.inputs a b\n.outputs y\n.gate and2 a=a q=b z=y\n.end", "pin"},
		{"no-output", ".model m\n.inputs a\n.outputs y\n.gate inv a=a\n.end", "without output"},
		{"short-gate", ".model m\n.inputs a\n.outputs y\n.gate inv\n.end", "malformed .gate"},
		{"bad-binding", ".model m\n.inputs a\n.outputs y\n.gate inv aa z=y\n.end", "malformed pin binding"},
		{"undriven", ".model m\n.inputs a\n.outputs y\n.end", "never driven"},
		{"redriven", ".model m\n.inputs a\n.outputs y\n.gate inv a=a z=y\n.gate inv a=a z=y\n.end", "driven twice"},
		{"dup-model", ".model m\n.inputs a\n.outputs y\n.model m2\n.gate inv a=a z=y\n.end", "duplicate .model"},
		{"names", ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end", "unsupported construct"},
		// A latch (sequential element) in a mapped combinational netlist is
		// rejected up front rather than leaving a dangling latch input.
		{"latch", ".model m\n.inputs a\n.outputs y\n.latch a y re clk 0\n.end", "unsupported construct"},
		{"subckt", ".model m\n.inputs a\n.outputs y\n.subckt sub x=a y=y\n.end", "unsupported construct"},
		{"unknown-directive", ".model m\n.inputs a\n.outputs y\n.clock c\n.end", "unknown directive"},
		{"cycle", ".model m\n.inputs a\n.outputs y\n.gate and2 a=a b=y z=x\n.gate inv a=x z=y\n.end", "unresolvable"},
	}
	for _, tc := range cases {
		_, err := ParseBLIF(strings.NewReader(tc.src), lib)
		if err == nil {
			t.Errorf("%s: accepted, want error containing %q", tc.name, tc.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestMappedBLIFForwardReference(t *testing.T) {
	lib := library.Big()
	src := `
.model fwd
.inputs a
.outputs y
.gate inv a=mid z=y
.gate inv a=a z=mid
.end
`
	nl, err := ParseBLIF(strings.NewReader(src), lib)
	if err != nil {
		t.Fatal(err)
	}
	out, err := nl.Eval(map[string]bool{"a": true})
	if err != nil {
		t.Fatal(err)
	}
	if out["y"] != true {
		t.Error("double inverter chain wrong")
	}
}
