package netlist

import (
	"testing"

	"lily/internal/geom"
	"lily/internal/library"
)

// buildMux builds sel ? a : b out of big-library gates:
// y = or2(and2(sel,a), and2(inv(sel),b)).
func buildMux(t *testing.T) *Netlist {
	t.Helper()
	lib := library.Big()
	nl := &Netlist{
		Name:    "mux",
		PINames: []string{"sel", "a", "b"},
		PIPos:   []geom.Point{{X: 0, Y: 0}, {X: 0, Y: 50}, {X: 0, Y: 100}},
	}
	pi := func(i int) Ref { return Ref{IsPI: true, Index: i} }
	inv := nl.AddCell(&Cell{Name: "u_inv", Gate: lib.GateByName("inv"),
		Inputs: []Ref{pi(0)}, Pos: geom.Point{X: 50, Y: 80}})
	a1 := nl.AddCell(&Cell{Name: "u_a1", Gate: lib.GateByName("and2"),
		Inputs: []Ref{pi(0), pi(1)}, Pos: geom.Point{X: 60, Y: 30}})
	a2 := nl.AddCell(&Cell{Name: "u_a2", Gate: lib.GateByName("and2"),
		Inputs: []Ref{{Index: inv}, pi(2)}, Pos: geom.Point{X: 60, Y: 90}})
	o := nl.AddCell(&Cell{Name: "u_o", Gate: lib.GateByName("or2"),
		Inputs: []Ref{{Index: a1}, {Index: a2}}, Pos: geom.Point{X: 100, Y: 60}})
	nl.POs = append(nl.POs, PO{Name: "y", Driver: Ref{Index: o}, Pad: geom.Point{X: 150, Y: 60}})
	if err := nl.Check(); err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestNetlistEval(t *testing.T) {
	nl := buildMux(t)
	for r := 0; r < 8; r++ {
		sel, a, b := r&1 != 0, r&2 != 0, r&4 != 0
		out, err := nl.Eval(map[string]bool{"sel": sel, "a": a, "b": b})
		if err != nil {
			t.Fatal(err)
		}
		want := b
		if sel {
			want = a
		}
		if out["y"] != want {
			t.Errorf("mux(%v,%v,%v) = %v, want %v", sel, a, b, out["y"], want)
		}
	}
}

func TestNetlistTopoOrder(t *testing.T) {
	nl := buildMux(t)
	order, err := nl.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, c := range order {
		pos[c] = i
	}
	for ci, c := range nl.Cells {
		for _, r := range c.Inputs {
			if !r.IsPI && pos[r.Index] >= pos[ci] {
				t.Errorf("cell %d before its driver %d", ci, r.Index)
			}
		}
	}
}

func TestNetlistNets(t *testing.T) {
	nl := buildMux(t)
	nets := nl.Nets()
	// sel drives inv and a1 (2 sinks); a drives a1; b drives a2; inv->a2;
	// a1->o; a2->o; o->pad. That is 7 nets.
	if len(nets) != 7 {
		t.Fatalf("%d nets, want 7", len(nets))
	}
	var selNet, oNet *Net
	for i := range nets {
		if nets[i].Driver.IsPI && nets[i].Driver.Index == 0 {
			selNet = &nets[i]
		}
		if !nets[i].Driver.IsPI && nl.Cells[nets[i].Driver.Index].Name == "u_o" {
			oNet = &nets[i]
		}
	}
	if selNet == nil || len(selNet.Sinks) != 2 {
		t.Errorf("sel net wrong: %+v", selNet)
	}
	if oNet == nil || len(oNet.POPads) != 1 || len(oNet.Sinks) != 0 {
		t.Errorf("output net wrong: %+v", oNet)
	}
	pins := nl.NetPins(*oNet)
	if len(pins) != 2 {
		t.Errorf("output net pins = %v", pins)
	}
}

func TestNetlistStats(t *testing.T) {
	nl := buildMux(t)
	s := nl.Stat()
	if s.Cells != 4 {
		t.Errorf("cells = %d", s.Cells)
	}
	if s.ByGate["and2"] != 2 || s.ByGate["inv"] != 1 || s.ByGate["or2"] != 1 {
		t.Errorf("gate histogram = %v", s.ByGate)
	}
	if s.ActiveArea <= 0 {
		t.Error("no active area")
	}
}

func TestNetlistCheckErrors(t *testing.T) {
	lib := library.Big()
	nl := &Netlist{Name: "bad", PINames: []string{"a"}, PIPos: make([]geom.Point, 1)}
	// Wrong pin count.
	nl.AddCell(&Cell{Name: "x", Gate: lib.GateByName("and2"), Inputs: []Ref{{IsPI: true}}})
	if err := nl.Check(); err == nil {
		t.Error("pin count error not caught")
	}
	// Bad reference.
	nl.Cells[0].Inputs = []Ref{{IsPI: true, Index: 0}, {Index: 99}}
	if err := nl.Check(); err == nil {
		t.Error("bad ref not caught")
	}
	// Cycle.
	nl.Cells[0].Inputs = []Ref{{IsPI: true, Index: 0}, {Index: 0}}
	if err := nl.Check(); err == nil {
		t.Error("cycle not caught")
	}
}

func TestMissingInput(t *testing.T) {
	nl := buildMux(t)
	if _, err := nl.Eval(map[string]bool{"sel": true}); err == nil {
		t.Error("missing PI value not caught")
	}
}
