package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"lily/internal/geom"
	"lily/internal/library"
)

// WriteBLIF renders the mapped netlist as a BLIF model using .gate lines
// (the mapped-circuit dialect SIS introduced), with cell placement attached
// as "#@ place <x> <y>" comment directives that ParseBLIF understands.
// Gate pins are named a, b, c, ... positionally, with output pin z.
func WriteBLIF(w io.Writer, nl *Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", nl.Name)
	fmt.Fprint(bw, ".inputs")
	for _, n := range nl.PINames {
		fmt.Fprintf(bw, " %s", n)
	}
	fmt.Fprintln(bw)
	fmt.Fprint(bw, ".outputs")
	for _, po := range nl.POs {
		fmt.Fprintf(bw, " %s", po.Name)
	}
	fmt.Fprintln(bw)
	for i, p := range nl.PIPos {
		fmt.Fprintf(bw, "#@ pad %s %.4f %.4f\n", nl.PINames[i], p.X, p.Y)
	}
	order, err := nl.TopoOrder()
	if err != nil {
		return err
	}
	for _, ci := range order {
		c := nl.Cells[ci]
		fmt.Fprintf(bw, ".gate %s", c.Gate.Name)
		for pin, r := range c.Inputs {
			fmt.Fprintf(bw, " %c=%s", 'a'+pin, nl.RefName(r))
		}
		fmt.Fprintf(bw, " z=%s\n", c.Name)
		fmt.Fprintf(bw, "#@ place %s %.4f %.4f\n", c.Name, c.Pos.X, c.Pos.Y)
	}
	for _, po := range nl.POs {
		if nl.RefName(po.Driver) != po.Name {
			// Alias the driver signal to the output name with a buffer.
			fmt.Fprintf(bw, ".gate buf a=%s z=%s\n", nl.RefName(po.Driver), po.Name)
		}
		fmt.Fprintf(bw, "#@ pad %s %.4f %.4f\n", po.Name, po.Pad.X, po.Pad.Y)
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// ParseBLIF reads a mapped BLIF model written by WriteBLIF (or by SIS-style
// tools restricted to .gate lines over the given library). Placement
// directives are honored when present.
func ParseBLIF(r io.Reader, lib *library.Library) (*Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	nl := &Netlist{}
	type gateLine struct {
		gate *library.Gate
		pins map[string]string // pin -> signal
		out  string
	}
	var gates []gateLine
	var outputs []string
	sawModel := false
	place := make(map[string]geom.Point)
	pads := make(map[string]geom.Point)

	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#@") {
			f := strings.Fields(line)
			if len(f) == 5 && (f[1] == "place" || f[1] == "pad") {
				var x, y float64
				if _, err := fmt.Sscanf(f[3]+" "+f[4], "%f %f", &x, &y); err == nil {
					if f[1] == "place" {
						place[f[2]] = geom.Point{X: x, Y: y}
					} else {
						pads[f[2]] = geom.Point{X: x, Y: y}
					}
				}
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case ".model":
			if sawModel {
				return nil, fmt.Errorf("netlist: duplicate .model directive (multi-model BLIF is not supported)")
			}
			sawModel = true
			if len(f) > 1 {
				nl.Name = f[1]
			}
		case ".inputs":
			nl.PINames = append(nl.PINames, f[1:]...)
		case ".outputs":
			outputs = append(outputs, f[1:]...)
		case ".gate":
			if len(f) < 3 {
				return nil, fmt.Errorf("netlist: malformed .gate line %q", line)
			}
			g := lib.GateByName(f[1])
			if g == nil {
				return nil, fmt.Errorf("netlist: unknown gate %q", f[1])
			}
			gl := gateLine{gate: g, pins: make(map[string]string)}
			for _, kv := range f[2:] {
				eq := strings.IndexByte(kv, '=')
				if eq < 0 {
					return nil, fmt.Errorf("netlist: malformed pin binding %q", kv)
				}
				pin, sig := kv[:eq], kv[eq+1:]
				if pin == "z" {
					gl.out = sig
				} else {
					gl.pins[pin] = sig
				}
			}
			if gl.out == "" {
				return nil, fmt.Errorf("netlist: .gate without output: %q", line)
			}
			gates = append(gates, gl)
		case ".end":
		case ".names", ".latch", ".subckt":
			return nil, fmt.Errorf("netlist: unsupported construct %q in mapped BLIF", f[0])
		default:
			return nil, fmt.Errorf("netlist: unknown directive %q", f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	nl.PIPos = make([]geom.Point, len(nl.PINames))
	for i, n := range nl.PINames {
		nl.PIPos[i] = pads[n]
	}
	// Resolve signals: build cells in dependency order.
	refOf := make(map[string]Ref, len(nl.PINames)+len(gates))
	for i, n := range nl.PINames {
		refOf[n] = Ref{IsPI: true, Index: i}
	}
	pending := gates
	for len(pending) > 0 {
		var next []gateLine
		progressed := false
		for _, gl := range pending {
			ready := true
			//lint:sorted all-pins-resolved predicate; result independent of visit order
			for _, sig := range gl.pins {
				if _, ok := refOf[sig]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, gl)
				continue
			}
			progressed = true
			inputs := make([]Ref, gl.gate.NumInputs)
			pinNames := make([]string, 0, len(gl.pins))
			for p := range gl.pins {
				pinNames = append(pinNames, p)
			}
			sort.Strings(pinNames)
			if len(pinNames) != gl.gate.NumInputs {
				return nil, fmt.Errorf("netlist: gate %s output %s has %d pins, wants %d",
					gl.gate.Name, gl.out, len(pinNames), gl.gate.NumInputs)
			}
			for i, p := range pinNames {
				want := string(rune('a' + i))
				if p != want {
					return nil, fmt.Errorf("netlist: gate %s output %s has pin %q, want %q",
						gl.gate.Name, gl.out, p, want)
				}
				inputs[i] = refOf[gl.pins[p]]
			}
			ci := nl.AddCell(&Cell{
				Name: gl.out, Gate: gl.gate, Inputs: inputs, Pos: place[gl.out],
			})
			if _, dup := refOf[gl.out]; dup {
				return nil, fmt.Errorf("netlist: signal %q driven twice", gl.out)
			}
			refOf[gl.out] = Ref{Index: ci}
		}
		if !progressed {
			return nil, fmt.Errorf("netlist: unresolvable signals (cycle or missing driver)")
		}
		pending = next
	}
	for _, out := range outputs {
		r, ok := refOf[out]
		if !ok {
			return nil, fmt.Errorf("netlist: output %q never driven", out)
		}
		nl.POs = append(nl.POs, PO{Name: out, Driver: r, Pad: pads[out]})
	}
	if err := nl.Check(); err != nil {
		return nil, err
	}
	return nl, nil
}
