// Package netlist defines the mapped circuit produced by the technology
// mappers: a network of library gate instances with placement positions,
// shared by the timing analyzer (package timing) and the layout backend
// (package layout).
package netlist

import (
	"fmt"

	"lily/internal/geom"
	"lily/internal/library"
)

// Ref identifies a signal driver: a primary input or a cell output.
type Ref struct {
	IsPI bool
	// Index is a PI index when IsPI, else a cell index.
	Index int
}

// Cell is one placed gate instance.
type Cell struct {
	Name string
	Gate *library.Gate
	// Inputs holds the driver of each gate pin (positional).
	Inputs []Ref
	// Pos is the cell's placement position (center, point model).
	Pos geom.Point
}

// PO is a primary output: a named pad driven by a signal.
type PO struct {
	Name   string
	Driver Ref
	Pad    geom.Point
}

// Netlist is a mapped combinational circuit.
type Netlist struct {
	Name    string
	PINames []string
	PIPos   []geom.Point
	Cells   []*Cell
	POs     []PO
}

// AddCell appends a cell and returns its index.
func (nl *Netlist) AddCell(c *Cell) int {
	nl.Cells = append(nl.Cells, c)
	return len(nl.Cells) - 1
}

// PIIndex returns the index of the named primary input, or -1.
func (nl *Netlist) PIIndex(name string) int {
	for i, n := range nl.PINames {
		if n == name {
			return i
		}
	}
	return -1
}

// Check validates pin counts, reference ranges, and acyclicity.
func (nl *Netlist) Check() error {
	for ci, c := range nl.Cells {
		if c.Gate == nil {
			return fmt.Errorf("netlist: cell %d has no gate", ci)
		}
		if len(c.Inputs) != c.Gate.NumInputs {
			return fmt.Errorf("netlist: cell %s(%s) has %d inputs, gate wants %d",
				c.Name, c.Gate.Name, len(c.Inputs), c.Gate.NumInputs)
		}
		for _, r := range c.Inputs {
			if err := nl.checkRef(r); err != nil {
				return fmt.Errorf("netlist: cell %s: %w", c.Name, err)
			}
		}
	}
	for _, po := range nl.POs {
		if err := nl.checkRef(po.Driver); err != nil {
			return fmt.Errorf("netlist: PO %s: %w", po.Name, err)
		}
	}
	if _, err := nl.TopoOrder(); err != nil {
		return err
	}
	return nil
}

func (nl *Netlist) checkRef(r Ref) error {
	if r.IsPI {
		if r.Index < 0 || r.Index >= len(nl.PINames) {
			return fmt.Errorf("bad PI ref %d", r.Index)
		}
		return nil
	}
	if r.Index < 0 || r.Index >= len(nl.Cells) {
		return fmt.Errorf("bad cell ref %d", r.Index)
	}
	return nil
}

// TopoOrder returns cell indices in topological order (drivers first) or an
// error on a combinational cycle.
func (nl *Netlist) TopoOrder() ([]int, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, len(nl.Cells))
	order := make([]int, 0, len(nl.Cells))
	type frame struct {
		c, i int
	}
	var stack []frame
	for root := range nl.Cells {
		if color[root] != white {
			continue
		}
		color[root] = gray
		stack = append(stack[:0], frame{root, 0})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			cell := nl.Cells[f.c]
			if f.i < len(cell.Inputs) {
				r := cell.Inputs[f.i]
				f.i++
				if !r.IsPI {
					switch color[r.Index] {
					case white:
						color[r.Index] = gray
						stack = append(stack, frame{r.Index, 0})
					case gray:
						return nil, fmt.Errorf("netlist: cycle through cell %s", nl.Cells[r.Index].Name)
					}
				}
				continue
			}
			color[f.c] = black
			order = append(order, f.c)
			stack = stack[:len(stack)-1]
		}
	}
	return order, nil
}

// Eval simulates the netlist for the given PI assignment.
func (nl *Netlist) Eval(in map[string]bool) (map[string]bool, error) {
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	piVal := make([]bool, len(nl.PINames))
	for i, name := range nl.PINames {
		v, ok := in[name]
		if !ok {
			return nil, fmt.Errorf("netlist: missing input %q", name)
		}
		piVal[i] = v
	}
	cellVal := make([]bool, len(nl.Cells))
	refVal := func(r Ref) bool {
		if r.IsPI {
			return piVal[r.Index]
		}
		return cellVal[r.Index]
	}
	buf := make([]bool, 0, 8)
	for _, ci := range order {
		c := nl.Cells[ci]
		buf = buf[:0]
		for _, r := range c.Inputs {
			buf = append(buf, refVal(r))
		}
		cellVal[ci] = c.Gate.Cover.Eval(buf)
	}
	out := make(map[string]bool, len(nl.POs))
	for _, po := range nl.POs {
		out[po.Name] = refVal(po.Driver)
	}
	return out, nil
}

// Net is a signal net: a driver and its sink pins plus any PO pads.
type Net struct {
	Driver Ref
	// Sinks lists (cell, pin) pairs the net feeds.
	Sinks []SinkPin
	// POPads lists pad positions of primary outputs on this net.
	POPads []geom.Point
	// PONames lists the PO names in POPads order.
	PONames []string
}

// SinkPin identifies a cell input pin.
type SinkPin struct {
	Cell int
	Pin  int
}

// Nets enumerates all nets with at least one sink or pad, keyed by driver.
func (nl *Netlist) Nets() []Net {
	piNets := make([]Net, len(nl.PINames))
	cellNets := make([]Net, len(nl.Cells))
	for i := range piNets {
		piNets[i].Driver = Ref{IsPI: true, Index: i}
	}
	for i := range cellNets {
		cellNets[i].Driver = Ref{Index: i}
	}
	at := func(r Ref) *Net {
		if r.IsPI {
			return &piNets[r.Index]
		}
		return &cellNets[r.Index]
	}
	for ci, c := range nl.Cells {
		for pin, r := range c.Inputs {
			n := at(r)
			n.Sinks = append(n.Sinks, SinkPin{Cell: ci, Pin: pin})
		}
	}
	for _, po := range nl.POs {
		n := at(po.Driver)
		n.POPads = append(n.POPads, po.Pad)
		n.PONames = append(n.PONames, po.Name)
	}
	var out []Net
	for i := range piNets {
		if len(piNets[i].Sinks)+len(piNets[i].POPads) > 0 {
			out = append(out, piNets[i])
		}
	}
	for i := range cellNets {
		if len(cellNets[i].Sinks)+len(cellNets[i].POPads) > 0 {
			out = append(out, cellNets[i])
		}
	}
	return out
}

// DriverPos returns the placed position of a signal driver.
func (nl *Netlist) DriverPos(r Ref) geom.Point {
	if r.IsPI {
		return nl.PIPos[r.Index]
	}
	return nl.Cells[r.Index].Pos
}

// NetPins returns the positions of every terminal of the net: driver,
// sink cells, and PO pads.
func (nl *Netlist) NetPins(n Net) []geom.Point {
	pts := make([]geom.Point, 0, 1+len(n.Sinks)+len(n.POPads))
	pts = append(pts, nl.DriverPos(n.Driver))
	for _, s := range n.Sinks {
		pts = append(pts, nl.Cells[s.Cell].Pos)
	}
	pts = append(pts, n.POPads...)
	return pts
}

// Stats summarizes the netlist.
type Stats struct {
	Cells      int
	ActiveArea float64 // µm², sum of gate areas
	ByGate     map[string]int
}

// Stat computes summary statistics.
func (nl *Netlist) Stat() Stats {
	s := Stats{ByGate: make(map[string]int)}
	for _, c := range nl.Cells {
		s.Cells++
		s.ActiveArea += c.Gate.Area
		s.ByGate[c.Gate.Name]++
	}
	return s
}

// RefName renders a driver reference for messages.
func (nl *Netlist) RefName(r Ref) string {
	if r.IsPI {
		return nl.PINames[r.Index]
	}
	return nl.Cells[r.Index].Name
}
