package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEqAnalyzer flags `==` and `!=` between floating-point expressions
// in cost and arrival-time code. Exact float equality makes tie-breaking
// depend on rounding noise: two mapping candidates whose costs differ
// only in the last ulp compare differently across architectures and
// evaluation orders, which breaks the byte-identical-tables guarantee.
// Use an epsilon comparison or the deterministic tie-break helpers.
//
// Allowed without justification:
//   - comparison against an exact constant sentinel: literal 0 (the
//     "unset" idiom), or any compile-time float constant (e.g. -1 flags,
//     math.Inf(...) is a call and so NOT exempt),
//   - the NaN self-check x != x (and x == x),
//   - comparisons where either operand is a constant expression.
//
// Justify a deliberate exact comparison with `//lint:exact <why>`.
var FloatEqAnalyzer = &Analyzer{
	Name:          "floateq",
	Doc:           "flags exact ==/!= between floats in cost/arrival-time code",
	Justification: "exact",
	Run:           runFloatEq,
}

func runFloatEq(pass *Pass) error {
	for _, f := range pass.Files {
		checkFloatEq(pass, f)
	}
	return nil
}

// checkFloatEq flags exact float ==/!= under root. It is shared with the
// purity program analyzer, which applies it to every function reachable
// from the deterministic root set regardless of package.
func checkFloatEq(pass *Pass, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return true
		}
		if !isFloatExpr(pass, bin.X) || !isFloatExpr(pass, bin.Y) {
			return true
		}
		if isConstExpr(pass, bin.X) || isConstExpr(pass, bin.Y) {
			return true // sentinel comparison against a compile-time constant
		}
		if sameIdentChain(bin.X, bin.Y) {
			return true // NaN self-check
		}
		pass.Reportf(bin.Pos(),
			"compare with an epsilon (math.Abs(a-b) < eps) or use the tie-break helpers; add `//lint:exact <why>` only for genuinely exact values",
			"exact %s between float expressions in cost code is order/rounding sensitive", bin.Op)
		return true
	})
}

func isFloatExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// sameIdentChain reports whether two expressions are the identical
// ident/selector/index chain (textually structural, not aliasing-aware):
// x == x, a.b != a.b, v[i] != v[i].
func sameIdentChain(a, b ast.Expr) bool {
	a, b = unparen(a), unparen(b)
	switch x := a.(type) {
	case *ast.Ident:
		y, ok := b.(*ast.Ident)
		return ok && x.Name == y.Name
	case *ast.SelectorExpr:
		y, ok := b.(*ast.SelectorExpr)
		return ok && x.Sel.Name == y.Sel.Name && sameIdentChain(x.X, y.X)
	case *ast.IndexExpr:
		y, ok := b.(*ast.IndexExpr)
		return ok && sameIdentChain(x.X, y.X) && sameIdentChain(x.Index, y.Index)
	case *ast.BasicLit:
		y, ok := b.(*ast.BasicLit)
		return ok && x.Kind == y.Kind && x.Value == y.Value
	default:
		return false
	}
}
