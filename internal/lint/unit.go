package lint

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file implements the two driver entry points for cmd/lilylint:
//
//   - RunStandalone: load package patterns with the offline Loader and
//     run the applicable analyzers (the `lilylint ./...` mode).
//   - RunUnit: the `go vet -vettool` unitchecker protocol. The go
//     command type-checks the build graph itself and hands each
//     package unit to the tool as a JSON config file naming the Go
//     files and the export data of every dependency; the tool
//     type-checks just that unit against the export data and reports.
//
// Exit-code contract shared by both: 0 clean, 1 findings, 2
// operational error (the caller maps errors to 2).

// unitConfig mirrors the JSON config the go command writes for vet
// tools. Fields we do not consume are listed for documentation but
// left untouched.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnit executes one unitchecker invocation described by the config
// file at cfgPath, printing findings to w. It always writes the (empty)
// facts file the go command expects, so vet result caching works even
// for packages the suite does not apply to.
func RunUnit(cfgPath string, w io.Writer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 2, fmt.Errorf("reading vet config: %w", err)
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 2, fmt.Errorf("parsing vet config %s: %w", cfgPath, err)
	}
	// The go command requires the facts output file to exist; we carry
	// no cross-package facts, so an empty file is always correct.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 2, fmt.Errorf("writing facts output: %w", err)
		}
	}
	if cfg.VetxOnly {
		// Dependency-only visit: facts written, no diagnostics wanted.
		return 0, nil
	}

	// "p [p.test]" style test variants analyze the same base sources;
	// strip the variant suffix so package scoping still applies.
	importPath := cfg.ImportPath
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}
	analyzers := AnalyzersFor(importPath)
	if len(analyzers) == 0 {
		return 0, nil // outside the module: nothing to do
	}

	// The lint contract covers non-test sources (the self-run test and
	// standalone mode agree); skip _test.go files from test variants.
	var fileNames []string
	for _, fn := range cfg.GoFiles {
		if !strings.HasSuffix(fn, "_test.go") {
			fileNames = append(fileNames, fn)
		}
	}
	if len(fileNames) == 0 {
		return 0, nil
	}

	fset := token.NewFileSet()
	pkg := &Package{Path: importPath, Dir: cfg.Dir, Fset: fset}
	for _, fn := range fileNames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return 2, err
		}
		pkg.Files = append(pkg.Files, f)
	}

	// Imports resolve through the compiler export data the go command
	// already produced for every dependency: ImportMap rewrites the
	// source-level path to the canonical one, PackageFile locates the
	// export file.
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	gcImporter := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		GoVersion: cfg.GoVersion,
		Importer: importerFunc(func(path, _ string) (*types.Package, error) {
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			if mapped, ok := cfg.ImportMap[path]; ok {
				path = mapped
			}
			return gcImporter.Import(path)
		}),
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	pkg.Info = newInfo()
	tpkg, err := conf.Check(importPath, fset, pkg.Files, pkg.Info)
	if err != nil || len(pkg.TypeErrors) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		if err == nil {
			err = pkg.TypeErrors[0]
		}
		return 2, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	pkg.Types = tpkg

	findings, err := RunAnalyzers(pkg, analyzers)
	if err != nil {
		return 2, err
	}
	for _, f := range findings {
		fmt.Fprintln(w, f.String())
	}
	if len(findings) > 0 {
		return 1, nil
	}
	return 0, nil
}

// RunStandalone loads the given package patterns (relative to the
// module containing dir) with the offline loader and runs the
// applicable analyzers, printing findings to w.
func RunStandalone(dir string, patterns []string, w io.Writer) (int, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return 2, err
	}
	loader, err := NewLoader(root)
	if err != nil {
		return 2, err
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return 2, err
	}
	total := 0
	for _, pkg := range pkgs {
		analyzers := AnalyzersFor(pkg.Path)
		if len(analyzers) == 0 {
			continue
		}
		findings, err := RunAnalyzers(pkg, analyzers)
		if err != nil {
			return 2, err
		}
		for _, f := range findings {
			fmt.Fprintln(w, f.String())
		}
		total += len(findings)
	}
	if total > 0 {
		return 1, nil
	}
	return 0, nil
}

// findModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}
