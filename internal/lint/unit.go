package lint

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file implements the two driver entry points for cmd/lilylint:
//
//   - RunStandalone: load package patterns with the offline Loader and
//     run the applicable analyzers (the `lilylint ./...` mode).
//   - RunUnit: the `go vet -vettool` unitchecker protocol. The go
//     command type-checks the build graph itself and hands each
//     package unit to the tool as a JSON config file naming the Go
//     files and the export data of every dependency; the tool
//     type-checks just that unit against the export data and reports.
//
// Exit-code contract shared by both: 0 clean, 1 findings, 2
// operational error (the caller maps errors to 2).

// unitConfig mirrors the JSON config the go command writes for vet
// tools. Fields we do not consume are listed for documentation but
// left untouched.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnit executes one unitchecker invocation described by the config
// file at cfgPath, printing findings to w. It always writes the (empty)
// facts file the go command expects, so vet result caching works even
// for packages the suite does not apply to.
func RunUnit(cfgPath string, w io.Writer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 2, fmt.Errorf("reading vet config: %w", err)
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 2, fmt.Errorf("parsing vet config %s: %w", cfgPath, err)
	}
	// The go command requires the facts output file to exist; we carry
	// no cross-package facts, so an empty file is always correct.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 2, fmt.Errorf("writing facts output: %w", err)
		}
	}
	if cfg.VetxOnly {
		// Dependency-only visit: facts written, no diagnostics wanted.
		return 0, nil
	}

	// "p [p.test]" style test variants analyze the same base sources;
	// strip the variant suffix so package scoping still applies.
	importPath := cfg.ImportPath
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}
	analyzers := AnalyzersFor(importPath)
	if len(analyzers) == 0 {
		return 0, nil // outside the module: nothing to do
	}

	// The lint contract covers non-test sources (the self-run test and
	// standalone mode agree); skip _test.go files from test variants.
	var fileNames []string
	for _, fn := range cfg.GoFiles {
		if !strings.HasSuffix(fn, "_test.go") {
			fileNames = append(fileNames, fn)
		}
	}
	if len(fileNames) == 0 {
		return 0, nil
	}

	fset := token.NewFileSet()
	pkg := &Package{Path: importPath, Dir: cfg.Dir, Fset: fset}
	for _, fn := range fileNames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return 2, err
		}
		pkg.Files = append(pkg.Files, f)
	}

	// Imports resolve through the compiler export data the go command
	// already produced for every dependency: ImportMap rewrites the
	// source-level path to the canonical one, PackageFile locates the
	// export file.
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	gcImporter := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		GoVersion: cfg.GoVersion,
		Importer: importerFunc(func(path, _ string) (*types.Package, error) {
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			if mapped, ok := cfg.ImportMap[path]; ok {
				path = mapped
			}
			return gcImporter.Import(path)
		}),
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	pkg.Info = newInfo()
	tpkg, err := conf.Check(importPath, fset, pkg.Files, pkg.Info)
	if err != nil || len(pkg.TypeErrors) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		if err == nil {
			err = pkg.TypeErrors[0]
		}
		return 2, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	pkg.Types = tpkg

	findings, err := RunAnalyzers(pkg, analyzers)
	if err != nil {
		return 2, err
	}

	// Program analyzers run at their anchor units. The test variant
	// ("p [p.test]") analyzes the same non-test sources as the base
	// package, so only the base visit runs them — otherwise every
	// finding would print twice under `go vet ./...` with tests.
	if cfg.ImportPath == importPath {
		progFindings, err := runUnitProgramAnalyzers(cfg.Dir, importPath)
		if err != nil {
			return 2, err
		}
		findings = append(findings, progFindings...)
	}

	for _, f := range findings {
		fmt.Fprintln(w, f.String())
	}
	if len(findings) > 0 {
		return 1, nil
	}
	return 0, nil
}

// vetProgramAnalyzers is the vet-mode registration list for the
// cross-package analyzers. It is spelled out literally — rather than
// aliasing ProgramAnalyzers — so this file names exactly what the vet
// driver exposes; TestDriverRegistriesMatch asserts it stays identical
// to the standalone registry.
var vetProgramAnalyzers = []*ProgramAnalyzer{
	PurityAnalyzer,
	GoLeakAnalyzer,
	HTTPContractAnalyzer,
}

// runUnitProgramAnalyzers runs the cross-package analyzers anchored at
// importPath. The vet protocol hands us one package at a time, so at an
// anchor unit we reload the whole module with the offline loader, build
// the call graph, and run the anchored analyzers over it. Findings are
// filtered so the aggregate over `go vet ./...` contains each exactly
// once: a finding in package P prints at unit P when P is an anchor,
// and at this (the triggering) anchor when P is outside every anchor.
func runUnitProgramAnalyzers(dir, importPath string) ([]Finding, error) {
	var triggered []*ProgramAnalyzer
	for _, a := range vetProgramAnalyzers {
		for _, anchor := range a.Anchors {
			if anchor == importPath {
				triggered = append(triggered, a)
				break
			}
		}
	}
	if len(triggered) == 0 {
		return nil, nil
	}
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		return nil, err
	}
	prog := BuildProgram(pkgs)
	var out []Finding
	for _, a := range triggered {
		fs, err := RunProgramAnalyzers(prog, []*ProgramAnalyzer{a})
		if err != nil {
			return nil, err
		}
		anchored := make(map[string]bool, len(a.Anchors))
		for _, anc := range a.Anchors {
			anchored[anc] = true
		}
		for _, f := range fs {
			p := prog.PackageOfFile(f.Posn.Filename)
			if p == nil {
				continue
			}
			if p.Path == importPath || !anchored[p.Path] {
				out = append(out, f)
			}
		}
	}
	sortFindings(out)
	return out, nil
}

// RunStandalone loads the given package patterns (relative to the
// module containing dir) with the offline loader and runs the
// applicable analyzers, printing findings to w.
func RunStandalone(dir string, patterns []string, w io.Writer) (int, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return 2, err
	}
	loader, err := NewLoader(root)
	if err != nil {
		return 2, err
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return 2, err
	}
	total := 0
	for _, pkg := range pkgs {
		analyzers := AnalyzersFor(pkg.Path)
		if len(analyzers) == 0 {
			continue
		}
		findings, err := RunAnalyzers(pkg, analyzers)
		if err != nil {
			return 2, err
		}
		for _, f := range findings {
			fmt.Fprintln(w, f.String())
		}
		total += len(findings)
	}

	// Cross-package analyzers trigger when any of their anchors is among
	// the requested packages; each runs once over the whole module (the
	// call graph needs every package regardless of the request) and
	// reports all its findings.
	requested := make([]string, len(pkgs))
	for i, pkg := range pkgs {
		requested[i] = pkg.Path
	}
	if progAnalyzers := ProgramAnalyzersFor(requested); len(progAnalyzers) > 0 {
		all, err := loader.Load("./...")
		if err != nil {
			return 2, err
		}
		prog := BuildProgram(all)
		findings, err := RunProgramAnalyzers(prog, progAnalyzers)
		if err != nil {
			return 2, err
		}
		for _, f := range findings {
			fmt.Fprintln(w, f.String())
		}
		total += len(findings)
	}
	if total > 0 {
		return 1, nil
	}
	return 0, nil
}

// findModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}
