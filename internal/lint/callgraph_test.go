package lint

import (
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

const cgSrc = `package cg

type Shape interface{ Area() float64 }

type Square struct{ s float64 }

func (q Square) Area() float64 { return q.s * q.s }

type Circle struct{ r float64 }

func (c Circle) Area() float64 { return 3.0 * c.r * c.r }

func total(shapes []Shape) float64 {
	sum := 0.0
	for _, s := range shapes {
		sum += s.Area()
	}
	return sum
}

func helper() int { return 1 }

func viaValue() int {
	f := helper
	return f()
}

func inClosure() {
	g := func() { helper() }
	g()
}

func orphan() {}

func root() {
	_ = total(nil)
	_ = viaValue()
	inClosure()
}
`

// loadTestPkg type-checks one import-free source file as a Package.
func loadTestPkg(t *testing.T, path, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Path: path, Fset: fset}
	pkg.Files = append(pkg.Files, f)
	pkg.Info = newInfo()
	conf := types.Config{}
	tpkg, err := conf.Check(path, fset, pkg.Files, pkg.Info)
	if err != nil {
		t.Fatal(err)
	}
	pkg.Types = tpkg
	return pkg
}

func calleeNames(n *CGNode) map[string]bool {
	out := make(map[string]bool)
	for _, fn := range n.Callees() {
		out[fn.FullName()] = true
	}
	return out
}

func TestCallGraphEdges(t *testing.T) {
	pkg := loadTestPkg(t, "cg", cgSrc)
	prog := BuildProgram([]*Package{pkg})
	g := prog.Graph

	rootFn := g.FuncByName("cg.root")
	if rootFn == nil {
		t.Fatal("cg.root not found")
	}
	rootCallees := calleeNames(g.Node(rootFn))
	for _, want := range []string{"cg.total", "cg.viaValue", "cg.inClosure"} {
		if !rootCallees[want] {
			t.Errorf("root is missing static edge to %s (has %v)", want, rootCallees)
		}
	}

	// Interface dispatch resolves to every implementing type (CHA).
	totalCallees := calleeNames(g.Node(g.FuncByName("cg.total")))
	for _, want := range []string{"(cg.Square).Area", "(cg.Circle).Area"} {
		if !totalCallees[want] {
			t.Errorf("total is missing interface edge to %s (has %v)", want, totalCallees)
		}
	}

	// A call through a function value links to the address-taken target.
	viaCallees := calleeNames(g.Node(g.FuncByName("cg.viaValue")))
	if !viaCallees["cg.helper"] {
		t.Errorf("viaValue is missing dynamic edge to cg.helper (has %v)", viaCallees)
	}

	// Calls inside a closure belong to the declaring function.
	closureCallees := calleeNames(g.Node(g.FuncByName("cg.inClosure")))
	if !closureCallees["cg.helper"] {
		t.Errorf("inClosure is missing closure-attributed edge to cg.helper (has %v)", closureCallees)
	}
}

func TestCallGraphReachable(t *testing.T) {
	pkg := loadTestPkg(t, "cg", cgSrc)
	g := BuildProgram([]*Package{pkg}).Graph

	reach := g.Reachable([]*types.Func{g.FuncByName("cg.root")}, nil)
	names := make(map[string]bool)
	for fn := range reach {
		names[fn.FullName()] = true
	}
	for _, want := range []string{
		"cg.root", "cg.total", "cg.viaValue", "cg.inClosure", "cg.helper",
		"(cg.Square).Area", "(cg.Circle).Area",
	} {
		if !names[want] {
			t.Errorf("%s should be reachable from root (got %v)", want, names)
		}
	}
	if names["cg.orphan"] {
		t.Error("cg.orphan is not called by anything yet appears reachable")
	}

	// skip prunes traversal.
	reach = g.Reachable([]*types.Func{g.FuncByName("cg.root")}, func(n *CGNode) bool {
		return n.Fn.Name() == "viaValue"
	})
	for fn := range reach {
		if fn.FullName() == "cg.viaValue" {
			t.Error("skipped node appears in reachable set")
		}
	}

	// helper is still reachable through inClosure even with viaValue cut.
	found := false
	for fn := range reach {
		if fn.FullName() == "cg.helper" {
			found = true
		}
	}
	if !found {
		t.Error("cg.helper should stay reachable through inClosure")
	}
}

func TestFuncsInPackageSorted(t *testing.T) {
	pkg := loadTestPkg(t, "cg", cgSrc)
	g := BuildProgram([]*Package{pkg}).Graph
	fns := g.FuncsInPackage("cg")
	if len(fns) == 0 {
		t.Fatal("no functions found in cg")
	}
	for i := 1; i < len(fns); i++ {
		if fns[i-1].FullName() >= fns[i].FullName() {
			t.Fatalf("FuncsInPackage not sorted: %s before %s", fns[i-1].FullName(), fns[i].FullName())
		}
	}
	if g.FuncByName("cg.nosuch") != nil {
		t.Error("FuncByName invented a function")
	}
}
