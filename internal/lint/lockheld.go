package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"sort"
)

// LockHeldAnalyzer enforces the repo's lock-discipline convention and
// catches mutexes copied by value.
//
// Convention: a method whose doc comment contains "requires x.mu" (for
// any receiver name x) must only be called while x.mu is held. The
// analyzer resolves every call to such a method and checks, with a
// straight-line scan of the calling function, that a matching
// `x.mu.Lock()` precedes the call without an intervening non-deferred
// `x.mu.Unlock()`. Calls made from another "requires mu" method of the
// same type are trusted (the obligation moves to that method's own
// callers). The scan is linear over source order, so a Lock inside one
// branch does not license a call in a sibling branch — structure the
// critical section so the scan can see it, or justify with
// `//lint:locked <why>`.
//
// Copy check: sync.Mutex / sync.RWMutex values (or structs directly
// embedding them) must not be copied — by-value receivers, by-value
// params/results, value assignments from existing variables, and range
// values over containers of such types are flagged.
var LockHeldAnalyzer = &Analyzer{
	Name:          "lockheld",
	Doc:           "flags 'requires mu' methods called without the lock and mutexes copied by value",
	Justification: "locked",
	Run:           runLockHeld,
}

var requiresMuRE = regexp.MustCompile(`requires\s+(\w+\.)?mu\b`)

func runLockHeld(pass *Pass) error {
	locked := collectLockedMethods(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunctionLocks(pass, fn, locked)
		}
	}
	checkMutexCopies(pass)
	return nil
}

// collectLockedMethods maps *types.Func objects of methods documented
// "requires ... mu" to true.
func collectLockedMethods(pass *Pass) map[*types.Func]bool {
	locked := make(map[*types.Func]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Doc == nil {
				continue
			}
			if !requiresMuRE.MatchString(fn.Doc.Text()) {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				locked[obj] = true
			}
		}
	}
	return locked
}

// lockEvent is one mu.Lock/mu.Unlock call in a function, in source order.
type lockEvent struct {
	pos      int // token.Pos as int for sorting
	owner    ast.Expr
	lock     bool // Lock/RLock vs Unlock/RUnlock
	deferred bool
}

// checkFunctionLocks verifies every call to a locked method inside fn.
func checkFunctionLocks(pass *Pass, fn *ast.FuncDecl, locked map[*types.Func]bool) {
	self, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	selfLocked := self != nil && locked[self]

	events := collectLockEvents(pass, fn.Body)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // separate goroutine/closure: no lock inheritance
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		callee, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || !locked[callee] {
			return true
		}
		// Calling another locked method from a locked method of the same
		// receiver is the sanctioned composition pattern.
		if selfLocked && sameReceiverType(self, callee) {
			return true
		}
		if lockHeldAt(events, sel.X, int(call.Pos())) {
			return true
		}
		pass.Reportf(call.Pos(),
			"acquire the lock first (x.mu.Lock(); defer x.mu.Unlock()) or call from a method documented `requires mu`",
			"call to %s (documented `requires mu`) without holding the lock", callee.Name())
		return true
	})
}

func sameReceiverType(a, b *types.Func) bool {
	ra, rb := a.Type().(*types.Signature).Recv(), b.Type().(*types.Signature).Recv()
	if ra == nil || rb == nil {
		return false
	}
	return types.Identical(derefType(ra.Type()), derefType(rb.Type()))
}

func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// collectLockEvents finds x.mu.Lock()/Unlock() (and RLock/RUnlock) calls
// directly in the function body (not in nested function literals).
func collectLockEvents(pass *Pass, body *ast.BlockStmt) []lockEvent {
	var events []lockEvent
	var walk func(n ast.Node, deferred bool)
	walk = func(root ast.Node, deferred bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			if d, isDefer := n.(*ast.DeferStmt); isDefer {
				walk(d.Call, true)
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			method := sel.Sel.Name
			isLock := method == "Lock" || method == "RLock"
			isUnlock := method == "Unlock" || method == "RUnlock"
			if !isLock && !isUnlock {
				return true
			}
			// The receiver must be a selector ending in .mu (our naming
			// convention) whose type is a sync mutex.
			muSel, ok := sel.X.(*ast.SelectorExpr)
			if !ok || muSel.Sel.Name != "mu" {
				return true
			}
			if tv, ok := pass.TypesInfo.Types[sel.X]; !ok || !isSyncMutex(derefType(tv.Type)) {
				return true
			}
			events = append(events, lockEvent{
				pos:      int(call.Pos()),
				owner:    muSel.X,
				lock:     isLock,
				deferred: deferred,
			})
			return true
		})
	}
	walk(body, false)
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}

func isSyncMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockHeldAt replays the lock events preceding pos in source order and
// reports whether owner's mutex is held there. Deferred unlocks release
// at function exit, so they do not clear the held state mid-scan.
func lockHeldAt(events []lockEvent, owner ast.Expr, pos int) bool {
	held := false
	for _, ev := range events {
		if ev.pos >= pos {
			break
		}
		if !sameIdentChain(ev.owner, owner) {
			continue
		}
		switch {
		case ev.lock:
			held = true
		case ev.deferred:
			// releases at return, not here
		default:
			held = false
		}
	}
	return held
}

// checkMutexCopies flags values of mutex-containing types copied by
// value: receivers, params, results, assignments from existing values,
// and range values.
func checkMutexCopies(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Recv != nil {
					for _, field := range x.Recv.List {
						checkFieldCopy(pass, field, "receiver")
					}
				}
				checkFuncTypeCopy(pass, x.Type)
			case *ast.FuncLit:
				checkFuncTypeCopy(pass, x.Type)
			case *ast.AssignStmt:
				for i, rhs := range x.Rhs {
					// Assigning to blank discards the value; no copy escapes.
					if len(x.Lhs) == len(x.Rhs) && isBlank(x.Lhs[i]) {
						continue
					}
					checkValueCopy(pass, rhs)
				}
			case *ast.RangeStmt:
				if x.Value != nil && !isBlank(x.Value) {
					if t := exprType(pass, x.Value); t != nil && containsMutex(t) {
						pass.Reportf(x.Value.Pos(),
							"range over indices (or a slice of pointers) instead",
							"range value copies %s, which contains a sync mutex", typeString(t))
					}
				}
			}
			return true
		})
	}
}

// exprType resolves an expression's type, falling back to the defined
// object for `:=`-introduced idents (range variables live in Defs, not
// in the Types map).
func exprType(pass *Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj, ok := pass.TypesInfo.Defs[id]; ok && obj != nil {
			return obj.Type()
		}
		if obj, ok := pass.TypesInfo.Uses[id]; ok {
			return obj.Type()
		}
	}
	return nil
}

func checkFuncTypeCopy(pass *Pass, ftype *ast.FuncType) {
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			checkFieldCopy(pass, field, "parameter")
		}
	}
	if ftype.Results != nil {
		for _, field := range ftype.Results.List {
			checkFieldCopy(pass, field, "result")
		}
	}
}

func checkFieldCopy(pass *Pass, field *ast.Field, what string) {
	tv, ok := pass.TypesInfo.Types[field.Type]
	if !ok {
		return
	}
	if containsMutex(tv.Type) {
		pass.Reportf(field.Pos(),
			"pass a pointer instead",
			"by-value %s copies %s, which contains a sync mutex", what, typeString(tv.Type))
	}
}

// checkValueCopy flags RHS expressions that read an existing
// mutex-containing value (ident, selector, deref, index). Fresh values
// (composite literals, function call results) are fine.
func checkValueCopy(pass *Pass, rhs ast.Expr) {
	switch unparen(rhs).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	tv, ok := pass.TypesInfo.Types[rhs]
	if !ok || !containsMutex(tv.Type) {
		return
	}
	// Reading through a pointer type is fine; the copy happens only for
	// value types (checked by containsMutex already rejecting pointers).
	pass.Reportf(rhs.Pos(),
		"copy a pointer to the value, or restructure to avoid the copy",
		"assignment copies %s, which contains a sync mutex", typeString(tv.Type))
}

// containsMutex reports whether t directly is or embeds (through struct
// fields and arrays, not pointers/slices/maps) a sync.Mutex/RWMutex.
func containsMutex(t types.Type) bool {
	return containsMutexRec(t, make(map[types.Type]bool))
}

func containsMutexRec(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if isSyncMutex(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMutexRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsMutexRec(u.Elem(), seen)
	}
	return false
}
