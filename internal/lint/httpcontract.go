package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// HTTPContractAnalyzer pins the response-write discipline of the HTTP
// layer: every handler writes exactly one status code on every path,
// every 429 carries Retry-After, and no body bytes follow an error
// status. The 409/410/429 semantics of the job and batch APIs are
// contracts clients program against; this keeps refactors from quietly
// breaking them.
//
// Checked, per function that takes an http.ResponseWriter:
//
//   - a definite status write (WriteHeader, or a helper that always
//     writes, like writeJSON/http.Error) after another definite status
//     write on the same path — double WriteHeader;
//   - a definite status write inside a for/range loop — it would fire
//     once per iteration;
//   - body bytes written after a definite error status (>= 400):
//     error responses end at the status + error payload;
//   - any occurrence of 429 (literal or http.StatusTooManyRequests)
//     without a lexically preceding Header().Set("Retry-After", ...) in
//     the same function;
//   - a handler-shaped function (w http.ResponseWriter, r *http.Request,
//     no results) that never writes anything and never hands w to
//     another function — a hung request.
//
// Helpers are classified through the call graph: a function that writes
// a status on every path (writeJSON, writeError, http.Error) counts as
// a definite write at its call sites; one that writes on some paths
// (lookupJob, finishedJob) counts as a conditional write. Justify
// deliberate exceptions with `//lint:response <why>`.
var HTTPContractAnalyzer = HTTPContractAnalyzerFor(ModulePath + "/internal/server")

// HTTPContractAnalyzerFor builds an httpcontract analyzer scoped to the
// given import paths (which are also its anchors).
func HTTPContractAnalyzerFor(importPaths ...string) *ProgramAnalyzer {
	a := &ProgramAnalyzer{
		Name:          "httpcontract",
		Doc:           "handlers write exactly one status per path, 429s carry Retry-After, no body after an error status",
		Justification: "response",
		Anchors:       importPaths,
	}
	a.Run = func(pass *ProgramPass) error {
		c := &contractChecker{
			pass:    pass,
			classes: make(map[*types.Func]respClass),
		}
		for _, path := range importPaths {
			pkg := pass.Prog.PackageFor(path)
			if pkg == nil {
				continue
			}
			c.checkPackage(pkg)
		}
		return nil
	}
	return a
}

// respClass says what a function does with the ResponseWriter it is
// handed: never writes, may write on some paths, or definitely writes.
type respClass int

const (
	classNever respClass = iota
	classMay
	classAlways
)

type contractChecker struct {
	pass    *ProgramPass
	classes map[*types.Func]respClass
	inProg  map[*types.Func]bool
}

func (c *contractChecker) checkPackage(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := respWriterParam(pkg, fd)
			if w == nil {
				continue
			}
			c.checkFunc(pkg, fd, w)
		}
	}
}

// respWriterParam returns the object of fd's http.ResponseWriter
// parameter, or nil.
func respWriterParam(pkg *Package, fd *ast.FuncDecl) types.Object {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := pkg.Info.Types[field.Type]
		if !ok || !isResponseWriter(tv.Type) {
			continue
		}
		if len(field.Names) == 0 {
			return nil // unnamed: never used, not checkable
		}
		return pkg.Info.Defs[field.Names[0]]
	}
	return nil
}

func isResponseWriter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "ResponseWriter"
}

// handlerShaped reports whether fd is (w http.ResponseWriter,
// r *http.Request) with no results — the http.HandlerFunc shape.
func handlerShaped(pkg *Package, fd *ast.FuncDecl) bool {
	if fd.Type.Results != nil && len(fd.Type.Results.List) > 0 {
		return false
	}
	params := fd.Type.Params
	if params == nil || len(params.List) != 2 {
		return false
	}
	tv0, ok0 := pkg.Info.Types[params.List[0].Type]
	tv1, ok1 := pkg.Info.Types[params.List[1].Type]
	if !ok0 || !ok1 || !isResponseWriter(tv0.Type) {
		return false
	}
	ptr, ok := tv1.Type.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "Request"
}

// writeEffect is one response-affecting call found in a statement.
type writeEffect struct {
	pos       token.Pos
	kind      respClass // classAlways = definite status write, classMay = conditional
	body      bool      // writes body bytes (w.Write, fmt.Fprintf(w,...), w to opaque callee)
	status    int       // constant status when known, else 0
	errHelper bool      // definite write known to be an error response
}

// pathState tracks what has definitely happened on the current path.
type pathState struct {
	written    bool // a status was definitely written
	errWritten bool // a definite error (>=400) status was written
}

func (c *contractChecker) checkFunc(pkg *Package, fd *ast.FuncDecl, w types.Object) {
	// Taint direct aliases of w (rec := &statusRecorder{ResponseWriter: w}).
	aliases := map[types.Object]bool{w: true}
	collectAliases(pkg, fd.Body, aliases)

	st := pathState{}
	sawAnyWrite := false
	var walk func(stmts []ast.Stmt, s pathState) (pathState, bool)
	loop := func(pos token.Pos, x *ast.BlockStmt, s pathState) pathState {
		// A definite status write inside a loop is fine on paths that
		// return before the next iteration (the validate-then-bail
		// idiom); only a write that survives to the loop's fall-through
		// can repeat.
		loopS, term := walk(x.List, s)
		if !term && loopS.written && !s.written {
			c.pass.Reportf(pos,
				"make every loop iteration that writes a status also return, or hoist the write out of the loop",
				"status write inside a loop can repeat across iterations")
		}
		s.written = s.written || loopS.written
		s.errWritten = s.errWritten || loopS.errWritten
		return s
	}
	walk = func(stmts []ast.Stmt, s pathState) (pathState, bool) {
		for _, stmt := range stmts {
			switch x := stmt.(type) {
			case *ast.ReturnStmt:
				c.applyEffects(pkg, stmt, aliases, &s, &sawAnyWrite)
				return s, true
			case *ast.IfStmt:
				if x.Init != nil {
					c.applyEffects(pkg, x.Init, aliases, &s, &sawAnyWrite)
				}
				c.applyEffects(pkg, x.Cond, aliases, &s, &sawAnyWrite)
				thenS, thenTerm := walk(x.Body.List, s)
				elseS, elseTerm := s, false
				if x.Else != nil {
					switch e := x.Else.(type) {
					case *ast.BlockStmt:
						elseS, elseTerm = walk(e.List, s)
					case *ast.IfStmt:
						elseS, elseTerm = walk([]ast.Stmt{e}, s)
					}
				}
				s = mergeBranches(s, thenS, thenTerm, elseS, elseTerm)
				if thenTerm && elseTerm && x.Else != nil {
					return s, true
				}
			case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				s = c.walkClauses(x, s, walk, pkg, aliases, &sawAnyWrite)
			case *ast.ForStmt:
				if x.Init != nil {
					c.applyEffects(pkg, x.Init, aliases, &s, &sawAnyWrite)
				}
				s = loop(x.Pos(), x.Body, s)
			case *ast.RangeStmt:
				c.applyEffects(pkg, x.X, aliases, &s, &sawAnyWrite)
				s = loop(x.Pos(), x.Body, s)
			case *ast.BlockStmt:
				var term bool
				s, term = walk(x.List, s)
				if term {
					return s, true
				}
			case *ast.DeferStmt, *ast.GoStmt:
				// Deferred/spawned writes run outside this path order; the
				// write discipline inside their literals is out of scope.
			case *ast.LabeledStmt:
				var term bool
				s, term = walk([]ast.Stmt{x.Stmt}, s)
				if term {
					return s, true
				}
			default:
				if isPanicStmt(pkg, stmt) {
					return s, true
				}
				c.applyEffects(pkg, stmt, aliases, &s, &sawAnyWrite)
			}
		}
		return s, false
	}
	st, _ = walk(fd.Body.List, st)
	_ = st

	c.checkRetryAfter(pkg, fd)

	if !sawAnyWrite && handlerShaped(pkg, fd) {
		c.pass.Reportf(fd.Name.Pos(),
			"write a response (or delegate the ResponseWriter) on every path, or add `//lint:response <why>`",
			"handler %s never writes a response and never hands off the ResponseWriter", fd.Name.Name)
	}
}

// walkClauses merges switch/select clause bodies like an if/else chain.
func (c *contractChecker) walkClauses(stmt ast.Stmt, s pathState,
	walk func([]ast.Stmt, pathState) (pathState, bool),
	pkg *Package, aliases map[types.Object]bool, sawAnyWrite *bool) pathState {

	var clauses [][]ast.Stmt
	switch x := stmt.(type) {
	case *ast.SwitchStmt:
		if x.Init != nil {
			c.applyEffects(pkg, x.Init, aliases, &s, sawAnyWrite)
		}
		if x.Tag != nil {
			c.applyEffects(pkg, x.Tag, aliases, &s, sawAnyWrite)
		}
		for _, cl := range x.Body.List {
			clauses = append(clauses, cl.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range x.Body.List {
			clauses = append(clauses, cl.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, cl := range x.Body.List {
			clauses = append(clauses, cl.(*ast.CommClause).Body)
		}
	}
	merged := s
	for _, body := range clauses {
		clS, clTerm := walk(body, s)
		if !clTerm {
			merged.written = merged.written || clS.written
			merged.errWritten = merged.errWritten || clS.errWritten
		}
	}
	return merged
}

// mergeBranches joins if/else path states: a branch that terminated
// (returned) does not propagate its writes past the join.
func mergeBranches(entry, thenS pathState, thenTerm bool, elseS pathState, elseTerm bool) pathState {
	out := entry
	if !thenTerm {
		out.written = out.written || thenS.written
		out.errWritten = out.errWritten || thenS.errWritten
	}
	if !elseTerm {
		out.written = out.written || elseS.written
		out.errWritten = out.errWritten || elseS.errWritten
	}
	return out
}

// applyEffects scans one statement/expression (excluding nested function
// literals) for response writes in source order and applies the contract
// rules against the current path state.
func (c *contractChecker) applyEffects(pkg *Package, node ast.Node, aliases map[types.Object]bool, s *pathState, sawAnyWrite *bool) {
	effects := c.collectEffects(pkg, node, aliases)
	for _, e := range effects {
		*sawAnyWrite = true
		switch {
		case e.kind == classAlways:
			if s.written {
				c.pass.Reportf(e.pos,
					"make the earlier write and this one mutually exclusive (return after the first, or restructure)",
					"second status write on the same path: the response status was already committed")
			}
			s.written = true
			if e.errHelper || e.status >= 400 {
				s.errWritten = true
			}
		case e.body:
			if s.errWritten {
				c.pass.Reportf(e.pos,
					"error responses end at the error payload; move this write onto the success path",
					"body bytes written after an error status was committed")
			}
			// First body write commits an implicit 200.
			s.written = true
		}
	}
}

// collectEffects finds response-affecting calls under node, in source
// order, skipping function literal interiors.
func (c *contractChecker) collectEffects(pkg *Package, node ast.Node, aliases map[types.Object]bool) []writeEffect {
	var out []writeEffect
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if e, ok := c.callEffect(pkg, call, aliases); ok {
			out = append(out, e)
		}
		return true
	})
	return out
}

// callEffect classifies one call's response effect.
func (c *contractChecker) callEffect(pkg *Package, call *ast.CallExpr, aliases map[types.Object]bool) (writeEffect, bool) {
	// Method calls on w itself.
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := unparen(sel.X).(*ast.Ident); ok && aliases[pkg.Info.Uses[id]] {
			switch sel.Sel.Name {
			case "WriteHeader":
				e := writeEffect{pos: call.Pos(), kind: classAlways}
				if len(call.Args) == 1 {
					e.status = constStatus(pkg, call.Args[0])
				}
				return e, true
			case "Write":
				return writeEffect{pos: call.Pos(), body: true}, true
			case "Header":
				return writeEffect{}, false // header mutation, not a write
			}
		}
	}

	// Does the call receive w (or an alias) as an argument?
	handsOffW := false
	for _, arg := range call.Args {
		if id, ok := unparen(arg).(*ast.Ident); ok && aliases[pkg.Info.Uses[id]] {
			handsOffW = true
			break
		}
	}
	if !handsOffW {
		return writeEffect{}, false
	}

	fn := staticCallee(pkg, call.Fun)
	if fn == nil {
		// Dynamic call handed w: could write anything.
		return writeEffect{pos: call.Pos(), kind: classMay}, true
	}
	switch c.classify(fn) {
	case classAlways:
		e := writeEffect{pos: call.Pos(), kind: classAlways}
		e.status, e.errHelper = statusArgOf(pkg, fn, call)
		return e, true
	case classMay:
		return writeEffect{pos: call.Pos(), kind: classMay}, true
	default:
		// Callee never status-writes but consumes w: body sink
		// (io.Copy(w, ...), template.Execute(w, ...), fmt.Fprintf(w, ...)).
		return writeEffect{pos: call.Pos(), body: true}, true
	}
}

// statusArgOf extracts a constant status argument from a call to a
// definite writer, and whether the callee is an error-only helper.
func statusArgOf(pkg *Package, fn *types.Func, call *ast.CallExpr) (int, bool) {
	if fn.Pkg() != nil && fn.Pkg().Path() == "net/http" {
		switch fn.Name() {
		case "Error":
			if len(call.Args) == 3 {
				return constStatus(pkg, call.Args[2]), true
			}
			return 0, true
		case "NotFound":
			return 404, true
		case "Redirect":
			if len(call.Args) == 4 {
				return constStatus(pkg, call.Args[3]), false
			}
		}
		return 0, false
	}
	// Module helpers: any constant in 100..599 among the arguments.
	for _, arg := range call.Args {
		if s := constStatus(pkg, arg); s != 0 {
			return s, false
		}
	}
	return 0, false
}

// constStatus returns arg's constant integer value when it is a
// plausible HTTP status (100..599), else 0.
func constStatus(pkg *Package, arg ast.Expr) int {
	tv, ok := pkg.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0
	}
	v, ok := constant.Int64Val(tv.Value)
	if !ok || v < 100 || v > 599 {
		return 0
	}
	return int(v)
}

// classify determines a function's response class: does it write a
// status on every path (Always), some paths (May), or never?
//
// The Always approximation is syntactic: a definite write statement at
// the top level of the body (writeJSON, writeError shape). Recursion
// and unknown externals degrade to May.
func (c *contractChecker) classify(fn *types.Func) respClass {
	if cls, ok := c.classes[fn]; ok {
		return cls
	}
	if c.inProg == nil {
		c.inProg = make(map[*types.Func]bool)
	}
	if c.inProg[fn] {
		return classMay // recursion: be conservative
	}
	c.inProg[fn] = true
	defer delete(c.inProg, fn)

	cls := c.classifyUncached(fn)
	c.classes[fn] = cls
	return cls
}

func (c *contractChecker) classifyUncached(fn *types.Func) respClass {
	// Known stdlib definite writers.
	if fn.Pkg() != nil && fn.Pkg().Path() == "net/http" {
		switch fn.Name() {
		case "Error", "NotFound", "Redirect", "ServeFile", "ServeContent", "ServeFileFS":
			return classAlways
		}
	}
	n := c.pass.Prog.Graph.Node(fn)
	if n == nil || n.Decl == nil || n.Decl.Body == nil {
		// External function: assume it may write if it takes a
		// ResponseWriter, else treat as a body sink.
		if sigHasResponseWriter(fn) {
			return classMay
		}
		return classNever
	}
	w := respWriterParam(n.Pkg, n.Decl)
	if w == nil {
		return classNever
	}
	aliases := map[types.Object]bool{w: true}
	collectAliases(n.Pkg, n.Decl.Body, aliases)

	topLevelAlways := false
	anyWrite := false
	for _, stmt := range n.Decl.Body.List {
		for _, e := range c.collectEffects(n.Pkg, stmt, aliases) {
			anyWrite = true
			if e.kind == classAlways && stmtIsTopLevel(stmt) {
				topLevelAlways = true
			}
		}
	}
	// Look inside nested control flow for conditional writes.
	if !anyWrite {
		ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
			if anyWrite {
				return false
			}
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := m.(*ast.CallExpr); ok {
				if _, isEffect := c.callEffect(n.Pkg, call, aliases); isEffect {
					anyWrite = true
				}
			}
			return true
		})
	}
	switch {
	case topLevelAlways:
		return classAlways
	case anyWrite:
		return classMay
	default:
		return classNever
	}
}

// stmtIsTopLevel: effects collected from a body-list statement are top
// level unless the statement is control flow (whose nested effects were
// still collected by collectEffects' Inspect).
func stmtIsTopLevel(stmt ast.Stmt) bool {
	switch stmt.(type) {
	case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt,
		*ast.ForStmt, *ast.RangeStmt, *ast.BlockStmt, *ast.DeferStmt, *ast.GoStmt:
		return false
	}
	return true
}

func sigHasResponseWriter(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isResponseWriter(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// collectAliases taints locals directly aliasing w: assignments whose
// RHS is w itself, a unary &composite-literal mentioning w, or a
// composite literal mentioning w. Calls do NOT propagate taint
// (http.MaxBytesReader(w, ...) returns a reader, not a writer).
func collectAliases(pkg *Package, body *ast.BlockStmt, aliases map[types.Object]bool) {
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				if !directAlias(pkg, rhs, aliases) {
					continue
				}
				id, ok := unparen(as.Lhs[i]).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pkg.Info.Defs[id]
				if obj == nil {
					obj = pkg.Info.Uses[id]
				}
				if obj != nil && !aliases[obj] {
					aliases[obj] = true
					changed = true
				}
			}
			return true
		})
	}
}

// directAlias reports whether rhs directly carries w's identity.
func directAlias(pkg *Package, rhs ast.Expr, aliases map[types.Object]bool) bool {
	switch x := unparen(rhs).(type) {
	case *ast.Ident:
		return aliases[pkg.Info.Uses[x]]
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return directAlias(pkg, x.X, aliases)
		}
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			e := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				e = kv.Value
			}
			if id, ok := unparen(e).(*ast.Ident); ok && aliases[pkg.Info.Uses[id]] {
				return true
			}
		}
	}
	return false
}

// checkRetryAfter demands a lexically preceding Retry-After header set
// for every occurrence of status 429 in the function.
func (c *contractChecker) checkRetryAfter(pkg *Package, fd *ast.FuncDecl) {
	var retryPositions []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Set" && sel.Sel.Name != "Add") || len(call.Args) < 1 {
			return true
		}
		tv, ok := pkg.Info.Types[call.Args[0]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return true
		}
		if constant.StringVal(tv.Value) == "Retry-After" {
			retryPositions = append(retryPositions, call.Pos())
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var is429 bool
		switch x := n.(type) {
		case *ast.SelectorExpr:
			is429 = x.Sel.Name == "StatusTooManyRequests"
			if is429 {
				// Still descend into X, but the Sel alone would
				// double-count; SelectorExpr pos covers it.
			}
		case *ast.BasicLit:
			is429 = x.Kind == token.INT && x.Value == "429"
		}
		if !is429 {
			return true
		}
		for _, rp := range retryPositions {
			if rp < n.Pos() {
				return true
			}
		}
		c.pass.Reportf(n.Pos(),
			`set w.Header().Set("Retry-After", ...) before committing the 429, or add `+"`//lint:response <why>`",
			"429 response without a lexically preceding Retry-After header")
		return true
	})
}

// isPanicStmt reports whether stmt is a bare panic(...) call.
func isPanicStmt(pkg *Package, stmt ast.Stmt) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isB := pkg.Info.Uses[id].(*types.Builtin)
	return isB
}
