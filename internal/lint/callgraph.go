package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file builds the whole-program call graph the program-level
// analyzers (purity, goleak, httpcontract) share. The construction is
// CHA-style (class hierarchy analysis) over go/types:
//
//   - static calls (package functions, methods with a concrete
//     receiver) get one edge to their *types.Func;
//   - calls through an interface method get one edge per concrete
//     program type whose method set implements the interface (the
//     class-hierarchy over-approximation);
//   - calls through function values (variables, fields, parameters)
//     get one edge to every program function whose identity is taken
//     as a value somewhere and whose type matches the called value's
//     type (conservative: over-approximates, never misses).
//
// Functions outside the loaded program (stdlib reached through the
// importer) become leaf nodes: they appear as callees so analyzers can
// match them by qualified name, but they have no body to traverse.
// Function literals are attributed to their enclosing declaration: a
// call made inside a closure of F is an edge out of F.

// Program is a set of loaded packages plus the call graph over them —
// the shared substrate for cross-package analyzers. All packages must
// share one token.FileSet (the Loader guarantees this).
type Program struct {
	byPath map[string]*Package
	byFile map[string]*Package

	Packages []*Package
	Graph    *CallGraph
}

// PackageFor returns the loaded package owning importPath, or nil.
func (p *Program) PackageFor(importPath string) *Package {
	return p.byPath[importPath]
}

// PackageOfFile returns the loaded package containing filename, or nil.
func (p *Program) PackageOfFile(filename string) *Package {
	return p.byFile[filename]
}

// CGNode is one function in the call graph.
type CGNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl // nil for functions without loaded source
	Pkg  *Package      // nil for functions outside the program

	out map[*types.Func]bool
}

// Callees returns the node's out-edges, sorted by full name for
// deterministic traversal order.
func (n *CGNode) Callees() []*types.Func {
	out := make([]*types.Func, 0, len(n.out))
	for fn := range n.out {
		out = append(out, fn)
	}
	//lint:sorted collect-then-sort: traversal order pinned by FullName
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

// CallGraph is the whole-program CHA call graph.
type CallGraph struct {
	nodes map[*types.Func]*CGNode

	// addrTaken maps a function-value type string to the program
	// functions taken as values at that type (targets for calls through
	// function values).
	addrTaken map[string][]*types.Func

	// namedTypes is every named (non-interface) type declared in the
	// program, for interface-call resolution.
	namedTypes []types.Type
}

// Node returns the graph node for fn (looking through instantiations),
// or nil if fn has no loaded source.
func (g *CallGraph) Node(fn *types.Func) *CGNode {
	if fn == nil {
		return nil
	}
	return g.nodes[fn.Origin()]
}

// Nodes returns every program-defined node, sorted by full name.
func (g *CallGraph) Nodes() []*CGNode {
	out := make([]*CGNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	//lint:sorted collect-then-sort: iteration order pinned by FullName
	sort.Slice(out, func(i, j int) bool { return out[i].Fn.FullName() < out[j].Fn.FullName() })
	return out
}

// Reachable computes the forward closure from roots over the graph,
// traversing only program-defined functions (leaves terminate the walk)
// and skipping functions for which skip returns true. The result maps
// every reached program function (roots included) to its node.
func (g *CallGraph) Reachable(roots []*types.Func, skip func(*CGNode) bool) map[*types.Func]*CGNode {
	seen := make(map[*types.Func]*CGNode)
	var stack []*CGNode
	push := func(fn *types.Func) {
		n := g.Node(fn)
		if n == nil || seen[n.Fn] != nil || (skip != nil && skip(n)) {
			return
		}
		seen[n.Fn] = n
		stack = append(stack, n)
	}
	for _, r := range roots {
		push(r)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, callee := range n.Callees() {
			push(callee)
		}
	}
	return seen
}

// BuildProgram assembles the call graph over the loaded packages.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		byPath:   make(map[string]*Package, len(pkgs)),
		byFile:   make(map[string]*Package),
		Packages: pkgs,
	}
	g := &CallGraph{
		nodes:     make(map[*types.Func]*CGNode),
		addrTaken: make(map[string][]*types.Func),
	}
	prog.Graph = g

	for _, pkg := range pkgs {
		prog.byPath[pkg.Path] = pkg
		for _, f := range pkg.Files {
			prog.byFile[pkg.Fset.Position(f.Pos()).Filename] = pkg
		}
	}

	// Pass 1: declare nodes and collect named types.
	for _, pkg := range pkgs {
		collectNamedTypes(g, pkg)
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[obj.Origin()] = &CGNode{Fn: obj, Decl: fd, Pkg: pkg}
			}
		}
	}

	// Pass 2: address-taken function values (dynamic-call targets).
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			collectAddrTaken(g, pkg, f)
		}
	}

	// Pass 3: edges.
	for _, node := range g.nodes {
		if node.Decl == nil || node.Decl.Body == nil {
			continue
		}
		node.out = make(map[*types.Func]bool)
		addEdges(g, node)
	}
	return prog
}

// collectNamedTypes records the package's named non-interface types for
// interface-call (CHA) resolution.
func collectNamedTypes(g *CallGraph, pkg *Package) {
	if pkg.Types == nil {
		return
	}
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		t := tn.Type()
		if types.IsInterface(t) {
			continue
		}
		g.namedTypes = append(g.namedTypes, t)
	}
}

// collectAddrTaken finds every use of a function's identity as a value
// (assigned, passed, stored, returned — anything but being called) and
// indexes it under the function value's type, which is what a dynamic
// call site can later match against.
func collectAddrTaken(g *CallGraph, pkg *Package, f *ast.File) {
	// First mark the expressions in call position, so a plain call does
	// not count as taking the callee's address.
	inCallPos := make(map[ast.Expr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			inCallPos[unparen(call.Fun)] = true
		}
		return true
	})
	take := func(e ast.Expr, fn *types.Func) {
		if inCallPos[e] {
			return
		}
		tv, ok := pkg.Info.Types[e]
		if !ok || tv.Type == nil {
			return
		}
		key := types.TypeString(tv.Type, nil)
		g.addrTaken[key] = append(g.addrTaken[key], fn.Origin())
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if fn, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
				take(e, fn)
			}
		case *ast.Ident:
			// Skip the Sel of a SelectorExpr: Inspect visits the parent
			// selector first and we only descend into its X.
			if fn, ok := pkg.Info.Uses[e].(*types.Func); ok {
				take(e, fn)
			}
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			ast.Inspect(sel.X, func(m ast.Node) bool {
				switch e := m.(type) {
				case *ast.SelectorExpr:
					if fn, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
						take(e, fn)
					}
				case *ast.Ident:
					if fn, ok := pkg.Info.Uses[e].(*types.Func); ok {
						take(e, fn)
					}
				}
				return true
			})
			return false
		}
		return true
	})
}

// addEdges resolves every call inside node's declaration (closures
// included — they belong to the declaring function) to call-graph edges.
func addEdges(g *CallGraph, node *CGNode) {
	pkg := node.Pkg
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := unparen(call.Fun)
		switch fe := fun.(type) {
		case *ast.Ident:
			switch obj := pkg.Info.Uses[fe].(type) {
			case *types.Func:
				node.out[obj.Origin()] = true
				return true
			case *types.Builtin, *types.TypeName, nil:
				return true // builtin or conversion: no edge
			default:
				// Function-valued variable or parameter.
				addDynamicEdges(g, node, pkg, fun)
				return true
			}
		case *ast.SelectorExpr:
			if sel, ok := pkg.Info.Selections[fe]; ok && sel.Kind() == types.MethodVal {
				if types.IsInterface(sel.Recv()) {
					addInterfaceEdges(g, node, sel)
					return true
				}
				if fn, ok := sel.Obj().(*types.Func); ok {
					node.out[fn.Origin()] = true
				}
				return true
			}
			switch obj := pkg.Info.Uses[fe.Sel].(type) {
			case *types.Func:
				node.out[obj.Origin()] = true // qualified pkg.Fn
			case *types.TypeName, nil:
				// conversion or unresolved: no edge
			default:
				addDynamicEdges(g, node, pkg, fun) // func-typed field/var
			}
			return true
		case *ast.FuncLit:
			// Immediately-invoked literal: its body is already part of
			// this node's walk.
			return true
		default:
			// Anything else producing a function value (index into a
			// slice of funcs, call returning a func, generic instance).
			addDynamicEdges(g, node, pkg, fun)
			return true
		}
	})
}

// addDynamicEdges links a call through a function value to every
// program function taken as a value at the same type.
func addDynamicEdges(g *CallGraph, node *CGNode, pkg *Package, fun ast.Expr) {
	tv, ok := pkg.Info.Types[fun]
	if !ok || tv.Type == nil {
		return
	}
	if _, isSig := tv.Type.Underlying().(*types.Signature); !isSig {
		return
	}
	key := types.TypeString(tv.Type, nil)
	for _, fn := range g.addrTaken[key] {
		node.out[fn] = true
	}
}

// addInterfaceEdges links an interface method call to the matching
// method of every program type implementing the interface (CHA).
func addInterfaceEdges(g *CallGraph, node *CGNode, sel *types.Selection) {
	iface, ok := sel.Recv().Underlying().(*types.Interface)
	if !ok {
		return
	}
	name := sel.Obj().Name()
	for _, t := range g.namedTypes {
		impl := types.Type(t)
		if !types.Implements(impl, iface) {
			impl = types.NewPointer(t)
			if !types.Implements(impl, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, sel.Obj().Pkg(), name)
		if fn, ok := obj.(*types.Func); ok {
			node.out[fn.Origin()] = true
		}
	}
}

// FuncByName resolves a function by its FullName ("pkg/path.Name" or
// "(pkg/path.Type).Method") among the program's nodes.
func (g *CallGraph) FuncByName(full string) *types.Func {
	for fn := range g.nodes {
		if fn.FullName() == full {
			return fn
		}
	}
	return nil
}

// FuncsInPackage returns every program function declared in the package
// with the given import path, sorted by full name.
func (g *CallGraph) FuncsInPackage(importPath string) []*types.Func {
	var out []*types.Func
	for fn, n := range g.nodes {
		if n.Pkg != nil && n.Pkg.Path == importPath {
			out = append(out, fn)
		}
	}
	//lint:sorted collect-then-sort: result pinned by FullName
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

// stdFuncIs reports whether fn is the package-level function pkgPath.name
// (receiver-less), e.g. stdFuncIs(fn, "time", "Now").
func stdFuncIs(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// stdPkgFunc reports whether fn is any package-level function of a
// package whose import path matches pkgPath exactly or as a prefix
// ("math/rand" also matches "math/rand/v2" via the caller passing both).
func stdPkgFunc(fn *types.Func, pkgPath string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	if p != pkgPath && !strings.HasPrefix(p, pkgPath+"/") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
