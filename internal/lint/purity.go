package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// PurityConfig declares the determinism fence: which functions seed the
// reachability walk, and which packages are exempt from it.
type PurityConfig struct {
	// RootPackages are import paths whose every declared function is a
	// root of the reachable set.
	RootPackages []string
	// RootFuncs are additional roots by FullName, e.g. "lily.RunFlowContext"
	// or "lily/internal/core.mapPlaced". A listed root that does not
	// resolve is an error: the fence must not silently shrink when a
	// root is renamed.
	RootFuncs []string
	// ExemptPackages are never entered nor scanned (observability reads
	// the wall clock by design and feeds no mapping decision).
	ExemptPackages []string
	// Anchors seed ProgramAnalyzer.Anchors for the constructed analyzer.
	Anchors []string
}

// defaultPurityConfig is the shipped fence: everything the mapping
// pipeline can execute. The cost packages (cover, wire, timing, place)
// plus opt are roots wholesale; mapPlaced and RunFlowContext pull in the
// rest of the flow (core match enumeration, decomposition, netlist
// construction, layout, routing).
var defaultPurityConfig = PurityConfig{
	RootPackages: []string{
		ModulePath + "/internal/cover",
		ModulePath + "/internal/cut",
		ModulePath + "/internal/wire",
		ModulePath + "/internal/timing",
		ModulePath + "/internal/place",
		ModulePath + "/internal/opt",
	},
	RootFuncs: []string{
		ModulePath + ".RunFlowContext",
		ModulePath + "/internal/core.mapPlaced",
	},
	ExemptPackages: []string{
		ModulePath + "/internal/obs",
	},
	Anchors: []string{ModulePath},
}

// DefaultPurityConfig returns the shipped fence configuration, so tests
// can rebuild the analyzer's view (roots, exemptions) independently.
func DefaultPurityConfig() PurityConfig { return defaultPurityConfig }

// PurityAnalyzer is the determinism fence over the mapping pipeline.
// Every function reachable from the root set (the cover DP, wire/timing
// estimators, placement, optimization, and the whole flow behind
// RunFlowContext) must be deterministic: no wall clock, no process
// environment, no global rand, no unordered map iteration, no exact
// float comparison. See PurityAnalyzerFor for the rules.
var PurityAnalyzer = PurityAnalyzerFor(defaultPurityConfig)

// PurityAnalyzerFor builds a purity analyzer for the given fence. The
// rules, applied to every reachable function:
//
//   - calling or referencing time.Now, time.Since, time.Until,
//     os.Getenv, os.LookupEnv, os.Environ, or any package-level function
//     of math/rand or math/rand/v2 is flagged. Methods on an explicit
//     *rand.Rand are allowed: constructing the generator via
//     rand.New(rand.NewSource(seed)) is itself flagged, so every
//     generator's seed provenance is documented at exactly one
//     `//lint:impure` site;
//   - ranging over a map is flagged unless the body is provably
//     order-insensitive or carries `//lint:sorted` (the maporder proof
//     engine is reused verbatim);
//   - exact float ==/!= is flagged under the floateq rules, everywhere
//     reachable, not just in the blessed cost packages.
//
// `//lint:impure <why>` on the offending line (or the line above)
// suppresses any purity finding; the why text is mandatory.
func PurityAnalyzerFor(cfg PurityConfig) *ProgramAnalyzer {
	a := &ProgramAnalyzer{
		Name:          "purity",
		Doc:           "determinism fence: no clock/rand/env/map-order/float-eq reachable from the mapping pipeline",
		Justification: "impure",
		Anchors:       cfg.Anchors,
	}
	a.Run = func(pass *ProgramPass) error { return runPurity(pass, cfg) }
	return a
}

func runPurity(pass *ProgramPass, cfg PurityConfig) error {
	g := pass.Prog.Graph

	roots, err := purityRoots(g, cfg)
	if err != nil {
		return err
	}

	exempt := make(map[string]bool, len(cfg.ExemptPackages))
	for _, p := range cfg.ExemptPackages {
		exempt[p] = true
	}
	skip := func(n *CGNode) bool {
		return n.Pkg != nil && exempt[n.Pkg.Path]
	}

	reach := g.Reachable(roots, skip)

	// Scan in deterministic order. The per-package shim passes borrow
	// the maporder and floateq helpers so `//lint:sorted` / `//lint:exact`
	// keep working inside the fence, with `//lint:impure` accepted as
	// the uniform escape hatch on top.
	sortedShim := &Analyzer{Name: "purity", Justification: "sorted"}
	exactShim := &Analyzer{Name: "purity", Justification: "exact"}
	shims := make(map[*Package][2]*Pass)

	var nodes []*CGNode
	for _, n := range reach {
		if n.Decl != nil && n.Decl.Body != nil {
			nodes = append(nodes, n)
		}
	}
	//lint:sorted collect-then-sort: scan order pinned by FullName
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Fn.FullName() < nodes[j].Fn.FullName() })

	for _, n := range nodes {
		pair, ok := shims[n.Pkg]
		if !ok {
			pair = [2]*Pass{
				pass.packagePass(n.Pkg, sortedShim),
				pass.packagePass(n.Pkg, exactShim),
			}
			shims[n.Pkg] = pair
		}
		checkImpureRefs(pass, n)
		mapOrderVisitFunc(pair[0], n.Decl.Body)
		checkFloatEq(pair[1], n.Decl.Body)
	}
	return nil
}

// purityRoots resolves the configured root set, failing loudly when a
// named root or root package is missing from the program.
func purityRoots(g *CallGraph, cfg PurityConfig) ([]*types.Func, error) {
	var roots []*types.Func
	for _, p := range cfg.RootPackages {
		fns := g.FuncsInPackage(p)
		if len(fns) == 0 {
			return nil, fmt.Errorf("purity: root package %q has no functions in the loaded program", p)
		}
		roots = append(roots, fns...)
	}
	for _, name := range cfg.RootFuncs {
		fn := g.FuncByName(name)
		if fn == nil {
			return nil, fmt.Errorf("purity: root function %q not found in the loaded program", name)
		}
		roots = append(roots, fn)
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("purity: empty root set")
	}
	return roots, nil
}

// impureDenied reports whether fn is one of the denylisted sources of
// nondeterminism, and names the offense.
func impureDenied(fn *types.Func) (string, bool) {
	switch {
	case stdFuncIs(fn, "time", "Now"),
		stdFuncIs(fn, "time", "Since"),
		stdFuncIs(fn, "time", "Until"):
		return "wall clock (time." + fn.Name() + ")", true
	case stdFuncIs(fn, "os", "Getenv"),
		stdFuncIs(fn, "os", "LookupEnv"),
		stdFuncIs(fn, "os", "Environ"):
		return "process environment (os." + fn.Name() + ")", true
	case stdPkgFunc(fn, "math/rand"):
		// Package-level functions only: the global generator's seed is
		// process state. Methods on an explicit *rand.Rand pass, because
		// the rand.New construction site is where the seed is justified.
		return "global rand (" + fn.Pkg().Path() + "." + fn.Name() + ")", true
	}
	return "", false
}

// checkImpureRefs flags every use (call or value reference) of a
// denylisted function inside n's declaration.
func checkImpureRefs(pass *ProgramPass, n *CGNode) {
	info := n.Pkg.Info
	var visit func(node ast.Node) bool
	visit = func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.SelectorExpr:
			if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
				if what, bad := impureDenied(fn); bad {
					reportImpure(pass, e.Pos(), n, what)
				}
			}
			// Descend only into X: the Sel ident would double-report.
			ast.Inspect(e.X, visit)
			return false
		case *ast.Ident:
			if fn, ok := info.Uses[e].(*types.Func); ok {
				if what, bad := impureDenied(fn); bad {
					reportImpure(pass, e.Pos(), n, what)
				}
			}
		}
		return true
	}
	ast.Inspect(n.Decl.Body, visit)
}

func reportImpure(pass *ProgramPass, pos token.Pos, n *CGNode, what string) {
	pass.Reportf(pos,
		"thread the value in as data (config field, parameter, injected seed) or add `//lint:impure <why>` documenting why this cannot affect mapping results",
		"%s reachable from the deterministic root set via %s", what, n.Fn.FullName())
}
