package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"lily/internal/lint"
)

// TestAllAnalyzers is the self-run: every package in the module must be
// clean under its applicable analyzers, so `go test ./...` fails the
// moment someone introduces an unsorted map range into internal/cover,
// an uncancellable solver loop, a raw float cost comparison, or an
// unlocked call to a `requires mu` method. This is the repo-level
// enforcement the CI lint job mirrors via `go vet -vettool`.
func TestAllAnalyzers(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages from %s; loader pattern expansion looks broken", len(pkgs), root)
	}
	sawDeterministic := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			// The tree builds (tier-1 guarantees it), so any type error here
			// is a loader defect worth failing loudly on.
			t.Errorf("%s: type error: %v", pkg.Path, terr)
		}
		analyzers := lint.AnalyzersFor(pkg.Path)
		if len(analyzers) == 0 {
			continue
		}
		if strings.Contains(pkg.Path, "internal/cover") {
			sawDeterministic = true
		}
		findings, err := lint.RunAnalyzers(pkg, analyzers)
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
	if !sawDeterministic {
		t.Error("self-run never visited internal/cover; package walk is broken")
	}
}
