package lint_test

import (
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lily/internal/lint"
)

// TestAllAnalyzers is the self-run: every package in the module must be
// clean under its applicable analyzers, so `go test ./...` fails the
// moment someone introduces an unsorted map range into internal/cover,
// an uncancellable solver loop, a raw float cost comparison, or an
// unlocked call to a `requires mu` method. This is the repo-level
// enforcement the CI lint job mirrors via `go vet -vettool`.
func TestAllAnalyzers(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages from %s; loader pattern expansion looks broken", len(pkgs), root)
	}
	sawDeterministic := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			// The tree builds (tier-1 guarantees it), so any type error here
			// is a loader defect worth failing loudly on.
			t.Errorf("%s: type error: %v", pkg.Path, terr)
		}
		analyzers := lint.AnalyzersFor(pkg.Path)
		if len(analyzers) == 0 {
			continue
		}
		if strings.Contains(pkg.Path, "internal/cover") {
			sawDeterministic = true
		}
		findings, err := lint.RunAnalyzers(pkg, analyzers)
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
	if !sawDeterministic {
		t.Error("self-run never visited internal/cover; package walk is broken")
	}

	// The cross-package suite runs over the same load: the whole tree
	// must be clean under purity, goleak, and httpcontract too.
	prog := lint.BuildProgram(pkgs)
	progFindings, err := lint.RunProgramAnalyzers(prog, lint.ProgramAnalyzers)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range progFindings {
		t.Errorf("%s", f)
	}
}

// loadProgram loads the whole module and builds the call graph.
func loadProgram(t *testing.T, root string) *lint.Program {
	t.Helper()
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	return lint.BuildProgram(pkgs)
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestPurityRootSetReachability proves the fence actually spans the
// mapping pipeline: the whole-flow entry points and cost kernels must
// pull a large multi-package closure into the reachable set. If a root
// rename or a call-graph regression shrank the fence, this fails before
// any nondeterminism could hide in the gap.
func TestPurityRootSetReachability(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	prog := loadProgram(t, moduleRoot(t))
	g := prog.Graph
	cfg := lint.DefaultPurityConfig()

	var roots []*types.Func
	for _, p := range cfg.RootPackages {
		fns := g.FuncsInPackage(p)
		if len(fns) == 0 {
			t.Fatalf("root package %s resolved no functions", p)
		}
		roots = append(roots, fns...)
	}
	for _, name := range cfg.RootFuncs {
		fn := g.FuncByName(name)
		if fn == nil {
			t.Fatalf("root function %s not found — the fence silently shrank", name)
		}
		roots = append(roots, fn)
	}

	exempt := make(map[string]bool)
	for _, p := range cfg.ExemptPackages {
		exempt[p] = true
	}
	reach := g.Reachable(roots, func(n *lint.CGNode) bool {
		return n.Pkg != nil && exempt[n.Pkg.Path]
	})

	pkgsSeen := make(map[string]bool)
	for _, n := range reach {
		if n.Pkg != nil {
			pkgsSeen[n.Pkg.Path] = true
		}
	}
	// The flow behind RunFlowContext must reach the core mapper, logic
	// decomposition, netlist construction, and layout.
	for _, want := range []string{
		"lily/internal/core", "lily/internal/logic", "lily/internal/decomp",
		"lily/internal/netlist", "lily/internal/layout", "lily/internal/cover",
		"lily/internal/wire", "lily/internal/timing", "lily/internal/place",
		"lily/internal/cut", "lily/internal/match",
	} {
		if !pkgsSeen[want] {
			t.Errorf("package %s is not reachable from the purity root set; the fence has a hole", want)
		}
	}
	if pkgsSeen["lily/internal/obs"] {
		t.Error("exempt package lily/internal/obs appears in the reachable set")
	}
}

// TestPurityCatchesMutations is the negative proof the fence demands:
// injecting a time.Now() call into internal/wire and deleting a
// `//lint:sorted` justification in internal/core must both produce
// purity findings. The module is copied into a temp dir, mutated there,
// reloaded, and re-analyzed — the working tree is never touched.
func TestPurityCatchesMutations(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a module copy; skipped in -short")
	}
	tmp := t.TempDir()
	copyModule(t, moduleRoot(t), tmp)

	// Mutation 1: a wall-clock read in internal/wire. Every wire
	// function is a purity root, so it is reachable by construction.
	injected := filepath.Join(tmp, "internal", "wire", "zz_injected.go")
	src := "package wire\n\nimport \"time\"\n\n" +
		"func injectedWallClock() time.Time { return time.Now() }\n"
	if err := os.WriteFile(injected, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	// Mutation 2: delete the first //lint:sorted justification in
	// internal/core/core.go, un-suppressing an order-dependent map range
	// inside the mapper.
	corePath := filepath.Join(tmp, "internal", "core", "core.go")
	data, err := os.ReadFile(corePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	removed := false
	for i, l := range lines {
		if strings.Contains(l, "//lint:sorted") {
			lines = append(lines[:i], lines[i+1:]...)
			removed = true
			break
		}
	}
	if !removed {
		t.Fatal("internal/core/core.go carries no //lint:sorted annotation to delete; update the mutation")
	}
	if err := os.WriteFile(corePath, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	prog := loadProgram(t, tmp)
	findings, err := lint.RunProgramAnalyzers(prog, []*lint.ProgramAnalyzer{lint.PurityAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	sawWire, sawCore := false, false
	for _, f := range findings {
		if strings.Contains(f.Posn.Filename, "zz_injected.go") && strings.Contains(f.Message, "wall clock") {
			sawWire = true
		}
		if strings.HasSuffix(f.Posn.Filename, filepath.Join("internal", "core", "core.go")) &&
			strings.Contains(f.Message, "order-dependent") {
			sawCore = true
		}
	}
	if !sawWire {
		t.Error("purity missed the injected time.Now() in internal/wire")
	}
	if !sawCore {
		t.Error("purity missed the un-justified map range in internal/core")
	}
}

// copyModule copies go.mod and every non-test Go file of the module at
// src into dst, preserving the directory layout.
func copyModule(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != src && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "bin") {
				return fs.SkipDir
			}
			return nil
		}
		if name != "go.mod" && (!strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go")) {
			return nil
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}
