// Package lint is lily's domain-specific static-analysis suite: a small
// stdlib-only reimplementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) plus seven analyzers that turn
// the repo's determinism house rules into mechanically checked invariants.
//
// Four are per-package checks:
//
//   - maporder: no order-dependent iteration over Go maps in the
//     deterministic mapping packages (map iteration order is randomized;
//     a cost loop keyed on it makes Tables 1–2 unreproducible).
//   - ctxloop: unbounded loops in context-accepting functions must stay
//     cancellable (a ctx.Err()/ctx.Done() checkpoint or a ctx-forwarding
//     call), like the PR-1 checkpoints in place, cg, and the cone loop.
//   - floateq: no raw ==/!= between floating-point cost or arrival-time
//     expressions in the cost packages; use epsilon compares and the
//     deterministic tie-break helpers instead.
//   - lockheld: methods documented "requires x.mu" must only be called
//     with the mutex held, and sync.Mutex values must not be copied.
//
// Three are cross-package ProgramAnalyzers over the whole-program CHA
// call graph (callgraph.go):
//
//   - purity: the determinism fence — nothing reachable from the
//     mapping pipeline's root set may read the wall clock, the process
//     environment, or global rand, iterate a map unordered, or compare
//     floats exactly.
//   - goleak: every `go` statement in engine/cluster/server needs a
//     provable stop path (signal-channel receive or WaitGroup pairing).
//   - httpcontract: HTTP handlers write exactly one status per path,
//     429s carry Retry-After, and no body follows an error status.
//
// The suite runs three ways: the lint.Analyzers and lint.ProgramAnalyzers
// slices feed the cmd/lilylint multichecker (standalone package
// patterns), the same binary speaks the `go vet -vettool` unitchecker
// protocol (program analyzers run at their anchor units), and the
// package's own TestAllAnalyzers self-run keeps the tree lint-clean as
// part of `go test ./...`.
//
// Diagnostics can be suppressed with a justification comment on the
// flagged line (or the line above): `//lint:sorted <why>` (maporder),
// `//lint:bounded <why>` (ctxloop), `//lint:exact <why>` (floateq),
// `//lint:locked <why>` (lockheld), `//lint:impure <why>` (purity),
// `//lint:stopped <why>` (goleak), `//lint:response <why>`
// (httpcontract). The justification word is the analyzer's invariant,
// not its name: the comment asserts the invariant holds for reasons the
// analyzer cannot see. For the three program analyzers the <why> text
// is mandatory — a bare marker suppresses nothing.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check, mirroring x/tools' analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -checks flags.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Justification is the //lint: word that suppresses this analyzer's
	// diagnostics on a line (empty means no suppression).
	Justification string
	// Run executes the analyzer over one package.
	Run func(*Pass) error
}

// Diagnostic is one finding: a position, the problem, and a one-line fix
// suggestion.
type Diagnostic struct {
	Pos        token.Pos
	Message    string
	Suggestion string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives diagnostics. The driver installs it.
	Report func(Diagnostic)

	// justifications maps file -> line -> lint words present on that line.
	justifications map[string]map[int][]string
}

// Reportf reports a diagnostic at pos with a formatted message, unless a
// justification comment suppresses it.
func (p *Pass) Reportf(pos token.Pos, suggestion, format string, args ...any) {
	if p.Justified(pos) {
		return
	}
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Suggestion: suggestion})
}

// Justified reports whether pos carries this analyzer's justification
// word on its own line or the line immediately above.
func (p *Pass) Justified(pos token.Pos) bool {
	word := p.Analyzer.Justification
	if word == "" || !pos.IsValid() {
		return false
	}
	position := p.Fset.Position(pos)
	lines, ok := p.justifications[position.Filename]
	if !ok {
		return false
	}
	for _, l := range []int{position.Line, position.Line - 1} {
		for _, w := range lines[l] {
			if w == word {
				return true
			}
		}
	}
	return false
}

// indexJustifications scans comments for //lint:<word> markers.
func (p *Pass) indexJustifications() {
	p.justifications = make(map[string]map[int][]string)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "lint:") {
					continue
				}
				word := strings.TrimPrefix(text, "lint:")
				if i := strings.IndexAny(word, " \t"); i >= 0 {
					word = word[:i]
				}
				if word == "" {
					continue
				}
				posn := p.Fset.Position(c.Pos())
				byLine := p.justifications[posn.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					p.justifications[posn.Filename] = byLine
				}
				byLine[posn.Line] = append(byLine[posn.Line], word)
			}
		}
	}
}

// Analyzers is the full suite, in reporting order. It feeds the
// cmd/lilylint multichecker, the vet-mode unit checker, and the
// TestAllAnalyzers self-run.
var Analyzers = []*Analyzer{
	MapOrderAnalyzer,
	CtxLoopAnalyzer,
	FloatEqAnalyzer,
	LockHeldAnalyzer,
}

// ModulePath is the import path of the module the suite guards.
const ModulePath = "lily"

// DeterministicPackages lists the packages whose iteration order feeds
// mapping results (covers, placements, wire-cost tables): maporder
// applies here. Paths are relative to the module root.
var DeterministicPackages = []string{
	"internal/logic", "internal/decomp", "internal/match", "internal/cut", "internal/cover",
	"internal/place", "internal/wire", "internal/timing", "internal/fanout",
	"internal/layout", "internal/opt", "internal/mis", "internal/core",
	"internal/netlist", "internal/library", "internal/equiv",
	// cluster replays jobs through the shared result cache; an
	// order-dependent walk there reorders batch scheduling decisions.
	"internal/cluster",
}

// CostPackages lists the packages computing float costs and arrival
// times: floateq applies here.
var CostPackages = []string{
	"internal/cover", "internal/wire", "internal/timing", "internal/place",
}

func inList(importPath string, rel []string) bool {
	for _, r := range rel {
		if importPath == ModulePath+"/"+r {
			return true
		}
	}
	return false
}

// AnalyzersFor returns the analyzers that apply to importPath:
// ctxloop and lockheld run module-wide; maporder only in the
// deterministic packages; floateq only in the cost packages. Packages
// outside the module get nothing.
func AnalyzersFor(importPath string) []*Analyzer {
	if importPath != ModulePath && !strings.HasPrefix(importPath, ModulePath+"/") {
		return nil
	}
	out := []*Analyzer{CtxLoopAnalyzer, LockHeldAnalyzer}
	if inList(importPath, DeterministicPackages) {
		out = append(out, MapOrderAnalyzer)
	}
	if inList(importPath, CostPackages) {
		out = append(out, FloatEqAnalyzer)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Finding pairs a diagnostic with its analyzer and resolved position,
// ready for printing.
type Finding struct {
	Analyzer string
	Posn     token.Position
	Message  string
	Suggest  string
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s: %s [%s]", f.Posn, f.Message, f.Analyzer)
	if f.Suggest != "" {
		s += "\n\tfix: " + f.Suggest
	}
	return s
}

// RunAnalyzers executes each analyzer over the package and returns the
// findings sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d Diagnostic) {
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Posn:     pkg.Fset.Position(d.Pos),
				Message:  d.Message,
				Suggest:  d.Suggestion,
			})
		}
		pass.indexJustifications()
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		pi, pj := findings[i].Posn, findings[j].Posn
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}
