package lint_test

import (
	"path/filepath"
	"testing"

	"lily/internal/lint"
	"lily/internal/lint/linttest"
)

func fixture(t *testing.T, name string) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestMapOrder(t *testing.T) {
	linttest.Run(t, lint.MapOrderAnalyzer, fixture(t, "maporder"))
}

func TestCtxLoop(t *testing.T) {
	linttest.Run(t, lint.CtxLoopAnalyzer, fixture(t, "ctxloop"))
}

func TestFloatEq(t *testing.T) {
	linttest.Run(t, lint.FloatEqAnalyzer, fixture(t, "floateq"))
}

func TestLockHeld(t *testing.T) {
	linttest.Run(t, lint.LockHeldAnalyzer, fixture(t, "lockheld"))
}

func TestPurity(t *testing.T) {
	a := lint.PurityAnalyzerFor(lint.PurityConfig{
		RootFuncs: []string{"purity.Root"},
		Anchors:   []string{"purity"},
	})
	linttest.RunProgram(t, a, fixture(t, "purity"))
}

func TestGoLeak(t *testing.T) {
	linttest.RunProgram(t, lint.GoLeakAnalyzerFor("goleak"), fixture(t, "goleak"))
}

func TestHTTPContract(t *testing.T) {
	linttest.RunProgram(t, lint.HTTPContractAnalyzerFor("httpcontract"), fixture(t, "httpcontract"))
}

func TestAnalyzersForScoping(t *testing.T) {
	names := func(as []*lint.Analyzer) []string {
		out := make([]string, len(as))
		for i, a := range as {
			out[i] = a.Name
		}
		return out
	}
	cases := []struct {
		path string
		want []string
	}{
		{"lily/internal/cover", []string{"ctxloop", "floateq", "lockheld", "maporder"}},
		{"lily/internal/opt", []string{"ctxloop", "lockheld", "maporder"}},
		{"lily/internal/cluster", []string{"ctxloop", "lockheld", "maporder"}},
		{"lily/internal/engine", []string{"ctxloop", "lockheld"}},
		{"lily/internal/server", []string{"ctxloop", "lockheld"}},
		{"lily", []string{"ctxloop", "lockheld"}},
		{"fmt", nil},
		{"lilyx/internal/cover", nil}, // prefix confusion must not leak analyzers
	}
	for _, c := range cases {
		got := names(lint.AnalyzersFor(c.path))
		if len(got) != len(c.want) {
			t.Errorf("AnalyzersFor(%q) = %v, want %v", c.path, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("AnalyzersFor(%q) = %v, want %v", c.path, got, c.want)
				break
			}
		}
	}
}
