package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// ProgramAnalyzer is a cross-package check: where an Analyzer sees one
// type-checked package, a ProgramAnalyzer sees the whole module and the
// call graph over it. The three shipped instances are purity (the
// determinism fence over the mapping pipeline's reachable closure),
// goleak (provable stop paths for every spawned goroutine), and
// httpcontract (response-write discipline in the HTTP layer).
type ProgramAnalyzer struct {
	// Name identifies the analyzer in diagnostics.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Justification is the //lint: word that suppresses this analyzer's
	// diagnostics on a line. Unlike per-package analyzers, the word must
	// be followed by a non-empty justification text to count.
	Justification string
	// Anchors are the import paths that trigger this analyzer: the
	// standalone driver runs it once when any anchor is among the
	// requested packages; the vet driver runs it when visiting an anchor
	// unit (reporting, at each anchor, the findings that belong to that
	// anchor's package plus any findings outside every anchor, so the
	// aggregate over ./... contains each finding exactly once).
	Anchors []string
	// Run executes the analyzer over the program.
	Run func(*ProgramPass) error
}

// ProgramPass carries one program analyzer's view of the whole program.
type ProgramPass struct {
	Analyzer *ProgramAnalyzer
	Prog     *Program

	// Report receives diagnostics. The driver installs it.
	Report func(Diagnostic)

	// justifications maps file -> line -> lint words, indexed over every
	// file of every loaded package.
	justifications map[string]map[int][]string
}

// Fset returns the program's shared file set.
func (p *ProgramPass) Fset() *token.FileSet {
	return p.Prog.Packages[0].Fset
}

// Reportf reports a diagnostic at pos unless a justification comment
// suppresses it.
func (p *ProgramPass) Reportf(pos token.Pos, suggestion, format string, args ...any) {
	if p.JustifiedWith(pos, p.Analyzer.Justification) {
		return
	}
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Suggestion: suggestion})
}

// JustifiedWith reports whether pos carries `//lint:<word> <why>` (the
// justification text is mandatory) on its own line or the line above.
func (p *ProgramPass) JustifiedWith(pos token.Pos, word string) bool {
	if word == "" || !pos.IsValid() {
		return false
	}
	position := p.Fset().Position(pos)
	lines, ok := p.justifications[position.Filename]
	if !ok {
		return false
	}
	for _, l := range []int{position.Line, position.Line - 1} {
		for _, w := range lines[l] {
			if w == word {
				return true
			}
		}
	}
	return false
}

// indexJustifications scans every loaded file for //lint:<word> <why>
// markers. Markers without a justification text are ignored: the escape
// hatch must carry an argument.
func (p *ProgramPass) indexJustifications() {
	p.justifications = make(map[string]map[int][]string)
	for _, pkg := range p.Prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					word, ok := justificationWord(c.Text)
					if !ok {
						continue
					}
					posn := pkg.Fset.Position(c.Pos())
					byLine := p.justifications[posn.Filename]
					if byLine == nil {
						byLine = make(map[int][]string)
						p.justifications[posn.Filename] = byLine
					}
					byLine[posn.Line] = append(byLine[posn.Line], word)
				}
			}
		}
	}
}

// justificationWord extracts the word of a `//lint:<word> <why>`
// comment. The trailing justification text is mandatory: a bare
// `//lint:impure` suppresses nothing.
func justificationWord(comment string) (string, bool) {
	text := strings.TrimPrefix(comment, "//")
	rest, ok := strings.CutPrefix(text, "lint:")
	if !ok {
		return "", false
	}
	i := strings.IndexAny(rest, " \t")
	if i < 0 {
		return "", false // no justification text
	}
	word, why := rest[:i], strings.TrimSpace(rest[i:])
	if word == "" || why == "" {
		return "", false
	}
	return word, true
}

// ProgramAnalyzers is the cross-package suite, in reporting order. Like
// Analyzers it feeds the standalone driver, the vet-mode unit checker,
// and the TestAllAnalyzers self-run.
var ProgramAnalyzers = []*ProgramAnalyzer{
	PurityAnalyzer,
	GoLeakAnalyzer,
	HTTPContractAnalyzer,
}

// ProgramAnalyzersFor returns the program analyzers triggered by the
// requested import paths: each analyzer runs (once) when any of its
// anchors is requested.
func ProgramAnalyzersFor(importPaths []string) []*ProgramAnalyzer {
	requested := make(map[string]bool, len(importPaths))
	for _, p := range importPaths {
		requested[p] = true
	}
	var out []*ProgramAnalyzer
	for _, a := range ProgramAnalyzers {
		for _, anchor := range a.Anchors {
			if requested[anchor] {
				out = append(out, a)
				break
			}
		}
	}
	return out
}

// RunProgramAnalyzers executes each program analyzer over the program
// and returns the findings sorted by position.
func RunProgramAnalyzers(prog *Program, analyzers []*ProgramAnalyzer) ([]Finding, error) {
	var findings []Finding
	for _, a := range analyzers {
		pass := &ProgramPass{Analyzer: a, Prog: prog}
		pass.Report = func(d Diagnostic) {
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Posn:     pass.Fset().Position(d.Pos),
				Message:  d.Message,
				Suggest:  d.Suggestion,
			})
		}
		pass.indexJustifications()
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sortFindings(findings)
	return findings, nil
}

// sortFindings orders findings by position, then analyzer name.
func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		pi, pj := findings[i].Posn, findings[j].Posn
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
}

// packagePass builds a lightweight per-package Pass so program analyzers
// can reuse the per-package helpers (map-order proofs, float-equality
// checks) against one package's type info, with reports forwarded to the
// program pass and suppression honoring both the reused analyzer's word
// and this analyzer's own escape hatch.
func (p *ProgramPass) packagePass(pkg *Package, borrowed *Analyzer) *Pass {
	sub := &Pass{
		Analyzer:  borrowed,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	sub.Report = func(d Diagnostic) {
		if p.JustifiedWith(d.Pos, p.Analyzer.Justification) {
			return
		}
		p.Report(d)
	}
	sub.indexJustifications()
	return sub
}

// declBody returns the body of a node's declaration, or nil.
func declBody(n *CGNode) *ast.BlockStmt {
	if n == nil || n.Decl == nil {
		return nil
	}
	return n.Decl.Body
}
