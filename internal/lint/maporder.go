package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrderAnalyzer flags `range` statements over map types whose loop
// body is order-dependent. Go randomizes map iteration order, so any
// such loop in the deterministic mapping packages can change covers,
// placements, or wire-cost tables from run to run.
//
// A map range is accepted without justification when its body is
// provably order-insensitive:
//
//   - every effect is a write into a map or set (m[k] = v, delete),
//   - or a commutative accumulation into a single integer-typed
//     variable (n += ..., n++); float accumulation is NOT exempt,
//     because float addition is non-associative and the sum depends on
//     visit order,
//   - or the canonical collect-then-sort idiom: the body only appends
//     to slice variables that are all passed to a sort call later in
//     the same function,
//   - with only pure control flow (if/continue with call-free
//     conditions) around those effects.
//
// Anything else needs sorted keys or a `//lint:sorted <why>` comment
// asserting order-insensitivity the analyzer cannot prove.
var MapOrderAnalyzer = &Analyzer{
	Name:          "maporder",
	Doc:           "flags order-dependent iteration over maps in deterministic packages",
	Justification: "sorted",
	Run:           runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				mapOrderVisitFunc(pass, fn.Body)
			}
		}
	}
	return nil
}

// mapOrderVisitFunc checks map ranges directly inside body; nested
// function literals are visited with their own body as the enclosing
// scope (their appends can't be sorted by the outer function).
func mapOrderVisitFunc(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			mapOrderVisitFunc(pass, lit.Body)
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if orderInsensitiveBody(pass, rng, body) {
			return true
		}
		pass.Reportf(rng.Pos(),
			"collect the keys into a slice, sort them, then iterate (or add `//lint:sorted <why>` if order provably cannot matter)",
			"range over map %s has an order-dependent body; map iteration order is randomized",
			typeString(tv.Type))
		return true
	})
}

func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// orderInsensitiveBody reports whether every statement in the range body
// is an order-insensitive effect under pure control flow. Slice appends
// are tolerated when every appended-to variable is sorted after the loop
// in the enclosing function.
func orderInsensitiveBody(pass *Pass, rng *ast.RangeStmt, enclosing *ast.BlockStmt) bool {
	ok := true
	var appendTargets []*types.Var
	var checkStmt func(s ast.Stmt)
	checkStmt = func(s ast.Stmt) {
		if !ok {
			return
		}
		switch st := s.(type) {
		case *ast.AssignStmt:
			if target, isAppend := selfAppendTarget(pass, st); isAppend {
				appendTargets = append(appendTargets, target)
				return
			}
			if !orderInsensitiveAssign(pass, st, rangeKeyIdent(rng)) {
				ok = false
			}
		case *ast.IncDecStmt:
			// n++ / n-- on an integer accumulator commutes.
			if !isIntExpr(pass, st.X) || !isAccumTarget(pass, st.X) {
				ok = false
			}
		case *ast.ExprStmt:
			// Only delete(m, k) is a permitted call.
			call, isCall := st.X.(*ast.CallExpr)
			if !isCall || !isBuiltin(pass, call, "delete") {
				ok = false
			}
		case *ast.IfStmt:
			if st.Init != nil {
				checkStmt(st.Init)
			}
			if !pureCond(pass, st.Cond) {
				ok = false
				return
			}
			checkStmt(st.Body)
			if st.Else != nil {
				checkStmt(st.Else)
			}
		case *ast.BlockStmt:
			for _, inner := range st.List {
				checkStmt(inner)
			}
		case *ast.ForStmt:
			// Nested loops are fine when their own machinery is pure and
			// their bodies contain only allowed effects.
			if st.Init != nil {
				checkStmt(st.Init)
			}
			if st.Cond != nil && !pureCond(pass, st.Cond) {
				ok = false
				return
			}
			if st.Post != nil {
				checkStmt(st.Post)
			}
			checkStmt(st.Body)
		case *ast.RangeStmt:
			// A nested range: the ranged expression must be pure; if it is
			// itself a map, the outer Inspect flags it independently.
			if !pureCond(pass, st.X) {
				ok = false
				return
			}
			checkStmt(st.Body)
		case *ast.BranchStmt:
			// continue is fine (skips an element); break/goto reintroduce
			// order dependence (which element stops the loop?).
			if st.Tok != token.CONTINUE {
				ok = false
			}
		case *ast.DeclStmt:
			gen, isGen := st.Decl.(*ast.GenDecl)
			if !isGen {
				ok = false
				return
			}
			for _, spec := range gen.Specs {
				vs, isVS := spec.(*ast.ValueSpec)
				if !isVS {
					continue
				}
				for _, v := range vs.Values {
					if !pureCond(pass, v) {
						ok = false
					}
				}
			}
		case *ast.EmptyStmt:
		default:
			ok = false
		}
	}
	checkStmt(rng.Body)
	if !ok {
		return false
	}
	for _, target := range appendTargets {
		if !sortedAfter(pass, enclosing, target, rng.End()) {
			return false
		}
	}
	return true
}

// selfAppendTarget recognizes `x = append(x, pureArgs...)` and returns
// x's variable.
func selfAppendTarget(pass *Pass, st *ast.AssignStmt) (*types.Var, bool) {
	if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
		return nil, false
	}
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		return nil, false
	}
	lhs, ok := unparen(st.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil, false
	}
	call, ok := unparen(st.Rhs[0]).(*ast.CallExpr)
	if !ok || !isBuiltin(pass, call, "append") || len(call.Args) < 2 {
		return nil, false
	}
	first, ok := unparen(call.Args[0]).(*ast.Ident)
	if !ok || first.Name != lhs.Name {
		return nil, false
	}
	for _, arg := range call.Args[1:] {
		if !pureCond(pass, arg) {
			return nil, false
		}
	}
	obj := identVar(pass, lhs)
	if obj == nil {
		return nil, false
	}
	return obj, true
}

func identVar(pass *Pass, id *ast.Ident) *types.Var {
	if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// sortedAfter reports whether a call into package sort referencing
// target appears after pos in the enclosing function body.
func sortedAfter(pass *Pass, enclosing *ast.BlockStmt, target *types.Var, pos token.Pos) bool {
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fnObj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fnObj.Pkg() == nil {
			return true
		}
		if p := fnObj.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			hit := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && identVar(pass, id) == target {
					hit = true
					return false
				}
				return true
			})
			if hit {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// rangeKeyIdent returns the range statement's key identifier, if any.
// The key is unique per iteration, so container writes indexed by it are
// disjoint across iterations.
func rangeKeyIdent(rng *ast.RangeStmt) *ast.Ident {
	if rng.Key == nil {
		return nil
	}
	id, ok := unparen(rng.Key).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return id
}

// orderInsensitiveAssign accepts map/set writes, slice writes indexed by
// the (unique) range key, and integer accumulation. keyIdent may be nil.
func orderInsensitiveAssign(pass *Pass, st *ast.AssignStmt, keyIdent *ast.Ident) bool {
	switch st.Tok {
	case token.DEFINE:
		// Defining per-iteration temporaries with pure initializers is
		// harmless: a fresh variable per element carries no cross-element
		// state. (Assigning to an outer variable with `=` does, and is
		// handled below.)
		for _, rhs := range st.Rhs {
			if !pureCond(pass, rhs) {
				return false
			}
		}
		for _, lhs := range st.Lhs {
			if _, isIdent := unparen(lhs).(*ast.Ident); !isIdent {
				return false
			}
		}
		return true
	case token.ASSIGN:
		// Every LHS must be a map index, a slice/array slot indexed by the
		// unique range key (disjoint writes), or blank; RHS must be pure.
		for _, lhs := range st.Lhs {
			if isBlank(lhs) {
				continue
			}
			idx, isIdx := lhs.(*ast.IndexExpr)
			if !isIdx {
				return false
			}
			tv, found := pass.TypesInfo.Types[idx.X]
			if !found {
				return false
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				continue
			}
			// Non-map container: the index must be exactly the range key.
			if keyIdent == nil {
				return false
			}
			idxID, isID := unparen(idx.Index).(*ast.Ident)
			if !isID || idxID.Name != keyIdent.Name {
				return false
			}
		}
		for _, rhs := range st.Rhs {
			if !pureCond(pass, rhs) {
				return false
			}
		}
		return true
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative accumulation into one integer accumulator (variable,
		// field, or indexed matrix cell with pure indices). SUB_ASSIGN is
		// excluded: n -= x commutes over ints too, but pairing it with
		// saturation/clamping idioms is common enough that we make the
		// author say so.
		if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
			return false
		}
		return isAccumTarget(pass, st.Lhs[0]) && isIntExpr(pass, st.Lhs[0]) && pureCond(pass, st.Rhs[0])
	default:
		return false
	}
}

// isAccumTarget accepts accumulation targets: plain variables, field
// chains, and indexed locations with pure indices (m[i][j]++ commutes
// over ints wherever the cell lives).
func isAccumTarget(pass *Pass, e ast.Expr) bool {
	if idx, ok := unparen(e).(*ast.IndexExpr); ok {
		return isAccumTarget(pass, idx.X) && pureCond(pass, idx.Index)
	}
	return isSimpleTarget(e)
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// isSimpleTarget accepts an identifier or a field selector chain
// (st.Count, p.stats.n) as an accumulation target.
func isSimpleTarget(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name != "_"
	case *ast.SelectorExpr:
		return isSimpleTarget(x.X)
	case *ast.StarExpr:
		return isSimpleTarget(x.X)
	default:
		return false
	}
}

func isIntExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

// pureCond reports whether e is side-effect-free and order-independent:
// idents, selectors, indexing, len/cap, comparisons, arithmetic. Any
// other call is assumed impure.
func pureCond(pass *Pass, e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if !isBuiltin(pass, x, "len") && !isBuiltin(pass, x, "cap") {
				pure = false
				return false
			}
		case *ast.FuncLit:
			pure = false
			return false
		}
		return true
	})
	return pure
}

func isBuiltin(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}
