// Package linttest is the fixture harness for the lint analyzers — a
// stdlib-only analogue of golang.org/x/tools/go/analysis/analysistest.
// A fixture is a directory of Go files under internal/lint/testdata/src;
// lines that should be flagged carry a `// want `+"`regex`"+“ comment,
// and the harness fails the test on any unmatched diagnostic or
// unsatisfied expectation.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"lily/internal/lint"
)

var wantRE = regexp.MustCompile("`([^`]*)`")

// expectation is one `// want` annotation.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run executes one analyzer over the fixture directory and compares its
// diagnostics against the `// want` annotations.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	pkg, err := loadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s has type errors: %v", dir, pkg.TypeErrors)
	}
	findings, err := lint.RunAnalyzers(pkg, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	compare(t, pkg, findings)
}

// RunProgram executes one cross-package analyzer over the fixture
// directory (loaded as a one-package program) and compares its
// diagnostics against the `// want` annotations. The analyzer should be
// built by its *For constructor with the fixture's package path (the
// directory base name) standing in for the real anchors and roots.
func RunProgram(t *testing.T, a *lint.ProgramAnalyzer, dir string) {
	t.Helper()
	pkg, err := loadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s has type errors: %v", dir, pkg.TypeErrors)
	}
	prog := lint.BuildProgram([]*lint.Package{pkg})
	findings, err := lint.RunProgramAnalyzers(prog, []*lint.ProgramAnalyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	compare(t, pkg, findings)
}

// compare checks findings against the fixture's want annotations.
func compare(t *testing.T, pkg *lint.Package, findings []lint.Finding) {
	t.Helper()
	expects, err := collectExpectations(pkg.Fset, pkg.Files)
	if err != nil {
		t.Fatalf("parsing want comments: %v", err)
	}
	for _, f := range findings {
		if !matchExpectation(expects, f) {
			t.Errorf("unexpected diagnostic:\n%s", f)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none",
				e.file, e.line, e.pattern)
		}
	}
}

func matchExpectation(expects []*expectation, f lint.Finding) bool {
	for _, e := range expects {
		if e.matched || e.line != f.Posn.Line || filepath.Base(e.file) != filepath.Base(f.Posn.Filename) {
			continue
		}
		if e.pattern.MatchString(f.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

// collectExpectations extracts `// want `+"`re`"+“ annotations.
func collectExpectations(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				posn := fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					return nil, fmt.Errorf("%s: want comment without backquoted pattern", posn)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern: %w", posn, err)
					}
					out = append(out, &expectation{file: posn.Filename, line: posn.Line, pattern: re})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out, nil
}

// loadFixture parses and type-checks the single package in dir. Imports
// resolve through the source importer (stdlib only; fixtures must not
// import module packages).
func loadFixture(dir string) (*lint.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	pkg := &lint.Package{Path: filepath.Base(dir), Dir: dir, Fset: fset}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, pkg.Info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}
