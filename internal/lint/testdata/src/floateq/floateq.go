// Package floateq is the fixture for the floateq analyzer: raw ==/!=
// between float cost expressions is rounding-order sensitive.
package floateq

import "math"

const eps = 1e-9

type match struct {
	area  float64
	delay float64
}

// Flagged: exact equality between two computed costs.
func sameCost(a, b match) bool {
	return a.area == b.area // want `exact == between float expressions`
}

// Flagged: inequality is just as rounding-sensitive.
func differentDelay(a, b match) bool {
	return a.delay != b.delay // want `exact != between float expressions`
}

// Flagged: arithmetic results compared exactly.
func cancels(x, y float64) bool {
	return x+y == y+x // want `exact == between float expressions`
}

// Flagged: math.Inf is a call, not a constant — use IsInf.
func isInfinite(cost float64) bool {
	return cost == math.Inf(1) // want `exact == between float expressions`
}

// Allowed: comparison against the literal-0 unset sentinel.
func isUnset(weight float64) bool {
	return weight == 0
}

// Allowed: any compile-time constant sentinel.
func isDisabled(weight float64) bool {
	return weight == -1
}

// Allowed: named constant.
func atEps(x float64) bool {
	return x == eps
}

// Allowed: NaN self-check.
func isNaN(x float64) bool {
	return x != x
}

// Allowed: NaN self-check through a selector chain.
func fieldNaN(m match) bool {
	return m.delay != m.delay
}

// Allowed: epsilon comparison, the recommended fix.
func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < eps
}

// Allowed: ordering comparisons are fine; only ==/!= are flagged.
func better(a, b match) bool {
	return a.area < b.area
}

// Allowed: integers compare exactly by definition.
func sameCount(a, b int) bool {
	return a == b
}

// Allowed: justified exact comparison — values copied, never computed.
func unchangedCopy(orig, snapshot float64) bool {
	//lint:exact snapshot is a bitwise copy, never recomputed
	return orig == snapshot
}
