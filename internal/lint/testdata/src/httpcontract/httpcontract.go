// Package httpcontract is the fixture for the httpcontract program
// analyzer: one status per path, Retry-After on 429s, no body after an
// error status, no silent handlers.
package httpcontract

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// writeJSON is the module-helper shape: classified as a definite writer
// because the WriteHeader sits at the top level of its body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// handleDouble writes two statuses on the same path.
func handleDouble(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, "a")
	w.WriteHeader(http.StatusOK) // want `second status write`
}

// handleConditional is clean: the two writes are path-exclusive.
func handleConditional(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/missing" {
		writeJSON(w, http.StatusNotFound, "missing")
		return
	}
	writeJSON(w, http.StatusOK, "ok")
}

// handleThrottle forgets Retry-After on a 429.
func handleThrottle(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusTooManyRequests, "slow down") // want `429 response without`
}

// handleThrottleOK sets Retry-After before committing the 429.
func handleThrottleOK(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusTooManyRequests, "slow down")
}

// handleErrBody writes body bytes after an error status.
func handleErrBody(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "bad", http.StatusBadRequest)
	fmt.Fprintln(w, "details") // want `body bytes written after an error status`
}

// handleLoop repeats a status write across iterations.
func handleLoop(w http.ResponseWriter, r *http.Request) {
	for i := 0; i < 3; i++ { // want `status write inside a loop`
		w.WriteHeader(http.StatusOK)
	}
}

// handleValidateLoop is the validate-then-bail idiom: every writing
// iteration returns, so the write cannot repeat.
func handleValidateLoop(w http.ResponseWriter, r *http.Request) {
	for i := 0; i < 3; i++ {
		if i == 2 {
			http.Error(w, "bad", http.StatusBadRequest)
			return
		}
	}
	writeJSON(w, http.StatusOK, "ok")
}

// handleSilent never responds and never hands off the writer.
func handleSilent(w http.ResponseWriter, r *http.Request) { // want `never writes a response`
	_ = r.URL.Query()
}

// handleJustified documents a deliberate second write.
func handleJustified(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, "a")
	//lint:response connection is hijacked upstream; this write is unreachable in production
	w.WriteHeader(http.StatusOK)
}
