// Package purity is the fixture for the purity program analyzer. The
// test configures Root as the only determinism root; everything it
// reaches is fenced, everything else is ignored.
package purity

import (
	"math/rand"
	"os"
	"time"
)

// Root is the configured determinism root.
func Root() {
	step()
	viaValue(helperClean)
}

func step() {
	_ = time.Now() // want `wall clock \(time.Now\) reachable`
	since(time.Unix(0, 0))
	_ = readEnv()
	randomness()
	iterate(map[string]int{"a": 1})
	_ = compareFloats(1.5, 2.5)
	_ = exactJustified(1.5, 2.5)
	_ = sortedJustified(map[string]int{"a": 1}, nil)
	justified()
	bare()
}

func since(t0 time.Time) {
	_ = time.Since(t0) // want `wall clock \(time.Since\) reachable`
}

func readEnv() string {
	return os.Getenv("LILY_MODE") // want `process environment \(os.Getenv\) reachable`
}

func randomness() {
	_ = rand.Intn(10) // want `global rand \(math/rand.Intn\) reachable`
}

func iterate(m map[string]int) {
	total := 0.0
	for _, v := range m { // want `order-dependent body`
		total += float64(v)
	}
	_ = total
}

func compareFloats(a, b float64) bool {
	return a == b // want `exact == between float expressions`
}

// exactJustified reuses the floateq escape hatch inside the fence.
func exactJustified(a, b float64) bool {
	//lint:exact inputs are bit-identical copies by construction
	return a == b
}

// sortedJustified reuses the maporder escape hatch inside the fence.
func sortedJustified(m map[string]int, out []string) []string {
	//lint:sorted caller deduplicates and sorts the keys
	for k := range m {
		out = append(out, k)
	}
	return out
}

// justified uses the impure escape hatch with the mandatory reason.
func justified() {
	//lint:impure wall clock feeds a debug log line only, never a cost
	_ = time.Now()
}

// bare shows that an impure marker without a justification suppresses
// nothing.
func bare() {
	//lint:impure
	_ = time.Now() // want `wall clock \(time.Now\) reachable`
}

// unreachable is outside the root set: nothing here is flagged.
func unreachable() {
	_ = time.Now()
	_ = rand.Intn(3)
}

func helperClean() {}

// viaValue exercises the dynamic-call edges: helperClean is reached
// through a function value.
func viaValue(f func()) { f() }
