// Package goleak is the fixture for the goleak program analyzer: every
// `go` statement needs a provable stop path or a justified annotation.
package goleak

import (
	"context"
	"sync"
)

// Worker owns the provable goroutines.
type Worker struct {
	stop chan struct{}
	wg   sync.WaitGroup
}

// Start spawns goroutines with every accepted kind of stop evidence.
func (w *Worker) Start(ctx context.Context) {
	// Named method whose body selects on a struct{} stop channel.
	go w.loop()

	// WaitGroup pairing: Add before the go, Done inside.
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		work()
	}()

	// Receive from ctx.Done() (a <-chan struct{}).
	go func() {
		<-ctx.Done()
	}()

	go leak() // want `no provable stop path`

	f := work
	go f() // want `opaque function value`
}

func (w *Worker) loop() {
	for {
		select {
		case <-w.stop:
			return
		default:
			work()
		}
	}
}

// leak spins forever with no stop path.
func leak() {
	for i := 0; ; i++ {
		work()
	}
}

// justifiedSpawn documents an out-of-band join the analyzer cannot see.
func justifiedSpawn() {
	//lint:stopped joined out of band: the test harness closes over a latch
	go leak()
}

func work() {}
