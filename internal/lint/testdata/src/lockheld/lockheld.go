// Package lockheld is the fixture for the lockheld analyzer: methods
// documented "requires x.mu" must be called with the lock held, and
// sync mutexes must not be copied by value.
package lockheld

import "sync"

// Counter is the miniature Engine: a mutex, guarded state, and locked
// helper methods following the `// requires c.mu` doc convention.
type Counter struct {
	mu    sync.Mutex
	total int
	byKey map[string]int
}

// bumpLocked increments the counters.
// requires c.mu.
func (c *Counter) bumpLocked(key string) {
	c.total++
	c.byKey[key]++
}

// snapshotLocked reads the total. requires c.mu.
func (c *Counter) snapshotLocked() int {
	return c.total
}

// Bump is the public entry point: lock, then call the locked helper.
func (c *Counter) Bump(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bumpLocked(key)
}

// BumpTwo holds the lock across two locked calls.
func (c *Counter) BumpTwo(a, b string) {
	c.mu.Lock()
	c.bumpLocked(a)
	c.bumpLocked(b)
	c.mu.Unlock()
}

// Racy forgets the lock entirely.
func (c *Counter) Racy(key string) {
	c.bumpLocked(key) // want `without holding the lock`
}

// AfterUnlock calls the helper after releasing.
func (c *Counter) AfterUnlock(key string) int {
	c.mu.Lock()
	c.bumpLocked(key)
	c.mu.Unlock()
	return c.snapshotLocked() // want `without holding the lock`
}

// bulkLocked composes locked helpers: fine, the obligation moves to
// bulkLocked's callers. requires c.mu.
func (c *Counter) bulkLocked(keys []string) {
	for _, k := range keys {
		c.bumpLocked(k)
	}
}

// FreeFunctionRacy shows the check also applies outside methods.
func FreeFunctionRacy(c *Counter) {
	c.bumpLocked("x") // want `without holding the lock`
}

// FreeFunctionLocked is the correct free-function form.
func FreeFunctionLocked(c *Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bumpLocked("x")
}

// Justified: the counter is still private to this goroutine.
func NewBumped(key string) *Counter {
	c := &Counter{byKey: make(map[string]int)}
	//lint:locked c is not yet shared, no lock needed during construction
	c.bumpLocked(key)
	return c
}

// --- mutex copy cases ---

// Flagged: by-value receiver copies the mutex.
func (c Counter) ValueReceiver() int { // want `by-value receiver copies`
	return c.total
}

// Flagged: by-value parameter.
func drain(c Counter) {} // want `by-value parameter copies`

// Flagged: by-value result.
func produce() (c Counter) { return } // want `by-value result copies`

// Flagged: assignment copies an existing value.
func snapshot(c *Counter) {
	cp := *c // want `copies lockheld.Counter`
	_ = cp
}

// Flagged: range value copies each element.
func sum(cs []Counter) int {
	n := 0
	for _, c := range cs { // want `range value copies`
		n += c.total
	}
	return n
}

// Allowed: pointers never copy the mutex.
func viaPointer(c *Counter) *Counter {
	p := c
	return p
}

// Allowed: factories hand out pointers, never mutex-bearing values.
func fresh() *Counter {
	c := Counter{byKey: make(map[string]int)} // composite literal: fresh, not a copy
	return &c
}

// Allowed: a struct without a mutex can be copied freely.
type plain struct{ n int }

func copyPlain(p plain) plain {
	q := p
	return q
}
