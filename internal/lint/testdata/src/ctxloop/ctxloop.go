// Package ctxloop is the fixture for the ctxloop analyzer: unbounded
// loops inside context-accepting functions must stay cancellable.
package ctxloop

import "context"

// Flagged: condition-free loop with no checkpoint.
func spin(ctx context.Context, work func() bool) {
	for { // want `no cancellation checkpoint`
		if !work() {
			return
		}
	}
}

// Flagged: data-dependent trip count, no checkpoint — the exact shape of
// a solver convergence loop that must poll ctx.
func converge(ctx context.Context, step func() float64) float64 {
	cost := step()
	improved := true
	for improved { // want `no cancellation checkpoint`
		next := step()
		improved = next < cost
		cost = next
	}
	return cost
}

// Allowed: explicit ctx.Err() checkpoint.
func convergeChecked(ctx context.Context, step func() float64) (float64, error) {
	cost := step()
	improved := true
	for improved {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		next := step()
		improved = next < cost
		cost = next
	}
	return cost, nil
}

// Allowed: select on ctx.Done().
func pump(ctx context.Context, in <-chan int, sink func(int)) {
	for {
		select {
		case v := <-in:
			sink(v)
		case <-ctx.Done():
			return
		}
	}
}

// Allowed: checkpoint in the loop condition.
func condCheck(ctx context.Context, work func()) {
	for ctx.Err() == nil {
		work()
	}
}

// Allowed: forwarding ctx to a callee delegates the check.
func delegate(ctx context.Context, phase func(context.Context) bool) {
	for {
		if !phase(ctx) {
			return
		}
	}
}

// Allowed: statically bounded trip count.
func boundedRetry(ctx context.Context, attempt func() bool) bool {
	for i := 0; i < 3; i++ {
		if attempt() {
			return true
		}
	}
	return false
}

// Allowed: bounded by len().
func scan(ctx context.Context, xs []int, visit func(int)) {
	for i := 0; i < len(xs); i++ {
		visit(xs[i])
	}
}

// Allowed: canonical counter shape over a variable bound — the trip
// count is fixed once n is evaluated (the CG solver inner-loop shape).
func axpy(ctx context.Context, n int, x, y []float64, a float64) {
	for i := 0; i < n; i++ {
		y[i] += a * x[i]
	}
}

// Flagged: a data-dependent bound rewritten each iteration is not a
// counter loop (cond compares two mutating variables).
func chase(ctx context.Context, next func(int) int) int {
	i, limit := 0, 100
	for i < limit { // want `no cancellation checkpoint`
		i = next(i)
		limit = next(limit)
	}
	return i
}

// Allowed: range over a slice terminates.
func visitAll(ctx context.Context, xs []int, visit func(int)) {
	for _, x := range xs {
		visit(x)
	}
}

// Flagged: range over a channel can block forever without a ctx guard.
func drain(ctx context.Context, ch <-chan int, sink func(int)) {
	for v := range ch { // want `no cancellation checkpoint`
		sink(v)
	}
}

// Allowed: justified — the caller guarantees the channel closes.
func drainJustified(ctx context.Context, ch <-chan int, sink func(int)) {
	//lint:bounded producer closes ch before ctx can expire
	for v := range ch {
		sink(v)
	}
}

// No ctx parameter: analyzer does not apply, even to unbounded loops.
func freeSpin(work func() bool) {
	for {
		if !work() {
			return
		}
	}
}

// Function literals get their own contract: the outer function's ctx
// does not license an unchecked loop inside a goroutine closure...
func spawns(ctx context.Context, work func() bool) {
	go func() {
		for { // inner function has no ctx parameter: not this analyzer's job
			if !work() {
				return
			}
		}
	}()
}

// ...but a literal that itself takes ctx is checked.
func literalWithCtx() func(context.Context, func() bool) {
	return func(ctx context.Context, work func() bool) {
		for { // want `no cancellation checkpoint`
			if !work() {
				return
			}
		}
	}
}
