// Package maporder is the fixture for the maporder analyzer: flagged
// cases are order-dependent map ranges, allowed cases are provably
// order-insensitive bodies or justified loops.
package maporder

import "sort"

type nodeID int

type stats struct {
	count int
	cost  float64
}

// Flagged: appending map keys in iteration order is order-dependent.
func collectKeysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `order-dependent body`
		keys = append(keys, k)
	}
	return keys
}

// Flagged: picking a "best" element depends on visit order.
func pickBest(costs map[nodeID]float64) nodeID {
	best := nodeID(-1)
	bestCost := 1e18
	for id, c := range costs { // want `order-dependent body`
		if c < bestCost {
			best, bestCost = id, c
		}
	}
	return best
}

// Flagged: float accumulation is non-associative, so the sum depends on
// iteration order.
func sumFloats(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `order-dependent body`
		total += v
	}
	return total
}

// Flagged: calling a function with side effects per element.
func emitAll(m map[string]int, emit func(string)) {
	for k := range m { // want `order-dependent body`
		emit(k)
	}
}

// Flagged: break makes the processed subset order-dependent.
func findAny(m map[string]int) bool {
	found := false
	for _, v := range m { // want `order-dependent body`
		if v > 0 {
			found = true
			break
		}
	}
	return found
}

// Allowed: building a set — writes into a map commute.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Allowed: integer accumulation commutes.
func countPositive(m map[nodeID]int) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n++
		}
	}
	return n
}

// Allowed: integer sum into a struct field.
func tally(m map[string]int, st *stats) {
	for _, v := range m {
		st.count += v
	}
}

// Allowed: delete while ranging commutes.
func dropNegative(m map[string]int) {
	for k, v := range m {
		if v < 0 {
			delete(m, k)
		}
	}
}

// Allowed: the canonical collect-then-sort idiom — the appended slice is
// sorted after the loop, so iteration order cannot leak out.
func collectKeysSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Flagged: appended slice is never sorted afterwards.
func collectValuesNoSort(m map[string]int) []int {
	var vals []int
	for _, v := range m { // want `order-dependent body`
		vals = append(vals, v)
	}
	return vals
}

// Allowed: collect-then-sort with sort.Slice and a comparator.
func collectPairsSorted(m map[string]int) []string {
	pairs := make([]string, 0, len(m))
	for k := range m {
		pairs = append(pairs, k)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i] < pairs[j] })
	return pairs
}

// Allowed: justified with //lint:sorted — max with a total deterministic
// tie-break is order-insensitive even though the analyzer cannot prove it.
func pickBestJustified(costs map[nodeID]float64) nodeID {
	best := nodeID(-1)
	bestCost := 1e18
	for id, c := range costs { //lint:sorted max with total tie-break on id is order-insensitive
		if c < bestCost || (c == bestCost && id < best) {
			best, bestCost = id, c
		}
	}
	return best
}

// Allowed: ranging over a slice is ordered — not a map.
func sumSlice(xs []float64) float64 {
	total := 0.0
	for _, v := range xs {
		total += v
	}
	return total
}

// Allowed: per-iteration temporaries with pure initializers, map writes,
// and a slice write indexed by the unique range key (disjoint slots).
func scatter(m map[int]float64, out []float64, flags map[int]bool) {
	for k, v := range m {
		scaled := v * 2
		if scaled < 0 {
			continue
		}
		out[k] = scaled
		flags[k] = true
	}
}

// Flagged: slice write indexed by something other than the range key can
// collide, making the last writer order-dependent.
func scatterCollide(m map[int]float64, out []float64) {
	for k, v := range m { // want `order-dependent body`
		out[k%2] = v
	}
}

// Allowed: nested pure loops accumulating into integer matrix cells —
// int += commutes wherever the cell lives.
func crossCounts(sets []map[nodeID]bool, m [][]int) {
	for i := 0; i < len(sets); i++ {
		for id := range sets[i] {
			for j := 0; j < len(sets); j++ {
				if j != i && sets[j][id] {
					m[i][j]++
				}
			}
		}
	}
}

// Flagged: float matrix accumulation stays order-dependent.
func crossWeights(sets []map[nodeID]float64, m [][]float64) {
	for i := 0; i < len(sets); i++ {
		for id, w := range sets[i] { // want `order-dependent body`
			m[i][0] += w
			_ = id
		}
	}
}
