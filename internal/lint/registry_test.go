package lint

import "testing"

// TestDriverRegistriesMatch pins the vet-mode registration list in
// unit.go to the package registry, so the standalone binary and
// `go vet -vettool=lilylint` can never expose different analyzer sets.
func TestDriverRegistriesMatch(t *testing.T) {
	if len(vetProgramAnalyzers) != len(ProgramAnalyzers) {
		t.Fatalf("vet driver registers %d program analyzers, package registry has %d",
			len(vetProgramAnalyzers), len(ProgramAnalyzers))
	}
	for i, a := range vetProgramAnalyzers {
		if a != ProgramAnalyzers[i] {
			t.Errorf("vet registration %d is %q, package registry has %q",
				i, a.Name, ProgramAnalyzers[i].Name)
		}
	}
}

// TestEveryAnalyzerScopedSomewhere asserts every registered per-package
// analyzer is actually applied to at least one module package by the
// scoping function both drivers share — a registry entry that no scope
// returns would silently never run.
func TestEveryAnalyzerScopedSomewhere(t *testing.T) {
	applied := make(map[*Analyzer]bool)
	paths := []string{ModulePath}
	for _, rel := range DeterministicPackages {
		paths = append(paths, ModulePath+"/"+rel)
	}
	for _, rel := range CostPackages {
		paths = append(paths, ModulePath+"/"+rel)
	}
	for _, p := range paths {
		for _, a := range AnalyzersFor(p) {
			applied[a] = true
		}
	}
	for _, a := range Analyzers {
		if !applied[a] {
			t.Errorf("analyzer %q is registered but no package scope applies it", a.Name)
		}
	}
}

// TestProgramAnalyzersForAnchors exercises anchor triggering: each
// program analyzer runs exactly when one of its anchors is requested.
func TestProgramAnalyzersForAnchors(t *testing.T) {
	names := func(as []*ProgramAnalyzer) []string {
		out := make([]string, len(as))
		for i, a := range as {
			out[i] = a.Name
		}
		return out
	}
	got := names(ProgramAnalyzersFor([]string{ModulePath}))
	if len(got) != 1 || got[0] != "purity" {
		t.Errorf("ProgramAnalyzersFor(module root) = %v, want [purity]", got)
	}
	got = names(ProgramAnalyzersFor([]string{ModulePath + "/internal/server"}))
	if len(got) != 2 {
		t.Errorf("ProgramAnalyzersFor(server) = %v, want goleak+httpcontract", got)
	}
	if got := ProgramAnalyzersFor([]string{ModulePath + "/internal/cover"}); len(got) != 0 {
		t.Errorf("ProgramAnalyzersFor(cover) = %v, want none", names(got))
	}
}
