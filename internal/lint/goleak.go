package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeakAnalyzer demands a provable stop path for every `go` statement
// in the concurrent packages (engine, cluster, server). A goroutine that
// outlives its owner — a probe loop still ticking after Close, a GC
// sweep after Shutdown — is exactly the failure mode the lifecycle
// tests race to catch dynamically; this pins it statically.
//
// Accepted stop-path evidence, looked for in the spawned function body
// and in everything it (statically) calls, up to a small depth:
//
//   - a receive from (or range over) a channel whose element type is
//     struct{} — the signal-channel idiom, covering both explicit
//     done/stop channels and ctx.Done();
//   - sync.WaitGroup pairing: an Add on the same WaitGroup lexically
//     before the `go` statement in the spawning function, with a Done
//     (usually deferred) inside the spawned work.
//
// Anything else needs `//lint:stopped <why>` on the `go` statement
// naming the joining mechanism.
var GoLeakAnalyzer = GoLeakAnalyzerFor(
	ModulePath+"/internal/engine",
	ModulePath+"/internal/cluster",
	ModulePath+"/internal/server",
)

// GoLeakAnalyzerFor builds a goleak analyzer scoped to the given import
// paths (which are also its anchors).
func GoLeakAnalyzerFor(importPaths ...string) *ProgramAnalyzer {
	a := &ProgramAnalyzer{
		Name:          "goleak",
		Doc:           "every go statement needs a provable stop path (signal-channel receive or WaitGroup pairing)",
		Justification: "stopped",
		Anchors:       importPaths,
	}
	a.Run = func(pass *ProgramPass) error {
		for _, path := range importPaths {
			pkg := pass.Prog.PackageFor(path)
			if pkg == nil {
				continue // package may not exist in a fixture module
			}
			checkGoLeaks(pass, pkg)
		}
		return nil
	}
	return a
}

// goStmtScanDepth bounds how far past the spawned function the stop-path
// search follows static calls. Depth 3 covers the worker-calls-loop-
// calls-step shape without letting evidence leak in from half the module.
const goStmtScanDepth = 3

func checkGoLeaks(pass *ProgramPass, pkg *Package) {
	g := pass.Prog.Graph
	for _, f := range pkg.Files {
		// Track the enclosing function body stack so WaitGroup Add
		// pairing can look at the spawner.
		var bodyStack []*ast.BlockStmt
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Body == nil {
					return false
				}
				bodyStack = append(bodyStack, x.Body)
				ast.Inspect(x.Body, visit)
				bodyStack = bodyStack[:len(bodyStack)-1]
				return false
			case *ast.FuncLit:
				bodyStack = append(bodyStack, x.Body)
				ast.Inspect(x.Body, visit)
				bodyStack = bodyStack[:len(bodyStack)-1]
				return false
			case *ast.GoStmt:
				var enclosing *ast.BlockStmt
				if len(bodyStack) > 0 {
					enclosing = bodyStack[len(bodyStack)-1]
				}
				checkGoStmt(pass, g, pkg, x, enclosing)
				return true
			}
			return true
		}
		ast.Inspect(f, visit)
	}
}

// checkGoStmt proves (or fails to prove) a stop path for one go
// statement.
func checkGoStmt(pass *ProgramPass, g *CallGraph, pkg *Package, stmt *ast.GoStmt, enclosing *ast.BlockStmt) {
	bodies, resolved := spawnedBodies(g, pkg, stmt)
	if !resolved {
		pass.Reportf(stmt.Pos(),
			"spawn a named function or literal whose stop path the analyzer can see, or add `//lint:stopped <why>`",
			"go statement through an opaque function value: stop path is unprovable")
		return
	}

	for _, b := range bodies {
		if hasSignalReceive(b.pkg, b.body) {
			return
		}
	}
	if wgPaired(pkg, enclosing, stmt, bodies) {
		return
	}
	pass.Reportf(stmt.Pos(),
		"give the goroutine a stop path: select on a struct{} done/stop channel (or ctx.Done()), or pair it with WaitGroup Add/Done; else add `//lint:stopped <why>` naming the joining mechanism",
		"goroutine has no provable stop path")
}

// scanBody is a function body paired with the package whose type info
// resolves it (spawned callees may live in another package).
type scanBody struct {
	pkg  *Package
	body *ast.BlockStmt
}

// spawnedBodies collects the bodies the stop-path search scans: the
// spawned literal or named function, plus everything reachable from it
// through static calls up to goStmtScanDepth hops. resolved is false
// when the spawned expression is an opaque function value.
func spawnedBodies(g *CallGraph, pkg *Package, stmt *ast.GoStmt) (bodies []scanBody, resolved bool) {
	var frontier []*types.Func
	switch fun := unparen(stmt.Call.Fun).(type) {
	case *ast.FuncLit:
		bodies = append(bodies, scanBody{pkg, fun.Body})
		frontier = staticCalleesIn(pkg, fun.Body)
	default:
		fn := staticCallee(pkg, fun)
		if fn == nil {
			return nil, false
		}
		frontier = []*types.Func{fn}
	}

	seen := make(map[*types.Func]bool)
	for depth := 0; depth < goStmtScanDepth && len(frontier) > 0; depth++ {
		var next []*types.Func
		for _, fn := range frontier {
			if seen[fn] {
				continue
			}
			seen[fn] = true
			n := g.Node(fn)
			if n == nil || n.Decl == nil || n.Decl.Body == nil {
				continue
			}
			bodies = append(bodies, scanBody{n.Pkg, n.Decl.Body})
			next = append(next, n.Callees()...)
		}
		frontier = next
	}
	return bodies, true
}

// staticCallee resolves an expression in call position to a *types.Func,
// or nil for dynamic function values.
func staticCallee(pkg *Package, fun ast.Expr) *types.Func {
	switch fe := unparen(fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fe].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fe]; ok && sel.Kind() == types.MethodVal {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn.Origin()
			}
			return nil
		}
		if fn, ok := pkg.Info.Uses[fe.Sel].(*types.Func); ok {
			return fn.Origin()
		}
	}
	return nil
}

// staticCalleesIn collects every statically-resolvable callee in body.
func staticCalleesIn(pkg *Package, body *ast.BlockStmt) []*types.Func {
	var out []*types.Func
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := staticCallee(pkg, call.Fun); fn != nil {
				out = append(out, fn)
			}
		}
		return true
	})
	return out
}

// hasSignalReceive reports whether body receives from (or ranges over) a
// channel whose element type is struct{}. ctx.Done(), close-signalled
// stop channels, and per-job Done() channels all have this shape; a
// time.Ticker's C (chan time.Time) deliberately does not.
func hasSignalReceive(bodyPkg *Package, body *ast.BlockStmt) bool {
	if bodyPkg == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && isSignalChan(bodyPkg, x.X) {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if isSignalChan(bodyPkg, x.X) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSignalChan reports whether e has type chan struct{} (any direction).
func isSignalChan(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// wgPaired proves the Add-before-go / Done-inside-work WaitGroup
// pairing. When both the Add and the Done receiver resolve to objects
// (field or variable), they must match; when resolution fails on either
// side, the pairing is accepted leniently.
func wgPaired(pkg *Package, enclosing *ast.BlockStmt, stmt *ast.GoStmt, bodies []scanBody) bool {
	if enclosing == nil {
		return false
	}
	adds := wgCallTargets(pkg, enclosing, "Add", stmt.Pos())
	if len(adds) == 0 {
		return false
	}
	for _, b := range bodies {
		dones := wgCallTargets(b.pkg, b.body, "Done", 0)
		for _, d := range dones {
			for _, a := range adds {
				if a == nil || d == nil || a == d {
					return true
				}
			}
		}
	}
	return false
}

// wgCallTargets finds calls to sync.WaitGroup method `name` under root
// (before limit, when limit is set) and returns the receiver objects
// (nil entries for receivers that do not resolve to a single object).
func wgCallTargets(pkg *Package, root ast.Node, name string, limit token.Pos) []types.Object {
	var out []types.Object
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if limit != 0 && call.Pos() >= limit {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != name {
			return true
		}
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		recv := fn.Type().(*types.Signature).Recv()
		if recv == nil || !isWaitGroup(recv.Type()) {
			return true
		}
		out = append(out, receiverObject(pkg, sel.X))
		return true
	})
	return out
}

func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// receiverObject resolves the WaitGroup receiver expression to a stable
// object: the field for e.wg, the variable for a local wg. Returns nil
// when the expression is anything more exotic.
func receiverObject(pkg *Package, e ast.Expr) types.Object {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[x]
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[x]; ok {
			return sel.Obj()
		}
		return pkg.Info.Uses[x.Sel]
	}
	return nil
}
