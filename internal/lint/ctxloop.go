package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxLoopAnalyzer keeps solver loops cancellable. In any function that
// receives a context.Context, a `for` loop whose trip count is not
// statically bounded must contain a cancellation checkpoint: a
// ctx.Err()/ctx.Done() check, a select on ctx.Done(), or a call that
// forwards ctx (which is assumed to check it). This mirrors the PR-1
// checkpoints in the placement solver, the conjugate-gradient loop, and
// the cone-matching loop: without them a runaway iteration ignores
// Shutdown, per-job timeouts, and client disconnects.
//
// A loop counts as statically bounded when its condition compares
// against a constant, len(...), or cap(...). `range` loops are bounded
// by construction (ranging over a channel is not, and is flagged).
// Justify a deliberately unchecked loop with `//lint:bounded <why>`.
var CtxLoopAnalyzer = &Analyzer{
	Name:          "ctxloop",
	Doc:           "flags unbounded loops without a ctx checkpoint in context-accepting functions",
	Justification: "bounded",
	Run:           runCtxLoop,
}

func runCtxLoop(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var ftype *ast.FuncType
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body, ftype = fn.Body, fn.Type
			case *ast.FuncLit:
				body, ftype = fn.Body, fn.Type
			default:
				return true
			}
			if body == nil {
				return true
			}
			ctxNames := contextParams(pass, ftype)
			if len(ctxNames) == 0 {
				return true
			}
			checkCtxLoops(pass, body, ctxNames)
			// Nested function literals get their own visit (and their own
			// parameter check), so don't descend into them twice: the walk
			// below continues naturally and the FuncLit case re-triggers.
			return true
		})
	}
	return nil
}

// contextParams returns the names of parameters typed context.Context.
func contextParams(pass *Pass, ftype *ast.FuncType) map[string]bool {
	names := make(map[string]bool)
	if ftype.Params == nil {
		return names
	}
	for _, field := range ftype.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				names[name.Name] = true
			}
		}
	}
	return names
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// checkCtxLoops walks the body flagging unbounded loops without a
// checkpoint. Loops nested inside an unbounded flagged loop are still
// checked (an inner spin loop hides from an outer checkpoint).
func checkCtxLoops(pass *Pass, body *ast.BlockStmt, ctxNames map[string]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // different function, different contract
		}
		switch loop := n.(type) {
		case *ast.ForStmt:
			// The condition and post-statement count too: `for ctx.Err() ==
			// nil { ... }` is a checkpoint in the condition.
			if loopBounded(pass, loop) || hasCtxCheckpoint(pass, loop, ctxNames) {
				return true
			}
			pass.Reportf(loop.Pos(),
				"add `if err := ctx.Err(); err != nil { return ... }` inside the loop, or forward ctx to a callee that checks it",
				"unbounded for loop in a context-accepting function has no cancellation checkpoint")
		case *ast.RangeStmt:
			// Ranging over a channel can block forever without a ctx guard.
			tv, ok := pass.TypesInfo.Types[loop.X]
			if !ok {
				return true
			}
			if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
				return true
			}
			if hasCtxCheckpoint(pass, loop.Body, ctxNames) {
				return true
			}
			pass.Reportf(loop.Pos(),
				"use `for { select { case v, ok := <-ch: ...; case <-ctx.Done(): return ctx.Err() } }` instead",
				"range over a channel in a context-accepting function has no cancellation checkpoint")
		}
		return true
	})
}

// loopBounded reports whether the for loop's trip count is statically
// bounded: its condition is a comparison with a constant, len(...), or
// cap(...) on either side, a conjunction containing such a bound, or the
// loop has canonical counter shape (`for i := lo; i < hi; i++`), whose
// trip count is fixed once the bound expression is evaluated.
func loopBounded(pass *Pass, loop *ast.ForStmt) bool {
	return condBounded(pass, loop.Cond) || counterShaped(loop)
}

// counterShaped matches `for i := init; i <op> bound; i++/i--/i += k`:
// init introduces or assigns the counter, post steps it, cond compares
// it. Such loops terminate unless the body rewrites the bound — exotic
// enough that flag-driven loops (`for changed {}`) remain the target.
func counterShaped(loop *ast.ForStmt) bool {
	if loop.Init == nil || loop.Cond == nil || loop.Post == nil {
		return false
	}
	var counter string
	switch init := loop.Init.(type) {
	case *ast.AssignStmt:
		if len(init.Lhs) != 1 {
			return false
		}
		id, ok := unparen(init.Lhs[0]).(*ast.Ident)
		if !ok {
			return false
		}
		counter = id.Name
	default:
		return false
	}
	switch post := loop.Post.(type) {
	case *ast.IncDecStmt:
		id, ok := unparen(post.X).(*ast.Ident)
		if !ok || id.Name != counter {
			return false
		}
	case *ast.AssignStmt:
		if post.Tok != token.ADD_ASSIGN && post.Tok != token.SUB_ASSIGN {
			return false
		}
		if len(post.Lhs) != 1 {
			return false
		}
		id, ok := unparen(post.Lhs[0]).(*ast.Ident)
		if !ok || id.Name != counter {
			return false
		}
	default:
		return false
	}
	cond, ok := unparen(loop.Cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cond.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
	default:
		return false
	}
	for _, side := range []ast.Expr{cond.X, cond.Y} {
		if id, ok := unparen(side).(*ast.Ident); ok && id.Name == counter {
			return true
		}
	}
	return false
}

func condBounded(pass *Pass, cond ast.Expr) bool {
	switch c := cond.(type) {
	case nil:
		return false
	case *ast.ParenExpr:
		return condBounded(pass, c.X)
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND, token.LOR:
			// i < n && !done: the conjunct bound still bounds the loop.
			// For ||, both arms must be bounded.
			if c.Op == token.LAND {
				return condBounded(pass, c.X) || condBounded(pass, c.Y)
			}
			return condBounded(pass, c.X) && condBounded(pass, c.Y)
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
			return boundedOperand(pass, c.X) || boundedOperand(pass, c.Y)
		}
	}
	return false
}

// boundedOperand reports whether e is a compile-time constant or a
// len/cap call — the shapes we accept as static loop bounds.
func boundedOperand(pass *Pass, e ast.Expr) bool {
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return true
	}
	if call, ok := e.(*ast.CallExpr); ok {
		if id, ok := call.Fun.(*ast.Ident); ok {
			if _, isB := pass.TypesInfo.Uses[id].(*types.Builtin); isB && (id.Name == "len" || id.Name == "cap") {
				return true
			}
		}
	}
	return false
}

// hasCtxCheckpoint reports whether the loop (excluding nested function
// literals) checks or forwards any of the context parameters.
func hasCtxCheckpoint(pass *Pass, loop ast.Node, ctxNames map[string]bool) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			// ctx.Err(), ctx.Done(), ctx.Deadline(), ctx.Value() — any
			// method call on the context counts as a checkpoint only for
			// Err/Done; Value/Deadline don't observe cancellation.
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && ctxNames[id.Name] {
					if sel.Sel.Name == "Err" || sel.Sel.Name == "Done" {
						found = true
						return false
					}
				}
			}
			// A call forwarding ctx as any argument delegates the check.
			for _, arg := range x.Args {
				if id, ok := unparen(arg).(*ast.Ident); ok && ctxNames[id.Name] {
					found = true
					return false
				}
				// context.WithTimeout(ctx, ...) etc. appear as calls whose
				// args include ctx — covered above. Derived contexts like
				// trace-wrapped selectors are matched structurally:
				if sel, ok := unparen(arg).(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok && ctxNames[id.Name] {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
