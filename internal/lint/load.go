package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects non-fatal type-check problems (e.g. an import
	// the offline source importer could not resolve). Analysis proceeds
	// with whatever type information was recovered.
	TypeErrors []error
}

// Loader parses and type-checks packages of one module without any
// network or toolchain dependency beyond GOROOT sources: module-local
// imports resolve by path prefix against the module directory, stdlib
// imports go through go/importer's source importer.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string

	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader builds a loader for the module rooted at dir (which must
// contain go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	src, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		ModuleDir:  abs,
		std:        src,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Load resolves package patterns ("./...", "./internal/cover", an import
// path, or a directory) into loaded packages, sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	seen := make(map[string]bool)
	var paths []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			dirs, err := l.walkModule()
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				add(d)
			}
		case strings.HasSuffix(pat, "/..."):
			root := strings.TrimSuffix(pat, "/...")
			dirs, err := l.walkModule()
			if err != nil {
				return nil, err
			}
			rel := l.importPathFor(root)
			for _, d := range dirs {
				if d == rel || strings.HasPrefix(d, rel+"/") {
					add(d)
				}
			}
		default:
			add(l.importPathFor(pat))
		}
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.loadPackage(p)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// importPathFor maps a pattern (./internal/cover, internal/cover, or a
// full import path) to an import path.
func (l *Loader) importPathFor(pat string) string {
	pat = strings.TrimPrefix(pat, "./")
	pat = strings.TrimSuffix(pat, "/")
	if pat == "" || pat == "." {
		return l.ModulePath
	}
	if pat == l.ModulePath || strings.HasPrefix(pat, l.ModulePath+"/") {
		return pat
	}
	return l.ModulePath + "/" + pat
}

// walkModule enumerates the import paths of every directory under the
// module root that contains non-test .go files, skipping testdata,
// hidden, and underscore directories.
func (l *Loader) walkModule() ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.ModuleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleDir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := goSourceFiles(path)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleDir, path)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, l.ModulePath)
		} else {
			out = append(out, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	return out, err
}

func goSourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// dirFor maps a module-local import path to its directory.
func (l *Loader) dirFor(importPath string) string {
	rel := strings.TrimPrefix(importPath, l.ModulePath)
	rel = strings.TrimPrefix(rel, "/")
	return filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
}

func (l *Loader) isLocal(importPath string) bool {
	return importPath == l.ModulePath || strings.HasPrefix(importPath, l.ModulePath+"/")
}

// loadPackage parses and type-checks one module-local package (memoized).
func (l *Loader) loadPackage(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	dir := l.dirFor(importPath)
	fileNames, err := goSourceFiles(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", importPath, err)
	}
	if len(fileNames) == 0 {
		return nil, fmt.Errorf("lint: %s: no Go files in %s", importPath, dir)
	}
	pkg := &Package{Path: importPath, Dir: dir, Fset: l.Fset}
	for _, fn := range fileNames {
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	conf := types.Config{
		Importer: importerFunc(func(path, srcDir string) (*types.Package, error) {
			return l.importPkg(path, srcDir)
		}),
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	pkg.Info = newInfo()
	// Check reports the first hard error; soft errors land in TypeErrors.
	// Either way we keep the (possibly partial) package and info.
	tpkg, err := conf.Check(importPath, l.Fset, pkg.Files, pkg.Info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	l.pkgs[importPath] = pkg
	return pkg, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

func (l *Loader) importPkg(path, srcDir string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.isLocal(path) {
		pkg, err := l.loadPackage(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, 0)
}

// importerFunc adapts a function to types.ImporterFrom.
type importerFunc func(path, srcDir string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) {
	return f(path, "")
}

func (f importerFunc) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	return f(path, srcDir)
}
