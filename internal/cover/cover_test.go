package cover

import (
	"testing"

	"lily/internal/decomp"
	"lily/internal/library"
	"lily/internal/logic"
	"lily/internal/match"
)

// baseCoverOracle maps every subject node to its base cell (nand2/inv).
func baseCoverOracle(t *testing.T, sub *logic.Network, lib *library.Library) func(logic.NodeID) *match.Match {
	t.Helper()
	mt := match.NewMatcher(sub, lib)
	table := make(map[logic.NodeID]*match.Match)
	for _, nd := range sub.Nodes {
		if nd == nil || nd.Kind != logic.KindLogic {
			continue
		}
		for _, m := range mt.AtNode(nd.ID) {
			if m.Gate.Name == "nand2" || m.Gate.Name == "inv" {
				table[nd.ID] = m
				break
			}
		}
		if table[nd.ID] == nil {
			t.Fatalf("no base match at %s", nd.Name)
		}
	}
	return func(v logic.NodeID) *match.Match { return table[v] }
}

func subject(t *testing.T) (*logic.Network, *logic.Network) {
	t.Helper()
	src := logic.New("t")
	a := src.AddPI("a")
	b := src.AddPI("b")
	c := src.AddPI("c")
	x := src.AddLogic("x", []logic.NodeID{a.ID, b.ID}, logic.AndSOP(2))
	y := src.AddLogic("y", []logic.NodeID{x.ID, c.ID}, logic.OrSOP(2))
	src.MarkPO(y.ID, "y")
	src.MarkPO(x.ID, "x2") // x observable under a second name
	res, err := decomp.Premap(src)
	if err != nil {
		t.Fatal(err)
	}
	return src, res.Inchoate
}

func TestBuildNetlistBaseCover(t *testing.T) {
	src, sub := subject(t)
	lib := library.Big()
	nl, refs, err := BuildNetlist(sub, baseCoverOracle(t, sub, lib), "t")
	if err != nil {
		t.Fatal(err)
	}
	// One cell per subject logic node reachable from POs.
	if len(nl.Cells) != sub.NumLogic() {
		t.Errorf("%d cells for %d subject nodes under the base cover",
			len(nl.Cells), sub.NumLogic())
	}
	if len(refs) == 0 {
		t.Error("no refs returned")
	}
	// Functional equivalence.
	for r := 0; r < 8; r++ {
		in := map[string]bool{"a": r&1 != 0, "b": r&2 != 0, "c": r&4 != 0}
		want, _ := src.Eval(in)
		got, err := nl.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if want[k] != got[k] {
				t.Fatalf("output %s differs at row %d", k, r)
			}
		}
	}
}

func TestBuildNetlistMissingMatch(t *testing.T) {
	_, sub := subject(t)
	_, _, err := BuildNetlist(sub, func(logic.NodeID) *match.Match { return nil }, "t")
	if err == nil {
		t.Error("missing match not reported")
	}
}

func TestNeededSetStopsAtPIs(t *testing.T) {
	_, sub := subject(t)
	lib := library.Big()
	oracle := baseCoverOracle(t, sub, lib)
	needed, err := NeededSet(sub, oracle, sub.POs)
	if err != nil {
		t.Fatal(err)
	}
	for id := range needed {
		if sub.Nodes[id].Kind != logic.KindLogic {
			t.Errorf("PI %d in needed set", id)
		}
	}
	if len(needed) != sub.NumLogic() {
		t.Errorf("needed %d of %d nodes under base cover", len(needed), sub.NumLogic())
	}
}

func TestBuildNetlistWrongRoot(t *testing.T) {
	_, sub := subject(t)
	lib := library.Big()
	oracle := baseCoverOracle(t, sub, lib)
	// Return a match rooted elsewhere: take the PO root's match for all.
	var poMatch *match.Match
	for _, po := range sub.POs {
		if sub.Nodes[po].Kind == logic.KindLogic {
			poMatch = oracle(po)
			break
		}
	}
	bad := func(v logic.NodeID) *match.Match { return poMatch }
	if _, _, err := BuildNetlist(sub, bad, "t"); err == nil {
		t.Error("mis-rooted match not rejected")
	}
}
