// Package cover turns a match assignment (the outcome of dynamic
// programming in packages mis and core) into a mapped netlist. Starting
// from the primary outputs it walks the "needed" subject nodes — the hawks
// of the paper's terminology — instantiating one library gate per needed
// node and wiring gate pins to the signals of the bound match inputs.
// Subject nodes merged inside matches (doves) produce no gates; a merged
// node that is nevertheless needed elsewhere is instantiated too, which is
// exactly the logic duplication DAG covering admits.
package cover

import (
	"fmt"

	"lily/internal/geom"
	"lily/internal/logic"
	"lily/internal/match"
	"lily/internal/netlist"
)

// BuildNetlist constructs the mapped netlist for a subject graph given a
// best-match oracle. It returns the netlist and the driver reference of
// every needed subject node. Positions are left zero; the layout backend
// assigns them.
func BuildNetlist(sub *logic.Network, best func(logic.NodeID) *match.Match, name string) (*netlist.Netlist, map[logic.NodeID]netlist.Ref, error) {
	nl := &netlist.Netlist{Name: name}
	piIndex := make(map[logic.NodeID]int, len(sub.PIs))
	for _, pi := range sub.PIs {
		piIndex[pi] = len(nl.PINames)
		nl.PINames = append(nl.PINames, sub.Nodes[pi].Name)
	}
	nl.PIPos = make([]geom.Point, len(nl.PINames))

	refs := make(map[logic.NodeID]netlist.Ref)
	var build func(v logic.NodeID) (netlist.Ref, error)
	build = func(v logic.NodeID) (netlist.Ref, error) {
		if r, ok := refs[v]; ok {
			return r, nil
		}
		nd := sub.Node(v)
		if nd == nil {
			return netlist.Ref{}, fmt.Errorf("cover: needed node %d is deleted", v)
		}
		if nd.Kind == logic.KindPI {
			r := netlist.Ref{IsPI: true, Index: piIndex[v]}
			refs[v] = r
			return r, nil
		}
		m := best(v)
		if m == nil {
			return netlist.Ref{}, fmt.Errorf("cover: no match chosen at node %q", nd.Name)
		}
		if m.Root() != v {
			return netlist.Ref{}, fmt.Errorf("cover: match at %q roots at %d", nd.Name, m.Root())
		}
		// Reserve the cell slot before recursing (the subject is a DAG, so
		// recursion cannot revisit v, but the slot keeps cell order stable).
		ci := nl.AddCell(&netlist.Cell{Name: nd.Name, Gate: m.Gate,
			Inputs: make([]netlist.Ref, len(m.Inputs))})
		r := netlist.Ref{Index: ci}
		refs[v] = r
		for pin, in := range m.Inputs {
			ir, err := build(in)
			if err != nil {
				return netlist.Ref{}, err
			}
			nl.Cells[ci].Inputs[pin] = ir
		}
		return r, nil
	}

	for i, po := range sub.POs {
		r, err := build(po)
		if err != nil {
			return nil, nil, err
		}
		nl.POs = append(nl.POs, netlist.PO{Name: sub.PONames[i], Driver: r})
	}
	if err := nl.Check(); err != nil {
		return nil, nil, err
	}
	return nl, refs, nil
}

// NeededSet returns the subject nodes that appear as gates in the final
// netlist (hawks): the PO drivers and, transitively, the match inputs of
// every needed node.
func NeededSet(sub *logic.Network, best func(logic.NodeID) *match.Match, roots []logic.NodeID) (map[logic.NodeID]bool, error) {
	needed := make(map[logic.NodeID]bool)
	stack := append([]logic.NodeID(nil), roots...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if needed[v] {
			continue
		}
		nd := sub.Node(v)
		if nd == nil {
			return nil, fmt.Errorf("cover: needed node %d deleted", v)
		}
		if nd.Kind == logic.KindPI {
			continue
		}
		needed[v] = true
		m := best(v)
		if m == nil {
			return nil, fmt.Errorf("cover: no match at node %q", nd.Name)
		}
		for _, in := range m.Inputs {
			stack = append(stack, in)
		}
	}
	return needed, nil
}
