// Package mis implements the baseline technology mapper the paper compares
// against: the MIS 2.1 / DAGON style dynamic-programming cover that
// minimizes active gate area (area mode) or output arrival time under a
// positional-information-free load model (timing mode). Interconnect is
// invisible to this mapper — that blindness is exactly what Lily (package
// core) removes.
package mis

import (
	"fmt"
	"math"

	"lily/internal/cover"
	"lily/internal/library"
	"lily/internal/logic"
	"lily/internal/match"
	"lily/internal/netlist"
	"lily/internal/timing"
)

// Mode selects the optimization objective.
type Mode int

const (
	// ModeArea minimizes the sum of gate areas.
	ModeArea Mode = iota
	// ModeDelay minimizes the worst output arrival time.
	ModeDelay
)

func (m Mode) String() string {
	if m == ModeDelay {
		return "delay"
	}
	return "area"
}

// Options tunes the baseline mapper.
type Options struct {
	Mode Mode
	// TreeMode restricts covering to DAGON's tree partition: matches may
	// not swallow multi-fanout nodes. Off by default (MIS cone covering
	// with duplication, which "implements DAGON as a subset", §2).
	TreeMode bool
	// FanoutCapPerPin is the per-fanout wiring capacitance (pF) of the
	// MIS load model C_w = k·n (§4.2).
	FanoutCapPerPin float64
}

// DefaultOptions returns the configuration used in the paper's tables.
func DefaultOptions(mode Mode) Options {
	return Options{Mode: mode, FanoutCapPerPin: 0.03}
}

// Map covers the subject graph sub with gates from lib.
func Map(sub *logic.Network, lib *library.Library, opt Options) (*netlist.Netlist, error) {
	if err := validateSubject(sub); err != nil {
		return nil, err
	}
	mt := match.NewMatcher(sub, lib)
	order, err := sub.TopoOrder()
	if err != nil {
		return nil, err
	}

	best := make(map[logic.NodeID]*match.Match)
	bestCost := make(map[logic.NodeID]float64)       // area mode
	bestArr := make(map[logic.NodeID]timing.Arrival) // delay mode
	bestArea := make(map[logic.NodeID]float64)

	for _, v := range order {
		nd := sub.Nodes[v]
		if nd.Kind != logic.KindLogic {
			continue
		}
		matches := mt.AtNode(v)
		if opt.TreeMode {
			matches = filterTree(sub, matches)
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("mis: node %q has no admissible matches", nd.Name)
		}
		switch opt.Mode {
		case ModeArea:
			var bm *match.Match
			bc := math.Inf(1)
			for _, m := range matches {
				c := m.Gate.Area
				ok := true
				for _, in := range m.Inputs {
					if sub.Nodes[in].Kind == logic.KindLogic {
						ic, has := bestCost[in]
						if !has {
							ok = false
							break
						}
						c += ic
					}
				}
				if ok && c < bc {
					bc, bm = c, m
				}
			}
			if bm == nil {
				return nil, fmt.Errorf("mis: no feasible match at %q", nd.Name)
			}
			best[v], bestCost[v] = bm, bc
		case ModeDelay:
			var bm *match.Match
			ba := timing.Arrival{Rise: math.Inf(1), Fall: math.Inf(1)}
			bArea := math.Inf(1)
			// Constant-load assumption (§4.3): every fanout pin presents
			// the library's uniform input capacitance; wiring follows the
			// fanout-count model.
			n := sub.FanoutCount(v)
			cl := float64(n)*lib.Inv.InputCap + opt.FanoutCapPerPin*float64(n)
			for _, m := range matches {
				ins := make([]timing.Arrival, len(m.Inputs))
				ok := true
				area := m.Gate.Area
				for i, in := range m.Inputs {
					if sub.Nodes[in].Kind == logic.KindPI {
						continue
					}
					a, has := bestArr[in]
					if !has {
						ok = false
						break
					}
					ins[i] = a
					area += bestArea[in]
				}
				if !ok {
					continue
				}
				out := timing.GateOutputArrival(m.Gate, ins, cl)
				if better(out, area, ba, bArea) {
					ba, bArea, bm = out, area, m
				}
			}
			if bm == nil {
				return nil, fmt.Errorf("mis: no feasible match at %q", nd.Name)
			}
			best[v], bestArr[v], bestArea[v] = bm, ba, bArea
		}
	}

	nl, _, err := cover.BuildNetlist(sub, func(v logic.NodeID) *match.Match { return best[v] }, sub.Name)
	return nl, err
}

// better orders (arrival, area) pairs: smaller worst-phase arrival wins,
// area breaks ties.
func better(a timing.Arrival, areaA float64, b timing.Arrival, areaB float64) bool {
	am, bm := a.Max(), b.Max()
	if math.Abs(am-bm) > 1e-12 {
		return am < bm
	}
	return areaA < areaB
}

func filterTree(sub *logic.Network, ms []*match.Match) []*match.Match {
	out := ms[:0:0]
	for _, m := range ms {
		if match.InternalFanoutFree(sub, m) {
			out = append(out, m)
		}
	}
	return out
}

func validateSubject(sub *logic.Network) error {
	for _, nd := range sub.Nodes {
		if nd == nil || nd.Kind != logic.KindLogic {
			continue
		}
		if len(nd.Fanins) > 2 {
			return fmt.Errorf("mis: node %q is not a base function; premap first", nd.Name)
		}
	}
	return nil
}
