package mis

import (
	"math/rand"
	"testing"

	"lily/internal/bench"
	"lily/internal/decomp"
	"lily/internal/library"
	"lily/internal/logic"
	"lily/internal/netlist"
)

// mapBench premaps and maps one benchmark.
func mapBench(t *testing.T, name string, opt Options) (*logic.Network, *logic.Network, *netlist.Netlist) {
	t.Helper()
	p, ok := bench.ProfileByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	src := bench.Generate(p)
	res, err := decomp.Premap(src)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := Map(res.Inchoate, library.Big(), opt)
	if err != nil {
		t.Fatal(err)
	}
	return src, res.Inchoate, nl
}

// checkEquivalent simulates source network vs mapped netlist.
func checkEquivalent(t *testing.T, src *logic.Network, nl *netlist.Netlist, trials int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for k := 0; k < trials; k++ {
		in := make(map[string]bool)
		for _, pi := range src.PIs {
			in[src.Nodes[pi].Name] = rng.Intn(2) == 1
		}
		want, err := src.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := nl.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		for name := range want {
			if want[name] != got[name] {
				t.Fatalf("trial %d output %s: src %v, mapped %v", k, name, want[name], got[name])
			}
		}
	}
}

func TestAreaMapEquivalence(t *testing.T) {
	for _, name := range []string{"misex1", "b9", "C432"} {
		src, _, nl := mapBench(t, name, DefaultOptions(ModeArea))
		checkEquivalent(t, src, nl, 16, 7)
	}
}

func TestDelayMapEquivalence(t *testing.T) {
	src, _, nl := mapBench(t, "C432", DefaultOptions(ModeDelay))
	checkEquivalent(t, src, nl, 16, 8)
}

func TestAreaMapShrinksSubject(t *testing.T) {
	// Mapping with a rich library must use far fewer gates than the
	// inchoate NAND2/INV network.
	_, sub, nl := mapBench(t, "C880", DefaultOptions(ModeArea))
	if nl.Stat().Cells >= sub.NumLogic() {
		t.Errorf("mapped cells %d not below subject nodes %d", nl.Stat().Cells, sub.NumLogic())
	}
	if float64(nl.Stat().Cells) > 0.8*float64(sub.NumLogic()) {
		t.Errorf("mapping barely merged anything: %d of %d", nl.Stat().Cells, sub.NumLogic())
	}
}

func TestAreaModeBeatsBaseCellsOnArea(t *testing.T) {
	// The area-mode cover must not exceed the trivial cover that maps
	// every subject node to its base cell.
	_, sub, nl := mapBench(t, "C432", DefaultOptions(ModeArea))
	lib := library.Big()
	trivial := 0.0
	for _, nd := range sub.Nodes {
		if nd == nil || nd.Kind != logic.KindLogic {
			continue
		}
		if len(nd.Fanins) == 2 {
			trivial += lib.Nand2.Area
		} else {
			trivial += lib.Inv.Area
		}
	}
	if nl.Stat().ActiveArea >= trivial {
		t.Errorf("area-mode active area %.0f >= trivial cover %.0f", nl.Stat().ActiveArea, trivial)
	}
}

func TestTreeModeWorks(t *testing.T) {
	opt := DefaultOptions(ModeArea)
	opt.TreeMode = true
	src, _, nl := mapBench(t, "misex1", opt)
	checkEquivalent(t, src, nl, 16, 9)
}

func TestTreeModeNeverDuplicates(t *testing.T) {
	// In tree mode each subject node appears in at most one gate's merged
	// interior, so the number of cells is at least #multi-fanout regions;
	// practically: cell count in tree mode >= cone mode (duplication-free
	// covering can't merge across fanout boundaries).
	opt := DefaultOptions(ModeArea)
	opt.TreeMode = true
	_, _, nlTree := mapBench(t, "C432", opt)
	_, _, nlCone := mapBench(t, "C432", DefaultOptions(ModeArea))
	if nlTree.Stat().Cells < nlCone.Stat().Cells {
		t.Errorf("tree mode used fewer cells (%d) than cone mode (%d)?",
			nlTree.Stat().Cells, nlCone.Stat().Cells)
	}
}

func TestDelayModeFasterOrEqual(t *testing.T) {
	// Compare mapped depth-ish proxy: delay mode should produce arrival
	// no worse than area mode under the same constant-load STA. We check
	// via the mapper's own objective by re-running timing later in the
	// flow package; here, a structural sanity: both produce valid netlists
	// and delay mode does not blow up area by more than 2x.
	_, _, nlA := mapBench(t, "C880", DefaultOptions(ModeArea))
	_, _, nlD := mapBench(t, "C880", DefaultOptions(ModeDelay))
	if nlD.Stat().ActiveArea > 2.2*nlA.Stat().ActiveArea {
		t.Errorf("delay-mode area %.0f too far above area-mode %.0f",
			nlD.Stat().ActiveArea, nlA.Stat().ActiveArea)
	}
}

func TestRejectsUnpremappedNetwork(t *testing.T) {
	src := bench.Random(5, 6, 3, 20, 4)
	if _, err := Map(src, library.Big(), DefaultOptions(ModeArea)); err == nil {
		t.Error("expected error mapping an unpremapped network")
	}
}

func TestTinyLibraryMapping(t *testing.T) {
	p, _ := bench.ProfileByName("misex1")
	src := bench.Generate(p)
	res, err := decomp.Premap(src)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := Map(res.Inchoate, library.Tiny(), DefaultOptions(ModeArea))
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, src, nl, 16, 10)
	// Tiny library means more gates than big library.
	nlBig, err := Map(res.Inchoate, library.Big(), DefaultOptions(ModeArea))
	if err != nil {
		t.Fatal(err)
	}
	if nl.Stat().Cells < nlBig.Stat().Cells {
		t.Errorf("tiny library used fewer cells (%d) than big (%d)",
			nl.Stat().Cells, nlBig.Stat().Cells)
	}
}

func TestMapDeterministic(t *testing.T) {
	_, _, a := mapBench(t, "misex1", DefaultOptions(ModeArea))
	_, _, b := mapBench(t, "misex1", DefaultOptions(ModeArea))
	if a.Stat().Cells != b.Stat().Cells || a.Stat().ActiveArea != b.Stat().ActiveArea {
		t.Error("mapping not deterministic")
	}
	for i := range a.Cells {
		if a.Cells[i].Name != b.Cells[i].Name || a.Cells[i].Gate.Name != b.Cells[i].Gate.Name {
			t.Fatalf("cell %d differs", i)
		}
	}
}
