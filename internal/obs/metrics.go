// Package obs is lily's stdlib-only observability substrate: a metrics
// registry (atomic counters, gauges, fixed-bucket histograms, and their
// single-label "vec" variants) with Prometheus text exposition, and
// phase-scoped trace spans carried through the pipeline via context.
//
// Two design rules govern the package:
//
//  1. Scrape-safety: every instrument is updated with atomics (or, for
//     vec label resolution, a short registry-level critical section), so
//     a /metrics scrape concurrent with a hundred mapping jobs sees each
//     counter monotonically non-decreasing and each histogram with
//     _count equal to its +Inf bucket by construction.
//  2. A guaranteed zero-allocation no-op path: when no tracer is
//     installed in the context, StartSpan returns the context unchanged
//     and a nil *Span, and every *Span and *FlowMetrics method is
//     nil-receiver-safe, so the instrumented mapping hot paths cost
//     nothing when observation is off (asserted by
//     BenchmarkDisabledTracer).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits
}

// Set stores v. Safe on a nil receiver (no-op).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by d. Safe on a nil receiver (no-op).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram of float64 observations.
// Buckets hold non-cumulative counts; exposition derives the cumulative
// form, and reports _count as the +Inf cumulative total so a concurrent
// scrape can never see _count disagree with the bucket sums.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, +Inf implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// DefBuckets is the default latency bucket ladder (seconds): 1ms .. 60s.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// metricKind discriminates exposition TYPE lines.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one metric family: a name, help, kind, and either a single
// unlabeled child or a label name with labeled children.
type family struct {
	name, help string
	kind       metricKind
	label      string // "" for unlabeled families

	mu       sync.Mutex
	children map[string]any // label value -> *Counter | *Gauge | *Histogram
	single   any            // unlabeled instrument (or gauge func)
	buckets  []float64      // histogram families
}

// child returns (creating on demand) the instrument for a label value.
func (f *family) child(labelValue string) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[labelValue]; ok {
		return c
	}
	var c any
	switch f.kind {
	case kindCounter:
		c = &Counter{}
	case kindGauge:
		c = &Gauge{}
	default:
		c = newHistogram(f.buckets)
	}
	f.children[labelValue] = c
	return c
}

// CounterVec is a counter family with one label dimension.
type CounterVec struct{ f *family }

// With returns the counter for a label value. Safe on nil (returns nil).
func (v *CounterVec) With(labelValue string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(labelValue).(*Counter)
}

// GaugeVec is a gauge family with one label dimension.
type GaugeVec struct{ f *family }

// With returns the gauge for a label value. Safe on nil (returns nil).
func (v *GaugeVec) With(labelValue string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.child(labelValue).(*Gauge)
}

// HistogramVec is a histogram family with one label dimension.
type HistogramVec struct{ f *family }

// With returns the histogram for a label value. Safe on nil (nil out).
func (v *HistogramVec) With(labelValue string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.child(labelValue).(*Histogram)
}

// Observe records a sample under a label value. Safe on nil (no-op).
func (v *HistogramVec) Observe(labelValue string, sample float64) {
	if v == nil {
		return
	}
	v.With(labelValue).Observe(sample)
}

// gaugeFunc samples a value at scrape time.
type gaugeFunc func() float64

// Registry holds metric families and renders them as Prometheus text
// exposition format v0.0.4. Registration is idempotent: asking for an
// existing name with the same shape returns the existing instrument,
// and a shape mismatch panics (a programming error, like the Prometheus
// client).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register returns the family for name, creating it with the given
// shape, or panics on a shape conflict.
func (r *Registry) register(name, help string, kind metricKind, label string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || f.label != label {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind, label: label,
		children: make(map[string]any), buckets: buckets,
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, "", nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single == nil {
		f.single = &Counter{}
	}
	return f.single.(*Counter)
}

// CounterVec registers (or fetches) a counter family with one label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, label, nil)}
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, "", nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single == nil {
		f.single = &Gauge{}
	}
	return f.single.(*Gauge)
}

// GaugeFunc registers a gauge sampled by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, "", nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.single = gaugeFunc(fn)
}

// GaugeVec registers (or fetches) a gauge family with one label.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, kindGauge, label, nil)}
}

// Histogram registers (or fetches) an unlabeled fixed-bucket histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, kindHistogram, "", buckets)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single == nil {
		f.single = newHistogram(buckets)
	}
	return f.single.(*Histogram)
}

// HistogramVec registers (or fetches) a histogram family with one label.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, kindHistogram, label, buckets)}
}

// WritePrometheus renders every family in registration order as
// Prometheus text exposition format v0.0.4.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// write renders one family.
func (f *family) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)

	f.mu.Lock()
	single := f.single
	labelValues := make([]string, 0, len(f.children))
	for lv := range f.children {
		labelValues = append(labelValues, lv)
	}
	children := make([]any, 0, len(labelValues))
	sort.Strings(labelValues)
	for _, lv := range labelValues {
		children = append(children, f.children[lv])
	}
	f.mu.Unlock()

	if single != nil {
		f.writeChild(b, "", single)
	}
	for i, lv := range labelValues {
		f.writeChild(b, lv, children[i])
	}
}

// writeChild renders one instrument; labelValue=="" means unlabeled.
func (f *family) writeChild(b *strings.Builder, labelValue string, inst any) {
	sel := ""
	pre := ""
	if f.label != "" && labelValue != "" {
		sel = fmt.Sprintf("{%s=%s}", f.label, strconv.Quote(labelValue))
		pre = fmt.Sprintf("%s=%s,", f.label, strconv.Quote(labelValue))
	}
	switch c := inst.(type) {
	case *Counter:
		fmt.Fprintf(b, "%s%s %d\n", f.name, sel, c.Value())
	case *Gauge:
		fmt.Fprintf(b, "%s%s %s\n", f.name, sel, formatFloat(c.Value()))
	case gaugeFunc:
		fmt.Fprintf(b, "%s%s %s\n", f.name, sel, formatFloat(c()))
	case *Histogram:
		// Snapshot the per-bucket counts once, then derive cumulative
		// counts and the total from that single snapshot so the series
		// is internally consistent even under concurrent Observes.
		counts := make([]uint64, len(c.counts))
		for i := range c.counts {
			counts[i] = c.counts[i].Load()
		}
		var cum uint64
		for i, bound := range c.bounds {
			cum += counts[i]
			fmt.Fprintf(b, "%s_bucket{%sle=%s} %d\n", f.name, pre, strconv.Quote(formatFloat(bound)), cum)
		}
		cum += counts[len(counts)-1]
		fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", f.name, pre, cum)
		fmt.Fprintf(b, "%s_sum%s %s\n", f.name, sel, formatFloat(c.Sum()))
		fmt.Fprintf(b, "%s_count%s %d\n", f.name, sel, cum)
	}
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
