package obs

import (
	"context"
	"sync"
	"time"
)

// Tracer records a tree of phase-scoped spans for one pipeline run. It
// is carried through the pipeline via context (WithTracer / StartSpan);
// snapshots (Tree) are safe concurrently with span starts and ends, so
// a live job's partial trace can be served while it is still mapping.
//
// The no-op path is allocation-free: a context without a tracer makes
// StartSpan return (ctx, nil), and all *Span methods accept a nil
// receiver. Hot loops may therefore be instrumented unconditionally.
type Tracer struct {
	// OnSpanEnd, when set before tracing starts, is invoked after each
	// span ends (engine wires this to the per-phase duration
	// histogram). It must be safe for concurrent calls.
	OnSpanEnd func(name string, d time.Duration)

	mu    sync.Mutex
	spans []*Span
	clock func() time.Time
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{clock: time.Now}
}

// Attr is one typed span attribute. Exactly one of the value fields is
// meaningful, per Kind; typed setters avoid interface boxing on the
// call sites so disabled tracing stays allocation-free.
type Attr struct {
	Key   string
	Kind  AttrKind
	Int   int64
	Float float64
	Str   string
}

// AttrKind discriminates Attr values.
type AttrKind int

const (
	// AttrInt marks an integer attribute.
	AttrInt AttrKind = iota
	// AttrFloat marks a float attribute.
	AttrFloat
	// AttrStr marks a string attribute.
	AttrStr
)

// value returns the attribute's dynamic value for JSON rendering.
func (a Attr) value() any {
	switch a.Kind {
	case AttrInt:
		return a.Int
	case AttrFloat:
		return a.Float
	default:
		return a.Str
	}
}

// Span is one timed phase of a traced run. A nil *Span is the disabled
// tracer's span: every method no-ops.
type Span struct {
	tr     *Tracer
	id     int
	parent int // -1 for roots

	name  string
	start time.Time
	end   time.Time // zero while running
	err   string
	attrs []Attr
}

type ctxKey struct{}

// ctxVal carries the tracer and the current span id for parenting.
type ctxVal struct {
	t    *Tracer
	span int
}

// WithTracer installs t as the context's tracer; subsequent StartSpan
// calls record into it. A nil t returns ctx unchanged (tracing stays
// disabled).
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{t: t, span: -1})
}

// TracerFrom returns the context's tracer, or nil when tracing is
// disabled.
func TracerFrom(ctx context.Context) *Tracer {
	v, ok := ctx.Value(ctxKey{}).(ctxVal)
	if !ok {
		return nil
	}
	return v.t
}

// StartSpan begins a named span under the context's current span. When
// the context has no tracer it returns (ctx, nil) without allocating,
// so instrumented code needs no enabled/disabled branches: the returned
// nil *Span accepts every method.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	v, ok := ctx.Value(ctxKey{}).(ctxVal)
	if !ok {
		return ctx, nil
	}
	s := v.t.startSpan(name, v.span)
	return context.WithValue(ctx, ctxKey{}, ctxVal{t: v.t, span: s.id}), s
}

// startSpan records a new span with the given parent (-1 for a root).
func (t *Tracer) startSpan(name string, parent int) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{tr: t, id: len(t.spans), parent: parent, name: name, start: t.clock()}
	t.spans = append(t.spans, s)
	return s
}

// StartRoot begins a root span directly on the tracer (the engine's
// per-job root). Returns a context carrying the tracer with the new
// span current, plus the span.
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := t.startSpan(name, -1)
	return context.WithValue(ctx, ctxKey{}, ctxVal{t: t, span: s.id}), s
}

// Enabled reports whether the span records anything: attribute values
// that are expensive to compute (HPWL sums, histograms) should be
// guarded with it so the disabled path pays nothing.
func (s *Span) Enabled() bool { return s != nil }

// End closes the span. Safe on a nil receiver; double End keeps the
// first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	var d time.Duration
	ended := false
	if s.end.IsZero() {
		s.end = s.tr.clock()
		d = s.end.Sub(s.start)
		ended = true
	}
	hook := s.tr.OnSpanEnd
	name := s.name
	s.tr.mu.Unlock()
	if ended && hook != nil {
		hook(name, d)
	}
}

// SetInt attaches an integer attribute. Safe on a nil receiver.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Kind: AttrInt, Int: v})
	s.tr.mu.Unlock()
}

// SetFloat attaches a float attribute. Safe on a nil receiver.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Kind: AttrFloat, Float: v})
	s.tr.mu.Unlock()
}

// SetStr attaches a string attribute. Safe on a nil receiver.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Kind: AttrStr, Str: v})
	s.tr.mu.Unlock()
}

// SetError marks the span failed with the error's message. Safe on a
// nil receiver and with a nil error (both no-op).
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.tr.mu.Lock()
	s.err = err.Error()
	s.tr.mu.Unlock()
}

// SpanNode is the JSON form of one span in the trace tree.
type SpanNode struct {
	Name string `json:"name"`
	// Start is nanoseconds since the trace's first span started.
	StartNS int64 `json:"start_ns"`
	// DurationNS is -1 while the span is still running.
	DurationNS int64          `json:"duration_ns"`
	Error      string         `json:"error,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*SpanNode    `json:"children,omitempty"`
}

// Tree snapshots the recorded spans as a forest of root spans, children
// ordered by start time. Safe concurrently with recording; running
// spans appear with DurationNS = -1.
func (t *Tracer) Tree() []*SpanNode {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) == 0 {
		return nil
	}
	epoch := t.spans[0].start
	nodes := make([]*SpanNode, len(t.spans))
	for i, s := range t.spans {
		n := &SpanNode{
			Name:       s.name,
			StartNS:    s.start.Sub(epoch).Nanoseconds(),
			DurationNS: -1,
			Error:      s.err,
		}
		if !s.end.IsZero() {
			n.DurationNS = s.end.Sub(s.start).Nanoseconds()
		}
		if len(s.attrs) > 0 {
			n.Attrs = make(map[string]any, len(s.attrs))
			for _, a := range s.attrs {
				n.Attrs[a.Key] = a.value()
			}
		}
		nodes[i] = n
	}
	var roots []*SpanNode
	for i, s := range t.spans {
		if s.parent >= 0 {
			p := nodes[s.parent]
			p.Children = append(p.Children, nodes[i])
		} else {
			roots = append(roots, nodes[i])
		}
	}
	return roots
}

// SpanCount returns the number of spans recorded so far (0 on nil).
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}
