package obs

import (
	"context"
	"testing"
	"time"
)

func TestTracerTree(t *testing.T) {
	tr := NewTracer()
	ctx := context.Background()

	ctx, root := tr.StartRoot(ctx, "job")
	root.SetStr("id", "job-000001")

	cctx, premap := StartSpan(ctx, "premap")
	premap.SetInt("subject_nodes", 42)
	_, inner := StartSpan(cctx, "placement")
	inner.SetFloat("hpwl_um", 12.5)
	inner.End()
	premap.End()

	_, cover := StartSpan(ctx, "cover")
	cover.SetError(context.Canceled)
	cover.End()
	root.End()

	roots := tr.Tree()
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	jb := roots[0]
	if jb.Name != "job" || jb.Attrs["id"] != "job-000001" {
		t.Fatalf("bad root: %+v", jb)
	}
	if jb.DurationNS < 0 {
		t.Fatal("ended root reported as running")
	}
	if len(jb.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(jb.Children))
	}
	pm, cv := jb.Children[0], jb.Children[1]
	if pm.Name != "premap" || pm.Attrs["subject_nodes"] != int64(42) {
		t.Fatalf("bad premap node: %+v", pm)
	}
	if len(pm.Children) != 1 || pm.Children[0].Name != "placement" {
		t.Fatalf("placement not nested under premap: %+v", pm.Children)
	}
	if pm.Children[0].Attrs["hpwl_um"] != 12.5 {
		t.Fatalf("bad placement attrs: %+v", pm.Children[0].Attrs)
	}
	if cv.Name != "cover" || cv.Error != context.Canceled.Error() {
		t.Fatalf("bad cover node: %+v", cv)
	}
	if tr.SpanCount() != 4 {
		t.Fatalf("SpanCount = %d, want 4", tr.SpanCount())
	}
}

func TestTreeWhileRunning(t *testing.T) {
	tr := NewTracer()
	ctx, _ := tr.StartRoot(context.Background(), "job")
	_, child := StartSpan(ctx, "premap")

	roots := tr.Tree()
	if len(roots) != 1 || roots[0].DurationNS != -1 {
		t.Fatalf("running root should have DurationNS -1: %+v", roots)
	}
	if len(roots[0].Children) != 1 || roots[0].Children[0].DurationNS != -1 {
		t.Fatalf("running child should have DurationNS -1: %+v", roots[0].Children)
	}
	child.End()
	roots = tr.Tree()
	if roots[0].Children[0].DurationNS < 0 {
		t.Fatal("ended child still reported as running")
	}
}

func TestOnSpanEndHook(t *testing.T) {
	tr := NewTracer()
	var names []string
	var durs []time.Duration
	tr.OnSpanEnd = func(name string, d time.Duration) {
		names = append(names, name)
		durs = append(durs, d)
	}
	ctx, root := tr.StartRoot(context.Background(), "job")
	_, s := StartSpan(ctx, "cover")
	s.End()
	s.End() // double End must not re-fire the hook
	root.End()
	if len(names) != 2 || names[0] != "cover" || names[1] != "job" {
		t.Fatalf("hook fired for %v, want [cover job]", names)
	}
	for i, d := range durs {
		if d < 0 {
			t.Fatalf("hook %d got negative duration %v", i, d)
		}
	}
}

func TestDisabledPathIsInert(t *testing.T) {
	ctx := context.Background()
	if TracerFrom(ctx) != nil {
		t.Fatal("bare context has a tracer")
	}
	sctx, s := StartSpan(ctx, "premap")
	if sctx != ctx {
		t.Fatal("disabled StartSpan rewrapped the context")
	}
	if s.Enabled() {
		t.Fatal("nil span claims to be enabled")
	}
	// All methods must be nil-receiver-safe.
	s.SetInt("k", 1)
	s.SetFloat("k", 1)
	s.SetStr("k", "v")
	s.SetError(context.Canceled)
	s.End()
	var tr *Tracer
	if tr.Tree() != nil || tr.SpanCount() != 0 {
		t.Fatal("nil tracer not inert")
	}
	if WithTracer(ctx, nil) != ctx {
		t.Fatal("WithTracer(nil) rewrapped the context")
	}
}

// TestDisabledTracingAllocates asserts the disabled hot path performs
// zero allocations: StartSpan, attribute setters, End, and flow-metric
// lookup on a context without a tracer.
func TestDisabledTracingAllocates(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c2, s := StartSpan(ctx, "cover")
		s.SetInt("cones", 7)
		s.SetFloat("hpwl_um", 1.5)
		s.End()
		fm := FlowMetricsFrom(c2)
		fm.ConesMapped.Inc()
		_ = c2
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkDisabledTracer is the satellite-required benchmark: the
// instrumented call pattern on an untraced context, asserted 0 allocs/op
// via ReportAllocs (CI runs it with -benchtime=1x).
func BenchmarkDisabledTracer(b *testing.B) {
	ctx := context.Background()
	fm := FlowMetricsFrom(ctx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c2, s := StartSpan(ctx, "cover")
		s.SetInt("cones", int64(i))
		s.End()
		fm.WireEvals.Add(3)
		_ = c2
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	tr := NewTracer()
	ctx, _ := tr.StartRoot(context.Background(), "job")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, s := StartSpan(ctx, "cover")
		s.SetInt("cones", int64(i))
		s.End()
	}
}
