package obs

import (
	"bufio"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// parseExposition is a strict-enough parser for Prometheus text
// exposition v0.0.4: it validates the # HELP / # TYPE structure and
// returns every sample line as name{selector} -> value.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("malformed TYPE line %q", line)
			}
			switch kind {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown metric type %q in %q", kind, line)
			}
			if _, dup := typed[name]; dup {
				t.Fatalf("family %s TYPEd twice", name)
			}
			typed[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line %q", line)
		}
		// Sample line: name[{labels}] value
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		key, valStr := line[:i], line[i+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		base := key
		if j := strings.IndexByte(base, '{'); j >= 0 {
			if !strings.HasSuffix(base, "}") {
				t.Fatalf("malformed selector in %q", line)
			}
			base = base[:j]
		}
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(base,
			"_bucket"), "_sum"), "_count")
		if _, ok := typed[family]; !ok {
			if _, ok := typed[base]; !ok {
				t.Fatalf("sample %q has no preceding TYPE line", line)
			}
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("duplicate sample %q", key)
		}
		samples[key] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

func scrape(t *testing.T, r *Registry) map[string]float64 {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return parseExposition(t, b.String())
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations.")
	c.Add(7)
	g := r.Gauge("test_depth", "Depth.")
	g.Set(2.5)
	r.GaugeFunc("test_live", "Live sampled.", func() float64 { return 42 })
	cv := r.CounterVec("test_by_kind_total", "By kind.", "kind")
	cv.With("a").Inc()
	cv.With("b").Add(3)
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	s := scrape(t, r)
	want := map[string]float64{
		"test_ops_total":                         7,
		"test_depth":                             2.5,
		"test_live":                              42,
		`test_by_kind_total{kind="a"}`:           1,
		`test_by_kind_total{kind="b"}`:           3,
		`test_latency_seconds_bucket{le="0.1"}`:  1,
		`test_latency_seconds_bucket{le="1"}`:    2,
		`test_latency_seconds_bucket{le="+Inf"}`: 3,
		"test_latency_seconds_count":             3,
		"test_latency_seconds_sum":               5.55,
	}
	for k, v := range want {
		got, ok := s[k]
		if !ok {
			t.Errorf("missing sample %s", k)
			continue
		}
		if math.Abs(got-v) > 1e-9 {
			t.Errorf("%s = %v, want %v", k, got, v)
		}
	}
}

func TestRegistryIdempotentAndConflict(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "x")
	b := r.Counter("dup_total", "x")
	if a != b {
		t.Fatal("re-registering the same counter returned a different instrument")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("shape conflict did not panic")
		}
	}()
	r.Gauge("dup_total", "now a gauge")
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(1)
	g.Add(1)
	var h *Histogram
	h.Observe(1)
	var cv *CounterVec
	cv.With("x").Inc()
	var hv *HistogramVec
	hv.Observe("x", 1)
	var fm *FlowMetrics
	fm.ObservePhase("cover", 0)
}

// TestScrapeConsistencyUnderConcurrency hammers one histogram and one
// counter from many goroutines while scraping repeatedly, asserting
// that every scrape parses, counters are monotone, and each histogram's
// _count equals its +Inf bucket.
func TestScrapeConsistencyUnderConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "c")
	h := r.Histogram("cc_seconds", "h", DefBuckets)
	cv := r.CounterVec("cc_by_state_total", "v", "state")

	const writers, perWriter = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				h.Observe(float64(seed*i%100) / 50.0)
				cv.With([...]string{"done", "failed"}[i%2]).Inc()
			}
		}(w + 1)
	}

	var lastCount, lastTotal float64
	for i := 0; i < 50; i++ {
		s := scrape(t, r)
		inf := s[`cc_seconds_bucket{le="+Inf"}`]
		if cnt := s["cc_seconds_count"]; cnt != inf {
			t.Fatalf("scrape %d: _count %v != +Inf bucket %v", i, cnt, inf)
		}
		if cnt := s["cc_seconds_count"]; cnt < lastCount {
			t.Fatalf("scrape %d: histogram count went backwards (%v < %v)", i, cnt, lastCount)
		} else {
			lastCount = cnt
		}
		if tot := s["cc_total"]; tot < lastTotal {
			t.Fatalf("scrape %d: counter went backwards (%v < %v)", i, tot, lastTotal)
		} else {
			lastTotal = tot
		}
	}
	wg.Wait()

	s := scrape(t, r)
	if got := s["cc_total"]; got != writers*perWriter {
		t.Fatalf("final counter = %v, want %d", got, writers*perWriter)
	}
	if got := s["cc_seconds_count"]; got != writers*perWriter {
		t.Fatalf("final histogram count = %v, want %d", got, writers*perWriter)
	}
	if got := s[`cc_by_state_total{state="done"}`] + s[`cc_by_state_total{state="failed"}`]; got != writers*perWriter {
		t.Fatalf("final vec total = %v, want %d", got, writers*perWriter)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		0.25:         "0.25",
		1:            "1",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestFlowMetricsContext(t *testing.T) {
	r := NewRegistry()
	fm := RegisterFlowMetrics(r)
	fm.ObservePhase("cover", 1)
	fm.ObservePhase("not-a-phase", 1) // must not create a label
	s := scrape(t, r)
	if got := s[fmt.Sprintf("%s_count{phase=%q}", MetricPhaseDuration, "cover")]; got != 1 {
		t.Fatalf("cover phase count = %v, want 1", got)
	}
	if _, ok := s[fmt.Sprintf("%s_count{phase=%q}", MetricPhaseDuration, "not-a-phase")]; ok {
		t.Fatal("non-phase span leaked into the phase histogram")
	}
}
