package obs

import (
	"context"
	"time"
)

// Flow-level metric names (exported so tests and dashboards reference
// one source of truth).
const (
	MetricJobDuration   = "lily_job_duration_seconds"
	MetricPhaseDuration = "lily_phase_duration_seconds"
	MetricConesMapped   = "lily_cones_mapped_total"
	MetricWireEvals     = "lily_wire_cost_evaluations_total"
	MetricCGIterations  = "lily_place_cg_iterations_total"
	MetricReplacements  = "lily_place_replacements_total"
)

// PhaseNames lists the span names that count as pipeline phases: the
// engine folds exactly these spans into the lily_phase_duration_seconds
// histogram, keeping the label cardinality fixed.
var PhaseNames = []string{
	"preopt", "premap", "placement", "cover", "fanout",
	"verify", "layout", "timing",
}

// FlowMetrics bundles the instruments the flow itself updates while
// mapping: cone/wire-evaluation counters and placement solver effort.
// It travels via context (ContextWithFlowMetrics) so internal packages
// need no registry plumbing; FlowMetricsFrom on a bare context returns
// a shared unregistered sink, so call sites never branch on nil.
type FlowMetrics struct {
	// PhaseDuration observes per-phase wall time, labeled by phase.
	PhaseDuration *HistogramVec
	// ConesMapped counts committed cones across all jobs.
	ConesMapped *Counter
	// WireEvals counts wire-cost evaluations (one per candidate match
	// considered by the DP).
	WireEvals *Counter
	// CGIterations counts conjugate-gradient solver iterations.
	CGIterations *Counter
	// Replacements counts §3.2 periodic global re-placements.
	Replacements *Counter
}

// RegisterFlowMetrics registers the flow instruments on r (idempotent)
// and returns the bundle.
func RegisterFlowMetrics(r *Registry) *FlowMetrics {
	return &FlowMetrics{
		PhaseDuration: r.HistogramVec(MetricPhaseDuration,
			"Wall time per pipeline phase.", "phase", DefBuckets),
		ConesMapped: r.Counter(MetricConesMapped,
			"Logic cones committed by the Lily mapper."),
		WireEvals: r.Counter(MetricWireEvals,
			"Wire-cost evaluations performed by the mapper DP."),
		CGIterations: r.Counter(MetricCGIterations,
			"Conjugate-gradient iterations spent in global placement."),
		Replacements: r.Counter(MetricReplacements,
			"Periodic global re-placements of the partially mapped network."),
	}
}

// noopFlow is the shared sink returned when a context carries no
// metrics: its counters are real (atomic) but unregistered, so the
// instrumented hot paths stay branch-free and allocation-free.
var noopFlow = &FlowMetrics{
	ConesMapped:  &Counter{},
	WireEvals:    &Counter{},
	CGIterations: &Counter{},
	Replacements: &Counter{},
}

type flowKey struct{}

// ContextWithFlowMetrics attaches fm for the pipeline to find. A nil fm
// returns ctx unchanged.
func ContextWithFlowMetrics(ctx context.Context, fm *FlowMetrics) context.Context {
	if fm == nil {
		return ctx
	}
	return context.WithValue(ctx, flowKey{}, fm)
}

// FlowMetricsFrom returns the context's flow metrics, or the shared
// unregistered sink when none is installed. Never nil.
func FlowMetricsFrom(ctx context.Context) *FlowMetrics {
	if fm, ok := ctx.Value(flowKey{}).(*FlowMetrics); ok {
		return fm
	}
	return noopFlow
}

// ObservePhase folds a span end into the per-phase histogram when the
// name is one of PhaseNames. Safe on a nil receiver.
func (fm *FlowMetrics) ObservePhase(name string, d time.Duration) {
	if fm == nil || fm.PhaseDuration == nil {
		return
	}
	for _, p := range PhaseNames {
		if p == name {
			fm.PhaseDuration.Observe(name, d.Seconds())
			return
		}
	}
}
