// Package bdd is a reduced ordered binary decision diagram engine used for
// formal equivalence checking between the source Boolean network and the
// mapped netlist. It is deliberately small: a unique table for canonicity,
// an ITE operation cache, and a node budget that turns exponential blowup
// into a clean "unknown" answer the caller can fall back from (package
// equiv then resorts to randomized simulation).
package bdd

import (
	"errors"
	"fmt"
	"math"
)

// Ref is a node reference. The constants False and True are always valid.
type Ref int32

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

// ErrNodeLimit is returned when a build exceeds the manager's node budget.
var ErrNodeLimit = errors.New("bdd: node limit exceeded")

type node struct {
	level  int32 // variable index; terminals live at level numVars
	lo, hi Ref
}

// Manager owns the node store for one variable ordering.
type Manager struct {
	numVars  int
	maxNodes int
	nodes    []node
	unique   map[[3]int32]Ref
	iteCache map[[3]Ref]Ref
}

// New creates a manager over numVars variables with the given node budget
// (0 means one million nodes).
func New(numVars, maxNodes int) *Manager {
	if maxNodes <= 0 {
		maxNodes = 1_000_000
	}
	m := &Manager{
		numVars:  numVars,
		maxNodes: maxNodes,
		unique:   make(map[[3]int32]Ref),
		iteCache: make(map[[3]Ref]Ref),
	}
	term := int32(numVars)
	m.nodes = append(m.nodes, node{level: term}, node{level: term})
	return m
}

// NumNodes returns the number of live nodes including terminals.
func (m *Manager) NumNodes() int { return len(m.nodes) }

// Var returns the BDD of variable i.
func (m *Manager) Var(i int) (Ref, error) {
	if i < 0 || i >= m.numVars {
		return False, fmt.Errorf("bdd: variable %d out of range [0,%d)", i, m.numVars)
	}
	return m.mk(int32(i), False, True)
}

func (m *Manager) level(r Ref) int32 { return m.nodes[r].level }

func (m *Manager) mk(level int32, lo, hi Ref) (Ref, error) {
	if lo == hi {
		return lo, nil
	}
	key := [3]int32{level, int32(lo), int32(hi)}
	if r, ok := m.unique[key]; ok {
		return r, nil
	}
	if len(m.nodes) >= m.maxNodes {
		return False, ErrNodeLimit
	}
	m.nodes = append(m.nodes, node{level: level, lo: lo, hi: hi})
	r := Ref(len(m.nodes) - 1)
	m.unique[key] = r
	return r, nil
}

// ITE computes if-then-else(f, g, h), the universal BDD operation.
func (m *Manager) ITE(f, g, h Ref) (Ref, error) {
	switch {
	case f == True:
		return g, nil
	case f == False:
		return h, nil
	case g == h:
		return g, nil
	case g == True && h == False:
		return f, nil
	}
	key := [3]Ref{f, g, h}
	if r, ok := m.iteCache[key]; ok {
		return r, nil
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	lo, err := m.ITE(f0, g0, h0)
	if err != nil {
		return False, err
	}
	hi, err := m.ITE(f1, g1, h1)
	if err != nil {
		return False, err
	}
	r, err := m.mk(top, lo, hi)
	if err != nil {
		return False, err
	}
	m.iteCache[key] = r
	return r, nil
}

func (m *Manager) cofactors(r Ref, level int32) (lo, hi Ref) {
	n := m.nodes[r]
	if n.level != level {
		return r, r
	}
	return n.lo, n.hi
}

// Not returns the complement.
func (m *Manager) Not(a Ref) (Ref, error) { return m.ITE(a, False, True) }

// And returns the conjunction.
func (m *Manager) And(a, b Ref) (Ref, error) { return m.ITE(a, b, False) }

// Or returns the disjunction.
func (m *Manager) Or(a, b Ref) (Ref, error) { return m.ITE(a, True, b) }

// Xor returns the exclusive or.
func (m *Manager) Xor(a, b Ref) (Ref, error) {
	nb, err := m.Not(b)
	if err != nil {
		return False, err
	}
	return m.ITE(a, nb, b)
}

// Eval evaluates the function under a full variable assignment.
func (m *Manager) Eval(r Ref, assign []bool) bool {
	for r != True && r != False {
		n := m.nodes[r]
		if assign[n.level] {
			r = n.hi
		} else {
			r = n.lo
		}
	}
	return r == True
}

// SatCount returns the number of satisfying assignments over all
// variables (as float64; exact for < 2^53).
func (m *Manager) SatCount(r Ref) float64 {
	memo := make(map[Ref]float64)
	var count func(r Ref) float64 // assignments below r's level
	count = func(r Ref) float64 {
		if r == False {
			return 0
		}
		if r == True {
			return 1
		}
		if v, ok := memo[r]; ok {
			return v
		}
		n := m.nodes[r]
		lo := count(n.lo) * math.Pow(2, float64(m.level(n.lo)-n.level-1))
		hi := count(n.hi) * math.Pow(2, float64(m.level(n.hi)-n.level-1))
		v := lo + hi
		memo[r] = v
		return v
	}
	return count(r) * math.Pow(2, float64(m.level(r)))
}

// AnySatisfying returns one satisfying assignment, or nil for False.
func (m *Manager) AnySatisfying(r Ref) []bool {
	if r == False {
		return nil
	}
	assign := make([]bool, m.numVars)
	for r != True {
		n := m.nodes[r]
		if n.hi != False {
			assign[n.level] = true
			r = n.hi
		} else {
			r = n.lo
		}
	}
	return assign
}
