package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustVar(t *testing.T, m *Manager, i int) Ref {
	t.Helper()
	r, err := m.Var(i)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBasicOps(t *testing.T) {
	m := New(3, 0)
	a, b, c := mustVar(t, m, 0), mustVar(t, m, 1), mustVar(t, m, 2)
	and, err := m.And(a, b)
	if err != nil {
		t.Fatal(err)
	}
	or, err := m.Or(and, c)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		assign := []bool{r&1 != 0, r&2 != 0, r&4 != 0}
		want := assign[0] && assign[1] || assign[2]
		if m.Eval(or, assign) != want {
			t.Errorf("eval(%v) wrong", assign)
		}
	}
}

func TestCanonicity(t *testing.T) {
	// Structurally different constructions of the same function must hit
	// the same node: a XOR b built two ways.
	m := New(2, 0)
	a, b := mustVar(t, m, 0), mustVar(t, m, 1)
	x1, err := m.Xor(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// (a AND !b) OR (!a AND b)
	na, _ := m.Not(a)
	nb, _ := m.Not(b)
	t1, _ := m.And(a, nb)
	t2, _ := m.And(na, b)
	x2, err := m.Or(t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	if x1 != x2 {
		t.Errorf("XOR refs differ: %d vs %d (canonicity broken)", x1, x2)
	}
}

func TestConstants(t *testing.T) {
	m := New(2, 0)
	a := mustVar(t, m, 0)
	na, _ := m.Not(a)
	zero, err := m.And(a, na)
	if err != nil {
		t.Fatal(err)
	}
	if zero != False {
		t.Error("a AND !a != False")
	}
	one, _ := m.Or(a, na)
	if one != True {
		t.Error("a OR !a != True")
	}
}

func TestSatCount(t *testing.T) {
	m := New(3, 0)
	a, b := mustVar(t, m, 0), mustVar(t, m, 1)
	and, _ := m.And(a, b)
	if got := m.SatCount(and); got != 2 { // c free: 2 assignments
		t.Errorf("satcount(a&b) = %v, want 2", got)
	}
	or, _ := m.Or(a, b)
	if got := m.SatCount(or); got != 6 {
		t.Errorf("satcount(a|b) = %v, want 6", got)
	}
	if got := m.SatCount(True); got != 8 {
		t.Errorf("satcount(true) = %v, want 8", got)
	}
	if got := m.SatCount(False); got != 0 {
		t.Errorf("satcount(false) = %v", got)
	}
}

func TestAnySatisfying(t *testing.T) {
	m := New(4, 0)
	a, _ := m.Var(0)
	d, _ := m.Var(3)
	nd, _ := m.Not(d)
	f, _ := m.And(a, nd)
	assign := m.AnySatisfying(f)
	if assign == nil || !m.Eval(f, assign) {
		t.Errorf("witness %v does not satisfy", assign)
	}
	if m.AnySatisfying(False) != nil {
		t.Error("False has a witness")
	}
}

func TestNodeLimit(t *testing.T) {
	// A tiny budget must fail cleanly on a function that needs more nodes.
	m := New(16, 24)
	acc := False
	var err error
	for i := 0; i < 16; i += 2 {
		a, verr := m.Var(i)
		if verr != nil {
			err = verr
			break
		}
		b, verr := m.Var(i + 1)
		if verr != nil {
			err = verr
			break
		}
		t1, verr := m.And(a, b)
		if verr != nil {
			err = verr
			break
		}
		acc, verr = m.Or(acc, t1)
		if verr != nil {
			err = verr
			break
		}
	}
	if err == nil {
		t.Error("node limit never hit")
	}
}

// Property: BDD evaluation agrees with direct formula evaluation on random
// AND/OR/NOT circuits.
func TestRandomFormulaAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nvars := 2 + rng.Intn(6)
		m := New(nvars, 0)
		type fn struct {
			ref  Ref
			eval func([]bool) bool
		}
		var pool []fn
		for i := 0; i < nvars; i++ {
			r, err := m.Var(i)
			if err != nil {
				return false
			}
			i := i
			pool = append(pool, fn{r, func(a []bool) bool { return a[i] }})
		}
		for step := 0; step < 12; step++ {
			x := pool[rng.Intn(len(pool))]
			y := pool[rng.Intn(len(pool))]
			var r Ref
			var err error
			var ev func([]bool) bool
			switch rng.Intn(3) {
			case 0:
				r, err = m.And(x.ref, y.ref)
				ev = func(a []bool) bool { return x.eval(a) && y.eval(a) }
			case 1:
				r, err = m.Or(x.ref, y.ref)
				ev = func(a []bool) bool { return x.eval(a) || y.eval(a) }
			default:
				r, err = m.Not(x.ref)
				ev = func(a []bool) bool { return !x.eval(a) }
			}
			if err != nil {
				return false
			}
			pool = append(pool, fn{r, ev})
		}
		top := pool[len(pool)-1]
		assign := make([]bool, nvars)
		for r := 0; r < 1<<nvars; r++ {
			for j := 0; j < nvars; j++ {
				assign[j] = r&(1<<j) != 0
			}
			if m.Eval(top.ref, assign) != top.eval(assign) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
