package library

import (
	"testing"

	"lily/internal/logic"
)

func TestBigLibraryGates(t *testing.T) {
	lib := Big()
	if lib.Inv == nil || lib.Nand2 == nil {
		t.Fatal("base cells missing")
	}
	if lib.MaxFanin != 6 {
		t.Errorf("big library max fanin = %d, want 6", lib.MaxFanin)
	}
	for _, g := range lib.Gates {
		if g.NumInputs < 1 || g.NumInputs > 6 {
			t.Errorf("%s: %d inputs", g.Name, g.NumInputs)
		}
		if len(g.Timing) != g.NumInputs {
			t.Errorf("%s: %d timing entries for %d inputs", g.Name, len(g.Timing), g.NumInputs)
		}
		if g.Area <= 0 || g.Width <= 0 || g.Height != lib.RowHeight {
			t.Errorf("%s: bad physicals %v %v %v", g.Name, g.Area, g.Width, g.Height)
		}
		if len(g.Patterns) == 0 && g != lib.Buf {
			t.Errorf("%s: no patterns", g.Name)
		}
		if g == lib.Buf && len(g.Patterns) != 0 {
			t.Error("buffer must not participate in matching")
		}
		if g.InputCap <= 0 {
			t.Errorf("%s: no input cap", g.Name)
		}
		for _, pt := range g.Timing {
			if pt.IntrinsicRise <= 0 || pt.IntrinsicFall <= 0 || pt.ResistRise <= 0 || pt.ResistFall <= 0 {
				t.Errorf("%s: nonpositive timing %+v", g.Name, pt)
			}
			if pt.IntrinsicRise <= pt.IntrinsicFall {
				continue // rise must be >= fall per our CMOS skew convention
			}
		}
	}
}

func TestTinyLibraryFaninLimit(t *testing.T) {
	lib := Tiny()
	if lib.MaxFanin > 3 {
		t.Errorf("tiny library has %d-input gates", lib.MaxFanin)
	}
	if lib.GateByName("nand4") != nil {
		t.Error("tiny library must not have nand4")
	}
	if lib.GateByName("nand3") == nil {
		t.Error("tiny library missing nand3")
	}
}

func TestGateCoversFunctional(t *testing.T) {
	lib := Big()
	check := func(name string, fn func(in []bool) bool) {
		g := lib.GateByName(name)
		if g == nil {
			t.Fatalf("gate %s missing", name)
		}
		in := make([]bool, g.NumInputs)
		for r := 0; r < 1<<g.NumInputs; r++ {
			for j := range in {
				in[j] = r&(1<<j) != 0
			}
			if g.Cover.Eval(in) != fn(in) {
				t.Errorf("%s wrong at %v", name, in)
				return
			}
		}
	}
	check("inv", func(in []bool) bool { return !in[0] })
	check("nand3", func(in []bool) bool { return !(in[0] && in[1] && in[2]) })
	check("nor4", func(in []bool) bool { return !(in[0] || in[1] || in[2] || in[3]) })
	check("aoi22", func(in []bool) bool { return !(in[0] && in[1] || in[2] && in[3]) })
	check("oai21", func(in []bool) bool { return !((in[0] || in[1]) && in[2]) })
	check("xor2", func(in []bool) bool { return in[0] != in[1] })
	check("and4", func(in []bool) bool { return in[0] && in[1] && in[2] && in[3] })
}

// Every pattern of every gate must compute the gate function — this is
// enforced by a panic in generatePatterns, but exercise it explicitly.
func TestAllPatternsImplementGate(t *testing.T) {
	for _, lib := range []*Library{Tiny(), Big()} {
		for _, g := range lib.Gates {
			for _, p := range g.Patterns {
				if !patternMatchesCover(g, p.Root) {
					t.Errorf("%s/%s pattern %s wrong", lib.Name, g.Name, p)
				}
				if p.Size != patternSize(p.Root) {
					t.Errorf("%s pattern size mismatch", g.Name)
				}
			}
		}
	}
}

func TestPatternsDeduplicated(t *testing.T) {
	lib := Big()
	for _, g := range lib.Gates {
		seen := map[string]bool{}
		for _, p := range g.Patterns {
			k := p.String()
			if seen[k] {
				t.Errorf("%s: duplicate pattern %s", g.Name, k)
			}
			seen[k] = true
		}
	}
}

func TestMultipleShapesForWideGates(t *testing.T) {
	lib := Big()
	for _, name := range []string{"nand4", "nor4", "and4", "nand6"} {
		g := lib.GateByName(name)
		if len(g.Patterns) < 2 {
			t.Errorf("%s: only %d pattern(s); wide gates need shape variants", name, len(g.Patterns))
		}
	}
	// The inverter has exactly one pattern: INV(leaf).
	inv := lib.GateByName("inv")
	if len(inv.Patterns) != 1 || inv.Patterns[0].Size != 1 {
		t.Errorf("inv patterns wrong: %v", DumpPatterns(inv))
	}
	// nand2 lowers to a single bare NAND node.
	n2 := lib.GateByName("nand2")
	if len(n2.Patterns) != 1 || n2.Patterns[0].Size != 1 {
		t.Errorf("nand2 patterns wrong: %v", DumpPatterns(n2))
	}
}

func TestExprHelpers(t *testing.T) {
	e := not{or{and{in(0), in(1)}, in(2)}} // aoi21
	if numPins(e) != 3 {
		t.Errorf("numPins = %d", numPins(e))
	}
	if exprDepth(e) != 2 {
		t.Errorf("exprDepth = %d", exprDepth(e))
	}
	s := exprToSOP(e, 3)
	want := logic.AoiSOP([]int{2, 1})
	if !logic.EqualFunc(s, want) {
		t.Error("exprToSOP(aoi21) wrong")
	}
}

func TestLibraryDeterministic(t *testing.T) {
	a, b := Big(), Big()
	if len(a.Gates) != len(b.Gates) {
		t.Fatal("gate counts differ")
	}
	for i := range a.Gates {
		if a.Gates[i].Name != b.Gates[i].Name ||
			len(a.Gates[i].Patterns) != len(b.Gates[i].Patterns) {
			t.Fatalf("gate %d differs between builds", i)
		}
		for j := range a.Gates[i].Patterns {
			if a.Gates[i].Patterns[j].String() != b.Gates[i].Patterns[j].String() {
				t.Fatalf("%s pattern %d differs", a.Gates[i].Name, j)
			}
		}
	}
}

func TestWireConstantsPresent(t *testing.T) {
	lib := Big()
	if lib.WireCapH <= 0 || lib.WireCapV <= 0 || lib.WirePitch <= 0 {
		t.Errorf("wire constants missing: %+v", lib)
	}
	if lib.WireCapV <= lib.WireCapH*0.5 || lib.WireCapV >= lib.WireCapH*3 {
		t.Errorf("wire cap anisotropy implausible: h=%v v=%v", lib.WireCapH, lib.WireCapV)
	}
}

func TestDriveStrengthOrdersResistance(t *testing.T) {
	lib := Big()
	inv := lib.GateByName("inv")
	n6 := lib.GateByName("nand6")
	if inv.Timing[0].ResistFall >= n6.Timing[0].ResistFall {
		t.Error("weak wide gate should have higher output resistance than inv")
	}
}
