// Package library models the target standard-cell library: gate areas and
// physical dimensions, per-input linear delay parameters (intrinsic delay
// and output resistance, rise and fall), input pin capacitances, and the
// NAND2/INV pattern graphs used for structural matching.
//
// The paper evaluated against the 3µ MSU standard cell library scaled to
// 1µ; since that library is not redistributable, this package generates a
// synthetic CMOS library with the same parameter structure (§4.1, §4.3:
// constant 0.25 pF-class input capacitance, per-input I_i and R_i split
// into rise/fall). Two variants reproduce the paper's §5 discussion: a
// "tiny" library with gates up to 3 inputs and a "big" library with gates
// up to 6 inputs.
package library

import (
	"fmt"

	"lily/internal/logic"
)

// PinTiming holds the linear delay model parameters for one gate input
// (paper §4.1): the intrinsic delay I_i and output resistance R_i, each
// with separate rising and falling values. Delay from input i to the
// output is I_i + R_i * C_L.
type PinTiming struct {
	IntrinsicRise float64 // ns
	IntrinsicFall float64 // ns
	ResistRise    float64 // ns per pF
	ResistFall    float64 // ns per pF
}

// Gate is one library cell.
type Gate struct {
	Name      string
	NumInputs int
	// Area is the active cell area in µm²; Width and Height are the cell's
	// physical dimensions for row-based layout (Height is uniform across
	// the library).
	Area   float64
	Width  float64
	Height float64
	// InputCap is the parasitic capacitance of each input pin in pF. The
	// paper (and MIS 2.1) assume a constant load per pin; 0.25 pF for the
	// 3µ MSU library.
	InputCap float64
	// Timing holds per-input delay parameters.
	Timing []PinTiming
	// Cover is the gate function over its inputs (positional).
	Cover logic.SOP
	// Unate records the unateness of the function in each input, used by
	// the timing analyzer to route rising/falling arrivals through the
	// gate correctly.
	Unate []Unateness
	// Patterns are the structural NAND2/INV decompositions of the gate.
	Patterns []*Pattern
}

// Unateness describes how a gate output depends on one input.
type Unateness byte

const (
	// UnatePos: the output is non-decreasing in the input (AND, OR).
	UnatePos Unateness = iota
	// UnateNeg: the output is non-increasing in the input (NAND, NOR, INV).
	UnateNeg
	// Binate: the output can move either way (XOR).
	Binate
)

func (u Unateness) String() string {
	switch u {
	case UnatePos:
		return "pos"
	case UnateNeg:
		return "neg"
	default:
		return "binate"
	}
}

// computeUnateness classifies each input of a cover.
func computeUnateness(cover logic.SOP) []Unateness {
	n := cover.NumInputs
	out := make([]Unateness, n)
	vals := make([]bool, n)
	for i := 0; i < n; i++ {
		canRise, canFall := false, false // output transition when input i rises
		for r := 0; r < 1<<n; r++ {
			if r&(1<<i) != 0 {
				continue // enumerate with x_i = 0
			}
			for j := 0; j < n; j++ {
				vals[j] = r&(1<<j) != 0
			}
			f0 := cover.Eval(vals)
			vals[i] = true
			f1 := cover.Eval(vals)
			vals[i] = false
			if !f0 && f1 {
				canRise = true
			}
			if f0 && !f1 {
				canFall = true
			}
		}
		switch {
		case canRise && canFall:
			out[i] = Binate
		case canFall:
			out[i] = UnateNeg
		default:
			out[i] = UnatePos
		}
	}
	return out
}

func (g *Gate) String() string {
	return fmt.Sprintf("%s(%d-in, %.0fµm²)", g.Name, g.NumInputs, g.Area)
}

// Library is a set of gates plus the technology constants the wiring model
// needs.
type Library struct {
	Name  string
	Gates []*Gate
	// Inv and Nand2 are the base-function cells used to cost the inchoate
	// network and to seed placement.
	Inv   *Gate
	Nand2 *Gate
	// Buf is a non-inverting driver used only by the fanout-optimization
	// pass (paper §5 future work: "perform a postprocessing pass to
	// derive fanout trees"). It carries no pattern graphs, so the
	// matchers never select it.
	Buf *Gate
	// WireCapH and WireCapV are horizontal/vertical interconnect
	// capacitance per unit length (pF/µm), used for C_w = c_h·X + c_v·Y
	// (paper §4.2).
	WireCapH float64
	WireCapV float64
	// WirePitch is the routing pitch in µm (one track per pitch); the
	// channel-density area model uses it.
	WirePitch float64
	// RowHeight is the uniform standard-cell height in µm.
	RowHeight float64
	// MaxFanin is the largest gate input count in the library.
	MaxFanin int
}

// GateByName returns the named gate, or nil.
func (l *Library) GateByName(name string) *Gate {
	for _, g := range l.Gates {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// gateSpec is the internal description a library is generated from.
type gateSpec struct {
	name  string
	width float64 // cell width in µm
	drive float64 // relative drive strength; scales output resistance down
	logic expr    // function over pins
}

// Technology constants for the synthetic 1µ library. Values follow the
// paper's setup: a 3µ-era cell library scaled to 1µ (delays, gate and wire
// capacitance scaled by 1/3).
const (
	rowHeightUm  = 60.0
	wirePitchUm  = 4.0
	inputCapPF   = 0.083 // 0.25 pF (3µ MSU) scaled to 1µ
	wireCapHPerU = 0.00015
	wireCapVPerU = 0.00018
	baseIntr     = 0.40 // ns, base intrinsic delay of a minimal stage
	baseResist   = 3.6  // ns/pF, base output resistance of a 1x driver
)

// Big returns the ≤6-input library used for the paper's main tables.
func Big() *Library { return build("big", bigSpecs(), 8) }

// Tiny returns the ≤3-input library used in the §5 tiny-vs-big discussion.
func Tiny() *Library { return build("tiny", tinySpecs(), 8) }

func tinySpecs() []gateSpec {
	return []gateSpec{
		{"inv", 16, 1.0, not{in(0)}},
		{"nand2", 24, 1.0, not{and{in(0), in(1)}}},
		{"nand3", 32, 0.9, not{and{in(0), in(1), in(2)}}},
		{"nor2", 24, 0.9, not{or{in(0), in(1)}}},
		{"nor3", 32, 0.8, not{or{in(0), in(1), in(2)}}},
		{"and2", 32, 1.0, and{in(0), in(1)}},
		{"or2", 32, 0.9, or{in(0), in(1)}},
		{"aoi21", 32, 0.9, not{or{and{in(0), in(1)}, in(2)}}},
		{"oai21", 32, 0.9, not{and{or{in(0), in(1)}, in(2)}}},
		{"xor2", 48, 0.8, or{and{in(0), not{in(1)}}, and{not{in(0)}, in(1)}}},
		{"xnor2", 48, 0.8, or{and{in(0), in(1)}, and{not{in(0)}, not{in(1)}}}},
	}
}

func bigSpecs() []gateSpec {
	specs := tinySpecs()
	specs = append(specs, []gateSpec{
		{"nand4", 40, 0.85, not{and{in(0), in(1), in(2), in(3)}}},
		{"nand5", 48, 0.8, not{and{in(0), in(1), in(2), in(3), in(4)}}},
		{"nand6", 56, 0.75, not{and{in(0), in(1), in(2), in(3), in(4), in(5)}}},
		{"nor4", 40, 0.75, not{or{in(0), in(1), in(2), in(3)}}},
		{"nor5", 48, 0.7, not{or{in(0), in(1), in(2), in(3), in(4)}}},
		{"nor6", 56, 0.65, not{or{in(0), in(1), in(2), in(3), in(4), in(5)}}},
		{"and3", 40, 0.95, and{in(0), in(1), in(2)}},
		{"and4", 48, 0.9, and{in(0), in(1), in(2), in(3)}},
		{"or3", 40, 0.85, or{in(0), in(1), in(2)}},
		{"or4", 48, 0.8, or{in(0), in(1), in(2), in(3)}},
		{"aoi22", 40, 0.85, not{or{and{in(0), in(1)}, and{in(2), in(3)}}}},
		{"aoi211", 40, 0.85, not{or{and{in(0), in(1)}, in(2), in(3)}}},
		{"aoi221", 48, 0.8, not{or{and{in(0), in(1)}, and{in(2), in(3)}, in(4)}}},
		{"aoi222", 56, 0.75, not{or{and{in(0), in(1)}, and{in(2), in(3)}, and{in(4), in(5)}}}},
		{"oai22", 40, 0.85, not{and{or{in(0), in(1)}, or{in(2), in(3)}}}},
		{"oai211", 40, 0.85, not{and{or{in(0), in(1)}, in(2), in(3)}}},
		{"oai221", 48, 0.8, not{and{or{in(0), in(1)}, or{in(2), in(3)}, in(4)}}},
		{"oai222", 56, 0.75, not{and{or{in(0), in(1)}, or{in(2), in(3)}, or{in(4), in(5)}}}},
	}...)
	return specs
}

func build(name string, specs []gateSpec, maxPatternsPerGate int) *Library {
	lib := &Library{
		Name:      name,
		WireCapH:  wireCapHPerU,
		WireCapV:  wireCapVPerU,
		WirePitch: wirePitchUm,
		RowHeight: rowHeightUm,
	}
	for _, sp := range specs {
		n := numPins(sp.logic)
		g := &Gate{
			Name:      sp.name,
			NumInputs: n,
			Width:     sp.width,
			Height:    rowHeightUm,
			Area:      sp.width * rowHeightUm,
			InputCap:  inputCapPF,
			Cover:     exprToSOP(sp.logic, n),
		}
		g.Unate = computeUnateness(g.Cover)
		// Delay parameters: deeper/wider gates are intrinsically slower;
		// stronger drive lowers output resistance. Rising transitions are
		// slightly slower than falling, as in CMOS cells (p-stack).
		depth := float64(exprDepth(sp.logic))
		for i := 0; i < n; i++ {
			// Later pins are closer to the output in the series stack, a
			// common standard-cell asymmetry.
			pinSkew := 1 + 0.05*float64(i)
			g.Timing = append(g.Timing, PinTiming{
				IntrinsicRise: baseIntr * (0.6 + 0.4*depth) * pinSkew * 1.1,
				IntrinsicFall: baseIntr * (0.6 + 0.4*depth) * pinSkew,
				ResistRise:    baseResist / sp.drive * 1.15,
				ResistFall:    baseResist / sp.drive,
			})
		}
		g.Patterns = generatePatterns(g, sp.logic, maxPatternsPerGate)
		lib.Gates = append(lib.Gates, g)
		if g.NumInputs > lib.MaxFanin {
			lib.MaxFanin = g.NumInputs
		}
	}
	lib.Inv = lib.GateByName("inv")
	lib.Nand2 = lib.GateByName("nand2")
	if lib.Inv == nil || lib.Nand2 == nil {
		panic("library: missing base cells")
	}
	lib.Buf = buildBuffer()
	lib.Gates = append(lib.Gates, lib.Buf)
	return lib
}

// LUT technology constants, following the same 1µ scaling as the cell
// specs above: a K-input lookup table is a fixed mux tree plus 2^K
// configuration bits, so its footprint has a constant part and a part
// proportional to the bit count, and its pin-to-output delay is
// function-independent (every input drives the same select network).
const (
	lutBaseWidthUm = 20.0 // select tree + output driver
	lutBitWidthUm  = 3.0  // per configuration bit
	lutDrive       = 0.9  // output driver strength relative to a 1x cell
)

// NewLUT constructs a lookup-table cell implementing the given cover
// inside a tileK-input LUT tile (cover.NumInputs <= tileK <= 6). The
// footprint and delay are those of the tile, not the function: an FPGA
// logic element is a fixed resource, so a 2-input function in a 6-LUT
// occupies a whole 6-LUT — which is what makes minimizing LUT count the
// area objective. LUT cells carry no pattern graphs (they are
// synthesized on demand by the cut enumerator in internal/cut, not
// matched structurally), and their delay model is pin-uniform: the
// select tree gives every input the same path to the output, with
// intrinsic delay growing in the tree depth tileK.
func NewLUT(name string, cover logic.SOP, tileK int) *Gate {
	k := cover.NumInputs
	if tileK < k {
		panic(fmt.Sprintf("library: %d-input cover does not fit a %d-LUT tile", k, tileK))
	}
	width := lutBaseWidthUm + lutBitWidthUm*float64(uint(1)<<tileK)
	g := &Gate{
		Name:      name,
		NumInputs: k,
		Width:     width,
		Height:    rowHeightUm,
		Area:      width * rowHeightUm,
		InputCap:  inputCapPF,
		Cover:     cover,
	}
	g.Unate = computeUnateness(g.Cover)
	for i := 0; i < k; i++ {
		g.Timing = append(g.Timing, PinTiming{
			IntrinsicRise: baseIntr * (0.6 + 0.3*float64(tileK)) * 1.1,
			IntrinsicFall: baseIntr * (0.6 + 0.3*float64(tileK)),
			ResistRise:    baseResist / lutDrive * 1.15,
			ResistFall:    baseResist / lutDrive,
		})
	}
	return g
}

// buildBuffer constructs the pattern-less buffer cell. A buffer's
// NAND2/INV pattern would be the empty INV pair, which premapping always
// cancels, so it is excluded from matching by construction.
func buildBuffer() *Gate {
	g := &Gate{
		Name:      "buf",
		NumInputs: 1,
		Width:     20,
		Height:    rowHeightUm,
		Area:      20 * rowHeightUm,
		InputCap:  inputCapPF,
		Cover:     logic.BufSOP(),
	}
	g.Unate = computeUnateness(g.Cover)
	g.Timing = []PinTiming{{
		IntrinsicRise: baseIntr * 1.4 * 1.1,
		IntrinsicFall: baseIntr * 1.4,
		ResistRise:    baseResist / 1.4 * 1.15,
		ResistFall:    baseResist / 1.4,
	}}
	return g
}
