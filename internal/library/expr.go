package library

import "lily/internal/logic"

// expr is the input DSL for gate functions: a tree of AND/OR/NOT over
// positional pins. It exists only inside this package; gates expose their
// function as a logic.SOP and their structure as Patterns.
type expr interface{ isExpr() }

// in is a pin reference.
type in int

// not negates a sub-expression.
type not struct{ e expr }

// and is an n-ary conjunction.
type and []expr

// or is an n-ary disjunction.
type or []expr

func (in) isExpr()  {}
func (not) isExpr() {}
func (and) isExpr() {}
func (or) isExpr()  {}

func numPins(e expr) int {
	max := -1
	var walk func(expr)
	walk = func(e expr) {
		switch t := e.(type) {
		case in:
			if int(t) > max {
				max = int(t)
			}
		case not:
			walk(t.e)
		case and:
			for _, c := range t {
				walk(c)
			}
		case or:
			for _, c := range t {
				walk(c)
			}
		}
	}
	walk(e)
	return max + 1
}

func exprDepth(e expr) int {
	switch t := e.(type) {
	case in:
		return 0
	case not:
		return exprDepth(t.e)
	case and:
		d := 0
		for _, c := range t {
			if cd := exprDepth(c); cd > d {
				d = cd
			}
		}
		return d + 1
	case or:
		d := 0
		for _, c := range t {
			if cd := exprDepth(c); cd > d {
				d = cd
			}
		}
		return d + 1
	}
	return 0
}

func evalExpr(e expr, inVals []bool) bool {
	switch t := e.(type) {
	case in:
		return inVals[t]
	case not:
		return !evalExpr(t.e, inVals)
	case and:
		for _, c := range t {
			if !evalExpr(c, inVals) {
				return false
			}
		}
		return true
	case or:
		for _, c := range t {
			if evalExpr(c, inVals) {
				return true
			}
		}
		return false
	}
	panic("library: unknown expr")
}

// exprToSOP enumerates the expression into a minterm cover over n pins.
func exprToSOP(e expr, n int) logic.SOP {
	s := logic.NewSOP(n)
	vals := make([]bool, n)
	for r := 0; r < 1<<n; r++ {
		for j := 0; j < n; j++ {
			vals[j] = r&(1<<j) != 0
		}
		if evalExpr(e, vals) {
			c := make(logic.Cube, n)
			for j := 0; j < n; j++ {
				if vals[j] {
					c[j] = logic.LitPos
				} else {
					c[j] = logic.LitNeg
				}
			}
			s.AddCube(c)
		}
	}
	return s
}
