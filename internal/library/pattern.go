package library

import (
	"fmt"
	"sort"
	"strings"
)

// Op is the node type of a pattern graph.
type Op byte

const (
	// OpLeaf binds to an arbitrary subject-graph signal (a gate input pin).
	OpLeaf Op = iota
	// OpInv matches an inverter node of the subject graph.
	OpInv
	// OpNand2 matches a 2-input NAND node of the subject graph.
	OpNand2
)

func (o Op) String() string {
	switch o {
	case OpLeaf:
		return "leaf"
	case OpInv:
		return "inv"
	default:
		return "nand2"
	}
}

// PatternNode is one vertex of a pattern graph (a tree of base functions
// representing a library gate, paper §2).
type PatternNode struct {
	Op Op
	// Kids holds the children: Kids[0] for OpInv, Kids[0] and Kids[1] for
	// OpNand2, none for OpLeaf.
	Kids [2]*PatternNode
	// Pin is the gate input index for OpLeaf nodes.
	Pin int
}

// Pattern is one structural decomposition of a library gate.
type Pattern struct {
	Root *PatternNode
	// Size is the number of internal (NAND2 + INV) nodes; matches of
	// larger Size merge more subject nodes.
	Size int
}

// String serializes the pattern canonically (commutative NAND children are
// sorted), so identical structures compare equal.
func (p *Pattern) String() string { return canonString(p.Root) }

func canonString(n *PatternNode) string {
	switch n.Op {
	case OpLeaf:
		return fmt.Sprintf("p%d", n.Pin)
	case OpInv:
		return "!(" + canonString(n.Kids[0]) + ")"
	default:
		a, b := canonString(n.Kids[0]), canonString(n.Kids[1])
		if b < a {
			a, b = b, a
		}
		return "nand(" + a + "," + b + ")"
	}
}

func patternSize(n *PatternNode) int {
	switch n.Op {
	case OpLeaf:
		return 0
	case OpInv:
		return 1 + patternSize(n.Kids[0])
	default:
		return 1 + patternSize(n.Kids[0]) + patternSize(n.Kids[1])
	}
}

// evalPattern computes the pattern function for verification.
func evalPattern(n *PatternNode, pins []bool) bool {
	switch n.Op {
	case OpLeaf:
		return pins[n.Pin]
	case OpInv:
		return !evalPattern(n.Kids[0], pins)
	default:
		return !(evalPattern(n.Kids[0], pins) && evalPattern(n.Kids[1], pins))
	}
}

// ptree is the intermediate form between the expr DSL and NAND2/INV
// patterns: a binary tree of AND2/OR2/NOT over leaves.
type ptree struct {
	op   byte // 'a' and2, 'o' or2, 'n' not, 'l' leaf
	l, r *ptree
	pin  int
}

// generatePatterns enumerates NAND2/INV pattern graphs for a gate: n-ary
// AND/OR groups are split with several binary-tree shapes (balanced, left-
// and right-leaning), each variant lowered to NAND2/INV with double-
// inverter cancellation, then deduplicated canonically. Multiple pattern
// shapes per gate are what let the matcher find a big gate across subject
// trees decomposed differently (DAGON keeps "many different pattern graphs"
// per gate, §2).
func generatePatterns(g *Gate, e expr, maxPatterns int) []*Pattern {
	variants := enumerate(e, maxPatterns)
	seen := make(map[string]bool)
	var out []*Pattern
	for _, v := range variants {
		root := lower(v)
		p := &Pattern{Root: root, Size: patternSize(root)}
		key := p.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		// Verify the lowered pattern computes the gate function.
		if !patternMatchesCover(g, root) {
			panic(fmt.Sprintf("library: pattern %s does not implement %s", key, g.Name))
		}
		out = append(out, p)
		if len(out) >= maxPatterns {
			break
		}
	}
	// Deterministic order: larger patterns first (prefer merging more
	// subject nodes when costs tie), then lexicographic.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Size != out[j].Size {
			return out[i].Size > out[j].Size
		}
		return out[i].String() < out[j].String()
	})
	return out
}

func patternMatchesCover(g *Gate, root *PatternNode) bool {
	n := g.NumInputs
	pins := make([]bool, n)
	for r := 0; r < 1<<n; r++ {
		for j := 0; j < n; j++ {
			pins[j] = r&(1<<j) != 0
		}
		if evalPattern(root, pins) != g.Cover.Eval(pins) {
			return false
		}
	}
	return true
}

// enumerate lists ptree variants of an expression, capped.
func enumerate(e expr, limit int) []*ptree {
	switch t := e.(type) {
	case in:
		return []*ptree{{op: 'l', pin: int(t)}}
	case not:
		kids := enumerate(t.e, limit)
		out := make([]*ptree, 0, len(kids))
		for _, k := range kids {
			out = append(out, &ptree{op: 'n', l: k})
		}
		return out
	case and:
		return enumerateNary(byte('a'), []expr(t), limit)
	case or:
		return enumerateNary(byte('o'), []expr(t), limit)
	}
	panic("library: unknown expr")
}

func enumerateNary(op byte, kids []expr, limit int) []*ptree {
	// Child variants: cartesian product would explode, so take the full
	// variant set for the first child and the primary variant for the
	// rest; tree shapes provide the real diversity.
	childSets := make([][]*ptree, len(kids))
	for i, k := range kids {
		childSets[i] = enumerate(k, limit)
	}
	var out []*ptree
	for _, shape := range shapes(len(kids)) {
		for vi := 0; vi < len(childSets[0]); vi++ {
			row := make([]*ptree, len(kids))
			for i := range kids {
				if i == 0 {
					row[i] = childSets[i][vi]
				} else {
					row[i] = childSets[i][0]
				}
			}
			out = append(out, buildShape(op, row, shape))
			if len(out) >= limit*3 {
				return out
			}
		}
	}
	return out
}

// shapeKind selects how an n-ary group is split into a binary tree.
type shapeKind byte

const (
	shapeBalanced shapeKind = iota
	shapeLeft
	shapeRight
)

func shapes(n int) []shapeKind {
	if n <= 2 {
		return []shapeKind{shapeBalanced}
	}
	if n == 3 {
		return []shapeKind{shapeLeft, shapeRight}
	}
	return []shapeKind{shapeBalanced, shapeLeft, shapeRight}
}

func buildShape(op byte, kids []*ptree, kind shapeKind) *ptree {
	switch len(kids) {
	case 1:
		return kids[0]
	case 2:
		return &ptree{op: op, l: kids[0], r: kids[1]}
	}
	switch kind {
	case shapeLeft:
		acc := kids[0]
		for _, k := range kids[1:] {
			acc = &ptree{op: op, l: acc, r: k}
		}
		return acc
	case shapeRight:
		acc := kids[len(kids)-1]
		for i := len(kids) - 2; i >= 0; i-- {
			acc = &ptree{op: op, l: kids[i], r: acc}
		}
		return acc
	default:
		mid := len(kids) / 2
		return &ptree{
			op: op,
			l:  buildShape(op, kids[:mid], shapeBalanced),
			r:  buildShape(op, kids[mid:], shapeBalanced),
		}
	}
}

// lower converts a ptree to a NAND2/INV pattern, cancelling double
// inversions: AND(a,b) = INV(NAND(a,b)); OR(a,b) = NAND(INV a, INV b);
// INV(INV(x)) = x.
func lower(t *ptree) *PatternNode {
	switch t.op {
	case 'l':
		return &PatternNode{Op: OpLeaf, Pin: t.pin}
	case 'n':
		return invOf(lower(t.l))
	case 'a':
		return invOf(&PatternNode{Op: OpNand2, Kids: [2]*PatternNode{lower(t.l), lower(t.r)}})
	case 'o':
		return &PatternNode{Op: OpNand2, Kids: [2]*PatternNode{invOf(lower(t.l)), invOf(lower(t.r))}}
	}
	panic("library: unknown ptree op")
}

func invOf(n *PatternNode) *PatternNode {
	if n.Op == OpInv {
		return n.Kids[0]
	}
	return &PatternNode{Op: OpInv, Kids: [2]*PatternNode{n, nil}}
}

// DumpPatterns renders all patterns of a gate, for debugging and docs.
func DumpPatterns(g *Gate) string {
	var b strings.Builder
	for _, p := range g.Patterns {
		fmt.Fprintf(&b, "%s size=%d %s\n", g.Name, p.Size, p)
	}
	return b.String()
}
