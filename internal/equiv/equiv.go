// Package equiv checks functional equivalence between a source Boolean
// network and a mapped netlist. The primary engine is formal — BDDs over a
// shared primary-input ordering (package bdd) — with a node budget; when a
// circuit blows the budget the checker degrades to randomized simulation
// and reports that the verdict is only statistical.
package equiv

import (
	"fmt"
	"math/rand"
	"sort"

	"lily/internal/bdd"
	"lily/internal/logic"
	"lily/internal/netlist"
)

// Method records how a verdict was reached.
type Method int

const (
	// MethodBDD means the equivalence was proved (or disproved with a
	// counterexample) formally.
	MethodBDD Method = iota
	// MethodSimulation means only randomized simulation was feasible.
	MethodSimulation
)

func (m Method) String() string {
	if m == MethodSimulation {
		return "simulation"
	}
	return "bdd"
}

// Result is the verdict of a check.
type Result struct {
	Equivalent bool
	Method     Method
	// FailingOutput names the first differing output when not equivalent.
	FailingOutput string
	// Counterexample gives PI values exposing the difference (BDD mode).
	Counterexample map[string]bool
	// BDDNodes is the peak node count of the formal check.
	BDDNodes int
	// Vectors is the number of simulation vectors used (simulation mode).
	Vectors int
}

// Options tunes the checker.
type Options struct {
	// MaxBDDNodes is the formal-engine budget (default 2,000,000).
	MaxBDDNodes int
	// SimVectors is the randomized fallback's vector count (default 256).
	SimVectors int
	// Seed drives the fallback's vector generation.
	Seed int64
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{MaxBDDNodes: 2_000_000, SimVectors: 256, Seed: 1}
}

// Check compares the source network with the mapped netlist.
func Check(src *logic.Network, nl *netlist.Netlist, opt Options) (*Result, error) {
	if opt.MaxBDDNodes <= 0 {
		opt.MaxBDDNodes = 2_000_000
	}
	if opt.SimVectors <= 0 {
		opt.SimVectors = 256
	}
	piNames := sortedPINames(src)
	if err := sameInterfaces(src, nl, piNames); err != nil {
		return nil, err
	}
	res, err := checkBDD(src, nl, piNames, opt.MaxBDDNodes)
	if err == nil {
		return res, nil
	}
	if err != bdd.ErrNodeLimit {
		return nil, err
	}
	return checkSim(src, nl, opt)
}

func sortedPINames(src *logic.Network) []string {
	names := make([]string, 0, len(src.PIs))
	for _, pi := range src.PIs {
		names = append(names, src.Nodes[pi].Name)
	}
	sort.Strings(names)
	return names
}

func sameInterfaces(src *logic.Network, nl *netlist.Netlist, piNames []string) error {
	for _, name := range piNames {
		if nl.PIIndex(name) < 0 {
			return fmt.Errorf("equiv: netlist lacks input %q", name)
		}
	}
	srcPOs := make(map[string]bool, len(src.PONames))
	for _, n := range src.PONames {
		srcPOs[n] = true
	}
	for _, po := range nl.POs {
		if !srcPOs[po.Name] {
			return fmt.Errorf("equiv: netlist output %q not in source", po.Name)
		}
	}
	if len(nl.POs) != len(src.PONames) {
		return fmt.Errorf("equiv: output counts differ (%d vs %d)", len(nl.POs), len(src.PONames))
	}
	return nil
}

func checkBDD(src *logic.Network, nl *netlist.Netlist, piNames []string, budget int) (*Result, error) {
	m := bdd.New(len(piNames), budget)
	varOf := make(map[string]int, len(piNames))
	for i, n := range piNames {
		varOf[n] = i
	}
	srcPO, err := networkBDDs(m, src, varOf)
	if err != nil {
		return nil, err
	}
	nlPO, err := netlistBDDs(m, nl, varOf)
	if err != nil {
		return nil, err
	}
	res := &Result{Equivalent: true, Method: MethodBDD, BDDNodes: m.NumNodes()}
	// Deterministic output order.
	names := make([]string, 0, len(srcPO))
	for n := range srcPO {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		a, b := srcPO[name], nlPO[name]
		if a == b {
			continue
		}
		diff, err := m.Xor(a, b)
		if err != nil {
			return nil, err
		}
		if diff == bdd.False {
			continue // same function, different refs cannot happen, but be safe
		}
		res.Equivalent = false
		res.FailingOutput = name
		assign := m.AnySatisfying(diff)
		cex := make(map[string]bool, len(piNames))
		for i, n := range piNames {
			cex[n] = assign[i]
		}
		res.Counterexample = cex
		break
	}
	res.BDDNodes = m.NumNodes()
	return res, nil
}

// networkBDDs builds PO BDDs for a logic network.
func networkBDDs(m *bdd.Manager, src *logic.Network, varOf map[string]int) (map[string]bdd.Ref, error) {
	order, err := src.TopoOrder()
	if err != nil {
		return nil, err
	}
	refs := make([]bdd.Ref, len(src.Nodes))
	for _, id := range order {
		nd := src.Nodes[id]
		if nd.Kind == logic.KindPI {
			r, err := m.Var(varOf[nd.Name])
			if err != nil {
				return nil, err
			}
			refs[id] = r
			continue
		}
		ins := make([]bdd.Ref, len(nd.Fanins))
		for i, f := range nd.Fanins {
			ins[i] = refs[f]
		}
		r, err := coverBDD(m, nd.Cover, ins)
		if err != nil {
			return nil, err
		}
		refs[id] = r
	}
	out := make(map[string]bdd.Ref, len(src.POs))
	for i, po := range src.POs {
		out[src.PONames[i]] = refs[po]
	}
	return out, nil
}

// netlistBDDs builds PO BDDs for a mapped netlist.
func netlistBDDs(m *bdd.Manager, nl *netlist.Netlist, varOf map[string]int) (map[string]bdd.Ref, error) {
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	piRef := make([]bdd.Ref, len(nl.PINames))
	for i, name := range nl.PINames {
		r, err := m.Var(varOf[name])
		if err != nil {
			return nil, err
		}
		piRef[i] = r
	}
	cellRef := make([]bdd.Ref, len(nl.Cells))
	refOf := func(r netlist.Ref) bdd.Ref {
		if r.IsPI {
			return piRef[r.Index]
		}
		return cellRef[r.Index]
	}
	for _, ci := range order {
		c := nl.Cells[ci]
		ins := make([]bdd.Ref, len(c.Inputs))
		for i, r := range c.Inputs {
			ins[i] = refOf(r)
		}
		r, err := coverBDD(m, c.Gate.Cover, ins)
		if err != nil {
			return nil, err
		}
		cellRef[ci] = r
	}
	out := make(map[string]bdd.Ref, len(nl.POs))
	for _, po := range nl.POs {
		out[po.Name] = refOf(po.Driver)
	}
	return out, nil
}

// coverBDD composes an SOP cover over fanin BDDs.
func coverBDD(m *bdd.Manager, cover logic.SOP, ins []bdd.Ref) (bdd.Ref, error) {
	acc := bdd.False
	for _, cube := range cover.Cubes {
		term := bdd.True
		for i, l := range cube {
			var lit bdd.Ref
			switch l {
			case logic.LitDC:
				continue
			case logic.LitPos:
				lit = ins[i]
			default:
				nl, err := m.Not(ins[i])
				if err != nil {
					return bdd.False, err
				}
				lit = nl
			}
			t, err := m.And(term, lit)
			if err != nil {
				return bdd.False, err
			}
			term = t
		}
		a, err := m.Or(acc, term)
		if err != nil {
			return bdd.False, err
		}
		acc = a
	}
	return acc, nil
}

// checkSim is the randomized fallback.
func checkSim(src *logic.Network, nl *netlist.Netlist, opt Options) (*Result, error) {
	//lint:impure generator is seeded from opt.Seed (caller-fixed), so the vector sequence is reproducible
	rng := rand.New(rand.NewSource(opt.Seed))
	res := &Result{Equivalent: true, Method: MethodSimulation, Vectors: opt.SimVectors}
	for k := 0; k < opt.SimVectors; k++ {
		in := make(map[string]bool, len(src.PIs))
		for _, pi := range src.PIs {
			in[src.Nodes[pi].Name] = rng.Intn(2) == 1
		}
		want, err := src.Eval(in)
		if err != nil {
			return nil, err
		}
		got, err := nl.Eval(in)
		if err != nil {
			return nil, err
		}
		// Iterate outputs in sorted order so the reported FailingOutput is
		// deterministic when several outputs disagree on the same vector
		// (map order would pick an arbitrary one per run).
		names := make([]string, 0, len(want))
		for name := range want {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if want[name] != got[name] {
				res.Equivalent = false
				res.FailingOutput = name
				res.Counterexample = in
				return res, nil
			}
		}
	}
	return res, nil
}
