package equiv

import (
	"testing"

	"lily/internal/bench"
	"lily/internal/decomp"
	"lily/internal/library"
	"lily/internal/logic"
	"lily/internal/mis"
	"lily/internal/netlist"
)

func mapped(t *testing.T, name string) (*logic.Network, *netlist.Netlist) {
	t.Helper()
	p, ok := bench.ProfileByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	src := bench.Generate(p)
	res, err := decomp.Premap(src)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := mis.Map(res.Inchoate, library.Big(), mis.DefaultOptions(mis.ModeArea))
	if err != nil {
		t.Fatal(err)
	}
	return src, nl
}

func TestFormallyEquivalent(t *testing.T) {
	for _, name := range []string{"misex1", "b9", "C432", "duke2"} {
		src, nl := mapped(t, name)
		res, err := Check(src, nl, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Equivalent {
			t.Fatalf("%s: mapper output not equivalent! output %s cex %v",
				name, res.FailingOutput, res.Counterexample)
		}
		if res.Method != MethodBDD {
			t.Errorf("%s: expected a formal verdict, got %v", name, res.Method)
		}
		if res.BDDNodes < 3 {
			t.Errorf("%s: implausible node count %d", name, res.BDDNodes)
		}
	}
}

func TestDetectsInjectedBug(t *testing.T) {
	src, nl := mapped(t, "misex1")
	// Failure injection: flip one gate to an almost-identical function.
	lib := library.Big()
	for _, c := range nl.Cells {
		if c.Gate.Name == "nand2" {
			c.Gate = lib.GateByName("nor2")
			break
		}
	}
	res, err := Check(src, nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("injected bug not detected")
	}
	if res.FailingOutput == "" {
		t.Error("no failing output named")
	}
	// The counterexample must actually expose the difference.
	want, err := src.Eval(res.Counterexample)
	if err != nil {
		t.Fatal(err)
	}
	got, err := nl.Eval(res.Counterexample)
	if err != nil {
		t.Fatal(err)
	}
	if want[res.FailingOutput] == got[res.FailingOutput] {
		t.Error("counterexample does not expose the bug")
	}
}

func TestFallbackToSimulation(t *testing.T) {
	src, nl := mapped(t, "C432")
	opt := DefaultOptions()
	opt.MaxBDDNodes = 50 // force the budget failure
	res, err := Check(src, nl, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodSimulation {
		t.Fatalf("expected simulation fallback, got %v", res.Method)
	}
	if !res.Equivalent {
		t.Error("simulation flagged a correct mapping")
	}
	if res.Vectors == 0 {
		t.Error("no vectors recorded")
	}
}

func TestInterfaceMismatchRejected(t *testing.T) {
	src, nl := mapped(t, "misex1")
	nl.POs = nl.POs[:len(nl.POs)-1]
	if _, err := Check(src, nl, DefaultOptions()); err == nil {
		t.Error("missing output not rejected")
	}
}

func TestSimulationDetectsGrossBug(t *testing.T) {
	src, nl := mapped(t, "misex1")
	lib := library.Big()
	// Invert every output driver's function by swapping gates grossly.
	for _, c := range nl.Cells {
		if c.Gate.Name == "inv" {
			c.Gate = lib.Buf
		}
	}
	opt := DefaultOptions()
	opt.MaxBDDNodes = 50
	res, err := Check(src, nl, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Error("simulation missed a gross bug")
	}
}
