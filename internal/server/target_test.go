package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lily"
	"lily/internal/engine"
)

// TestJobOptionsTargetValidation pins the server-boundary contract for
// the target option: accepted spellings resolve, anything else is a
// validation error that names the accepted values (the 400 body the
// HTTP layer sends back), and a non-lily mapper cannot carry a LUT
// target because only the lily covering engine has a cut backend.
func TestJobOptionsTargetValidation(t *testing.T) {
	cases := []struct {
		name    string
		opts    JobOptions
		want    lily.TechnologyTarget
		wantErr string
	}{
		{name: "empty defaults to asic", opts: JobOptions{}, want: lily.TargetASIC},
		{name: "explicit asic", opts: JobOptions{Target: "asic"}, want: lily.TargetASIC},
		{name: "lut4", opts: JobOptions{Target: "lut4"}, want: lily.TargetLUT4},
		{name: "lut6", opts: JobOptions{Target: "lut6"}, want: lily.TargetLUT6},
		{name: "unknown value", opts: JobOptions{Target: "lut5"},
			wantErr: `unknown target "lut5" (want "asic", "lut4", or "lut6")`},
		{name: "case sensitive", opts: JobOptions{Target: "LUT4"},
			wantErr: `unknown target "LUT4" (want "asic", "lut4", or "lut6")`},
		{name: "mis mapper rejects lut4", opts: JobOptions{Mapper: "mis", Target: "lut4"},
			wantErr: `target "lut4" requires the lily mapper`},
		{name: "mis mapper accepts asic", opts: JobOptions{Mapper: "mis", Target: "asic"},
			want: lily.TargetASIC},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt, err := tc.opts.ToFlowOptions()
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("ToFlowOptions(%+v) = %+v, want error %q", tc.opts, opt, tc.wantErr)
				}
				if err.Error() != tc.wantErr {
					t.Fatalf("error = %q, want %q", err.Error(), tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ToFlowOptions(%+v): %v", tc.opts, err)
			}
			if opt.Target != tc.want {
				t.Fatalf("Target = %v, want %v", opt.Target, tc.want)
			}
		})
	}
}

// TestSubmitRejectsUnknownTarget covers the HTTP round trip: a bad
// target is a 400 whose body lists the accepted values, on both the
// single-job and batch endpoints.
func TestSubmitRejectsUnknownTarget(t *testing.T) {
	ts, _ := newTestServer(t)

	for _, tc := range []struct {
		name string
		url  string
		body string
	}{
		{"single job", "/v1/jobs",
			`{"benchmark":"misex1","options":{"target":"fpga"}}`},
		{"batch job", "/v1/batches",
			`{"jobs":[{"benchmark":"misex1","options":{"target":"fpga"}}]}`},
		{"mis with lut target", "/v1/jobs",
			`{"benchmark":"misex1","options":{"mapper":"mis","target":"lut4"}}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.url, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			e := decode[errorResponse](t, resp)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (%s)", resp.StatusCode, e.Error)
			}
			if !strings.Contains(e.Error, "target") {
				t.Fatalf("error %q does not mention target", e.Error)
			}
			if !strings.Contains(e.Error, "lily") && !strings.Contains(e.Error, `"lut6"`) {
				t.Fatalf("error %q lists neither the accepted values nor the mapper constraint", e.Error)
			}
		})
	}
}

// TestDefaultTargetSubstitution checks WithDefaultTarget (lilyd
// -target): a job that names no target inherits the server default —
// visible in the FlowResult — while an explicit target wins.
func TestDefaultTargetSubstitution(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 2})
	ts := httptest.NewServer(New(eng, WithDefaultTarget(lily.TargetLUT4)))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = eng.Shutdown(ctx)
	})

	run := func(t *testing.T, opts JobOptions) lily.FlowResult {
		t.Helper()
		resp := postJSON(t, ts.URL+"/v1/jobs", SubmitRequest{Benchmark: "misex1", Options: opts})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status = %d, want 202", resp.StatusCode)
		}
		sub := decode[SubmitResponse](t, resp)
		r, err := http.Get(ts.URL + sub.Status + "?wait=60s")
		if err != nil {
			t.Fatal(err)
		}
		status := decode[engine.Status](t, r)
		if status.State != "done" {
			t.Fatalf("job state = %s (%s), want done", status.State, status.Error)
		}
		r, err = http.Get(ts.URL + sub.Result)
		if err != nil {
			t.Fatal(err)
		}
		return decode[lily.FlowResult](t, r)
	}

	if res := run(t, JobOptions{}); res.Target != lily.TargetLUT4 {
		t.Fatalf("defaulted job mapped to %v, want lut4", res.Target)
	}
	if res := run(t, JobOptions{Target: "asic"}); res.Target != lily.TargetASIC {
		t.Fatalf("explicit asic job mapped to %v, want asic", res.Target)
	}
}
