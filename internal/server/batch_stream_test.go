package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"lily"
	"lily/internal/engine"
)

// TestBatchStreamStalledClient is the regression for the NDJSON-stream
// write hang: a client that opens GET /v1/batches/{id} and then stops
// reading fills the kernel send buffer, and without a per-line write
// deadline enc.Encode blocks forever, pinning the handler goroutine (and
// its per-job waiters) for the life of the connection. With the deadline
// armed, the server must abort the stream shortly after the stall and
// close the connection instead of shipping the whole batch.
func TestBatchStreamStalledClient(t *testing.T) {
	if testing.Short() {
		t.Skip("stalled-connection soak")
	}
	// Tighten the per-line deadline so the stall is detected in test
	// time rather than the production minute.
	old := batchStreamWriteTimeout
	batchStreamWriteTimeout = 250 * time.Millisecond
	t.Cleanup(func() { batchStreamWriteTimeout = old })

	// Fat result lines (~32 KiB each) so the full stream is far larger
	// than loopback socket buffering: maxBatchJobs lines ≈ 32 MiB. If
	// the deadline fails to fire, the drain below would have to swallow
	// all of it; with the fix the server gives up after one blocked
	// line.
	pad := strings.Repeat("x", 32<<10)
	ts, _ := newFakeServer(t, engine.Config{Workers: 4, Run: func(ctx context.Context, c *lily.Circuit, req engine.Request) (*engine.Outcome, error) {
		return &engine.Outcome{Result: &lily.FlowResult{Circuit: req.Benchmark + pad, Gates: 1}}, nil
	}})

	jobs := make([]SubmitRequest, maxBatchJobs)
	for i := range jobs {
		jobs[i] = SubmitRequest{Benchmark: "misex1", Options: JobOptions{Mapper: "lily"}}
	}
	ack := decode[BatchSubmitResponse](t, postJSON(t, ts.URL+"/v1/batches", BatchSubmitRequest{Jobs: jobs}))

	// Raw connection so nothing reads the response: http.Client would
	// buffer and ruin the stall.
	addr := ts.Listener.Addr().String()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Clamp the receive buffer: with kernel auto-tuning (tcp_rmem can
	// grow to tens of MB) the whole stream could fit in kernel buffers
	// and no server write would ever block.
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(64 << 10)
	}
	fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: %s\r\n\r\n", ack.Stream, addr)

	// Stall: let the handler fill every buffer between it and us, hit
	// the write deadline, and abort. 6× the deadline leaves slack for
	// slow CI machines.
	time.Sleep(6 * batchStreamWriteTimeout)

	// Drain what was buffered before the abort. The server must have
	// closed the connection, so the read loop terminates — promptly,
	// and long before the full batch's worth of bytes.
	deadline := time.Now().Add(30 * time.Second)
	_ = conn.SetReadDeadline(deadline)
	var total int
	r := bufio.NewReaderSize(conn, 1<<16)
	buf := make([]byte, 1<<16)
	full := maxBatchJobs * len(pad)
	for {
		n, err := r.Read(buf)
		total += n
		if err != nil {
			break // EOF or reset: the server hung up
		}
		if total >= full {
			t.Fatalf("drained %d bytes (full batch is %d): server streamed everything to a stalled client", total, full)
		}
		if time.Now().After(deadline) {
			t.Fatal("stream still open long after the write deadline: stalled client pinned the handler")
		}
	}
	t.Logf("server aborted after %d buffered bytes (full stream %d)", total, full)
}
