// Package server implements lilyd's HTTP JSON API on top of the
// concurrent flow engine. Endpoints:
//
//	POST   /v1/jobs            submit a mapping job (benchmark or BLIF + options)
//	GET    /v1/jobs            list job statuses
//	GET    /v1/jobs/{id}       poll one job (optional ?wait=5s long-poll, capped at 60s)
//	GET    /v1/jobs/{id}/result  fetch the FlowResult of a finished job
//	GET    /v1/jobs/{id}/svg     download the rendered layout SVG
//	GET    /v1/jobs/{id}/trace   phase-span tree recorded for the job
//	DELETE /v1/jobs/{id}       drop a terminal job from the registry
//	POST   /v1/batches         submit a whole suite of jobs in one round trip
//	GET    /v1/batches         list batch summaries
//	GET    /v1/batches/{id}    stream per-job results as NDJSON, as they land
//	GET    /v1/benchmarks      list the built-in benchmark suite
//	GET    /v1/stats           node ID, engine counters, cache tiers, cluster health
//	GET    /v1/cache/{digest}  cluster cache peek: cached outcome by request digest
//	POST   /v1/cluster/jobs    cluster proxy: execute a peer-forwarded request locally
//	GET    /metrics            Prometheus text exposition (engine + flow + cluster + HTTP)
//	GET    /healthz            liveness probe
//
// Lifecycle semantics: the engine retains only a bounded number of
// terminal jobs, so an ID that was once issued but has since been
// evicted (or DELETEd) answers 410 Gone rather than 404. When the
// engine runs in load-shed mode a full queue answers 429 Too Many
// Requests with a Retry-After hint instead of blocking the connection —
// including on the cluster proxy endpoint, where 429 tells the calling
// peer to spill the request to the next node in its HRW order.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"lily"
	"lily/internal/cluster"
	"lily/internal/engine"
	"lily/internal/obs"
)

// maxBodyBytes bounds uploaded BLIF sources (8 MiB).
const maxBodyBytes = 8 << 20

// maxLongPoll caps the ?wait= long-poll duration so a single client
// cannot pin a connection indefinitely; longer requests are clamped.
const maxLongPoll = 60 * time.Second

// PrometheusContentType is the Content-Type of GET /metrics responses
// (Prometheus text exposition format v0.0.4).
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// HTTP-layer metric names.
const (
	metricHTTPRequests  = "lily_http_requests_total"
	metricHTTPResponses = "lily_http_responses_total"
	metricHTTPDuration  = "lily_http_request_seconds"
	metricHTTPInFlight  = "lily_http_in_flight"
)

// serverMetrics bundles the HTTP handler's instruments. Route labels use
// the registered mux patterns (not raw URLs), so the cardinality is
// bounded by the route table.
type serverMetrics struct {
	requests  *obs.CounterVec // by route pattern
	responses *obs.CounterVec // by status class ("2xx", "4xx", ...)
	duration  *obs.Histogram
}

// Server routes lilyd's API onto an engine.
type Server struct {
	eng    *engine.Engine
	mux    *http.ServeMux
	reg    *obs.Registry
	nodeID string
	clu    *cluster.Cluster // nil outside cluster mode

	// defaultTarget fills JobOptions.Target when a request leaves it
	// empty. Zero value is TargetASIC, the historical behavior.
	defaultTarget lily.TechnologyTarget

	// defaultMLThreshold fills JobOptions.MultilevelThreshold when a
	// request leaves it zero. Zero keeps the library default.
	defaultMLThreshold int

	// Logger, when set before the server starts handling traffic, gets
	// one structured record per request (route, method, path, status,
	// duration). Nil disables request logging.
	Logger *slog.Logger

	metrics  serverMetrics
	inflight atomic.Int64
	batches  batchRegistry
}

// Option customizes a Server at construction.
type Option func(*Server)

// WithNodeID sets the stable node identifier reported in /v1/stats and
// batch results. Defaults to "solo" outside cluster mode.
func WithNodeID(id string) Option { return func(s *Server) { s.nodeID = id } }

// WithDefaultTarget sets the technology target substituted into jobs
// that do not name one (lilyd -target). The substitution happens before
// option validation — and therefore before digest computation, so a node
// started with -target lut4 keys its cache under the lut4 digests.
func WithDefaultTarget(t lily.TechnologyTarget) Option {
	return func(s *Server) { s.defaultTarget = t }
}

// WithDefaultMultilevelThreshold sets the placement V-cycle threshold
// substituted into jobs that leave options.multilevel_threshold zero
// (lilyd -multilevel-threshold). Like WithDefaultTarget, the
// substitution happens before validation and digest computation, so a
// node started with a non-default threshold keys its cache accordingly.
func WithDefaultMultilevelThreshold(n int) Option {
	return func(s *Server) { s.defaultMLThreshold = n }
}

// WithCluster attaches the peer layer: /v1/stats grows a cluster health
// block and the node ID defaults to the cluster's self ID. The cache-peek
// and proxy endpoints are served regardless — they only need the engine.
func WithCluster(c *cluster.Cluster) Option { return func(s *Server) { s.clu = c } }

// New builds the HTTP handler for an engine. The handler's own metrics
// are registered on the engine's registry so a single GET /metrics
// scrape covers the HTTP, engine, and flow layers.
func New(eng *engine.Engine, opts ...Option) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux(), reg: eng.Registry()}
	for _, o := range opts {
		o(s)
	}
	if s.nodeID == "" {
		if s.clu != nil {
			s.nodeID = s.clu.Self()
		} else {
			s.nodeID = "solo"
		}
	}
	s.metrics = serverMetrics{
		requests: s.reg.CounterVec(metricHTTPRequests,
			"HTTP requests handled, by registered route pattern.", "route"),
		responses: s.reg.CounterVec(metricHTTPResponses,
			"HTTP responses sent, by status class.", "class"),
		duration: s.reg.Histogram(metricHTTPDuration,
			"HTTP request handling time.", obs.DefBuckets),
	}
	s.reg.GaugeFunc(metricHTTPInFlight, "HTTP requests currently being handled.",
		func() float64 { return float64(s.inflight.Load()) })
	s.route("POST /v1/jobs", s.handleSubmit)
	s.route("GET /v1/jobs", s.handleList)
	s.route("GET /v1/jobs/{id}", s.handleStatus)
	s.route("DELETE /v1/jobs/{id}", s.handleDelete)
	s.route("GET /v1/jobs/{id}/result", s.handleResult)
	s.route("GET /v1/jobs/{id}/svg", s.handleSVG)
	s.route("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.route("POST /v1/batches", s.handleBatchSubmit)
	s.route("GET /v1/batches", s.handleBatchList)
	s.route("GET /v1/batches/{id}", s.handleBatchStream)
	s.route("GET /v1/benchmarks", s.handleBenchmarks)
	s.route("GET /v1/stats", s.handleStats)
	s.route("GET /v1/cache/{digest}", s.handleCachePeek)
	s.route("POST /v1/cluster/jobs", s.handleClusterJob)
	s.route("GET /metrics", s.handleMetrics)
	s.route("GET /healthz", s.handleHealth)
	return s
}

// route registers a handler wrapped with request instrumentation: an
// in-flight gauge, per-route request counter, status-class counter,
// latency histogram, and (when Logger is set) one structured log record
// per request.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		elapsed := time.Since(start)
		s.metrics.requests.With(pattern).Inc()
		s.metrics.responses.With(statusClass(rec.status)).Inc()
		s.metrics.duration.Observe(elapsed.Seconds())
		if lg := s.Logger; lg != nil {
			lg.Info("request",
				slog.String("route", pattern),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", rec.status),
				slog.Duration("duration", elapsed),
			)
		}
	})
}

// statusRecorder captures the response status for metrics and logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Unwrap exposes the wrapped writer to http.ResponseController, which is
// how the batch stream reaches Flush and SetWriteDeadline through this
// wrapper. Without it the recorder silently swallowed both: the embedded
// interface hides the concrete writer's optional methods, so the NDJSON
// stream neither flushed per line nor timed out on stalled readers.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// statusClass folds an HTTP status into its hundreds class ("2xx").
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return strconv.Itoa(code/100) + "xx"
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SubmitRequest is the POST /v1/jobs body. Exactly one of Benchmark or
// BLIF selects the circuit.
type SubmitRequest struct {
	// Benchmark names a built-in circuit (GET /v1/benchmarks).
	Benchmark string `json:"benchmark,omitempty"`
	// BLIF is an inline combinational BLIF source.
	BLIF string `json:"blif,omitempty"`
	// SVG requests a layout rendering, served at /v1/jobs/{id}/svg.
	SVG bool `json:"svg,omitempty"`
	// EmitBLIF captures the mapped, placed netlist; batch results then
	// carry its SHA-256 (the golden-harness hash). Mutually exclusive
	// with SVG.
	EmitBLIF bool `json:"emit_blif,omitempty"`
	// TimeoutMS bounds the job's run time in milliseconds.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Options tunes the flow.
	Options JobOptions `json:"options"`
}

// JobOptions is the JSON surface of lily.FlowOptions.
type JobOptions struct {
	Mapper                    string  `json:"mapper,omitempty"`    // "lily" (default) | "mis"
	Objective                 string  `json:"objective,omitempty"` // "area" (default) | "delay"
	Library                   string  `json:"library,omitempty"`   // "big" (default) | "tiny"
	Target                    string  `json:"target,omitempty"`    // "asic" (default) | "lut4" | "lut6"
	WireWeight                float64 `json:"wire_weight,omitempty"`
	AutoTune                  bool    `json:"autotune,omitempty"`
	Verify                    bool    `json:"verify,omitempty"`
	PreOptimize               bool    `json:"pre_optimize,omitempty"`
	TwoPassDelay              bool    `json:"two_pass_delay,omitempty"`
	FanoutOptimize            bool    `json:"fanout_optimize,omitempty"`
	MaxFanout                 int     `json:"max_fanout,omitempty"`
	AnnealPlacement           bool    `json:"anneal_placement,omitempty"`
	ClockPeriodNS             float64 `json:"clock_period_ns,omitempty"`
	ReplaceEvery              int     `json:"replace_every,omitempty"`
	TreeMode                  bool    `json:"tree_mode,omitempty"`
	LayoutDrivenDecomposition bool    `json:"layout_driven_decomposition,omitempty"`
	// Parallelism bounds intra-job workers for the cover DP and the
	// placement solves. Throughput only: the result is bit-identical at
	// any setting and the request digest excludes it. 0 defers to the
	// server-wide default (lilyd -parallelism).
	Parallelism int `json:"parallelism,omitempty"`
	// MultilevelThreshold sets the movable-cell count above which global
	// placement switches to the multilevel V-cycle (DESIGN.md §15). 0
	// keeps the default (25000), negative disables multilevel placement.
	// Semantically significant: it participates in the request digest.
	MultilevelThreshold int `json:"multilevel_threshold,omitempty"`
}

// ToFlowOptions validates and converts the JSON options.
func (o JobOptions) ToFlowOptions() (lily.FlowOptions, error) {
	var opt lily.FlowOptions
	switch o.Mapper {
	case "", "lily":
		opt.Mapper = lily.MapperLily
	case "mis", "mis2.1":
		opt.Mapper = lily.MapperMIS
	default:
		return opt, fmt.Errorf("unknown mapper %q (want \"lily\" or \"mis\")", o.Mapper)
	}
	switch o.Objective {
	case "", "area":
		opt.Objective = lily.ObjectiveArea
	case "delay":
		opt.Objective = lily.ObjectiveDelay
	default:
		return opt, fmt.Errorf("unknown objective %q (want \"area\" or \"delay\")", o.Objective)
	}
	switch o.Library {
	case "", "big":
		opt.Library = lily.LibraryBig
	case "tiny":
		opt.Library = lily.LibraryTiny
	default:
		return opt, fmt.Errorf("unknown library %q (want \"big\" or \"tiny\")", o.Library)
	}
	target, err := lily.ParseTechnologyTarget(o.Target)
	if err != nil {
		return opt, err
	}
	if target != lily.TargetASIC && opt.Mapper != lily.MapperLily {
		return opt, fmt.Errorf("target %q requires the lily mapper", o.Target)
	}
	opt.Target = target
	if o.WireWeight < 0 {
		return opt, fmt.Errorf("wire_weight must be >= 0")
	}
	opt.WireWeight = o.WireWeight
	opt.AutoTune = o.AutoTune
	opt.VerifyEquivalence = o.Verify
	opt.PreOptimize = o.PreOptimize
	opt.TwoPassDelay = o.TwoPassDelay
	opt.FanoutOptimize = o.FanoutOptimize
	opt.MaxFanout = o.MaxFanout
	opt.AnnealPlacement = o.AnnealPlacement
	opt.ClockPeriodNS = o.ClockPeriodNS
	opt.ReplaceEvery = o.ReplaceEvery
	opt.TreeMode = o.TreeMode
	opt.LayoutDrivenDecomposition = o.LayoutDrivenDecomposition
	if o.Parallelism < 0 {
		return opt, fmt.Errorf("parallelism must be >= 0")
	}
	opt.Parallelism = o.Parallelism
	opt.MultilevelThreshold = o.MultilevelThreshold
	return opt, nil
}

// toEngineRequest converts a validated SubmitRequest body (options already
// resolved by ToFlowOptions) into the engine's request form. Shared by the
// single-job and batch submission paths.
func (req SubmitRequest) toEngineRequest(opt lily.FlowOptions) (engine.Request, error) {
	if req.TimeoutMS < 0 {
		// A negative duration would silently disable the engine's
		// per-job timeout instead of bounding it.
		return engine.Request{}, fmt.Errorf("timeout_ms must be >= 0 (got %d)", req.TimeoutMS)
	}
	if req.SVG && req.EmitBLIF {
		return engine.Request{}, fmt.Errorf("svg and emit_blif are mutually exclusive")
	}
	ereq := engine.Request{
		Benchmark: req.Benchmark,
		Options:   opt,
		RenderSVG: req.SVG,
		EmitBLIF:  req.EmitBLIF,
		Timeout:   time.Duration(req.TimeoutMS) * time.Millisecond,
	}
	if req.BLIF != "" {
		ereq.BLIF = []byte(req.BLIF)
	}
	return ereq, nil
}

// SubmitResponse acknowledges a submission.
type SubmitResponse struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Status string `json:"status_url"`
	Result string `json:"result_url"`
	SVG    string `json:"svg_url,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Options.Target == "" {
		req.Options.Target = s.defaultTarget.String()
	}
	if req.Options.MultilevelThreshold == 0 {
		req.Options.MultilevelThreshold = s.defaultMLThreshold
	}
	opt, err := req.Options.ToFlowOptions()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ereq, err := req.toEngineRequest(opt)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The job must outlive this HTTP request: detach it from r.Context().
	j, err := s.eng.Submit(context.Background(), ereq)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, engine.ErrClosed):
			status = http.StatusServiceUnavailable
		case errors.Is(err, engine.ErrQueueFull):
			// Load shed: tell the client to back off and retry rather
			// than holding its connection open against a full queue.
			w.Header().Set("Retry-After", "1")
			status = http.StatusTooManyRequests
		}
		writeError(w, status, err)
		return
	}
	resp := SubmitResponse{
		ID:     j.ID(),
		State:  j.Status().State,
		Status: "/v1/jobs/" + j.ID(),
		Result: "/v1/jobs/" + j.ID() + "/result",
	}
	if req.SVG {
		resp.SVG = "/v1/jobs/" + j.ID() + "/svg"
	}
	writeJSON(w, http.StatusAccepted, resp)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.eng.Jobs())
}

// lookupJob resolves {id}, distinguishing IDs that were never issued
// (404) from IDs the engine once issued but no longer retains — evicted,
// aged out, or DELETEd — which answer 410 Gone.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*engine.Job, bool) {
	id := r.PathValue("id")
	if j, ok := s.eng.Job(id); ok {
		return j, true
	}
	if s.eng.Forgotten(id) {
		writeError(w, http.StatusGone,
			fmt.Errorf("job %s is no longer retained (evicted or deleted)", id))
	} else {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
	}
	return nil, false
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	// Optional long-poll: ?wait=5s blocks until the job terminates or the
	// wait elapses, then reports whatever state the job is in. The wait
	// is clamped to maxLongPoll so one client cannot pin a connection for
	// hours; unparseable or negative values are rejected.
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		d, err := time.ParseDuration(waitStr)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad wait duration %q", waitStr))
			return
		}
		if d > maxLongPoll {
			d = maxLongPoll
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		_, _ = j.Wait(ctx)
		cancel()
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	if err := s.eng.Remove(j.ID()); err != nil {
		switch {
		case errors.Is(err, engine.ErrJobActive):
			writeError(w, http.StatusConflict, fmt.Errorf(
				"job %s is still %s; cancel it or wait for it to terminate", j.ID(), j.Status().State))
		case errors.Is(err, engine.ErrUnknownJob):
			// Raced with eviction between lookup and removal: same outcome.
			writeError(w, http.StatusGone,
				fmt.Errorf("job %s is no longer retained (evicted or deleted)", j.ID()))
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	_, out, ok := s.finishedJob(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, out.Result)
}

func (s *Server) handleSVG(w http.ResponseWriter, r *http.Request) {
	j, out, ok := s.finishedJob(w, r)
	if !ok {
		return
	}
	if len(out.SVG) == 0 {
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s was submitted without \"svg\": true", j.ID()))
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(out.SVG)
}

// finishedJob resolves {id} to a successfully finished job, writing the
// appropriate error response otherwise.
func (s *Server) finishedJob(w http.ResponseWriter, r *http.Request) (*engine.Job, *engine.Outcome, bool) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return nil, nil, false
	}
	st := j.Status()
	switch st.State {
	case "done":
		return j, j.Outcome(), true
	case "failed", "canceled":
		writeError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("job %s %s: %s", j.ID(), st.State, st.Error))
		return nil, nil, false
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s is %s; poll %s", j.ID(), st.State, "/v1/jobs/"+j.ID()))
		return nil, nil, false
	}
}

// TraceResponse is the GET /v1/jobs/{id}/trace body: the job's span
// forest as recorded so far. Running spans carry duration_ns = -1, so a
// live job serves a partial trace that fills in as phases complete. The
// trace shares the job's retention lifecycle: evicted or DELETEd jobs
// answer 410 Gone here exactly as on the status endpoint.
type TraceResponse struct {
	ID    string          `json:"id"`
	State string          `json:"state"`
	Spans []*obs.SpanNode `json:"spans"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	if !j.Traced() {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("job %s has no trace (engine tracing is disabled)", j.ID()))
		return
	}
	writeJSON(w, http.StatusOK, TraceResponse{
		ID:    j.ID(),
		State: j.Status().State,
		Spans: j.Trace(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", PrometheusContentType)
	_ = s.reg.WritePrometheus(w)
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, lily.BenchmarkNames())
}

// CacheTierStats partitions terminal job sources across the cache tiers:
// LocalHits answered from this node's LRU, RemoteHits served by a peer
// (owner cache or proxied compute), Misses computed locally from scratch.
type CacheTierStats struct {
	LocalHits  uint64 `json:"local_hits"`
	RemoteHits uint64 `json:"remote_hits"`
	Misses     uint64 `json:"misses"`
}

// StatsResponse is the GET /v1/stats body: a stable node identity, the
// engine counters (flattened, field-compatible with the pre-cluster
// response), the cache-tier breakdown, and — in cluster mode — peer
// health and routing counters.
type StatsResponse struct {
	NodeID string `json:"node_id"`
	engine.Stats
	CacheTier CacheTierStats `json:"cache_tier"`
	Cluster   *cluster.Info  `json:"cluster,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	resp := StatsResponse{
		NodeID: s.nodeID,
		Stats:  st,
		CacheTier: CacheTierStats{
			LocalHits:  st.CacheHits,
			RemoteHits: st.RemoteHits,
			// The engine counts a remote-served job as a local miss first
			// (it did miss this node's LRU); subtract so the tiers
			// partition.
			Misses: st.CacheMisses - st.RemoteHits,
		},
	}
	if s.clu != nil {
		info := s.clu.Info()
		resp.Cluster = &info
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCachePeek serves the cluster cache-peek protocol: the cached
// outcome for a request digest, or 404 on a miss. Peers call it before
// proxying compute, making every node's LRU one tier of a shared,
// content-addressed result cache.
func (s *Server) handleCachePeek(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	if len(digest) != 64 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("malformed digest %q (want 64 hex chars)", digest))
		return
	}
	out, ok := s.eng.PeekCache(digest)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("digest %.12s… not cached here", digest))
		return
	}
	writeJSON(w, http.StatusOK, cluster.WireOutcome{
		Digest:     digest,
		Result:     out.Result,
		SVG:        out.SVG,
		MappedBLIF: out.MappedBLIF,
	})
}

// handleClusterJob executes a peer-forwarded request locally and answers
// with its outcome in one round trip. The request is marked LocalOnly so
// routing never chains: this node either computes or sheds (429 — the
// caller spills to the next node in its HRW order). The digest is
// recomputed and must match the sender's — disagreement means the two
// nodes run different mapper versions, and a 409 makes the caller fall
// back to local compute instead of mixing outputs.
func (s *Server) handleClusterJob(w http.ResponseWriter, r *http.Request) {
	var wj cluster.WireJob
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&wj); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad wire job: %w", err))
		return
	}
	if wj.TimeoutMS < 0 || wj.BLIF == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("wire job needs blif and timeout_ms >= 0"))
		return
	}
	req := engine.Request{
		BLIF:      []byte(wj.BLIF),
		Options:   wj.Options,
		RenderSVG: wj.SVG,
		EmitBLIF:  wj.EmitBLIF,
		Timeout:   time.Duration(wj.TimeoutMS) * time.Millisecond,
		LocalOnly: true,
	}
	digest, err := engine.RequestDigest(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if digest != wj.Digest {
		writeError(w, http.StatusConflict, fmt.Errorf(
			"digest mismatch: sender %.12s…, here %.12s… (mapper version skew?)", wj.Digest, digest))
		return
	}
	// Synchronous: the proxying peer holds one connection for the whole
	// run, and its disconnect (or deadline) cancels the job through
	// r.Context(). The job still flows through the engine — cache,
	// singleflight, admission control, metrics all apply.
	out, err := s.eng.Run(r.Context(), req)
	if err != nil {
		switch {
		case errors.Is(err, engine.ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, engine.ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusUnprocessableEntity, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, cluster.WireOutcome{
		Digest:     digest,
		Result:     out.Result,
		SVG:        out.SVG,
		MappedBLIF: out.MappedBLIF,
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are already out; nothing better to do than drop it.
		_ = err
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
