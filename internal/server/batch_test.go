package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"lily"
	"lily/internal/engine"
)

// newBatchFakeServer backs the HTTP surface with an instant fake runner,
// for tests that exercise batch mechanics rather than the mapping
// pipeline.
func newBatchFakeServer(t *testing.T) (*httptest.Server, *engine.Engine) {
	t.Helper()
	return newFakeServer(t, engine.Config{Workers: 2, Run: func(ctx context.Context, c *lily.Circuit, req engine.Request) (*engine.Outcome, error) {
		out := &engine.Outcome{Result: &lily.FlowResult{Circuit: req.Benchmark, Gates: 1}}
		if req.EmitBLIF {
			out.MappedBLIF = []byte("mapped:" + req.Benchmark)
		}
		return out, nil
	}})
}

// readStream drains a batch's NDJSON stream into results keyed by index.
func readStream(t *testing.T, url string) map[int]BatchResult {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q, want application/x-ndjson", ct)
	}
	out := make(map[int]BatchResult)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		var line BatchResult
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if _, dup := out[line.Index]; dup {
			t.Fatalf("index %d streamed twice", line.Index)
		}
		out[line.Index] = line
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestBatchLifecycle drives the real pipeline through the batch API:
// submit a two-job suite with emit_blif, stream the results, and check
// each line carries the digest, terminal state, and mapped-netlist hash.
func TestBatchLifecycle(t *testing.T) {
	ts, _ := newTestServer(t)

	resp := postJSON(t, ts.URL+"/v1/batches", BatchSubmitRequest{Jobs: []SubmitRequest{
		{Benchmark: "misex1", EmitBLIF: true, Options: JobOptions{Mapper: "mis", Objective: "area"}},
		{Benchmark: "misex1", EmitBLIF: true, Options: JobOptions{Mapper: "lily", Objective: "area"}},
	}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch submit status = %d, want 202", resp.StatusCode)
	}
	ack := decode[BatchSubmitResponse](t, resp)
	if ack.ID == "" || ack.Jobs != 2 || len(ack.Refs) != 2 {
		t.Fatalf("incomplete ack: %+v", ack)
	}
	for i, ref := range ack.Refs {
		if ref.Index != i || ref.JobID == "" || len(ref.Digest) != 64 {
			t.Fatalf("bad ref %d: %+v", i, ref)
		}
	}
	if ack.Refs[0].Digest == ack.Refs[1].Digest {
		t.Fatalf("mis and lily jobs share a digest: %s", ack.Refs[0].Digest)
	}

	results := readStream(t, ts.URL+ack.Stream)
	if len(results) != 2 {
		t.Fatalf("streamed %d results, want 2", len(results))
	}
	for i := 0; i < 2; i++ {
		line, ok := results[i]
		if !ok {
			t.Fatalf("index %d missing from stream", i)
		}
		if line.State != "done" {
			t.Fatalf("job %d finished %s (%s), want done", i, line.State, line.Error)
		}
		if line.Digest != ack.Refs[i].Digest {
			t.Fatalf("job %d digest drifted: ack %s, stream %s", i, ack.Refs[i].Digest, line.Digest)
		}
		if len(line.BLIFSHA256) != 64 {
			t.Fatalf("job %d blif_sha256 = %q, want 64 hex chars", i, line.BLIFSHA256)
		}
		if line.Result == nil || line.Result.Gates == 0 {
			t.Fatalf("job %d has no result: %+v", i, line)
		}
	}
	// The two mappers produce different netlists — the hashes must differ.
	if results[0].BLIFSHA256 == results[1].BLIFSHA256 {
		t.Fatalf("mis and lily produced identical mapped BLIF hashes")
	}

	// Replaying the stream yields the same set: results are not consumed.
	again := readStream(t, ts.URL+ack.Stream)
	if len(again) != 2 || again[0].Digest != results[0].Digest {
		t.Fatalf("stream not replayable: %+v", again)
	}

	// The batch shows up fully done in the listing.
	r, err := http.Get(ts.URL + "/v1/batches")
	if err != nil {
		t.Fatal(err)
	}
	list := decode[[]BatchSummary](t, r)
	if len(list) != 1 || list[0].ID != ack.ID || list[0].Done != 2 {
		t.Fatalf("batch listing = %+v, want 1 fully-done batch", list)
	}
}

// TestBatchRejectsInvalidWholesale: validation runs before any submit,
// so one bad job rejects the whole batch without leaving work behind.
func TestBatchRejectsInvalidWholesale(t *testing.T) {
	ts, eng := newBatchFakeServer(t)

	cases := []BatchSubmitRequest{
		{}, // empty
		{Jobs: []SubmitRequest{
			{Benchmark: "misex1", Options: JobOptions{Mapper: "lily"}},
			{Benchmark: "misex1", Options: JobOptions{Mapper: "nonesuch"}},
		}},
		{Jobs: []SubmitRequest{
			{Benchmark: "misex1", SVG: true, EmitBLIF: true, Options: JobOptions{Mapper: "lily"}},
		}},
		{Jobs: []SubmitRequest{
			{Benchmark: "misex1", TimeoutMS: -5, Options: JobOptions{Mapper: "lily"}},
		}},
	}
	for i, c := range cases {
		resp := postJSON(t, ts.URL+"/v1/batches", c)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d: status = %d, want 400", i, resp.StatusCode)
		}
	}
	if st := eng.Stats(); st.Submitted != 0 {
		t.Fatalf("rejected batches still submitted %d jobs", st.Submitted)
	}
}

// TestBatchGoneAfterEviction pins the 404-vs-410 contract: an ID the
// registry never issued is 404, an issued-then-evicted ID is 410.
func TestBatchGoneAfterEviction(t *testing.T) {
	ts, _ := newBatchFakeServer(t)

	get := func(id string) int {
		t.Helper()
		r, err := http.Get(ts.URL + "/v1/batches/" + id)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		return r.StatusCode
	}
	if got := get("batch-999999"); got != http.StatusNotFound {
		t.Fatalf("never-issued ID: status = %d, want 404", got)
	}
	if got := get("nonsense"); got != http.StatusNotFound {
		t.Fatalf("malformed ID: status = %d, want 404", got)
	}

	// Fill the registry past its bound; batch-000001 must be evicted.
	// Distinct model names keep each job a distinct digest.
	for i := 0; i <= maxRetainedBatches; i++ {
		blif := fmt.Sprintf(".model b%d\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n", i)
		resp := postJSON(t, ts.URL+"/v1/batches", BatchSubmitRequest{Jobs: []SubmitRequest{
			{BLIF: blif, Options: JobOptions{Mapper: "lily"}},
		}})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status = %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if got := get("batch-000001"); got != http.StatusGone {
		t.Fatalf("evicted ID: status = %d, want 410", got)
	}
	if got := get(fmt.Sprintf("batch-%06d", maxRetainedBatches+1)); got != http.StatusOK {
		t.Fatalf("retained ID: status = %d, want 200", got)
	}
}
