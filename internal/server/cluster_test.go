package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lily"
	"lily/internal/cluster"
	"lily/internal/engine"
)

// TestCachePeekEndpoint covers the peek protocol solo: malformed digest,
// clean miss, and a hit that round-trips the mapped netlist.
func TestCachePeekEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)

	r, err := http.Get(ts.URL + "/v1/cache/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed digest: status = %d, want 400", r.StatusCode)
	}

	miss := strings.Repeat("0", 64)
	r, err = http.Get(ts.URL + "/v1/cache/" + miss)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown digest: status = %d, want 404", r.StatusCode)
	}

	// Compute a job with emit_blif; its outcome must then be peekable.
	resp := postJSON(t, ts.URL+"/v1/jobs", SubmitRequest{
		Benchmark: "misex1",
		EmitBLIF:  true,
		Options:   JobOptions{Mapper: "lily", Objective: "area"},
	})
	sub := decode[SubmitResponse](t, resp)
	var digest string
	deadline := time.Now().Add(60 * time.Second)
	for {
		pr, err := http.Get(ts.URL + sub.Status + "?wait=2s")
		if err != nil {
			t.Fatal(err)
		}
		st := decode[engine.Status](t, pr)
		if st.State == "done" {
			digest = st.Digest
			break
		}
		if st.State == "failed" || st.State == "canceled" || time.Now().After(deadline) {
			t.Fatalf("job did not finish: %+v", st)
		}
	}
	if len(digest) != 64 {
		t.Fatalf("status digest = %q, want 64 hex chars", digest)
	}

	r, err = http.Get(ts.URL + "/v1/cache/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("peek after compute: status = %d, want 200", r.StatusCode)
	}
	wo := decode[cluster.WireOutcome](t, r)
	if wo.Digest != digest || wo.Result == nil || len(wo.MappedBLIF) == 0 {
		t.Fatalf("incomplete peeked outcome: digest=%q result=%v blif=%d bytes",
			wo.Digest, wo.Result != nil, len(wo.MappedBLIF))
	}
}

// TestClusterJobEndpoint covers the proxy protocol solo: a well-formed
// wire job computes and echoes its digest; a skewed digest answers 409;
// a job without a circuit answers 400.
func TestClusterJobEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)

	circ, err := lily.GenerateBenchmark("misex1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := circ.WriteBLIF(&buf); err != nil {
		t.Fatal(err)
	}
	opt := lily.FlowOptions{Mapper: lily.MapperLily, Objective: lily.ObjectiveArea}
	digest, err := engine.RequestDigest(engine.Request{BLIF: buf.Bytes(), Options: opt})
	if err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, ts.URL+"/v1/cluster/jobs", cluster.WireJob{
		Digest: digest, BLIF: buf.String(), Options: opt,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wire job: status = %d, want 200", resp.StatusCode)
	}
	wo := decode[cluster.WireOutcome](t, resp)
	if wo.Digest != digest || wo.Result == nil || wo.Result.Gates == 0 {
		t.Fatalf("bad wire outcome: %+v", wo)
	}

	resp = postJSON(t, ts.URL+"/v1/cluster/jobs", cluster.WireJob{
		Digest: strings.Repeat("0", 64), BLIF: buf.String(), Options: opt,
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("skewed digest: status = %d, want 409", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/v1/cluster/jobs", cluster.WireJob{Digest: digest})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty wire job: status = %d, want 400", resp.StatusCode)
	}
}

// clusterNode is one in-process lilyd equivalent: engine + cluster layer
// + HTTP server, with a swappable handler so the trio's URLs can exist
// before the servers behind them are built.
type clusterNode struct {
	id      string
	ts      *httptest.Server
	handler atomic.Value // of handlerBox
	eng     *engine.Engine
	clu     *cluster.Cluster
}

// handlerBox gives atomic.Value a single concrete type to store across
// handler swaps.
type handlerBox struct{ h http.Handler }

// newTrio builds a 3-node in-process cluster wired exactly like three
// lilyd processes with the same membership flags.
func newTrio(t *testing.T) []*clusterNode {
	t.Helper()
	ids := []string{"n1", "n2", "n3"}
	nodes := make([]*clusterNode, len(ids))
	for i, id := range ids {
		n := &clusterNode{id: id}
		n.handler.Store(handlerBox{http.NotFoundHandler()})
		n.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			n.handler.Load().(handlerBox).h.ServeHTTP(w, r)
		}))
		nodes[i] = n
	}
	for i, n := range nodes {
		var peers []cluster.Node
		for j, p := range nodes {
			if j != i {
				peers = append(peers, cluster.Node{ID: p.id, URL: p.ts.URL})
			}
		}
		clu, err := cluster.New(cluster.Config{
			Self:          n.id,
			Peers:         peers,
			ProbeInterval: 50 * time.Millisecond,
			PeekTimeout:   2 * time.Second,
			ProxyTimeout:  60 * time.Second,
		})
		if err != nil {
			t.Fatalf("cluster.New(%s): %v", n.id, err)
		}
		n.clu = clu
		n.eng = engine.New(engine.Config{
			Workers: 2,
			Metrics: clu.Registry(),
			Remote:  clu.Remote,
		})
		n.handler.Store(handlerBox{New(n.eng, WithCluster(clu))})
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.ts.Close()
			n.clu.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			_ = n.eng.Shutdown(ctx)
			cancel()
		}
	})
	return nodes
}

// blifOwnedBy fabricates a tiny circuit whose request digest the wanted
// node owns under the trio's ring.
// start offsets the search so successive calls find distinct circuits.
func blifOwnedBy(t *testing.T, ring []string, want string, opt lily.FlowOptions, start int) (string, string) {
	t.Helper()
	for i := start; i < start+10000; i++ {
		src := fmt.Sprintf(".model own%d\n.inputs a b c\n.outputs y\n.names a b t\n11 1\n.names t c y\n10 1\n.end\n", i)
		d, err := engine.RequestDigest(engine.Request{BLIF: []byte(src), Options: opt})
		if err != nil {
			t.Fatal(err)
		}
		if cluster.Owner(d, ring) == want {
			return src, d
		}
	}
	t.Fatalf("no digest owned by %s in 10000 tries", want)
	return "", ""
}

// runJob submits one inline-BLIF job to a node and polls it terminal.
func runJob(t *testing.T, ts *httptest.Server, blif string) engine.Status {
	t.Helper()
	resp := postJSON(t, ts.URL+"/v1/jobs", SubmitRequest{
		BLIF:    blif,
		Options: JobOptions{Mapper: "lily", Objective: "area"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status = %d, want 202", resp.StatusCode)
	}
	sub := decode[SubmitResponse](t, resp)
	deadline := time.Now().Add(60 * time.Second)
	for {
		pr, err := http.Get(ts.URL + sub.Status + "?wait=2s")
		if err != nil {
			t.Fatal(err)
		}
		st := decode[engine.Status](t, pr)
		if st.State == "done" || st.State == "failed" || st.State == "canceled" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", st)
		}
	}
}

// TestThreeNodeClusterRoutesAndDegrades is the subsystem's end-to-end
// acceptance at the HTTP level: requests route to their digest's owner,
// repeat requests hit the owner's cache from any node, stats expose the
// node identity and tier counters, and a killed owner degrades to local
// compute (job still succeeds) with the spill visible in /metrics.
func TestThreeNodeClusterRoutesAndDegrades(t *testing.T) {
	nodes := newTrio(t)
	n1, n2, n3 := nodes[0], nodes[1], nodes[2]
	ring := n1.clu.Nodes()
	opt := lily.FlowOptions{Mapper: lily.MapperLily, Objective: lily.ObjectiveArea}

	// A job submitted to n1 but owned by n2 must be computed by n2.
	src, digest := blifOwnedBy(t, ring, "n2", opt, 0)
	st := runJob(t, n1.ts, src)
	if st.State != "done" {
		t.Fatalf("routed job finished %s (%s)", st.State, st.Error)
	}
	if st.Digest != digest {
		t.Fatalf("server digest %s, client-side predicted %s", st.Digest, digest)
	}
	if !st.RemoteHit {
		t.Fatalf("n1 job owned by n2 not served remotely: %+v", st)
	}
	if misses := n2.eng.Stats().CacheMisses; misses != 1 {
		t.Fatalf("owner n2 computed %d jobs, want 1", misses)
	}
	if info := n1.clu.Info(); info.Proxied != 1 {
		t.Fatalf("n1 cluster counters = %+v, want 1 proxied", info)
	}

	// The same request from n3 must hit n2's cache, not recompute.
	st = runJob(t, n3.ts, src)
	if st.State != "done" || !st.RemoteHit {
		t.Fatalf("n3 repeat not served from owner cache: %+v", st)
	}
	if misses := n2.eng.Stats().CacheMisses; misses != 1 {
		t.Fatalf("owner n2 recomputed: %d misses, want still 1", misses)
	}
	if info := n3.clu.Info(); info.RemoteHits != 1 || info.Proxied != 0 {
		t.Fatalf("n3 cluster counters = %+v, want 1 remote cache hit", info)
	}

	// /v1/stats carries the node identity, tier counters, and peer health.
	r, err := http.Get(n3.ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decode[StatsResponse](t, r)
	if stats.NodeID != "n3" {
		t.Fatalf("stats node_id = %q, want n3", stats.NodeID)
	}
	if stats.CacheTier.RemoteHits != 1 || stats.CacheTier.LocalHits != 0 {
		t.Fatalf("stats cache_tier = %+v, want 1 remote hit", stats.CacheTier)
	}
	if stats.Cluster == nil || stats.Cluster.Self != "n3" || len(stats.Cluster.Peers) != 2 {
		t.Fatalf("stats cluster block = %+v", stats.Cluster)
	}

	// Kill the owner: a fresh n2-owned digest must still complete (local
	// or next-in-rank compute — never a failed job) and the spill must be
	// observable.
	n2.ts.Close()
	src2, _ := blifOwnedBy(t, ring, "n2", opt, 10000)
	st = runJob(t, n1.ts, src2)
	if st.State != "done" {
		t.Fatalf("job with dead owner finished %s (%s), want done", st.State, st.Error)
	}
	if spills := n1.clu.Info().Spills; spills == 0 {
		t.Fatalf("dead owner produced no spill on n1")
	}
	mr, err := http.Get(n1.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	var metrics bytes.Buffer
	if _, err := metrics.ReadFrom(mr.Body); err != nil {
		t.Fatal(err)
	}
	text := metrics.String()
	for _, want := range []string{"lily_cluster_spills_total", "lily_cluster_peer_up", "lily_cluster_proxied_total"} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %s", want)
		}
	}

	// The probes notice the death: n2 flips to down in n1's peer view.
	deadline := time.Now().Add(5 * time.Second)
	for {
		up := false
		for _, p := range n1.clu.Info().Peers {
			if p.ID == "n2" {
				up = p.Up
			}
		}
		if !up {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("n1 never marked dead n2 down")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
