package server

// HTTP-level lifecycle tests: load-shed 429, DELETE + 410 Gone for
// evicted/deleted IDs, long-poll clamping, and timeout_ms validation.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lily"
	"lily/internal/engine"
)

// newFakeServer wires a test server over an engine with an injected
// runner so lifecycle paths don't pay for real mapping runs.
func newFakeServer(t *testing.T, cfg engine.Config) (*httptest.Server, *engine.Engine) {
	t.Helper()
	eng := engine.New(cfg)
	ts := httptest.NewServer(New(eng))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = eng.Shutdown(ctx)
	})
	return ts, eng
}

func doRequest(t *testing.T, method, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// submitAndFinish posts a job and long-polls it to "done".
func submitAndFinish(t *testing.T, ts *httptest.Server, benchmark string) SubmitResponse {
	t.Helper()
	resp := postJSON(t, ts.URL+"/v1/jobs", SubmitRequest{Benchmark: benchmark})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit %s status = %d, want 202", benchmark, resp.StatusCode)
	}
	sub := decode[SubmitResponse](t, resp)
	r, err := http.Get(ts.URL + sub.Status + "?wait=10s")
	if err != nil {
		t.Fatal(err)
	}
	st := decode[engine.Status](t, r)
	if st.State != "done" {
		t.Fatalf("job %s state = %s (%s), want done", sub.ID, st.State, st.Error)
	}
	return sub
}

func TestNegativeTimeoutMSRejected(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"benchmark":"misex1","timeout_ms":-100}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative timeout_ms status = %d, want 400", resp.StatusCode)
	}
}

func TestWaitParamValidationAndClamp(t *testing.T) {
	ts, _ := newFakeServer(t, engine.Config{
		Workers: 1,
		Run: func(ctx context.Context, c *lily.Circuit, req engine.Request) (*engine.Outcome, error) {
			return &engine.Outcome{Result: &lily.FlowResult{Circuit: req.Benchmark, Gates: 1}}, nil
		},
	})
	sub := submitAndFinish(t, ts, "misex1")

	for _, bad := range []string{"banana", "-5s", "5"} {
		r, err := http.Get(ts.URL + sub.Status + "?wait=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("wait=%q status = %d, want 400", bad, r.StatusCode)
		}
	}

	// An absurd wait is clamped, not honoured: the job is terminal, so
	// the (clamped) long-poll returns immediately rather than parking
	// the connection for 10000 hours.
	start := time.Now()
	r, err := http.Get(ts.URL + sub.Status + "?wait=10000h")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("clamped wait status = %d, want 200", r.StatusCode)
	}
	st := decode[engine.Status](t, r)
	if st.State != "done" {
		t.Fatalf("state = %s, want done", st.State)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("clamped wait blocked for %v", elapsed)
	}
}

func TestQueueFullAnswers429(t *testing.T) {
	gate := make(chan struct{})
	ts, eng := newFakeServer(t, engine.Config{
		Workers: 1, QueueDepth: 1, LoadShed: true, CacheEntries: -1,
		Run: func(ctx context.Context, c *lily.Circuit, req engine.Request) (*engine.Outcome, error) {
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return &engine.Outcome{Result: &lily.FlowResult{Circuit: req.Benchmark, Gates: 1}}, nil
		},
	})
	defer close(gate)

	resp := postJSON(t, ts.URL+"/v1/jobs", SubmitRequest{Benchmark: "misex1"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1 status = %d, want 202", resp.StatusCode)
	}
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().Running != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("worker never picked up the first job")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp = postJSON(t, ts.URL+"/v1/jobs", SubmitRequest{Benchmark: "b9"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2 status = %d, want 202", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/v1/jobs", SubmitRequest{Benchmark: "C432"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit on full queue status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatalf("429 response missing Retry-After header")
	}
	if shed := eng.Stats().Shed; shed != 1 {
		t.Fatalf("stats.Shed = %d, want 1", shed)
	}
}

func TestDeleteAndEvictionAnswerGone(t *testing.T) {
	ts, _ := newFakeServer(t, engine.Config{
		Workers: 1, MaxRetainedJobs: 2, CacheEntries: -1,
		Run: func(ctx context.Context, c *lily.Circuit, req engine.Request) (*engine.Outcome, error) {
			return &engine.Outcome{Result: &lily.FlowResult{Circuit: req.Benchmark, Gates: 1}}, nil
		},
	})

	var subs []SubmitResponse
	for _, n := range []string{"misex1", "b9", "C432", "e64", "apex7"} {
		subs = append(subs, submitAndFinish(t, ts, n))
	}

	// The first three were evicted oldest-first; their IDs answer 410 on
	// every job endpoint, not 404 (they did exist).
	for _, sub := range subs[:3] {
		for _, url := range []string{sub.Status, sub.Result} {
			r, err := http.Get(ts.URL + url)
			if err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
			if r.StatusCode != http.StatusGone {
				t.Errorf("GET %s status = %d, want 410", url, r.StatusCode)
			}
		}
	}

	// Deleting a retained terminal job frees its slot and makes the ID Gone.
	r := doRequest(t, http.MethodDelete, ts.URL+subs[3].Status)
	r.Body.Close()
	if r.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE status = %d, want 204", r.StatusCode)
	}
	r, err := http.Get(ts.URL + subs[3].Status)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusGone {
		t.Fatalf("GET after DELETE status = %d, want 410", r.StatusCode)
	}
	r = doRequest(t, http.MethodDelete, ts.URL+subs[3].Status)
	r.Body.Close()
	if r.StatusCode != http.StatusGone {
		t.Fatalf("second DELETE status = %d, want 410", r.StatusCode)
	}

	// Never-issued IDs stay 404.
	for _, id := range []string{"job-999999", "bogus"} {
		r = doRequest(t, http.MethodDelete, ts.URL+"/v1/jobs/"+id)
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("DELETE unknown %s status = %d, want 404", id, r.StatusCode)
		}
	}
}

func TestDeleteActiveJobConflicts(t *testing.T) {
	gate := make(chan struct{})
	ts, eng := newFakeServer(t, engine.Config{
		Workers: 1, CacheEntries: -1,
		Run: func(ctx context.Context, c *lily.Circuit, req engine.Request) (*engine.Outcome, error) {
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return &engine.Outcome{Result: &lily.FlowResult{Circuit: req.Benchmark, Gates: 1}}, nil
		},
	})

	resp := postJSON(t, ts.URL+"/v1/jobs", SubmitRequest{Benchmark: "misex1"})
	sub := decode[SubmitResponse](t, resp)
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().Running != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	r := doRequest(t, http.MethodDelete, ts.URL+sub.Status)
	r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE running job status = %d, want 409", r.StatusCode)
	}
	close(gate)
	r, err := http.Get(ts.URL + sub.Status + "?wait=10s")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	r = doRequest(t, http.MethodDelete, ts.URL+sub.Status)
	r.Body.Close()
	if r.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE finished job status = %d, want 204", r.StatusCode)
	}
}

// TestSoakEvictedIDsOverHTTP drives 10× MaxRetainedJobs submissions
// through the HTTP API and verifies the registry bound plus 410s for
// every evicted ID — the end-to-end memory-leak regression.
func TestSoakEvictedIDsOverHTTP(t *testing.T) {
	const max = 10
	const n = 10 * max
	ts, eng := newFakeServer(t, engine.Config{
		Workers: 2, MaxRetainedJobs: max, CacheEntries: -1,
		Run: func(ctx context.Context, c *lily.Circuit, req engine.Request) (*engine.Outcome, error) {
			return &engine.Outcome{Result: &lily.FlowResult{Circuit: req.Benchmark, Gates: 1}}, nil
		},
	})

	var subs []SubmitResponse
	for i := 0; i < n; i++ {
		sub := submitAndFinish(t, ts, "misex1")
		subs = append(subs, sub)
	}
	if jobs := len(eng.Jobs()); jobs > max {
		t.Fatalf("registry holds %d jobs after HTTP soak, want <= %d", jobs, max)
	}
	for i, sub := range subs[:n-max] {
		r, err := http.Get(ts.URL + sub.Status)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusGone {
			t.Fatalf("evicted job %d (%s) status = %d, want 410", i, sub.ID, r.StatusCode)
		}
	}
	// And the listing only ever exposes the retained tail.
	r, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	listed := decode[[]engine.Status](t, r)
	if len(listed) > max {
		t.Fatalf("GET /v1/jobs lists %d jobs, want <= %d", len(listed), max)
	}
	for _, st := range listed {
		if st.State != "done" {
			t.Fatalf("listed job %s in state %s, want done", st.ID, st.State)
		}
	}
}
