package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lily"
	"lily/internal/engine"
)

func newTestServer(t *testing.T) (*httptest.Server, *engine.Engine) {
	t.Helper()
	eng := engine.New(engine.Config{Workers: 2})
	ts := httptest.NewServer(New(eng))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = eng.Shutdown(ctx)
	})
	return ts, eng
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return v
}

// TestSubmitPollResultSVG is the end-to-end session the README documents:
// submit a benchmark job, poll it to completion, fetch the FlowResult, and
// download the layout SVG.
func TestSubmitPollResultSVG(t *testing.T) {
	ts, _ := newTestServer(t)

	resp := postJSON(t, ts.URL+"/v1/jobs", SubmitRequest{
		Benchmark: "misex1",
		SVG:       true,
		Options:   JobOptions{Mapper: "lily", Objective: "area"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	sub := decode[SubmitResponse](t, resp)
	if sub.ID == "" || sub.Status == "" || sub.SVG == "" {
		t.Fatalf("incomplete submit response: %+v", sub)
	}

	// Poll (with long-poll waits) until the job terminates.
	var status engine.Status
	deadline := time.Now().Add(60 * time.Second)
	for {
		r, err := http.Get(ts.URL + sub.Status + "?wait=2s")
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("poll status = %d, want 200", r.StatusCode)
		}
		status = decode[engine.Status](t, r)
		if status.State == "done" || status.State == "failed" || status.State == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", status.State)
		}
	}
	if status.State != "done" {
		t.Fatalf("job finished %s (%s), want done", status.State, status.Error)
	}
	if status.RunTime <= 0 {
		t.Fatalf("finished job reports no run time: %+v", status)
	}

	r, err := http.Get(ts.URL + sub.Result)
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d, want 200", r.StatusCode)
	}
	res := decode[lily.FlowResult](t, r)
	if res.Circuit != "misex1" || res.Gates == 0 || res.ChipAreaMM2 <= 0 {
		t.Fatalf("implausible FlowResult: %+v", res)
	}

	r, err = http.Get(ts.URL + sub.SVG)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("svg status = %d, want 200", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Fatalf("svg content-type = %q", ct)
	}
	var svg bytes.Buffer
	if _, err := svg.ReadFrom(r.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), "<svg") {
		t.Fatalf("svg body missing <svg element (%d bytes)", svg.Len())
	}
}

func TestSubmitUploadedBLIF(t *testing.T) {
	ts, _ := newTestServer(t)

	// Round-trip a benchmark through its BLIF serialization so the upload
	// path exercises a realistic netlist.
	c, err := lily.GenerateBenchmark("misex1")
	if err != nil {
		t.Fatal(err)
	}
	var blif strings.Builder
	if err := c.WriteBLIF(&blif); err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts.URL+"/v1/jobs", SubmitRequest{
		BLIF:    blif.String(),
		Options: JobOptions{Mapper: "mis"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	sub := decode[SubmitResponse](t, resp)

	r, err := http.Get(ts.URL + sub.Status + "?wait=30s")
	if err != nil {
		t.Fatal(err)
	}
	status := decode[engine.Status](t, r)
	if status.State != "done" {
		t.Fatalf("uploaded-BLIF job state = %s (%s), want done", status.State, status.Error)
	}
	r, err = http.Get(ts.URL + sub.Result)
	if err != nil {
		t.Fatal(err)
	}
	res := decode[lily.FlowResult](t, r)
	if res.Gates == 0 {
		t.Fatalf("empty mapping from uploaded BLIF: %+v", res)
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t)

	cases := []struct {
		name string
		body string
		want int
	}{
		{"no source", `{"options":{}}`, http.StatusBadRequest},
		{"unknown benchmark", `{"benchmark":"nope"}`, http.StatusBadRequest},
		{"bad mapper", `{"benchmark":"misex1","options":{"mapper":"abc"}}`, http.StatusBadRequest},
		{"bad objective", `{"benchmark":"misex1","options":{"objective":"speed"}}`, http.StatusBadRequest},
		{"unknown field", `{"benchmark":"misex1","bogus":1}`, http.StatusBadRequest},
		{"garbage", `{{{`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	r, err := http.Get(ts.URL + "/v1/jobs/job-424242")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", r.StatusCode)
	}
	r, err = http.Get(ts.URL + "/v1/jobs/job-424242/result")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job result status = %d, want 404", r.StatusCode)
	}
}

func TestResultBeforeCompletionConflicts(t *testing.T) {
	eng := engine.New(engine.Config{
		Workers: 1,
		Run: func(ctx context.Context, c *lily.Circuit, req engine.Request) (*engine.Outcome, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	ts := httptest.NewServer(New(eng))
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = eng.Shutdown(ctx)
	}()

	resp := postJSON(t, ts.URL+"/v1/jobs", SubmitRequest{Benchmark: "misex1"})
	sub := decode[SubmitResponse](t, resp)
	r, err := http.Get(ts.URL + sub.Result)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Fatalf("early result fetch status = %d, want 409", r.StatusCode)
	}
}

func TestStatsBenchmarksHealth(t *testing.T) {
	ts, _ := newTestServer(t)

	r, err := http.Get(ts.URL + "/v1/benchmarks")
	if err != nil {
		t.Fatal(err)
	}
	names := decode[[]string](t, r)
	if len(names) != len(lily.BenchmarkNames()) {
		t.Fatalf("benchmarks = %d entries, want %d", len(names), len(lily.BenchmarkNames()))
	}

	r, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decode[engine.Stats](t, r)
	if stats.Workers != 2 {
		t.Fatalf("stats.Workers = %d, want 2", stats.Workers)
	}

	r, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health := decode[map[string]string](t, r)
	if health["status"] != "ok" {
		t.Fatalf("health = %v", health)
	}

	r, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	if got := decode[[]engine.Status](t, r); len(got) != 0 {
		t.Fatalf("fresh server lists %d jobs, want 0", len(got))
	}
}
