// Batch API: submit a whole suite of jobs in one round trip and stream
// per-job results as they land. POST /v1/batches fans the jobs out
// across the engine (and, in cluster mode, across the peer ring — each
// job routes to its digest's owner independently); GET /v1/batches/{id}
// answers NDJSON, one line per job in completion order, flushed as each
// result arrives, so a suite client overlaps its processing with the
// cluster's compute. cmd/tables -server uses exactly this path.

package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"lily"
	"lily/internal/engine"
)

const (
	// maxBatchJobs bounds one batch (the full benchmark suite is ~30
	// jobs; 1024 leaves room for parameter sweeps).
	maxBatchJobs = 1024
	// maxRetainedBatches bounds the registry; the oldest batch is
	// evicted first and its ID answers 410 Gone afterwards. Jobs keep
	// their own (engine) retention either way.
	maxRetainedBatches = 128
)

// batchEntry pairs one submitted job with its position in the request.
type batchEntry struct {
	index     int
	benchmark string
	job       *engine.Job
}

// batch is one accepted suite submission.
type batch struct {
	id      string
	seq     uint64
	created time.Time
	entries []batchEntry
}

// terminalCount reports how many of the batch's jobs have finished.
func (b *batch) terminalCount() int {
	n := 0
	for _, e := range b.entries {
		select {
		case <-e.job.Done():
			n++
		default:
		}
	}
	return n
}

// batchRegistry is a bounded, creation-ordered batch store. The zero
// value is ready to use.
type batchRegistry struct {
	mu    sync.Mutex
	seq   uint64
	byID  map[string]*batch
	order []*batch // creation order; evicted from the front
}

func (r *batchRegistry) add(entries []batchEntry) *batch {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byID == nil {
		r.byID = make(map[string]*batch)
	}
	r.seq++
	b := &batch{
		id:      fmt.Sprintf("batch-%06d", r.seq),
		seq:     r.seq,
		created: time.Now(),
		entries: entries,
	}
	r.byID[b.id] = b
	r.order = append(r.order, b)
	for len(r.order) > maxRetainedBatches {
		evict := r.order[0]
		r.order = r.order[1:]
		delete(r.byID, evict.id)
	}
	return b
}

func (r *batchRegistry) get(id string) (*batch, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.byID[id]
	return b, ok
}

// forgotten reports whether id names a batch this registry once issued
// but evicted — the 404-vs-410 distinction, tombstone-free because IDs
// are dense over a monotone sequence (same scheme as engine.Forgotten).
func (r *batchRegistry) forgotten(id string) bool {
	num, ok := strings.CutPrefix(id, "batch-")
	if !ok {
		return false
	}
	seq, err := strconv.ParseUint(num, 10, 64)
	if err != nil || fmt.Sprintf("batch-%06d", seq) != id {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if seq == 0 || seq > r.seq {
		return false
	}
	_, present := r.byID[id]
	return !present
}

func (r *batchRegistry) list() []*batch {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*batch, len(r.order))
	copy(out, r.order)
	return out
}

// BatchSubmitRequest is the POST /v1/batches body.
type BatchSubmitRequest struct {
	// Jobs are submitted atomically: either every job is accepted or the
	// whole batch is rejected (and any partially submitted jobs are
	// cancelled).
	Jobs []SubmitRequest `json:"jobs"`
}

// BatchJobRef identifies one job of an accepted batch.
type BatchJobRef struct {
	Index     int    `json:"index"`
	JobID     string `json:"job_id"`
	Digest    string `json:"digest"`
	Benchmark string `json:"benchmark,omitempty"`
}

// BatchSubmitResponse acknowledges an accepted batch.
type BatchSubmitResponse struct {
	ID     string        `json:"id"`
	Jobs   int           `json:"jobs"`
	Stream string        `json:"stream_url"`
	Refs   []BatchJobRef `json:"refs"`
}

// BatchSummary is one row of GET /v1/batches.
type BatchSummary struct {
	ID        string    `json:"id"`
	Jobs      int       `json:"jobs"`
	Done      int       `json:"done"`
	CreatedAt time.Time `json:"created_at"`
}

// BatchResult is one NDJSON line of GET /v1/batches/{id}: a finished
// job's identity, provenance flags, and result. BLIFSHA256 is present
// when the job was submitted with emit_blif — it is the same hash the
// golden harness pins, so a suite client can assert cluster-wide
// determinism line by line.
type BatchResult struct {
	Index      int              `json:"index"`
	JobID      string           `json:"job_id"`
	Benchmark  string           `json:"benchmark,omitempty"`
	Digest     string           `json:"digest"`
	State      string           `json:"state"`
	CacheHit   bool             `json:"cache_hit,omitempty"`
	RemoteHit  bool             `json:"remote_hit,omitempty"`
	Error      string           `json:"error,omitempty"`
	BLIFSHA256 string           `json:"blif_sha256,omitempty"`
	Result     *lily.FlowResult `json:"result,omitempty"`
}

func (s *Server) handleBatchSubmit(w http.ResponseWriter, r *http.Request) {
	var req BatchSubmitRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Jobs) == 0 || len(req.Jobs) > maxBatchJobs {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch must hold 1..%d jobs (got %d)", maxBatchJobs, len(req.Jobs)))
		return
	}
	// Validate everything before submitting anything, so a malformed job
	// in the middle cannot leave half a batch running.
	ereqs := make([]engine.Request, len(req.Jobs))
	for i, jr := range req.Jobs {
		if jr.Options.Target == "" {
			jr.Options.Target = s.defaultTarget.String()
		}
		if jr.Options.MultilevelThreshold == 0 {
			jr.Options.MultilevelThreshold = s.defaultMLThreshold
		}
		opt, err := jr.Options.ToFlowOptions()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("job %d: %w", i, err))
			return
		}
		if ereqs[i], err = jr.toEngineRequest(opt); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("job %d: %w", i, err))
			return
		}
	}
	entries := make([]batchEntry, 0, len(ereqs))
	for i, ereq := range ereqs {
		// Detached from r.Context(): the jobs must outlive this HTTP
		// request (same as single submit).
		j, err := s.eng.Submit(context.Background(), ereq)
		if err != nil {
			for _, e := range entries {
				e.job.Cancel()
			}
			status := http.StatusBadRequest
			switch {
			case errors.Is(err, engine.ErrClosed):
				status = http.StatusServiceUnavailable
			case errors.Is(err, engine.ErrQueueFull):
				w.Header().Set("Retry-After", "1")
				status = http.StatusTooManyRequests
			}
			writeError(w, status, fmt.Errorf("job %d: %w", i, err))
			return
		}
		entries = append(entries, batchEntry{index: i, benchmark: req.Jobs[i].Benchmark, job: j})
	}
	b := s.batches.add(entries)
	resp := BatchSubmitResponse{
		ID:     b.id,
		Jobs:   len(entries),
		Stream: "/v1/batches/" + b.id,
		Refs:   make([]BatchJobRef, len(entries)),
	}
	for i, e := range entries {
		resp.Refs[i] = BatchJobRef{
			Index:     e.index,
			JobID:     e.job.ID(),
			Digest:    e.job.Key(),
			Benchmark: e.benchmark,
		}
	}
	writeJSON(w, http.StatusAccepted, resp)
}

func (s *Server) handleBatchList(w http.ResponseWriter, r *http.Request) {
	batches := s.batches.list()
	out := make([]BatchSummary, len(batches))
	for i, b := range batches {
		out[i] = BatchSummary{
			ID:        b.id,
			Jobs:      len(b.entries),
			Done:      b.terminalCount(),
			CreatedAt: b.created,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// batchStreamWriteTimeout bounds each NDJSON line write. A client that
// stops reading (but keeps the connection open) fills the kernel send
// buffer; without a deadline the encoder's Write blocks forever and the
// handler goroutine — plus its per-job waiter goroutines — is pinned for
// the life of the connection. Variable so the regression test can tighten
// it without stalling for a minute.
var batchStreamWriteTimeout = 60 * time.Second

// handleBatchStream writes one NDJSON line per job, in completion order,
// flushing after each so results stream while the rest of the batch is
// still computing. The stream ends when every job has been reported; a
// client disconnect — or one that stalls past batchStreamWriteTimeout —
// stops it early without touching the jobs.
func (s *Server) handleBatchStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	b, ok := s.batches.get(id)
	if !ok {
		if s.batches.forgotten(id) {
			writeError(w, http.StatusGone,
				fmt.Errorf("batch %s is no longer retained (evicted)", id))
		} else {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown batch %q", id))
		}
		return
	}
	ctx := r.Context()
	completed := make(chan int, len(b.entries))
	for i := range b.entries {
		go func(i int) {
			select {
			case <-b.entries[i].job.Done():
				completed <- i
			case <-ctx.Done():
			}
		}(i)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	// ResponseController reaches Flush/SetWriteDeadline through wrapper
	// writers (the metrics statusRecorder) via their Unwrap chain — a
	// plain w.(http.Flusher) assertion sees only the wrapper and fails.
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	for n := 0; n < len(b.entries); n++ {
		select {
		case i := <-completed:
			// Arm a per-line write deadline so a stalled reader cannot
			// pin this goroutine once the TCP window fills. The error is
			// ignored: on writers without deadline support we just keep
			// the old blocking behavior.
			_ = rc.SetWriteDeadline(time.Now().Add(batchStreamWriteTimeout))
			if err := enc.Encode(batchResult(b.entries[i])); err != nil {
				return // client gone or stalled past the deadline
			}
			if err := rc.Flush(); err != nil {
				return
			}
		case <-ctx.Done():
			return
		}
	}
	// Disarm the deadline so the server's connection teardown isn't
	// bounded by the last line's remaining budget.
	_ = rc.SetWriteDeadline(time.Time{})
}

// batchResult renders one terminal job as its stream line.
func batchResult(e batchEntry) BatchResult {
	st := e.job.Status()
	res := BatchResult{
		Index:     e.index,
		JobID:     st.ID,
		Benchmark: e.benchmark,
		Digest:    st.Digest,
		State:     st.State,
		CacheHit:  st.CacheHit,
		RemoteHit: st.RemoteHit,
		Error:     st.Error,
	}
	if out := e.job.Outcome(); out != nil {
		res.Result = out.Result
		if len(out.MappedBLIF) > 0 {
			sum := sha256.Sum256(out.MappedBLIF)
			res.BLIFSHA256 = hex.EncodeToString(sum[:])
		}
	}
	return res
}
