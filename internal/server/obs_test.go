package server

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"lily/internal/engine"
	"lily/internal/obs"
)

// newTracedServer builds a server whose engine records phase traces.
func newTracedServer(t *testing.T) *httptest.Server {
	t.Helper()
	eng := engine.New(engine.Config{Workers: 2, Trace: true})
	ts := httptest.NewServer(New(eng))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = eng.Shutdown(ctx)
	})
	return ts
}

// scrapeMetrics fetches /metrics and parses the exposition strictly:
// every sample line must be preceded by a TYPE line for its family, and
// values must parse as floats. Returns sample -> value.
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != PrometheusContentType {
		t.Fatalf("/metrics Content-Type = %q, want %q", ct, PrometheusContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	samples := make(map[string]float64)
	typed := make(map[string]bool)
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, ok := strings.Cut(rest, " ")
			if !ok || (kind != "counter" && kind != "gauge" && kind != "histogram") {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[name] = true
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		key, valStr := line[:i], line[i+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("unparsable value in %q: %v", line, err)
		}
		base := key
		if j := strings.IndexByte(base, '{'); j >= 0 {
			base = base[:j]
		}
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(base,
			"_bucket"), "_sum"), "_count")
		if !typed[family] && !typed[base] {
			t.Fatalf("sample %q has no preceding TYPE line", line)
		}
		samples[key] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

// submitAndWait submits a benchmark job and long-polls it to a terminal
// state, returning the job ID.
func submitAndWait(t *testing.T, base string, req SubmitRequest) string {
	t.Helper()
	resp := postJSON(t, base+"/v1/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	sub := decode[SubmitResponse](t, resp)
	deadline := time.Now().Add(120 * time.Second)
	for {
		r, err := http.Get(base + sub.Status + "?wait=2s")
		if err != nil {
			t.Fatal(err)
		}
		st := decode[engine.Status](t, r)
		switch st.State {
		case "done":
			return sub.ID
		case "failed", "canceled":
			t.Fatalf("job %s terminated %s: %s", sub.ID, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after deadline", sub.ID, st.State)
		}
	}
}

// TestMetricsEndpoint asserts the exposition parses, includes the
// acceptance-criteria families, and stays monotonically consistent while
// scraped concurrently with a stream of jobs.
func TestMetricsEndpoint(t *testing.T) {
	ts := newTracedServer(t)

	// Scrapers race the job stream: every scrape must parse and every
	// counter/histogram-count must be monotone non-decreasing.
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for g := 0; g < 2; g++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			var lastSubmitted, lastCount float64
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := scrapeMetrics(t, ts.URL)
				if v := s["lily_jobs_submitted_total"]; v < lastSubmitted {
					t.Errorf("lily_jobs_submitted_total went backwards: %v < %v", v, lastSubmitted)
					return
				} else {
					lastSubmitted = v
				}
				cnt := s["lily_job_duration_seconds_count"]
				if cnt < lastCount {
					t.Errorf("job duration count went backwards: %v < %v", cnt, lastCount)
					return
				}
				lastCount = cnt
				if inf := s[`lily_job_duration_seconds_bucket{le="+Inf"}`]; inf != cnt {
					t.Errorf("job duration _count %v != +Inf bucket %v", cnt, inf)
					return
				}
			}
		}()
	}

	var jobWG sync.WaitGroup
	for i := 0; i < 4; i++ {
		jobWG.Add(1)
		go func(i int) {
			defer jobWG.Done()
			submitAndWait(t, ts.URL, SubmitRequest{
				Benchmark: "misex1",
				Options:   JobOptions{Mapper: "lily", WireWeight: 0.5 + float64(i)*0.25},
			})
		}(i)
	}
	jobWG.Wait()
	close(stop)
	scrapeWG.Wait()

	s := scrapeMetrics(t, ts.URL)
	if got := s["lily_jobs_submitted_total"]; got < 4 {
		t.Errorf("lily_jobs_submitted_total = %v, want >= 4", got)
	}
	if got := s["lily_job_duration_seconds_count"]; got < 1 {
		t.Errorf("lily_job_duration_seconds_count = %v, want >= 1", got)
	}
	// Per-phase histogram: the default lily flow must have recorded at
	// least premap, placement, cover, layout, and timing durations.
	for _, phase := range []string{"premap", "placement", "cover", "layout", "timing"} {
		key := fmt.Sprintf("%s_count{phase=%q}", obs.MetricPhaseDuration, phase)
		if got := s[key]; got < 1 {
			t.Errorf("%s = %v, want >= 1", key, got)
		}
	}
	// Flow counters must have moved.
	for _, name := range []string{obs.MetricConesMapped, obs.MetricWireEvals, obs.MetricCGIterations} {
		if got := s[name]; got < 1 {
			t.Errorf("%s = %v, want >= 1", name, got)
		}
	}
	// HTTP-layer metrics cover the routes this test exercised.
	if got := s[`lily_http_requests_total{route="GET /metrics"}`]; got < 1 {
		t.Errorf("scrapes of /metrics not counted: %v", got)
	}
	if got := s[`lily_http_requests_total{route="POST /v1/jobs"}`]; got < 4 {
		t.Errorf("submits not counted: %v", got)
	}
	if got := s[`lily_http_responses_total{class="2xx"}`]; got < 5 {
		t.Errorf("2xx responses = %v, want >= 5", got)
	}
}

// collectSpanNames flattens a span forest into a name set.
func collectSpanNames(nodes []*obs.SpanNode, into map[string]int) {
	for _, n := range nodes {
		into[n.Name]++
		collectSpanNames(n.Children, into)
	}
}

// TestTraceEndpoint runs a full-featured flow and asserts the trace
// covers every pipeline phase the acceptance criteria name, with all
// spans ended and durations recorded.
func TestTraceEndpoint(t *testing.T) {
	ts := newTracedServer(t)
	id := submitAndWait(t, ts.URL, SubmitRequest{
		Benchmark: "misex1",
		Options: JobOptions{
			Mapper:         "lily",
			PreOptimize:    true,
			FanoutOptimize: true,
		},
	})

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d, want 200", resp.StatusCode)
	}
	tr := decode[TraceResponse](t, resp)
	if tr.ID != id || tr.State != "done" {
		t.Fatalf("trace header = %+v", tr)
	}
	if len(tr.Spans) == 0 {
		t.Fatal("empty span forest")
	}
	names := make(map[string]int)
	collectSpanNames(tr.Spans, names)
	for _, phase := range []string{"job", "preopt", "premap", "placement", "cover", "fanout", "layout", "timing"} {
		if names[phase] == 0 {
			t.Errorf("trace missing %q span (got %v)", phase, names)
		}
	}
	// A terminal job's trace must be fully ended.
	var assertEnded func(nodes []*obs.SpanNode)
	assertEnded = func(nodes []*obs.SpanNode) {
		for _, n := range nodes {
			if n.DurationNS < 0 {
				t.Errorf("span %q still running in terminal trace", n.Name)
			}
			assertEnded(n.Children)
		}
	}
	assertEnded(tr.Spans)

	// Unknown and malformed IDs behave like the status endpoint.
	r404, err := http.Get(ts.URL + "/v1/jobs/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Errorf("trace of unknown job = %d, want 404", r404.StatusCode)
	}
}

// TestTraceDisabled asserts that with tracing off the endpoint answers
// 404 for a real job rather than serving an empty tree.
func TestTraceDisabled(t *testing.T) {
	ts, _ := newTestServer(t) // Trace defaults to false
	id := submitAndWait(t, ts.URL, SubmitRequest{Benchmark: "misex1"})
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace with tracing disabled = %d, want 404", resp.StatusCode)
	}
}
