package decomp

import (
	"math/rand"
	"testing"

	"lily/internal/bench"
	"lily/internal/geom"
	"lily/internal/logic"
)

// evalBoth simulates src and its premapped form on the same random vectors
// and fails the test on any mismatch.
func evalBoth(t *testing.T, src, sub *logic.Network, trials int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for k := 0; k < trials; k++ {
		in := make(map[string]bool, len(src.PIs))
		for _, pi := range src.PIs {
			in[src.Nodes[pi].Name] = rng.Intn(2) == 1
		}
		want, err := src.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sub.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		for name := range want {
			if want[name] != got[name] {
				t.Fatalf("trial %d: output %s differs (src %v, subject %v)",
					k, name, want[name], got[name])
			}
		}
	}
}

func TestPremapAdder(t *testing.T) {
	src := logic.New("adder")
	a := src.AddPI("a")
	b := src.AddPI("b")
	cin := src.AddPI("cin")
	sum := src.AddLogic("sum", []logic.NodeID{a.ID, b.ID, cin.ID}, logic.XorSOP(3))
	maj := logic.NewSOP(3)
	maj.AddCube(logic.Cube{logic.LitPos, logic.LitPos, logic.LitDC})
	maj.AddCube(logic.Cube{logic.LitPos, logic.LitDC, logic.LitPos})
	maj.AddCube(logic.Cube{logic.LitDC, logic.LitPos, logic.LitPos})
	cout := src.AddLogic("cout", []logic.NodeID{a.ID, b.ID, cin.ID}, maj)
	src.MarkPO(sum.ID, "sum")
	src.MarkPO(cout.ID, "cout")

	res, err := Premap(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSubjectGraph(res.Inchoate); err != nil {
		t.Fatal(err)
	}
	evalBoth(t, src, res.Inchoate, 8, 1)
}

func TestPremapBenchmarksEquivalent(t *testing.T) {
	for _, name := range []string{"misex1", "b9", "C432"} {
		p, _ := bench.ProfileByName(name)
		src := bench.Generate(p)
		res, err := Premap(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := CheckSubjectGraph(res.Inchoate); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		evalBoth(t, src, res.Inchoate, 20, int64(len(name)))
	}
}

func TestPremapExpansionScale(t *testing.T) {
	// The paper's C5315 premaps to roughly 1900 base gates; our generator
	// plus decomposer should land in the same regime (1200-3200).
	p, _ := bench.ProfileByName("C5315")
	src := bench.Generate(p)
	res, err := Premap(src)
	if err != nil {
		t.Fatal(err)
	}
	n := res.Inchoate.NumLogic()
	if n < 1200 || n > 3200 {
		t.Errorf("C5315 inchoate size = %d, want ~1900", n)
	}
}

func TestPremapConstants(t *testing.T) {
	src := logic.New("consts")
	a := src.AddPI("a")
	one := src.AddLogic("one", nil, logic.ConstSOP(true))
	zero := src.AddLogic("zero", nil, logic.ConstSOP(false))
	inv := src.AddLogic("inv", []logic.NodeID{a.ID}, logic.NotSOP())
	src.MarkPO(one.ID, "one")
	src.MarkPO(zero.ID, "zero")
	src.MarkPO(inv.ID, "inv")
	res, err := Premap(src)
	if err != nil {
		t.Fatal(err)
	}
	evalBoth(t, src, res.Inchoate, 2, 3)
}

func TestPremapStructuralHashing(t *testing.T) {
	// Two nodes computing the same AND over the same fanins must share
	// subject-graph structure.
	src := logic.New("shared")
	a := src.AddPI("a")
	b := src.AddPI("b")
	x := src.AddLogic("x", []logic.NodeID{a.ID, b.ID}, logic.AndSOP(2))
	y := src.AddLogic("y", []logic.NodeID{a.ID, b.ID}, logic.AndSOP(2))
	src.MarkPO(x.ID, "x")
	src.MarkPO(y.ID, "y")
	res, err := Premap(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Root[x.ID] != res.Root[y.ID] {
		t.Error("identical nodes not hashed together")
	}
	// AND2 = NAND2 + INV: exactly two logic nodes.
	if got := res.Inchoate.NumLogic(); got != 2 {
		t.Errorf("subject graph has %d nodes, want 2", got)
	}
}

func TestPremapPlacedEquivalent(t *testing.T) {
	src := bench.Random(11, 12, 6, 60, 4)
	pos := make(map[logic.NodeID]geom.Point)
	rng := rand.New(rand.NewSource(5))
	for _, nd := range src.Nodes {
		if nd != nil {
			pos[nd.ID] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		}
	}
	res, err := PremapPlaced(src, pos)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSubjectGraph(res.Inchoate); err != nil {
		t.Fatal(err)
	}
	evalBoth(t, src, res.Inchoate, 20, 6)
}

func TestPremapPlacedRequiresPositions(t *testing.T) {
	src := bench.Random(1, 4, 2, 10, 3)
	if _, err := PremapPlaced(src, nil); err == nil {
		t.Error("expected error without positions")
	}
}

func TestSpatialOrderClusters(t *testing.T) {
	// Four leaves: two on the far left, two on the far right. After
	// spatial ordering, each pair must be adjacent so the balanced tree
	// keeps clusters together (Fig 1.1b).
	leaves := []leaf{
		{id: 1, pos: geom.Point{X: 0, Y: 0}},
		{id: 2, pos: geom.Point{X: 100, Y: 1}},
		{id: 3, pos: geom.Point{X: 1, Y: 2}},
		{id: 4, pos: geom.Point{X: 101, Y: 3}},
	}
	spatialOrder(leaves, true)
	left := map[logic.NodeID]bool{1: true, 3: true}
	if left[leaves[0].id] != left[leaves[1].id] {
		t.Errorf("left cluster split: %v", leaves)
	}
	if left[leaves[2].id] != left[leaves[3].id] {
		t.Errorf("right cluster split: %v", leaves)
	}
}

func TestInverterCollapses(t *testing.T) {
	b := newBuilder("t")
	x := b.net.AddPI("x")
	i1 := b.Inv(x.ID)
	i2 := b.Inv(i1)
	if i2 != x.ID {
		t.Error("double inversion not collapsed")
	}
	if b.Inv(x.ID) != i1 {
		t.Error("inverter not memoized")
	}
	if b.Nand2(x.ID, x.ID) != i1 {
		t.Error("NAND(x,x) should collapse to the inverter")
	}
}

func TestPremapPreservesPONames(t *testing.T) {
	src := bench.Random(2, 6, 4, 30, 3)
	res, err := Premap(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Inchoate.POs) != len(src.POs) {
		t.Fatalf("PO count changed: %d -> %d", len(src.POs), len(res.Inchoate.POs))
	}
	for i := range src.POs {
		if res.Inchoate.PONames[i] != src.PONames[i] {
			t.Errorf("PO name %d changed: %s -> %s", i, src.PONames[i], res.Inchoate.PONames[i])
		}
	}
}
