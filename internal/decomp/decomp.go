// Package decomp premaps an optimized Boolean network into the NAND2/INV
// subject graph — the paper's "inchoate network" N_inchoate (§2). Every
// logic node of the result computes either a 2-input NAND or an inverter,
// the base-function set used by DAGON and MIS.
//
// Two decomposition policies are provided. Premap builds balanced trees
// over each node's literals. PremapPlaced implements the layout-oriented
// decomposition the paper motivates with Figure 1.1(b): given positions for
// the source signals (from a companion placement), the fanin leaves of each
// decomposition tree are ordered by recursive spatial bipartition so that
// signals coming from nearby regions of the placement enter the tree at
// topologically near points, preserving the mapper's option of splitting
// one large match into smaller ones along spatial cluster boundaries.
package decomp

import (
	"fmt"
	"sort"

	"lily/internal/geom"
	"lily/internal/logic"
)

// Result is the outcome of premapping.
type Result struct {
	// Inchoate is the NAND2/INV subject graph.
	Inchoate *logic.Network
	// Root maps each live node of the source network to the subject-graph
	// node implementing its output (PIs map to subject-graph PIs).
	Root map[logic.NodeID]logic.NodeID
}

// Premap decomposes src into the NAND2/INV subject graph using balanced
// literal trees.
func Premap(src *logic.Network) (*Result, error) {
	return premap(src, nil)
}

// PremapPlaced decomposes src with layout-driven leaf ordering. pos gives a
// position for every source node (typically from a quick placement of the
// source network or of a previous subject graph); leaves of each
// decomposition tree are ordered by recursive alternating median splits of
// their positions.
func PremapPlaced(src *logic.Network, pos map[logic.NodeID]geom.Point) (*Result, error) {
	if pos == nil {
		return nil, fmt.Errorf("decomp: PremapPlaced requires positions")
	}
	return premap(src, pos)
}

type builder struct {
	net    *logic.Network
	inv    map[logic.NodeID]logic.NodeID
	nand   map[[2]logic.NodeID]logic.NodeID
	invOf  map[logic.NodeID]logic.NodeID // node -> its source if node is an inverter
	const1 logic.NodeID
	count  int
}

func newBuilder(name string) *builder {
	return &builder{
		net:    logic.New(name),
		inv:    make(map[logic.NodeID]logic.NodeID),
		nand:   make(map[[2]logic.NodeID]logic.NodeID),
		invOf:  make(map[logic.NodeID]logic.NodeID),
		const1: logic.InvalidNode,
	}
}

func (b *builder) fresh() string {
	b.count++
	return fmt.Sprintf("s%d", b.count)
}

// Inv returns a node computing NOT x, collapsing double inversions and
// memoizing one inverter per source signal.
func (b *builder) Inv(x logic.NodeID) logic.NodeID {
	if src, ok := b.invOf[x]; ok {
		return src
	}
	if v, ok := b.inv[x]; ok {
		return v
	}
	nd := b.net.AddLogic(b.fresh(), []logic.NodeID{x}, logic.NotSOP())
	b.inv[x] = nd.ID
	b.invOf[nd.ID] = x
	return nd.ID
}

// Nand2 returns a node computing NAND(x, y), structurally hashed.
func (b *builder) Nand2(x, y logic.NodeID) logic.NodeID {
	if x == y {
		return b.Inv(x)
	}
	key := [2]logic.NodeID{x, y}
	if y < x {
		key = [2]logic.NodeID{y, x}
	}
	if v, ok := b.nand[key]; ok {
		return v
	}
	nd := b.net.AddLogic(b.fresh(), []logic.NodeID{key[0], key[1]}, logic.NandSOP(2))
	b.nand[key] = nd.ID
	return nd.ID
}

func (b *builder) And2(x, y logic.NodeID) logic.NodeID { return b.Inv(b.Nand2(x, y)) }
func (b *builder) Or2(x, y logic.NodeID) logic.NodeID  { return b.Nand2(b.Inv(x), b.Inv(y)) }

// Const1 lazily materializes a constant-1 signal as NAND(x, !x) over the
// first primary input.
func (b *builder) Const1() logic.NodeID {
	if b.const1 != logic.InvalidNode {
		return b.const1
	}
	if len(b.net.PIs) == 0 {
		panic("decomp: constant in a network with no primary inputs")
	}
	x := b.net.PIs[0]
	b.const1 = b.Nand2(x, b.Inv(x))
	return b.const1
}

func (b *builder) Const0() logic.NodeID { return b.Inv(b.Const1()) }

// leaf is one input of a decomposition tree with an optional position.
type leaf struct {
	id  logic.NodeID
	pos geom.Point
}

// tree reduces leaves to a single node with op, building a balanced binary
// tree over the given order.
func (b *builder) tree(leaves []leaf, op func(x, y logic.NodeID) logic.NodeID) logic.NodeID {
	switch len(leaves) {
	case 0:
		panic("decomp: empty tree")
	case 1:
		return leaves[0].id
	}
	mid := len(leaves) / 2
	l := b.tree(leaves[:mid], op)
	r := b.tree(leaves[mid:], op)
	return op(l, r)
}

// spatialOrder reorders leaves in place by recursive alternating median
// splits so spatially near leaves end up adjacent — and hence, after the
// balanced tree construction, topologically near (paper Fig 1.1).
func spatialOrder(leaves []leaf, splitX bool) {
	if len(leaves) <= 2 {
		return
	}
	if splitX {
		sort.SliceStable(leaves, func(i, j int) bool { return leaves[i].pos.X < leaves[j].pos.X })
	} else {
		sort.SliceStable(leaves, func(i, j int) bool { return leaves[i].pos.Y < leaves[j].pos.Y })
	}
	mid := len(leaves) / 2
	spatialOrder(leaves[:mid], !splitX)
	spatialOrder(leaves[mid:], !splitX)
}

func premap(src *logic.Network, pos map[logic.NodeID]geom.Point) (*Result, error) {
	b := newBuilder(src.Name)
	root := make(map[logic.NodeID]logic.NodeID)
	leafPos := make(map[logic.NodeID]geom.Point) // subject node -> position

	for _, pi := range src.PIs {
		nd := b.net.AddPI(src.Nodes[pi].Name)
		root[pi] = nd.ID
		if pos != nil {
			leafPos[nd.ID] = pos[pi]
		}
	}

	order, err := src.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, id := range order {
		nd := src.Nodes[id]
		if nd.Kind != logic.KindLogic {
			continue
		}
		out, err := b.decomposeNode(src, nd, root, pos, leafPos)
		if err != nil {
			return nil, err
		}
		root[id] = out
		if pos != nil {
			leafPos[out] = pos[id]
		}
	}

	for i, po := range src.POs {
		b.net.MarkPO(root[po], src.PONames[i])
	}
	b.net.Sweep()
	// Dead source logic produces subject nodes that sweeping removes; drop
	// their stale root entries.
	//lint:sorted Node() is a pure read and per-key deletes commute
	for id, sub := range root {
		if b.net.Node(sub) == nil {
			delete(root, id)
		}
	}
	if err := b.net.Check(); err != nil {
		return nil, err
	}
	if err := CheckSubjectGraph(b.net); err != nil {
		return nil, err
	}
	return &Result{Inchoate: b.net, Root: root}, nil
}

func (b *builder) decomposeNode(src *logic.Network, nd *logic.Node,
	root map[logic.NodeID]logic.NodeID, pos map[logic.NodeID]geom.Point,
	leafPos map[logic.NodeID]geom.Point) (logic.NodeID, error) {

	cover := nd.Cover
	switch {
	case cover.IsConst0():
		return b.Const0(), nil
	case cover.IsConst1():
		return b.Const1(), nil
	}

	// Build each cube as an AND tree over its literals; the cube value used
	// by the OR stage. Literal leaves carry the position of their source
	// signal so spatial ordering can cluster them.
	cubeLeaves := make([]leaf, 0, len(cover.Cubes))
	for _, c := range cover.Cubes {
		lits := make([]leaf, 0, len(c))
		var centroid geom.Point
		for i, l := range c {
			if l == logic.LitDC {
				continue
			}
			fan := root[nd.Fanins[i]]
			v := fan
			if l == logic.LitNeg {
				v = b.Inv(fan)
			}
			p := leafPos[fan]
			lits = append(lits, leaf{id: v, pos: p})
			centroid = centroid.Add(p)
		}
		if len(lits) == 0 {
			// All-don't-care cube: constant 1 term dominates the cover.
			return b.Const1(), nil
		}
		if pos != nil {
			spatialOrder(lits, true)
		}
		cubeVal := b.tree(lits, b.And2)
		centroid = centroid.Scale(1 / float64(len(lits)))
		cubeLeaves = append(cubeLeaves, leaf{id: cubeVal, pos: centroid})
	}
	if pos != nil {
		spatialOrder(cubeLeaves, false)
	}
	return b.tree(cubeLeaves, b.Or2), nil
}

// IsNand2 reports whether the node computes a 2-input NAND.
func IsNand2(n *logic.Network, id logic.NodeID) bool {
	nd := n.Node(id)
	return nd != nil && nd.Kind == logic.KindLogic && len(nd.Fanins) == 2 &&
		logic.EqualFunc(nd.Cover, logic.NandSOP(2))
}

// IsInv reports whether the node computes an inverter.
func IsInv(n *logic.Network, id logic.NodeID) bool {
	nd := n.Node(id)
	return nd != nil && nd.Kind == logic.KindLogic && len(nd.Fanins) == 1 &&
		logic.EqualFunc(nd.Cover, logic.NotSOP())
}

// CheckSubjectGraph verifies that every logic node of n is a NAND2 or INV.
func CheckSubjectGraph(n *logic.Network) error {
	for _, nd := range n.Nodes {
		if nd == nil || nd.Kind != logic.KindLogic {
			continue
		}
		if !IsNand2(n, nd.ID) && !IsInv(n, nd.ID) {
			return fmt.Errorf("decomp: node %q is not a base function (fanin %d)",
				nd.Name, len(nd.Fanins))
		}
	}
	return nil
}
