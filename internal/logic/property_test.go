package logic

import (
	"math/rand"
	"testing"
)

// randomNet builds a small random network directly (independent of the
// bench generator, to avoid an import cycle).
func randomNet(rng *rand.Rand, pis, nodes int) *Network {
	n := New("prop")
	ids := make([]NodeID, 0, pis+nodes)
	for i := 0; i < pis; i++ {
		ids = append(ids, n.AddPI(string(rune('a'+i))).ID)
	}
	for k := 0; k < nodes; k++ {
		fi := 1 + rng.Intn(3)
		if fi > len(ids) {
			fi = len(ids)
		}
		fanins := make([]NodeID, 0, fi)
		seen := map[NodeID]bool{}
		for len(fanins) < fi {
			c := ids[rng.Intn(len(ids))]
			if !seen[c] {
				seen[c] = true
				fanins = append(fanins, c)
			}
		}
		var cover SOP
		switch rng.Intn(4) {
		case 0:
			cover = AndSOP(fi)
		case 1:
			cover = OrSOP(fi)
		case 2:
			cover = NandSOP(fi)
		default:
			cover = NorSOP(fi)
		}
		nd := n.AddLogic("", fanins, cover)
		ids = append(ids, nd.ID)
	}
	// Mark a few deep nodes as POs.
	for i := 0; i < 3 && i < nodes; i++ {
		n.MarkPO(ids[len(ids)-1-i], "")
	}
	return n
}

func evalAll(t *testing.T, n *Network, seed int64, trials int) []map[string]bool {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var outs []map[string]bool
	for k := 0; k < trials; k++ {
		in := map[string]bool{}
		for _, pi := range n.PIs {
			in[n.Nodes[pi].Name] = rng.Intn(2) == 1
		}
		o, err := n.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, o)
	}
	return outs
}

// Property: Sweep never changes the function visible at the POs.
func TestSweepPreservesFunction(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := randomNet(rng, 4, 20)
		before := evalAll(t, n, 99, 10)
		n.Sweep()
		if err := n.Check(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		after := evalAll(t, n, 99, 10)
		for k := range before {
			for name := range before[k] {
				if before[k][name] != after[k][name] {
					t.Fatalf("trial %d: sweep changed output %s", trial, name)
				}
			}
		}
	}
}

// Property: Clone is deep — mutating the clone never affects the original.
func TestClonePropertyIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := randomNet(rng, 4, 15)
	before := evalAll(t, n, 7, 8)
	c := n.Clone()
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	// Mutilate the clone.
	for _, nd := range c.Nodes {
		if nd != nil && nd.Kind == KindLogic {
			nd.Cover = NorSOP(len(nd.Fanins))
		}
	}
	after := evalAll(t, n, 7, 8)
	for k := range before {
		for name := range before[k] {
			if before[k][name] != after[k][name] {
				t.Fatal("clone mutation leaked into the original")
			}
		}
	}
}

// Property: clone evaluates identically to the original.
func TestCloneEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := randomNet(rng, 5, 25)
	c := n.Clone()
	a := evalAll(t, n, 13, 12)
	b := evalAll(t, c, 13, 12)
	for k := range a {
		for name := range a[k] {
			if a[k][name] != b[k][name] {
				t.Fatal("clone differs from original")
			}
		}
	}
}

// Property: topological order is stable under Check (no mutation).
func TestCheckIsReadOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := randomNet(rng, 4, 18)
	s1 := n.Stat()
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	s2 := n.Stat()
	if s1 != s2 {
		t.Errorf("Check mutated the network: %v -> %v", s1, s2)
	}
}

// RemoveFanin + AttachFanout are exact inverses on the fanout lists.
func TestRemoveAttachFaninRoundTrip(t *testing.T) {
	n := New("rt")
	a := n.AddPI("a")
	b := n.AddPI("b")
	x := n.AddLogic("x", []NodeID{a.ID, b.ID}, AndSOP(2))
	n.MarkPO(x.ID, "x")
	n.RemoveFanin(x.ID, 0)
	if countOf(n.Fanouts(a.ID), x.ID) != 0 {
		t.Fatal("fanout not removed")
	}
	x.Fanins = append([]NodeID{a.ID}, x.Fanins...)
	n.AttachFanout(a.ID, x.ID)
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
}
