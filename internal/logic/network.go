package logic

import (
	"fmt"
	"sort"
)

// NodeID identifies a node inside one Network. IDs are dense indices into
// Network.Nodes and are never reused within a network's lifetime; deleted
// nodes leave a nil slot.
type NodeID int

// InvalidNode is the zero-value "no node" sentinel.
const InvalidNode NodeID = -1

// Kind distinguishes the two node classes of a combinational network.
type Kind byte

const (
	// KindPI is a primary input; it has no fanins and no function.
	KindPI Kind = iota
	// KindLogic is an internal node computing an SOP over its fanins.
	KindLogic
)

func (k Kind) String() string {
	if k == KindPI {
		return "pi"
	}
	return "logic"
}

// Node is one vertex of a Boolean network.
type Node struct {
	ID     NodeID
	Name   string
	Kind   Kind
	Fanins []NodeID
	// Cover is the node function over Fanins (positional); unused for PIs.
	Cover SOP
	// fanouts is maintained by the Network on every structural edit.
	fanouts []NodeID
}

// Network is a combinational Boolean network: a DAG of logic nodes over
// primary inputs, with an ordered list of primary outputs referencing nodes.
type Network struct {
	Name    string
	Nodes   []*Node
	PIs     []NodeID
	POs     []NodeID
	PONames []string

	byName map[string]NodeID
}

// New returns an empty network with the given name.
func New(name string) *Network {
	return &Network{Name: name, byName: make(map[string]NodeID)}
}

// Node returns the node with the given ID, or nil if it was deleted.
func (n *Network) Node(id NodeID) *Node {
	if id < 0 || int(id) >= len(n.Nodes) {
		return nil
	}
	return n.Nodes[id]
}

// NodeByName returns the node with the given name, or nil.
func (n *Network) NodeByName(name string) *Node {
	id, ok := n.byName[name]
	if !ok {
		return nil
	}
	return n.Nodes[id]
}

// NumLive returns the number of non-deleted nodes.
func (n *Network) NumLive() int {
	c := 0
	for _, nd := range n.Nodes {
		if nd != nil {
			c++
		}
	}
	return c
}

// NumLogic returns the number of live logic (non-PI) nodes.
func (n *Network) NumLogic() int {
	c := 0
	for _, nd := range n.Nodes {
		if nd != nil && nd.Kind == KindLogic {
			c++
		}
	}
	return c
}

// AddPI creates a primary input with the given name.
func (n *Network) AddPI(name string) *Node {
	nd := n.addNode(name, KindPI, nil, SOP{})
	n.PIs = append(n.PIs, nd.ID)
	return nd
}

// AddLogic creates an internal node computing cover over the given fanins.
// The cover width must equal len(fanins).
func (n *Network) AddLogic(name string, fanins []NodeID, cover SOP) *Node {
	if cover.NumInputs != len(fanins) {
		panic(fmt.Sprintf("logic: node %q cover width %d != fanin count %d",
			name, cover.NumInputs, len(fanins)))
	}
	for _, f := range fanins {
		if n.Node(f) == nil {
			panic(fmt.Sprintf("logic: node %q references missing fanin %d", name, f))
		}
	}
	nd := n.addNode(name, KindLogic, append([]NodeID(nil), fanins...), cover)
	for _, f := range fanins {
		n.Nodes[f].fanouts = append(n.Nodes[f].fanouts, nd.ID)
	}
	return nd
}

func (n *Network) addNode(name string, kind Kind, fanins []NodeID, cover SOP) *Node {
	if name == "" {
		name = fmt.Sprintf("n%d", len(n.Nodes))
	}
	if _, dup := n.byName[name]; dup {
		panic(fmt.Sprintf("logic: duplicate node name %q", name))
	}
	nd := &Node{ID: NodeID(len(n.Nodes)), Name: name, Kind: kind, Fanins: fanins, Cover: cover}
	n.Nodes = append(n.Nodes, nd)
	n.byName[name] = nd.ID
	return nd
}

// MarkPO declares node id as a primary output under the given external name
// (which may differ from the node's internal name).
func (n *Network) MarkPO(id NodeID, name string) {
	if n.Node(id) == nil {
		panic(fmt.Sprintf("logic: MarkPO on missing node %d", id))
	}
	if name == "" {
		name = n.Nodes[id].Name
	}
	n.POs = append(n.POs, id)
	n.PONames = append(n.PONames, name)
}

// IsPO reports whether id is listed as a primary output.
func (n *Network) IsPO(id NodeID) bool {
	for _, po := range n.POs {
		if po == id {
			return true
		}
	}
	return false
}

// Fanouts returns the fanout node IDs of id. The returned slice is owned by
// the network and must not be modified.
func (n *Network) Fanouts(id NodeID) []NodeID { return n.Nodes[id].fanouts }

// FanoutCount returns the number of fanout edges of id, counting an edge
// once per fanin position (a node using id twice counts twice), plus one
// per PO reference.
func (n *Network) FanoutCount(id NodeID) int {
	c := len(n.Nodes[id].fanouts)
	for _, po := range n.POs {
		if po == id {
			c++
		}
	}
	return c
}

// ReplaceFanin rewires every fanin reference of node id from oldF to newF
// and fixes the fanout lists on both sides.
func (n *Network) ReplaceFanin(id, oldF, newF NodeID) {
	nd := n.Nodes[id]
	changed := 0
	for i, f := range nd.Fanins {
		if f == oldF {
			nd.Fanins[i] = newF
			changed++
		}
	}
	if changed == 0 {
		return
	}
	n.removeFanoutRefs(oldF, id, changed)
	for i := 0; i < changed; i++ {
		n.Nodes[newF].fanouts = append(n.Nodes[newF].fanouts, id)
	}
}

func (n *Network) removeFanoutRefs(from, to NodeID, count int) {
	fo := n.Nodes[from].fanouts
	out := fo[:0]
	for _, f := range fo {
		if f == to && count > 0 {
			count--
			continue
		}
		out = append(out, f)
	}
	n.Nodes[from].fanouts = out
}

// AttachFanout records that node to now lists from among its fanins; used
// by transformations that extend a fanin list in place. The caller must
// have appended from to to's Fanins (and widened the cover) itself.
func (n *Network) AttachFanout(from, to NodeID) {
	n.Nodes[from].fanouts = append(n.Nodes[from].fanouts, to)
}

// RemoveFanin deletes fanin position i of node id, fixing the fanout list
// of the detached driver. The caller must update the node's cover to the
// reduced width (the network is temporarily inconsistent in between).
func (n *Network) RemoveFanin(id NodeID, i int) {
	nd := n.Nodes[id]
	f := nd.Fanins[i]
	nd.Fanins = append(nd.Fanins[:i], nd.Fanins[i+1:]...)
	n.removeFanoutRefs(f, id, 1)
}

// Delete removes a node with no fanouts and no PO references from the
// network. It panics if the node is still in use.
func (n *Network) Delete(id NodeID) {
	nd := n.Node(id)
	if nd == nil {
		return
	}
	if len(nd.fanouts) > 0 || n.IsPO(id) {
		panic(fmt.Sprintf("logic: delete of live node %q", nd.Name))
	}
	for _, f := range nd.Fanins {
		n.removeFanoutRefs(f, id, 1)
	}
	delete(n.byName, nd.Name)
	n.Nodes[id] = nil
}

// Clone returns a deep copy of the network with identical node IDs.
func (n *Network) Clone() *Network {
	c := New(n.Name)
	c.Nodes = make([]*Node, len(n.Nodes))
	for id, nd := range n.Nodes {
		if nd == nil {
			continue
		}
		c.Nodes[id] = &Node{
			ID:      nd.ID,
			Name:    nd.Name,
			Kind:    nd.Kind,
			Fanins:  append([]NodeID(nil), nd.Fanins...),
			Cover:   nd.Cover.Clone(),
			fanouts: append([]NodeID(nil), nd.fanouts...),
		}
		c.byName[nd.Name] = nd.ID
	}
	c.PIs = append([]NodeID(nil), n.PIs...)
	c.POs = append([]NodeID(nil), n.POs...)
	c.PONames = append([]string(nil), n.PONames...)
	return c
}

// Check validates structural invariants: fanin/fanout symmetry, acyclicity,
// cover widths, live PO references. It returns the first violation found.
func (n *Network) Check() error {
	for _, nd := range n.Nodes {
		if nd == nil {
			continue
		}
		if nd.Kind == KindLogic && nd.Cover.NumInputs != len(nd.Fanins) {
			return fmt.Errorf("node %q: cover width %d != %d fanins", nd.Name, nd.Cover.NumInputs, len(nd.Fanins))
		}
		if nd.Kind == KindPI && len(nd.Fanins) != 0 {
			return fmt.Errorf("PI %q has fanins", nd.Name)
		}
		for _, f := range nd.Fanins {
			fn := n.Node(f)
			if fn == nil {
				return fmt.Errorf("node %q references deleted fanin %d", nd.Name, f)
			}
			if !containsCount(fn.fanouts, nd.ID, countOf(nd.Fanins, f)) {
				return fmt.Errorf("fanout list of %q inconsistent with fanins of %q", fn.Name, nd.Name)
			}
		}
		for _, f := range nd.fanouts {
			fn := n.Node(f)
			if fn == nil {
				return fmt.Errorf("node %q has deleted fanout %d", nd.Name, f)
			}
			if countOf(fn.Fanins, nd.ID) == 0 {
				return fmt.Errorf("node %q lists fanout %q which does not use it", nd.Name, fn.Name)
			}
		}
	}
	for i, po := range n.POs {
		if n.Node(po) == nil {
			return fmt.Errorf("PO %q references deleted node %d", n.PONames[i], po)
		}
	}
	if _, err := n.TopoOrder(); err != nil {
		return err
	}
	return nil
}

func countOf(s []NodeID, x NodeID) int {
	c := 0
	for _, v := range s {
		if v == x {
			c++
		}
	}
	return c
}

func containsCount(s []NodeID, x NodeID, want int) bool {
	return countOf(s, x) >= want
}

// TopoOrder returns all live node IDs in topological order (fanins before
// fanouts). It returns an error if the network contains a cycle.
func (n *Network) TopoOrder() ([]NodeID, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, len(n.Nodes))
	order := make([]NodeID, 0, len(n.Nodes))
	// Iterative DFS to avoid stack depth limits on deep networks.
	type frame struct {
		id  NodeID
		idx int
	}
	var stack []frame
	visit := func(root NodeID) error {
		if color[root] != white {
			if color[root] == gray {
				return fmt.Errorf("logic: combinational cycle through node %d", root)
			}
			return nil
		}
		stack = stack[:0]
		stack = append(stack, frame{root, 0})
		color[root] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			nd := n.Nodes[f.id]
			if f.idx < len(nd.Fanins) {
				child := nd.Fanins[f.idx]
				f.idx++
				switch color[child] {
				case white:
					color[child] = gray
					stack = append(stack, frame{child, 0})
				case gray:
					return fmt.Errorf("logic: combinational cycle through node %q", n.Nodes[child].Name)
				}
				continue
			}
			color[f.id] = black
			order = append(order, f.id)
			stack = stack[:len(stack)-1]
		}
		return nil
	}
	for id, nd := range n.Nodes {
		if nd == nil {
			continue
		}
		if err := visit(NodeID(id)); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Eval simulates the network under the given PI assignment (keyed by PI
// name) and returns the PO values keyed by PO name.
func (n *Network) Eval(in map[string]bool) (map[string]bool, error) {
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	val := make([]bool, len(n.Nodes))
	for _, pi := range n.PIs {
		v, ok := in[n.Nodes[pi].Name]
		if !ok {
			return nil, fmt.Errorf("logic: missing input value for PI %q", n.Nodes[pi].Name)
		}
		val[pi] = v
	}
	buf := make([]bool, 0, 16)
	for _, id := range order {
		nd := n.Nodes[id]
		if nd.Kind != KindLogic {
			continue
		}
		buf = buf[:0]
		for _, f := range nd.Fanins {
			buf = append(buf, val[f])
		}
		val[id] = nd.Cover.Eval(buf)
	}
	out := make(map[string]bool, len(n.POs))
	for i, po := range n.POs {
		out[n.PONames[i]] = val[po]
	}
	return out, nil
}

// SortedNames returns the names of all live nodes, sorted, primarily for
// deterministic test output.
func (n *Network) SortedNames() []string {
	names := make([]string, 0, len(n.Nodes))
	for _, nd := range n.Nodes {
		if nd != nil {
			names = append(names, nd.Name)
		}
	}
	sort.Strings(names)
	return names
}
