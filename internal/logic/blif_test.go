package logic

import (
	"bytes"
	"strings"
	"testing"
)

const adderBLIF = `
# one-bit full adder
.model adder
.inputs a b cin
.outputs sum cout
.names a b axb
10 1
01 1
.names axb cin sum
10 1
01 1
.names a b ab
11 1
.names cin axb cx
11 1
.names ab cx cout
1- 1
-1 1
.end
`

func TestParseBLIFAdder(t *testing.T) {
	n, err := ParseBLIF(strings.NewReader(adderBLIF))
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "adder" {
		t.Errorf("model name = %q", n.Name)
	}
	s := n.Stat()
	if s.PIs != 3 || s.POs != 2 || s.Logic != 5 {
		t.Fatalf("stat = %+v", s)
	}
	out, err := n.Eval(map[string]bool{"a": true, "b": true, "cin": false})
	if err != nil {
		t.Fatal(err)
	}
	if out["sum"] || !out["cout"] {
		t.Errorf("1+1+0: sum=%v cout=%v", out["sum"], out["cout"])
	}
}

func TestBLIFRoundTrip(t *testing.T) {
	n, err := ParseBLIF(strings.NewReader(adderBLIF))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBLIF(&buf, n); err != nil {
		t.Fatal(err)
	}
	n2, err := ParseBLIF(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	// Functional equivalence over all 8 input rows.
	for r := 0; r < 8; r++ {
		in := map[string]bool{"a": r&1 != 0, "b": r&2 != 0, "cin": r&4 != 0}
		o1, err1 := n.Eval(in)
		o2, err2 := n2.Eval(in)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		for k := range o1 {
			if o1[k] != o2[k] {
				t.Fatalf("round trip differs on %s at row %d", k, r)
			}
		}
	}
}

func TestParseBLIFOffsetCover(t *testing.T) {
	src := `
.model offs
.inputs a b
.outputs y
.names a b y
11 0
.end
`
	n, err := ParseBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// y = NOT(a AND b)
	for r := 0; r < 4; r++ {
		a, b := r&1 != 0, r&2 != 0
		out, _ := n.Eval(map[string]bool{"a": a, "b": b})
		if out["y"] != !(a && b) {
			t.Errorf("offset cover: y(%v,%v)=%v", a, b, out["y"])
		}
	}
}

func TestParseBLIFConstants(t *testing.T) {
	src := `
.model consts
.inputs a
.outputs one zero
.names one
1
.names zero
.end
`
	n, err := ParseBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := n.Eval(map[string]bool{"a": false})
	if !out["one"] || out["zero"] {
		t.Errorf("constants wrong: %v", out)
	}
}

func TestParseBLIFForwardReference(t *testing.T) {
	src := `
.model fwd
.inputs a
.outputs y
.names mid y
1 1
.names a mid
0 1
.end
`
	n, err := ParseBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := n.Eval(map[string]bool{"a": false})
	if !out["y"] {
		t.Error("forward reference network wrong")
	}
}

func TestParseBLIFContinuation(t *testing.T) {
	src := ".model cont\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n"
	n, err := ParseBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(n.PIs) != 2 {
		t.Errorf("continuation line lost an input: %d PIs", len(n.PIs))
	}
}

func TestParseBLIFErrors(t *testing.T) {
	cases := map[string]string{
		"latch":     ".model m\n.inputs a\n.outputs y\n.latch a y re clk 0\n.end",
		"undefined": ".model m\n.inputs a\n.outputs y\n.names a nothere y\n11 1\n.end",
		"dup":       ".model m\n.inputs a a\n.outputs y\n.names a y\n1 1\n.end",
		"badcube":   ".model m\n.inputs a\n.outputs y\n.names a y\n2 1\n.end",
		"width":     ".model m\n.inputs a b\n.outputs y\n.names a b y\n1 1\n.end",
		"noout":     ".model m\n.inputs a\n.outputs y\n.end",
		"cycle":     ".model m\n.inputs a\n.outputs y\n.names y2 y\n1 1\n.names y y2\n1 1\n.end",
	}
	for name, src := range cases {
		if _, err := ParseBLIF(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
