package logic

import (
	"testing"
)

// buildAdder builds a 1-bit full adder: sum = a^b^cin, cout = ab + cin(a^b).
func buildAdder(t *testing.T) *Network {
	t.Helper()
	n := New("adder")
	a := n.AddPI("a")
	b := n.AddPI("b")
	cin := n.AddPI("cin")
	axb := n.AddLogic("axb", []NodeID{a.ID, b.ID}, XorSOP(2))
	sum := n.AddLogic("sum", []NodeID{axb.ID, cin.ID}, XorSOP(2))
	ab := n.AddLogic("ab", []NodeID{a.ID, b.ID}, AndSOP(2))
	cx := n.AddLogic("cx", []NodeID{cin.ID, axb.ID}, AndSOP(2))
	cout := n.AddLogic("cout", []NodeID{ab.ID, cx.ID}, OrSOP(2))
	n.MarkPO(sum.ID, "sum")
	n.MarkPO(cout.ID, "cout")
	if err := n.Check(); err != nil {
		t.Fatalf("adder check: %v", err)
	}
	return n
}

func TestAdderTruth(t *testing.T) {
	n := buildAdder(t)
	for r := 0; r < 8; r++ {
		a, b, c := r&1 != 0, r&2 != 0, r&4 != 0
		out, err := n.Eval(map[string]bool{"a": a, "b": b, "cin": c})
		if err != nil {
			t.Fatal(err)
		}
		ones := 0
		for _, v := range []bool{a, b, c} {
			if v {
				ones++
			}
		}
		if out["sum"] != (ones%2 == 1) {
			t.Errorf("sum(%v %v %v) = %v", a, b, c, out["sum"])
		}
		if out["cout"] != (ones >= 2) {
			t.Errorf("cout(%v %v %v) = %v", a, b, c, out["cout"])
		}
	}
}

func TestTopoOrderProperty(t *testing.T) {
	n := buildAdder(t)
	order, err := n.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[NodeID]int)
	for i, id := range order {
		pos[id] = i
	}
	if len(order) != n.NumLive() {
		t.Fatalf("topo order covers %d of %d nodes", len(order), n.NumLive())
	}
	for _, nd := range n.Nodes {
		if nd == nil {
			continue
		}
		for _, f := range nd.Fanins {
			if pos[f] >= pos[nd.ID] {
				t.Fatalf("fanin %d not before node %d", f, nd.ID)
			}
		}
	}
}

func TestFanoutBookkeeping(t *testing.T) {
	n := buildAdder(t)
	axb := n.NodeByName("axb")
	if got := n.FanoutCount(axb.ID); got != 2 {
		t.Errorf("axb fanout = %d, want 2", got)
	}
	// sum is a PO: one fanout edge (none structural) plus PO ref.
	sum := n.NodeByName("sum")
	if got := n.FanoutCount(sum.ID); got != 1 {
		t.Errorf("sum fanout = %d, want 1 (PO ref)", got)
	}
}

func TestReplaceFanin(t *testing.T) {
	n := buildAdder(t)
	a := n.NodeByName("a")
	b := n.NodeByName("b")
	ab := n.NodeByName("ab")
	n.ReplaceFanin(ab.ID, a.ID, b.ID) // ab now computes b AND b = b
	if err := n.Check(); err != nil {
		t.Fatalf("check after rewire: %v", err)
	}
	out, err := n.Eval(map[string]bool{"a": false, "b": true, "cin": false})
	if err != nil {
		t.Fatal(err)
	}
	if !out["cout"] {
		t.Error("after rewiring ab to b&b, cout(0,1,0) should be 1")
	}
}

func TestDeleteAndSweep(t *testing.T) {
	n := buildAdder(t)
	// Add a dangling node and a buffer chain; Sweep must remove them.
	a := n.NodeByName("a")
	dead := n.AddLogic("dead", []NodeID{a.ID}, NotSOP())
	_ = dead
	buf1 := n.AddLogic("buf1", []NodeID{a.ID}, BufSOP())
	n.AddLogic("dead2", []NodeID{buf1.ID}, NotSOP())
	before := n.NumLive()
	removed := n.Sweep()
	if removed == 0 {
		t.Fatal("sweep removed nothing")
	}
	if n.NumLive() != before-removed {
		t.Errorf("live count inconsistent: %d -> %d with %d removed", before, n.NumLive(), removed)
	}
	if n.NodeByName("dead") != nil || n.NodeByName("dead2") != nil || n.NodeByName("buf1") != nil {
		t.Error("sweep left dead nodes behind")
	}
	if err := n.Check(); err != nil {
		t.Fatalf("check after sweep: %v", err)
	}
}

func TestDeletePanicsOnLiveNode(t *testing.T) {
	n := buildAdder(t)
	defer func() {
		if recover() == nil {
			t.Error("Delete of live node did not panic")
		}
	}()
	n.Delete(n.NodeByName("axb").ID)
}

func TestDuplicateNamePanics(t *testing.T) {
	n := New("x")
	n.AddPI("a")
	defer func() {
		if recover() == nil {
			t.Error("duplicate name did not panic")
		}
	}()
	n.AddPI("a")
}

func TestConeMembers(t *testing.T) {
	n := buildAdder(t)
	cone := n.Cone(n.NodeByName("sum").ID)
	for _, want := range []string{"sum", "axb", "a", "b", "cin"} {
		if !cone[n.NodeByName(want).ID] {
			t.Errorf("cone(sum) missing %s", want)
		}
	}
	for _, not := range []string{"ab", "cx", "cout"} {
		if cone[n.NodeByName(not).ID] {
			t.Errorf("cone(sum) wrongly contains %s", not)
		}
	}
}

func TestReverseDFSOrder(t *testing.T) {
	n := buildAdder(t)
	order := n.ReverseDFS(n.NodeByName("cout").ID)
	pos := make(map[NodeID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, id := range order {
		for _, f := range n.Nodes[id].Fanins {
			if pos[f] >= pos[id] {
				t.Fatalf("reverse DFS: fanin %d after node %d", f, id)
			}
		}
	}
	if order[len(order)-1] != n.NodeByName("cout").ID {
		t.Error("root not last in reverse DFS")
	}
}

func TestLevelsAndDepth(t *testing.T) {
	n := buildAdder(t)
	lv := n.Levels()
	if lv[n.NodeByName("a").ID] != 0 {
		t.Error("PI level != 0")
	}
	if lv[n.NodeByName("sum").ID] != 2 {
		t.Errorf("sum level = %d, want 2", lv[n.NodeByName("sum").ID])
	}
	if n.Depth() != 3 {
		t.Errorf("depth = %d, want 3 (cout path)", n.Depth())
	}
}

func TestExitLines(t *testing.T) {
	n := buildAdder(t)
	m := n.ExitLines()
	// axb is in cone(sum) [index 0] and feeds cx in cone(cout) [index 1];
	// PIs a,b,cin are in both cones. Exit lines from cone 0 to cone 1:
	// a->ab, b->ab, cin->cx, axb->cx = 4.
	if m[0][1] != 4 {
		t.Errorf("E(K_sum, K_cout) = %d, want 4", m[0][1])
	}
	if m[0][0] != 0 || m[1][1] != 0 {
		t.Error("diagonal not zero")
	}
}

func TestStat(t *testing.T) {
	n := buildAdder(t)
	s := n.Stat()
	if s.PIs != 3 || s.POs != 2 || s.Logic != 5 {
		t.Errorf("stat = %+v", s)
	}
	if s.Depth != 3 || s.MaxFanin != 2 {
		t.Errorf("stat depth/fanin = %+v", s)
	}
}

func TestCycleDetected(t *testing.T) {
	n := New("cyc")
	a := n.AddPI("a")
	x := n.AddLogic("x", []NodeID{a.ID}, NotSOP())
	y := n.AddLogic("y", []NodeID{x.ID}, NotSOP())
	// Force a cycle behind the API's back.
	x.Fanins[0] = y.ID
	n.Nodes[y.ID].fanouts = append(n.Nodes[y.ID].fanouts, x.ID)
	n.removeFanoutRefs(a.ID, x.ID, 1)
	if _, err := n.TopoOrder(); err == nil {
		t.Error("cycle not detected")
	}
}
