// Package logic provides the Boolean network data structure shared by all
// stages of the Lily flow: the technology-independent input network, the
// premapped NAND2/INV subject graph, and the final mapped netlist all use
// the same Network type with different node vocabularies.
//
// Node functions are stored as single-output sum-of-products covers in the
// style of BLIF ".names" tables. Covers are the right representation here
// because the technology-independent front end hands the mapper factored
// two-level node functions, and premapping (package decomp) consumes exactly
// that form.
package logic

import (
	"fmt"
	"strings"
)

// Lit is the value of one input position inside a cube.
type Lit byte

const (
	// LitDC means the input does not appear in the cube (don't care).
	LitDC Lit = iota
	// LitPos means the input appears in positive phase.
	LitPos
	// LitNeg means the input appears in negative phase.
	LitNeg
)

// Cube is one product term of a cover: a conjunction of literals over the
// node's fanins, indexed positionally.
type Cube []Lit

// SOP is a single-output sum-of-products cover over n positional inputs.
// The function is the OR of all cubes; an SOP with zero cubes is the
// constant 0, and an SOP with a single all-don't-care cube is the constant 1
// (when NumInputs > 0) or simply constant 1 (when NumInputs == 0).
type SOP struct {
	NumInputs int
	Cubes     []Cube
}

// MaxEvalInputs bounds truth-table evaluation; 2^16 rows is the largest
// table Eval will enumerate.
const MaxEvalInputs = 16

// NewSOP returns an empty (constant-0) cover over n inputs.
func NewSOP(n int) SOP { return SOP{NumInputs: n} }

// ConstSOP returns a constant cover with no inputs.
func ConstSOP(value bool) SOP {
	s := SOP{NumInputs: 0}
	if value {
		s.Cubes = []Cube{{}}
	}
	return s
}

// AddCube appends a product term. The cube length must equal NumInputs.
func (s *SOP) AddCube(c Cube) {
	if len(c) != s.NumInputs {
		panic(fmt.Sprintf("logic: cube width %d != cover width %d", len(c), s.NumInputs))
	}
	s.Cubes = append(s.Cubes, c)
}

// IsConst0 reports whether the cover is structurally the constant 0.
func (s SOP) IsConst0() bool { return len(s.Cubes) == 0 }

// IsConst1 reports whether the cover is structurally the constant 1: it
// contains a cube with no literals.
func (s SOP) IsConst1() bool {
	for _, c := range s.Cubes {
		all := true
		for _, l := range c {
			if l != LitDC {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// EvalCube evaluates one cube under the given input assignment.
func (c Cube) Eval(in []bool) bool {
	for i, l := range c {
		switch l {
		case LitPos:
			if !in[i] {
				return false
			}
		case LitNeg:
			if in[i] {
				return false
			}
		}
	}
	return true
}

// Eval evaluates the cover under the given input assignment.
func (s SOP) Eval(in []bool) bool {
	if len(in) != s.NumInputs {
		panic(fmt.Sprintf("logic: eval with %d inputs, cover has %d", len(in), s.NumInputs))
	}
	for _, c := range s.Cubes {
		if c.Eval(in) {
			return true
		}
	}
	return false
}

// TruthTable enumerates the cover into a bit vector of 2^NumInputs entries,
// bit i holding the output for the assignment whose bit j is input j.
// It panics if NumInputs exceeds MaxEvalInputs.
func (s SOP) TruthTable() []uint64 {
	if s.NumInputs > MaxEvalInputs {
		panic(fmt.Sprintf("logic: truth table over %d inputs exceeds limit %d", s.NumInputs, MaxEvalInputs))
	}
	rows := 1 << s.NumInputs
	words := (rows + 63) / 64
	tt := make([]uint64, words)
	in := make([]bool, s.NumInputs)
	for r := 0; r < rows; r++ {
		for j := 0; j < s.NumInputs; j++ {
			in[j] = r&(1<<j) != 0
		}
		if s.Eval(in) {
			tt[r/64] |= 1 << (r % 64)
		}
	}
	return tt
}

// EqualFunc reports whether two covers over the same number of inputs
// compute the same function (by truth-table comparison).
func EqualFunc(a, b SOP) bool {
	if a.NumInputs != b.NumInputs {
		return false
	}
	ta, tb := a.TruthTable(), b.TruthTable()
	for i := range ta {
		if ta[i] != tb[i] {
			return false
		}
	}
	return true
}

// LiteralCount returns the number of non-don't-care literals in the cover,
// the usual technology-independent cost metric.
func (s SOP) LiteralCount() int {
	n := 0
	for _, c := range s.Cubes {
		for _, l := range c {
			if l != LitDC {
				n++
			}
		}
	}
	return n
}

// DependsOn reports whether the cover mentions input i in any cube.
func (s SOP) DependsOn(i int) bool {
	for _, c := range s.Cubes {
		if c[i] != LitDC {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the cover.
func (s SOP) Clone() SOP {
	out := SOP{NumInputs: s.NumInputs, Cubes: make([]Cube, len(s.Cubes))}
	for i, c := range s.Cubes {
		out.Cubes[i] = append(Cube(nil), c...)
	}
	return out
}

// String renders the cover in BLIF cube notation ("1-0 1" lines without the
// output column, joined by " + ").
func (s SOP) String() string {
	if s.IsConst0() {
		return "0"
	}
	var parts []string
	for _, c := range s.Cubes {
		var b strings.Builder
		for _, l := range c {
			switch l {
			case LitPos:
				b.WriteByte('1')
			case LitNeg:
				b.WriteByte('0')
			default:
				b.WriteByte('-')
			}
		}
		if b.Len() == 0 {
			b.WriteByte('1')
		}
		parts = append(parts, b.String())
	}
	return strings.Join(parts, " + ")
}

// Canonical gate covers used throughout the generator and premapper.

// AndSOP returns the n-input AND cover.
func AndSOP(n int) SOP {
	s := NewSOP(n)
	c := make(Cube, n)
	for i := range c {
		c[i] = LitPos
	}
	s.AddCube(c)
	return s
}

// OrSOP returns the n-input OR cover.
func OrSOP(n int) SOP {
	s := NewSOP(n)
	for i := 0; i < n; i++ {
		c := make(Cube, n)
		c[i] = LitPos
		s.AddCube(c)
	}
	return s
}

// NandSOP returns the n-input NAND cover.
func NandSOP(n int) SOP {
	s := NewSOP(n)
	for i := 0; i < n; i++ {
		c := make(Cube, n)
		c[i] = LitNeg
		s.AddCube(c)
	}
	return s
}

// NorSOP returns the n-input NOR cover.
func NorSOP(n int) SOP {
	s := NewSOP(n)
	c := make(Cube, n)
	for i := range c {
		c[i] = LitNeg
	}
	s.AddCube(c)
	return s
}

// NotSOP returns the inverter cover.
func NotSOP() SOP {
	s := NewSOP(1)
	s.AddCube(Cube{LitNeg})
	return s
}

// BufSOP returns the buffer cover.
func BufSOP() SOP {
	s := NewSOP(1)
	s.AddCube(Cube{LitPos})
	return s
}

// XorSOP returns the n-input XOR (odd parity) cover in minterm form.
func XorSOP(n int) SOP {
	if n > MaxEvalInputs {
		panic("logic: xor cover too wide")
	}
	s := NewSOP(n)
	for r := 0; r < 1<<n; r++ {
		if popcount(uint(r))%2 == 1 {
			c := make(Cube, n)
			for j := 0; j < n; j++ {
				if r&(1<<j) != 0 {
					c[j] = LitPos
				} else {
					c[j] = LitNeg
				}
			}
			s.AddCube(c)
		}
	}
	return s
}

// MuxSOP returns the 2:1 mux cover over inputs (sel, a, b): sel ? a : b.
func MuxSOP() SOP {
	s := NewSOP(3)
	s.AddCube(Cube{LitPos, LitPos, LitDC})
	s.AddCube(Cube{LitNeg, LitDC, LitPos})
	return s
}

// AoiSOP returns the complement of (a&b | c&d)-style structures: an
// AND-OR-INVERT cover with the given group sizes. groups holds the fanin
// count of each AND term; the output is the NOR of the AND terms.
func AoiSOP(groups []int) SOP {
	n := 0
	for _, g := range groups {
		n += g
	}
	// Build OR-of-ANDs, then complement via minterm enumeration.
	pos := NewSOP(n)
	off := 0
	for _, g := range groups {
		c := make(Cube, n)
		for j := 0; j < g; j++ {
			c[off+j] = LitPos
		}
		pos.AddCube(c)
		off += g
	}
	return Complement(pos)
}

// OaiSOP returns an OR-AND-INVERT cover: the NAND of OR terms with the
// given group sizes.
func OaiSOP(groups []int) SOP {
	n := 0
	for _, g := range groups {
		n += g
	}
	// AND of ORs = complement of (OR of ANDs of complements).
	neg := NewSOP(n)
	off := 0
	for _, g := range groups {
		c := make(Cube, n)
		for j := 0; j < g; j++ {
			c[off+j] = LitNeg
		}
		neg.AddCube(c)
		off += g
	}
	pos := Complement(neg) // pos = AND of ORs
	return Complement(pos)
}

// Complement returns a cover for the complement of s, by truth-table
// enumeration (minterm form). Intended for small covers (library gates).
func Complement(s SOP) SOP {
	tt := s.TruthTable()
	out := NewSOP(s.NumInputs)
	rows := 1 << s.NumInputs
	for r := 0; r < rows; r++ {
		if tt[r/64]&(1<<(r%64)) == 0 {
			c := make(Cube, s.NumInputs)
			for j := 0; j < s.NumInputs; j++ {
				if r&(1<<j) != 0 {
					c[j] = LitPos
				} else {
					c[j] = LitNeg
				}
			}
			out.AddCube(c)
		}
	}
	return out
}

func popcount(x uint) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
