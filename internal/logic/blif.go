package logic

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseBLIF reads a combinational BLIF model (.model/.inputs/.outputs/
// .names/.end). Latches and subcircuits are rejected: the Lily flow, like
// the paper, operates on combinational logic only.
func ParseBLIF(r io.Reader) (*Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	var lines []string
	var cont strings.Builder
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		if i := strings.Index(raw, "#"); i >= 0 {
			raw = raw[:i]
		}
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		if strings.HasSuffix(raw, "\\") {
			cont.WriteString(strings.TrimSuffix(raw, "\\"))
			cont.WriteByte(' ')
			continue
		}
		cont.WriteString(raw)
		lines = append(lines, cont.String())
		cont.Reset()
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	n := New("blif")
	var outputs []string
	// Nodes may be referenced before definition; collect .names bodies first.
	type namesDecl struct {
		signals []string // inputs... output
		cubes   []string
	}
	var decls []namesDecl
	declared := make(map[string]bool)

	i := 0
	for i < len(lines) {
		fields := strings.Fields(lines[i])
		switch fields[0] {
		case ".model":
			if len(fields) > 1 {
				n.Name = fields[1]
			}
			i++
		case ".inputs":
			for _, name := range fields[1:] {
				if declared[name] {
					return nil, fmt.Errorf("blif: duplicate signal %q", name)
				}
				declared[name] = true
				n.AddPI(name)
			}
			i++
		case ".outputs":
			outputs = append(outputs, fields[1:]...)
			i++
		case ".names":
			d := namesDecl{signals: fields[1:]}
			if len(d.signals) == 0 {
				return nil, fmt.Errorf("blif: .names with no signals")
			}
			out := d.signals[len(d.signals)-1]
			if declared[out] {
				return nil, fmt.Errorf("blif: signal %q defined twice", out)
			}
			declared[out] = true
			i++
			for i < len(lines) && !strings.HasPrefix(lines[i], ".") {
				d.cubes = append(d.cubes, lines[i])
				i++
			}
			decls = append(decls, d)
		case ".end":
			i = len(lines)
		case ".latch", ".subckt", ".gate":
			return nil, fmt.Errorf("blif: unsupported construct %q (combinational models only)", fields[0])
		default:
			return nil, fmt.Errorf("blif: unknown directive %q", fields[0])
		}
	}

	// Build nodes in dependency order: iterate until all declarations with
	// satisfied fanins are placed (BLIF allows forward references).
	pending := decls
	for len(pending) > 0 {
		progressed := false
		var next []namesDecl
		for _, d := range pending {
			ready := true
			for _, s := range d.signals[:len(d.signals)-1] {
				if n.NodeByName(s) == nil {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, d)
				continue
			}
			progressed = true
			if err := buildNamesNode(n, d.signals, d.cubes); err != nil {
				return nil, err
			}
		}
		if !progressed {
			var missing []string
			for _, d := range pending {
				for _, s := range d.signals[:len(d.signals)-1] {
					if n.NodeByName(s) == nil && !declared[s] {
						missing = append(missing, s)
					}
				}
			}
			if len(missing) > 0 {
				return nil, fmt.Errorf("blif: undeclared signals %v", missing)
			}
			return nil, fmt.Errorf("blif: cyclic .names dependencies")
		}
		pending = next
	}

	for _, out := range outputs {
		nd := n.NodeByName(out)
		if nd == nil {
			return nil, fmt.Errorf("blif: output %q never defined", out)
		}
		n.MarkPO(nd.ID, out)
	}
	if err := n.Check(); err != nil {
		return nil, err
	}
	return n, nil
}

func buildNamesNode(n *Network, signals, cubeLines []string) error {
	out := signals[len(signals)-1]
	ins := signals[: len(signals)-1 : len(signals)-1]
	fanins := make([]NodeID, len(ins))
	for i, s := range ins {
		fanins[i] = n.NodeByName(s).ID
	}
	cover := NewSOP(len(ins))
	onSet := true
	for _, cl := range cubeLines {
		f := strings.Fields(cl)
		var inPart, outPart string
		switch {
		case len(ins) == 0 && len(f) == 1:
			outPart = f[0]
		case len(f) == 2:
			inPart, outPart = f[0], f[1]
		default:
			return fmt.Errorf("blif: malformed cube %q for %q", cl, out)
		}
		if len(inPart) != len(ins) {
			return fmt.Errorf("blif: cube %q width != %d inputs of %q", cl, len(ins), out)
		}
		c := make(Cube, len(ins))
		for i, ch := range inPart {
			switch ch {
			case '1':
				c[i] = LitPos
			case '0':
				c[i] = LitNeg
			case '-':
				c[i] = LitDC
			default:
				return fmt.Errorf("blif: bad literal %q in cube for %q", string(ch), out)
			}
		}
		switch outPart {
		case "1":
			onSet = true
		case "0":
			onSet = false
		default:
			return fmt.Errorf("blif: bad output value %q for %q", outPart, out)
		}
		cover.AddCube(c)
	}
	if !onSet {
		// Off-set cover: the listed cubes describe when the output is 0.
		// Complementing enumerates the truth table, so bound the width —
		// otherwise a hostile model panics the parser (found by fuzzing).
		if len(ins) > MaxEvalInputs {
			return fmt.Errorf("blif: off-set cover for %q has %d inputs; complementing supports at most %d",
				out, len(ins), MaxEvalInputs)
		}
		cover = Complement(cover)
	}
	if len(ins) == 0 && len(cubeLines) == 0 {
		cover = ConstSOP(false)
	}
	n.AddLogic(out, fanins, cover)
	return nil
}

// WriteBLIF renders the network as a combinational BLIF model. Nodes are
// emitted in topological order.
func WriteBLIF(w io.Writer, n *Network) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", n.Name)
	fmt.Fprintf(bw, ".inputs")
	for _, pi := range n.PIs {
		fmt.Fprintf(bw, " %s", n.Nodes[pi].Name)
	}
	fmt.Fprintln(bw)
	fmt.Fprintf(bw, ".outputs")
	for i := range n.POs {
		fmt.Fprintf(bw, " %s", n.PONames[i])
	}
	fmt.Fprintln(bw)
	order, err := n.TopoOrder()
	if err != nil {
		return err
	}
	for _, id := range order {
		nd := n.Nodes[id]
		if nd.Kind != KindLogic {
			continue
		}
		fmt.Fprintf(bw, ".names")
		for _, f := range nd.Fanins {
			fmt.Fprintf(bw, " %s", n.Nodes[f].Name)
		}
		fmt.Fprintf(bw, " %s\n", nd.Name)
		for _, c := range nd.Cover.Cubes {
			for _, l := range c {
				switch l {
				case LitPos:
					bw.WriteByte('1')
				case LitNeg:
					bw.WriteByte('0')
				default:
					bw.WriteByte('-')
				}
			}
			if len(c) > 0 {
				bw.WriteByte(' ')
			}
			bw.WriteString("1\n")
		}
	}
	// POs whose external name differs from the node name need an alias.
	for i, po := range n.POs {
		if n.PONames[i] != n.Nodes[po].Name {
			fmt.Fprintf(bw, ".names %s %s\n1 1\n", n.Nodes[po].Name, n.PONames[i])
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}
