package logic

import (
	"fmt"
	mathbits "math/bits"
)

// Cone returns the transitive fanin of root (including root itself, and
// including PIs) as a set keyed by node ID. This is the "logic cone" K_i of
// the paper when root is a primary output.
func (n *Network) Cone(root NodeID) map[NodeID]bool {
	seen := make(map[NodeID]bool)
	stack := []NodeID{root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		for _, f := range n.Nodes[id].Fanins {
			if !seen[f] {
				stack = append(stack, f)
			}
		}
	}
	return seen
}

// ReverseDFS returns the nodes of the cone rooted at root in reverse
// depth-first-search order: every node appears after all of its fanins.
// PIs are included. This is the processing order used by the dynamic
// programming cover (paper §2: "we start from the primary inputs of the
// logic cone and recursively process nodes in a reversed depth first search
// order toward the primary output").
func (n *Network) ReverseDFS(root NodeID) []NodeID {
	var order []NodeID
	seen := make(map[NodeID]bool)
	type frame struct {
		id  NodeID
		idx int
	}
	stack := []frame{{root, 0}}
	seen[root] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		nd := n.Nodes[f.id]
		if f.idx < len(nd.Fanins) {
			child := nd.Fanins[f.idx]
			f.idx++
			if !seen[child] {
				seen[child] = true
				stack = append(stack, frame{child, 0})
			}
			continue
		}
		order = append(order, f.id)
		stack = stack[:len(stack)-1]
	}
	return order
}

// Levels returns, for every live node, its logic depth: PIs are level 0 and
// each logic node is 1 + max(fanin levels).
func (n *Network) Levels() map[NodeID]int {
	order, err := n.TopoOrder()
	if err != nil {
		panic(err) // Levels is only called on checked networks.
	}
	lv := make(map[NodeID]int, len(order))
	for _, id := range order {
		nd := n.Nodes[id]
		if nd.Kind == KindPI {
			lv[id] = 0
			continue
		}
		max := 0
		for _, f := range nd.Fanins {
			if lv[f]+1 > max {
				max = lv[f] + 1
			}
		}
		lv[id] = max
	}
	return lv
}

// Depth returns the maximum logic level over all POs.
func (n *Network) Depth() int {
	lv := n.Levels()
	max := 0
	for _, po := range n.POs {
		if lv[po] > max {
			max = lv[po]
		}
	}
	return max
}

// Sweep removes nodes that are not in the transitive fanin of any primary
// output, and collapses single-input identity (buffer) nodes that are not
// POs by rewiring their fanouts. It returns the number of nodes removed.
func (n *Network) Sweep() int {
	removed := 0
	// Collapse buffers (single-fanin, positive-unate identity covers).
	for _, nd := range n.Nodes {
		if nd == nil || nd.Kind != KindLogic || len(nd.Fanins) != 1 || n.IsPO(nd.ID) {
			continue
		}
		if !EqualFunc(nd.Cover, BufSOP()) {
			continue
		}
		src := nd.Fanins[0]
		for _, fo := range append([]NodeID(nil), nd.fanouts...) {
			n.ReplaceFanin(fo, nd.ID, src)
		}
	}
	// Mark reachable from POs.
	live := make(map[NodeID]bool)
	for _, po := range n.POs {
		for id := range n.Cone(po) {
			live[id] = true
		}
	}
	// Delete dead logic nodes in reverse topological order so fanout lists
	// drain naturally.
	order, err := n.TopoOrder()
	if err != nil {
		panic(err)
	}
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		nd := n.Node(id)
		if nd == nil || nd.Kind != KindLogic || live[id] {
			continue
		}
		if len(nd.fanouts) == 0 {
			n.Delete(id)
			removed++
		}
	}
	return removed
}

// ExitLines counts, for each ordered pair of PO cones (i, j), the number of
// "exit lines" from cone i into cone j: edges from a node inside cone i to
// a node inside cone j but outside cone i (paper §3.5). The result is the
// matrix M with M[i][j] = E(K_i, K_j); diagonal entries are zero.
// The cone-membership sets are computed as per-node bitsets (bit i of
// inCone[v] ⇔ v ∈ K_i) by one reverse-topological sweep — v is in cone i
// iff it is PO i or one of its fanouts is — and each edge u→fo then
// contributes M[i][j]++ for every i with u∈K_i, fo∉K_i and every j with
// fo∈K_j (j=i is excluded automatically since fo∉K_i). This replaces k
// hash-set cone traversals and a per-edge k-scan with word-parallel
// bit operations.
func (n *Network) ExitLines() [][]int {
	k := len(n.POs)
	m := make([][]int, k)
	for i := range m {
		m[i] = make([]int, k)
	}
	if k == 0 {
		return m
	}
	order, err := n.TopoOrder()
	if err != nil {
		panic(err) // ExitLines is only called on checked networks.
	}
	words := (k + 63) / 64
	inCone := make([]uint64, len(n.Nodes)*words)
	coneBits := func(id NodeID) []uint64 {
		return inCone[int(id)*words : (int(id)+1)*words]
	}
	for i, po := range n.POs {
		coneBits(po)[i/64] |= 1 << (i % 64)
	}
	// Reverse topological order: every node's fanouts are already final.
	for idx := len(order) - 1; idx >= 0; idx-- {
		b := coneBits(order[idx])
		for _, fo := range n.Nodes[order[idx]].fanouts {
			fb := coneBits(fo)
			for w := range b {
				b[w] |= fb[w]
			}
		}
	}
	for _, id := range order {
		ub := coneBits(id)
		for _, fo := range n.Nodes[id].fanouts {
			fb := coneBits(fo)
			for w, uw := range ub {
				iw := uw &^ fb[w] // cones containing id but exited by this edge
				for iw != 0 {
					row := m[w*64+mathbits.TrailingZeros64(iw)]
					iw &= iw - 1
					for w2, jw := range fb {
						for jw != 0 {
							row[w2*64+mathbits.TrailingZeros64(jw)]++
							jw &= jw - 1
						}
					}
				}
			}
		}
	}
	return m
}

// Stats summarizes a network for reporting.
type Stats struct {
	PIs, POs, Logic int
	Literals        int
	Depth           int
	MaxFanin        int
	MaxFanout       int
}

// Stat computes summary statistics for the network.
func (n *Network) Stat() Stats {
	var s Stats
	s.PIs = len(n.PIs)
	s.POs = len(n.POs)
	for _, nd := range n.Nodes {
		if nd == nil {
			continue
		}
		if nd.Kind == KindLogic {
			s.Logic++
			s.Literals += nd.Cover.LiteralCount()
			if len(nd.Fanins) > s.MaxFanin {
				s.MaxFanin = len(nd.Fanins)
			}
		}
		if fc := n.FanoutCount(nd.ID); fc > s.MaxFanout {
			s.MaxFanout = fc
		}
	}
	s.Depth = n.Depth()
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("pi=%d po=%d nodes=%d lits=%d depth=%d maxfi=%d maxfo=%d",
		s.PIs, s.POs, s.Logic, s.Literals, s.Depth, s.MaxFanin, s.MaxFanout)
}
