package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGateCovers(t *testing.T) {
	cases := []struct {
		name string
		sop  SOP
		fn   func(in []bool) bool
	}{
		{"and3", AndSOP(3), func(in []bool) bool { return in[0] && in[1] && in[2] }},
		{"or3", OrSOP(3), func(in []bool) bool { return in[0] || in[1] || in[2] }},
		{"nand2", NandSOP(2), func(in []bool) bool { return !(in[0] && in[1]) }},
		{"nor4", NorSOP(4), func(in []bool) bool { return !(in[0] || in[1] || in[2] || in[3]) }},
		{"not", NotSOP(), func(in []bool) bool { return !in[0] }},
		{"buf", BufSOP(), func(in []bool) bool { return in[0] }},
		{"xor3", XorSOP(3), func(in []bool) bool { return in[0] != in[1] != in[2] }},
		{"mux", MuxSOP(), func(in []bool) bool {
			if in[0] {
				return in[1]
			}
			return in[2]
		}},
		{"aoi22", AoiSOP([]int{2, 2}), func(in []bool) bool { return !(in[0] && in[1] || in[2] && in[3]) }},
		{"oai21", OaiSOP([]int{2, 1}), func(in []bool) bool { return !((in[0] || in[1]) && in[2]) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.sop.NumInputs
			in := make([]bool, n)
			for r := 0; r < 1<<n; r++ {
				for j := 0; j < n; j++ {
					in[j] = r&(1<<j) != 0
				}
				if got, want := tc.sop.Eval(in), tc.fn(in); got != want {
					t.Fatalf("%s(%v) = %v, want %v", tc.name, in, got, want)
				}
			}
		})
	}
}

func TestConstCovers(t *testing.T) {
	if !ConstSOP(true).IsConst1() {
		t.Error("ConstSOP(true) not const1")
	}
	if !ConstSOP(false).IsConst0() {
		t.Error("ConstSOP(false) not const0")
	}
	if ConstSOP(true).IsConst0() || ConstSOP(false).IsConst1() {
		t.Error("const covers confused")
	}
	if !ConstSOP(true).Eval(nil) {
		t.Error("const1 evaluates false")
	}
	if ConstSOP(false).Eval(nil) {
		t.Error("const0 evaluates true")
	}
}

func TestComplementInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5)
		s := randomSOP(rng, n)
		cc := Complement(Complement(s))
		if !EqualFunc(s, cc) {
			t.Fatalf("complement not an involution for %v", s)
		}
		// s AND complement(s) must be 0 everywhere.
		tt, tc := s.TruthTable(), Complement(s).TruthTable()
		for i := range tt {
			if tt[i]&tc[i] != 0 {
				t.Fatalf("cover and complement overlap: %v", s)
			}
		}
	}
}

func randomSOP(rng *rand.Rand, n int) SOP {
	s := NewSOP(n)
	cubes := rng.Intn(6)
	for i := 0; i < cubes; i++ {
		c := make(Cube, n)
		for j := range c {
			c[j] = Lit(rng.Intn(3))
		}
		s.AddCube(c)
	}
	return s
}

func TestLiteralCount(t *testing.T) {
	if got := AndSOP(4).LiteralCount(); got != 4 {
		t.Errorf("and4 literals = %d, want 4", got)
	}
	if got := OrSOP(3).LiteralCount(); got != 3 {
		t.Errorf("or3 literals = %d, want 3", got)
	}
	if got := MuxSOP().LiteralCount(); got != 4 {
		t.Errorf("mux literals = %d, want 4", got)
	}
}

func TestDependsOn(t *testing.T) {
	m := MuxSOP()
	for i := 0; i < 3; i++ {
		if !m.DependsOn(i) {
			t.Errorf("mux should depend on input %d", i)
		}
	}
	s := NewSOP(2)
	s.AddCube(Cube{LitPos, LitDC})
	if s.DependsOn(1) {
		t.Error("cover should not depend on input 1")
	}
}

func TestTruthTableWideWord(t *testing.T) {
	// 7 inputs spans two words; parity must alternate correctly.
	x := XorSOP(7)
	tt := x.TruthTable()
	if len(tt) != 2 {
		t.Fatalf("expected 2 words, got %d", len(tt))
	}
	in := make([]bool, 7)
	for r := 0; r < 128; r++ {
		ones := 0
		for j := 0; j < 7; j++ {
			in[j] = r&(1<<j) != 0
			if in[j] {
				ones++
			}
		}
		want := ones%2 == 1
		got := tt[r/64]&(1<<(r%64)) != 0
		if got != want {
			t.Fatalf("xor7 row %d = %v, want %v", r, got, want)
		}
	}
}

func TestEqualFuncDifferentStructure(t *testing.T) {
	// OR(a,b) written as complement of NOR must compare equal.
	a := OrSOP(2)
	b := Complement(NorSOP(2))
	if !EqualFunc(a, b) {
		t.Error("or2 != !nor2")
	}
	if EqualFunc(OrSOP(2), AndSOP(2)) {
		t.Error("or2 == and2")
	}
	if EqualFunc(OrSOP(2), OrSOP(3)) {
		t.Error("covers of different widths compare equal")
	}
}

func TestSOPCloneIndependence(t *testing.T) {
	s := AndSOP(2)
	c := s.Clone()
	c.Cubes[0][0] = LitNeg
	if s.Cubes[0][0] != LitPos {
		t.Error("Clone shares cube storage")
	}
}

func TestSOPStringRendering(t *testing.T) {
	if got := AndSOP(2).String(); got != "11" {
		t.Errorf("and2 string = %q", got)
	}
	if got := NewSOP(2).String(); got != "0" {
		t.Errorf("const0 string = %q", got)
	}
	if got := ConstSOP(true).String(); got != "1" {
		t.Errorf("const1 string = %q", got)
	}
}

// Property: De Morgan — complement of AND equals OR of complements.
func TestDeMorganProperty(t *testing.T) {
	f := func(width uint8) bool {
		n := int(width%5) + 1
		return EqualFunc(Complement(AndSOP(n)), NandSOP(n)) &&
			EqualFunc(Complement(OrSOP(n)), NorSOP(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Eval agrees with TruthTable on random covers and rows.
func TestEvalMatchesTruthTable(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(6)
		s := randomSOP(rng, n)
		tt := s.TruthTable()
		r := rng.Intn(1 << n)
		in := make([]bool, n)
		for j := 0; j < n; j++ {
			in[j] = r&(1<<j) != 0
		}
		if s.Eval(in) != (tt[r/64]&(1<<(r%64)) != 0) {
			t.Fatalf("eval/table mismatch on %v row %d", s, r)
		}
	}
}
