package logic

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

// FuzzParseBLIF exercises the BLIF reader with arbitrary input. The parser
// must never panic: any malformed model is rejected with an error. Models
// it accepts must survive a WriteBLIF/ParseBLIF round trip with the same
// interface and the same Boolean function on a sample of assignments.
func FuzzParseBLIF(f *testing.F) {
	f.Add(".model t\n.inputs a b\n.outputs x\n.names a b x\n11 1\n.end\n")
	f.Add(".model t\n.inputs a b\n.outputs x\n.names a b x\n00 0\n-1 0\n.end\n")
	f.Add(".model c\n.inputs a\n.outputs y\n.names a y\n0 1\n.end\n")
	f.Add(".model k\n.inputs a b c\n.outputs o\n.names a b t\n1- 1\n.names t c o\n11 1\n.end\n")
	f.Add(".model w\n.outputs k\n.names k\n.end\n")
	f.Add(".inputs a\n.outputs a\n.end")
	f.Add(".model x\n.inputs " + strings.Repeat("i ", 20) + "\n.outputs z\n.names z\n1\n.end\n")
	f.Add("# comment only\n")
	f.Add(".model m\n.inputs a\n.outputs x\n.names a x \\\n1 1\n.end\n")
	f.Fuzz(func(t *testing.T, src string) {
		n, err := ParseBLIF(strings.NewReader(src))
		if err != nil {
			return // rejected input: fine, as long as we did not panic
		}
		if cerr := n.Check(); cerr != nil {
			t.Fatalf("accepted network fails Check: %v", cerr)
		}
		// Round trip: writing and re-reading must preserve the interface.
		if n.NumLogic() > 500 {
			return // keep the fuzz iteration cheap
		}
		var buf bytes.Buffer
		if werr := WriteBLIF(&buf, n); werr != nil {
			t.Fatalf("WriteBLIF of accepted network: %v", werr)
		}
		m, rerr := ParseBLIF(bytes.NewReader(buf.Bytes()))
		if rerr != nil {
			t.Fatalf("round trip rejected:\n%s\nerr: %v", buf.String(), rerr)
		}
		if got, want := piNames(m), piNames(n); !equalStrings(got, want) {
			t.Fatalf("round trip PIs = %v, want %v", got, want)
		}
		if got, want := poNames(m), poNames(n); !equalStrings(got, want) {
			t.Fatalf("round trip POs = %v, want %v", got, want)
		}
		// Functional spot check on a few deterministic assignments.
		for pattern := 0; pattern < 4; pattern++ {
			in := map[string]bool{}
			for i, pi := range n.PIs {
				in[n.Nodes[pi].Name] = (i+pattern)%2 == 0 != (pattern >= 2)
			}
			want, err1 := n.Eval(in)
			got, err2 := m.Eval(in)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("eval error mismatch: %v vs %v", err1, err2)
			}
			if err1 != nil {
				continue
			}
			for name, w := range want {
				if got[name] != w {
					t.Fatalf("round trip changed function: output %q = %v, want %v (pattern %d)",
						name, got[name], w, pattern)
				}
			}
		}
	})
}

// FuzzSOP drives the cover algebra with arbitrary cube tables. Invariants:
// Eval agrees with TruthTable on every row, Clone is functionally equal,
// and double complement is the identity.
func FuzzSOP(f *testing.F) {
	f.Add([]byte{3, '1', '0', '-', '1', '1', '1'})
	f.Add([]byte{1, '0'})
	f.Add([]byte{0})
	f.Add([]byte{4, '1', '-', '-', '0', '0', '1', '1', '-'})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		width := int(data[0] % 9) // 0..8 inputs keeps tables tiny
		s := NewSOP(width)
		body := data[1:]
		for len(body) >= width && len(s.Cubes) < 32 {
			c := make(Cube, width)
			ok := true
			for i := 0; i < width; i++ {
				switch body[i] {
				case '1':
					c[i] = LitPos
				case '0':
					c[i] = LitNeg
				case '-':
					c[i] = LitDC
				default:
					ok = false
				}
			}
			body = body[width:]
			if !ok {
				continue
			}
			s.AddCube(c)
			if width == 0 {
				break // a zero-width cube is the constant 1; one is enough
			}
		}

		tt := s.TruthTable()
		in := make([]bool, width)
		rows := 1 << width
		for r := 0; r < rows; r++ {
			for j := 0; j < width; j++ {
				in[j] = r&(1<<j) != 0
			}
			want := tt[r/64]&(1<<(r%64)) != 0
			if got := s.Eval(in); got != want {
				t.Fatalf("Eval(%v) = %v, truth table says %v", in, got, want)
			}
		}
		if !EqualFunc(s, s.Clone()) {
			t.Fatal("Clone changed the function")
		}
		if !EqualFunc(s, Complement(Complement(s))) {
			t.Fatalf("double complement changed the function of %v", s)
		}
		if s.IsConst0() && !Complement(s).IsConst1() && width > 0 {
			// Complement of constant 0 must evaluate to 1 everywhere.
			c := Complement(s)
			for j := range in {
				in[j] = false
			}
			if !c.Eval(in) {
				t.Fatal("complement of constant 0 is not constant 1")
			}
		}
	})
}

func piNames(n *Network) []string {
	out := make([]string, 0, len(n.PIs))
	for _, pi := range n.PIs {
		out = append(out, n.Nodes[pi].Name)
	}
	sort.Strings(out)
	return out
}

func poNames(n *Network) []string {
	out := append([]string(nil), n.PONames...)
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
