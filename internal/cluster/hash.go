package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Rendezvous (highest-random-weight) hashing over the engine's request
// digest. Every node computes the same ranking from the same static
// membership list, so request ownership needs no coordination: the
// top-ranked node owns the digest, and the rest of the order is the
// deterministic spill sequence when the owner is down or shedding.
// Unlike consistent hashing, removing one node only ever reassigns the
// digests that node owned — everything else keeps its owner and its
// warm cache.

// score is the HRW weight of (node, digest): the first 8 bytes of
// SHA-256(node || 0x00 || digest) as a big-endian integer. SHA-256 keeps
// the weight uniform and independent across nodes, and reuses the hash
// the digest itself is built from — no second hash family to reason about.
func score(node, digest string) uint64 {
	h := sha256.New()
	h.Write([]byte(node))
	h.Write([]byte{0})
	h.Write([]byte(digest))
	var sum [sha256.Size]byte
	s := h.Sum(sum[:0])
	return binary.BigEndian.Uint64(s[:8])
}

// Rank orders nodes by descending HRW score for digest: Rank(...)[0] is
// the owner, the tail is the spill order. Ties (astronomically unlikely,
// but the order must be total) break on the smaller node ID. The input
// slice is not modified.
func Rank(digest string, nodes []string) []string {
	ranked := make([]string, len(nodes))
	copy(ranked, nodes)
	scores := make(map[string]uint64, len(ranked))
	for _, n := range ranked {
		scores[n] = score(n, digest)
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		si, sj := scores[ranked[i]], scores[ranked[j]]
		if si != sj {
			return si > sj
		}
		return ranked[i] < ranked[j]
	})
	return ranked
}

// Owner returns the top-ranked node for digest ("" for an empty list).
func Owner(digest string, nodes []string) string {
	if len(nodes) == 0 {
		return ""
	}
	best := nodes[0]
	bestScore := score(best, digest)
	for _, n := range nodes[1:] {
		if s := score(n, digest); s > bestScore || (s == bestScore && n < best) {
			best, bestScore = n, s
		}
	}
	return best
}
