package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
	"testing"
)

// digestN derives a well-formed (hex SHA-256) digest from an index.
func digestN(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("digest-%d", i)))
	return hex.EncodeToString(sum[:])
}

func TestRankDeterministicAndComplete(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4"}
	d := digestN(7)
	first := Rank(d, nodes)
	if len(first) != len(nodes) {
		t.Fatalf("Rank dropped nodes: %v", first)
	}
	seen := make(map[string]bool)
	for _, id := range first {
		seen[id] = true
	}
	for _, id := range nodes {
		if !seen[id] {
			t.Fatalf("Rank lost node %s: %v", id, first)
		}
	}
	for i := 0; i < 50; i++ {
		if got := Rank(d, nodes); !reflect.DeepEqual(got, first) {
			t.Fatalf("Rank not deterministic: %v vs %v", got, first)
		}
	}
	if !reflect.DeepEqual(nodes, []string{"n1", "n2", "n3", "n4"}) {
		t.Fatalf("Rank mutated its input: %v", nodes)
	}
}

// TestRankOrderIndependent: every node must compute the same ranking
// from its own view of the membership, whatever order its flag listed
// the peers in — that is what lets the nodes agree without coordination.
func TestRankOrderIndependent(t *testing.T) {
	a := []string{"n1", "n2", "n3", "n4"}
	b := []string{"n4", "n2", "n1", "n3"}
	for i := 0; i < 100; i++ {
		d := digestN(i)
		if ra, rb := Rank(d, a), Rank(d, b); !reflect.DeepEqual(ra, rb) {
			t.Fatalf("digest %d: ranking depends on input order: %v vs %v", i, ra, rb)
		}
	}
}

// TestOwnerStableUnderNonOwnerRemoval is rendezvous hashing's defining
// property: removing a node only reassigns the digests that node owned.
// Every other digest keeps its owner, so a node failure invalidates no
// other node's cache locality.
func TestOwnerStableUnderNonOwnerRemoval(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	for i := 0; i < 500; i++ {
		d := digestN(i)
		owner := Owner(d, nodes)
		for _, removed := range nodes {
			if removed == owner {
				continue
			}
			rest := make([]string, 0, len(nodes)-1)
			for _, id := range nodes {
				if id != removed {
					rest = append(rest, id)
				}
			}
			if got := Owner(d, rest); got != owner {
				t.Fatalf("digest %d: removing non-owner %s moved ownership %s→%s",
					i, removed, owner, got)
			}
		}
	}
}

// TestOwnerFailoverIsNextInRank: when the owner disappears, its digests
// move to rank position 2 — the deterministic spill target the Remote
// walk already uses.
func TestOwnerFailoverIsNextInRank(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	for i := 0; i < 200; i++ {
		d := digestN(i)
		order := Rank(d, nodes)
		rest := []string{}
		for _, id := range nodes {
			if id != order[0] {
				rest = append(rest, id)
			}
		}
		if got := Owner(d, rest); got != order[1] {
			t.Fatalf("digest %d: failover owner %s, want rank-2 node %s", i, got, order[1])
		}
	}
}

// TestOwnerRoughBalance: HRW should spread ownership close to uniformly.
// With 1200 digests over 3 nodes the expected share is 400; allow a wide
// ±50% band — this guards against a broken hash, not statistics.
func TestOwnerRoughBalance(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	counts := map[string]int{}
	const total = 1200
	for i := 0; i < total; i++ {
		counts[Owner(digestN(i), nodes)]++
	}
	for _, id := range nodes {
		if c := counts[id]; c < total/6 || c > total/2 {
			t.Fatalf("node %s owns %d of %d digests — hash badly skewed (%v)", id, c, total, counts)
		}
	}
}

func TestOwnerEdgeCases(t *testing.T) {
	if got := Owner(digestN(1), nil); got != "" {
		t.Fatalf("Owner of empty ring = %q, want \"\"", got)
	}
	if got := Owner(digestN(1), []string{"solo"}); got != "solo" {
		t.Fatalf("Owner of 1-ring = %q, want solo", got)
	}
}
