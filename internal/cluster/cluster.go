// Package cluster turns independent lilyd processes into one logical
// mapping service. Membership is a static, flag-configured peer list;
// there is no coordinator and no gossip. Routing is rendezvous (HRW)
// hashing on the engine's content-addressed request digest, so every node
// independently agrees on which node owns a request — the same request
// always lands on (and caches at) the same owner, making the owner's LRU
// a shared result-cache tier.
//
// The client side (Remote, wired into engine.Config.Remote) walks the HRW
// order for a digest this node does not own: peek the owner's cache
// (GET /v1/cache/{digest}), else proxy the compute to it
// (POST /v1/cluster/jobs). An owner that is down, load-shedding (429), or
// past its deadline spills the request to the next node in the HRW order,
// and the walk stops at this node's own position — local compute is the
// final fallback, so a degraded cluster never fails a job. Proxied-in
// requests are marked LocalOnly, so routing never chains through a third
// node.
//
// Determinism is what makes any of this sound: the pipeline is
// byte-identical for a given digest on every node (the golden SHA-256
// harness asserts it cluster-wide), so serving from a peer's cache, a
// peer's worker, or the local pool are interchangeable.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lily"
	"lily/internal/engine"
	"lily/internal/obs"
)

// Cluster metric names.
const (
	metricPeerUp      = "lily_cluster_peer_up"
	metricProbeFails  = "lily_cluster_probe_failures_total"
	metricRemoteHits  = "lily_cluster_remote_cache_hits_total"
	metricProxied     = "lily_cluster_proxied_total"
	metricSpills      = "lily_cluster_spills_total"
	metricPeekLatency = "lily_cluster_peek_seconds"
)

// ErrShed marks a peer that answered 429: alive but refusing work.
var ErrShed = errors.New("cluster: peer is shedding load")

// Node is one cluster member: a stable ID (the HRW hash input — renaming
// a node reshuffles its ownership) and its base HTTP URL.
type Node struct {
	ID  string
	URL string
}

// Config assembles a Cluster.
type Config struct {
	// Self is this node's ID. It participates in the HRW ranking but has
	// no URL — requests it owns are computed locally.
	Self string
	// Peers lists the other nodes. Entries with ID == Self are ignored,
	// so every node can be launched with the same full membership list.
	Peers []Node
	// Client performs peer HTTP calls; nil gets a private client.
	// Per-call deadlines come from PeekTimeout/ProxyTimeout.
	Client *http.Client
	// ProbeInterval is the health-probe cadence (default 2s). A failing
	// peer is probed with exponential backoff up to 16× the interval.
	ProbeInterval time.Duration
	// PeekTimeout bounds a cache peek or health probe (default 2s) —
	// peeks sit on the job's critical path, so they must fail fast.
	PeekTimeout time.Duration
	// ProxyTimeout bounds a proxied compute (default 5m); the job's own
	// context still applies underneath.
	ProxyTimeout time.Duration
	// Metrics is the registry for peer-health gauges and routing
	// counters; nil creates a private one. cmd/lilyd shares the engine's
	// registry so one /metrics scrape covers everything.
	Metrics *obs.Registry
	// Logger, when set, records peer up/down transitions and spills.
	Logger *slog.Logger
}

// peer is the live state of one remote node.
type peer struct {
	node Node
	// up is optimistic-start: a fresh cluster routes immediately, and the
	// first failed call (or probe) flips it.
	up           atomic.Bool
	streak       atomic.Uint64 // consecutive probe/call failures
	backoffUntil atomic.Int64  // unix nanos; probe skipped until then
	upGauge      *obs.Gauge
}

func (p *peer) noteSuccess() {
	p.streak.Store(0)
	p.backoffUntil.Store(0)
	if !p.up.Swap(true) {
		p.upGauge.Set(1)
	}
}

// noteFailure marks the peer down and schedules its next probe with
// exponential backoff: interval << (streak-1), capped at 16× interval.
// The first failure after a recovery probes again at the base interval —
// streak resets on success (noteSuccess), so a peer that was healthy a
// moment ago must not restart deep in the backoff curve.
func (p *peer) noteFailure(now time.Time, interval time.Duration) {
	streak := p.streak.Add(1)
	shift := streak - 1
	if shift > 4 {
		shift = 4
	}
	p.backoffUntil.Store(now.Add(interval << shift).UnixNano())
	if p.up.Swap(false) {
		p.upGauge.Set(0)
	}
}

func (p *peer) available() bool { return p.up.Load() }

// Cluster is the peer layer: health-probed membership plus the routed
// remote path. Safe for concurrent use by every engine worker.
type Cluster struct {
	cfg    Config
	client *http.Client
	peers  []*peer          // sorted by ID for deterministic listings
	byID   map[string]*peer // shares peer values with peers
	ring   []string         // Self + peer IDs: the HRW membership

	reg         *obs.Registry
	remoteHits  *obs.Counter
	proxied     *obs.Counter
	spills      *obs.CounterVec
	spillsTotal atomic.Uint64
	probeFails  *obs.Counter
	peekSeconds *obs.Histogram

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds the peer layer and starts its health prober; Close stops it.
func New(cfg Config) (*Cluster, error) {
	if cfg.Self == "" {
		return nil, errors.New("cluster: Config.Self must be set")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.PeekTimeout <= 0 {
		cfg.PeekTimeout = 2 * time.Second
	}
	if cfg.ProxyTimeout <= 0 {
		cfg.ProxyTimeout = 5 * time.Minute
	}
	c := &Cluster{
		cfg:    cfg,
		client: cfg.Client,
		byID:   make(map[string]*peer),
		stop:   make(chan struct{}),
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	c.reg = cfg.Metrics
	if c.reg == nil {
		c.reg = obs.NewRegistry()
	}
	peerUp := c.reg.GaugeVec(metricPeerUp, "Peer health by node ID (1 = reachable).", "peer")
	c.remoteHits = c.reg.Counter(metricRemoteHits,
		"Requests served from a peer's result cache (cache peek hit).")
	c.proxied = c.reg.Counter(metricProxied,
		"Requests computed by their owner node via the proxy endpoint.")
	c.spills = c.reg.CounterVec(metricSpills,
		"Requests that skipped a node in the HRW order, by reason.", "reason")
	c.probeFails = c.reg.Counter(metricProbeFails, "Failed peer health probes.")
	c.peekSeconds = c.reg.Histogram(metricPeekLatency, "Cache-peek round-trip time.", obs.DefBuckets)
	for _, n := range cfg.Peers {
		if n.ID == cfg.Self {
			continue
		}
		if n.ID == "" || n.URL == "" {
			return nil, fmt.Errorf("cluster: peer needs both ID and URL (got %+v)", n)
		}
		if _, dup := c.byID[n.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer ID %q", n.ID)
		}
		p := &peer{node: n, upGauge: peerUp.With(n.ID)}
		p.up.Store(true)
		p.upGauge.Set(1)
		c.byID[n.ID] = p
		c.peers = append(c.peers, p)
	}
	sort.Slice(c.peers, func(i, j int) bool { return c.peers[i].node.ID < c.peers[j].node.ID })
	c.ring = make([]string, 0, len(c.peers)+1)
	c.ring = append(c.ring, cfg.Self)
	for _, p := range c.peers {
		c.ring = append(c.ring, p.node.ID)
	}
	c.wg.Add(1)
	go c.probeLoop()
	return c, nil
}

// Close stops the health prober. In-flight Remote calls finish normally.
func (c *Cluster) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// Registry returns the metrics registry the cluster reports into.
func (c *Cluster) Registry() *obs.Registry { return c.reg }

// Nodes returns the full membership (self + peers) — the HRW ring.
func (c *Cluster) Nodes() []string {
	out := make([]string, len(c.ring))
	copy(out, c.ring)
	return out
}

// Self returns this node's ID.
func (c *Cluster) Self() string { return c.cfg.Self }

// OwnerOf returns the node that owns a digest under the current ring.
func (c *Cluster) OwnerOf(digest string) string { return Owner(digest, c.ring) }

// Remote implements engine.RemoteFunc: walk the HRW order for the digest
// until a peer serves the request or the walk reaches this node's own
// position (→ compute locally). See the package comment for the policy.
func (c *Cluster) Remote(ctx context.Context, digest string, circ *lily.Circuit, req engine.Request) (*engine.Outcome, error) {
	var blif []byte // serialized lazily, once, on the first proxy attempt
	for _, id := range Rank(digest, c.ring) {
		if id == c.cfg.Self {
			return nil, nil // our slot in the spill order: compute locally
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p := c.byID[id]
		if !p.available() {
			c.spill(id, digest, "down", nil)
			continue
		}
		out, found, err := c.peek(ctx, p, digest)
		if err != nil {
			c.spill(id, digest, classifySpill(err), err)
			continue
		}
		if found {
			c.remoteHits.Inc()
			return out, nil
		}
		// Owner cache miss: hand it the compute so the result lands (and
		// stays cached) at its HRW home.
		if blif == nil {
			var buf bytes.Buffer
			if werr := circ.WriteBLIF(&buf); werr != nil {
				return nil, fmt.Errorf("cluster: serialize circuit: %w", werr)
			}
			blif = buf.Bytes()
		}
		out, err = c.proxy(ctx, p, digest, blif, req)
		if err != nil {
			c.spill(id, digest, classifySpill(err), err)
			continue
		}
		c.proxied.Inc()
		return out, nil
	}
	// Self is always in the ring, so the loop returns there; this is only
	// reachable with a pathological ring. Compute locally.
	return nil, nil
}

// spill records one skipped node in the HRW walk.
func (c *Cluster) spill(id, digest, reason string, err error) {
	c.spills.With(reason).Inc()
	c.spillsTotal.Add(1)
	if lg := c.cfg.Logger; lg != nil {
		attrs := []any{
			slog.String("peer", id),
			slog.String("digest", digest),
			slog.String("reason", reason),
		}
		if err != nil {
			attrs = append(attrs, slog.String("error", err.Error()))
		}
		lg.Warn("cluster spill", attrs...)
	}
}

// classifySpill folds a peer error into the spill-reason label set (fixed
// cardinality: down, shed, timeout, error).
func classifySpill(err error) string {
	switch {
	case errors.Is(err, ErrShed):
		return "shed"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case isNetErr(err):
		return "down"
	default:
		return "error"
	}
}

// isNetErr reports whether err came from the transport rather than the
// peer's handler: http.Client wraps every transport failure in
// *url.Error, while a decoded HTTP status never is one.
func isNetErr(err error) bool {
	var uerr *url.Error
	return errors.As(err, &uerr)
}

// peek asks a node's cache for the digest. Returns (outcome, true) on a
// hit, (nil, false) on a clean miss, error otherwise. Bounded by
// PeekTimeout — the peek sits on the job's critical path.
func (c *Cluster) peek(ctx context.Context, p *peer, digest string) (*engine.Outcome, bool, error) {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.PeekTimeout)
	defer cancel()
	start := time.Now()
	hreq, err := http.NewRequestWithContext(pctx, http.MethodGet, p.node.URL+"/v1/cache/"+digest, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.client.Do(hreq)
	c.peekSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		// Transport failure: the peer is unreachable (or too slow even
		// for a peek); mark it down so the next walks skip it until a
		// probe brings it back.
		p.noteFailure(time.Now(), c.cfg.ProbeInterval)
		return nil, false, err
	}
	defer discard(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		p.noteSuccess()
		out, err := decodeOutcome(resp.Body, digest)
		if err != nil {
			return nil, false, err
		}
		return out, true, nil
	case http.StatusNotFound:
		p.noteSuccess()
		return nil, false, nil
	case http.StatusTooManyRequests:
		return nil, false, ErrShed
	default:
		return nil, false, fmt.Errorf("cluster: peek %s: %s", p.node.ID, resp.Status)
	}
}

// proxy sends the request to a node for local execution there. Bounded by
// ProxyTimeout on top of the job's own context. A proxy deadline does NOT
// mark the peer down — the job may simply be bigger than the budget.
func (c *Cluster) proxy(ctx context.Context, p *peer, digest string, blif []byte, req engine.Request) (*engine.Outcome, error) {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.ProxyTimeout)
	defer cancel()
	body, err := json.Marshal(WireJob{
		Digest:    digest,
		BLIF:      string(blif),
		Options:   req.Options,
		SVG:       req.RenderSVG,
		EmitBLIF:  req.EmitBLIF,
		TimeoutMS: req.Timeout.Milliseconds(),
	})
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(pctx, http.MethodPost, p.node.URL+"/v1/cluster/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(hreq)
	if err != nil {
		if pctx.Err() == nil {
			// Failed without exhausting the proxy budget: transport-level,
			// the peer is gone.
			p.noteFailure(time.Now(), c.cfg.ProbeInterval)
		}
		return nil, err
	}
	defer discard(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		p.noteSuccess()
		return decodeOutcome(resp.Body, digest)
	case http.StatusTooManyRequests:
		return nil, ErrShed
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("cluster: proxy to %s: %s: %s", p.node.ID, resp.Status, bytes.TrimSpace(msg))
	}
}

// decodeOutcome parses a WireOutcome and checks it answers the digest we
// asked about — a mismatch means version skew between nodes, and the
// caller must fall back rather than serve another mapper's bytes.
func decodeOutcome(r io.Reader, digest string) (*engine.Outcome, error) {
	var wo WireOutcome
	if err := json.NewDecoder(r).Decode(&wo); err != nil {
		return nil, fmt.Errorf("cluster: decode outcome: %w", err)
	}
	if wo.Digest != digest {
		return nil, fmt.Errorf("cluster: outcome digest %.12s does not answer request %.12s (version skew?)", wo.Digest, digest)
	}
	if wo.Result == nil {
		return nil, errors.New("cluster: outcome has no result")
	}
	return &engine.Outcome{Result: wo.Result, SVG: wo.SVG, MappedBLIF: wo.MappedBLIF}, nil
}

// discard drains and closes a response body so the connection is reusable.
func discard(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	_ = resp.Body.Close()
}

// probeLoop drives peer health at ProbeInterval until Close.
func (c *Cluster) probeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.probeAll(time.Now())
		case <-c.stop:
			return
		}
	}
}

// probeAll probes every peer whose backoff window has elapsed, in
// parallel so one hung peer cannot starve the others' probes.
func (c *Cluster) probeAll(now time.Time) {
	var wg sync.WaitGroup
	for _, p := range c.peers {
		if now.UnixNano() < p.backoffUntil.Load() {
			continue
		}
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			c.probe(p)
		}(p)
	}
	wg.Wait()
}

// probe checks one peer's /healthz and updates its availability.
func (c *Cluster) probe(p *peer) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.PeekTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, p.node.URL+"/healthz", nil)
	if err != nil {
		return
	}
	resp, err := c.client.Do(hreq)
	if err == nil {
		discard(resp)
	}
	if err != nil || resp.StatusCode != http.StatusOK {
		wasUp := p.up.Load()
		c.probeFails.Inc()
		p.noteFailure(time.Now(), c.cfg.ProbeInterval)
		if wasUp && c.cfg.Logger != nil {
			c.cfg.Logger.Warn("peer down", slog.String("peer", p.node.ID), slog.String("url", p.node.URL))
		}
		return
	}
	wasDown := !p.up.Load()
	p.noteSuccess()
	if wasDown && c.cfg.Logger != nil {
		c.cfg.Logger.Info("peer up", slog.String("peer", p.node.ID), slog.String("url", p.node.URL))
	}
}

// PeerInfo is one peer's health snapshot (GET /v1/stats "cluster" block).
type PeerInfo struct {
	ID       string `json:"id"`
	URL      string `json:"url"`
	Up       bool   `json:"up"`
	Failures uint64 `json:"consecutive_failures"`
}

// Info is the cluster's point-in-time snapshot.
type Info struct {
	Self       string     `json:"self"`
	Nodes      int        `json:"nodes"`
	Peers      []PeerInfo `json:"peers"`
	RemoteHits uint64     `json:"remote_cache_hits"`
	Proxied    uint64     `json:"proxied"`
	Spills     uint64     `json:"spills"`
}

// Info snapshots membership health and routing counters.
func (c *Cluster) Info() Info {
	info := Info{
		Self:       c.cfg.Self,
		Nodes:      len(c.ring),
		Peers:      make([]PeerInfo, 0, len(c.peers)),
		RemoteHits: c.remoteHits.Value(),
		Proxied:    c.proxied.Value(),
		Spills:     c.spillsTotal.Load(),
	}
	for _, p := range c.peers {
		info.Peers = append(info.Peers, PeerInfo{
			ID:       p.node.ID,
			URL:      p.node.URL,
			Up:       p.up.Load(),
			Failures: p.streak.Load(),
		})
	}
	return info
}
