package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lily"
	"lily/internal/engine"
)

// testCircuit parses a small fixed circuit for proxy serialization.
func testCircuit(t *testing.T) *lily.Circuit {
	t.Helper()
	const src = `.model tc
.inputs a b
.outputs y
.names a b y
11 1
.end
`
	c, err := lily.LoadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatalf("LoadBLIF: %v", err)
	}
	return c
}

// ownedBy finds a digest whose HRW owner is the wanted node.
func ownedBy(t *testing.T, ring []string, want string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		if d := digestN(i); Owner(d, ring) == want {
			return d
		}
	}
	t.Fatalf("no digest owned by %s in 10000 tries", want)
	return ""
}

// newTestCluster builds a 2-node cluster (self + one httptest peer whose
// handler the test swaps at will) with fast timeouts. The probe loop is
// effectively disabled (1h interval) unless the test opts in.
func newTestCluster(t *testing.T, probeInterval time.Duration) (*Cluster, *atomic.Value, *httptest.Server) {
	t.Helper()
	var handler atomic.Value // of http.HandlerFunc
	handler.Store(http.HandlerFunc(http.NotFound))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.HandlerFunc)(w, r)
	}))
	t.Cleanup(srv.Close)
	if probeInterval <= 0 {
		probeInterval = time.Hour
	}
	c, err := New(Config{
		Self:          "self",
		Peers:         []Node{{ID: "peer", URL: srv.URL}},
		ProbeInterval: probeInterval,
		PeekTimeout:   250 * time.Millisecond,
		ProxyTimeout:  2 * time.Second,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(c.Close)
	return c, &handler, srv
}

func wireOutcomeJSON(t *testing.T, digest string) []byte {
	t.Helper()
	b, err := json.Marshal(WireOutcome{
		Digest: digest,
		Result: &lily.FlowResult{Circuit: "tc", Gates: 3},
	})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

func TestNewValidatesMembership(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatalf("New accepted empty Self")
	}
	if _, err := New(Config{Self: "a", Peers: []Node{{ID: "b"}}}); err == nil {
		t.Fatalf("New accepted peer without URL")
	}
	if _, err := New(Config{Self: "a", Peers: []Node{
		{ID: "b", URL: "http://x"}, {ID: "b", URL: "http://y"},
	}}); err == nil {
		t.Fatalf("New accepted duplicate peer IDs")
	}
	// Self in the peer list is ignored: every node can take the same list.
	c, err := New(Config{Self: "a", Peers: []Node{
		{ID: "a", URL: "http://self"}, {ID: "b", URL: "http://x"},
	}})
	if err != nil {
		t.Fatalf("New rejected membership containing Self: %v", err)
	}
	defer c.Close()
	nodes := c.Nodes()
	if len(nodes) != 2 || nodes[0] != "a" || nodes[1] != "b" {
		t.Fatalf("ring = %v, want [a b]", nodes)
	}
}

func TestRemoteSelfOwnedComputesLocally(t *testing.T) {
	c, handler, _ := newTestCluster(t, 0)
	var calls atomic.Int64
	handler.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.NotFound(w, r)
	}))
	d := ownedBy(t, c.Nodes(), "self")
	out, err := c.Remote(context.Background(), d, testCircuit(t), engine.Request{})
	if out != nil || err != nil {
		t.Fatalf("Remote = (%v, %v), want (nil, nil) for self-owned digest", out, err)
	}
	if calls.Load() != 0 {
		t.Fatalf("self-owned digest still called the peer %d times", calls.Load())
	}
}

func TestRemotePeekHit(t *testing.T) {
	c, handler, _ := newTestCluster(t, 0)
	d := ownedBy(t, c.Nodes(), "peer")
	body := wireOutcomeJSON(t, d)
	handler.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet || r.URL.Path != "/v1/cache/"+d {
			t.Errorf("unexpected peer call: %s %s", r.Method, r.URL.Path)
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
	}))
	out, err := c.Remote(context.Background(), d, testCircuit(t), engine.Request{})
	if err != nil || out == nil {
		t.Fatalf("Remote = (%v, %v), want peeked outcome", out, err)
	}
	if out.Result.Gates != 3 {
		t.Fatalf("bad peeked result: %+v", out.Result)
	}
	if info := c.Info(); info.RemoteHits != 1 || info.Proxied != 0 || info.Spills != 0 {
		t.Fatalf("counters = %+v, want 1 remote hit only", info)
	}
}

func TestRemoteProxyOnCacheMiss(t *testing.T) {
	c, handler, _ := newTestCluster(t, 0)
	d := ownedBy(t, c.Nodes(), "peer")
	var gotJob WireJob
	handler.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodGet:
			http.NotFound(w, r) // cache miss
		case r.Method == http.MethodPost && r.URL.Path == "/v1/cluster/jobs":
			if err := json.NewDecoder(r.Body).Decode(&gotJob); err != nil {
				t.Errorf("decode WireJob: %v", err)
			}
			_, _ = w.Write(wireOutcomeJSON(t, d))
		default:
			t.Errorf("unexpected peer call: %s %s", r.Method, r.URL.Path)
			http.NotFound(w, r)
		}
	}))
	req := engine.Request{
		Options: lily.FlowOptions{Mapper: lily.MapperLily, Objective: lily.ObjectiveDelay},
		Timeout: 90 * time.Second,
	}
	out, err := c.Remote(context.Background(), d, testCircuit(t), req)
	if err != nil || out == nil {
		t.Fatalf("Remote = (%v, %v), want proxied outcome", out, err)
	}
	if gotJob.Digest != d || gotJob.BLIF == "" {
		t.Fatalf("proxied WireJob incomplete: %+v", gotJob)
	}
	if gotJob.Options.Objective != lily.ObjectiveDelay || gotJob.TimeoutMS != 90_000 {
		t.Fatalf("proxied WireJob lost options: %+v", gotJob)
	}
	if info := c.Info(); info.Proxied != 1 || info.RemoteHits != 0 {
		t.Fatalf("counters = %+v, want 1 proxied", info)
	}
}

func TestRemoteSpillsWhenOwnerDown(t *testing.T) {
	c, handler, srv := newTestCluster(t, 0)
	handler.Store(http.HandlerFunc(http.NotFound))
	srv.Close() // owner hard-down: connection refused
	d := ownedBy(t, c.Nodes(), "peer")
	out, err := c.Remote(context.Background(), d, testCircuit(t), engine.Request{})
	if out != nil || err != nil {
		t.Fatalf("Remote = (%v, %v), want (nil, nil) fallback", out, err)
	}
	info := c.Info()
	if info.Spills == 0 {
		t.Fatalf("owner-down walk recorded no spill: %+v", info)
	}
	// The transport failure marked the peer down: the next walk skips it
	// without a network call.
	if len(info.Peers) != 1 || info.Peers[0].Up {
		t.Fatalf("peer still marked up after connection refused: %+v", info.Peers)
	}
	if out, err := c.Remote(context.Background(), d, testCircuit(t), engine.Request{}); out != nil || err != nil {
		t.Fatalf("second walk = (%v, %v), want immediate local fallback", out, err)
	}
}

func TestRemoteSpillsWhenOwnerSheds(t *testing.T) {
	c, handler, _ := newTestCluster(t, 0)
	handler.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	d := ownedBy(t, c.Nodes(), "peer")
	out, err := c.Remote(context.Background(), d, testCircuit(t), engine.Request{})
	if out != nil || err != nil {
		t.Fatalf("Remote = (%v, %v), want (nil, nil) fallback past shedding owner", out, err)
	}
	info := c.Info()
	if info.Spills != 1 {
		t.Fatalf("spills = %d, want 1", info.Spills)
	}
	// Shedding is not death: the peer must stay routable for later jobs.
	if !info.Peers[0].Up {
		t.Fatalf("429 wrongly marked the peer down: %+v", info.Peers)
	}
	if got := c.spills.With("shed").Value(); got != 1 {
		t.Fatalf("shed-spill counter = %d, want 1", got)
	}
}

func TestRemoteSpillsWhenOwnerSlow(t *testing.T) {
	c, handler, _ := newTestCluster(t, 0)
	block := make(chan struct{})
	defer close(block)
	handler.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select { // far beyond the 250ms peek budget
		case <-block:
		case <-r.Context().Done():
		}
	}))
	d := ownedBy(t, c.Nodes(), "peer")
	start := time.Now()
	out, err := c.Remote(context.Background(), d, testCircuit(t), engine.Request{})
	if out != nil || err != nil {
		t.Fatalf("Remote = (%v, %v), want (nil, nil) fallback past slow owner", out, err)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("slow owner stalled the walk for %v — peek budget not enforced", took)
	}
	if info := c.Info(); info.Spills == 0 {
		t.Fatalf("slow-owner walk recorded no spill: %+v", info)
	}
}

func TestRemoteRejectsDigestMismatch(t *testing.T) {
	c, handler, _ := newTestCluster(t, 0)
	d := ownedBy(t, c.Nodes(), "peer")
	handler.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Answer with a well-formed outcome for the WRONG digest — the
		// version-skew case the decode guard exists for.
		_, _ = w.Write(wireOutcomeJSON(t, "0000000000000000000000000000000000000000000000000000000000000000"))
	}))
	out, err := c.Remote(context.Background(), d, testCircuit(t), engine.Request{})
	if out != nil || err != nil {
		t.Fatalf("Remote = (%v, %v), want (nil, nil) fallback on skewed answer", out, err)
	}
	if info := c.Info(); info.Spills == 0 || info.RemoteHits != 0 {
		t.Fatalf("skewed answer not treated as spill: %+v", info)
	}
}

func TestRemoteHonorsCanceledContext(t *testing.T) {
	c, _, _ := newTestCluster(t, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := ownedBy(t, c.Nodes(), "peer")
	if _, err := c.Remote(ctx, d, testCircuit(t), engine.Request{}); err == nil {
		t.Fatalf("Remote ignored canceled context")
	}
}

func TestProbeMarksPeerDownThenUp(t *testing.T) {
	var healthy atomic.Bool
	c, handler, _ := newTestCluster(t, 20*time.Millisecond)
	handler.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" && healthy.Load() {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusInternalServerError)
	}))

	waitFor(t, "probe to mark peer down", func() bool {
		return !c.Info().Peers[0].Up
	})
	healthy.Store(true)
	waitFor(t, "probe to mark peer up again", func() bool {
		return c.Info().Peers[0].Up
	})
}

// TestProbeBackoffResetsAfterRecovery pins the backoff schedule: base
// interval on the first failure, doubling per consecutive failure up to
// 16×, and — the regression — a successful probe resets the curve, so a
// peer that flaps right after recovering is re-probed at the base
// interval instead of resuming deep in the backoff window.
func TestProbeBackoffResetsAfterRecovery(t *testing.T) {
	c, _, _ := newTestCluster(t, 0)
	p := c.peers[0]
	const interval = time.Second
	now := time.Unix(1000, 0)
	until := func() time.Duration { return time.Duration(p.backoffUntil.Load() - now.UnixNano()) }

	p.noteFailure(now, interval)
	if got := until(); got != interval {
		t.Fatalf("first failure backoff = %v, want base interval %v", got, interval)
	}
	want := []time.Duration{2 * interval, 4 * interval, 8 * interval, 16 * interval, 16 * interval}
	for i, w := range want {
		p.noteFailure(now, interval)
		if got := until(); got != w {
			t.Fatalf("failure %d backoff = %v, want %v", i+2, got, w)
		}
	}
	p.noteSuccess()
	if p.backoffUntil.Load() != 0 || p.streak.Load() != 0 {
		t.Fatal("noteSuccess did not clear the failure streak and backoff window")
	}
	p.noteFailure(now, interval)
	if got := until(); got != interval {
		t.Fatalf("post-recovery failure backoff = %v, want base %v: a recovered peer must restart the curve", got, interval)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
