// Wire formats of the intra-cluster protocol. Two endpoints, both served
// by internal/server and called by the client in this package:
//
//	GET  /v1/cache/{digest}   cache peek: the owner's cached WireOutcome, or 404
//	POST /v1/cluster/jobs     proxied compute: WireJob in, WireOutcome out
//
// The formats are self-contained — canonical BLIF plus the full
// lily.FlowOptions value — so proxying loses no option fidelity, and the
// receiving node recomputes the digest to detect version skew: a node
// running different mapper code answers 409 and the caller degrades to
// local compute instead of mixing outputs from two mapper versions.
package cluster

import (
	"lily"
)

// WireJob is the body of POST /v1/cluster/jobs: one fully resolved
// request, forwarded by a non-owner node to the digest's owner.
type WireJob struct {
	// Digest is the sender's engine.RequestDigest for this request. The
	// receiver recomputes and must agree (409 on mismatch).
	Digest string `json:"digest"`
	// BLIF is the canonical circuit serialization (Circuit.WriteBLIF) —
	// benchmark names and in-memory circuits are resolved before the wire.
	BLIF string `json:"blif"`
	// Options is the flow configuration, verbatim.
	Options lily.FlowOptions `json:"options"`
	// SVG and EmitBLIF select the requested artifact (see engine.Request).
	SVG      bool `json:"svg,omitempty"`
	EmitBLIF bool `json:"emit_blif,omitempty"`
	// TimeoutMS bounds the run on the executing node; 0 uses its default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// WireOutcome is the body of a successful cache peek or proxied compute:
// the engine.Outcome of the digest, portable across nodes. []byte fields
// ride JSON's standard base64 encoding.
type WireOutcome struct {
	Digest     string           `json:"digest"`
	Result     *lily.FlowResult `json:"result"`
	SVG        []byte           `json:"svg,omitempty"`
	MappedBLIF []byte           `json:"mapped_blif,omitempty"`
}
