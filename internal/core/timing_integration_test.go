package core

import (
	"testing"

	"lily/internal/bench"
	"lily/internal/decomp"
	"lily/internal/library"
	"lily/internal/netlist"
	"lily/internal/timing"
)

// lilyNetlist maps a benchmark with Lily (delay mode) so the netlist
// carries realistic positions.
func lilyNetlist(t *testing.T, name string) *netlist.Netlist {
	t.Helper()
	p, ok := bench.ProfileByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	src := bench.Generate(p)
	res, err := decomp.Premap(src)
	if err != nil {
		t.Fatal(err)
	}
	lres, err := Map(res.Inchoate, library.Big(), DefaultOptions(ModeDelay))
	if err != nil {
		t.Fatal(err)
	}
	return lres.Netlist
}

// STA invariants over a real mapped netlist: arrivals are finite and
// strictly increasing across every gate, and the critical PO carries the
// max delay.
func TestAnalyzeInvariantsOnMappedNetlist(t *testing.T) {
	lib := library.Big()
	nl := lilyNetlist(t, "C432")
	res, err := timing.Analyze(nl, lib, timing.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxDelay <= 0 {
		t.Fatal("non-positive max delay")
	}
	refArr := func(r netlist.Ref) timing.Arrival {
		if r.IsPI {
			return timing.Arrival{}
		}
		return res.CellArrival[r.Index]
	}
	for ci, c := range nl.Cells {
		out := res.CellArrival[ci]
		if out.Rise < 0 || out.Fall < 0 {
			t.Fatalf("cell %s negative arrival %+v", c.Name, out)
		}
		worstIn := 0.0
		for _, r := range c.Inputs {
			if a := refArr(r).Max(); a > worstIn {
				worstIn = a
			}
		}
		if out.Max() <= worstIn {
			t.Fatalf("cell %s output %v not after inputs %v", c.Name, out.Max(), worstIn)
		}
	}
	worst := 0.0
	for _, po := range nl.POs {
		if a := refArr(po.Driver).Max(); a > worst {
			worst = a
		}
	}
	if worst != res.MaxDelay {
		t.Errorf("max delay %v != worst PO arrival %v", res.MaxDelay, worst)
	}
}

// Loads reported by the analyzer must be positive for every driving cell.
func TestLoadsPositiveOnMappedNetlist(t *testing.T) {
	lib := library.Big()
	nl := lilyNetlist(t, "misex1")
	res, err := timing.Analyze(nl, lib, timing.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	driven := make([]bool, len(nl.Cells))
	for _, c := range nl.Cells {
		for _, r := range c.Inputs {
			if !r.IsPI {
				driven[r.Index] = true
			}
		}
	}
	for _, po := range nl.POs {
		if !po.Driver.IsPI {
			driven[po.Driver.Index] = true
		}
	}
	for ci, d := range driven {
		if d && res.CellLoad[ci] <= 0 {
			t.Errorf("cell %s drives a net with load %v", nl.Cells[ci].Name, res.CellLoad[ci])
		}
	}
}

// Slack on a real netlist: worst slack equals period minus max delay.
func TestSlackOnMappedNetlist(t *testing.T) {
	lib := library.Big()
	nl := lilyNetlist(t, "b9")
	res, err := timing.Analyze(nl, lib, timing.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := timing.Slack(nl, lib, res, res.MaxDelay+3)
	if err != nil {
		t.Fatal(err)
	}
	if diff := rep.WorstSlack - 3; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("worst slack %v, want 3", rep.WorstSlack)
	}
}
