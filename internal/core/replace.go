package core

import (
	"fmt"

	"lily/internal/geom"
	"lily/internal/logic"
	"lily/internal/place"
)

// replaceGlobal re-runs the global placement on the current hybrid network
// — committed hawks as real gates, unmapped eggs as base cells, doves as
// zero-area pass-through vertices — keeping the die and the pad positions
// of the original placement (§3.2). Fresh placePositions go to eggs and
// doves; hawks get fresh mapPositions.
func (lm *lily) replaceGlobal() error {
	hybrid := logic.New(lm.sub.Name + "-hybrid")
	sig := make(map[logic.NodeID]logic.NodeID, len(lm.sub.Nodes))
	widths := make(map[logic.NodeID]float64)

	for _, pi := range lm.sub.PIs {
		nd := hybrid.AddPI(lm.sub.Nodes[pi].Name)
		sig[pi] = nd.ID
	}

	order, err := lm.sub.TopoOrder()
	if err != nil {
		return err
	}
	for _, v := range order {
		nd := lm.sub.Nodes[v]
		if nd.Kind != logic.KindLogic {
			continue
		}
		var fanins []logic.NodeID
		var width float64
		switch lm.state[v] {
		case StateHawk:
			m := lm.committed[v]
			for _, in := range dedupIDs(m.Inputs) {
				fanins = append(fanins, sig[in])
			}
			width = m.Gate.Width
		default: // eggs and doves keep the subject structure
			for _, f := range dedupIDs(nd.Fanins) {
				fanins = append(fanins, sig[f])
			}
			if lm.state[v] == StateDove {
				width = 1 // placeholder footprint: the logic lives inside a hawk
			} else {
				width = lm.baseWidthOf(v)
			}
		}
		if len(fanins) == 0 {
			return fmt.Errorf("core: hybrid node %q has no fanins", nd.Name)
		}
		h := hybrid.AddLogic(nd.Name, fanins, logic.OrSOP(len(fanins)))
		sig[v] = h.ID
		widths[h.ID] = width
	}
	for i, po := range lm.sub.POs {
		hybrid.MarkPO(sig[po], lm.sub.PONames[i])
	}

	cfg := lm.opt.Place
	cfg.Die = lm.pl.Die
	cfg.FixedPads = make(map[string]geom.Point, len(lm.sub.PIs)+len(lm.pl.POPads))
	for _, pi := range lm.sub.PIs {
		cfg.FixedPads[lm.sub.Nodes[pi].Name] = lm.pl.Pos[pi]
	}
	for name, p := range lm.pl.POPads {
		cfg.FixedPads[name] = p
	}

	pr, err := place.GlobalContext(lm.ctx, hybrid, func(id logic.NodeID) float64 { return widths[id] },
		lm.lib.RowHeight, cfg)
	if err != nil {
		return err
	}

	for v, h := range sig {
		nd := lm.sub.Nodes[v]
		if nd == nil || nd.Kind != logic.KindLogic {
			continue
		}
		pos := pr.Pos[h]
		if lm.state[v] == StateHawk {
			lm.hawkPos[v] = pos
		}
		lm.pl.Pos[v] = pos
		lm.posArr[v] = pos
	}
	// placePositions and mapPositions moved: every cached true-fanout
	// list is stale, bump every signal's fan version.
	for i := range lm.fanVer {
		lm.fanVer[i]++
	}
	return nil
}

func (lm *lily) baseWidthOf(v logic.NodeID) float64 {
	if len(lm.sub.Nodes[v].Fanins) == 2 {
		return lm.lib.Nand2.Width
	}
	return lm.lib.Inv.Width
}
