package core

import (
	"context"
	"math"
	"testing"

	"lily/internal/geom"
	"lily/internal/library"
	"lily/internal/logic"
	"lily/internal/match"
	"lily/internal/place"
	"lily/internal/wire"
)

// fixture builds a hand-placed subject graph:
//
//	a(0,0)  b(10,0) -> x = NAND(a,b) -> PO "x" pad (20,5)
//	              \--> y = INV(b)    -> PO "y" pad (20,10)
func fixture(t *testing.T) (*logic.Network, *lily) {
	t.Helper()
	sub := logic.New("fix")
	a := sub.AddPI("a")
	b := sub.AddPI("b")
	x := sub.AddLogic("x", []logic.NodeID{a.ID, b.ID}, logic.NandSOP(2))
	y := sub.AddLogic("y", []logic.NodeID{b.ID}, logic.NotSOP())
	sub.MarkPO(x.ID, "x")
	sub.MarkPO(y.ID, "y")

	pl := &place.Result{
		Pos: map[logic.NodeID]geom.Point{
			a.ID: {X: 0, Y: 0},
			b.ID: {X: 10, Y: 0},
			x.ID: {X: 5, Y: 5},
			y.ID: {X: 12, Y: 8},
		},
		POPads: map[string]geom.Point{
			"x": {X: 20, Y: 5},
			"y": {X: 20, Y: 10},
		},
		Die: geom.Enclosing([]geom.Point{{X: 0, Y: 0}, {X: 20, Y: 10}}),
	}
	lm := newLily(context.Background(), sub, library.Big(), pl, DefaultOptions(ModeArea), nil)
	return sub, lm
}

func nand2MatchAt(t *testing.T, lm *lily, v logic.NodeID) *match.Match {
	t.Helper()
	for _, m := range lm.matchesAt(v) {
		if m.Gate.Name == "nand2" {
			return m
		}
	}
	t.Fatal("no nand2 match")
	return nil
}

// Fig 3.1: the fanin rectangle of input a for the match at x encloses a's
// driver and its surviving true fanouts; the fanout rectangle holds the PO
// pad x drives.
func TestFaninRectanglesConstruction(t *testing.T) {
	sub, lm := fixture(t)
	// Explicit per-pin lists are only materialized for the exact wire
	// models; the default Steiner estimator derives pin counts from the
	// flat fanout offsets instead (see geometry).
	lm.opt.WireModel = wire.ModelSpanningTree
	x := sub.NodeByName("x").ID
	lm.state[x] = StateNestling
	m := nand2MatchAt(t, lm, x)
	g := lm.geometry(x, m)

	if len(g.distinctIn) != 2 {
		t.Fatalf("distinct inputs = %v", g.distinctIn)
	}
	aID := sub.NodeByName("a").ID
	bID := sub.NodeByName("b").ID
	// a fans out only to x, which the match covers: its fanin point set is
	// just a's own position.
	ai := g.inputIndex(aID)
	if ai < 0 {
		t.Fatalf("a not a distinct input: %v", g.distinctIn)
	}
	if pts := g.pts(ai); len(pts) != 1 || pts[0] != (geom.Point{X: 0, Y: 0}) {
		t.Errorf("fanin pts of a = %v", pts)
	}
	// b also feeds y (an egg outside the match): its set includes y's
	// placePosition.
	bi := g.inputIndex(bID)
	if bi < 0 {
		t.Fatalf("b not a distinct input: %v", g.distinctIn)
	}
	pts := g.pts(bi)
	if len(pts) != 2 {
		t.Fatalf("fanin pts of b = %v", pts)
	}
	hasY := false
	for _, p := range pts {
		if p == (geom.Point{X: 12, Y: 8}) {
			hasY = true
		}
	}
	if !hasY {
		t.Errorf("b's rectangle misses true fanout y: %v", pts)
	}
	// The cached fanin rectangle matches the enclosing of the pin set.
	for i := range g.distinctIn {
		if got, want := g.faninRect[i], geom.Enclosing(g.pts(i)); got != want {
			t.Errorf("faninRect[%d] = %v, want %v", i, got, want)
		}
	}
	// Fanout rectangle: x drives only the PO pad.
	if len(g.fanoutPts) != 1 || g.fanoutPts[0] != (geom.Point{X: 20, Y: 5}) {
		t.Errorf("fanout pts = %v", g.fanoutPts)
	}
}

// §3.4: the wire increment divides the estimated net length by the sink
// count, and includes the candidate gate position.
func TestWireIncrementAccounting(t *testing.T) {
	sub, lm := fixture(t)
	x := sub.NodeByName("x").ID
	lm.state[x] = StateNestling
	m := nand2MatchAt(t, lm, x)
	// Build the geometry under an exact model so the explicit pin lists
	// exist for the cross-check, then evaluate the increment with the
	// default Steiner estimator; every other geometry field is
	// model-independent.
	lm.opt.WireModel = wire.ModelSpanningTree
	g := lm.geometry(x, m)
	lm.opt.WireModel = wire.ModelHPWLSteiner
	ai := g.inputIndex(sub.NodeByName("a").ID)
	inc := lm.wireIncrement(g, ai)
	// Net: a(0,0) + gate position; single sink -> full net length.
	pts := append(append([]geom.Point(nil), g.pts(ai)...), g.gatePos)
	want := wire.NetLength(lm.opt.WireModel, pts)
	if math.Abs(inc-want) > 1e-9 {
		t.Errorf("increment = %v, want %v", inc, want)
	}
	// For b there are two sinks (the match and y): charged half.
	bi := g.inputIndex(sub.NodeByName("b").ID)
	incB := lm.wireIncrement(g, bi)
	ptsB := append(append([]geom.Point(nil), g.pts(bi)...), g.gatePos)
	wantB := wire.NetLength(lm.opt.WireModel, ptsB) / 2
	if math.Abs(incB-wantB) > 1e-9 {
		t.Errorf("increment(b) = %v, want %v", incB, wantB)
	}
}

// The rectangle-incremental HPWL fast path and the explicit spanning-tree
// path must agree with the package-level estimators for the same pin sets.
func TestWireIncrementSpanningTreeModel(t *testing.T) {
	sub, lm := fixture(t)
	lm.opt.WireModel = wire.ModelSpanningTree
	x := sub.NodeByName("x").ID
	lm.state[x] = StateNestling
	m := nand2MatchAt(t, lm, x)
	g := lm.geometry(x, m)
	for i := range g.distinctIn {
		pts := append(append([]geom.Point(nil), g.pts(i)...), g.gatePos)
		want := wire.NetLength(wire.ModelSpanningTree, pts) / float64(len(g.fans(i))+1)
		if got := lm.wireIncrement(g, i); math.Abs(got-want) > 1e-12 {
			t.Errorf("rmst increment(%d) = %v, want %v", i, got, want)
		}
	}
}

// §3.2: each update rule yields a sensible candidate position inside the
// region spanned by the match's environment.
func TestUpdateRulePositions(t *testing.T) {
	sub, lm := fixture(t)
	x := sub.NodeByName("x").ID
	lm.state[x] = StateNestling
	m := nand2MatchAt(t, lm, x)
	span := geom.Enclosing([]geom.Point{{X: 0, Y: 0}, {X: 20, Y: 10}})
	for _, rule := range []UpdateRule{CMOfFans, CMOfMerged, MedianFans} {
		lm.opt.Update = rule
		g := lm.geometry(x, m)
		if !span.Contains(g.gatePos) {
			t.Errorf("%v: gate position %v outside environment", rule, g.gatePos)
		}
	}
	// CM-of-Merged with a single covered node lands exactly on its
	// placePosition.
	lm.opt.Update = CMOfMerged
	g := lm.geometry(x, m)
	if g.gatePos != (geom.Point{X: 5, Y: 5}) {
		t.Errorf("cm-of-merged = %v, want the node's placePosition", g.gatePos)
	}
}

// cachedFans must switch from placePositions to mapPositions when a
// consumer becomes a hawk (§3.3). The fixture mutates lifecycle state by
// hand, so it advances the fan epoch explicitly — the invalidation that
// setState performs for real runs.
func TestTrueFanoutsUseHawkPositions(t *testing.T) {
	sub, lm := fixture(t)
	bID := sub.NodeByName("b").ID
	yID := sub.NodeByName("y").ID
	// Before commitment: y is an egg at its placePosition.
	fans := lm.cachedFans(bID)
	if len(fans) != 2 { // x and y
		t.Fatalf("true fanouts of b = %d", len(fans))
	}
	// Commit y as a hawk consuming b at a new mapPosition.
	var invMatch *match.Match
	for _, m := range lm.matchesAt(yID) {
		if m.Gate.Name == "inv" {
			invMatch = m
		}
	}
	lm.state[yID] = StateHawk
	lm.committed[yID] = invMatch
	lm.hawkPos[yID] = geom.Point{X: 3, Y: 3}
	lm.hawkConsumers[bID] = append(lm.hawkConsumers[bID], hawkRef{hawk: yID, gate: invMatch.Gate})
	lm.fanVer[bID]++ // manual state mutation: invalidate like a commit would
	fans = lm.cachedFans(bID)
	foundHawk := false
	for _, tf := range fans {
		if tf.hawk {
			foundHawk = true
			if tf.pos != (geom.Point{X: 3, Y: 3}) {
				t.Errorf("hawk fanout at %v, want mapPosition (3,3)", tf.pos)
			}
			if tf.cap != invMatch.Gate.InputCap {
				t.Errorf("hawk cap = %v", tf.cap)
			}
		}
	}
	if !foundHawk {
		t.Error("hawk consumer not reported as true fanout")
	}
}

// The fan cache returns the memoized list while the signal's version is
// unchanged and rebuilds after a consumer transition bumps it;
// egg→nestling keeps the cache warm, and transitions leave the versions
// of unrelated signals untouched.
func TestFanCacheVersionInvalidation(t *testing.T) {
	sub, lm := fixture(t)
	bID := sub.NodeByName("b").ID
	aID := sub.NodeByName("a").ID
	xID := sub.NodeByName("x").ID
	yID := sub.NodeByName("y").ID

	first := lm.cachedFans(bID)
	if len(first) != 2 {
		t.Fatalf("fanouts of b = %d, want 2", len(first))
	}
	ver := lm.fanVer[bID]
	// Egg→nestling must not bump any version: both states are live
	// consumers at unchanged positions.
	if err := lm.setState(xID, StateNestling); err != nil {
		t.Fatal(err)
	}
	if lm.fanVer[bID] != ver {
		t.Fatalf("egg→nestling bumped fanVer[b] %d -> %d", ver, lm.fanVer[bID])
	}
	again := lm.cachedFans(bID)
	if &again[0] != &first[0] || len(again) != len(first) {
		t.Error("cache rebuilt despite unchanged version")
	}
	// Nestling→dove must invalidate exactly the dove's fanins: x stops
	// being a consumer of b (and of a), while signals x does not read
	// keep their versions and stay warm.
	if err := lm.setState(yID, StateNestling); err != nil {
		t.Fatal(err)
	}
	verA, verX := lm.fanVer[aID], lm.fanVer[xID]
	if err := lm.setState(xID, StateDove); err != nil {
		t.Fatal(err)
	}
	if lm.fanVer[bID] == ver {
		t.Fatal("nestling→dove did not bump the dove's fanin version")
	}
	if lm.fanVer[aID] == verA {
		t.Fatal("nestling→dove did not bump fanin a's version")
	}
	if lm.fanVer[xID] != verX {
		t.Fatalf("nestling→dove of x bumped x's own signal version %d -> %d", verX, lm.fanVer[xID])
	}
	fans := lm.cachedFans(bID)
	if len(fans) != 1 || fans[0].node != yID {
		t.Errorf("after x→dove, fanouts of b = %v, want just y", fans)
	}
}
