package core

import (
	"context"
	"testing"

	"lily/internal/geom"
	"lily/internal/library"
	"lily/internal/logic"
	"lily/internal/place"
)

// waveFixture builds a lily over a hand-made subject so planWaves can be
// probed directly. Positions are arbitrary: wave planning looks only at
// the graph structure.
func waveFixture(t *testing.T, build func(sub *logic.Network)) *lily {
	t.Helper()
	sub := logic.New("waves")
	build(sub)
	pl := &place.Result{
		Pos:    map[logic.NodeID]geom.Point{},
		POPads: map[string]geom.Point{},
		Die:    geom.Enclosing([]geom.Point{{X: 0, Y: 0}, {X: 10, Y: 10}}),
	}
	for id, nd := range sub.Nodes {
		if nd != nil {
			pl.Pos[logic.NodeID(id)] = geom.Point{X: float64(id), Y: 0}
		}
	}
	for _, name := range sub.PONames {
		pl.POPads[name] = geom.Point{X: 10, Y: 10}
	}
	return newLily(context.Background(), sub, library.Big(), pl, DefaultOptions(ModeArea), nil)
}

// flatten concatenates a wave plan back into one position sequence.
func flatten(waves [][]int) []int {
	var out []int
	for _, w := range waves {
		out = append(out, w...)
	}
	return out
}

// TestPlanWavesDisjointConesShareAWave: two cones with disjoint supports
// and no fanout adjacency are independent, so they evaluate in one wave.
func TestPlanWavesDisjointConesShareAWave(t *testing.T) {
	lm := waveFixture(t, func(sub *logic.Network) {
		a := sub.AddPI("a")
		b := sub.AddPI("b")
		c := sub.AddPI("c")
		d := sub.AddPI("d")
		x := sub.AddLogic("x", []logic.NodeID{a.ID, b.ID}, logic.NandSOP(2))
		y := sub.AddLogic("y", []logic.NodeID{c.ID, d.ID}, logic.NandSOP(2))
		sub.MarkPO(x.ID, "x")
		sub.MarkPO(y.ID, "y")
	})
	waves := lm.planWaves([]int{0, 1})
	if len(waves) != 1 || len(waves[0]) != 2 {
		t.Fatalf("disjoint cones split into waves %v, want one wave of 2", waves)
	}
}

// TestPlanWavesSharedSupportSplits: a shared input couples the cones —
// mapping the first moves state the second reads — so they must
// serialize into separate waves, preserving the cone order.
func TestPlanWavesSharedSupportSplits(t *testing.T) {
	lm := waveFixture(t, func(sub *logic.Network) {
		a := sub.AddPI("a")
		b := sub.AddPI("b")
		c := sub.AddPI("c")
		x := sub.AddLogic("x", []logic.NodeID{a.ID, b.ID}, logic.NandSOP(2))
		y := sub.AddLogic("y", []logic.NodeID{b.ID, c.ID}, logic.NandSOP(2))
		sub.MarkPO(x.ID, "x")
		sub.MarkPO(y.ID, "y")
	})
	waves := lm.planWaves([]int{0, 1})
	if len(waves) != 2 {
		t.Fatalf("coupled cones planned as %v, want two singleton waves", waves)
	}
	if got := flatten(waves); got[0] != 0 || got[1] != 1 {
		t.Fatalf("wave order %v does not preserve the cone order", got)
	}
}

// TestPlanWavesFanoutAdjacencySplits: the cones share no support node,
// but the first cone's support fans out into the second cone's root, so
// committing the first changes lifecycle state the second observes
// (hawk consumers, fan lists). They may not share a wave.
func TestPlanWavesFanoutAdjacencySplits(t *testing.T) {
	lm := waveFixture(t, func(sub *logic.Network) {
		a := sub.AddPI("a")
		b := sub.AddPI("b")
		x := sub.AddLogic("x", []logic.NodeID{a.ID, b.ID}, logic.NandSOP(2))
		y := sub.AddLogic("y", []logic.NodeID{x.ID}, logic.NotSOP())
		sub.MarkPO(x.ID, "x")
		sub.MarkPO(y.ID, "y")
	})
	waves := lm.planWaves([]int{0, 1})
	if len(waves) != 2 {
		t.Fatalf("adjacent cones planned as %v, want two waves", waves)
	}
}

// TestPlanWavesReplaceEveryBoundary: the periodic global re-placement
// runs between cones in the sequential schedule, so a wave must never
// straddle a ReplaceEvery boundary even when the cones are independent.
func TestPlanWavesReplaceEveryBoundary(t *testing.T) {
	lm := waveFixture(t, func(sub *logic.Network) {
		for _, name := range []string{"p", "q", "r", "s"} {
			pi := sub.AddPI(name + "_in")
			v := sub.AddLogic(name, []logic.NodeID{pi.ID}, logic.NotSOP())
			sub.MarkPO(v.ID, name)
		}
	})
	order := []int{0, 1, 2, 3}
	if waves := lm.planWaves(order); len(waves) != 1 {
		t.Fatalf("independent cones planned as %v, want one wave of 4", waves)
	}
	lm.opt.ReplaceEvery = 2
	waves := lm.planWaves(order)
	if len(waves) != 2 || len(waves[0]) != 2 || len(waves[1]) != 2 {
		t.Fatalf("ReplaceEvery=2 planned %v, want waves [0 1] [2 3]", waves)
	}
	got := flatten(waves)
	for i, p := range got {
		if p != i {
			t.Fatalf("plan %v drops or reorders positions", got)
		}
	}
}
