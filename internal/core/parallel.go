// Wave-parallel cone mapping (DESIGN.md §13). The exit-line cone order
// of §3.5 is partitioned into waves: maximal consecutive runs whose
// cones are mutually independent — no cone's support overlaps another's
// one-hop neighborhood. Within a wave every cone's dynamic programming
// reads only state frozen before the wave (plus node slots private to
// its own support), so the cones evaluate concurrently on a bounded
// worker pool and their results are committed strictly in cone order.
// State transitions, fanout-epoch bumps, the lifecycle trace, and the
// periodic global re-placement all replay exactly as the sequential
// schedule (runConesSequential) would have produced them, which is why
// the mapped output is bit-identical at any Parallelism setting.
package core

import (
	"sync"
	"sync/atomic"

	"lily/internal/geom"
	"lily/internal/logic"
	"lily/internal/timing"
	"lily/internal/wire"
)

// nodeBitset is a dense NodeID set used for the wave-planning overlap
// tests; one word-parallel intersects call replaces a hash-set probe
// per node.
type nodeBitset []uint64

func newNodeBitset(n int) nodeBitset { return make(nodeBitset, (n+63)/64) }

func (b nodeBitset) set(i logic.NodeID) { b[int(i)>>6] |= 1 << (uint(i) & 63) }

func (b nodeBitset) intersects(o nodeBitset) bool {
	for w, x := range b {
		if x&o[w] != 0 {
			return true
		}
	}
	return false
}

func (b nodeBitset) orWith(o nodeBitset) {
	for w := range b {
		b[w] |= o[w]
	}
}

func (b nodeBitset) clear() {
	for w := range b {
		b[w] = 0
	}
}

// planWaves splits the cone order into waves of independent cones. Two
// cones may share a wave only when neither's support set S (the
// reverse-DFS node set, PIs included — everything the cone's DP writes
// or reads positions of) intersects the other's extended set E = S ∪
// fanouts(S) (everything the cone's DP reads the lifecycle state or
// fan lists of). That guarantees no cone in a wave can observe another
// wave member's tentative writes or the in-order commits that follow
// them, so frozen-state evaluation equals sequential evaluation. Waves
// are consecutive runs — a cone incompatible with the open wave closes
// it rather than searching ahead, preserving the §3.5 order — and a
// wave also closes at every ReplaceEvery boundary so the global
// re-placement never lands mid-wave.
func (lm *lily) planWaves(order []int) [][]int {
	n := len(lm.sub.Nodes)
	waveS, waveE := newNodeBitset(n), newNodeBitset(n)
	coneS, coneE := newNodeBitset(n), newNodeBitset(n)
	var waves [][]int
	var wave []int // positions into order
	flush := func() {
		if len(wave) > 0 {
			waves = append(waves, wave)
			wave = nil
			waveS.clear()
			waveE.clear()
		}
	}
	for pos := range order {
		root := lm.sub.POs[order[pos]]
		coneS.clear()
		coneE.clear()
		for _, v := range lm.sub.ReverseDFS(root) {
			coneS.set(v)
			coneE.set(v)
			for _, fo := range lm.sub.Fanouts(v) {
				coneE.set(fo)
			}
		}
		if coneS.intersects(waveE) || coneE.intersects(waveS) {
			flush()
		}
		wave = append(wave, pos)
		waveS.orWith(coneS)
		waveE.orWith(coneE)
		// stats.ConesProcessed after position pos is pos+1, so this is
		// exactly the finishCone re-placement trigger.
		if lm.opt.ReplaceEvery > 0 && (pos+1)%lm.opt.ReplaceEvery == 0 {
			flush()
		}
	}
	flush()
	return waves
}

// newWorker builds a wave worker: a shallow copy of the run that shares
// the per-node value arrays (each wave's cones write disjoint slots of
// state/best/cost/wCost/areaSum/mapPos/blockA) and the read-only inputs
// (subject graph, library, backend memo, positions, load hints), but
// owns every piece of evaluation scratch — pooled wire buffers, match
// geometry, merged/fan stamp sets, delay buffers — so no epoch cache or
// scratch slice is ever touched by two goroutines. The private trace
// starts non-nil so setState records every transition for in-order
// replay on the main run.
func (lm *lily) newWorker() *lily {
	n := len(lm.sub.Nodes)
	w := new(lily)
	*w = *lm
	w.ws = wire.Get()
	w.geo = matchGeometry{}
	w.rects = nil
	w.ptsWork = nil
	w.mergedStamp = make([]uint32, n)
	w.mergedEpoch = 0
	// fanVer is shared (the version array is the cross-schedule source of
	// truth); the caches it validates are private. A fresh zero fanStamp
	// can never equal fanVer (which starts at 1 and only grows), so every
	// first read rebuilds. The hawk-prefix summaries travel with the
	// private lists.
	w.fanStamp = make([]uint64, n)
	w.fanLists = make([][]trueFanout, n)
	w.fanHawkCnt = make([]int32, n)
	w.fanHawkRect = make([]geom.Rect, n)
	w.inArr = nil
	w.arrBuf = nil
	w.evalBlock = new(timing.BlockArrival)
	w.bestBlock = new(timing.BlockArrival)
	w.trace = make([]Transition, 0, 64)
	w.reawakened = nil
	return w
}

// coneOutcome is one wave member's evaluation result, captured for the
// in-order merge.
type coneOutcome struct {
	err        error
	trans      []Transition
	reawakened []logic.NodeID
}

// runConesParallel is the parallel schedule: evaluate each wave's cones
// concurrently against the frozen pre-wave state, then merge strictly
// in cone order — replay the recorded lifecycle transitions (epoch
// bumps and trace), restore the cone's reawakened list, and run the
// sequential commit tail. Errors surface in cone order: a failed cone
// masks everything after it, exactly as the sequential loop would.
func (lm *lily) runConesParallel(order []int) error {
	// Pre-warm the backend memo sequentially: match and cut enumeration
	// use shared scratch, but a memo hit is a pure read. The sequential
	// schedule enumerates the same nodes, just lazily.
	for id, nd := range lm.sub.Nodes {
		if nd != nil && nd.Kind == logic.KindLogic {
			lm.backend.MatchesAt(logic.NodeID(id))
		}
	}

	waves := lm.planWaves(order)
	maxWave := 0
	for _, wv := range waves {
		if len(wv) > maxWave {
			maxWave = len(wv)
		}
	}
	nw := lm.opt.Parallelism
	if nw > maxWave {
		nw = maxWave
	}
	var workers []*lily
	defer func() {
		for _, w := range workers {
			wire.Put(w.ws)
		}
	}()
	for i := 0; i < nw; i++ {
		workers = append(workers, lm.newWorker())
	}

	for _, wave := range waves {
		if err := lm.ctx.Err(); err != nil {
			return err
		}
		if len(wave) == 1 {
			// Singleton wave: run the sequential path on the main state —
			// no capture or replay needed.
			pos := wave[0]
			root := lm.sub.POs[order[pos]]
			if err := lm.processCone(root); err != nil {
				return err
			}
			if err := lm.finishCone(root, pos, len(order)); err != nil {
				return err
			}
			continue
		}

		outcomes := make([]coneOutcome, len(wave))
		var next atomic.Int64
		var wg sync.WaitGroup
		for _, w := range workers[:min(nw, len(wave))] {
			wg.Add(1)
			go func(w *lily) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(wave) {
						return
					}
					if err := w.ctx.Err(); err != nil {
						outcomes[i] = coneOutcome{err: err}
						continue
					}
					// The worker's private fan caches self-invalidate:
					// commits and re-placements since its last cone bumped
					// the shared fanVer slots of every signal they touched,
					// so stale lists rebuild on first read and untouched
					// ones stay warm across waves.
					w.trace = w.trace[:0]
					root := w.sub.POs[order[wave[i]]]
					err := w.processCone(root)
					outcomes[i] = coneOutcome{
						err:        err,
						trans:      append([]Transition(nil), w.trace...),
						reawakened: append([]logic.NodeID(nil), w.reawakened...),
					}
				}
			}(w)
		}
		wg.Wait()

		for wi, pos := range wave {
			c := &outcomes[wi]
			if c.err != nil {
				return c.err
			}
			// The workers' setState calls already wrote the shared state
			// slots and bumped the shared fan versions; only the trace
			// needs in-order replay here.
			if lm.trace != nil {
				lm.trace = append(lm.trace, c.trans...)
			}
			lm.reawakened = append(lm.reawakened[:0], c.reawakened...)
			if err := lm.finishCone(lm.sub.POs[order[pos]], pos, len(order)); err != nil {
				return err
			}
		}
	}
	return nil
}
