// Package core implements Lily, the paper's layout-driven technology
// mapper. Lily covers the NAND2/INV subject graph by dynamic programming
// like DAGON and MIS, but every candidate match is positioned on the layout
// plane and charged an estimated wiring cost in addition to its gate area
// (area mode, §3) or its wiring load capacitance (delay mode, §4). The
// positional information comes from a balanced global placement of the
// inchoate network that is updated incrementally as matches are chosen.
//
// Hot-path engineering (DESIGN.md §11): the cover DP evaluates a wire cost
// for every candidate match of every node, so its inner loop is built
// around three invariants — match lists are memoized once per node inside
// internal/match, the per-signal true-fanout lists are cached under a
// lifecycle epoch that setState/replaceGlobal advance, and all per-match
// geometry lives in reusable scratch buffers (matchGeometry, wire.Scratch,
// timing.BlockArrival.Fill) so steady-state evaluation performs no
// allocations. Every fast path is bit-identical to the straightforward
// formulation it replaced: float additions replay in the original order and
// enclosing rectangles are extended in the original point order, keeping
// mapped output byte-identical (pinned by the root golden tests).
package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"lily/internal/cover"
	"lily/internal/cut"
	"lily/internal/geom"
	"lily/internal/library"
	"lily/internal/logic"
	"lily/internal/match"
	"lily/internal/netlist"
	"lily/internal/obs"
	"lily/internal/place"
	"lily/internal/timing"
	"lily/internal/wire"
)

// Mode selects the optimization objective.
type Mode int

const (
	// ModeArea minimizes layout area: gate area plus routing area (§3).
	ModeArea Mode = iota
	// ModeDelay minimizes output arrival including wiring delay (§4).
	ModeDelay
)

func (m Mode) String() string {
	if m == ModeDelay {
		return "delay"
	}
	return "area"
}

// UpdateRule selects how a candidate match is positioned (§3.2).
type UpdateRule int

const (
	// CMOfFans places the match at the center of mass of the centers of
	// its fanin and fanout rectangles (the paper's experimental choice).
	CMOfFans UpdateRule = iota
	// CMOfMerged places the match at the center of mass of the subject
	// nodes it covers.
	CMOfMerged
	// MedianFans places the match at the Manhattan-optimal point — the
	// median of the fanin/fanout rectangle corner coordinates (§3.2).
	MedianFans
)

func (u UpdateRule) String() string {
	switch u {
	case CMOfMerged:
		return "cm-of-merged"
	case MedianFans:
		return "median-fans"
	default:
		return "cm-of-fans"
	}
}

// Target selects the implementation technology the cover DP maps onto.
// The DP itself is target-agnostic: it chooses among candidate matches
// supplied by a Backend, charging each the same placement-aware wire
// cost. TargetASIC covers with library gates found by the structural
// matcher (internal/match); the LUT targets cover with K-input lookup
// tables found by K-feasible cut enumeration (internal/cut).
type Target int

const (
	// TargetASIC maps onto the standard-cell library (the paper's flow).
	TargetASIC Target = iota
	// TargetLUT4 maps onto 4-input LUTs via K-feasible cuts.
	TargetLUT4
	// TargetLUT6 maps onto 6-input LUTs via K-feasible cuts.
	TargetLUT6
)

func (t Target) String() string {
	switch t {
	case TargetLUT4:
		return "lut4"
	case TargetLUT6:
		return "lut6"
	default:
		return "asic"
	}
}

// LUTK returns the LUT input bound of a LUT target, or 0 for ASIC.
func (t Target) LUTK() int {
	switch t {
	case TargetLUT4:
		return 4
	case TargetLUT6:
		return 6
	default:
		return 0
	}
}

// Backend supplies the candidate matches the covering DP chooses from.
// Implementations must be deterministic and memoized: MatchesAt returns
// the same read-only slice for the same node every call, and a memo hit
// must be a pure read (the wave-parallel scheduler pre-warms the memo
// sequentially, then shares one Backend across workers). The two
// implementations are match.Matcher (ASIC) and cut.Enumerator (LUTs).
type Backend interface {
	MatchesAt(v logic.NodeID) []*match.Match
}

// Options tunes the Lily mapper.
type Options struct {
	Mode   Mode
	Update UpdateRule
	// Target selects the implementation technology (ASIC library cells
	// or K-input LUTs); the covering engine is shared.
	Target Target
	// WireModel selects the net-length estimator of §3.4.
	WireModel wire.Model
	// WireWeight is the weight λ on the routing-area term of the cost
	// (§5 suggests re-running with a reduced weight when the estimate
	// misleads); 1.0 reproduces the paper's setting.
	WireWeight float64
	// OrderCones enables the exit-line cone ordering of §3.5.
	OrderCones bool
	// ReplaceEvery, when positive, re-runs the global placement on the
	// partially mapped network after every ReplaceEvery cones (§3.2:
	// "repeating the global placement on the partially mapped network
	// after a cone or a predetermined number of cones are processed"),
	// reassigning placePositions to eggs and mapPositions to hawks while
	// keeping the die and pads fixed.
	ReplaceEvery int
	// TwoPassDelay runs delay-mode mapping twice: the first pass records
	// the realized output load of every mapped node, the second pass uses
	// those loads instead of the base-function fanout estimate — the
	// MIS 2.2-style load preprocessing the paper points to in §6 for
	// overcoming its load-independent delay model.
	TwoPassDelay bool
	// Parallelism bounds the worker count for the intra-run wave-parallel
	// cone evaluation (DESIGN.md §13): consecutive support-disjoint cones
	// are evaluated concurrently and committed strictly in cone order.
	// 0 or 1 runs the sequential schedule; any value produces bit-identical
	// output (the waves are chosen so no worker can observe another's
	// effects, and all shared-state mutation replays in commit order).
	Parallelism int
	// TraceLifecycle records every egg/nestling/hawk/dove transition.
	TraceLifecycle bool
	// Place configures the global placement of the inchoate network.
	Place place.Config
}

// DefaultOptions returns the configuration used for the paper's tables.
func DefaultOptions(mode Mode) Options {
	return Options{
		Mode:       mode,
		Update:     CMOfFans,
		WireModel:  wire.ModelHPWLSteiner,
		WireWeight: 1.0,
		OrderCones: true,
		Place:      place.DefaultConfig(),
	}
}

// Result is the outcome of a Lily mapping run.
type Result struct {
	// Netlist is the mapped circuit with Lily's constructive placement
	// positions on every cell.
	Netlist *netlist.Netlist
	// Placement is the global placement of the inchoate network that
	// guided the run.
	Placement *place.Result
	// Stats summarizes the node life cycle.
	Stats LifecycleStats
	// Trace holds the life-cycle transitions when requested.
	Trace []Transition
}

// Map runs Lily on a premapped subject graph.
func Map(sub *logic.Network, lib *library.Library, opt Options) (*Result, error) {
	return MapContext(context.Background(), sub, lib, opt)
}

// MapContext is Map with cancellation: the global placement and the
// per-cone mapping loop check ctx and abort with its error when it is
// cancelled, so long mapping jobs can be interrupted promptly.
func MapContext(ctx context.Context, sub *logic.Network, lib *library.Library, opt Options) (*Result, error) {
	pl, err := place.GlobalContext(ctx, sub, baseWidth(sub, lib), lib.RowHeight, opt.Place)
	if err != nil {
		return nil, err
	}
	return MapPlacedContext(ctx, sub, lib, pl, opt)
}

// MapPlaced runs Lily against an existing global placement of the subject
// graph (so callers can share one placement across ablation runs).
func MapPlaced(sub *logic.Network, lib *library.Library, pl *place.Result, opt Options) (*Result, error) {
	return MapPlacedContext(context.Background(), sub, lib, pl, opt)
}

// MapPlacedContext is MapPlaced with cancellation (see MapContext).
func MapPlacedContext(ctx context.Context, sub *logic.Network, lib *library.Library, pl *place.Result, opt Options) (*Result, error) {
	if opt.Mode == ModeDelay && opt.TwoPassDelay {
		firstOpt := opt
		firstOpt.TwoPassDelay = false
		first, err := MapPlacedContext(ctx, sub, lib, pl, firstOpt)
		if err != nil {
			return nil, err
		}
		hints := recordedLoads(sub, lib, first, opt.WireModel)
		return mapPlaced(ctx, sub, lib, pl, opt, hints)
	}
	return mapPlaced(ctx, sub, lib, pl, opt, nil)
}

func mapPlaced(ctx context.Context, sub *logic.Network, lib *library.Library, pl *place.Result, opt Options, loadHints map[logic.NodeID]float64) (*Result, error) {
	if opt.WireWeight < 0 {
		return nil, fmt.Errorf("core: negative wire weight")
	}
	if opt.Target < TargetASIC || opt.Target > TargetLUT6 {
		return nil, fmt.Errorf("core: unknown target %d", opt.Target)
	}
	// The cover phase: the paper's wire-aware DP over cones. The span is
	// a no-op without a tracer in ctx (see internal/obs).
	ctx, span := obs.StartSpan(ctx, "cover")
	defer span.End()
	lm := newLily(ctx, sub, lib, pl, opt, loadHints)
	defer wire.Put(lm.ws)
	if opt.TraceLifecycle {
		lm.trace = make([]Transition, 0, 4*len(sub.Nodes))
	}
	res, err := lm.run()
	if err != nil {
		span.SetError(err)
		return nil, err
	}
	if span.Enabled() {
		span.SetInt("cones", int64(res.Stats.ConesProcessed))
		span.SetInt("hawks", int64(res.Stats.Hawks))
		span.SetInt("doves", int64(res.Stats.Doves))
		span.SetInt("reincarnations", int64(res.Stats.Reincarnations))
		span.SetInt("replacements", int64(res.Stats.Replacements))
	}
	return res, nil
}

// newLily allocates the mapper state for one run: the per-node DP arrays,
// the lifecycle bookkeeping, and the scratch buffers the hot path reuses.
func newLily(ctx context.Context, sub *logic.Network, lib *library.Library, pl *place.Result, opt Options, loadHints map[logic.NodeID]float64) *lily {
	n := len(sub.Nodes)
	// Dense mirrors of the placement maps: the cover DP reads a position
	// for every fanin/fanout of every candidate match, and the map lookups
	// dominated the profile. posArr is refreshed by replaceGlobal; the PO
	// pad points never move once the die is fixed.
	posArr := make([]geom.Point, n)
	for id, p := range pl.Pos {
		posArr[id] = p
	}
	poPadPts := make([][]geom.Point, n)
	for i, po := range sub.POs {
		poPadPts[po] = append(poPadPts[po], pl.POPads[sub.PONames[i]])
	}
	var be Backend
	switch opt.Target {
	case TargetLUT4, TargetLUT6:
		be = cut.NewEnumerator(sub, lib, opt.Target.LUTK())
	default:
		be = match.NewMatcher(sub, lib)
	}
	lm := &lily{
		ctx: ctx, fm: obs.FlowMetricsFrom(ctx),
		sub: sub, lib: lib, opt: opt, pl: pl,
		backend:       be,
		ws:            wire.Get(),
		state:         make([]State, n),
		best:          make([]*match.Match, n),
		cost:          make([]float64, n),
		wCost:         make([]float64, n),
		areaSum:       make([]float64, n),
		mapPos:        make([]geom.Point, n),
		blockA:        make([]*timing.BlockArrival, n),
		committed:     make([]*match.Match, n),
		hawkPos:       make([]geom.Point, n),
		hawkBlock:     make([]*timing.BlockArrival, n),
		hawkConsumers: make([][]hawkRef, n),
		everDove:      make([]bool, n),
		loadHints:     loadHints,
		posArr:        posArr,
		poPadPts:      poPadPts,
		mergedStamp:   make([]uint32, n),
		fanVer:        make([]uint64, n),
		fanStamp:      make([]uint64, n),
		fanLists:      make([][]trueFanout, n),
		fanHawkCnt:    make([]int32, n),
		fanHawkRect:   make([]geom.Rect, n),
		evalBlock:     new(timing.BlockArrival),
		bestBlock:     new(timing.BlockArrival),
	}
	for i := range lm.fanVer {
		lm.fanVer[i] = 1 // fanStamp starts at 0: first read rebuilds
	}
	return lm
}

// baseWidth returns the inchoate cell-width function (NAND2 and INV base
// cells) used for the global placement.
func baseWidth(sub *logic.Network, lib *library.Library) func(logic.NodeID) float64 {
	return func(id logic.NodeID) float64 {
		nd := sub.Node(id)
		if nd != nil && len(nd.Fanins) == 2 {
			return lib.Nand2.Width
		}
		return lib.Inv.Width
	}
}

// hawkRef records a committed gate that consumes a signal.
type hawkRef struct {
	hawk logic.NodeID
	gate *library.Gate
}

type lily struct {
	ctx     context.Context
	fm      *obs.FlowMetrics
	sub     *logic.Network
	lib     *library.Library
	opt     Options
	backend Backend
	pl      *place.Result

	state []State
	// Tentative (nestling) dynamic-programming values.
	best    []*match.Match
	cost    []float64 // combined layout cost (area mode)
	wCost   []float64 // accumulated wire length (µm)
	areaSum []float64 // accumulated gate area (both modes)
	mapPos  []geom.Point
	blockA  []*timing.BlockArrival

	// Committed (hawk) values.
	committed []*match.Match
	hawkPos   []geom.Point
	hawkBlock []*timing.BlockArrival
	// hawkConsumers[vi] lists the committed gates consuming signal vi.
	hawkConsumers [][]hawkRef

	// everDove marks nodes that were merged away at least once; a later
	// commit turning such a node into a hawk is a reincarnation (logic
	// duplication across cones, Fig 2.2).
	everDove []bool
	// reawakened lists prior doves re-evaluated in the current cone; ones
	// the commit does not claim revert to dove.
	reawakened []logic.NodeID
	// loadHints holds per-node output loads recorded by a previous delay
	// pass (TwoPassDelay); nil on the first pass.
	loadHints map[logic.NodeID]float64

	// --- hot-path scratch state (DESIGN.md §11) ---

	// posArr is the dense mirror of pl.Pos (indexed by NodeID), refreshed
	// by replaceGlobal; the DP inner loop never touches the map.
	posArr []geom.Point
	// poPadPts[v] lists the PO pad points node v drives (nil for the vast
	// majority of nodes), replacing a per-match scan over all POs.
	poPadPts [][]geom.Point

	// ws holds the pooled wire-length work buffers for the run.
	ws *wire.Scratch
	// geo is the per-match geometry scratch rebuilt by geometry().
	geo matchGeometry
	// rects accumulates the fanin/fanout rectangles of the current match.
	rects []geom.Rect
	// ptsWork is a reusable pin-list buffer for the net estimators.
	ptsWork []geom.Point
	// mergedStamp/mergedEpoch implement the O(1)-clear membership set for
	// the current match's covered nodes (v is merged iff
	// mergedStamp[v] == mergedEpoch).
	mergedStamp []uint32
	mergedEpoch uint32
	// fanVer/fanStamp/fanLists cache the per-signal true-fanout lists.
	// fanVer[v] counts the changes to signal v's list content: a lifecycle
	// transition of a consumer c (other than egg→nestling — both count as
	// live consumers at unchanged positions) bumps fanVer of every fanin
	// of c, a commit bumps fanVer of the hawk's match inputs when their
	// hawk-consumer entries are appended, and a global re-placement bumps
	// every signal (all positions moved). A cached list is valid iff
	// fanStamp[v] == fanVer[v], so transitions leave the lists of
	// untouched signals warm — under the old whole-cache epoch, every
	// reawakened dove invalidated every list in the run. fanVer is shared
	// across the wave workers (each wave's transitions write only fanin
	// slots inside its own cone supports, which are disjoint from every
	// slot concurrent cones read); fanStamp and fanLists are private.
	fanVer   []uint64
	fanStamp []uint64
	fanLists [][]trueFanout
	// fanHawkCnt/fanHawkRect cache, per signal, the length of the hawk
	// prefix of fanLists[v] and the enclosing rectangle of its positions
	// (rebuilt with the list). Hawk entries never fail the merged-set
	// exclusion test, so the area-mode geometry fast path folds the whole
	// prefix in O(1): Rect.Extend keeps the first value on ties, which
	// makes the min/max fold associative bit for bit, so extending by the
	// cached prefix rectangle equals extending by each hawk in order.
	fanHawkCnt  []int32
	fanHawkRect []geom.Rect
	// Delay-mode scratch: per-pin input arrivals, per-distinct-input
	// arrivals, and a double-buffered block-arrival pair (evalBlock is
	// filled per match; the buffers swap when a match takes the lead).
	inArr     []timing.Arrival
	arrBuf    []timing.Arrival
	evalBlock *timing.BlockArrival
	bestBlock *timing.BlockArrival

	stats LifecycleStats
	trace []Transition
}

func (lm *lily) run() (*Result, error) {
	order := lm.coneOrder()
	var coneErr error
	if lm.opt.Parallelism > 1 && len(order) > 1 {
		coneErr = lm.runConesParallel(order)
	} else {
		coneErr = lm.runConesSequential(order)
	}
	if coneErr != nil {
		return nil, coneErr
	}

	nl, refs, err := cover.BuildNetlist(lm.sub, func(v logic.NodeID) *match.Match {
		return lm.committed[v]
	}, lm.sub.Name)
	if err != nil {
		return nil, err
	}
	// Attach Lily's constructive placement.
	//lint:sorted each ref targets a distinct cell slot; writes are disjoint
	for id, ref := range refs {
		if !ref.IsPI {
			nl.Cells[ref.Index].Pos = lm.hawkPos[id]
		}
	}
	for i, pi := range lm.sub.PIs {
		_ = i
		idx := nl.PIIndex(lm.sub.Nodes[pi].Name)
		if idx >= 0 {
			nl.PIPos[idx] = lm.pl.Pos[pi]
		}
	}
	for i := range nl.POs {
		nl.POs[i].Pad = lm.pl.POPads[nl.POs[i].Name]
	}
	return &Result{Netlist: nl, Placement: lm.pl, Stats: lm.stats, Trace: lm.trace}, nil
}

// runConesSequential is the reference schedule: map and commit one cone
// at a time in cone order, re-placing every ReplaceEvery cones. The
// parallel schedule (parallel.go) must be observationally identical to
// this loop.
func (lm *lily) runConesSequential(order []int) error {
	for i, poIdx := range order {
		if err := lm.ctx.Err(); err != nil {
			return err
		}
		root := lm.sub.POs[poIdx]
		if err := lm.processCone(root); err != nil {
			return err
		}
		if err := lm.finishCone(root, i, len(order)); err != nil {
			return err
		}
	}
	return nil
}

// finishCone is the shared post-evaluation tail of both schedules: commit
// the cone's choices, account for it, and trigger the periodic global
// re-placement. i is the cone's position in the order, n the order length.
func (lm *lily) finishCone(root logic.NodeID, i, n int) error {
	if err := lm.commitCone(root); err != nil {
		return err
	}
	lm.stats.ConesProcessed++
	lm.fm.ConesMapped.Inc()
	if lm.opt.ReplaceEvery > 0 && i+1 < n &&
		lm.stats.ConesProcessed%lm.opt.ReplaceEvery == 0 {
		if err := lm.replaceGlobal(); err != nil {
			return err
		}
		lm.stats.Replacements++
		lm.fm.Replacements.Inc()
	}
	return nil
}

// coneOrder returns PO indices in processing order: the greedy minimum-
// row-sum ordering on the exit-line matrix of §3.5, or natural order.
func (lm *lily) coneOrder() []int {
	k := len(lm.sub.POs)
	if !lm.opt.OrderCones || k <= 1 {
		out := make([]int, k)
		for i := range out {
			out[i] = i
		}
		return out
	}
	m := lm.sub.ExitLines()
	remaining := make([]bool, k)
	for i := range remaining {
		remaining[i] = true
	}
	order := make([]int, 0, k)
	for len(order) < k {
		bestI, bestSum := -1, math.MaxInt
		for i := 0; i < k; i++ {
			if !remaining[i] {
				continue
			}
			sum := 0
			for j := 0; j < k; j++ {
				if remaining[j] && j != i {
					sum += m[i][j]
				}
			}
			if sum < bestSum {
				bestI, bestSum = i, sum
			}
		}
		order = append(order, bestI)
		remaining[bestI] = false
	}
	return order
}

// processCone runs the dynamic programming over one logic cone in reverse
// depth-first-search order.
func (lm *lily) processCone(root logic.NodeID) error {
	lm.reawakened = lm.reawakened[:0]
	for _, v := range lm.sub.ReverseDFS(root) {
		nd := lm.sub.Nodes[v]
		if nd.Kind != logic.KindLogic || lm.state[v] == StateHawk {
			continue
		}
		if lm.state[v] == StateDove {
			lm.reawakened = append(lm.reawakened, v)
		}
		if err := lm.setState(v, StateNestling); err != nil {
			return err
		}
		if err := lm.evaluateNode(v); err != nil {
			return err
		}
	}
	return nil
}

// matchesAt returns the candidate matches rooted at v. The backend
// memoizes per node, so repeated cone visits pay the enumeration cost
// only once.
func (lm *lily) matchesAt(v logic.NodeID) []*match.Match {
	return lm.backend.MatchesAt(v)
}

// evaluateNode picks the best match at a nestling.
func (lm *lily) evaluateNode(v logic.NodeID) error {
	matches := lm.matchesAt(v)
	if len(matches) == 0 {
		return fmt.Errorf("core: node %q has no matches", lm.sub.Nodes[v].Name)
	}
	// One wire-cost evaluation per candidate match considered by the DP.
	lm.fm.WireEvals.Add(uint64(len(matches)))
	switch lm.opt.Mode {
	case ModeArea:
		return lm.evaluateArea(v, matches)
	default:
		return lm.evaluateDelay(v, matches)
	}
}

// inputPos returns the best-known position of a match input: the committed
// mapPosition for hawks, the tentative mapPosition for nestlings, the pad
// position for PIs.
func (lm *lily) inputPos(vi logic.NodeID) geom.Point {
	switch {
	case lm.sub.Nodes[vi].Kind == logic.KindPI:
		return lm.posArr[vi]
	case lm.state[vi] == StateHawk:
		return lm.hawkPos[vi]
	default:
		return lm.mapPos[vi]
	}
}

// trueFanout is one gate-level consumer of a signal (§3.3).
type trueFanout struct {
	node logic.NodeID
	pos  geom.Point
	cap  float64
	hawk bool
}

// cachedFans returns the consumers of vi that would exist had mapping
// stopped now: committed hawks whose match inputs include vi, plus
// egg/nestling subject fanouts of vi. The list is unfiltered — callers
// drop non-hawk entries covered by the current match (they are about to
// disappear into gate(m)) via the merged-set stamp. Lists are cached per
// signal and invalidated per signal: a list is rebuilt only after an
// event that changes its own content bumped fanVer[vi] (see the field
// comment). The rebuild also refreshes the hawk-prefix summaries the
// area-mode geometry fast path folds in O(1).
func (lm *lily) cachedFans(vi logic.NodeID) []trueFanout {
	if lm.fanStamp[vi] == lm.fanVer[vi] {
		return lm.fanLists[vi]
	}
	out := lm.fanLists[vi][:0]
	hr := geom.EmptyRect()
	for _, h := range lm.hawkConsumers[vi] {
		p := lm.hawkPos[h.hawk]
		out = append(out, trueFanout{
			node: h.hawk, pos: p, cap: h.gate.InputCap, hawk: true,
		})
		hr = hr.Extend(p)
	}
	lm.fanHawkCnt[vi] = int32(len(out))
	lm.fanHawkRect[vi] = hr
	for _, fo := range lm.sub.Fanouts(vi) {
		st := lm.state[fo]
		if st != StateEgg && st != StateNestling {
			continue
		}
		out = append(out, trueFanout{
			node: fo, pos: lm.posArr[fo], cap: lm.baseCap(fo),
		})
	}
	lm.fanLists[vi] = out
	lm.fanStamp[vi] = lm.fanVer[vi]
	return out
}

func (lm *lily) baseCap(v logic.NodeID) float64 {
	if len(lm.sub.Nodes[v].Fanins) == 2 {
		return lm.lib.Nand2.InputCap
	}
	return lm.lib.Inv.InputCap
}

// markMerged loads the current match's covered nodes into the O(1)-clear
// membership set.
func (lm *lily) markMerged(ids []logic.NodeID) {
	lm.mergedEpoch++
	if lm.mergedEpoch == 0 { // wrapped: reset the backing array once per 2^32 clears
		for i := range lm.mergedStamp {
			lm.mergedStamp[i] = 0
		}
		lm.mergedEpoch = 1
	}
	for _, u := range ids {
		lm.mergedStamp[u] = lm.mergedEpoch
	}
}

// inMerged reports whether u is covered by the match currently being
// evaluated (set by markMerged).
func (lm *lily) inMerged(u logic.NodeID) bool {
	return lm.mergedStamp[u] == lm.mergedEpoch
}

// matchGeometry holds the candidate gate position and the per-input fanin
// geometry of one match. It is a scratch structure: geometry() rebuilds it
// in place for every candidate match, so the cover DP's inner loop performs
// no per-match allocations once the buffers have grown to the circuit's
// working set. The per-input data are parallel slices indexed by the
// position of the input in distinctIn; variable-length per-input lists
// (surviving true fanouts, pin positions) are flat buffers with offsets.
type matchGeometry struct {
	gatePos geom.Point
	// distinctIn lists the distinct input signals of the match in
	// first-occurrence order of its pin bindings.
	distinctIn []logic.NodeID
	// boundPins[i] counts the pins of gate(m) bound to distinctIn[i].
	boundPins []int
	// faninRect[i] is the enclosing rectangle of input i's pin set — the
	// §3.3 fanin rectangle, cached for the rectangle-incremental HPWL
	// fast path (extend by the gate position instead of re-scanning pins).
	faninRect []geom.Rect
	// fansBuf/fanOff: input i's surviving true fanouts (gate(m) excluded)
	// are fansBuf[fanOff[i]:fanOff[i+1]].
	fansBuf []trueFanout
	fanOff  []int
	// ptsBuf/ptsOff: input i's pin positions (the driver first, then the
	// surviving fanouts) are ptsBuf[ptsOff[i]:ptsOff[i+1]].
	ptsBuf []geom.Point
	ptsOff []int
	// fanoutPts holds the §3.3 fanout-rectangle points of the match root.
	fanoutPts []geom.Point
}

// fans returns distinct input i's surviving true fanouts.
func (g *matchGeometry) fans(i int) []trueFanout { return g.fansBuf[g.fanOff[i]:g.fanOff[i+1]] }

// pts returns distinct input i's pin positions: driver first, then fans.
func (g *matchGeometry) pts(i int) []geom.Point { return g.ptsBuf[g.ptsOff[i]:g.ptsOff[i+1]] }

// inputIndex returns the distinctIn position of vi, or -1.
func (g *matchGeometry) inputIndex(vi logic.NodeID) int {
	for i, u := range g.distinctIn {
		if u == vi {
			return i
		}
	}
	return -1
}

// geometry computes the candidate gate position and the per-input fanin
// geometry for a match, into the run's scratch matchGeometry. The returned
// pointer is invalidated by the next geometry call.
func (lm *lily) geometry(v logic.NodeID, m *match.Match) *matchGeometry {
	g := &lm.geo
	g.distinctIn = g.distinctIn[:0]
	g.boundPins = g.boundPins[:0]
	g.faninRect = g.faninRect[:0]
	g.fansBuf = g.fansBuf[:0]
	g.ptsBuf = g.ptsBuf[:0]
	g.fanoutPts = g.fanoutPts[:0]
	g.fanOff = append(g.fanOff[:0], 0)
	g.ptsOff = append(g.ptsOff[:0], 0)

	lm.markMerged(m.Merged)
	for _, vi := range m.Inputs {
		if j := g.inputIndex(vi); j >= 0 {
			g.boundPins[j]++
			continue
		}
		g.distinctIn = append(g.distinctIn, vi)
		g.boundPins = append(g.boundPins, 1)
	}
	// The explicit pin lists feed only the exact/spanning-tree wire
	// models; the default Steiner estimator works from the fanin
	// rectangle and the pin count (derived from fanOff), so skipping the
	// per-pin appends here saves a pass over every candidate's fanouts.
	needPts := lm.opt.WireModel != wire.ModelHPWLSteiner
	// Area mode with the Steiner estimator reads nothing of fansBuf either
	// (wireIncrement needs only the rectangle and the sink count), so its
	// inner loop folds the cached hawk-prefix rectangle — hawks never fail
	// the merged-set test — and scans just the short egg/nestling tail.
	fastFans := !needPts && lm.opt.Mode == ModeArea
	rects := lm.rects[:0]
	for _, vi := range g.distinctIn {
		p := lm.inputPos(vi)
		r := geom.RectAround(p)
		fans := lm.cachedFans(vi)
		if fastFans {
			cnt := int(lm.fanHawkCnt[vi])
			r = r.Union(lm.fanHawkRect[vi])
			for _, tf := range fans[cnt:] {
				if lm.inMerged(tf.node) {
					continue // fanout covered by m: disappears into gate(m)
				}
				cnt++
				r = r.Extend(tf.pos)
			}
			g.fanOff = append(g.fanOff, g.fanOff[len(g.fanOff)-1]+cnt)
			g.faninRect = append(g.faninRect, r)
			rects = append(rects, r)
			continue
		}
		if needPts {
			g.ptsBuf = append(g.ptsBuf, p)
		}
		for _, tf := range fans {
			if !tf.hawk && lm.inMerged(tf.node) {
				continue // non-hawk fanout covered by m: disappears into gate(m)
			}
			g.fansBuf = append(g.fansBuf, tf)
			if needPts {
				g.ptsBuf = append(g.ptsBuf, tf.pos)
			}
			r = r.Extend(tf.pos)
		}
		g.fanOff = append(g.fanOff, len(g.fansBuf))
		if needPts {
			g.ptsOff = append(g.ptsOff, len(g.ptsBuf))
		}
		g.faninRect = append(g.faninRect, r)
		rects = append(rects, r)
	}
	// Fanout rectangle: unprocessed subject fanouts of v (eggs, thanks to
	// the reverse-DFS order), plus PO pads v drives.
	for _, fo := range lm.sub.Fanouts(v) {
		if !lm.inMerged(fo) {
			g.fanoutPts = append(g.fanoutPts, lm.posArr[fo])
		}
	}
	g.fanoutPts = append(g.fanoutPts, lm.poPadPts[v]...)
	if len(g.fanoutPts) > 0 {
		rects = append(rects, geom.Enclosing(g.fanoutPts))
	}
	lm.rects = rects

	switch lm.opt.Update {
	case CMOfMerged:
		pts := lm.ptsWork[:0]
		for _, u := range m.Merged {
			pts = append(pts, lm.posArr[u])
		}
		lm.ptsWork = pts
		g.gatePos = geom.Centroid(pts)
	case MedianFans:
		g.gatePos = wire.MedianPoint(rects)
	default:
		g.gatePos = centerOfMass(rects)
	}
	return g
}

// centerOfMass is the zero-alloc equivalent of wire.CenterOfMassPoint: the
// centroid of the non-empty rectangles' centers, accumulated in slice order
// so the float additions replay exactly as geom.Centroid's.
func centerOfMass(rects []geom.Rect) geom.Point {
	var c geom.Point
	n := 0
	for _, r := range rects {
		if r.IsEmpty() {
			continue
		}
		c = c.Add(r.Center())
		n++
	}
	if n == 0 {
		return geom.Point{}
	}
	return c.Scale(1 / float64(n))
}

// wireIncrement estimates the added wire length of connecting gate(m) to
// distinct input i (§3.4): the net enclosing the driver, its surviving true
// fanouts, and gate(m), estimated by the configured model and divided by
// the sink count to avoid double-charging shared nets. For the HPWL model
// the cached fanin rectangle is extended by the gate position — identical
// to enclosing the full pin list, since Extend folds left to right.
func (lm *lily) wireIncrement(g *matchGeometry, i int) float64 {
	sinks := g.fanOff[i+1] - g.fanOff[i] + 1
	var length float64
	if lm.opt.WireModel == wire.ModelHPWLSteiner {
		npins := sinks + 1 // driver + surviving fans + gate(m)
		length = wire.HPWLNetLength(g.faninRect[i].Extend(g.gatePos), npins)
	} else {
		pts := append(lm.ptsWork[:0], g.pts(i)...)
		pts = append(pts, g.gatePos)
		lm.ptsWork = pts
		length = lm.ws.NetLength(lm.opt.WireModel, pts)
	}
	return length / float64(sinks)
}

// evaluateArea implements the §3 cost: aCost(v,m) plus λ-weighted routing
// area (wire length × routing pitch), both recursively accumulated.
func (lm *lily) evaluateArea(v logic.NodeID, matches []*match.Match) error {
	bestCost := math.Inf(1)
	var bm *match.Match
	var bmPos geom.Point
	var bmW, bmA float64
	for _, m := range matches {
		g := lm.geometry(v, m)
		area := m.Gate.Area
		wlen := 0.0
		feasible := true
		for i, vi := range g.distinctIn {
			wlen += lm.wireIncrement(g, i)
			switch {
			case lm.sub.Nodes[vi].Kind == logic.KindPI:
			case lm.state[vi] == StateHawk:
				// Committed: its area and wiring are already paid for.
			default:
				if lm.best[vi] == nil {
					feasible = false
					break
				}
				area += lm.areaSum[vi]
				wlen += lm.wCost[vi]
			}
		}
		if !feasible {
			continue
		}
		cost := area + lm.opt.WireWeight*lm.lib.WirePitch*wlen
		if cost < bestCost {
			bestCost, bm, bmPos, bmW, bmA = cost, m, g.gatePos, wlen, area
		}
	}
	if bm == nil {
		return fmt.Errorf("core: no feasible match at %q", lm.sub.Nodes[v].Name)
	}
	lm.best[v] = bm
	lm.cost[v] = bestCost
	lm.wCost[v] = bmW
	lm.areaSum[v] = bmA
	lm.mapPos[v] = bmPos
	return nil
}

// evaluateDelay implements the §4.4 procedure: for each candidate match the
// arrival times of its inputs are recomputed under the now-known load
// (gate type and position of the match), block arrival times are formed at
// the match, its output load is estimated from the base-function fanouts,
// and the match with the earliest output arrival wins.
func (lm *lily) evaluateDelay(v logic.NodeID, matches []*match.Match) error {
	bestArr := timing.Arrival{Rise: math.Inf(1), Fall: math.Inf(1)}
	bestArea := math.Inf(1)
	var bm *match.Match
	var bmPos geom.Point
	for _, m := range matches {
		g := lm.geometry(v, m)
		// Step 1: recompute input arrivals under the current load.
		// arrBuf[i] is the arrival of distinctIn[i].
		if cap(lm.inArr) < len(m.Inputs) {
			lm.inArr = make([]timing.Arrival, len(m.Inputs))
		}
		inArr := lm.inArr[:len(m.Inputs)]
		arrBuf := lm.arrBuf[:0]
		area := m.Gate.Area
		feasible := true
		for i, vi := range g.distinctIn {
			if lm.sub.Nodes[vi].Kind == logic.KindPI {
				arrBuf = append(arrBuf, timing.Arrival{})
				continue
			}
			var block *timing.BlockArrival
			switch lm.state[vi] {
			case StateHawk:
				block = lm.hawkBlock[vi]
			default:
				block = lm.blockA[vi]
				if lm.best[vi] == nil {
					feasible = false
				}
				area += lm.areaSum[vi]
			}
			if !feasible || block == nil {
				feasible = false
				break
			}
			load := lm.inputLoad(g, i, m)
			arrBuf = append(arrBuf, block.Output(load))
		}
		lm.arrBuf = arrBuf
		if !feasible {
			continue
		}
		for pin, vi := range m.Inputs {
			inArr[pin] = arrBuf[g.inputIndex(vi)]
		}
		// Steps 2–4: block arrivals at gate(m), output load from the base
		// fanouts, output arrival.
		lm.evalBlock.Fill(m.Gate, inArr)
		outLoad := lm.outputLoad(v, g)
		out := lm.evalBlock.Output(outLoad)
		if out.Max() < bestArr.Max()-1e-12 ||
			(math.Abs(out.Max()-bestArr.Max()) <= 1e-12 && area < bestArea) {
			bestArr, bestArea, bm, bmPos = out, area, m, g.gatePos
			lm.evalBlock, lm.bestBlock = lm.bestBlock, lm.evalBlock
		}
	}
	if bm == nil {
		return fmt.Errorf("core: no feasible match at %q", lm.sub.Nodes[v].Name)
	}
	lm.best[v] = bm
	lm.areaSum[v] = bestArea
	lm.mapPos[v] = bmPos
	lm.blockA[v] = lm.bestBlock.Clone()
	return nil
}

// inputLoad computes the load seen at distinct input i's driver when match
// m is present (§4.4 step 1): pin capacitances of the surviving true
// fanouts plus gate(m)'s pins bound to the input, plus the positional
// wiring capacitance. Capacitances accumulate in the same order as the
// original formulation so the float sums are bit-identical.
func (lm *lily) inputLoad(g *matchGeometry, i int, m *match.Match) float64 {
	caps := float64(g.boundPins[i]) * m.Gate.InputCap
	for _, tf := range g.fans(i) {
		caps += tf.cap
	}
	var x, y float64
	if lm.opt.WireModel == wire.ModelHPWLSteiner {
		npins := g.fanOff[i+1] - g.fanOff[i] + 2 // driver + fans + gate(m)
		x, y = wire.HPWLLengthXY(g.faninRect[i].Extend(g.gatePos), npins)
	} else {
		pts := append(lm.ptsWork[:0], g.pts(i)...)
		pts = append(pts, g.gatePos)
		lm.ptsWork = pts
		x, y = lm.ws.LengthXY(lm.opt.WireModel, pts)
	}
	return caps + lm.lib.WireCapH*x + lm.lib.WireCapV*y
}

// outputLoad computes the load at the match output from the base-function
// fanouts of v (§4.3: "we instead use the nodes in the N_inchoate as the
// fanouts"), unless a previous pass recorded the realized load.
func (lm *lily) outputLoad(v logic.NodeID, g *matchGeometry) float64 {
	if cl, ok := lm.loadHints[v]; ok {
		return cl
	}
	return lm.estimatedOutputLoad(g)
}

func (lm *lily) estimatedOutputLoad(g *matchGeometry) float64 {
	caps := 0.0
	for range g.fanoutPts {
		caps += lm.lib.Nand2.InputCap
	}
	var x, y float64
	if lm.opt.WireModel == wire.ModelHPWLSteiner {
		r := geom.RectAround(g.gatePos)
		for _, p := range g.fanoutPts {
			r = r.Extend(p)
		}
		x, y = wire.HPWLLengthXY(r, 1+len(g.fanoutPts))
	} else {
		pts := append(lm.ptsWork[:0], g.gatePos)
		pts = append(pts, g.fanoutPts...)
		lm.ptsWork = pts
		x, y = lm.ws.LengthXY(lm.opt.WireModel, pts)
	}
	return caps + lm.lib.WireCapH*x + lm.lib.WireCapV*y
}

// commitCone freezes the mapping decisions of a finished cone: needed
// nodes become hawks (recording the consumers of their input signals),
// covered interior nodes become doves.
func (lm *lily) commitCone(root logic.NodeID) error {
	needed, err := cover.NeededSet(lm.sub, func(v logic.NodeID) *match.Match {
		if lm.state[v] == StateHawk {
			return lm.committed[v]
		}
		return lm.best[v]
	}, []logic.NodeID{root})
	if err != nil {
		return err
	}
	// Deterministic commit order.
	ordered := make([]logic.NodeID, 0, len(needed))
	for v := range needed {
		ordered = append(ordered, v)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })

	var fresh []logic.NodeID
	for _, v := range ordered {
		if lm.state[v] == StateHawk {
			continue
		}
		fresh = append(fresh, v)
		if err := lm.setState(v, StateHawk); err != nil {
			return err
		}
		lm.committed[v] = lm.best[v]
		lm.hawkPos[v] = lm.mapPos[v]
		lm.hawkBlock[v] = lm.blockA[v]
		lm.stats.Hawks++
		if lm.everDove[v] {
			lm.stats.Reincarnations++
		}
		for _, vi := range dedupIDs(lm.best[v].Inputs) {
			lm.hawkConsumers[vi] = append(lm.hawkConsumers[vi], hawkRef{hawk: v, gate: lm.best[v].Gate})
			// Signal vi gained a hawk consumer: its cached list is stale.
			lm.fanVer[vi]++
		}
	}
	// Doves: interior nodes of freshly committed matches.
	for _, v := range fresh {
		for _, u := range lm.committed[v].Merged[1:] {
			if lm.state[u] == StateHawk {
				continue // duplicated: exists as a gate and inside another
			}
			if lm.state[u] == StateDove {
				continue
			}
			if err := lm.setState(u, StateDove); err != nil {
				return err
			}
			lm.everDove[u] = true
			lm.stats.Doves++
		}
	}
	// Prior doves re-evaluated this cone but claimed by neither a match
	// nor a merge keep their old fate: they remain merged inside the hawk
	// that consumed them in an earlier cone.
	for _, v := range lm.reawakened {
		if lm.state[v] == StateNestling {
			if err := lm.setState(v, StateDove); err != nil {
				return err
			}
		}
	}
	return nil
}

// recordedLoads extracts the realized output load of every mapped subject
// node from a finished delay pass: fanout pin capacitances plus the wiring
// capacitance of the net at its constructive positions.
func recordedLoads(sub *logic.Network, lib *library.Library, first *Result, model wire.Model) map[logic.NodeID]float64 {
	nl := first.Netlist
	loads := make(map[logic.NodeID]float64, len(nl.Cells))
	for _, net := range nl.Nets() {
		if net.Driver.IsPI {
			continue
		}
		cl := 0.0
		for _, s := range net.Sinks {
			cl += nl.Cells[s.Cell].Gate.InputCap
		}
		x, y := wire.LengthXY(model, nl.NetPins(net))
		cl += lib.WireCapH*x + lib.WireCapV*y
		nd := sub.NodeByName(nl.Cells[net.Driver.Index].Name)
		if nd != nil {
			loads[nd.ID] = cl
		}
	}
	return loads
}

func dedupIDs(ids []logic.NodeID) []logic.NodeID {
	seen := make(map[logic.NodeID]bool, len(ids))
	out := make([]logic.NodeID, 0, len(ids))
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}
