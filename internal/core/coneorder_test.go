package core

import (
	"testing"

	"lily/internal/logic"
)

// TestConeOrderGreedy reproduces §3.5 on a hand-built network: cone B
// depends heavily on logic inside cone A (many exit lines from B's
// perspective are references to A's unmapped nodes), so the greedy
// min-row-sum ordering must schedule A's supplier cone first.
func TestConeOrderGreedy(t *testing.T) {
	sub := logic.New("order")
	a := sub.AddPI("a")
	b := sub.AddPI("b")
	c := sub.AddPI("c")
	// Shared subtree s feeds both cones.
	s1 := sub.AddLogic("s1", []logic.NodeID{a.ID, b.ID}, logic.NandSOP(2))
	s2 := sub.AddLogic("s2", []logic.NodeID{s1.ID}, logic.NotSOP())
	// Cone X: consumes the shared tree twice plus c.
	x1 := sub.AddLogic("x1", []logic.NodeID{s2.ID, c.ID}, logic.NandSOP(2))
	x2 := sub.AddLogic("x2", []logic.NodeID{x1.ID, s1.ID}, logic.NandSOP(2))
	// Cone Y: only the shared tree.
	y1 := sub.AddLogic("y1", []logic.NodeID{s2.ID}, logic.NotSOP())
	sub.MarkPO(x2.ID, "x")
	sub.MarkPO(y1.ID, "y")

	lm := &lily{sub: sub, opt: Options{OrderCones: true}}
	order := lm.coneOrder()
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
	// Exit lines: E(K_x, K_y) counts edges from cone-x nodes into cone-y
	// exclusive nodes and vice versa. y's cone is a subset of x's support,
	// so E(K_y, K_x) > E(K_x, K_y) = 0, and x must be processed first
	// (its row sum is minimal).
	m := sub.ExitLines()
	// s2 -> y1 is the single exit from cone x into cone y; cone y exits
	// twice into cone-x-exclusive nodes (s1 -> x2 and s2 -> x1).
	if m[0][1] != 1 {
		t.Fatalf("E(K_x,K_y) = %d, want 1", m[0][1])
	}
	if m[1][0] != 2 {
		t.Fatalf("E(K_y,K_x) = %d, want 2", m[1][0])
	}
	if order[0] != 0 {
		t.Errorf("greedy order %v; cone x (index 0) should go first", order)
	}

	// With ordering disabled the natural order is preserved.
	lm.opt.OrderCones = false
	nat := lm.coneOrder()
	if nat[0] != 0 || nat[1] != 1 {
		t.Errorf("natural order = %v", nat)
	}
}

// TestConeOrderDeterministicTies ensures ties break by index.
func TestConeOrderDeterministicTies(t *testing.T) {
	sub := logic.New("ties")
	a := sub.AddPI("a")
	x := sub.AddLogic("x", []logic.NodeID{a.ID}, logic.NotSOP())
	y := sub.AddLogic("y", []logic.NodeID{a.ID}, logic.NotSOP())
	sub.MarkPO(x.ID, "x")
	sub.MarkPO(y.ID, "y")
	lm := &lily{sub: sub, opt: Options{OrderCones: true}}
	order := lm.coneOrder()
	if order[0] != 0 || order[1] != 1 {
		t.Errorf("tie-break order = %v, want [0 1]", order)
	}
}
