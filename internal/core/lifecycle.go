package core

import (
	"fmt"

	"lily/internal/logic"
)

// State is a subject-graph node's position in the life cycle of Figure 2.2:
// an egg has not been visited; a nestling has been visited in the current
// cone but not yet resolved; a hawk is the sink of a committed match and
// will appear in the final network; a dove has been merged into a hawk and
// will not — unless logic duplication reincarnates it in a later cone.
type State byte

const (
	// StateEgg marks an unvisited node.
	StateEgg State = iota
	// StateNestling marks a node visited in the current cone.
	StateNestling
	// StateHawk marks a committed match sink.
	StateHawk
	// StateDove marks a node merged into a hawk.
	StateDove
)

func (s State) String() string {
	switch s {
	case StateEgg:
		return "egg"
	case StateNestling:
		return "nestling"
	case StateHawk:
		return "hawk"
	default:
		return "dove"
	}
}

// Transition is one recorded life-cycle step, kept for tests and stats.
type Transition struct {
	Node logic.NodeID
	From State
	To   State
}

// LifecycleStats summarizes the mapping run.
type LifecycleStats struct {
	Hawks          int // nodes in the final network
	Doves          int // nodes merged away
	Reincarnations int // doves that re-entered processing (logic duplication)
	ConesProcessed int
	Replacements   int // global re-placements of the partially mapped network
}

func (s LifecycleStats) String() string {
	return fmt.Sprintf("hawks=%d doves=%d reincarnations=%d cones=%d",
		s.Hawks, s.Doves, s.Reincarnations, s.ConesProcessed)
}

// legalTransitions encodes the automaton of Figure 2.2. Dove → nestling is
// the reincarnation arc (the paper routes it through egg; the intermediate
// egg state is instantaneous and not observable).
var legalTransitions = map[[2]State]bool{
	{StateEgg, StateNestling}:      true,
	{StateNestling, StateHawk}:     true,
	{StateNestling, StateDove}:     true,
	{StateDove, StateNestling}:     true, // reincarnation via egg
	{StateDove, StateHawk}:         true, // merged node needed by a later cone commit
	{StateNestling, StateNestling}: true, // revisited within overlapping cones
}

// record validates and logs a transition.
func (lm *lily) setState(v logic.NodeID, to State) error {
	from := lm.state[v]
	if from == to {
		return nil
	}
	if !legalTransitions[[2]State{from, to}] {
		return fmt.Errorf("core: illegal life-cycle transition %v -> %v at node %d", from, to, v)
	}
	lm.state[v] = to
	// Every transition except egg→nestling changes v's membership in the
	// true-fanout lists of its direct fanins (and nothing else's: a
	// signal's list reads only its consumers' states), so bump exactly
	// those signals' fan versions. Egg and nestling are both "live"
	// consumers at state-independent positions and capacitances, so that
	// one transition keeps the caches warm across a cone's reverse-DFS
	// sweep.
	if from != StateEgg || to != StateNestling {
		for _, f := range lm.sub.Nodes[v].Fanins {
			lm.fanVer[f]++
		}
	}
	if lm.trace != nil {
		lm.trace = append(lm.trace, Transition{Node: v, From: from, To: to})
	}
	return nil
}
