package core

import (
	"math/rand"
	"testing"

	"lily/internal/bench"
	"lily/internal/decomp"
	"lily/internal/library"
	"lily/internal/logic"
	"lily/internal/netlist"
	"lily/internal/wire"
)

func subjectFor(t *testing.T, name string) (*logic.Network, *logic.Network) {
	t.Helper()
	p, ok := bench.ProfileByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	src := bench.Generate(p)
	res, err := decomp.Premap(src)
	if err != nil {
		t.Fatal(err)
	}
	return src, res.Inchoate
}

func checkEquivalent(t *testing.T, src *logic.Network, nl *netlist.Netlist, trials int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for k := 0; k < trials; k++ {
		in := make(map[string]bool)
		for _, pi := range src.PIs {
			in[src.Nodes[pi].Name] = rng.Intn(2) == 1
		}
		want, err := src.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := nl.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		for name := range want {
			if want[name] != got[name] {
				t.Fatalf("trial %d output %s: src %v, mapped %v", k, name, want[name], got[name])
			}
		}
	}
}

func TestLilyAreaEquivalence(t *testing.T) {
	for _, name := range []string{"misex1", "b9", "C432"} {
		src, sub := subjectFor(t, name)
		res, err := Map(sub, library.Big(), DefaultOptions(ModeArea))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkEquivalent(t, src, res.Netlist, 16, 21)
	}
}

func TestLilyDelayEquivalence(t *testing.T) {
	src, sub := subjectFor(t, "C432")
	res, err := Map(sub, library.Big(), DefaultOptions(ModeDelay))
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, src, res.Netlist, 16, 22)
}

func TestLilyPositionsInsideDie(t *testing.T) {
	_, sub := subjectFor(t, "C432")
	res, err := Map(sub, library.Big(), DefaultOptions(ModeArea))
	if err != nil {
		t.Fatal(err)
	}
	die := res.Placement.Die
	// Positions derive from centers/medians of rectangles whose corners
	// lie in the die, so they must stay inside it.
	for _, c := range res.Netlist.Cells {
		if !die.Contains(c.Pos) {
			t.Errorf("cell %s at %v outside die %v", c.Name, c.Pos, die)
		}
	}
	for i := range res.Netlist.PIPos {
		if !die.Contains(res.Netlist.PIPos[i]) {
			t.Errorf("PI %s outside die", res.Netlist.PINames[i])
		}
	}
}

func TestLilyLifecycleStats(t *testing.T) {
	_, sub := subjectFor(t, "C432")
	opt := DefaultOptions(ModeArea)
	opt.TraceLifecycle = true
	res, err := Map(sub, library.Big(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Hawks != len(res.Netlist.Cells) {
		t.Errorf("hawks %d != cells %d", res.Stats.Hawks, len(res.Netlist.Cells))
	}
	if res.Stats.ConesProcessed != len(sub.POs) {
		t.Errorf("cones %d != POs %d", res.Stats.ConesProcessed, len(sub.POs))
	}
	if res.Stats.Doves == 0 {
		t.Error("no doves: nothing was merged")
	}
	if len(res.Trace) == 0 {
		t.Fatal("no lifecycle trace")
	}
}

func TestLifecycleTransitionsLegal(t *testing.T) {
	// Every recorded transition must be an arc of the Fig 2.2 automaton;
	// setState errors on illegal arcs, so a successful run with tracing on
	// plus a replay check here covers it.
	_, sub := subjectFor(t, "duke2")
	opt := DefaultOptions(ModeArea)
	opt.TraceLifecycle = true
	res, err := Map(sub, library.Big(), opt)
	if err != nil {
		t.Fatal(err)
	}
	cur := make(map[logic.NodeID]State)
	for _, tr := range res.Trace {
		if got := cur[tr.Node]; got != tr.From {
			t.Fatalf("trace inconsistent at node %d: recorded from %v, actual %v", tr.Node, tr.From, got)
		}
		if !legalTransitions[[2]State{tr.From, tr.To}] {
			t.Fatalf("illegal transition %v->%v", tr.From, tr.To)
		}
		cur[tr.Node] = tr.To
	}
	// Terminal states are hawk or dove only (and nestling for nodes in no
	// final cover — which must not happen).
	for node, st := range cur {
		if st == StateNestling || st == StateEgg {
			t.Errorf("node %d left in state %v", node, st)
		}
	}
}

func TestReincarnationHappens(t *testing.T) {
	// Across the benchmark suite, logic duplication across cones should
	// occur at least once (doves reincarnating).
	total := 0
	for _, name := range []string{"C432", "duke2", "C880"} {
		_, sub := subjectFor(t, name)
		res, err := Map(sub, library.Big(), DefaultOptions(ModeArea))
		if err != nil {
			t.Fatal(err)
		}
		total += res.Stats.Reincarnations
	}
	if total == 0 {
		t.Log("no reincarnations observed; acceptable but unusual")
	}
}

func TestUpdateRules(t *testing.T) {
	src, sub := subjectFor(t, "misex1")
	for _, rule := range []UpdateRule{CMOfFans, CMOfMerged, MedianFans} {
		opt := DefaultOptions(ModeArea)
		opt.Update = rule
		res, err := Map(sub, library.Big(), opt)
		if err != nil {
			t.Fatalf("%v: %v", rule, err)
		}
		checkEquivalent(t, src, res.Netlist, 8, 31)
	}
}

func TestConeOrderingToggle(t *testing.T) {
	src, sub := subjectFor(t, "misex1")
	for _, order := range []bool{true, false} {
		opt := DefaultOptions(ModeArea)
		opt.OrderCones = order
		res, err := Map(sub, library.Big(), opt)
		if err != nil {
			t.Fatalf("order=%v: %v", order, err)
		}
		checkEquivalent(t, src, res.Netlist, 8, 32)
	}
}

func TestWireWeightZeroMatchesAreaOnly(t *testing.T) {
	// λ=0 must degrade gracefully to pure active-area covering; its active
	// area must be <= the λ=1 result's.
	_, sub := subjectFor(t, "C432")
	optZ := DefaultOptions(ModeArea)
	optZ.WireWeight = 0
	rz, err := Map(sub, library.Big(), optZ)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Map(sub, library.Big(), DefaultOptions(ModeArea))
	if err != nil {
		t.Fatal(err)
	}
	if rz.Netlist.Stat().ActiveArea > r1.Netlist.Stat().ActiveArea+1e-6 {
		t.Errorf("λ=0 active area %.0f > λ=1 %.0f",
			rz.Netlist.Stat().ActiveArea, r1.Netlist.Stat().ActiveArea)
	}
}

func TestNegativeWireWeightRejected(t *testing.T) {
	_, sub := subjectFor(t, "misex1")
	opt := DefaultOptions(ModeArea)
	opt.WireWeight = -1
	if _, err := Map(sub, library.Big(), opt); err == nil {
		t.Error("negative wire weight accepted")
	}
}

func TestSpanningTreeWireModel(t *testing.T) {
	src, sub := subjectFor(t, "misex1")
	opt := DefaultOptions(ModeArea)
	opt.WireModel = wire.ModelSpanningTree
	res, err := Map(sub, library.Big(), opt)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, src, res.Netlist, 8, 33)
}

func TestLilyDeterministic(t *testing.T) {
	_, sub := subjectFor(t, "misex1")
	a, err := Map(sub, library.Big(), DefaultOptions(ModeArea))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Map(sub, library.Big(), DefaultOptions(ModeArea))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Netlist.Cells) != len(b.Netlist.Cells) {
		t.Fatal("cell counts differ")
	}
	for i := range a.Netlist.Cells {
		ca, cb := a.Netlist.Cells[i], b.Netlist.Cells[i]
		if ca.Name != cb.Name || ca.Gate.Name != cb.Gate.Name || ca.Pos != cb.Pos {
			t.Fatalf("cell %d differs: %v/%v %v vs %v/%v %v",
				i, ca.Name, ca.Gate.Name, ca.Pos, cb.Name, cb.Gate.Name, cb.Pos)
		}
	}
}

func TestReplaceEvery(t *testing.T) {
	src, sub := subjectFor(t, "duke2")
	opt := DefaultOptions(ModeArea)
	opt.ReplaceEvery = 8
	res, err := Map(sub, library.Big(), opt)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, src, res.Netlist, 8, 41)
	if res.Stats.Replacements == 0 {
		t.Error("no re-placements happened")
	}
	// Positions must remain within the original die.
	for _, c := range res.Netlist.Cells {
		if !res.Placement.Die.Contains(c.Pos) {
			t.Errorf("cell %s at %v escaped the die after re-placement", c.Name, c.Pos)
		}
	}
}

func TestReplaceKeepsPads(t *testing.T) {
	_, sub := subjectFor(t, "misex1")
	base, err := Map(sub, library.Big(), DefaultOptions(ModeArea))
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(ModeArea)
	opt.ReplaceEvery = 2
	repl, err := Map(sub, library.Big(), opt)
	if err != nil {
		t.Fatal(err)
	}
	// Pad positions are pinned across re-placements: PI positions match
	// the run without re-placement.
	for i := range base.Netlist.PIPos {
		if base.Netlist.PIPos[i] != repl.Netlist.PIPos[i] {
			t.Errorf("PI %s pad moved: %v -> %v", base.Netlist.PINames[i],
				base.Netlist.PIPos[i], repl.Netlist.PIPos[i])
		}
	}
	for i := range base.Netlist.POs {
		if base.Netlist.POs[i].Pad != repl.Netlist.POs[i].Pad {
			t.Errorf("PO %s pad moved", base.Netlist.POs[i].Name)
		}
	}
}

func TestTwoPassDelay(t *testing.T) {
	src, sub := subjectFor(t, "C432")
	opt := DefaultOptions(ModeDelay)
	opt.TwoPassDelay = true
	res, err := Map(sub, library.Big(), opt)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, src, res.Netlist, 12, 51)
}

func TestRecordedLoadsPositive(t *testing.T) {
	_, sub := subjectFor(t, "misex1")
	res, err := Map(sub, library.Big(), DefaultOptions(ModeDelay))
	if err != nil {
		t.Fatal(err)
	}
	loads := recordedLoads(sub, library.Big(), res, wire.ModelHPWLSteiner)
	if len(loads) == 0 {
		t.Fatal("no loads recorded")
	}
	for id, cl := range loads {
		if cl < 0 {
			t.Errorf("node %d negative load %v", id, cl)
		}
	}
}
