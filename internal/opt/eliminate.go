package opt

import "lily/internal/logic"

// eliminate collapses low-value nodes into their fanouts (MIS "eliminate").
// To keep cover growth under control only single-cube (AND-shaped) nodes
// are candidates: substituting the positive phase splices the one cube in,
// and the negative phase expands by De Morgan into single-literal cubes.
// A candidate is collapsed when the resulting literal delta is at most the
// threshold.
func eliminate(net *logic.Network, threshold int, st *Stats) int {
	changed := 0
	order, err := net.TopoOrder()
	if err != nil {
		return 0
	}
	for _, id := range order {
		nd := net.Node(id)
		if nd == nil || nd.Kind != logic.KindLogic || net.IsPO(id) {
			continue
		}
		if len(nd.Cover.Cubes) != 1 || len(nd.Fanins) == 0 || hasDuplicateFanins(nd) {
			continue
		}
		fanouts := append([]logic.NodeID(nil), net.Fanouts(id)...)
		if len(fanouts) == 0 {
			continue
		}
		feasible := true
		delta := -nd.Cover.LiteralCount() // the node itself disappears
		type plan struct {
			fo    logic.NodeID
			cover logic.SOP
			fans  []logic.NodeID
		}
		var plans []plan
		seen := map[logic.NodeID]bool{}
		for _, fo := range fanouts {
			if seen[fo] {
				continue
			}
			seen[fo] = true
			fnd := net.Node(fo)
			if fnd == nil || fnd.Kind != logic.KindLogic || hasDuplicateFanins(fnd) {
				feasible = false
				break
			}
			newCover, newFans, ok := substituteNode(net, fnd, nd)
			if !ok {
				feasible = false
				break
			}
			delta += newCover.LiteralCount() - fnd.Cover.LiteralCount()
			plans = append(plans, plan{fo, newCover, newFans})
		}
		if !feasible || delta > threshold {
			continue
		}
		for _, p := range plans {
			applySubstitution(net, p.fo, p.cover, p.fans)
		}
		st.NodesCollapsed++
		changed++
	}
	return changed
}

// substituteNode computes fanout node fnd's cover with nd spliced in.
// Returns the new cover over the new fanin list.
func substituteNode(net *logic.Network, fnd, nd *logic.Node) (logic.SOP, []logic.NodeID, bool) {
	pos := faninPos(fnd, nd.ID)
	if pos < 0 {
		return logic.SOP{}, nil, false
	}
	// New fanin list: fnd's fanins without nd, then nd's fanins not
	// already present.
	var fans []logic.NodeID
	for i, f := range fnd.Fanins {
		if i != pos {
			fans = append(fans, f)
		}
	}
	mapped := make(map[logic.NodeID]int)
	for i, f := range fans {
		mapped[f] = i
	}
	for _, f := range nd.Fanins {
		if _, ok := mapped[f]; !ok {
			mapped[f] = len(fans)
			fans = append(fans, f)
		}
	}
	width := len(fans)

	andCube := nd.Cover.Cubes[0]
	out := logic.NewSOP(width)
	for _, c := range fnd.Cover.Cubes {
		base := make(logic.Cube, width)
		for i, l := range c {
			if i == pos {
				continue
			}
			fi := fnd.Fanins[i]
			if !mergeLit(base, mapped[fi], l) {
				return logic.SOP{}, nil, false
			}
		}
		switch c[pos] {
		case logic.LitDC:
			out.AddCube(base)
		case logic.LitPos:
			// Splice the AND cube in; phase conflicts kill the cube.
			nc := append(logic.Cube(nil), base...)
			dead := false
			for i, l := range andCube {
				if l == logic.LitDC {
					continue
				}
				if !mergeLit(nc, mapped[nd.Fanins[i]], l) {
					dead = true
					break
				}
			}
			if !dead {
				out.AddCube(nc)
			}
		case logic.LitNeg:
			// De Morgan: NOT(AND(l1..lk)) = OR of the negated literals.
			for i, l := range andCube {
				if l == logic.LitDC {
					continue
				}
				nc := append(logic.Cube(nil), base...)
				inv := logic.LitNeg
				if l == logic.LitNeg {
					inv = logic.LitPos
				}
				if mergeLit(nc, mapped[nd.Fanins[i]], inv) {
					out.AddCube(nc)
				}
			}
		}
	}
	return out, fans, true
}

// mergeLit intersects a literal into position i; false on phase conflict.
func mergeLit(c logic.Cube, i int, l logic.Lit) bool {
	if l == logic.LitDC {
		return true
	}
	if c[i] == logic.LitDC || c[i] == l {
		c[i] = l
		return true
	}
	return false
}

// applySubstitution rewires fnd to the new fanins and cover.
func applySubstitution(net *logic.Network, fo logic.NodeID, cover logic.SOP, fans []logic.NodeID) {
	fnd := net.Node(fo)
	// Detach all old fanins, then attach the new list.
	for i := len(fnd.Fanins) - 1; i >= 0; i-- {
		net.RemoveFanin(fo, i)
	}
	fnd.Fanins = append([]logic.NodeID(nil), fans...)
	for _, f := range fans {
		net.AttachFanout(f, fo)
	}
	fnd.Cover = cover
}
