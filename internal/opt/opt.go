// Package opt implements the technology-independent optimization phase the
// paper's pipeline consumes ("Given a Boolean network representing a
// combinational logic circuit optimized by technology independent synthesis
// procedures", §1): MIS-style algebraic transformations that reduce the
// factored-form literal count before premapping. The passes are classic
// MIS operations — constant propagation, two-level cover simplification,
// greedy common-cube extraction, and elimination of low-value nodes — each
// preserving network function (verified by the package tests by exhaustive
// or randomized simulation).
package opt

import (
	"fmt"

	"lily/internal/logic"
)

// Options tunes the optimization pipeline.
type Options struct {
	// MaxIterations bounds the outer simplify/extract loop.
	MaxIterations int
	// EliminateThreshold collapses nodes whose elimination "value"
	// (extra literals introduced minus literals saved) is at most this;
	// −1 disables elimination.
	EliminateThreshold int
	// ExtractMinSaving requires a common cube to save at least this many
	// literals before it is extracted.
	ExtractMinSaving int
}

// DefaultOptions returns the configuration used by the flow.
func DefaultOptions() Options {
	return Options{MaxIterations: 4, EliminateThreshold: 0, ExtractMinSaving: 2}
}

// Stats reports what the pipeline changed.
type Stats struct {
	LiteralsBefore int
	LiteralsAfter  int
	NodesBefore    int
	NodesAfter     int
	CubesMerged    int
	CubesDropped   int
	ConstantsFound int
	CubesExtracted int
	NodesCollapsed int
}

func (s Stats) String() string {
	return fmt.Sprintf("lits %d->%d nodes %d->%d (merged=%d dropped=%d const=%d extracted=%d collapsed=%d)",
		s.LiteralsBefore, s.LiteralsAfter, s.NodesBefore, s.NodesAfter,
		s.CubesMerged, s.CubesDropped, s.ConstantsFound, s.CubesExtracted, s.NodesCollapsed)
}

// Optimize runs the pipeline in place and returns statistics.
func Optimize(net *logic.Network, opt Options) (Stats, error) {
	var st Stats
	st.LiteralsBefore = totalLiterals(net)
	st.NodesBefore = net.NumLogic()
	if opt.MaxIterations <= 0 {
		opt.MaxIterations = 1
	}
	for iter := 0; iter < opt.MaxIterations; iter++ {
		changed := 0
		changed += propagateConstants(net, &st)
		changed += simplifyCovers(net, &st)
		changed += extractCommonCubes(net, opt.ExtractMinSaving, &st)
		if opt.EliminateThreshold >= 0 {
			changed += eliminate(net, opt.EliminateThreshold, &st)
		}
		net.Sweep()
		if changed == 0 {
			break
		}
	}
	if err := net.Check(); err != nil {
		return st, fmt.Errorf("opt: broke the network: %w", err)
	}
	st.LiteralsAfter = totalLiterals(net)
	st.NodesAfter = net.NumLogic()
	return st, nil
}

func totalLiterals(net *logic.Network) int {
	total := 0
	for _, nd := range net.Nodes {
		if nd != nil && nd.Kind == logic.KindLogic {
			total += nd.Cover.LiteralCount()
		}
	}
	return total
}

// propagateConstants finds structurally constant nodes and cofactors them
// into their fanouts.
func propagateConstants(net *logic.Network, st *Stats) int {
	changed := 0
	order, err := net.TopoOrder()
	if err != nil {
		return 0
	}
	constVal := make(map[logic.NodeID]bool)
	for _, id := range order {
		nd := net.Node(id)
		if nd == nil || nd.Kind != logic.KindLogic {
			continue
		}
		// Substitute known-constant fanins first.
		for i := len(nd.Fanins) - 1; i >= 0; i-- {
			if v, ok := constVal[nd.Fanins[i]]; ok {
				cofactorFanin(net, nd, i, v)
				changed++
			}
		}
		switch {
		case nd.Cover.IsConst0():
			dropAllFanins(net, nd)
			nd.Cover = logic.ConstSOP(false)
			constVal[id] = false
			st.ConstantsFound++
		case nd.Cover.IsConst1():
			dropAllFanins(net, nd)
			nd.Cover = logic.ConstSOP(true)
			constVal[id] = true
			st.ConstantsFound++
		}
	}
	return changed
}

// cofactorFanin fixes fanin position i of nd to value v and removes the
// fanin.
func cofactorFanin(net *logic.Network, nd *logic.Node, i int, v bool) {
	old := nd.Cover
	out := logic.NewSOP(old.NumInputs - 1)
	for _, c := range old.Cubes {
		keep := true
		switch c[i] {
		case logic.LitPos:
			keep = v
		case logic.LitNeg:
			keep = !v
		}
		if !keep {
			continue
		}
		nc := make(logic.Cube, 0, len(c)-1)
		nc = append(nc, c[:i]...)
		nc = append(nc, c[i+1:]...)
		out.AddCube(nc)
	}
	net.RemoveFanin(nd.ID, i)
	nd.Cover = out
}

func dropAllFanins(net *logic.Network, nd *logic.Node) {
	for i := len(nd.Fanins) - 1; i >= 0; i-- {
		net.RemoveFanin(nd.ID, i)
	}
	nd.Cover = logic.SOP{NumInputs: 0, Cubes: nil} // caller sets the constant
}

// simplifyCovers removes contained cubes and merges distance-1 cube pairs
// (a lightweight espresso step), then drops unused fanins.
func simplifyCovers(net *logic.Network, st *Stats) int {
	changed := 0
	for _, nd := range net.Nodes {
		if nd == nil || nd.Kind != logic.KindLogic || len(nd.Fanins) == 0 {
			continue
		}
		before := nd.Cover.LiteralCount()
		cover := nd.Cover
		cover = dropContainedCubes(cover, st)
		cover = mergeDistanceOne(cover, st)
		cover = dropContainedCubes(cover, st)
		nd.Cover = cover
		pruneUnusedFanins(net, nd)
		if nd.Cover.LiteralCount() < before {
			changed++
		}
	}
	return changed
}

// covers reports whether cube a covers cube b (a's literals are a subset).
func cubeCovers(a, b logic.Cube) bool {
	for i := range a {
		if a[i] != logic.LitDC && a[i] != b[i] {
			return false
		}
	}
	return true
}

func dropContainedCubes(s logic.SOP, st *Stats) logic.SOP {
	out := logic.NewSOP(s.NumInputs)
	for i, c := range s.Cubes {
		contained := false
		for j, d := range s.Cubes {
			if i == j {
				continue
			}
			if cubeCovers(d, c) && !(cubeCovers(c, d) && j > i) {
				contained = true
				break
			}
		}
		if contained {
			st.CubesDropped++
			continue
		}
		out.AddCube(append(logic.Cube(nil), c...))
	}
	return out
}

// mergeDistanceOne combines cube pairs differing only in the phase of one
// literal: x·a + x̄·a = a.
func mergeDistanceOne(s logic.SOP, st *Stats) logic.SOP {
	cubes := make([]logic.Cube, len(s.Cubes))
	for i, c := range s.Cubes {
		cubes[i] = append(logic.Cube(nil), c...)
	}
	merged := true
	for merged {
		merged = false
	outer:
		for i := 0; i < len(cubes); i++ {
			for j := i + 1; j < len(cubes); j++ {
				if pos, ok := distanceOne(cubes[i], cubes[j]); ok {
					cubes[i][pos] = logic.LitDC
					cubes = append(cubes[:j], cubes[j+1:]...)
					st.CubesMerged++
					merged = true
					break outer
				}
			}
		}
	}
	out := logic.NewSOP(s.NumInputs)
	for _, c := range cubes {
		out.AddCube(c)
	}
	return out
}

// distanceOne reports whether two cubes agree everywhere except one
// position where they hold opposite phases.
func distanceOne(a, b logic.Cube) (int, bool) {
	pos := -1
	for i := range a {
		if a[i] == b[i] {
			continue
		}
		opposite := (a[i] == logic.LitPos && b[i] == logic.LitNeg) ||
			(a[i] == logic.LitNeg && b[i] == logic.LitPos)
		if !opposite || pos >= 0 {
			return -1, false
		}
		pos = i
	}
	return pos, pos >= 0
}

// pruneUnusedFanins removes fanins no cube references.
func pruneUnusedFanins(net *logic.Network, nd *logic.Node) {
	for i := len(nd.Fanins) - 1; i >= 0; i-- {
		if !nd.Cover.DependsOn(i) {
			cofactorFanin(net, nd, i, true) // value irrelevant: no cube uses it
		}
	}
}
