package opt

import (
	"math/rand"
	"testing"

	"lily/internal/bench"
	"lily/internal/logic"
)

// checkSame verifies functional equivalence of a network before and after
// a transformation using captured input/output behaviour.
func snapshot(t *testing.T, net *logic.Network, trials int, seed int64) []map[string]bool {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var outs []map[string]bool
	for k := 0; k < trials; k++ {
		in := make(map[string]bool)
		for _, pi := range net.PIs {
			in[net.Nodes[pi].Name] = rng.Intn(2) == 1
		}
		o, err := net.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		o["__trial"] = k%2 == 0 // keep map non-empty even for no-PO nets
		outs = append(outs, o)
	}
	return outs
}

func compare(t *testing.T, net *logic.Network, want []map[string]bool, trials int, seed int64) {
	t.Helper()
	got := snapshot(t, net, trials, seed)
	for k := range want {
		for name := range want[k] {
			if want[k][name] != got[k][name] {
				t.Fatalf("trial %d output %s changed", k, name)
			}
		}
	}
}

func TestOptimizePreservesFunction(t *testing.T) {
	for _, name := range []string{"misex1", "b9", "C432", "duke2"} {
		p, _ := bench.ProfileByName(name)
		net := bench.Generate(p)
		want := snapshot(t, net, 24, 5)
		st, err := Optimize(net, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		compare(t, net, want, 24, 5)
		if st.LiteralsAfter > st.LiteralsBefore {
			t.Errorf("%s: literals grew %d -> %d", name, st.LiteralsBefore, st.LiteralsAfter)
		}
	}
}

func TestOptimizeReducesLiterals(t *testing.T) {
	// A redundant network: shared cube ab in three nodes, contained
	// cubes, and a mergeable pair.
	net := logic.New("red")
	a := net.AddPI("a")
	b := net.AddPI("b")
	c := net.AddPI("c")
	d := net.AddPI("d")
	mk := func(name string, cubes ...logic.Cube) *logic.Node {
		s := logic.NewSOP(4)
		for _, cu := range cubes {
			s.AddCube(cu)
		}
		return net.AddLogic(name, []logic.NodeID{a.ID, b.ID, c.ID, d.ID}, s)
	}
	// x = ab c + ab d
	x := mk("x",
		logic.Cube{logic.LitPos, logic.LitPos, logic.LitPos, logic.LitDC},
		logic.Cube{logic.LitPos, logic.LitPos, logic.LitDC, logic.LitPos})
	// y = ab !c + ab c  (mergeable to ab)
	y := mk("y",
		logic.Cube{logic.LitPos, logic.LitPos, logic.LitNeg, logic.LitDC},
		logic.Cube{logic.LitPos, logic.LitPos, logic.LitPos, logic.LitDC})
	// z = abc + abcd (second cube contained)
	z := mk("z",
		logic.Cube{logic.LitPos, logic.LitPos, logic.LitPos, logic.LitDC},
		logic.Cube{logic.LitPos, logic.LitPos, logic.LitPos, logic.LitPos})
	net.MarkPO(x.ID, "x")
	net.MarkPO(y.ID, "y")
	net.MarkPO(z.ID, "z")

	want := snapshot(t, net, 16, 9)
	st, err := Optimize(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	compare(t, net, want, 16, 9)
	if st.LiteralsAfter >= st.LiteralsBefore {
		t.Errorf("no reduction: %v", st)
	}
	if st.CubesDropped == 0 {
		t.Error("contained cube not dropped")
	}
	if st.CubesMerged == 0 {
		t.Error("distance-1 cubes not merged")
	}
}

func TestExtractSharedCube(t *testing.T) {
	// Three nodes each containing cube a·b: extraction should introduce
	// one shared AND node.
	net := logic.New("ext")
	a := net.AddPI("a")
	b := net.AddPI("b")
	c := net.AddPI("c")
	for i, other := range []logic.NodeID{c.ID, c.ID, c.ID} {
		s := logic.NewSOP(3)
		s.AddCube(logic.Cube{logic.LitPos, logic.LitPos, logic.LitDC})
		s.AddCube(logic.Cube{logic.LitDC, logic.LitDC, logic.LitPos})
		nd := net.AddLogic(string(rune('x'+i)), []logic.NodeID{a.ID, b.ID, other}, s)
		net.MarkPO(nd.ID, string(rune('x'+i)))
	}
	want := snapshot(t, net, 8, 3)
	var st Stats
	n := extractCommonCubes(net, 0, &st)
	if n == 0 || st.CubesExtracted == 0 {
		t.Fatal("nothing extracted")
	}
	if err := net.Check(); err != nil {
		t.Fatal(err)
	}
	compare(t, net, want, 8, 3)
	// The new shared node exists and feeds all three.
	found := false
	for _, nd := range net.Nodes {
		if nd != nil && nd.Kind == logic.KindLogic && len(net.Fanouts(nd.ID)) >= 3 {
			found = true
		}
	}
	if !found {
		t.Error("no shared extracted node with 3 fanouts")
	}
}

func TestConstantPropagation(t *testing.T) {
	net := logic.New("consts")
	a := net.AddPI("a")
	zero := net.AddLogic("zero", nil, logic.ConstSOP(false))
	// x = a AND zero = 0; y = a OR zero = a
	x := net.AddLogic("x", []logic.NodeID{a.ID, zero.ID}, logic.AndSOP(2))
	y := net.AddLogic("y", []logic.NodeID{a.ID, zero.ID}, logic.OrSOP(2))
	net.MarkPO(x.ID, "x")
	net.MarkPO(y.ID, "y")
	want := snapshot(t, net, 4, 7)
	st, err := Optimize(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	compare(t, net, want, 4, 7)
	if st.ConstantsFound == 0 {
		t.Error("constants not found")
	}
	// x must now be a constant-0 node with no fanins.
	xn := net.NodeByName("x")
	if len(xn.Fanins) != 0 || !xn.Cover.IsConst0() {
		t.Errorf("x not reduced to constant: %v fanins, cover %v", len(xn.Fanins), xn.Cover)
	}
}

func TestEliminateSingleCubeNode(t *testing.T) {
	// m = a AND b feeding two nodes, one positively, one negatively; both
	// should absorb it when the threshold allows.
	net := logic.New("elim")
	a := net.AddPI("a")
	b := net.AddPI("b")
	c := net.AddPI("c")
	m := net.AddLogic("m", []logic.NodeID{a.ID, b.ID}, logic.AndSOP(2))
	pos := net.AddLogic("pos", []logic.NodeID{m.ID, c.ID}, logic.AndSOP(2))
	s := logic.NewSOP(2)
	s.AddCube(logic.Cube{logic.LitNeg, logic.LitPos}) // !m AND c
	neg := net.AddLogic("neg", []logic.NodeID{m.ID, c.ID}, s)
	net.MarkPO(pos.ID, "pos")
	net.MarkPO(neg.ID, "neg")

	want := snapshot(t, net, 8, 11)
	var st Stats
	n := eliminate(net, 5, &st)
	if n == 0 {
		t.Fatal("nothing eliminated")
	}
	net.Sweep()
	if err := net.Check(); err != nil {
		t.Fatal(err)
	}
	compare(t, net, want, 8, 11)
	if net.NodeByName("m") != nil {
		t.Error("m survived elimination")
	}
}

func TestEliminateRespectsThreshold(t *testing.T) {
	// A wide AND with many fanouts: collapsing would duplicate literals
	// beyond the threshold, so it must stay.
	net := logic.New("keep")
	var pis []logic.NodeID
	for i := 0; i < 4; i++ {
		pis = append(pis, net.AddPI(string(rune('a'+i))).ID)
	}
	m := net.AddLogic("m", pis, logic.AndSOP(4))
	for i := 0; i < 5; i++ {
		nd := net.AddLogic("o"+string(rune('0'+i)), []logic.NodeID{m.ID, pis[0]}, logic.AndSOP(2))
		net.MarkPO(nd.ID, "o"+string(rune('0'+i)))
	}
	var st Stats
	if n := eliminate(net, 0, &st); n != 0 {
		t.Errorf("high-cost node eliminated (%d)", n)
	}
	if net.NodeByName("m") == nil {
		t.Error("m removed despite threshold")
	}
}

func TestOptimizeBeforePremapHelps(t *testing.T) {
	// On the generated circuits (which carry redundancy by construction),
	// optimization should shrink literals without changing function.
	p, _ := bench.ProfileByName("misex3")
	net := bench.Generate(p)
	before := 0
	for _, nd := range net.Nodes {
		if nd != nil && nd.Kind == logic.KindLogic {
			before += nd.Cover.LiteralCount()
		}
	}
	st, err := Optimize(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.LiteralsAfter >= before {
		t.Logf("no literal reduction on misex3 (%d -> %d); acceptable but unusual",
			before, st.LiteralsAfter)
	}
}
