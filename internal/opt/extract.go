package opt

import (
	"fmt"

	"lily/internal/logic"
)

// literal identifies a signal with phase, network-wide.
type literal struct {
	node logic.NodeID
	neg  bool
}

// pairKey orders two literals canonically.
type pairKey struct {
	a, b literal
}

func makePair(x, y literal) pairKey {
	if y.node < x.node || (y.node == x.node && y.neg && !x.neg) {
		x, y = y, x
	}
	return pairKey{x, y}
}

// extractCommonCubes finds two-literal cubes occurring in many product
// terms across the network, materializes each as a new AND node, and
// rewrites the covers to use it — the common-cube extraction of MIS's
// technology-independent phase. Greedy: the best pair is extracted, counts
// are rebuilt, and the loop continues while the saving threshold is met.
func extractCommonCubes(net *logic.Network, minSaving int, st *Stats) int {
	changed := 0
	for round := 0; round < 200; round++ {
		pair, count := bestPair(net)
		// Extracting a pair occurring in k cubes replaces 2k literals by k
		// and spends 2 on the new node: saving = k − 2.
		if count-2 < minSaving {
			break
		}
		if !applyExtraction(net, pair) {
			break
		}
		st.CubesExtracted++
		changed++
	}
	return changed
}

// bestPair counts co-occurrences of literal pairs inside cubes.
func bestPair(net *logic.Network) (pairKey, int) {
	counts := make(map[pairKey]int)
	for _, nd := range net.Nodes {
		if nd == nil || nd.Kind != logic.KindLogic || hasDuplicateFanins(nd) {
			continue
		}
		for _, c := range nd.Cover.Cubes {
			lits := cubeLiterals(nd, c)
			for i := 0; i < len(lits); i++ {
				for j := i + 1; j < len(lits); j++ {
					counts[makePair(lits[i], lits[j])]++
				}
			}
		}
	}
	// Single-pass max with a total tie-break: strictly greater count wins,
	// ties fall to the pairLess-smallest key, so the winner is independent
	// of map visit order — same answer as the old collect-keys-and-sort
	// pass without the O(n log n) sort per greedy round.
	var best pairKey
	bestCount := 0
	//lint:sorted max with total pairLess tie-break is order-insensitive
	for k, n := range counts {
		if n > bestCount || (n == bestCount && pairLess(k, best)) {
			best, bestCount = k, n
		}
	}
	return best, bestCount
}

// pairLess is a total order on pairKeys (the bestPair tie-break).
func pairLess(a, b pairKey) bool {
	if a.a.node != b.a.node {
		return a.a.node < b.a.node
	}
	if a.a.neg != b.a.neg {
		return !a.a.neg
	}
	if a.b.node != b.b.node {
		return a.b.node < b.b.node
	}
	return !a.b.neg && b.b.neg
}

func hasDuplicateFanins(nd *logic.Node) bool {
	seen := make(map[logic.NodeID]bool, len(nd.Fanins))
	for _, f := range nd.Fanins {
		if seen[f] {
			return true
		}
		seen[f] = true
	}
	return false
}

func cubeLiterals(nd *logic.Node, c logic.Cube) []literal {
	var out []literal
	for i, l := range c {
		switch l {
		case logic.LitPos:
			out = append(out, literal{nd.Fanins[i], false})
		case logic.LitNeg:
			out = append(out, literal{nd.Fanins[i], true})
		}
	}
	return out
}

// applyExtraction creates the AND node for the pair and rewrites every
// cube containing both literals.
func applyExtraction(net *logic.Network, pair pairKey) bool {
	// Build x = litA AND litB.
	cover := logic.NewSOP(2)
	cube := make(logic.Cube, 2)
	cube[0] = phaseLit(pair.a.neg)
	cube[1] = phaseLit(pair.b.neg)
	cover.AddCube(cube)
	x := net.AddLogic(freshName(net, "cx"), []logic.NodeID{pair.a.node, pair.b.node}, cover)

	rewrote := false
	for _, nd := range net.Nodes {
		if nd == nil || nd.Kind != logic.KindLogic || nd.ID == x.ID || hasDuplicateFanins(nd) {
			continue
		}
		posA := faninPos(nd, pair.a.node)
		posB := faninPos(nd, pair.b.node)
		if posA < 0 || posB < 0 {
			continue
		}
		// Does any cube contain both literals with the right phases?
		hit := false
		for _, c := range nd.Cover.Cubes {
			if c[posA] == phaseLit(pair.a.neg) && c[posB] == phaseLit(pair.b.neg) {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		substitutePair(net, nd, posA, posB, pair, x.ID)
		rewrote = true
	}
	if !rewrote {
		// No consumer (can happen when duplicate-fanin nodes were the only
		// holders): undo the helper node.
		net.Delete(x.ID)
		return false
	}
	return true
}

func phaseLit(neg bool) logic.Lit {
	if neg {
		return logic.LitNeg
	}
	return logic.LitPos
}

func faninPos(nd *logic.Node, f logic.NodeID) int {
	for i, g := range nd.Fanins {
		if g == f {
			return i
		}
	}
	return -1
}

// substitutePair rewrites nd's cubes: occurrences of the pair become a
// positive literal of x (appended as a new fanin).
func substitutePair(net *logic.Network, nd *logic.Node, posA, posB int, pair pairKey, x logic.NodeID) {
	old := nd.Cover
	width := old.NumInputs + 1
	out := logic.NewSOP(width)
	for _, c := range old.Cubes {
		nc := make(logic.Cube, width)
		copy(nc, c)
		if c[posA] == phaseLit(pair.a.neg) && c[posB] == phaseLit(pair.b.neg) {
			nc[posA] = logic.LitDC
			nc[posB] = logic.LitDC
			nc[width-1] = logic.LitPos
		}
		out.AddCube(nc)
	}
	// Attach x as the new last fanin.
	nd.Fanins = append(nd.Fanins, x)
	net.AttachFanout(x, nd.ID)
	nd.Cover = out
	pruneUnusedFanins(net, nd)
}

func freshName(net *logic.Network, prefix string) string {
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s%d", prefix, len(net.Nodes)+i)
		if net.NodeByName(name) == nil {
			return name
		}
	}
}
