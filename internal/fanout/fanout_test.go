package fanout

import (
	"math/rand"
	"testing"

	"lily/internal/geom"
	"lily/internal/library"
	"lily/internal/netlist"
	"lily/internal/timing"
)

// highFanoutNetlist builds one inverter driving n spread-out loads.
func highFanoutNetlist(n int) *netlist.Netlist {
	lib := library.Big()
	nl := &netlist.Netlist{
		Name:    "fan",
		PINames: []string{"a"},
		PIPos:   []geom.Point{{X: 0, Y: 500}},
	}
	drv := nl.AddCell(&netlist.Cell{Name: "drv", Gate: lib.GateByName("inv"),
		Inputs: []netlist.Ref{{IsPI: true, Index: 0}}, Pos: geom.Point{X: 100, Y: 500}})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < n; i++ {
		ci := nl.AddCell(&netlist.Cell{
			Name: "ld" + string(rune('a'+i%26)) + string(rune('0'+i/26)),
			Gate: lib.GateByName("inv"), Inputs: []netlist.Ref{{Index: drv}},
			Pos: geom.Point{X: 200 + rng.Float64()*800, Y: rng.Float64() * 1000},
		})
		nl.POs = append(nl.POs, netlist.PO{
			Name:   "y" + string(rune('a'+i%26)) + string(rune('0'+i/26)),
			Driver: netlist.Ref{Index: ci},
			Pad:    geom.Point{X: 1100, Y: float64(i) * 10},
		})
	}
	return nl
}

func fanoutOf(nl *netlist.Netlist, driver netlist.Ref) int {
	n := 0
	for _, c := range nl.Cells {
		for _, r := range c.Inputs {
			if r == driver {
				n++
			}
		}
	}
	for _, po := range nl.POs {
		if po.Driver == driver {
			n++
		}
	}
	return n
}

func TestFanoutBounded(t *testing.T) {
	lib := library.Big()
	nl := highFanoutNetlist(30)
	opt := DefaultOptions()
	st, err := Optimize(nl, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	if st.NetsBuffered == 0 || st.BuffersInserted == 0 {
		t.Fatalf("nothing buffered: %+v", st)
	}
	// Every driver now has bounded fanout.
	for ci := range nl.Cells {
		if fo := fanoutOf(nl, netlist.Ref{Index: ci}); fo > opt.MaxFanout {
			t.Errorf("cell %s fanout %d > %d", nl.Cells[ci].Name, fo, opt.MaxFanout)
		}
	}
	if fo := fanoutOf(nl, netlist.Ref{IsPI: true, Index: 0}); fo > opt.MaxFanout {
		t.Errorf("PI fanout %d > %d", fo, opt.MaxFanout)
	}
}

func TestFanoutPreservesFunction(t *testing.T) {
	lib := library.Big()
	nl := highFanoutNetlist(25)
	want, err := nl.Eval(map[string]bool{"a": true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Optimize(nl, lib, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	got, err := nl.Eval(map[string]bool{"a": true})
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if want[k] != got[k] {
			t.Fatalf("output %s changed", k)
		}
	}
	// And for a=false.
	want0 := !want["ya0"]
	got0, _ := nl.Eval(map[string]bool{"a": false})
	if got0["ya0"] != want0 {
		t.Error("inverted output wrong after buffering")
	}
}

func TestFanoutImprovesDelay(t *testing.T) {
	lib := library.Big()
	before := highFanoutNetlist(40)
	after := highFanoutNetlist(40)
	if _, err := Optimize(after, lib, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	opt := timing.DefaultOptions()
	rb, err := timing.Analyze(before, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := timing.Analyze(after, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	if ra.MaxDelay >= rb.MaxDelay {
		t.Errorf("buffering did not improve delay: %.2f -> %.2f", rb.MaxDelay, ra.MaxDelay)
	}
}

func TestSmallNetsUntouched(t *testing.T) {
	lib := library.Big()
	nl := highFanoutNetlist(4)
	cellsBefore := len(nl.Cells)
	st, err := Optimize(nl, lib, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.BuffersInserted != 0 || len(nl.Cells) != cellsBefore {
		t.Errorf("small net modified: %+v", st)
	}
}

func TestBadOptionsRejected(t *testing.T) {
	lib := library.Big()
	nl := highFanoutNetlist(10)
	if _, err := Optimize(nl, lib, Options{MaxFanout: 1}); err == nil {
		t.Error("MaxFanout=1 accepted")
	}
}

func TestClusterSinksRespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sinks := make([]sink, 37)
	for i := range sinks {
		sinks[i] = sink{pos: geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}}
	}
	groups := clusterSinks(sinks, 6, 2)
	total := 0
	for _, g := range groups {
		if len(g) > 6 {
			t.Errorf("group size %d > 6", len(g))
		}
		if len(g) < 1 {
			t.Error("empty group")
		}
		total += len(g)
	}
	if total != len(sinks) {
		t.Errorf("groups cover %d of %d sinks", total, len(sinks))
	}
}

func TestClusterSinksSpatial(t *testing.T) {
	// Two far-apart blobs must not be mixed within one group.
	var sinks []sink
	for i := 0; i < 8; i++ {
		sinks = append(sinks, sink{pos: geom.Point{X: float64(i), Y: 0}})
	}
	for i := 0; i < 8; i++ {
		sinks = append(sinks, sink{pos: geom.Point{X: 1000 + float64(i), Y: 0}})
	}
	groups := clusterSinks(sinks, 8, 2)
	for _, g := range groups {
		left, right := false, false
		for _, s := range g {
			if s.pos.X < 500 {
				left = true
			} else {
				right = true
			}
		}
		if left && right {
			t.Errorf("group mixes distant blobs")
		}
	}
}
