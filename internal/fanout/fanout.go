// Package fanout implements the buffer-tree postprocessing pass the paper
// lists as future work (§5: "Currently, Lily does not perform fanout
// optimization ... we could perform a postprocessing pass to derive fanout
// trees"). Nets whose sink count exceeds a threshold are split by a
// spatially clustered buffer tree: sinks are grouped by recursive median
// bipartition of their placed positions, each group is driven by a buffer
// at the group's centroid, and the construction recurses until the root
// driver sees a bounded fanout. Buffers are logic identities, so the
// netlist function is unchanged; the delay benefit comes from dividing the
// capacitive load and shortening each subnet.
package fanout

import (
	"fmt"
	"sort"

	"lily/internal/geom"
	"lily/internal/library"
	"lily/internal/netlist"
)

// Options tunes the pass.
type Options struct {
	// MaxFanout is the largest sink count a driver is left with; nets at
	// or below it are untouched.
	MaxFanout int
	// MinSinksPerBuffer prevents degenerate single-sink buffers.
	MinSinksPerBuffer int
}

// DefaultOptions returns the configuration used by the flow.
func DefaultOptions() Options {
	return Options{MaxFanout: 6, MinSinksPerBuffer: 2}
}

// Stats reports what the pass did.
type Stats struct {
	NetsBuffered    int
	BuffersInserted int
}

// sink is one rewireable consumer: a cell input pin or a primary output.
type sink struct {
	pin *netlist.Ref // points into Cells[i].Inputs[j] or POs[k].Driver
	pos geom.Point
}

// Optimize rewrites high-fanout nets in place and returns statistics. The
// netlist must carry placement positions (run the global placer first for
// position-less netlists).
func Optimize(nl *netlist.Netlist, lib *library.Library, opt Options) (Stats, error) {
	var st Stats
	if opt.MaxFanout < 2 {
		return st, fmt.Errorf("fanout: MaxFanout must be at least 2, got %d", opt.MaxFanout)
	}
	if opt.MinSinksPerBuffer < 1 {
		opt.MinSinksPerBuffer = 1
	}
	if lib.Buf == nil {
		return st, fmt.Errorf("fanout: library has no buffer cell")
	}

	// Snapshot nets before rewiring: collect sink pin addresses per driver.
	type netInfo struct {
		driver netlist.Ref
		sinks  []sink
	}
	var nets []netInfo
	{
		byDriver := make(map[netlist.Ref]*netInfo)
		// Ordered traversal keeps the pass deterministic.
		order := make([]netlist.Ref, 0)
		seen := make(map[netlist.Ref]bool)
		touch := func(r netlist.Ref) *netInfo {
			if !seen[r] {
				seen[r] = true
				order = append(order, r)
				byDriver[r] = &netInfo{driver: r}
			}
			return byDriver[r]
		}
		for ci := range nl.Cells {
			for pi := range nl.Cells[ci].Inputs {
				r := nl.Cells[ci].Inputs[pi]
				ni := touch(r)
				ni.sinks = append(ni.sinks, sink{
					pin: &nl.Cells[ci].Inputs[pi],
					pos: nl.Cells[ci].Pos,
				})
			}
		}
		for k := range nl.POs {
			ni := touch(nl.POs[k].Driver)
			ni.sinks = append(ni.sinks, sink{pin: &nl.POs[k].Driver, pos: nl.POs[k].Pad})
		}
		nets = nets[:0]
		for _, r := range order {
			nets = append(nets, *byDriver[r])
		}
	}

	for _, ni := range nets {
		if len(ni.sinks) <= opt.MaxFanout {
			continue
		}
		n := buildTree(nl, lib, ni.driver, ni.sinks, opt, 0)
		if n > 0 {
			st.NetsBuffered++
			st.BuffersInserted += n
		}
	}
	if err := nl.Check(); err != nil {
		return st, fmt.Errorf("fanout: produced broken netlist: %w", err)
	}
	return st, nil
}

// buildTree groups sinks spatially, inserts one buffer per group, and
// recurses while the driver's direct fanout still exceeds the bound.
// Returns the number of buffers inserted.
func buildTree(nl *netlist.Netlist, lib *library.Library, driver netlist.Ref, sinks []sink, opt Options, depth int) int {
	if len(sinks) <= opt.MaxFanout || depth > 8 {
		for _, s := range sinks {
			*s.pin = driver
		}
		return 0
	}
	groups := clusterSinks(sinks, opt.MaxFanout, opt.MinSinksPerBuffer)
	if len(groups) <= 1 {
		for _, s := range sinks {
			*s.pin = driver
		}
		return 0
	}
	inserted := 0
	upper := make([]sink, 0, len(groups))
	for _, g := range groups {
		pts := make([]geom.Point, len(g))
		for i, s := range g {
			pts[i] = s.pos
		}
		ci := nl.AddCell(&netlist.Cell{
			Name:   fmt.Sprintf("fbuf%d", len(nl.Cells)),
			Gate:   lib.Buf,
			Inputs: []netlist.Ref{driver}, // rewired by the recursion
			Pos:    geom.Centroid(pts),
		})
		ref := netlist.Ref{Index: ci}
		for _, s := range g {
			*s.pin = ref
		}
		inserted++
		upper = append(upper, sink{pin: &nl.Cells[ci].Inputs[0], pos: nl.Cells[ci].Pos})
	}
	return inserted + buildTree(nl, lib, driver, upper, opt, depth+1)
}

// clusterSinks splits sinks into spatial groups of at most maxPer by
// recursive alternating median bipartition.
func clusterSinks(sinks []sink, maxPer, minPer int) [][]sink {
	work := append([]sink(nil), sinks...)
	var out [][]sink
	var split func(s []sink, byX bool)
	split = func(s []sink, byX bool) {
		if len(s) <= maxPer {
			if len(s) > 0 {
				out = append(out, s)
			}
			return
		}
		if byX {
			sort.SliceStable(s, func(a, b int) bool { return s[a].pos.X < s[b].pos.X })
		} else {
			sort.SliceStable(s, func(a, b int) bool { return s[a].pos.Y < s[b].pos.Y })
		}
		mid := len(s) / 2
		if mid < minPer {
			mid = minPer
		}
		if len(s)-mid < minPer {
			mid = len(s) - minPer
		}
		split(s[:mid], !byX)
		split(s[mid:], !byX)
	}
	split(work, true)
	return out
}
