package engine

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lily"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func shutdown(t *testing.T, e *Engine) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// fakeOutcome is what fake runners return.
func fakeOutcome(name string) *Outcome {
	return &Outcome{Result: &lily.FlowResult{Circuit: name, Gates: 1}}
}

func TestRealFlowWithSVG(t *testing.T) {
	e := New(Config{Workers: 2})
	defer shutdown(t, e)
	out, err := e.Run(context.Background(), Request{
		Benchmark: "misex1",
		Options:   lily.FlowOptions{Mapper: lily.MapperLily, Objective: lily.ObjectiveArea},
		RenderSVG: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.Result == nil || out.Result.Circuit != "misex1" || out.Result.Gates == 0 {
		t.Fatalf("bad result: %+v", out.Result)
	}
	if !strings.Contains(string(out.SVG), "<svg") {
		t.Fatalf("SVG output missing <svg element (%d bytes)", len(out.SVG))
	}
}

func TestCacheHitOnRepeatSubmission(t *testing.T) {
	var runs atomic.Int64
	e := New(Config{Workers: 2, Run: func(ctx context.Context, c *lily.Circuit, req Request) (*Outcome, error) {
		runs.Add(1)
		return fakeOutcome(req.Benchmark), nil
	}})
	defer shutdown(t, e)

	req := Request{Benchmark: "misex1"}
	ctx := context.Background()
	j1, err := e.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	if _, err := j1.Wait(ctx); err != nil {
		t.Fatalf("wait 1: %v", err)
	}
	j2, err := e.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	out, err := j2.Wait(ctx)
	if err != nil {
		t.Fatalf("wait 2: %v", err)
	}
	if out.Result.Circuit != "misex1" {
		t.Fatalf("bad cached result: %+v", out.Result)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("runner invoked %d times, want 1 (cache hit)", got)
	}
	if !j2.Status().CacheHit {
		t.Fatalf("second job not marked as cache hit: %+v", j2.Status())
	}
	st := e.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("stats hits/misses = %d/%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
	if j1.Key() != j2.Key() {
		t.Fatalf("identical requests got different keys: %s vs %s", j1.Key(), j2.Key())
	}
}

func TestSingleflightDedupesInflightRequests(t *testing.T) {
	gate := make(chan struct{})
	var runs atomic.Int64
	e := New(Config{Workers: 2, Run: func(ctx context.Context, c *lily.Circuit, req Request) (*Outcome, error) {
		runs.Add(1)
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return fakeOutcome(req.Benchmark), nil
	}})
	defer shutdown(t, e)

	ctx := context.Background()
	req := Request{Benchmark: "b9"}
	j1, err := e.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	j2, err := e.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	// Both jobs must be picked up (one executing, one dedup-waiting)
	// before the gate opens, or this would just be a cache hit.
	waitFor(t, "dedup registered", func() bool { return e.Stats().Deduped == 1 })
	close(gate)

	for _, j := range []*Job{j1, j2} {
		out, err := j.Wait(ctx)
		if err != nil {
			t.Fatalf("wait %s: %v", j.ID(), err)
		}
		if out.Result.Circuit != "b9" {
			t.Fatalf("job %s: bad result %+v", j.ID(), out.Result)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("runner invoked %d times, want 1 (singleflight)", got)
	}
	if !j2.Status().Deduped && !j1.Status().Deduped {
		t.Fatalf("neither job marked deduped")
	}
}

func TestCancellationMidJob(t *testing.T) {
	started := make(chan struct{})
	e := New(Config{Workers: 1, Run: func(ctx context.Context, c *lily.Circuit, req Request) (*Outcome, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	defer shutdown(t, e)

	j, err := e.Submit(context.Background(), Request{Benchmark: "misex1"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started
	j.Cancel()
	if _, err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("wait error = %v, want context.Canceled", err)
	}
	if st := j.Status(); st.State != "canceled" {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	if st := e.Stats(); st.Canceled != 1 {
		t.Fatalf("stats.Canceled = %d, want 1", st.Canceled)
	}
}

func TestCancelRealFlowMidJob(t *testing.T) {
	// End-to-end: a real Lily mapping run on a mid-size circuit must stop
	// promptly when its context is cancelled (the cone loop and placement
	// iterations poll ctx).
	e := New(Config{Workers: 1})
	defer shutdown(t, e)

	ctx, cancel := context.WithCancel(context.Background())
	j, err := e.Submit(ctx, Request{
		Benchmark: "C5315",
		Options:   lily.FlowOptions{Mapper: lily.MapperLily},
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitFor(t, "job running", func() bool { return j.Status().State == "running" })
	cancel()
	if _, err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("wait error = %v, want context.Canceled", err)
	}
}

func TestPerJobTimeout(t *testing.T) {
	e := New(Config{Workers: 1, Run: func(ctx context.Context, c *lily.Circuit, req Request) (*Outcome, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	defer shutdown(t, e)

	j, err := e.Submit(context.Background(), Request{Benchmark: "misex1", Timeout: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := j.Wait(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wait error = %v, want context.DeadlineExceeded", err)
	}
	if st := j.Status(); st.State != "canceled" {
		t.Fatalf("state = %s, want canceled", st.State)
	}
}

func TestPanicContainment(t *testing.T) {
	e := New(Config{Workers: 1, Run: func(ctx context.Context, c *lily.Circuit, req Request) (*Outcome, error) {
		if req.Benchmark == "misex1" {
			panic("kaboom")
		}
		return fakeOutcome(req.Benchmark), nil
	}})
	defer shutdown(t, e)

	ctx := context.Background()
	if _, err := e.Run(ctx, Request{Benchmark: "misex1"}); err == nil ||
		!strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panicking job error = %v, want panic failure", err)
	}
	// The pool survives: the same worker executes the next job.
	out, err := e.Run(ctx, Request{Benchmark: "b9"})
	if err != nil {
		t.Fatalf("run after panic: %v", err)
	}
	if out.Result.Circuit != "b9" {
		t.Fatalf("bad result after panic: %+v", out.Result)
	}
	st := e.Stats()
	if st.Panics != 1 || st.Failed != 1 || st.Completed != 1 {
		t.Fatalf("stats = %+v, want 1 panic, 1 failed, 1 completed", st)
	}
}

func TestShutdownDrainsInFlightJobs(t *testing.T) {
	var runs atomic.Int64
	e := New(Config{Workers: 2, CacheEntries: -1, Run: func(ctx context.Context, c *lily.Circuit, req Request) (*Outcome, error) {
		time.Sleep(20 * time.Millisecond)
		runs.Add(1)
		return fakeOutcome(req.Benchmark), nil
	}})

	ctx := context.Background()
	var jobs []*Job
	names := []string{"misex1", "b9", "C432", "e64", "apex7", "duke2"}
	for _, n := range names {
		j, err := e.Submit(ctx, Request{Benchmark: n})
		if err != nil {
			t.Fatalf("submit %s: %v", n, err)
		}
		jobs = append(jobs, j)
	}
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for _, j := range jobs {
		if st := j.Status(); st.State != "done" {
			t.Fatalf("job %s drained to %s, want done", j.ID(), st.State)
		}
	}
	if got := runs.Load(); got != int64(len(names)) {
		t.Fatalf("%d jobs ran, want %d", got, len(names))
	}
	if _, err := e.Submit(ctx, Request{Benchmark: "misex1"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after shutdown = %v, want ErrClosed", err)
	}
}

func TestExpiredShutdownCancelsJobs(t *testing.T) {
	e := New(Config{Workers: 1, Run: func(ctx context.Context, c *lily.Circuit, req Request) (*Outcome, error) {
		<-ctx.Done() // honours cancellation, never finishes on its own
		return nil, ctx.Err()
	}})
	j, err := e.Submit(context.Background(), Request{Benchmark: "misex1"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitFor(t, "job running", func() bool { return j.Status().State == "running" })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := e.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	if st := j.Status(); st.State != "canceled" {
		t.Fatalf("job state after expired shutdown = %s, want canceled", st.State)
	}
}

func TestLRUEviction(t *testing.T) {
	var runs atomic.Int64
	e := New(Config{Workers: 1, CacheEntries: 1, Run: func(ctx context.Context, c *lily.Circuit, req Request) (*Outcome, error) {
		runs.Add(1)
		return fakeOutcome(req.Benchmark), nil
	}})
	defer shutdown(t, e)

	ctx := context.Background()
	for _, n := range []string{"misex1", "b9", "misex1"} {
		if _, err := e.Run(ctx, Request{Benchmark: n}); err != nil {
			t.Fatalf("run %s: %v", n, err)
		}
	}
	// b9 evicted misex1, so the third run misses again.
	if got := runs.Load(); got != 3 {
		t.Fatalf("runner invoked %d times, want 3 (capacity-1 LRU)", got)
	}
	if st := e.Stats(); st.CacheEntries != 1 {
		t.Fatalf("cache entries = %d, want 1", st.CacheEntries)
	}
}

func TestRequestValidation(t *testing.T) {
	e := New(Config{Workers: 1})
	defer shutdown(t, e)
	ctx := context.Background()

	if _, err := e.Submit(ctx, Request{}); err == nil {
		t.Fatalf("empty request accepted")
	}
	if _, err := e.Submit(ctx, Request{Benchmark: "misex1", BLIF: []byte(".model x\n.end\n")}); err == nil {
		t.Fatalf("ambiguous request accepted")
	}
	if _, err := e.Submit(ctx, Request{Benchmark: "no-such-circuit"}); err == nil {
		t.Fatalf("unknown benchmark accepted")
	}
	if _, ok := e.Job("job-999999"); ok {
		t.Fatalf("lookup of unknown job succeeded")
	}
}

func TestKeyNormalization(t *testing.T) {
	c, err := lily.GenerateBenchmark("misex1")
	if err != nil {
		t.Fatal(err)
	}
	var blif []byte
	{
		var sb strings.Builder
		if err := c.WriteBLIF(&sb); err != nil {
			t.Fatal(err)
		}
		blif = []byte(sb.String())
	}
	base := lily.FlowOptions{Mapper: lily.MapperLily}
	weighted := base
	weighted.WireWeight = 1.0
	if requestKey(blif, base, false, false) != requestKey(blif, weighted, false, false) {
		t.Fatalf("WireWeight 0 and 1.0 should share a cache key")
	}
	reduced := base
	reduced.WireWeight = 0.5
	if requestKey(blif, base, false, false) == requestKey(blif, reduced, false, false) {
		t.Fatalf("different wire weights must not collide")
	}
	if requestKey(blif, base, false, false) == requestKey(blif, base, true, false) {
		t.Fatalf("SVG flag must be part of the key")
	}
	mis := lily.FlowOptions{Mapper: lily.MapperMIS}
	misTuned := mis
	misTuned.ReplaceEvery = 7 // Lily-only knob: ignored by the MIS flow
	if requestKey(blif, mis, false, false) != requestKey(blif, misTuned, false, false) {
		t.Fatalf("Lily-only knobs should normalize away under MIS")
	}
}

func TestJobsOrderedBySubmitSequence(t *testing.T) {
	e := New(Config{Workers: 1, Run: func(ctx context.Context, c *lily.Circuit, req Request) (*Outcome, error) {
		return fakeOutcome(req.Benchmark), nil
	}})
	defer shutdown(t, e)

	// Seed the counter so the IDs cross the six-digit zero-padding
	// boundary: "job-1000000" sorts before "job-999999" as a string, so
	// ordering the listing by ID would misreport the submit order here.
	e.seq.Store(999998)

	ctx := context.Background()
	var want []string
	for i := 0; i < 4; i++ {
		j, err := e.Submit(ctx, Request{Benchmark: "misex1"})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if _, err := j.Wait(ctx); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		want = append(want, j.ID())
	}
	got := e.Jobs()
	if len(got) != len(want) {
		t.Fatalf("Jobs() returned %d statuses, want %d", len(got), len(want))
	}
	for i, st := range got {
		if st.ID != want[i] {
			t.Fatalf("Jobs()[%d].ID = %s, want %s (submit order)", i, st.ID, want[i])
		}
	}
}
