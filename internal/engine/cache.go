package engine

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"lily"
)

// requestKey derives the content-addressed cache key of a job: the SHA-256
// of the circuit's canonical BLIF serialization, the normalized flow
// options, and the output-artifact flags. Two submissions with structurally
// identical circuits and semantically identical options collide on the same
// key, so repeats are served from cache and identical in-flight runs are
// deduped. The same key is the cluster routing digest: rendezvous hashing
// on it sends every copy of a request to the same owner node (see
// internal/cluster), so the format is pinned by TestRequestDigestFormat.
func requestKey(blif []byte, opt lily.FlowOptions, renderSVG, emitBLIF bool) string {
	h := sha256.New()
	h.Write(blif)
	// FlowOptions contains only value-typed fields, so its %+v rendering
	// is deterministic and injective over the normalized option space.
	fmt.Fprintf(h, "\x00opt=%+v\x00svg=%t\x00blif=%t", normalizeOptions(opt), renderSVG, emitBLIF)
	return hex.EncodeToString(h.Sum(nil))
}

// RequestDigest computes the content-addressed digest of a request without
// submitting it: the cache key a job for req would carry (Job.Key,
// Status.Digest). Peers use it to agree on request ownership — every node
// computes the same digest for the same request, so rendezvous hashing
// routes all copies to one owner — and the proxy endpoint recomputes it to
// detect version skew between nodes.
func RequestDigest(req Request) (string, error) {
	_, blif, err := resolveCircuit(req)
	if err != nil {
		return "", err
	}
	return requestKey(blif, req.Options, req.RenderSVG, req.EmitBLIF), nil
}

// normalizeOptions canonicalizes option settings that the pipeline treats
// as equivalent, so the cache does not fragment across spellings of the
// same flow.
func normalizeOptions(opt lily.FlowOptions) lily.FlowOptions {
	if opt.WireWeight == 0 {
		opt.WireWeight = 1.0 // runPipeline's default
	}
	if !opt.FanoutOptimize {
		opt.MaxFanout = 0 // ignored unless fanout optimization is on
	} else if opt.MaxFanout < 2 {
		opt.MaxFanout = 6 // fanout.DefaultOptions default
	}
	if opt.Mapper != lily.MapperLily {
		// Lily-only knobs are ignored by the MIS flow.
		opt.AutoTune = false
		opt.WireWeight = 1.0
		opt.Update = 0
		opt.Estimator = 0
		opt.DisableConeOrdering = false
		opt.ReplaceEvery = 0
		opt.NaivePads = false
		opt.TwoPassDelay = false
	}
	if opt.Mapper != lily.MapperMIS {
		opt.TreeMode = false // MIS-only knob
	}
	// Parallelism is a throughput knob: the wave-parallel mapper and the
	// placement reduction trees are bit-identical at every setting
	// (DESIGN.md §13), so it must not fragment the cache or reshuffle
	// cluster ownership.
	opt.Parallelism = 0
	// MultilevelThreshold is semantically significant (placements differ
	// across thresholds), but every negative value spells "disabled".
	if opt.MultilevelThreshold < 0 {
		opt.MultilevelThreshold = -1
	}
	return opt
}

// lruCache is a size-bounded LRU map from request key to Outcome.
// A nil *lruCache is a valid always-miss cache.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	out *Outcome
}

// newLRU returns an LRU cache holding up to capacity outcomes, or nil
// (cache disabled) when capacity <= 0.
func newLRU(capacity int) *lruCache {
	if capacity <= 0 {
		return nil
	}
	return &lruCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *lruCache) get(key string) (*Outcome, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).out, true
}

func (c *lruCache) add(key string, out *Outcome) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).out = out
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, out: out})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// PeekCache looks up a finished outcome by request digest. It is the
// cluster cache-peek surface (GET /v1/cache/{digest} in internal/server):
// a peer that owns a digest answers from here without spending a worker.
// The lookup counts as a use for LRU recency.
func (e *Engine) PeekCache(digest string) (*Outcome, bool) {
	return e.cache.get(digest)
}

func (c *lruCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
