package engine

// Job-lifecycle tests: bounded terminal-job retention (eviction order,
// age GC, explicit Remove, soak), load-shed admission control, and the
// singleflight leader-only-cancellation semantics.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"lily"
)

// instantRunner completes every job immediately.
func instantRunner(ctx context.Context, c *lily.Circuit, req Request) (*Outcome, error) {
	return fakeOutcome(req.Benchmark), nil
}

func TestNegativeTimeoutRejectedAtSubmit(t *testing.T) {
	e := New(Config{Workers: 1, Run: instantRunner})
	defer shutdown(t, e)
	_, err := e.Submit(context.Background(), Request{Benchmark: "misex1", Timeout: -time.Second})
	if err == nil {
		t.Fatalf("negative timeout accepted")
	}
	if st := e.Stats(); st.Submitted != 0 || st.Jobs != 0 {
		t.Fatalf("rejected submission left traces: %+v", st)
	}
}

func TestRegistryEvictsOldestTerminalFirst(t *testing.T) {
	e := New(Config{Workers: 1, MaxRetainedJobs: 3, CacheEntries: -1, Run: instantRunner})
	defer shutdown(t, e)

	ctx := context.Background()
	names := []string{"misex1", "b9", "C432", "e64", "apex7", "duke2"}
	var ids []string
	for _, n := range names {
		j, err := e.Submit(ctx, Request{Benchmark: n})
		if err != nil {
			t.Fatalf("submit %s: %v", n, err)
		}
		if _, err := j.Wait(ctx); err != nil {
			t.Fatalf("wait %s: %v", n, err)
		}
		ids = append(ids, j.ID())
	}

	got := e.Jobs()
	if len(got) != 3 {
		t.Fatalf("registry holds %d jobs, want 3", len(got))
	}
	for i, st := range got {
		if want := ids[3+i]; st.ID != want {
			t.Fatalf("retained[%d] = %s, want %s (oldest-first eviction)", i, st.ID, want)
		}
	}
	for _, id := range ids[:3] {
		if _, ok := e.Job(id); ok {
			t.Fatalf("evicted job %s still resolvable", id)
		}
		if !e.Forgotten(id) {
			t.Fatalf("evicted job %s not reported Forgotten", id)
		}
	}
	for _, id := range ids[3:] {
		if e.Forgotten(id) {
			t.Fatalf("retained job %s reported Forgotten", id)
		}
	}
	// IDs the engine never issued are unknown, not forgotten.
	for _, id := range []string{"job-999999", "nonsense", "job-abc", "job-000000"} {
		if e.Forgotten(id) {
			t.Fatalf("never-issued id %q reported Forgotten", id)
		}
	}
	if st := e.Stats(); st.Evicted != 3 {
		t.Fatalf("stats.Evicted = %d, want 3", st.Evicted)
	}
}

func TestRemoveTerminalJob(t *testing.T) {
	gate := make(chan struct{})
	e := New(Config{Workers: 1, CacheEntries: -1, Run: func(ctx context.Context, c *lily.Circuit, req Request) (*Outcome, error) {
		if req.Benchmark == "b9" {
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return fakeOutcome(req.Benchmark), nil
	}})
	defer shutdown(t, e)

	ctx := context.Background()
	j1, err := e.Submit(ctx, Request{Benchmark: "misex1"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := j1.Wait(ctx); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if err := e.Remove(j1.ID()); err != nil {
		t.Fatalf("Remove(terminal) = %v", err)
	}
	if _, ok := e.Job(j1.ID()); ok {
		t.Fatalf("removed job still resolvable")
	}
	if !e.Forgotten(j1.ID()) {
		t.Fatalf("removed job not Forgotten")
	}
	if err := e.Remove(j1.ID()); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("second Remove = %v, want ErrUnknownJob", err)
	}

	j2, err := e.Submit(ctx, Request{Benchmark: "b9"})
	if err != nil {
		t.Fatalf("submit blocked job: %v", err)
	}
	waitFor(t, "job running", func() bool { return j2.Status().State == "running" })
	if err := e.Remove(j2.ID()); !errors.Is(err, ErrJobActive) {
		t.Fatalf("Remove(running) = %v, want ErrJobActive", err)
	}
	close(gate)
	if _, err := j2.Wait(ctx); err != nil {
		t.Fatalf("wait after gate: %v", err)
	}
	if err := e.Remove(j2.ID()); err != nil {
		t.Fatalf("Remove after finish = %v", err)
	}
}

func TestRetainForGCDropsOldTerminalJobs(t *testing.T) {
	e := New(Config{Workers: 1, RetainFor: 20 * time.Millisecond, CacheEntries: -1, Run: instantRunner})
	defer shutdown(t, e)

	ctx := context.Background()
	j, err := e.Submit(ctx, Request{Benchmark: "misex1"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := j.Wait(ctx); err != nil {
		t.Fatalf("wait: %v", err)
	}
	waitFor(t, "age GC to drop the job", func() bool { return len(e.Jobs()) == 0 })
	if !e.Forgotten(j.ID()) {
		t.Fatalf("aged-out job %s not Forgotten", j.ID())
	}
	if st := e.Stats(); st.Evicted == 0 {
		t.Fatalf("age GC did not count an eviction: %+v", st)
	}
}

func TestLoadShedReturnsErrQueueFull(t *testing.T) {
	gate := make(chan struct{})
	e := New(Config{Workers: 1, QueueDepth: 1, LoadShed: true, CacheEntries: -1,
		Run: func(ctx context.Context, c *lily.Circuit, req Request) (*Outcome, error) {
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return fakeOutcome(req.Benchmark), nil
		}})
	defer shutdown(t, e)
	defer close(gate)

	ctx := context.Background()
	j1, err := e.Submit(ctx, Request{Benchmark: "misex1"})
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	waitFor(t, "worker busy", func() bool { return j1.Status().State == "running" })
	if _, err := e.Submit(ctx, Request{Benchmark: "b9"}); err != nil {
		t.Fatalf("submit 2 (fills queue): %v", err)
	}
	if _, err := e.Submit(ctx, Request{Benchmark: "C432"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit 3 on full queue = %v, want ErrQueueFull", err)
	}
	st := e.Stats()
	if st.Shed != 1 {
		t.Fatalf("stats.Shed = %d, want 1", st.Shed)
	}
	if st.Jobs != 2 {
		t.Fatalf("shed job leaked into the registry: %d jobs, want 2", st.Jobs)
	}
	if st.QueueLen != 1 || st.QueueCap != 1 {
		t.Fatalf("queue len/cap = %d/%d, want 1/1", st.QueueLen, st.QueueCap)
	}
}

// TestFollowerRerunsAfterLeaderTimeout is the singleflight-correctness
// regression: a deduped follower whose own context is live must not
// inherit the leader's deadline-exceeded verdict — it re-executes and
// produces a real Outcome.
func TestFollowerRerunsAfterLeaderTimeout(t *testing.T) {
	var calls atomic.Int64
	e := New(Config{Workers: 2, CacheEntries: -1, Run: func(ctx context.Context, c *lily.Circuit, req Request) (*Outcome, error) {
		if calls.Add(1) == 1 {
			<-ctx.Done() // leader: hang until its per-job timeout fires
			return nil, ctx.Err()
		}
		return fakeOutcome(req.Benchmark), nil
	}})
	defer shutdown(t, e)

	ctx := context.Background()
	// The timeout must outlast follower submission + dedup registration
	// (waited on below) but stay short enough to keep the test quick.
	leader, err := e.Submit(ctx, Request{Benchmark: "misex1", Timeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatalf("submit leader: %v", err)
	}
	waitFor(t, "leader running", func() bool { return leader.Status().State == "running" })
	follower, err := e.Submit(ctx, Request{Benchmark: "misex1"})
	if err != nil {
		t.Fatalf("submit follower: %v", err)
	}
	// The follower must be dedup-waiting on the leader before the
	// leader's timeout fires, or there is nothing to regress.
	waitFor(t, "follower deduped", func() bool { return e.Stats().Deduped == 1 })

	if _, err := leader.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("leader error = %v, want DeadlineExceeded", err)
	}
	out, err := follower.Wait(ctx)
	if err != nil {
		t.Fatalf("follower inherited the leader's cancellation: %v", err)
	}
	if out == nil || out.Result == nil || out.Result.Circuit != "misex1" {
		t.Fatalf("follower got no real outcome: %+v", out)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("runner invoked %d times, want 2 (leader + re-run)", got)
	}
	st := e.Stats()
	if st.DedupReruns != 1 {
		t.Fatalf("stats.DedupReruns = %d, want 1", st.DedupReruns)
	}
	if st.Canceled != 1 || st.Completed != 1 {
		t.Fatalf("stats canceled/completed = %d/%d, want 1/1", st.Canceled, st.Completed)
	}
}

// TestFollowerStaysCanceledWithDeadContext pins the other half of the
// semantics: when the follower's own context is also cancelled, it must
// finish canceled without looping into a re-run.
func TestFollowerStaysCanceledWithDeadContext(t *testing.T) {
	var calls atomic.Int64
	e := New(Config{Workers: 2, CacheEntries: -1, Run: func(ctx context.Context, c *lily.Circuit, req Request) (*Outcome, error) {
		calls.Add(1)
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	defer shutdown(t, e)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	followerCtx, cancelFollower := context.WithCancel(context.Background())
	defer cancelFollower()

	leader, err := e.Submit(leaderCtx, Request{Benchmark: "misex1"})
	if err != nil {
		t.Fatalf("submit leader: %v", err)
	}
	waitFor(t, "leader running", func() bool { return leader.Status().State == "running" })
	follower, err := e.Submit(followerCtx, Request{Benchmark: "misex1"})
	if err != nil {
		t.Fatalf("submit follower: %v", err)
	}
	waitFor(t, "follower deduped", func() bool { return e.Stats().Deduped == 1 })

	cancelFollower()
	cancelLeader()
	if _, err := follower.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("follower error = %v, want context.Canceled", err)
	}
	if _, err := leader.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("leader error = %v, want context.Canceled", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("runner invoked %d times, want 1 (no re-run for a dead follower)", got)
	}
	if st := e.Stats(); st.DedupReruns != 0 {
		t.Fatalf("stats.DedupReruns = %d, want 0", st.DedupReruns)
	}
}

// TestSoakRegistryStaysBounded submits 10× MaxRetainedJobs jobs and
// asserts the registry never accumulates more than the bound — the
// memory-leak regression behind this whole layer.
func TestSoakRegistryStaysBounded(t *testing.T) {
	const max = 25
	const n = 10 * max
	e := New(Config{Workers: 4, MaxRetainedJobs: max, CacheEntries: -1, Run: instantRunner})
	defer shutdown(t, e)

	ctx := context.Background()
	names := []string{"misex1", "b9", "C432", "e64", "apex7", "duke2", "misex3"}
	var ids []string
	for i := 0; i < n; i++ {
		req := Request{Benchmark: names[i%len(names)]}
		req.Options.WireWeight = 0.25 + float64(i)/n // vary the cache key
		j, err := e.Submit(ctx, req)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if _, err := j.Wait(ctx); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		ids = append(ids, j.ID())
		if live := e.Stats().Jobs; live > max+4 { // + workers in flight
			t.Fatalf("registry grew to %d jobs mid-soak (bound %d)", live, max)
		}
	}

	jobs := e.Jobs()
	if len(jobs) > max {
		t.Fatalf("registry holds %d jobs after soak, want <= %d", len(jobs), max)
	}
	for _, st := range jobs {
		if st.State != "done" {
			t.Fatalf("retained job %s in state %s, want done", st.ID, st.State)
		}
	}
	st := e.Stats()
	if want := uint64(n - max); st.Evicted != want {
		t.Fatalf("stats.Evicted = %d, want %d", st.Evicted, want)
	}
	for _, id := range ids[:n-max] {
		if _, ok := e.Job(id); ok {
			t.Fatalf("evicted job %s still resolvable", id)
		}
		if !e.Forgotten(id) {
			t.Fatalf("evicted job %s not Forgotten", id)
		}
	}
}
