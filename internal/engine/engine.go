// Package engine is the concurrent flow engine: a worker-pool job
// scheduler that executes FlowOptions-parameterized pipeline runs
// concurrently with context cancellation and per-job timeouts, panic
// containment (a crashing flow fails its job, not the process), a
// content-addressed result cache (SHA-256 of canonical circuit BLIF +
// normalized options) with LRU eviction, and singleflight deduplication of
// identical in-flight requests. It is the substrate under cmd/lilyd (the
// network-facing mapping service) and cmd/tables (suite fan-out).
package engine

import (
	"bytes"
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lily"
	"lily/internal/obs"
)

// ErrClosed is returned by Submit after Shutdown has begun.
var ErrClosed = errors.New("engine: closed")

// ErrQueueFull is returned by Submit in load-shed mode (Config.LoadShed)
// when the submit queue has no free slot. Callers should back off and
// retry; the HTTP layer maps it to 429 Too Many Requests.
var ErrQueueFull = errors.New("engine: queue full")

// RunFunc executes one resolved request. The default implementation runs
// the lily pipeline; tests inject fakes to exercise scheduling behavior.
type RunFunc func(ctx context.Context, c *lily.Circuit, req Request) (*Outcome, error)

// RemoteFunc consults the cluster tier for a job this node does not own.
// It is called by the singleflight leader after a local cache miss, with
// the job's digest (Job.Key) and its resolved circuit. Three outcomes:
//
//   - (out, nil): the request was served remotely — from the owner's
//     cache or by proxied compute. The engine caches it locally and
//     finishes the job without running the pipeline.
//   - (nil, nil): this node owns the digest (or chose not to go remote);
//     compute locally.
//   - (nil, err): the remote tier failed (owner down, shedding, slow).
//     The engine degrades to local compute — a broken cluster never
//     fails a job, it only costs the work.
//
// The hook is skipped for requests marked LocalOnly (proxied-in work).
type RemoteFunc func(ctx context.Context, digest string, c *lily.Circuit, req Request) (*Outcome, error)

// Config tunes an Engine.
type Config struct {
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth is the submit-queue capacity; 0 means 4×Workers. Submit
	// blocks (honouring its ctx) when the queue is full.
	QueueDepth int
	// CacheEntries bounds the LRU result cache; 0 means 128, negative
	// disables caching.
	CacheEntries int
	// DefaultTimeout bounds each job's run time unless the request
	// overrides it; 0 means no timeout.
	DefaultTimeout time.Duration
	// MaxRetainedJobs bounds how many terminal jobs the registry keeps
	// for later status/result fetches; the oldest-finished are evicted
	// first. 0 means DefaultMaxRetainedJobs, negative means unlimited.
	MaxRetainedJobs int
	// RetainFor additionally garbage-collects terminal jobs older than
	// this from the registry (a background goroutine stopped by
	// Shutdown); 0 disables age-based GC.
	RetainFor time.Duration
	// LoadShed makes Submit non-blocking: when the queue is full it
	// returns ErrQueueFull immediately instead of waiting for a slot, so
	// a service front end can shed load (429) rather than hang
	// connections.
	LoadShed bool
	// Metrics is the registry the engine registers its instruments on;
	// nil means the engine creates a private one (reachable via
	// Registry). Sharing a registry across engines is allowed —
	// registration is idempotent.
	Metrics *obs.Registry
	// Trace records a phase-span tree per job (served by lilyd at
	// /v1/jobs/{id}/trace, retained and evicted with the job). Off by
	// default: library users keep the zero-allocation no-op path.
	Trace bool
	// OnTerminal, when set, is invoked once per job as it reaches a
	// terminal state via a worker (the lilyd job-log middleware). It
	// runs on the worker goroutine; keep it fast.
	OnTerminal func(Status)
	// Parallelism is the intra-job worker default applied to requests
	// that leave FlowOptions.Parallelism unset (0). The knob is pure
	// throughput — results are bit-identical at every setting and the
	// request digest excludes it — so the server can raise it fleet-wide
	// without invalidating caches. 0 leaves requests untouched
	// (sequential mapping).
	Parallelism int
	// Run overrides the job executor (tests); nil runs the lily pipeline.
	Run RunFunc
	// Remote, when set, is consulted before local compute for jobs whose
	// digest another cluster node owns (see RemoteFunc). cmd/lilyd wires
	// internal/cluster's Remote here; nil keeps the engine single-node.
	Remote RemoteFunc
}

// Stats is a point-in-time snapshot of engine counters. QueueLen is the
// current submit-queue occupancy; QueueCap its capacity (the former
// "queue_depth" field conflated the two).
type Stats struct {
	Workers      int           `json:"workers"`
	QueueLen     int           `json:"queue_len"`
	QueueCap     int           `json:"queue_cap"`
	Running      int           `json:"running"`
	Jobs         int           `json:"jobs"`
	Submitted    uint64        `json:"submitted"`
	Completed    uint64        `json:"completed"`
	Failed       uint64        `json:"failed"`
	Canceled     uint64        `json:"canceled"`
	Shed         uint64        `json:"shed"`
	Evicted      uint64        `json:"evicted"`
	CacheHits    uint64        `json:"cache_hits"`
	CacheMisses  uint64        `json:"cache_misses"`
	RemoteHits   uint64        `json:"cache_remote_hits"`
	Deduped      uint64        `json:"deduped"`
	DedupReruns  uint64        `json:"dedup_reruns"`
	Panics       uint64        `json:"panics"`
	CacheEntries int           `json:"cache_entries"`
	QueueWait    time.Duration `json:"queue_wait_total_ns"`
	RunTime      time.Duration `json:"run_time_total_ns"`
}

// flight tracks one in-flight execution for singleflight deduplication.
type flight struct {
	done chan struct{}
	out  *Outcome
	err  error
}

// Engine is a concurrent, cancellable, cache-backed flow scheduler.
type Engine struct {
	cfg   Config
	run   RunFunc
	queue chan *Job
	cache *lruCache

	reg     *obs.Registry
	metrics *engineMetrics
	flow    *obs.FlowMetrics

	mu       sync.Mutex
	byID     map[string]*Job
	retired  *list.List // terminal jobs in finish order (retainedEntry)
	inflight map[string]*flight
	closed   bool
	running  int
	stats    Stats

	closing  chan struct{} // closed when Shutdown begins
	stop     chan struct{} // closed to terminate idle workers
	stopOnce sync.Once
	workerWG sync.WaitGroup // live workers
	jobWG    sync.WaitGroup // unfinished jobs
	seq      atomic.Uint64
}

// New starts an engine with cfg.Workers goroutines ready to execute jobs.
// Call Shutdown to drain and stop it.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	cacheCap := cfg.CacheEntries
	if cacheCap == 0 {
		cacheCap = 128
	}
	if cfg.MaxRetainedJobs == 0 {
		cfg.MaxRetainedJobs = DefaultMaxRetainedJobs
	}
	e := &Engine{
		cfg:      cfg,
		run:      cfg.Run,
		queue:    make(chan *Job, cfg.QueueDepth),
		cache:    newLRU(cacheCap),
		byID:     make(map[string]*Job),
		retired:  list.New(),
		inflight: make(map[string]*flight),
		closing:  make(chan struct{}),
		stop:     make(chan struct{}),
	}
	if e.run == nil {
		e.run = runPipeline
	}
	e.reg = cfg.Metrics
	if e.reg == nil {
		e.reg = obs.NewRegistry()
	}
	e.metrics = e.registerMetrics(e.reg)
	e.flow = obs.RegisterFlowMetrics(e.reg)
	e.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	if cfg.RetainFor > 0 {
		e.workerWG.Add(1)
		go e.gcLoop(gcInterval(cfg.RetainFor))
	}
	return e
}

// runPipeline is the production executor: the full lily flow, optionally
// rendering the layout SVG or capturing the mapped BLIF byte stream.
func runPipeline(ctx context.Context, c *lily.Circuit, req Request) (*Outcome, error) {
	if req.RenderSVG {
		var buf bytes.Buffer
		res, err := lily.RenderLayoutSVGContext(ctx, c, req.Options, &buf, lily.SVGOptions{DrawNets: true})
		if err != nil {
			return nil, err
		}
		return &Outcome{Result: res, SVG: buf.Bytes()}, nil
	}
	if req.EmitBLIF {
		var buf bytes.Buffer
		res, err := lily.WriteMappedBLIFContext(ctx, c, req.Options, &buf)
		if err != nil {
			return nil, err
		}
		return &Outcome{Result: res, MappedBLIF: buf.Bytes()}, nil
	}
	res, err := lily.RunFlowContext(ctx, c, req.Options)
	if err != nil {
		return nil, err
	}
	return &Outcome{Result: res}, nil
}

// resolveCircuit materializes the request's circuit and its canonical BLIF
// serialization (the content-addressed half of the cache key).
func resolveCircuit(req Request) (*lily.Circuit, []byte, error) {
	set := 0
	if req.Benchmark != "" {
		set++
	}
	if len(req.BLIF) > 0 {
		set++
	}
	if req.Circuit != nil {
		set++
	}
	if set != 1 {
		return nil, nil, fmt.Errorf("engine: request must set exactly one of Benchmark, BLIF, or Circuit (got %d)", set)
	}
	var c *lily.Circuit
	var err error
	switch {
	case req.Benchmark != "":
		c, err = lily.GenerateBenchmark(req.Benchmark)
	case len(req.BLIF) > 0:
		c, err = lily.LoadBLIF(bytes.NewReader(req.BLIF))
	default:
		c = req.Circuit.Clone()
	}
	if err != nil {
		return nil, nil, err
	}
	var buf bytes.Buffer
	if err := c.WriteBLIF(&buf); err != nil {
		return nil, nil, err
	}
	return c, buf.Bytes(), nil
}

// Submit validates and enqueues a job. The returned Job is already
// registered for lookup; ctx governs both the enqueue wait and, as the
// parent of the job's own context, the run itself. In load-shed mode
// (Config.LoadShed) a full queue fails fast with ErrQueueFull instead of
// blocking.
func (e *Engine) Submit(ctx context.Context, req Request) (*Job, error) {
	if req.Timeout < 0 {
		// A negative duration would silently disable the timeout in
		// runGuarded; reject it at the boundary instead.
		return nil, fmt.Errorf("engine: negative timeout %v", req.Timeout)
	}
	if req.RenderSVG && req.EmitBLIF {
		// Each artifact flag selects a different pipeline entry point;
		// honouring both would mean running the flow twice per job.
		return nil, errors.New("engine: RenderSVG and EmitBLIF are mutually exclusive")
	}
	circ, blif, err := resolveCircuit(req)
	if err != nil {
		return nil, err
	}
	jctx, cancel := context.WithCancel(ctx)
	seq := e.seq.Add(1)
	j := &Job{
		id:        fmt.Sprintf("job-%06d", seq),
		seq:       seq,
		key:       requestKey(blif, req.Options, req.RenderSVG, req.EmitBLIF),
		req:       req,
		circuit:   circ,
		ctx:       jctx,
		cancel:    cancel,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	if e.cfg.Trace {
		j.tracer = obs.NewTracer()
		// Span ends feed the per-phase duration histogram; the filter in
		// ObservePhase keeps the label set fixed.
		j.tracer.OnSpanEnd = e.flow.ObservePhase
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		cancel()
		return nil, ErrClosed
	}
	e.jobWG.Add(1)
	e.byID[j.id] = j
	e.stats.Submitted++
	e.metrics.submitted.Inc()
	e.metrics.jobsByTarget.With(req.Options.Target.String()).Inc()
	e.mu.Unlock()

	if e.cfg.LoadShed {
		select {
		case e.queue <- j:
			return j, nil
		default:
			e.abandon(j, ErrQueueFull)
			return nil, ErrQueueFull
		}
	}
	select {
	case e.queue <- j:
		return j, nil
	case <-ctx.Done():
		e.abandon(j, ctx.Err())
		return nil, ctx.Err()
	case <-e.closing:
		e.abandon(j, ErrClosed)
		return nil, ErrClosed
	}
}

// abandon finalizes a job that never reached the queue: Submit is
// returning an error instead of the handle, so the ID must not linger in
// the registry. The job is finished as canceled, counted (shed jobs on
// their own counter), and dropped.
func (e *Engine) abandon(j *Job, err error) {
	j.finish(StateCanceled, nil, err)
	e.mu.Lock()
	e.countTerminalLocked(StateCanceled)
	if errors.Is(err, ErrQueueFull) {
		e.stats.Shed++
		e.metrics.shed.Inc()
	}
	delete(e.byID, j.id)
	e.mu.Unlock()
	e.jobWG.Done()
}

// Registry returns the metrics registry the engine (and the flows it
// runs) report into; lilyd serves it at /metrics.
func (e *Engine) Registry() *obs.Registry { return e.reg }

// Run is the synchronous convenience wrapper: submit and wait.
func (e *Engine) Run(ctx context.Context, req Request) (*Outcome, error) {
	j, err := e.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	return j.Wait(ctx)
}

// Job returns a submitted job by ID.
func (e *Engine) Job(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.byID[id]
	return j, ok
}

// Jobs snapshots the status of every known job, ordered by submit
// sequence. (Sorting by the ID string would misorder once the zero-padded
// counter overflows six digits: "job-1000000" < "job-999999" lexically.)
func (e *Engine) Jobs() []Status {
	e.mu.Lock()
	jobs := make([]*Job, 0, len(e.byID))
	for _, j := range e.byID {
		jobs = append(jobs, j)
	}
	e.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq < jobs[k].seq })
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	s := e.stats
	s.Running = e.running
	s.Jobs = len(e.byID)
	e.mu.Unlock()
	s.Workers = e.cfg.Workers
	s.QueueLen = len(e.queue)
	s.QueueCap = cap(e.queue)
	s.CacheEntries = e.cache.len()
	return s
}

// Shutdown stops accepting jobs and drains the in-flight ones. If ctx
// expires first, all unfinished jobs are cancelled; Shutdown still waits
// for the workers to observe the cancellation before returning ctx's error.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.closing)
	}
	e.mu.Unlock()

	drained := make(chan struct{})
	//lint:stopped joined below: both select arms wait on <-drained, and jobWG.Wait returns once cancelAll unblocks the workers
	go func() {
		e.jobWG.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		e.cancelAll()
		<-drained // workers finish cancelled jobs promptly
	}
	e.stopOnce.Do(func() { close(e.stop) })
	e.workerWG.Wait()
	return err
}

// cancelAll cancels every non-terminal job.
func (e *Engine) cancelAll() {
	e.mu.Lock()
	jobs := make([]*Job, 0, len(e.byID))
	for _, j := range e.byID {
		jobs = append(jobs, j)
	}
	e.mu.Unlock()
	for _, j := range jobs {
		j.Cancel()
	}
}

func (e *Engine) worker() {
	defer e.workerWG.Done()
	for {
		select {
		case j := <-e.queue:
			e.execute(j)
		case <-e.stop:
			// Drain any stragglers left behind by an expired Shutdown.
			select {
			case j := <-e.queue:
				e.execute(j)
			default:
				return
			}
		}
	}
}

// execute runs one job to a terminal state: cancellation check, cache
// lookup, singleflight deduplication, then the guarded pipeline run.
func (e *Engine) execute(j *Job) {
	defer e.jobWG.Done()
	queueWait := j.start(time.Now())
	e.metrics.queueWait.Observe(queueWait.Seconds())
	e.mu.Lock()
	e.running++
	e.stats.QueueWait += queueWait
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.running--
		e.mu.Unlock()
	}()

	if err := j.ctx.Err(); err != nil {
		e.finishJob(j, StateCanceled, nil, err)
		return
	}

	if out, ok := e.cache.get(j.key); ok {
		j.markCacheHit()
		e.markTrivialTrace(j, "cache_hit")
		e.mu.Lock()
		e.stats.CacheHits++
		e.mu.Unlock()
		e.metrics.cacheHits.Inc()
		e.finishJob(j, StateDone, out, nil)
		return
	}
	e.mu.Lock()
	e.stats.CacheMisses++
	e.mu.Unlock()
	e.metrics.cacheMisses.Inc()

	// Singleflight. A follower piggybacks on the in-flight leader for its
	// key — but a leader that dies of its *own* cancellation or timeout
	// produced a verdict about that job's deadline, not about this
	// request. A follower whose context is still live must not inherit
	// StateCanceled; it loops back and either joins a newer leader or
	// takes over and executes itself.
	deduped := false
	for {
		if deduped {
			// A concurrent leader may have completed and populated the
			// cache between rounds.
			if out, ok := e.cache.get(j.key); ok {
				j.markCacheHit()
				e.mu.Lock()
				e.stats.CacheHits++
				e.mu.Unlock()
				e.finishJob(j, StateDone, out, nil)
				return
			}
		}
		e.mu.Lock()
		f, ok := e.inflight[j.key]
		if ok {
			if !deduped {
				deduped = true
				e.stats.Deduped++
				e.metrics.deduped.Inc()
			}
			e.mu.Unlock()
			j.markDeduped()
			select {
			case <-f.done:
				if f.err == nil {
					e.markTrivialTrace(j, "deduped")
					e.finishJob(j, StateDone, f.out, nil)
					return
				}
				if classify(f.err) == StateCanceled && j.ctx.Err() == nil {
					continue // leader-only cancellation: re-execute
				}
				e.finishJob(j, classify(f.err), nil, f.err)
				return
			case <-j.ctx.Done():
				e.finishJob(j, StateCanceled, nil, j.ctx.Err())
				return
			}
		}
		f = &flight{done: make(chan struct{})}
		e.inflight[j.key] = f
		if deduped {
			e.stats.DedupReruns++
			e.metrics.dedupReruns.Inc()
		}
		e.mu.Unlock()

		out, err := e.runRemoteOrLocal(j)
		f.out, f.err = out, err
		e.mu.Lock()
		delete(e.inflight, j.key)
		e.mu.Unlock()
		close(f.done)

		if err != nil {
			e.finishJob(j, classify(err), nil, err)
			return
		}
		e.cache.add(j.key, out)
		e.finishJob(j, StateDone, out, nil)
		return
	}
}

// classify maps an execution error to a terminal state.
func classify(err error) State {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return StateCanceled
	}
	return StateFailed
}

// markTrivialTrace records a one-span trace for a job that never ran the
// pipeline (cache hit or dedup follower), so its /trace endpoint still
// explains where the result came from.
func (e *Engine) markTrivialTrace(j *Job, how string) {
	if j.tracer == nil {
		return
	}
	_, root := j.tracer.StartRoot(context.Background(), "job")
	root.SetStr("id", j.id)
	root.SetStr("source", how)
	root.End()
}

// runRemoteOrLocal is the singleflight leader's executor: consult the
// cluster tier first (owner's cache or proxied compute), fall through to
// the guarded local pipeline. Remote failures are deliberately invisible
// to the job — the cluster only ever adds capacity, never a failure mode;
// determinism makes the substitution safe (same digest, same bytes).
func (e *Engine) runRemoteOrLocal(j *Job) (*Outcome, error) {
	if e.cfg.Remote != nil && !j.req.LocalOnly {
		if out, err := e.cfg.Remote(j.ctx, j.key, j.circuit, j.req); err == nil && out != nil {
			j.markRemoteHit()
			e.markTrivialTrace(j, "remote")
			e.mu.Lock()
			e.stats.RemoteHits++
			e.mu.Unlock()
			e.metrics.remoteHits.Inc()
			return out, nil
		}
	}
	return e.runGuarded(j)
}

// runGuarded executes the job body under its timeout with panic recovery:
// a panicking flow fails its own job and increments the panic counter, but
// the worker and the process survive. The context handed to the pipeline
// carries the engine's flow metrics and, when tracing is on, the job's
// tracer with a root "job" span.
func (e *Engine) runGuarded(j *Job) (out *Outcome, err error) {
	ctx := obs.ContextWithFlowMetrics(j.ctx, e.flow)
	timeout := j.req.Timeout
	if timeout == 0 {
		timeout = e.cfg.DefaultTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var root *obs.Span
	if j.tracer != nil {
		ctx, root = j.tracer.StartRoot(ctx, "job")
		root.SetStr("id", j.id)
		if j.circuit != nil {
			root.SetStr("circuit", j.circuit.Name())
		}
		defer root.End()
	}
	defer func() {
		if r := recover(); r != nil {
			e.mu.Lock()
			e.stats.Panics++
			e.mu.Unlock()
			e.metrics.panics.Inc()
			// Capture the stack at the fault: the recover site says
			// nothing about where the pipeline crashed.
			stack := debug.Stack()
			out, err = nil, fmt.Errorf("engine: job %s panicked: %v\n%s", j.id, r, stack)
			root.SetStr("stack", string(stack))
			root.SetError(err)
		}
	}()
	req := j.req
	if req.Options.Parallelism == 0 {
		// Apply the engine-wide intra-job parallelism default on a local
		// copy: the job's stored request (and its digest) stay as
		// submitted, since the knob does not change the output.
		req.Options.Parallelism = e.cfg.Parallelism
	}
	out, err = e.run(ctx, j.circuit, req)
	root.SetError(err)
	return out, err
}

// finishJob moves a job to its terminal state, updates the counters, and
// enrolls it in the bounded retention queue in one critical section.
func (e *Engine) finishJob(j *Job, state State, out *Outcome, err error) {
	runTime, first := j.finish(state, out, err)
	if !first {
		return // already terminal; counters were updated by that finish
	}
	e.metrics.jobDuration.Observe(runTime.Seconds())
	e.mu.Lock()
	e.stats.RunTime += runTime
	e.countTerminalLocked(state)
	e.retireLocked(j, time.Now())
	e.mu.Unlock()
	if e.cfg.OnTerminal != nil {
		e.cfg.OnTerminal(j.Status())
	}
}

// countTerminalLocked bumps the terminal-state counter; requires e.mu.
func (e *Engine) countTerminalLocked(state State) {
	e.metrics.jobsTotal.With(state.String()).Inc()
	switch state {
	case StateDone:
		e.stats.Completed++
	case StateFailed:
		e.stats.Failed++
	case StateCanceled:
		e.stats.Canceled++
	}
}
