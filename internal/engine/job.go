package engine

import (
	"container/list"
	"context"
	"sync"
	"time"

	"lily"
	"lily/internal/obs"
)

// State is the lifecycle state of a job.
type State int32

const (
	// StateQueued means the job is waiting for a worker.
	StateQueued State = iota
	// StateRunning means a worker is executing (or dedup-waiting on) the job.
	StateRunning
	// StateDone means the job finished with a result.
	StateDone
	// StateFailed means the job finished with an error.
	StateFailed
	// StateCanceled means the job was cancelled or timed out.
	StateCanceled
)

func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCanceled:
		return "canceled"
	default:
		return "unknown"
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Request describes one mapping job. Exactly one of Benchmark, BLIF, or
// Circuit selects the input circuit.
type Request struct {
	// Benchmark names a built-in synthetic benchmark (see
	// lily.BenchmarkNames).
	Benchmark string
	// BLIF holds a combinational BLIF source to map.
	BLIF []byte
	// Circuit is an in-memory circuit; it is cloned at submission so the
	// caller's copy is never shared with a worker goroutine.
	Circuit *lily.Circuit
	// Options parameterizes the flow.
	Options lily.FlowOptions
	// RenderSVG additionally renders the finished layout as an SVG image
	// into Outcome.SVG. Part of the cache key.
	RenderSVG bool
	// EmitBLIF captures the mapped, placed netlist as SIS-style BLIF into
	// Outcome.MappedBLIF (the byte stream the golden harness hashes), via
	// the single-flow pipeline — like WriteMappedBLIF, AutoTune's
	// portfolio does not apply. Part of the cache key. Mutually exclusive
	// with RenderSVG.
	EmitBLIF bool
	// LocalOnly forces local compute: the engine's Remote hook is skipped.
	// Set on requests a peer proxied here so routing never chains — the
	// owner either computes or sheds, it does not forward. Not part of the
	// cache key (the result is the same bytes either way).
	LocalOnly bool
	// Timeout bounds this job's run time, overriding the engine's
	// DefaultTimeout; 0 means use the default.
	Timeout time.Duration
}

// Outcome is the product of a completed job. Outcomes may be shared between
// jobs through the result cache and must be treated as immutable.
type Outcome struct {
	Result *lily.FlowResult
	// SVG is the rendered layout when the request asked for it.
	SVG []byte
	// MappedBLIF is the mapped, placed netlist when the request set
	// EmitBLIF — the deterministic byte stream whose SHA-256 the golden
	// harness (and the cluster smoke test) pins.
	MappedBLIF []byte
}

// Job is a handle on a submitted request.
type Job struct {
	id      string
	seq     uint64 // engine-wide submit sequence; orders job listings
	key     string
	req     Request
	circuit *lily.Circuit

	ctx    context.Context
	cancel context.CancelFunc

	// tracer records the job's phase-span tree when the engine runs with
	// tracing enabled; nil otherwise. It lives and dies with the job:
	// retained while the job is in the registry, dropped with it on
	// eviction, age GC, or DELETE.
	tracer *obs.Tracer

	// retireEl is the job's slot in the engine's terminal-retention
	// queue; nil while the job is non-terminal (or after it has been
	// dropped). Guarded by Engine.mu, not j.mu.
	retireEl *list.Element

	mu        sync.Mutex
	state     State
	outcome   *Outcome
	err       error
	cacheHit  bool
	deduped   bool
	remoteHit bool
	submitted time.Time
	started   time.Time
	finished  time.Time
	done      chan struct{}
}

// ID returns the engine-assigned job identifier.
func (j *Job) ID() string { return j.id }

// Key returns the content-addressed cache key of the request.
func (j *Job) Key() string { return j.key }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel cancels the job; a queued job is dropped when a worker picks it
// up, a running job is interrupted at its next context checkpoint.
func (j *Job) Cancel() { j.cancel() }

// Wait blocks until the job terminates or ctx is done, returning the
// outcome or the job's (or ctx's) error.
func (j *Job) Wait(ctx context.Context) (*Outcome, error) {
	select {
	case <-j.done:
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.outcome, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Outcome returns the result of a terminal job (nil if unfinished/failed).
func (j *Job) Outcome() *Outcome {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.outcome
}

// Traced reports whether the engine recorded a trace for this job.
func (j *Job) Traced() bool { return j.tracer != nil }

// Trace snapshots the job's span tree. Safe while the job is still
// running (live spans appear with duration -1); nil when the engine ran
// without tracing.
func (j *Job) Trace() []*obs.SpanNode { return j.tracer.Tree() }

// Status is a point-in-time snapshot of a job's lifecycle and metrics.
type Status struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Digest is the content-addressed request digest (SHA-256 of the
	// canonical BLIF + normalized options + artifact flags): the cache
	// key, the singleflight key, and the cluster routing key. Clients and
	// peers correlate work on it — two jobs with equal digests have
	// byte-identical outcomes.
	Digest      string        `json:"digest"`
	Benchmark   string        `json:"benchmark,omitempty"`
	Circuit     string        `json:"circuit,omitempty"`
	CacheHit    bool          `json:"cache_hit,omitempty"`
	Deduped     bool          `json:"deduped,omitempty"`
	RemoteHit   bool          `json:"remote_hit,omitempty"`
	SubmittedAt time.Time     `json:"submitted_at"`
	StartedAt   time.Time     `json:"started_at"`
	FinishedAt  time.Time     `json:"finished_at"`
	QueueWait   time.Duration `json:"queue_wait_ns"`
	RunTime     time.Duration `json:"run_time_ns"`
	Error       string        `json:"error,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:          j.id,
		State:       j.state.String(),
		Digest:      j.key,
		Benchmark:   j.req.Benchmark,
		CacheHit:    j.cacheHit,
		Deduped:     j.deduped,
		RemoteHit:   j.remoteHit,
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
	}
	if j.circuit != nil {
		st.Circuit = j.circuit.Name()
	}
	if !j.started.IsZero() {
		st.QueueWait = j.started.Sub(j.submitted)
		if !j.finished.IsZero() {
			st.RunTime = j.finished.Sub(j.started)
		}
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// start transitions the job to StateRunning and records the queue wait.
func (j *Job) start(now time.Time) time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateRunning
	j.started = now
	return now.Sub(j.submitted)
}

// finish moves the job to a terminal state exactly once, returning the
// run time (zero if the job never started) and whether this call was the
// transitioning one (false if the job was already terminal).
func (j *Job) finish(state State, out *Outcome, err error) (time.Duration, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return 0, false
	}
	j.state = state
	j.outcome = out
	j.err = err
	j.finished = time.Now()
	close(j.done)
	j.cancel() // release the context's resources
	if j.started.IsZero() {
		return 0, true
	}
	return j.finished.Sub(j.started), true
}

func (j *Job) markCacheHit() {
	j.mu.Lock()
	j.cacheHit = true
	j.mu.Unlock()
}

func (j *Job) markDeduped() {
	j.mu.Lock()
	j.deduped = true
	j.mu.Unlock()
}

func (j *Job) markRemoteHit() {
	j.mu.Lock()
	j.remoteHit = true
	j.mu.Unlock()
}
