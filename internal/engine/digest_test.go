package engine

import (
	"context"
	"testing"

	"lily"
)

// digestFixtureBLIF is a frozen circuit source: the pinned digest below
// depends on its canonical serialization.
const digestFixtureBLIF = `.model pinned
.inputs a b c
.outputs y
.names a b t
11 1
.names t c y
10 1
.end
`

// TestRequestDigestFormat pins the exported request-digest format. The
// digest is the cluster's routing and cache key: every node must derive
// the same value for the same request, and a change to the key
// derivation silently invalidates every cache tier and reshuffles job
// ownership. If this test fails you have changed the wire format —
// that's allowed, but it must be deliberate: update the constant AND
// bump the cluster protocol note in DESIGN.md §12.
func TestRequestDigestFormat(t *testing.T) {
	req := Request{
		BLIF: []byte(digestFixtureBLIF),
		Options: lily.FlowOptions{
			Mapper:    lily.MapperLily,
			Objective: lily.ObjectiveArea,
		},
	}
	got, err := RequestDigest(req)
	if err != nil {
		t.Fatalf("RequestDigest: %v", err)
	}
	if len(got) != 64 {
		t.Fatalf("digest %q is %d chars, want 64 (hex SHA-256)", got, len(got))
	}
	for _, r := range got {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			t.Fatalf("digest %q contains non-lowercase-hex rune %q", got, r)
		}
	}
	const want = "e9d23b9792de208c914f5208103fb1661521b52d3ea07a2985794c4795403b78"
	if got != want {
		t.Fatalf("digest format changed:\n got %s\nwant %s", got, want)
	}
}

// TestRequestDigestSensitivity checks which request fields are (and are
// not) part of the digest. Artifact selection changes the outcome, so it
// must change the key; LocalOnly is pure routing and must not.
func TestRequestDigestSensitivity(t *testing.T) {
	base := Request{
		BLIF:    []byte(digestFixtureBLIF),
		Options: lily.FlowOptions{Mapper: lily.MapperLily, Objective: lily.ObjectiveArea},
	}
	d0, err := RequestDigest(base)
	if err != nil {
		t.Fatalf("RequestDigest: %v", err)
	}

	svg := base
	svg.RenderSVG = true
	if d, _ := RequestDigest(svg); d == d0 {
		t.Fatalf("RenderSVG did not change digest")
	}
	emit := base
	emit.EmitBLIF = true
	if d, _ := RequestDigest(emit); d == d0 {
		t.Fatalf("EmitBLIF did not change digest")
	}
	if ds, _ := RequestDigest(svg); func() string { d, _ := RequestDigest(emit); return d }() == ds {
		t.Fatalf("SVG and EmitBLIF digests collide")
	}
	local := base
	local.LocalOnly = true
	if d, _ := RequestDigest(local); d != d0 {
		t.Fatalf("LocalOnly changed digest: routing flags must not affect the cache key")
	}
	par := base
	par.Options.Parallelism = 8
	if d, _ := RequestDigest(par); d != d0 {
		t.Fatalf("Parallelism changed digest: the output is bit-identical at any setting, so the throughput knob must not fragment the cache")
	}
	ml := base
	ml.Options.MultilevelThreshold = 5000
	if d, _ := RequestDigest(ml); d == d0 {
		t.Fatalf("MultilevelThreshold did not change digest: placements differ across thresholds")
	}
	mlOff := base
	mlOff.Options.MultilevelThreshold = -1
	dOff, _ := RequestDigest(mlOff)
	if dOff == d0 {
		t.Fatalf("disabling multilevel did not change digest")
	}
	mlOff2 := base
	mlOff2.Options.MultilevelThreshold = -7
	if d, _ := RequestDigest(mlOff2); d != dOff {
		t.Fatalf("negative MultilevelThreshold spellings fragment the cache: every negative value means disabled")
	}
	delay := base
	delay.Options.Objective = lily.ObjectiveDelay
	if d, _ := RequestDigest(delay); d == d0 {
		t.Fatalf("objective did not change digest")
	}
	lut := base
	lut.Options.Target = lily.TargetLUT4
	if d, _ := RequestDigest(lut); d == d0 {
		t.Fatalf("target did not change digest: lut4 and asic results must not share a cache entry")
	}
	lut6 := base
	lut6.Options.Target = lily.TargetLUT6
	d4, _ := RequestDigest(lut)
	if d, _ := RequestDigest(lut6); d == d4 {
		t.Fatalf("lut4 and lut6 digests collide")
	}
}

// TestStatusExposesDigest checks the satellite contract: a submitted
// job's Status carries the same digest RequestDigest computes, so
// clients can correlate jobs with cluster ownership and cache entries.
func TestStatusExposesDigest(t *testing.T) {
	e := New(Config{Workers: 1, Run: func(ctx context.Context, c *lily.Circuit, req Request) (*Outcome, error) {
		return fakeOutcome(req.Benchmark), nil
	}})
	defer shutdown(t, e)

	req := Request{Benchmark: "misex1"}
	want, err := RequestDigest(req)
	if err != nil {
		t.Fatalf("RequestDigest: %v", err)
	}
	j, err := e.Submit(context.Background(), req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st := j.Status(); st.Digest != want {
		t.Fatalf("Status.Digest = %s, want %s", st.Digest, want)
	}
}
