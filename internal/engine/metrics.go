package engine

// Engine-level observability: every counter the engine already tracks in
// Stats is mirrored into an obs.Registry so lilyd's /metrics endpoint
// can expose it as Prometheus text. The registry also carries the
// flow-level instruments (per-phase durations, cones, wire-cost
// evaluations) that the pipeline updates through the context installed
// in runGuarded.

import (
	"lily/internal/obs"
)

// Engine metric names.
const (
	metricJobsTotal     = "lily_jobs_total"
	metricJobsByTarget  = "lily_jobs_by_target_total"
	metricSubmitted     = "lily_jobs_submitted_total"
	metricQueueWait     = "lily_queue_wait_seconds"
	metricCacheHits     = "lily_cache_hits_total"
	metricCacheMisses   = "lily_cache_misses_total"
	metricRemoteHits    = "lily_cache_remote_hits_total"
	metricDeduped       = "lily_dedup_total"
	metricDedupReruns   = "lily_dedup_reruns_total"
	metricShed          = "lily_shed_total"
	metricEvicted       = "lily_evicted_total"
	metricPanics        = "lily_panics_total"
	metricJobsRunning   = "lily_jobs_running"
	metricQueueLen      = "lily_queue_len"
	metricQueueCapacity = "lily_queue_capacity"
	metricJobsRetained  = "lily_jobs_retained"
	metricCacheEntries  = "lily_cache_entries"
)

// engineMetrics bundles the engine's registered instruments.
type engineMetrics struct {
	jobDuration  *obs.Histogram  // terminal jobs, run time
	queueWait    *obs.Histogram  // submit -> worker pickup
	jobsTotal    *obs.CounterVec // by terminal state
	jobsByTarget *obs.CounterVec // accepted jobs, by technology target
	submitted    *obs.Counter
	cacheHits    *obs.Counter
	cacheMisses  *obs.Counter
	remoteHits   *obs.Counter
	deduped      *obs.Counter
	dedupReruns  *obs.Counter
	shed         *obs.Counter
	evicted      *obs.Counter
	panics       *obs.Counter
}

// registerMetrics installs the engine's instruments on r. Gauges are
// sampled at scrape time from the live engine, so they need no
// update-site plumbing.
func (e *Engine) registerMetrics(r *obs.Registry) *engineMetrics {
	m := &engineMetrics{
		jobDuration: r.Histogram(obs.MetricJobDuration,
			"Run time of terminal jobs (queue wait excluded).", obs.DefBuckets),
		queueWait: r.Histogram(metricQueueWait,
			"Time jobs spent queued before a worker picked them up.", obs.DefBuckets),
		jobsTotal: r.CounterVec(metricJobsTotal,
			"Jobs reaching a terminal state, by state.", "state"),
		jobsByTarget: r.CounterVec(metricJobsByTarget,
			"Jobs accepted by Submit, by technology target (asic/lut4/lut6).", "target"),
		submitted:   r.Counter(metricSubmitted, "Jobs accepted by Submit."),
		cacheHits:   r.Counter(metricCacheHits, "Jobs answered from the local result cache."),
		cacheMisses: r.Counter(metricCacheMisses, "Jobs that missed the local result cache."),
		remoteHits: r.Counter(metricRemoteHits,
			"Jobs served by a cluster peer (owner cache hit or proxied compute)."),
		deduped: r.Counter(metricDeduped, "Jobs that piggybacked on an in-flight leader."),
		dedupReruns: r.Counter(metricDedupReruns,
			"Dedup followers that re-executed after a leader-only cancellation."),
		shed:    r.Counter(metricShed, "Submissions shed with ErrQueueFull (load-shed mode)."),
		evicted: r.Counter(metricEvicted, "Terminal jobs evicted from the bounded registry."),
		panics:  r.Counter(metricPanics, "Pipeline panics contained by runGuarded."),
	}
	r.GaugeFunc(metricJobsRunning, "Jobs currently executing on workers.", func() float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return float64(e.running)
	})
	r.GaugeFunc(metricQueueLen, "Submit-queue occupancy.", func() float64 {
		return float64(len(e.queue))
	})
	r.GaugeFunc(metricQueueCapacity, "Submit-queue capacity.", func() float64 {
		return float64(cap(e.queue))
	})
	r.GaugeFunc(metricJobsRetained, "Jobs present in the registry (active + retained).", func() float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return float64(len(e.byID))
	})
	r.GaugeFunc(metricCacheEntries, "Entries in the result cache.", func() float64 {
		return float64(e.cache.len())
	})
	return m
}
