package engine

// Terminal-job retention. The engine keeps finished jobs in its registry
// so clients can fetch status/results after the fact, but boundedly: at
// most Config.MaxRetainedJobs terminal jobs are retained (oldest-finished
// evicted first), and jobs older than Config.RetainFor are garbage
// collected by a background goroutine that Shutdown stops. Evicted or
// explicitly Remove()d IDs remain recognizable through Forgotten, so the
// HTTP layer can answer 410 Gone instead of 404 for IDs it once issued.

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// DefaultMaxRetainedJobs bounds the registry when Config.MaxRetainedJobs
// is zero.
const DefaultMaxRetainedJobs = 1024

var (
	// ErrUnknownJob is returned by Remove for IDs not in the registry.
	ErrUnknownJob = errors.New("engine: unknown job")
	// ErrJobActive is returned by Remove for queued/running jobs; cancel
	// the job and wait for it to terminate first.
	ErrJobActive = errors.New("engine: job is not terminal")
)

// retainedEntry is one terminal job in the retention queue, stamped with
// its retirement time so age-based GC never needs the job's own lock.
type retainedEntry struct {
	j  *Job
	at time.Time
}

// retireLocked enrolls a freshly terminal job in the retention queue and
// evicts oldest-first past the retention bound; requires e.mu.
func (e *Engine) retireLocked(j *Job, now time.Time) {
	if _, ok := e.byID[j.id]; !ok {
		return // already dropped (abandoned submission)
	}
	j.retireEl = e.retired.PushBack(retainedEntry{j: j, at: now})
	e.evictExcessLocked()
}

// evictExcessLocked drops the oldest retained terminal jobs until at most
// cfg.MaxRetainedJobs remain (negative = unlimited); requires e.mu.
func (e *Engine) evictExcessLocked() {
	max := e.cfg.MaxRetainedJobs
	if max < 0 {
		return
	}
	for e.retired.Len() > max {
		e.dropRetainedLocked(e.retired.Front().Value.(retainedEntry).j)
		e.stats.Evicted++
		e.metrics.evicted.Inc()
	}
}

// dropRetainedLocked removes a retained terminal job from both the
// registry map and the retention queue; requires e.mu.
func (e *Engine) dropRetainedLocked(j *Job) {
	delete(e.byID, j.id)
	if j.retireEl != nil {
		e.retired.Remove(j.retireEl)
		j.retireEl = nil
	}
}

// gcRetained drops retained terminal jobs that finished before cutoff.
// It is called periodically by the retention goroutine (and from tests).
func (e *Engine) gcRetained(cutoff time.Time) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for el := e.retired.Front(); el != nil; el = e.retired.Front() {
		ent := el.Value.(retainedEntry)
		if !ent.at.Before(cutoff) {
			break // queue is ordered by retirement time
		}
		e.dropRetainedLocked(ent.j)
		e.stats.Evicted++
		e.metrics.evicted.Inc()
		n++
	}
	return n
}

// gcLoop ticks age-based retention GC until Shutdown closes e.stop.
func (e *Engine) gcLoop(interval time.Duration) {
	defer e.workerWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			e.gcRetained(time.Now().Add(-e.cfg.RetainFor))
		case <-e.stop:
			return
		}
	}
}

// gcInterval derives the retention-GC tick period from the retention
// window: frequent enough that expiry is timely, bounded so an hours-long
// window doesn't mean an hours-long wait for the first sweep.
func gcInterval(retainFor time.Duration) time.Duration {
	iv := retainFor / 4
	if iv < 5*time.Millisecond {
		iv = 5 * time.Millisecond
	}
	if iv > time.Minute {
		iv = time.Minute
	}
	return iv
}

// Remove deletes a terminal job from the registry so its memory can be
// reclaimed before eviction or age GC would get to it. Queued or running
// jobs are refused with ErrJobActive (cancel and wait first); unknown IDs
// return ErrUnknownJob.
func (e *Engine) Remove(id string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.byID[id]
	if !ok {
		return ErrUnknownJob
	}
	if j.retireEl == nil {
		// Only terminal jobs are enrolled in the retention queue, so a
		// registered job without an entry is still queued or running.
		return ErrJobActive
	}
	e.dropRetainedLocked(j)
	return nil
}

// Forgotten reports whether id names a job this engine once issued that
// is no longer retained (evicted, removed, or abandoned at submission).
// It is the 404-vs-410 distinction for the HTTP layer and needs no
// per-ID tombstone state: IDs are dense ("job-%06d" over a monotone
// sequence), so any well-formed ID at or below the current sequence that
// is absent from the registry must have been dropped.
func (e *Engine) Forgotten(id string) bool {
	num, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return false
	}
	seq, err := strconv.ParseUint(num, 10, 64)
	if err != nil || fmt.Sprintf("job-%06d", seq) != id {
		return false // not an ID this engine would have issued
	}
	if seq == 0 || seq > e.seq.Load() {
		return false // never issued (yet)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	_, present := e.byID[id]
	return !present
}
