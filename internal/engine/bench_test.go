package engine

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"lily"
)

// BenchmarkEngineSuite measures the Table 1 workload (both mappers over
// the full benchmark suite, area mode) executed through the engine with a
// single worker (the historical sequential path) versus a full worker
// pool, so the fan-out speedup is tracked. A fresh engine per iteration
// keeps the result cache cold — every job does real mapping work.
//
//	go test ./internal/engine/ -bench EngineSuite -benchtime 1x
func BenchmarkEngineSuite(b *testing.B) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		name := "sequential"
		if workers > 1 {
			name = fmt.Sprintf("workers-%d", workers)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runSuite(b, workers)
			}
		})
		if workers == 1 && runtime.GOMAXPROCS(0) == 1 {
			break // pool run would duplicate the sequential one
		}
	}
}

func runSuite(b *testing.B, workers int) {
	b.Helper()
	eng := New(Config{Workers: workers, CacheEntries: -1})
	defer func() {
		if err := eng.Shutdown(context.Background()); err != nil {
			b.Fatal(err)
		}
	}()
	ctx := context.Background()
	var jobs []*Job
	for _, name := range lily.BenchmarkNames() {
		for _, mapper := range []lily.Mapper{lily.MapperMIS, lily.MapperLily} {
			j, err := eng.Submit(ctx, Request{
				Benchmark: name,
				Options:   lily.FlowOptions{Mapper: mapper, Objective: lily.ObjectiveArea},
			})
			if err != nil {
				b.Fatal(err)
			}
			jobs = append(jobs, j)
		}
	}
	for _, j := range jobs {
		if _, err := j.Wait(ctx); err != nil {
			b.Fatalf("job %s: %v", j.ID(), err)
		}
	}
}
