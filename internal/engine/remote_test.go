package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"lily"
)

// countingRun returns a RunFunc that counts local executions.
func countingRun(runs *atomic.Int64) RunFunc {
	return func(ctx context.Context, c *lily.Circuit, req Request) (*Outcome, error) {
		runs.Add(1)
		return fakeOutcome(req.Benchmark), nil
	}
}

// TestRemoteHitSkipsLocalCompute: when the Remote hook serves an
// outcome, the local runner must not fire, the job is flagged as a
// remote hit, and the outcome lands in the local cache so the next
// identical request is a plain local hit without another remote call.
func TestRemoteHitSkipsLocalCompute(t *testing.T) {
	var runs, remotes atomic.Int64
	remoteOut := &Outcome{Result: &lily.FlowResult{Circuit: "remote", Gates: 42}}
	e := New(Config{
		Workers: 1,
		Run:     countingRun(&runs),
		Remote: func(ctx context.Context, digest string, c *lily.Circuit, req Request) (*Outcome, error) {
			remotes.Add(1)
			if digest == "" || c == nil {
				t.Errorf("remote hook got digest=%q circuit=%v", digest, c)
			}
			return remoteOut, nil
		},
	})
	defer shutdown(t, e)

	ctx := context.Background()
	req := Request{Benchmark: "misex1"}
	j, err := e.Submit(ctx, req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	out, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if out.Result.Gates != 42 {
		t.Fatalf("got local outcome, want remote: %+v", out.Result)
	}
	if runs.Load() != 0 {
		t.Fatalf("local runner fired %d times despite remote hit", runs.Load())
	}
	if st := j.Status(); !st.RemoteHit {
		t.Fatalf("job not marked remote_hit: %+v", st)
	}
	if st := e.Stats(); st.RemoteHits != 1 {
		t.Fatalf("Stats.RemoteHits = %d, want 1", st.RemoteHits)
	}

	// Second identical request: local cache, no second remote call.
	j2, err := e.Submit(ctx, req)
	if err != nil {
		t.Fatalf("Submit 2: %v", err)
	}
	if _, err := j2.Wait(ctx); err != nil {
		t.Fatalf("Wait 2: %v", err)
	}
	if !j2.Status().CacheHit {
		t.Fatalf("second job should be a local cache hit: %+v", j2.Status())
	}
	if remotes.Load() != 1 {
		t.Fatalf("remote hook called %d times, want 1", remotes.Load())
	}
}

// TestRemoteErrorFallsBackToLocal: a failing remote tier must degrade to
// local compute — the job succeeds and is not a remote hit. The cluster
// invariant "remote trouble never fails a job" lives here.
func TestRemoteErrorFallsBackToLocal(t *testing.T) {
	var runs atomic.Int64
	e := New(Config{
		Workers: 1,
		Run:     countingRun(&runs),
		Remote: func(ctx context.Context, digest string, c *lily.Circuit, req Request) (*Outcome, error) {
			return nil, errors.New("owner unreachable")
		},
	})
	defer shutdown(t, e)

	j, err := e.Submit(context.Background(), Request{Benchmark: "misex1"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	out, err := j.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v (remote failure must not fail the job)", err)
	}
	if out.Result == nil || runs.Load() != 1 {
		t.Fatalf("want exactly one local run, got %d (result %+v)", runs.Load(), out.Result)
	}
	if st := j.Status(); st.RemoteHit {
		t.Fatalf("fallback job wrongly marked remote_hit")
	}
	if st := e.Stats(); st.RemoteHits != 0 {
		t.Fatalf("Stats.RemoteHits = %d, want 0", st.RemoteHits)
	}
}

// TestRemoteDeclineComputesLocally: (nil, nil) is the hook's "this node
// owns the digest" answer — compute locally, no error, no remote hit.
func TestRemoteDeclineComputesLocally(t *testing.T) {
	var runs atomic.Int64
	e := New(Config{
		Workers: 1,
		Run:     countingRun(&runs),
		Remote: func(ctx context.Context, digest string, c *lily.Circuit, req Request) (*Outcome, error) {
			return nil, nil
		},
	})
	defer shutdown(t, e)

	j, err := e.Submit(context.Background(), Request{Benchmark: "misex1"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if runs.Load() != 1 || j.Status().RemoteHit {
		t.Fatalf("decline: runs=%d remoteHit=%v, want 1/false", runs.Load(), j.Status().RemoteHit)
	}
}

// TestLocalOnlyBypassesRemote: proxied-in work must never re-forward —
// that's the cluster's routing-loop guard.
func TestLocalOnlyBypassesRemote(t *testing.T) {
	var runs, remotes atomic.Int64
	e := New(Config{
		Workers: 1,
		Run:     countingRun(&runs),
		Remote: func(ctx context.Context, digest string, c *lily.Circuit, req Request) (*Outcome, error) {
			remotes.Add(1)
			return fakeOutcome("never"), nil
		},
	})
	defer shutdown(t, e)

	j, err := e.Submit(context.Background(), Request{Benchmark: "misex1", LocalOnly: true})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if remotes.Load() != 0 {
		t.Fatalf("remote hook consulted %d times for a LocalOnly request", remotes.Load())
	}
	if runs.Load() != 1 {
		t.Fatalf("local runs = %d, want 1", runs.Load())
	}
}

// TestSVGEmitBLIFExclusive pins the submit-time validation.
func TestSVGEmitBLIFExclusive(t *testing.T) {
	e := New(Config{Workers: 1, Run: countingRun(new(atomic.Int64))})
	defer shutdown(t, e)
	_, err := e.Submit(context.Background(), Request{
		Benchmark: "misex1", RenderSVG: true, EmitBLIF: true,
	})
	if err == nil {
		t.Fatalf("Submit accepted RenderSVG+EmitBLIF")
	}
}

// TestEmitBLIFProducesMappedNetlist runs the real pipeline once and
// checks the artifact plumbing end to end: the outcome carries a
// non-empty mapped BLIF and the result is intact.
func TestEmitBLIFProducesMappedNetlist(t *testing.T) {
	e := New(Config{Workers: 1})
	defer shutdown(t, e)
	out, err := e.Run(context.Background(), Request{
		Benchmark: "misex1",
		Options:   lily.FlowOptions{Mapper: lily.MapperLily, Objective: lily.ObjectiveArea},
		EmitBLIF:  true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(out.MappedBLIF) == 0 {
		t.Fatalf("EmitBLIF run produced no mapped netlist")
	}
	if out.Result == nil || out.Result.Gates == 0 {
		t.Fatalf("bad result alongside mapped BLIF: %+v", out.Result)
	}
}
