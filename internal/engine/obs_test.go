package engine

import (
	"context"
	"strings"
	"testing"

	"lily/internal/obs"
)

// spanNames flattens a span forest into a name -> count map.
func spanNames(nodes []*obs.SpanNode, into map[string]int) {
	for _, n := range nodes {
		into[n.Name]++
		spanNames(n.Children, into)
	}
}

// TestJobTraceLifecycle asserts a traced engine records a per-job span
// tree rooted at "job", that a cache-hit repeat gets its own trivial
// trace, and that the trace dies with the job when it is Removed.
func TestJobTraceLifecycle(t *testing.T) {
	e := New(Config{Workers: 2, Trace: true, CacheEntries: 8})
	defer shutdown(t, e)

	j, err := e.Submit(context.Background(), Request{Benchmark: "misex1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !j.Traced() {
		t.Fatal("traced engine produced an untraced job")
	}
	names := make(map[string]int)
	spanNames(j.Trace(), names)
	if names["job"] != 1 {
		t.Fatalf("job root spans = %d, want 1 (%v)", names["job"], names)
	}
	for _, phase := range []string{"premap", "placement", "cover", "layout", "timing"} {
		if names[phase] == 0 {
			t.Errorf("job trace missing %q span (got %v)", phase, names)
		}
	}

	// A repeat submission is served from the cache; its trace is the
	// one-span trivial form marking the source.
	j2, err := e.Submit(context.Background(), Request{Benchmark: "misex1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !j2.Status().CacheHit {
		t.Fatalf("second submission missed the cache: %+v", j2.Status())
	}
	tree := j2.Trace()
	if len(tree) != 1 || tree[0].Name != "job" || tree[0].Attrs["source"] != "cache_hit" {
		t.Fatalf("cache-hit trace = %+v, want one job span with source=cache_hit", tree)
	}

	// Removing the job drops the trace with it: the handle is gone from
	// the registry, so nothing serves it anymore.
	if err := e.Remove(j.ID()); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Job(j.ID()); ok {
		t.Fatal("removed job still resolvable")
	}
	if !e.Forgotten(j.ID()) {
		t.Fatal("removed job not reported Forgotten")
	}
}

// TestTraceDisabledByDefault asserts engines without Config.Trace record
// nothing per job.
func TestTraceDisabledByDefault(t *testing.T) {
	e := New(Config{Workers: 1})
	defer shutdown(t, e)
	j, err := e.Submit(context.Background(), Request{Benchmark: "misex1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if j.Traced() || j.Trace() != nil {
		t.Fatal("untraced engine recorded a trace")
	}
}

// TestEngineMetricsSharedRegistry asserts an engine mirrors its Stats
// counters into a caller-provided registry.
func TestEngineMetricsSharedRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Config{Workers: 1, Metrics: reg, CacheEntries: 8})
	defer shutdown(t, e)

	for i := 0; i < 2; i++ {
		j, err := e.Submit(context.Background(), Request{Benchmark: "misex1"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if e.Registry() != reg {
		t.Fatal("engine did not adopt the provided registry")
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"lily_jobs_submitted_total 2",
		`lily_jobs_total{state="done"} 2`,
		"lily_cache_hits_total 1",
		"lily_cache_misses_total 1",
		"# TYPE lily_job_duration_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
