// Package geom provides the planar geometry primitives shared by the
// placement, wiring, and layout packages: points on the layout plane (the
// paper's point model, §3.1) and axis-aligned enclosing rectangles (the
// fanin/fanout rectangles of §3.3).
package geom

import (
	"fmt"
	"math"
)

// Point is a location on the layout plane, in micrometres.
type Point struct {
	X, Y float64
}

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Manhattan returns the L1 distance between two points.
func (p Point) Manhattan(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// Euclidean returns the L2 distance between two points.
func (p Point) Euclidean(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

func (p Point) String() string { return fmt.Sprintf("(%.2f,%.2f)", p.X, p.Y) }

// Centroid returns the center of mass of the points; the zero point for an
// empty slice.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var c Point
	for _, p := range pts {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(pts)))
}

// Rect is an axis-aligned rectangle given by lower-left and upper-right
// corners. The zero Rect is the canonical "empty" rectangle whose Extend
// starts fresh; use NewRect or EmptyRect to construct.
type Rect struct {
	LL, UR Point
	empty  bool
}

// EmptyRect returns a rectangle containing no points.
func EmptyRect() Rect { return Rect{empty: true} }

// RectAround returns the degenerate rectangle covering a single point.
func RectAround(p Point) Rect { return Rect{LL: p, UR: p} }

// Enclosing returns the minimum rectangle enclosing all points.
func Enclosing(pts []Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.Extend(p)
	}
	return r
}

// IsEmpty reports whether the rectangle contains no points.
func (r Rect) IsEmpty() bool { return r.empty }

// Extend grows the rectangle to include p.
func (r Rect) Extend(p Point) Rect {
	if r.empty {
		return Rect{LL: p, UR: p}
	}
	if p.X < r.LL.X {
		r.LL.X = p.X
	}
	if p.Y < r.LL.Y {
		r.LL.Y = p.Y
	}
	if p.X > r.UR.X {
		r.UR.X = p.X
	}
	if p.Y > r.UR.Y {
		r.UR.Y = p.Y
	}
	return r
}

// Union returns the minimum rectangle enclosing both rectangles.
func (r Rect) Union(o Rect) Rect {
	if r.empty {
		return o
	}
	if o.empty {
		return r
	}
	return r.Extend(o.LL).Extend(o.UR)
}

// Width returns the horizontal extent.
func (r Rect) Width() float64 {
	if r.empty {
		return 0
	}
	return r.UR.X - r.LL.X
}

// Height returns the vertical extent.
func (r Rect) Height() float64 {
	if r.empty {
		return 0
	}
	return r.UR.Y - r.LL.Y
}

// HalfPerimeter returns width + height, the classic net-length lower bound.
func (r Rect) HalfPerimeter() float64 { return r.Width() + r.Height() }

// Center returns the rectangle's center point.
func (r Rect) Center() Point {
	return Point{(r.LL.X + r.UR.X) / 2, (r.LL.Y + r.UR.Y) / 2}
}

// Contains reports whether p lies inside the rectangle (inclusive).
func (r Rect) Contains(p Point) bool {
	return !r.empty && p.X >= r.LL.X && p.X <= r.UR.X && p.Y >= r.LL.Y && p.Y <= r.UR.Y
}

// DistanceTo returns the L1 distance from p to the nearest point of the
// rectangle; zero if p is inside.
func (r Rect) DistanceTo(p Point) float64 {
	if r.empty {
		return 0
	}
	dx := 0.0
	if p.X < r.LL.X {
		dx = r.LL.X - p.X
	} else if p.X > r.UR.X {
		dx = p.X - r.UR.X
	}
	dy := 0.0
	if p.Y < r.LL.Y {
		dy = r.LL.Y - p.Y
	} else if p.Y > r.UR.Y {
		dy = p.Y - r.UR.Y
	}
	return dx + dy
}

func (r Rect) String() string {
	if r.empty {
		return "[empty]"
	}
	return fmt.Sprintf("[%v %v]", r.LL, r.UR)
}
