package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistances(t *testing.T) {
	a, b := Point{0, 0}, Point{3, 4}
	if d := a.Manhattan(b); d != 7 {
		t.Errorf("manhattan = %v", d)
	}
	if d := a.Euclidean(b); d != 5 {
		t.Errorf("euclidean = %v", d)
	}
}

func TestCentroid(t *testing.T) {
	pts := []Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}}
	c := Centroid(pts)
	if c.X != 1 || c.Y != 1 {
		t.Errorf("centroid = %v", c)
	}
	if z := Centroid(nil); z.X != 0 || z.Y != 0 {
		t.Errorf("empty centroid = %v", z)
	}
}

func TestRectBasics(t *testing.T) {
	r := EmptyRect()
	if !r.IsEmpty() || r.HalfPerimeter() != 0 {
		t.Error("empty rect misbehaves")
	}
	r = r.Extend(Point{1, 2}).Extend(Point{4, -1})
	if r.Width() != 3 || r.Height() != 3 {
		t.Errorf("rect dims = %v x %v", r.Width(), r.Height())
	}
	if r.HalfPerimeter() != 6 {
		t.Errorf("hp = %v", r.HalfPerimeter())
	}
	c := r.Center()
	if c.X != 2.5 || c.Y != 0.5 {
		t.Errorf("center = %v", c)
	}
	if !r.Contains(Point{2, 0}) || r.Contains(Point{5, 0}) {
		t.Error("contains wrong")
	}
}

func TestRectUnion(t *testing.T) {
	a := Enclosing([]Point{{0, 0}, {1, 1}})
	b := Enclosing([]Point{{3, 3}, {4, 5}})
	u := a.Union(b)
	if u.LL != (Point{0, 0}) || u.UR != (Point{4, 5}) {
		t.Errorf("union = %v", u)
	}
	if got := a.Union(EmptyRect()); got != a {
		t.Error("union with empty changed rect")
	}
	if got := EmptyRect().Union(b); got != b {
		t.Error("empty union rect wrong")
	}
}

func TestRectDistanceTo(t *testing.T) {
	r := Enclosing([]Point{{0, 0}, {2, 2}})
	if d := r.DistanceTo(Point{1, 1}); d != 0 {
		t.Errorf("inside distance = %v", d)
	}
	if d := r.DistanceTo(Point{4, 1}); d != 2 {
		t.Errorf("right distance = %v", d)
	}
	if d := r.DistanceTo(Point{-1, -2}); d != 3 {
		t.Errorf("corner distance = %v", d)
	}
}

// Property: Enclosing contains every input point, and its half-perimeter is
// no less than the Manhattan distance between any pair divided by... simply
// check containment and monotonicity of Extend.
func TestEnclosingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64()*100 - 50, rng.Float64()*100 - 50}
		}
		r := Enclosing(pts)
		for _, p := range pts {
			if !r.Contains(p) {
				return false
			}
		}
		// Half-perimeter lower-bounds any spanning path endpoints pair.
		for _, p := range pts {
			for _, q := range pts {
				if p.Manhattan(q) > r.HalfPerimeter()+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDegenerateRect(t *testing.T) {
	r := RectAround(Point{5, 5})
	if r.Width() != 0 || r.Height() != 0 || r.IsEmpty() {
		t.Error("degenerate rect wrong")
	}
	if !r.Contains(Point{5, 5}) {
		t.Error("degenerate rect misses its point")
	}
	if d := r.DistanceTo(Point{6, 6}); math.Abs(d-2) > 1e-12 {
		t.Errorf("distance = %v", d)
	}
}
