// Package cut implements K-feasible cut enumeration over the NAND2/INV
// subject graph and converts every cut into a candidate match backed by
// a synthesized K-input LUT cell. It is the FPGA counterpart of the
// structural matcher in internal/match: both are Backend implementations
// for the covering DP in internal/core (DESIGN.md §14), so LUT cut
// selection is driven by the same placement-aware wire cost as ASIC
// match selection.
//
// Enumeration is the classic bottom-up merge: cuts(v) for a NAND2 node
// is every ≤K-leaf union of one cut of each fanin (plus the trivial cut
// {v} used only for merging), and for an INV node it is the fanin's cut
// set passed through. Cut sets are kept irredundant — a cut whose leaf
// set contains another cut's leaf set is dominated and dropped — and
// bounded to maxCuts per node, shortest leaf sets first, so enumeration
// stays linear in practice. Everything is memoized per node and fully
// deterministic: leaves are sorted by node ID, cut lists are ordered by
// (leaf count, leaf IDs), and the synthesized gate for a given (K, truth
// table) pair is cached so pointer identity is stable within a run.
package cut

import (
	"fmt"
	"sort"

	"lily/internal/library"
	"lily/internal/logic"
	"lily/internal/match"
)

// maxCuts bounds the per-node cut list. When a node has more irredundant
// cuts than the cap, the survivors are drawn round-robin across leaf
// counts (the first 1-leaf cut, the first 2-leaf cut, ..., then the
// second of each, ...), so the DP always sees both narrow cuts — minimal
// cuts with few leaves reach deepest and wire cheapest — and wide cuts
// that trade inputs for coverage. 16 keeps the per-node candidate count
// in the same range as the ASIC match lists.
const maxCuts = 16

// MaxK is the largest supported LUT input count: cone truth tables are
// computed in a single 64-bit word (2^6 rows).
const MaxK = 6

// Enumerator finds the K-feasible cuts of a subject graph and exposes
// them as match lists. It is the LUT Backend of the covering engine.
// Like match.Matcher, results are memoized per node: the subject graph
// is immutable for the lifetime of a cover run, so each node's cut set
// and match list are computed exactly once. A memo hit is a pure read,
// which is what lets the wave-parallel scheduler share one Enumerator
// across workers after a sequential pre-warm.
type Enumerator struct {
	net *logic.Network
	lib *library.Library
	cls *match.Classifier
	k   int

	// cuts[v] holds node v's cut leaf sets (each sorted ascending), the
	// trivial cut {v} first; cutsOK marks computed entries.
	cuts   [][][]logic.NodeID
	cutsOK []bool
	// memo holds the per-node MatchesAt results (nil for nodes that take
	// no LUT, e.g. PIs); memoOK marks computed entries.
	memo   [][]*match.Match
	memoOK []bool

	// gates caches the synthesized LUT cell per (arity, truth table), so
	// equal-function cuts share one *library.Gate within the run.
	gates map[gateKey]*library.Gate

	// scratch state for cone walks and truth-table evaluation: node u is
	// a leaf of the current cut iff leafStamp[u] == stamp, and tt[u] is
	// valid iff ttStamp[u] == stamp.
	leafStamp []uint32
	ttStamp   []uint32
	tt        []uint64
	stamp     uint32
}

type gateKey struct {
	k  int
	tt uint64
}

// NewEnumerator builds a K-feasible cut enumerator over the subject
// graph. k must be in [2, MaxK].
func NewEnumerator(net *logic.Network, lib *library.Library, k int) *Enumerator {
	if k < 2 || k > MaxK {
		panic(fmt.Sprintf("cut: K=%d out of range [2,%d]", k, MaxK))
	}
	n := len(net.Nodes)
	return &Enumerator{
		net:       net,
		lib:       lib,
		cls:       match.Classify(net),
		k:         k,
		cuts:      make([][][]logic.NodeID, n),
		cutsOK:    make([]bool, n),
		memo:      make([][]*match.Match, n),
		memoOK:    make([]bool, n),
		gates:     make(map[gateKey]*library.Gate),
		leafStamp: make([]uint32, n),
		ttStamp:   make([]uint32, n),
		tt:        make([]uint64, n),
	}
}

// K returns the enumerator's LUT input bound.
func (e *Enumerator) K() int { return e.k }

// MatchesAt returns the LUT matches rooted at v: one per non-trivial
// K-feasible cut, in deterministic (leaf count, leaf IDs) order. Results
// are memoized; callers must treat the returned slice as read-only.
func (e *Enumerator) MatchesAt(v logic.NodeID) []*match.Match {
	if e.memoOK[v] {
		return e.memo[v]
	}
	out := e.matchesAt(v)
	e.memo[v] = out
	e.memoOK[v] = true
	return out
}

func (e *Enumerator) matchesAt(v logic.NodeID) []*match.Match {
	if t := e.cls.Type(v); t != match.TypeNand2 && t != match.TypeInv {
		return nil
	}
	var out []*match.Match
	for _, leaves := range e.nodeCuts(v) {
		if len(leaves) == 1 && leaves[0] == v {
			continue // the trivial cut exists only to seed fanout merges
		}
		out = append(out, &match.Match{
			Gate:   e.lutGate(len(leaves), e.truthTable(v, leaves)),
			Inputs: leaves,
			Merged: e.cone(v, leaves),
		})
	}
	return out
}

// nodeCuts returns v's cut set, trivial cut first, memoized. Non-trivial
// cuts are irredundant, capped at maxCuts with leaf-count diversity, and
// ordered by (leaf count, leaf IDs ascending).
func (e *Enumerator) nodeCuts(v logic.NodeID) [][]logic.NodeID {
	if e.cutsOK[v] {
		return e.cuts[v]
	}
	trivial := []logic.NodeID{v}
	var merged [][]logic.NodeID
	switch e.cls.Type(v) {
	case match.TypeInv:
		f := e.net.Nodes[v].Fanins[0]
		// Every cut of the fanin is a cut of v (same leaves, one more
		// interior node). Copy the slice headers, not the leaf arrays:
		// cut leaf sets are immutable once built.
		merged = append(merged, e.nodeCuts(f)[0:]...)
	case match.TypeNand2:
		f := e.net.Nodes[v].Fanins
		c0, c1 := e.nodeCuts(f[0]), e.nodeCuts(f[1])
		for _, a := range c0 {
			for _, b := range c1 {
				if u, ok := mergeLeaves(a, b, e.k); ok {
					merged = append(merged, u)
				}
			}
		}
	default:
		// PIs and foreign nodes contribute only themselves as a leaf.
		e.cuts[v] = [][]logic.NodeID{trivial}
		e.cutsOK[v] = true
		return e.cuts[v]
	}
	merged = selectCuts(pruneCuts(merged), e.k)
	e.cuts[v] = append([][]logic.NodeID{trivial}, merged...)
	e.cutsOK[v] = true
	return e.cuts[v]
}

// selectCuts enforces the maxCuts cap with leaf-count diversity: cuts
// (already in (leaf count, leaf IDs) order from pruneCuts) are taken
// round-robin across leaf-count groups until the cap fills, then the
// survivors are returned in the original order.
func selectCuts(cuts [][]logic.NodeID, k int) [][]logic.NodeID {
	if len(cuts) <= maxCuts {
		return cuts
	}
	// groups[w] indexes the first cut with w+1 leaves; cuts are sorted by
	// length, so each group is a contiguous run.
	type span struct{ start, end int }
	groups := make([]span, k)
	for i, c := range cuts {
		w := len(c) - 1
		if groups[w].end == 0 {
			groups[w].start = i
		}
		groups[w].end = i + 1
	}
	keep := make([]bool, len(cuts))
	kept := 0
	for round := 0; kept < maxCuts; round++ {
		took := false
		for w := 0; w < k && kept < maxCuts; w++ {
			g := groups[w]
			if i := g.start + round; i < g.end {
				keep[i] = true
				kept++
				took = true
			}
		}
		if !took {
			break
		}
	}
	out := cuts[:0]
	for i, c := range cuts {
		if keep[i] {
			out = append(out, c)
		}
	}
	return out
}

// mergeLeaves unions two sorted leaf sets, rejecting results wider than k.
// The inputs are never mutated; the result is freshly allocated.
func mergeLeaves(a, b []logic.NodeID, k int) ([]logic.NodeID, bool) {
	out := make([]logic.NodeID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
		if len(out) > k {
			return nil, false
		}
	}
	if len(out)+len(a)-i+len(b)-j > k {
		return nil, false
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out, true
}

// pruneCuts sorts cuts by (leaf count, leaf IDs) and removes duplicates
// and dominated cuts (supersets of an earlier, smaller cut). Sorting
// shorter sets first means any dominating cut precedes its supersets, so
// a single forward pass suffices.
func pruneCuts(cuts [][]logic.NodeID) [][]logic.NodeID {
	sort.Slice(cuts, func(i, j int) bool { return leavesLess(cuts[i], cuts[j]) })
	out := cuts[:0]
	for _, c := range cuts {
		dominated := false
		for _, kept := range out {
			if isSubset(kept, c) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	return out
}

// leavesLess orders leaf sets by size, then element-wise by node ID.
func leavesLess(a, b []logic.NodeID) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// isSubset reports a ⊆ b for sorted slices (equality included).
func isSubset(a, b []logic.NodeID) bool {
	if len(a) > len(b) {
		return false
	}
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// bumpStamp advances the O(1)-clear epoch for the leaf/truth-table
// scratch sets.
func (e *Enumerator) bumpStamp() {
	e.stamp++
	if e.stamp == 0 { // wrapped: reset the backing arrays once per 2^32 clears
		for i := range e.leafStamp {
			e.leafStamp[i] = 0
			e.ttStamp[i] = 0
		}
		e.stamp = 1
	}
}

// cone collects the cut's interior nodes — everything reachable from v
// without crossing a leaf — in deterministic preorder, root first (the
// match.Match Merged convention). The cut property guarantees every
// interior node is a NAND2/INV whose function the leaves determine.
func (e *Enumerator) cone(v logic.NodeID, leaves []logic.NodeID) []logic.NodeID {
	e.bumpStamp()
	for _, l := range leaves {
		e.leafStamp[l] = e.stamp
	}
	var out []logic.NodeID
	var walk func(u logic.NodeID)
	walk = func(u logic.NodeID) {
		if e.leafStamp[u] == e.stamp || e.ttStamp[u] == e.stamp {
			return // leaf, or interior node already collected
		}
		e.ttStamp[u] = e.stamp
		out = append(out, u)
		for _, f := range e.net.Nodes[u].Fanins {
			walk(f)
		}
	}
	walk(v)
	return out
}

// truthTable computes the cut function as a truth table over the leaves
// (leaf i is input variable i; row r holds the output for the assignment
// where leaf i takes bit i of r), by 64-bit parallel simulation of the
// cone: every interior NAND2/INV evaluates once on whole-table words.
func (e *Enumerator) truthTable(v logic.NodeID, leaves []logic.NodeID) uint64 {
	k := len(leaves)
	rows := 1 << uint(k)
	e.bumpStamp()
	for i, l := range leaves {
		e.leafStamp[l] = e.stamp
		var t uint64
		for r := 0; r < rows; r++ {
			if r>>uint(i)&1 == 1 {
				t |= 1 << uint(r)
			}
		}
		e.tt[l] = t
		e.ttStamp[l] = e.stamp
	}
	var eval func(u logic.NodeID) uint64
	eval = func(u logic.NodeID) uint64 {
		if e.ttStamp[u] == e.stamp {
			return e.tt[u]
		}
		f := e.net.Nodes[u].Fanins
		var t uint64
		if len(f) == 1 {
			t = ^eval(f[0])
		} else {
			t = ^(eval(f[0]) & eval(f[1]))
		}
		e.tt[u] = t
		e.ttStamp[u] = e.stamp
		return t
	}
	mask := ^uint64(0)
	if rows < 64 {
		mask = (uint64(1) << uint(rows)) - 1
	}
	return eval(v) & mask
}

// lutGate returns the synthesized LUT cell for a k-input truth table in
// this enumerator's K-LUT tile, cached per (arity, function) so equal
// cuts share one gate instance. The cover is the table's minterm
// expansion — exact, and at most 2^k cubes — and the name encodes arity
// plus the table in hex, so mapped BLIF is self-describing and
// byte-stable.
func (e *Enumerator) lutGate(k int, tt uint64) *library.Gate {
	key := gateKey{k: k, tt: tt}
	if g, ok := e.gates[key]; ok {
		return g
	}
	cover := logic.NewSOP(k)
	rows := 1 << uint(k)
	for r := 0; r < rows; r++ {
		if tt>>uint(r)&1 == 0 {
			continue
		}
		cube := make(logic.Cube, k)
		for i := 0; i < k; i++ {
			if r>>uint(i)&1 == 1 {
				cube[i] = logic.LitPos
			} else {
				cube[i] = logic.LitNeg
			}
		}
		cover.AddCube(cube)
	}
	hexWidth := rows / 4
	if hexWidth < 1 {
		hexWidth = 1
	}
	g := library.NewLUT(fmt.Sprintf("lut%d_%0*x", k, hexWidth, tt), cover, e.k)
	e.gates[key] = g
	return g
}
