package cut

import (
	"testing"

	"lily/internal/bench"
	"lily/internal/decomp"
	"lily/internal/library"
	"lily/internal/logic"
	"lily/internal/match"
)

// subjectFor premaps a generated benchmark into its NAND2/INV subject graph.
func subjectFor(t *testing.T, name string) *logic.Network {
	t.Helper()
	p, ok := bench.ProfileByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	res, err := decomp.Premap(bench.Generate(p))
	if err != nil {
		t.Fatal(err)
	}
	return res.Inchoate
}

func randomSubject(t *testing.T, seed int64) *logic.Network {
	t.Helper()
	res, err := decomp.Premap(bench.Random(seed, 8, 5, 60, 4))
	if err != nil {
		t.Fatal(err)
	}
	return res.Inchoate
}

// TestKFeasibilityProperties is the property harness of the enumerator:
// on a real benchmark and a spread of random subjects, for K=4 and K=6,
// every emitted match must be a K-feasible, irredundant, deterministic
// cut whose LUT reproduces the cone function.
func TestKFeasibilityProperties(t *testing.T) {
	subjects := map[string]*logic.Network{"b9": subjectFor(t, "b9")}
	for seed := int64(1); seed <= 4; seed++ {
		subjects[string(rune('r'))+string(rune('0'+seed))] = randomSubject(t, seed)
	}
	for name, sub := range subjects {
		for _, k := range []int{4, 6} {
			e := NewEnumerator(sub, library.Big(), k)
			cls := match.Classify(sub)
			total := 0
			for _, nd := range sub.Nodes {
				if nd == nil {
					continue
				}
				v := nd.ID
				ms := e.MatchesAt(v)
				if tp := cls.Type(v); tp != match.TypeNand2 && tp != match.TypeInv {
					if ms != nil {
						t.Fatalf("%s K=%d: non-base node %s has %d matches", name, k, nd.Name, len(ms))
					}
					continue
				}
				if len(ms) == 0 {
					t.Fatalf("%s K=%d: base node %s has no matches (the 1-leaf INV/NAND cut always exists)", name, k, nd.Name)
				}
				total += len(ms)
				for i, m := range ms {
					// K-feasibility and leaf-set hygiene.
					if len(m.Inputs) == 0 || len(m.Inputs) > k {
						t.Fatalf("%s K=%d node %s: cut width %d outside [1,%d]", name, k, nd.Name, len(m.Inputs), k)
					}
					for j := 1; j < len(m.Inputs); j++ {
						if m.Inputs[j-1] >= m.Inputs[j] {
							t.Fatalf("%s K=%d node %s: leaves not strictly ascending: %v", name, k, nd.Name, m.Inputs)
						}
					}
					for _, l := range m.Inputs {
						if l == v {
							t.Fatalf("%s K=%d node %s: root appears as its own leaf", name, k, nd.Name)
						}
					}
					if len(m.Merged) == 0 || m.Merged[0] != v {
						t.Fatalf("%s K=%d node %s: cone must start at the root, got %v", name, k, nd.Name, m.Merged)
					}
					// Deterministic (leaf count, leaf IDs) order.
					if i > 0 && !leavesLess(ms[i-1].Inputs, m.Inputs) {
						t.Fatalf("%s K=%d node %s: match order violated at %d: %v !< %v",
							name, k, nd.Name, i, ms[i-1].Inputs, m.Inputs)
					}
					// Irredundance: no other cut's leaves contain this cut's.
					for j, o := range ms {
						if j != i && isSubset(m.Inputs, o.Inputs) {
							t.Fatalf("%s K=%d node %s: cut %v dominates kept cut %v",
								name, k, nd.Name, m.Inputs, o.Inputs)
						}
					}
					// The synthesized LUT computes the cone function.
					if err := match.Verify(sub, m); err != nil {
						t.Fatalf("%s K=%d node %s: %v", name, k, nd.Name, err)
					}
					if m.Gate.NumInputs != len(m.Inputs) {
						t.Fatalf("%s K=%d node %s: gate arity %d != cut width %d",
							name, k, nd.Name, m.Gate.NumInputs, len(m.Inputs))
					}
				}
			}
			if total == 0 {
				t.Fatalf("%s K=%d: enumerator produced no matches at all", name, k)
			}
		}
	}
}

// TestMatchesMemoized pins the Backend contract the wave-parallel
// scheduler relies on: after the first call, MatchesAt is a pure read
// returning the identical slice.
func TestMatchesMemoized(t *testing.T) {
	sub := subjectFor(t, "b9")
	e := NewEnumerator(sub, library.Big(), 4)
	for _, nd := range sub.Nodes {
		if nd == nil {
			continue
		}
		a := e.MatchesAt(nd.ID)
		b := e.MatchesAt(nd.ID)
		if len(a) != len(b) || (len(a) > 0 && &a[0] != &b[0]) {
			t.Fatalf("node %s: MatchesAt not memoized", nd.Name)
		}
	}
}

// TestGateCachePointerStability: equal-function cuts share one gate
// instance, so the netlist builder and the BLIF writer see a stable,
// deduplicated gate set.
func TestGateCachePointerStability(t *testing.T) {
	sub := subjectFor(t, "b9")
	e := NewEnumerator(sub, library.Big(), 4)
	byName := map[string]*library.Gate{}
	for _, nd := range sub.Nodes {
		if nd == nil {
			continue
		}
		for _, m := range e.MatchesAt(nd.ID) {
			if prev, ok := byName[m.Gate.Name]; ok && prev != m.Gate {
				t.Fatalf("gate %s has two instances", m.Gate.Name)
			}
			byName[m.Gate.Name] = m.Gate
		}
	}
}

func TestPruneCutsDropsSupersetsAndDuplicates(t *testing.T) {
	n := func(ids ...logic.NodeID) []logic.NodeID { return ids }
	got := pruneCuts([][]logic.NodeID{
		n(1, 2, 3), // dominated by {1,2}
		n(1, 2),
		n(1, 2), // duplicate
		n(2, 3),
		n(4, 5, 6), // untouched
	})
	want := [][]logic.NodeID{n(1, 2), n(2, 3), n(4, 5, 6)}
	if len(got) != len(want) {
		t.Fatalf("pruneCuts kept %d cuts, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if leavesLess(got[i], want[i]) || leavesLess(want[i], got[i]) {
			t.Fatalf("cut %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestSelectCutsDiversity: the cap must keep cuts of every leaf count,
// not just the narrowest — wide cuts are how a 6-LUT earns its keep.
func TestSelectCutsDiversity(t *testing.T) {
	var cuts [][]logic.NodeID
	for w := 1; w <= 4; w++ {
		for i := 0; i < 10; i++ {
			c := make([]logic.NodeID, w)
			for j := range c {
				c[j] = logic.NodeID(100*w + 10*i + j)
			}
			cuts = append(cuts, c)
		}
	}
	got := selectCuts(cuts, 4)
	if len(got) != maxCuts {
		t.Fatalf("selectCuts kept %d, want %d", len(got), maxCuts)
	}
	byWidth := map[int]int{}
	for _, c := range got {
		byWidth[len(c)]++
	}
	for w := 1; w <= 4; w++ {
		if byWidth[w] == 0 {
			t.Fatalf("cap evicted every %d-leaf cut: %v", w, byWidth)
		}
	}
}

func TestMergeLeavesRejectsWide(t *testing.T) {
	a := []logic.NodeID{1, 3, 5}
	b := []logic.NodeID{2, 4, 6}
	if u, ok := mergeLeaves(a, b, 6); !ok || len(u) != 6 {
		t.Fatalf("mergeLeaves(k=6) = %v, %v", u, ok)
	}
	if _, ok := mergeLeaves(a, b, 5); ok {
		t.Fatalf("mergeLeaves(k=5) accepted a 6-leaf union")
	}
	if u, ok := mergeLeaves(a, a, 3); !ok || len(u) != 3 {
		t.Fatalf("mergeLeaves(self) = %v, %v (duplicates must collapse)", u, ok)
	}
}

func TestNewEnumeratorKRange(t *testing.T) {
	sub := subjectFor(t, "b9")
	for _, k := range []int{1, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEnumerator(K=%d) did not panic", k)
				}
			}()
			NewEnumerator(sub, library.Big(), k)
		}()
	}
}
