// Black-box test: drives the full covering DP (internal/core) with the
// cut backend, which this package cannot import internally (core depends
// on cut), and checks the committed LUT cover end to end.
package cut_test

import (
	"math/rand"
	"strings"
	"testing"

	"lily/internal/bench"
	"lily/internal/core"
	"lily/internal/decomp"
	"lily/internal/library"
	"lily/internal/logic"
	"lily/internal/netlist"
)

// TestLUTCoverComplete maps benchmarks at both LUT targets and asserts
// the cover is complete and well-formed: the netlist checks out, every
// cell is a synthesized LUT within the tile's input bound, every PO's
// transitive fanin resolves to PIs through committed LUTs, and the
// mapped netlist is functionally equivalent to the source on random
// vectors.
func TestLUTCoverComplete(t *testing.T) {
	for _, name := range []string{"b9", "misex1"} {
		p, ok := bench.ProfileByName(name)
		if !ok {
			t.Fatalf("no profile %s", name)
		}
		src := bench.Generate(p)
		res, err := decomp.Premap(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, tgt := range []core.Target{core.TargetLUT4, core.TargetLUT6} {
			opt := core.DefaultOptions(core.ModeArea)
			opt.Target = tgt
			out, err := core.Map(res.Inchoate, library.Big(), opt)
			if err != nil {
				t.Fatalf("%s %s: %v", name, tgt, err)
			}
			nl := out.Netlist
			if err := nl.Check(); err != nil {
				t.Fatalf("%s %s: %v", name, tgt, err)
			}
			k := tgt.LUTK()
			for _, c := range nl.Cells {
				if !strings.HasPrefix(c.Gate.Name, "lut") {
					t.Fatalf("%s %s: non-LUT cell %s (%s) in a LUT cover", name, tgt, c.Name, c.Gate.Name)
				}
				if c.Gate.NumInputs > k {
					t.Fatalf("%s %s: cell %s has %d inputs, tile bound is %d",
						name, tgt, c.Name, c.Gate.NumInputs, k)
				}
			}
			assertPOsReachPIs(t, nl, name, tgt.String())
			checkEquivalent(t, src, nl, 64, int64(k))
		}
	}
}

// assertPOsReachPIs walks every PO's transitive fanin and requires it to
// terminate at primary inputs — the "every PO reachable through
// committed LUTs" completeness property.
func assertPOsReachPIs(t *testing.T, nl *netlist.Netlist, name, tgt string) {
	t.Helper()
	seen := make([]bool, len(nl.Cells))
	var walk func(r netlist.Ref)
	walk = func(r netlist.Ref) {
		if r.IsPI {
			return
		}
		if r.Index < 0 || r.Index >= len(nl.Cells) {
			t.Fatalf("%s %s: dangling driver ref %+v", name, tgt, r)
		}
		if seen[r.Index] {
			return
		}
		seen[r.Index] = true
		for _, in := range nl.Cells[r.Index].Inputs {
			walk(in)
		}
	}
	for _, po := range nl.POs {
		walk(po.Driver)
	}
	for i, c := range nl.Cells {
		if !seen[i] {
			t.Fatalf("%s %s: committed cell %s is unreachable from every PO", name, tgt, c.Name)
		}
	}
}

// checkEquivalent compares the source network and the mapped netlist on
// random input vectors.
func checkEquivalent(t *testing.T, src *logic.Network, nl *netlist.Netlist, trials int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < trials; i++ {
		in := make(map[string]bool)
		for _, pi := range src.PIs {
			in[src.Nodes[pi].Name] = rng.Intn(2) == 1
		}
		want, err := src.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := nl.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		for name, w := range want {
			if got[name] != w {
				t.Fatalf("trial %d: PO %s = %v, want %v", i, name, got[name], w)
			}
		}
	}
}
