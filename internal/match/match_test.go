package match

import (
	"fmt"
	"testing"

	"lily/internal/bench"
	"lily/internal/decomp"
	"lily/internal/library"
	"lily/internal/logic"
)

// buildSubject premaps a tiny source network and returns the subject graph.
func buildSubject(t *testing.T, build func(n *logic.Network)) *logic.Network {
	t.Helper()
	src := logic.New("t")
	build(src)
	res, err := decomp.Premap(src)
	if err != nil {
		t.Fatal(err)
	}
	return res.Inchoate
}

func TestClassify(t *testing.T) {
	sub := buildSubject(t, func(n *logic.Network) {
		a := n.AddPI("a")
		b := n.AddPI("b")
		x := n.AddLogic("x", []logic.NodeID{a.ID, b.ID}, logic.AndSOP(2))
		n.MarkPO(x.ID, "x")
	})
	c := Classify(sub)
	nands, invs, pis := 0, 0, 0
	for _, nd := range sub.Nodes {
		if nd == nil {
			continue
		}
		switch c.Type(nd.ID) {
		case TypeNand2:
			nands++
		case TypeInv:
			invs++
		case TypePI:
			pis++
		default:
			t.Errorf("node %s unclassified", nd.Name)
		}
	}
	if pis != 2 || nands != 1 || invs != 1 {
		t.Errorf("classification: pi=%d nand=%d inv=%d", pis, nands, invs)
	}
}

func TestMatchAnd2(t *testing.T) {
	// AND(a,b) premaps to INV(NAND(a,b)); at the INV root the and2 gate
	// must match with inputs {a,b}, and the inv gate must match with the
	// NAND node as input.
	sub := buildSubject(t, func(n *logic.Network) {
		a := n.AddPI("a")
		b := n.AddPI("b")
		x := n.AddLogic("x", []logic.NodeID{a.ID, b.ID}, logic.AndSOP(2))
		n.MarkPO(x.ID, "x")
	})
	lib := library.Big()
	mt := NewMatcher(sub, lib)
	root := sub.POs[0]
	matches := mt.AtNode(root)
	var haveAnd2, haveInv bool
	for _, m := range matches {
		if err := Verify(sub, m); err != nil {
			t.Errorf("verify: %v", err)
		}
		switch m.Gate.Name {
		case "and2":
			haveAnd2 = true
			if len(m.Merged) != 2 {
				t.Errorf("and2 merged = %v", m.Merged)
			}
		case "inv":
			haveInv = true
		}
	}
	if !haveAnd2 || !haveInv {
		t.Errorf("missing matches at AND root: and2=%v inv=%v (%d matches)",
			haveAnd2, haveInv, len(matches))
	}
}

func TestMatchWideNand(t *testing.T) {
	// NAND4 over 4 PIs: subject is a tree of NAND2/INV; at the root the
	// nand4 gate must match (via one of its shape variants) with the four
	// PIs as inputs.
	sub := buildSubject(t, func(n *logic.Network) {
		var ids []logic.NodeID
		for _, name := range []string{"a", "b", "c", "d"} {
			ids = append(ids, n.AddPI(name).ID)
		}
		x := n.AddLogic("x", ids, logic.NandSOP(4))
		n.MarkPO(x.ID, "x")
	})
	lib := library.Big()
	mt := NewMatcher(sub, lib)
	matches := mt.AtNode(sub.POs[0])
	found := false
	for _, m := range matches {
		if m.Gate.Name == "nand4" {
			found = true
			if len(m.Inputs) != 4 {
				t.Errorf("nand4 inputs = %v", m.Inputs)
			}
			pis := map[logic.NodeID]bool{}
			for _, in := range m.Inputs {
				pis[in] = true
			}
			if len(pis) != 4 {
				t.Errorf("nand4 inputs not distinct PIs: %v", m.Inputs)
			}
			if err := Verify(sub, m); err != nil {
				t.Error(err)
			}
		}
	}
	if !found {
		t.Error("nand4 did not match a premapped 4-input NAND")
	}
}

func TestMatchCommutative(t *testing.T) {
	// OAI21 = NAND(OR(a,b), c) premapped: nand(nand(!a,!b), c)'s root is a
	// NAND whose children differ in type; the matcher must find oai21
	// regardless of fanin order.
	sub := buildSubject(t, func(n *logic.Network) {
		a := n.AddPI("a")
		b := n.AddPI("b")
		c := n.AddPI("c")
		o := n.AddLogic("o", []logic.NodeID{a.ID, b.ID}, logic.OrSOP(2))
		x := n.AddLogic("x", []logic.NodeID{o.ID, c.ID}, logic.NandSOP(2))
		n.MarkPO(x.ID, "x")
	})
	lib := library.Big()
	mt := NewMatcher(sub, lib)
	matches := mt.AtNode(sub.POs[0])
	found := false
	for _, m := range matches {
		if m.Gate.Name == "oai21" {
			found = true
			if err := Verify(sub, m); err != nil {
				t.Error(err)
			}
		}
	}
	if !found {
		names := map[string]bool{}
		for _, m := range matches {
			names[m.Gate.Name] = true
		}
		t.Errorf("oai21 not matched; got %v", names)
	}
}

func TestMatchesDeduplicated(t *testing.T) {
	sub := buildSubject(t, func(n *logic.Network) {
		a := n.AddPI("a")
		b := n.AddPI("b")
		x := n.AddLogic("x", []logic.NodeID{a.ID, b.ID}, logic.NandSOP(2))
		n.MarkPO(x.ID, "x")
	})
	lib := library.Big()
	mt := NewMatcher(sub, lib)
	matches := mt.AtNode(sub.POs[0])
	seen := map[string]bool{}
	for _, m := range matches {
		k := fmt.Sprintf("%s:%v", m.Gate.Name, m.Inputs)
		if seen[k] {
			t.Errorf("duplicate match %s", k)
		}
		seen[k] = true
	}
}

// TestAtNodeMemoized asserts that repeated AtNode calls return the memoized
// result (same backing slice) — the contract the cover DP relies on to make
// matching a once-per-node cost.
func TestAtNodeMemoized(t *testing.T) {
	sub := buildSubject(t, func(n *logic.Network) {
		a := n.AddPI("a")
		b := n.AddPI("b")
		x := n.AddLogic("x", []logic.NodeID{a.ID, b.ID}, logic.NandSOP(2))
		n.MarkPO(x.ID, "x")
	})
	mt := NewMatcher(sub, library.Big())
	first := mt.AtNode(sub.POs[0])
	second := mt.AtNode(sub.POs[0])
	if len(first) == 0 || len(first) != len(second) {
		t.Fatalf("memoized call differs: %d vs %d matches", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("match %d not memoized: %p vs %p", i, first[i], second[i])
		}
	}
}

// TestDecimalLessMatchesStringOrder pins the sort order of AtNode against
// the historical fmt-rendered key ("gate:[12 34]"): decimalLess must order
// input bindings exactly as lexicographic comparison of their %v rendering
// would, because the DP breaks cost ties by match-list position.
func TestDecimalLessMatchesStringOrder(t *testing.T) {
	cases := [][2][]logic.NodeID{
		{{9}, {10}},          // "9]" > "10]" in string order
		{{1, 9}, {1, 10}},    // last-element prefix: ']' vs digit
		{{9, 1}, {10, 1}},    // mid-element prefix: ' ' vs digit
		{{2}, {10}},          // "1" < "2" stringwise even though 10 > 2
		{{12, 34}, {12, 34}}, // equal
		{{3, 4}, {3, 5}},
		{{-1, 4}, {0, 4}}, // unbound sentinel renders as "-1"
	}
	for _, c := range cases {
		a, b := c[0], c[1]
		wantAB := fmt.Sprintf("%v", a) < fmt.Sprintf("%v", b)
		wantBA := fmt.Sprintf("%v", b) < fmt.Sprintf("%v", a)
		if got := decimalLess(a, b); got != wantAB {
			t.Errorf("decimalLess(%v, %v) = %v, want %v", a, b, got, wantAB)
		}
		if got := decimalLess(b, a); got != wantBA {
			t.Errorf("decimalLess(%v, %v) = %v, want %v", b, a, got, wantBA)
		}
	}
}

func TestNoMatchAtPI(t *testing.T) {
	sub := buildSubject(t, func(n *logic.Network) {
		a := n.AddPI("a")
		x := n.AddLogic("x", []logic.NodeID{a.ID}, logic.NotSOP())
		n.MarkPO(x.ID, "x")
	})
	mt := NewMatcher(sub, library.Big())
	if got := mt.AtNode(sub.PIs[0]); got != nil {
		t.Errorf("matches at PI: %v", got)
	}
}

func TestEveryBaseNodeHasAMatch(t *testing.T) {
	// On a realistic subject graph, every NAND2/INV node must have at
	// least the base-cell match (nand2/inv are in the library), or
	// covering would be infeasible.
	src := bench.Random(3, 10, 5, 60, 4)
	res, err := decomp.Premap(src)
	if err != nil {
		t.Fatal(err)
	}
	sub := res.Inchoate
	mt := NewMatcher(sub, library.Big())
	for _, nd := range sub.Nodes {
		if nd == nil || nd.Kind != logic.KindLogic {
			continue
		}
		matches := mt.AtNode(nd.ID)
		if len(matches) == 0 {
			t.Fatalf("node %s has no matches", nd.Name)
		}
		base := false
		for _, m := range matches {
			if m.Gate.Name == "nand2" || m.Gate.Name == "inv" {
				base = true
			}
		}
		if !base {
			t.Errorf("node %s lacks a base-cell match", nd.Name)
		}
	}
}

func TestAllMatchesVerifyOnRandomSubject(t *testing.T) {
	src := bench.Random(9, 8, 4, 40, 4)
	res, err := decomp.Premap(src)
	if err != nil {
		t.Fatal(err)
	}
	sub := res.Inchoate
	mt := NewMatcher(sub, library.Big())
	total := 0
	for _, nd := range sub.Nodes {
		if nd == nil || nd.Kind != logic.KindLogic {
			continue
		}
		for _, m := range mt.AtNode(nd.ID) {
			total++
			if err := Verify(sub, m); err != nil {
				t.Fatal(err)
			}
			if m.Root() != nd.ID {
				t.Fatalf("match root %d != node %d", m.Root(), nd.ID)
			}
		}
	}
	if total == 0 {
		t.Fatal("no matches found at all")
	}
}

func TestInternalFanoutFree(t *testing.T) {
	// Build x = AND(a,b) feeding two consumers; the NAND inside the AND
	// premap has external fanout only if shared. Construct a case where a
	// merged node fans out: y = INV(nandNode) and z uses nandNode too.
	src := logic.New("t")
	a := src.AddPI("a")
	b := src.AddPI("b")
	nd := src.AddLogic("nab", []logic.NodeID{a.ID, b.ID}, logic.NandSOP(2))
	x := src.AddLogic("x", []logic.NodeID{nd.ID}, logic.NotSOP())
	src.MarkPO(x.ID, "x")
	src.MarkPO(nd.ID, "nab") // the NAND itself is observable
	res, err := decomp.Premap(src)
	if err != nil {
		t.Fatal(err)
	}
	sub := res.Inchoate
	mt := NewMatcher(sub, library.Big())
	// At the INV root, and2 matches but its merged NAND is a PO: not
	// fanout-free.
	invRoot := res.Root[x.ID]
	for _, m := range mt.AtNode(invRoot) {
		if m.Gate.Name == "and2" {
			if InternalFanoutFree(sub, m) {
				t.Error("and2 over an observable NAND should not be fanout-free")
			}
		}
		if m.Gate.Name == "inv" {
			if !InternalFanoutFree(sub, m) {
				t.Error("inv match must be fanout-free (no internal nodes)")
			}
		}
	}
}
