// Package match implements DAGON-style structural matching: it finds every
// way a library gate's pattern graph can cover a region of the NAND2/INV
// subject graph rooted at a given node (paper §2). The mappers (packages
// mis and core) turn these matches into covers by dynamic programming.
package match

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"

	"lily/internal/decomp"
	"lily/internal/library"
	"lily/internal/logic"
)

// NodeType classifies subject-graph nodes for fast matching.
type NodeType byte

const (
	// TypeOther marks nodes that are neither base functions nor PIs.
	TypeOther NodeType = iota
	// TypePI marks primary inputs.
	TypePI
	// TypeNand2 marks 2-input NAND base nodes.
	TypeNand2
	// TypeInv marks inverter base nodes.
	TypeInv
)

// Classifier caches the node type of every subject-graph node.
type Classifier struct {
	types []NodeType
}

// Classify computes node types for the network. The network must be a
// subject graph (only NAND2/INV logic nodes); other nodes are marked
// TypeOther and never match.
func Classify(net *logic.Network) *Classifier {
	c := &Classifier{types: make([]NodeType, len(net.Nodes))}
	for id, nd := range net.Nodes {
		if nd == nil {
			continue
		}
		switch {
		case nd.Kind == logic.KindPI:
			c.types[id] = TypePI
		case decomp.IsNand2(net, logic.NodeID(id)):
			c.types[id] = TypeNand2
		case decomp.IsInv(net, logic.NodeID(id)):
			c.types[id] = TypeInv
		default:
			c.types[id] = TypeOther
		}
	}
	return c
}

// Type returns the cached node type.
func (c *Classifier) Type(id logic.NodeID) NodeType { return c.types[id] }

// Match is one way to implement the subject node rooted at its last Merged
// entry with a library gate.
type Match struct {
	Gate    *library.Gate
	Pattern *library.Pattern
	// Inputs lists the subject nodes bound to each gate input pin
	// (positional; these are the paper's inputs(v, m)).
	Inputs []logic.NodeID
	// Merged lists the subject nodes covered by the pattern's internal
	// NAND2/INV nodes, root first (the paper's merged(v, m) including v).
	Merged []logic.NodeID
}

// Root returns the subject node the match implements.
func (m *Match) Root() logic.NodeID { return m.Merged[0] }

func (m *Match) String() string {
	return fmt.Sprintf("%s@%d inputs=%v merged=%v", m.Gate.Name, m.Root(), m.Inputs, m.Merged)
}

// Matcher enumerates matches over one subject graph. Matching results are
// memoized per node: the subject graph is immutable for the lifetime of a
// cover run (only node lifecycle state changes, which matching never
// reads), so AtNode computes each node's match list exactly once.
type Matcher struct {
	net *logic.Network
	lib *library.Library
	cls *Classifier

	// scratch state for the backtracking search
	bind   []logic.NodeID
	merged []logic.NodeID
	// mergedStamp implements an O(1)-clear membership set: node v is in
	// the current pattern interior iff mergedStamp[v] == stamp.
	mergedStamp []uint32
	stamp       uint32

	// memo holds the per-node AtNode results; memoOK marks computed
	// entries (a nil slice is a valid result for unmatchable nodes).
	memo   [][]*Match
	memoOK []bool
}

// NewMatcher builds a matcher for the subject graph.
func NewMatcher(net *logic.Network, lib *library.Library) *Matcher {
	n := len(net.Nodes)
	return &Matcher{
		net:         net,
		lib:         lib,
		cls:         Classify(net),
		mergedStamp: make([]uint32, n),
		memo:        make([][]*Match, n),
		memoOK:      make([]bool, n),
	}
}

// Classifier exposes the matcher's node classification.
func (mt *Matcher) Classifier() *Classifier { return mt.cls }

// AtNode returns all distinct matches rooted at subject node v, across every
// gate and pattern of the library. Matches are deduplicated by (gate,
// bound inputs) and returned in a deterministic order. Results are memoized;
// callers must treat the returned slice as read-only.
func (mt *Matcher) AtNode(v logic.NodeID) []*Match {
	if mt.memoOK[v] {
		return mt.memo[v]
	}
	out := mt.atNode(v)
	mt.memo[v] = out
	mt.memoOK[v] = true
	return out
}

func (mt *Matcher) atNode(v logic.NodeID) []*Match {
	if t := mt.cls.Type(v); t != TypeNand2 && t != TypeInv {
		return nil
	}
	var out []*Match
	for _, g := range mt.lib.Gates {
		for _, p := range g.Patterns {
			if cap(mt.bind) < g.NumInputs {
				mt.bind = make([]logic.NodeID, g.NumInputs)
			}
			mt.bind = mt.bind[:g.NumInputs]
			for i := range mt.bind {
				mt.bind[i] = logic.InvalidNode
			}
			mt.merged = mt.merged[:0]
			mt.clearMerged()
			mt.match(v, p.Root, func() {
				// A gate input must be a signal that survives outside the
				// match: reject bindings where a pin lands on a node the
				// pattern interior consumed.
				for _, b := range mt.bind {
					if mt.inMerged(b) {
						return
					}
				}
				// Deduplicate by (gate, bound inputs) with a linear scan —
				// match lists are small, and the structural comparison
				// replaces the old fmt-formatted string key without
				// allocating. First occurrence wins, as before.
				for _, prev := range out {
					if prev.Gate == g && equalIDs(prev.Inputs, mt.bind) {
						return
					}
				}
				out = append(out, &Match{
					Gate:    g,
					Pattern: p,
					Inputs:  append([]logic.NodeID(nil), mt.bind...),
					Merged:  append([]logic.NodeID(nil), mt.merged...),
				})
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Gate.Name != out[j].Gate.Name {
			return out[i].Gate.Name < out[j].Gate.Name
		}
		return decimalLess(out[i].Inputs, out[j].Inputs)
	})
	return out
}

func equalIDs(a, b []logic.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// decimalLess orders two equal-length input bindings exactly as the
// historical fmt-rendered match key ("gate:[12 34]") did: element-wise,
// each ID compared as its decimal string followed by the separator the
// rendering would emit (' ' between elements, ']' after the last). The
// decimal-string order differs from numeric order (e.g. "10" < "9"), and
// the DP breaks cost ties by match-list position, so preserving it keeps
// mapped output byte-identical to the string-keyed implementation.
func decimalLess(a, b []logic.NodeID) bool {
	for i := range a {
		if a[i] == b[i] {
			continue
		}
		var abuf, bbuf [24]byte
		as := strconv.AppendInt(abuf[:0], int64(a[i]), 10)
		bs := strconv.AppendInt(bbuf[:0], int64(b[i]), 10)
		sep := byte(' ')
		if i == len(a)-1 {
			sep = ']'
		}
		as = append(as, sep)
		bs = append(bs, sep)
		return bytes.Compare(as, bs) < 0
	}
	return false
}

// match attempts to embed pattern node p at subject node v, invoking cont
// for every consistent embedding. Internal pattern nodes must map to
// distinct subject nodes; a leaf binds any subject node (including one
// outside the pattern interior).
func (mt *Matcher) match(v logic.NodeID, p *library.PatternNode, cont func()) {
	switch p.Op {
	case library.OpLeaf:
		switch mt.bind[p.Pin] {
		case logic.InvalidNode:
			mt.bind[p.Pin] = v
			cont()
			mt.bind[p.Pin] = logic.InvalidNode
		case v:
			cont()
		}
	case library.OpInv:
		if mt.cls.Type(v) != TypeInv || mt.inMerged(v) {
			return
		}
		mt.pushMerged(v)
		mt.match(mt.net.Nodes[v].Fanins[0], p.Kids[0], cont)
		mt.popMerged(v)
	case library.OpNand2:
		if mt.cls.Type(v) != TypeNand2 || mt.inMerged(v) {
			return
		}
		mt.pushMerged(v)
		f := mt.net.Nodes[v].Fanins
		mt.match(f[0], p.Kids[0], func() {
			mt.match(f[1], p.Kids[1], cont)
		})
		if f[0] != f[1] {
			// NAND is commutative: also try the swapped assignment.
			mt.match(f[1], p.Kids[0], func() {
				mt.match(f[0], p.Kids[1], cont)
			})
		}
		mt.popMerged(v)
	}
}

// inMerged reports whether v is inside the pattern interior being built.
// Leaf bindings may be logic.InvalidNode (-1) before a pin is bound; the
// stamp array is indexed by node ID, so guard the sentinel explicitly.
func (mt *Matcher) inMerged(v logic.NodeID) bool {
	return v >= 0 && mt.mergedStamp[v] == mt.stamp
}

// clearMerged empties the interior set in O(1) by advancing the stamp.
func (mt *Matcher) clearMerged() {
	mt.stamp++
	if mt.stamp == 0 { // wrapped: reset the backing array once per 2^32 clears
		for i := range mt.mergedStamp {
			mt.mergedStamp[i] = 0
		}
		mt.stamp = 1
	}
}

func (mt *Matcher) pushMerged(v logic.NodeID) {
	mt.merged = append(mt.merged, v)
	mt.mergedStamp[v] = mt.stamp
}

func (mt *Matcher) popMerged(v logic.NodeID) {
	mt.merged = mt.merged[:len(mt.merged)-1]
	mt.mergedStamp[v] = mt.stamp - 1
}

// InternalFanoutFree reports whether every non-root merged node of the
// match fans out only inside the match — the DAGON tree-covering condition.
// Cone-based covering (MIS, Lily) admits matches that violate it at the
// price of logic duplication.
func InternalFanoutFree(net *logic.Network, m *Match) bool {
	inside := make(map[logic.NodeID]bool, len(m.Merged))
	for _, id := range m.Merged {
		inside[id] = true
	}
	for _, id := range m.Merged[1:] { // skip root
		if net.IsPO(id) {
			return false
		}
		for _, fo := range net.Fanouts(id) {
			if !inside[fo] {
				return false
			}
		}
	}
	return true
}

// Verify checks a match functionally: simulating the gate cover over the
// bound input values must reproduce the subject root's value for every
// assignment of the inputs. Used by tests and the mapper's paranoia mode.
func Verify(net *logic.Network, m *Match) error {
	// The match region forms a tree from inputs to root; evaluate the
	// subject nodes in the region for all 2^k input assignments.
	k := len(m.Inputs)
	if k > 10 {
		return nil // too wide to enumerate; structural matching is trusted
	}
	region := make(map[logic.NodeID]bool, len(m.Merged))
	for _, id := range m.Merged {
		region[id] = true
	}
	// Topological order of region nodes (root first in Merged, so reverse).
	val := make(map[logic.NodeID]bool, len(region)+k)
	var evalNode func(id logic.NodeID) bool
	evalNode = func(id logic.NodeID) bool {
		if v, ok := val[id]; ok {
			return v
		}
		nd := net.Nodes[id]
		ins := make([]bool, len(nd.Fanins))
		for i, f := range nd.Fanins {
			ins[i] = evalNode(f)
		}
		v := nd.Cover.Eval(ins)
		val[id] = v
		return v
	}
	pins := make([]bool, k)
	for r := 0; r < 1<<k; r++ {
		for id := range val {
			delete(val, id)
		}
		consistent := true
		for i, in := range m.Inputs {
			pins[i] = r&(1<<i) != 0
			if prev, ok := val[in]; ok && prev != pins[i] {
				// Two pins bound to the same subject signal: only
				// assignments giving them equal values are realizable.
				consistent = false
				break
			}
			val[in] = pins[i]
		}
		if !consistent {
			continue
		}
		want := evalNode(m.Root())
		got := m.Gate.Cover.Eval(pins)
		if got != want {
			return fmt.Errorf("match %s: gate says %v, subject says %v for pins %v",
				m, got, want, pins)
		}
	}
	return nil
}

// MatchesAt makes Matcher a covering-engine backend (core.Backend): it
// is AtNode under the interface's name.
func (mt *Matcher) MatchesAt(v logic.NodeID) []*Match { return mt.AtNode(v) }
