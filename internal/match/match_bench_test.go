package match

import (
	"testing"

	"lily/internal/bench"
	"lily/internal/decomp"
	"lily/internal/library"
	"lily/internal/logic"
)

// BenchmarkMatcherAllNodes measures full-library matching over every node
// of a mid-size subject graph — the inner loop of both mappers.
func BenchmarkMatcherAllNodes(b *testing.B) {
	src := bench.Random(5, 20, 10, 150, 4)
	res, err := decomp.Premap(src)
	if err != nil {
		b.Fatal(err)
	}
	sub := res.Inchoate
	lib := library.Big()
	var nodes []logic.NodeID
	for _, nd := range sub.Nodes {
		if nd != nil && nd.Kind == logic.KindLogic {
			nodes = append(nodes, nd.ID)
		}
	}
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		mt := NewMatcher(sub, lib)
		for _, v := range nodes {
			total += len(mt.AtNode(v))
		}
	}
	b.ReportMetric(float64(total)/float64(b.N)/float64(len(nodes)), "matches/node")
}

func BenchmarkClassify(b *testing.B) {
	src := bench.Random(6, 20, 10, 300, 4)
	res, err := decomp.Premap(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Classify(res.Inchoate)
	}
}
