package layout

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"lily/internal/geom"
	"lily/internal/wire"
)

// SVGOptions controls the layout rendering.
type SVGOptions struct {
	// Scale is pixels per µm (default 0.25).
	Scale float64
	// DrawNets renders a spanning tree for every net; on large designs
	// this dominates the file size.
	DrawNets bool
	// MaxNets caps the number of nets drawn (longest first); 0 = all.
	MaxNets int
}

// WriteSVG renders a finished layout — rows, cells, pads, channels, and
// optionally net spanning trees — as a standalone SVG document.
func WriteSVG(w io.Writer, res *Result, opt SVGOptions) error {
	if opt.Scale <= 0 {
		opt.Scale = 0.25
	}
	nl := res.Netlist
	bw := bufio.NewWriter(w)
	sw, sh := res.ChipWidth*opt.Scale, res.ChipHeight*opt.Scale
	margin := 20.0
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="%.1f %.1f %.1f %.1f">`+"\n",
		sw+2*margin, sh+2*margin, -margin, -margin, sw+2*margin, sh+2*margin)
	// SVG y grows downward; flip so the chip's origin is bottom-left.
	flip := func(p geom.Point) (float64, float64) {
		return p.X * opt.Scale, (res.ChipHeight - p.Y) * opt.Scale
	}

	fmt.Fprintf(bw, `<rect x="0" y="0" width="%.1f" height="%.1f" fill="#fafafa" stroke="#333"/>`+"\n", sw, sh)

	// Cells, colored by gate fanin count.
	for _, c := range nl.Cells {
		x, y := flip(c.Pos)
		wpx := c.Gate.Width * opt.Scale
		hpx := c.Gate.Height * opt.Scale
		fill := cellColor(c.Gate.NumInputs)
		fmt.Fprintf(bw, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#555" stroke-width="0.3"><title>%s (%s)</title></rect>`+"\n",
			x-wpx/2, y-hpx/2, wpx, hpx, fill, c.Name, c.Gate.Name)
	}

	// Pads.
	for i, p := range nl.PIPos {
		x, y := flip(p)
		fmt.Fprintf(bw, `<circle cx="%.1f" cy="%.1f" r="3" fill="#2166ac"><title>PI %s</title></circle>`+"\n",
			x, y, nl.PINames[i])
	}
	for _, po := range nl.POs {
		x, y := flip(po.Pad)
		fmt.Fprintf(bw, `<circle cx="%.1f" cy="%.1f" r="3" fill="#b2182b"><title>PO %s</title></circle>`+"\n",
			x, y, po.Name)
	}

	if opt.DrawNets {
		type drawn struct {
			pts []geom.Point
			len float64
		}
		var nets []drawn
		for _, net := range nl.Nets() {
			pts := nl.NetPins(net)
			if len(pts) < 2 {
				continue
			}
			nets = append(nets, drawn{pts, wire.RMST(pts)})
		}
		// Longest nets first so a cap keeps the interesting ones.
		for i := 0; i < len(nets); i++ {
			for j := i + 1; j < len(nets); j++ {
				if nets[j].len > nets[i].len {
					nets[i], nets[j] = nets[j], nets[i]
				}
			}
		}
		if opt.MaxNets > 0 && len(nets) > opt.MaxNets {
			nets = nets[:opt.MaxNets]
		}
		for _, d := range nets {
			drawSpanningTree(bw, d.pts, flip)
		}
	}

	fmt.Fprintln(bw, "</svg>")
	return bw.Flush()
}

func cellColor(fanin int) string {
	switch {
	case fanin <= 1:
		return "#d9f0d3"
	case fanin == 2:
		return "#a6dba0"
	case fanin == 3:
		return "#5aae61"
	case fanin == 4:
		return "#fee08b"
	case fanin == 5:
		return "#fdae61"
	default:
		return "#f46d43"
	}
}

// drawSpanningTree emits rectilinear (L-shaped) segments of a Prim MST.
func drawSpanningTree(w io.Writer, pts []geom.Point, flip func(geom.Point) (float64, float64)) {
	n := len(pts)
	inTree := make([]bool, n)
	dist := make([]float64, n)
	from := make([]int, n)
	for i := range dist {
		dist[i] = math.MaxFloat64
		from[i] = -1
	}
	dist[0] = 0
	for k := 0; k < n; k++ {
		best, bestD := -1, math.MaxFloat64
		for i := 0; i < n; i++ {
			if !inTree[i] && dist[i] < bestD {
				best, bestD = i, dist[i]
			}
		}
		inTree[best] = true
		if from[best] >= 0 {
			ax, ay := flip(pts[from[best]])
			bx, by := flip(pts[best])
			fmt.Fprintf(w, `<path d="M %.1f %.1f L %.1f %.1f L %.1f %.1f" fill="none" stroke="#4575b4" stroke-width="0.5" opacity="0.5"/>`+"\n",
				ax, ay, bx, ay, bx, by)
		}
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := pts[best].Manhattan(pts[i]); d < dist[i] {
					dist[i] = d
					from[i] = best
				}
			}
		}
	}
}
