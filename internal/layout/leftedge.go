package layout

import "sort"

// Span is one net's horizontal extent inside a routing channel.
type Span struct {
	Lo, Hi float64
}

// AssignTracks performs classic left-edge channel routing over the spans
// (the algorithm YACR-class routers build on): spans are sorted by left
// edge and greedily packed into the lowest track whose last span ends
// before the next begins. It returns the track index of every span (in the
// input order) and the number of tracks used. For interval graphs the
// left-edge result is optimal, so the track count equals the channel's
// peak density.
func AssignTracks(spans []Span) (tracks []int, numTracks int) {
	tracks = make([]int, len(spans))
	order := make([]int, len(spans))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if spans[order[a]].Lo != spans[order[b]].Lo {
			return spans[order[a]].Lo < spans[order[b]].Lo
		}
		return spans[order[a]].Hi < spans[order[b]].Hi
	})
	var trackEnd []float64 // rightmost occupied x per track
	for _, si := range order {
		s := spans[si]
		placed := false
		for ti := range trackEnd {
			if trackEnd[ti] < s.Lo {
				trackEnd[ti] = s.Hi
				tracks[si] = ti
				placed = true
				break
			}
		}
		if !placed {
			trackEnd = append(trackEnd, s.Hi)
			tracks[si] = len(trackEnd) - 1
		}
	}
	return tracks, len(trackEnd)
}

// spanDensity computes the peak overlap of the spans by interval sweep —
// the same metric channelDensities uses.
func spanDensity(spans []Span) int {
	type ev struct {
		x     float64
		delta int
	}
	evs := make([]ev, 0, 2*len(spans))
	for _, s := range spans {
		evs = append(evs, ev{s.Lo, 1}, ev{s.Hi, -1})
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].x != evs[b].x {
			return evs[a].x < evs[b].x
		}
		return evs[a].delta > evs[b].delta
	})
	cur, max := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > max {
			max = cur
		}
	}
	return max
}
