package layout

import (
	"math"
	"math/rand"
	"testing"

	"lily/internal/bench"
	"lily/internal/core"
	"lily/internal/decomp"
	"lily/internal/geom"
	"lily/internal/library"
	"lily/internal/mis"
	"lily/internal/netlist"
)

func misNetlist(t *testing.T, name string) *netlist.Netlist {
	t.Helper()
	p, ok := bench.ProfileByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	src := bench.Generate(p)
	res, err := decomp.Premap(src)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := mis.Map(res.Inchoate, library.Big(), mis.DefaultOptions(mis.ModeArea))
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestLayoutMISPipeline(t *testing.T) {
	lib := library.Big()
	nl := misNetlist(t, "C432")
	res, err := Place(nl, lib, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows < 2 {
		t.Errorf("only %d rows", res.Rows)
	}
	if res.ChipArea() <= res.ActiveArea {
		t.Errorf("chip area %.0f not above active area %.0f (routing needs space)",
			res.ChipArea(), res.ActiveArea)
	}
	if res.TotalWirelength <= 0 {
		t.Error("no wirelength")
	}
	if len(res.ChannelDensities) != res.Rows+1 {
		t.Errorf("%d channel densities for %d rows", len(res.ChannelDensities), res.Rows)
	}
}

func TestLayoutRowsLegal(t *testing.T) {
	lib := library.Big()
	nl := misNetlist(t, "C880")
	res, err := Place(nl, lib, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Group cells by y; within each row, cells must not overlap.
	byY := map[float64][]*netlist.Cell{}
	for _, c := range nl.Cells {
		byY[c.Pos.Y] = append(byY[c.Pos.Y], c)
	}
	if len(byY) != res.Rows {
		t.Errorf("%d distinct y values for %d rows", len(byY), res.Rows)
	}
	for y, cells := range byY {
		type iv struct{ lo, hi float64 }
		ivs := make([]iv, len(cells))
		for i, c := range cells {
			ivs[i] = iv{c.Pos.X - c.Gate.Width/2, c.Pos.X + c.Gate.Width/2}
		}
		for i := range ivs {
			for j := i + 1; j < len(ivs); j++ {
				if ivs[i].lo < ivs[j].hi-1e-6 && ivs[j].lo < ivs[i].hi-1e-6 {
					t.Fatalf("row y=%v: cells overlap (%v, %v)", y, ivs[i], ivs[j])
				}
			}
		}
	}
	// All cells within the chip.
	for _, c := range nl.Cells {
		if c.Pos.X < 0 || c.Pos.X > res.ChipWidth || c.Pos.Y < 0 || c.Pos.Y > res.ChipHeight {
			t.Fatalf("cell %s at %v outside chip %vx%v", c.Name, c.Pos, res.ChipWidth, res.ChipHeight)
		}
	}
}

func TestLayoutLilySeedUsed(t *testing.T) {
	// Lily netlists carry seed positions; the backend must keep them (no
	// global re-placement) and still produce a legal layout.
	p, _ := bench.ProfileByName("C432")
	src := bench.Generate(p)
	dres, err := decomp.Premap(src)
	if err != nil {
		t.Fatal(err)
	}
	lres, err := core.Map(dres.Inchoate, library.Big(), core.DefaultOptions(core.ModeArea))
	if err != nil {
		t.Fatal(err)
	}
	if !HasSeedPositions(lres.Netlist) {
		t.Fatal("lily netlist lacks seed positions")
	}
	res, err := Place(lres.Netlist, library.Big(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWirelength <= 0 || res.ChipArea() <= 0 {
		t.Error("degenerate layout")
	}
}

func TestSwapPassesImprove(t *testing.T) {
	lib := library.Big()
	nl0 := misNetlist(t, "C880")
	nl1 := misNetlist(t, "C880")
	opt0 := DefaultOptions()
	opt0.SwapPasses = 0
	opt1 := DefaultOptions()
	opt1.SwapPasses = 6
	r0, err := Place(nl0, lib, opt0)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Place(nl1, lib, opt1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalWirelength > r0.TotalWirelength*1.001 {
		t.Errorf("swaps made wirelength worse: %.0f -> %.0f", r0.TotalWirelength, r1.TotalWirelength)
	}
}

func TestChannelDensityNonNegative(t *testing.T) {
	lib := library.Big()
	nl := misNetlist(t, "misex1")
	res, err := Place(nl, lib, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, d := range res.ChannelDensities {
		if d < 0 {
			t.Fatalf("negative density %d", d)
		}
		sum += d
	}
	if sum == 0 {
		t.Error("all channels empty; routing model broken")
	}
}

func TestPadsOnChipBoundary(t *testing.T) {
	lib := library.Big()
	nl := misNetlist(t, "misex1")
	res, err := Place(nl, lib, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	onEdge := func(p geom.Point) bool {
		const eps = 1e-6
		return math.Abs(p.X) < eps || math.Abs(p.X-res.ChipWidth) < eps ||
			math.Abs(p.Y) < eps || math.Abs(p.Y-res.ChipHeight) < eps
	}
	for i, p := range nl.PIPos {
		if !onEdge(p) {
			t.Errorf("PI %s pad %v off boundary", nl.PINames[i], p)
		}
	}
	for _, po := range nl.POs {
		if !onEdge(po.Pad) {
			t.Errorf("PO %s pad %v off boundary", po.Name, po.Pad)
		}
	}
}

func TestSnapToBoundary(t *testing.T) {
	cases := []struct {
		in, want geom.Point
	}{
		{geom.Point{X: 1, Y: 5}, geom.Point{X: 0, Y: 5}},
		{geom.Point{X: 9, Y: 5}, geom.Point{X: 10, Y: 5}},
		{geom.Point{X: 5, Y: 1}, geom.Point{X: 5, Y: 0}},
		{geom.Point{X: 5, Y: 9}, geom.Point{X: 5, Y: 10}},
	}
	for _, tc := range cases {
		if got := snapToBoundary(tc.in, 10, 10); got != tc.want {
			t.Errorf("snap(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestLayoutPreservesFunction(t *testing.T) {
	// The backend moves cells around but must not alter connectivity.
	p, _ := bench.ProfileByName("misex1")
	src := bench.Generate(p)
	dres, err := decomp.Premap(src)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := mis.Map(dres.Inchoate, library.Big(), mis.DefaultOptions(mis.ModeArea))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Place(nl, library.Big(), DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for k := 0; k < 16; k++ {
		in := make(map[string]bool)
		for _, pi := range src.PIs {
			in[src.Nodes[pi].Name] = rng.Intn(2) == 1
		}
		want, _ := src.Eval(in)
		got, err := nl.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		for name := range want {
			if want[name] != got[name] {
				t.Fatalf("layout changed function at %s", name)
			}
		}
	}
}

func TestEmptyNetlistRejected(t *testing.T) {
	nl := &netlist.Netlist{Name: "empty"}
	if _, err := Place(nl, library.Big(), DefaultOptions()); err == nil {
		t.Error("empty netlist accepted")
	}
}

func TestAnnealProducesLegalLayout(t *testing.T) {
	lib := library.Big()
	nl := misNetlist(t, "C432")
	opt := DefaultOptions()
	opt.Anneal = true
	res, err := Place(nl, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Legality: no overlaps within any row.
	byY := map[float64][]*netlist.Cell{}
	for _, c := range nl.Cells {
		byY[c.Pos.Y] = append(byY[c.Pos.Y], c)
	}
	for y, cells := range byY {
		for i := range cells {
			for j := i + 1; j < len(cells); j++ {
				li, hi := cells[i].Pos.X-cells[i].Gate.Width/2, cells[i].Pos.X+cells[i].Gate.Width/2
				lj, hj := cells[j].Pos.X-cells[j].Gate.Width/2, cells[j].Pos.X+cells[j].Gate.Width/2
				if li < hj-1e-6 && lj < hi-1e-6 {
					t.Fatalf("row %v: overlap after anneal", y)
				}
			}
		}
	}
	if res.TotalWirelength <= 0 {
		t.Error("degenerate annealed layout")
	}
}

func TestAnnealNotWorseThanGreedy(t *testing.T) {
	lib := library.Big()
	nlG := misNetlist(t, "C880")
	nlA := misNetlist(t, "C880")
	g, err := Place(nlG, lib, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	optA := DefaultOptions()
	optA.Anneal = true
	a, err := Place(nlA, lib, optA)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalWirelength > g.TotalWirelength*1.05 {
		t.Errorf("anneal clearly worse: %.0f vs greedy %.0f",
			a.TotalWirelength, g.TotalWirelength)
	}
	t.Logf("greedy %.0f µm, anneal %.0f µm", g.TotalWirelength, a.TotalWirelength)
}

func TestAnnealDeterministic(t *testing.T) {
	lib := library.Big()
	nl1 := misNetlist(t, "misex1")
	nl2 := misNetlist(t, "misex1")
	opt := DefaultOptions()
	opt.Anneal = true
	opt.AnnealSeed = 7
	r1, err := Place(nl1, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Place(nl2, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalWirelength != r2.TotalWirelength {
		t.Errorf("anneal not deterministic: %.2f vs %.2f", r1.TotalWirelength, r2.TotalWirelength)
	}
}
