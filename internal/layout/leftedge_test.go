package layout

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAssignTracksSimple(t *testing.T) {
	// Two overlapping spans need two tracks; a third disjoint span reuses
	// track 0.
	spans := []Span{{0, 10}, {5, 15}, {11, 20}}
	tracks, n := AssignTracks(spans)
	if n != 2 {
		t.Fatalf("tracks = %d, want 2", n)
	}
	if tracks[0] == tracks[1] {
		t.Error("overlapping spans share a track")
	}
	if tracks[2] != tracks[0] {
		t.Error("disjoint span did not reuse track 0")
	}
}

func TestAssignTracksValid(t *testing.T) {
	// No two spans on the same track may overlap (open intervals at the
	// exact touch point are allowed to share only when strictly apart).
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		spans := make([]Span, n)
		for i := range spans {
			lo := rng.Float64() * 100
			spans[i] = Span{lo, lo + rng.Float64()*30}
		}
		tracks, _ := AssignTracks(spans)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if tracks[i] != tracks[j] {
					continue
				}
				if spans[i].Lo < spans[j].Hi && spans[j].Lo < spans[i].Hi {
					t.Fatalf("trial %d: spans %v and %v share track %d",
						trial, spans[i], spans[j], tracks[i])
				}
			}
		}
	}
}

// Property: the left-edge algorithm is optimal for interval graphs — the
// track count equals the peak density, which validates the chip-height
// model (channel height = density × pitch) against an actual router.
func TestLeftEdgeMatchesDensity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		spans := make([]Span, n)
		for i := range spans {
			lo := float64(rng.Intn(50))
			spans[i] = Span{lo, lo + 1 + float64(rng.Intn(30))}
		}
		_, tracks := AssignTracks(spans)
		return tracks == spanDensity(spans)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestAssignTracksEmpty(t *testing.T) {
	tracks, n := AssignTracks(nil)
	if len(tracks) != 0 || n != 0 {
		t.Error("empty channel not empty")
	}
}
