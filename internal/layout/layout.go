// Package layout is the physical-design backend both pipelines share
// (paper §5: "In both cases we use the same placement, pin assignment and
// routing tools"): a standard-cell row placer with greedy improvement in
// the spirit of TimberWolf, and a channel-density routing model standing in
// for the TimberWolf global router + YACR channel router. It turns a
// mapped netlist into the three quantities the paper's Table 1 reports:
// active cell area, final chip area after routing, and total
// interconnection length.
package layout

import (
	"fmt"
	"math"
	"sort"

	"lily/internal/geom"
	"lily/internal/library"
	"lily/internal/logic"
	"lily/internal/netlist"
	"lily/internal/place"
	"lily/internal/wire"
)

// Options tunes the backend.
type Options struct {
	// SwapPasses is the number of greedy improvement sweeps over the rows.
	SwapPasses int
	// WireModel estimates the final routed length of each net.
	WireModel wire.Model
	// Place configures the from-scratch global placement used for
	// netlists without seed positions (the MIS pipeline).
	Place place.Config
	// ChannelSamples is unused by the interval-sweep density computation
	// but kept for ablation of sampled density models.
	ChannelSamples int
	// Anneal runs a seeded simulated-annealing refinement after the
	// greedy passes — closer to the TimberWolf backend the paper used,
	// at a runtime cost.
	Anneal bool
	// AnnealSeed makes annealing runs reproducible (default 1).
	AnnealSeed int64
}

// DefaultOptions returns the backend configuration shared by all
// experiments.
func DefaultOptions() Options {
	return Options{
		SwapPasses: 4,
		WireModel:  wire.ModelSpanningTree,
		Place:      place.DefaultConfig(),
	}
}

// Result reports the finished layout.
type Result struct {
	// ChipWidth and ChipHeight are the die dimensions in µm after
	// channel heights are folded in.
	ChipWidth, ChipHeight float64
	// ActiveArea is the summed gate area (µm²).
	ActiveArea float64
	// Rows is the number of cell rows.
	Rows int
	// ChannelDensities holds the peak density (tracks) of each routing
	// channel, bottom to top (Rows+1 entries).
	ChannelDensities []int
	// TotalWirelength is the estimated routed length over all nets (µm).
	TotalWirelength float64
	// Netlist is the input netlist with legalized cell positions.
	Netlist *netlist.Netlist
}

// ChipArea returns the die area in µm².
func (r *Result) ChipArea() float64 { return r.ChipWidth * r.ChipHeight }

// ChipAreaMM2 returns the die area in mm², the paper's unit.
func (r *Result) ChipAreaMM2() float64 { return r.ChipArea() / 1e6 }

// ActiveAreaMM2 returns the active cell area in mm².
func (r *Result) ActiveAreaMM2() float64 { return r.ActiveArea / 1e6 }

// WirelengthMM returns the interconnect length in mm.
func (r *Result) WirelengthMM() float64 { return r.TotalWirelength / 1e3 }

// Place runs the backend. If the netlist carries seed positions (Lily's
// constructive placement) they steer row assignment; otherwise a global
// placement of the mapped netlist is computed first (the MIS pipeline).
func Place(nl *netlist.Netlist, lib *library.Library, opt Options) (*Result, error) {
	if len(nl.Cells) == 0 {
		return nil, fmt.Errorf("layout: empty netlist")
	}
	if opt.SwapPasses < 0 {
		return nil, fmt.Errorf("layout: negative swap passes")
	}
	if !HasSeedPositions(nl) {
		if err := GlobalPlace(nl, lib, opt.Place); err != nil {
			return nil, err
		}
	}
	res := &Result{Netlist: nl}
	for _, c := range nl.Cells {
		res.ActiveArea += c.Gate.Area
	}

	rows := buildRows(nl, lib)
	res.Rows = len(rows)
	improveRows(nl, rows, lib, opt.SwapPasses)
	if opt.Anneal {
		cfg := defaultAnneal()
		if opt.AnnealSeed != 0 {
			cfg.seed = opt.AnnealSeed
		}
		annealRows(nl, rows, lib, cfg)
		improveRows(nl, rows, lib, 2) // greedy cleanup after the anneal
	}
	chipW := finalizeRows(nl, rows, lib)

	dens := channelDensities(nl, rows, lib, chipW)
	res.ChannelDensities = dens
	chipH := float64(len(rows)) * lib.RowHeight
	for _, d := range dens {
		chipH += float64(d) * lib.WirePitch
	}
	res.ChipWidth, res.ChipHeight = chipW, chipH

	// Re-project pads onto the final chip boundary and stack rows with
	// their channel offsets before measuring wirelength.
	applyChannelOffsets(nl, rows, dens, lib)
	projectPads(nl, chipW, chipH)

	for _, net := range nl.Nets() {
		res.TotalWirelength += wire.NetLength(opt.WireModel, nl.NetPins(net))
	}
	return res, nil
}

// HasSeedPositions reports whether any cell carries a placement position
// (Lily netlists do; freshly mapped MIS netlists do not).
func HasSeedPositions(nl *netlist.Netlist) bool {
	for _, c := range nl.Cells {
		if c.Pos != (geom.Point{}) {
			return true
		}
	}
	return false
}

// GlobalPlace runs the quadratic placer on the mapped netlist by
// expressing it as a logic network (gate functions are irrelevant to
// placement; only connectivity and cell widths matter). Cell positions,
// PI positions, and PO pads are filled in.
func GlobalPlace(nl *netlist.Netlist, lib *library.Library, cfg place.Config) error {
	g := logic.New(nl.Name)
	piID := make([]logic.NodeID, len(nl.PINames))
	for i, name := range nl.PINames {
		piID[i] = g.AddPI(name).ID
	}
	order, err := nl.TopoOrder()
	if err != nil {
		return err
	}
	cellID := make([]logic.NodeID, len(nl.Cells))
	widths := make(map[logic.NodeID]float64)
	refID := func(r netlist.Ref) logic.NodeID {
		if r.IsPI {
			return piID[r.Index]
		}
		return cellID[r.Index]
	}
	for _, ci := range order {
		c := nl.Cells[ci]
		fanins := make([]logic.NodeID, len(c.Inputs))
		for i, r := range c.Inputs {
			fanins[i] = refID(r)
		}
		nd := g.AddLogic(c.Name, fanins, logic.OrSOP(len(fanins)))
		cellID[ci] = nd.ID
		widths[nd.ID] = c.Gate.Width
	}
	for _, po := range nl.POs {
		g.MarkPO(refID(po.Driver), po.Name)
	}
	pr, err := place.Global(g, func(id logic.NodeID) float64 { return widths[id] }, lib.RowHeight, cfg)
	if err != nil {
		return err
	}
	for ci := range nl.Cells {
		nl.Cells[ci].Pos = pr.Pos[cellID[ci]]
	}
	for i := range nl.PINames {
		nl.PIPos[i] = pr.Pos[piID[i]]
	}
	for i := range nl.POs {
		nl.POs[i].Pad = pr.POPads[nl.POs[i].Name]
	}
	return nil
}

// row holds an ordered list of cell indices.
type row struct {
	cells []int
	width float64
}

// buildRows assigns cells to rows by their seed y-coordinate and orders
// each row by seed x.
func buildRows(nl *netlist.Netlist, lib *library.Library) []*row {
	totalW := 0.0
	for _, c := range nl.Cells {
		totalW += c.Gate.Width
	}
	// Aim for a square die: rows × rowPitch ≈ totalW / rows, with the row
	// pitch inflated by an expected one-rowHeight channel.
	pitch := 2 * lib.RowHeight
	numRows := int(math.Round(math.Sqrt(totalW / pitch)))
	if numRows < 1 {
		numRows = 1
	}
	capacity := totalW / float64(numRows) * 1.05

	order := make([]int, len(nl.Cells))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		pa, pb := nl.Cells[order[a]].Pos, nl.Cells[order[b]].Pos
		if pa.Y < pb.Y {
			return true
		}
		if pa.Y > pb.Y {
			return false
		}
		return pa.X < pb.X
	})
	rows := make([]*row, 1, numRows)
	rows[0] = &row{}
	for _, ci := range order {
		r := rows[len(rows)-1]
		if r.width+nl.Cells[ci].Gate.Width > capacity && len(rows) < numRows {
			r = &row{}
			rows = append(rows, r)
		}
		r.cells = append(r.cells, ci)
		r.width += nl.Cells[ci].Gate.Width
	}
	for _, r := range rows {
		sort.SliceStable(r.cells, func(a, b int) bool {
			return nl.Cells[r.cells[a]].Pos.X < nl.Cells[r.cells[b]].Pos.X
		})
	}
	return rows
}

// legalize assigns abutted x positions and the row's y to every cell.
func legalize(nl *netlist.Netlist, rows []*row, lib *library.Library) {
	for ri, r := range rows {
		x := 0.0
		y := (float64(ri) + 0.5) * lib.RowHeight
		for _, ci := range r.cells {
			c := nl.Cells[ci]
			c.Pos = geom.Point{X: x + c.Gate.Width/2, Y: y}
			x += c.Gate.Width
		}
		r.width = x
	}
}

// netIndex is the sparse connectivity index shared by the greedy and
// annealing refiners. The per-cell net lists are a CSR array (two int32
// slices instead of a slice-of-slices), the affected-set query replaces
// a per-move map with a stamp array, and the half-perimeter evaluator
// folds min/max inline instead of materializing a pin slice — at the
// 500k-gate frontier the refiners evaluate hundreds of millions of
// candidate moves, and the per-move allocations were the dominant cost.
type netIndex struct {
	nl   *netlist.Netlist
	nets []netlist.Net
	// off/ids: cell c drives or sinks nets ids[off[c]:off[c+1]]. A net
	// with k pins contributes k entries, so even the frontier tops out
	// around 4e6 — far under the int32 ceiling.
	off   []int32
	ids   []int32
	stamp []int32 // last epoch each net entered an affected set
	epoch int32
	buf   []int // affected-set scratch, reused across moves
}

func newNetIndex(nl *netlist.Netlist) *netIndex {
	ix := &netIndex{nl: nl, nets: nl.Nets()}
	deg := make([]int32, len(nl.Cells))
	for _, net := range ix.nets {
		for _, s := range net.Sinks {
			deg[s.Cell]++
		}
		if !net.Driver.IsPI {
			deg[net.Driver.Index]++
		}
	}
	ix.off = make([]int32, len(nl.Cells)+1)
	for i, d := range deg {
		ix.off[i+1] = ix.off[i] + d
	}
	ix.ids = make([]int32, ix.off[len(nl.Cells)])
	pos := make([]int32, len(nl.Cells))
	copy(pos, ix.off[:len(nl.Cells)])
	for ni, net := range ix.nets {
		for _, s := range net.Sinks {
			ix.ids[pos[s.Cell]] = int32(ni)
			pos[s.Cell]++
		}
		if !net.Driver.IsPI {
			ix.ids[pos[net.Driver.Index]] = int32(ni)
			pos[net.Driver.Index]++
		}
	}
	ix.stamp = make([]int32, len(ix.nets))
	for i := range ix.stamp {
		ix.stamp[i] = -1
	}
	return ix
}

// hp returns the net's half-perimeter at the current positions without
// allocating: the min/max fold is the same arithmetic as
// geom.Enclosing(pins).HalfPerimeter(), bit for bit.
func (ix *netIndex) hp(ni int) float64 {
	net := &ix.nets[ni]
	p := ix.nl.DriverPos(net.Driver)
	minX, maxX, minY, maxY := p.X, p.X, p.Y, p.Y
	ext := func(p geom.Point) {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	for _, s := range net.Sinks {
		ext(ix.nl.Cells[s.Cell].Pos)
	}
	for _, p := range net.POPads {
		ext(p)
	}
	return (maxX - minX) + (maxY - minY)
}

// affected returns the deduplicated union of the two cells' nets in
// first-occurrence order (a's nets, then b's). The returned slice is
// reused by the next call.
func (ix *netIndex) affected(a, b int) []int {
	ix.epoch++
	ix.buf = ix.buf[:0]
	for _, c := range [2]int{a, b} {
		for _, ni := range ix.ids[ix.off[c]:ix.off[c+1]] {
			if ix.stamp[ni] != ix.epoch {
				ix.stamp[ni] = ix.epoch
				ix.buf = append(ix.buf, int(ni))
			}
		}
	}
	return ix.buf
}

// totalHP sums hp over the given nets in slice order.
func (ix *netIndex) totalHP(ns []int) float64 {
	t := 0.0
	for _, ni := range ns {
		t += ix.hp(ni)
	}
	return t
}

// improveRows runs greedy passes: adjacent swaps inside rows and
// width-compatible exchanges between vertically neighboring rows,
// accepting any move that shrinks the half-perimeter wirelength of the
// affected nets (a zero-temperature TimberWolf).
func improveRows(nl *netlist.Netlist, rows []*row, lib *library.Library, passes int) {
	legalize(nl, rows, lib)
	ix := newNetIndex(nl)

	for pass := 0; pass < passes; pass++ {
		improved := false
		// Adjacent swaps within each row.
		for _, r := range rows {
			for i := 0; i+1 < len(r.cells); i++ {
				a, b := r.cells[i], r.cells[i+1]
				ns := ix.affected(a, b)
				before := ix.totalHP(ns)
				swapInRow(nl, r, i)
				if ix.totalHP(ns) < before-1e-9 {
					improved = true
				} else {
					swapInRow(nl, r, i) // revert
				}
			}
		}
		// Width-compatible vertical exchanges between adjacent rows.
		for ri := 0; ri+1 < len(rows); ri++ {
			lower, upper := rows[ri], rows[ri+1]
			for li, a := range lower.cells {
				ui := nearestByX(nl, upper, nl.Cells[a].Pos.X)
				if ui < 0 {
					continue
				}
				b := upper.cells[ui]
				wa, wb := nl.Cells[a].Gate.Width, nl.Cells[b].Gate.Width
				if math.Abs(wa-wb) > 0.3*math.Max(wa, wb) {
					continue
				}
				ns := ix.affected(a, b)
				before := ix.totalHP(ns)
				pa, pb := nl.Cells[a].Pos, nl.Cells[b].Pos
				nl.Cells[a].Pos, nl.Cells[b].Pos = geom.Point{X: pb.X, Y: pb.Y}, geom.Point{X: pa.X, Y: pa.Y}
				if ix.totalHP(ns) < before-1e-9 {
					lower.cells[li], upper.cells[ui] = b, a
					improved = true
				} else {
					nl.Cells[a].Pos, nl.Cells[b].Pos = pa, pb
				}
			}
		}
		if !improved {
			break
		}
	}
	legalize(nl, rows, lib)
}

// swapInRow exchanges cells i and i+1 of a row and recomputes their x.
func swapInRow(nl *netlist.Netlist, r *row, i int) {
	a, b := r.cells[i], r.cells[i+1]
	ca, cb := nl.Cells[a], nl.Cells[b]
	left := ca.Pos.X - ca.Gate.Width/2
	r.cells[i], r.cells[i+1] = b, a
	cb.Pos = geom.Point{X: left + cb.Gate.Width/2, Y: cb.Pos.Y}
	ca.Pos = geom.Point{X: left + cb.Gate.Width + ca.Gate.Width/2, Y: ca.Pos.Y}
}

// nearestByX returns the index in r.cells of the cell whose x-center is
// nearest to x. Rows are kept sorted by ascending Pos.X — legalize
// establishes the order and every accepted refiner move preserves it —
// so a binary search finds the neighborhood in O(log n) where the old
// linear scan made inter-row exchange passes O(n^1.5) in the cell count.
// Ties resolve to the leftmost index, exactly as the scan did.
func nearestByX(nl *netlist.Netlist, r *row, x float64) int {
	n := len(r.cells)
	if n == 0 {
		return -1
	}
	i := sort.Search(n, func(i int) bool { return nl.Cells[r.cells[i]].Pos.X >= x })
	best := -1
	bestD := math.MaxFloat64
	if i > 0 {
		best, bestD = i-1, x-nl.Cells[r.cells[i-1]].Pos.X
	}
	if i < n {
		if d := nl.Cells[r.cells[i]].Pos.X - x; d < bestD {
			best = i
		}
	}
	// Cells sharing an x-center sit adjacent in the sorted row; step to
	// the first of the run so ties land on the smallest index.
	//lint:exact duplicate detection must be bit-equal to reproduce the linear scan's first-minimal-index answer
	for best > 0 && nl.Cells[r.cells[best-1]].Pos.X == nl.Cells[r.cells[best]].Pos.X {
		best--
	}
	return best
}

// finalizeRows re-legalizes and returns the chip width.
func finalizeRows(nl *netlist.Netlist, rows []*row, lib *library.Library) float64 {
	legalize(nl, rows, lib)
	w := 0.0
	for _, r := range rows {
		if r.width > w {
			w = r.width
		}
	}
	return w
}

// channelDensities computes, for each of the Rows+1 routing channels, the
// peak overlap of the horizontal spans of the nets routed through it.
// A net spanning rows r1..r2 contributes its x-span to every channel
// between consecutive rows it crosses plus the channel adjacent to its
// terminals' rows; pads contribute at the bottom or top boundary channel.
func channelDensities(nl *netlist.Netlist, rows []*row, lib *library.Library, chipW float64) []int {
	numCh := len(rows) + 1
	type span struct{ lo, hi float64 }
	chSpans := make([][]span, numCh)

	rowOf := make([]int, len(nl.Cells))
	for ri, r := range rows {
		for _, ci := range r.cells {
			rowOf[ci] = ri
		}
	}
	chipH := float64(len(rows)) * lib.RowHeight
	for _, net := range nl.Nets() {
		minRow, maxRow := math.MaxInt32, -1
		lo, hi := math.MaxFloat64, -math.MaxFloat64
		touch := func(r int, x float64) {
			if r < minRow {
				minRow = r
			}
			if r > maxRow {
				maxRow = r
			}
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if !net.Driver.IsPI {
			touch(rowOf[net.Driver.Index], nl.Cells[net.Driver.Index].Pos.X)
		} else {
			p := nl.PIPos[net.Driver.Index]
			touch(padRow(p, chipH, len(rows)), clamp(p.X, 0, chipW))
		}
		for _, s := range net.Sinks {
			touch(rowOf[s.Cell], nl.Cells[s.Cell].Pos.X)
		}
		for _, p := range net.POPads {
			touch(padRow(p, chipH, len(rows)), clamp(p.X, 0, chipW))
		}
		if maxRow < 0 || hi <= lo && minRow == maxRow {
			continue
		}
		// The net occupies the channels between its extreme rows; a net
		// confined to one row uses the channel above it.
		loCh, hiCh := minRow, maxRow
		if loCh == hiCh {
			hiCh = loCh + 1
		}
		for ch := loCh; ch <= hiCh && ch < numCh; ch++ {
			if ch < 0 {
				continue
			}
			chSpans[ch] = append(chSpans[ch], span{lo, hi})
		}
	}

	dens := make([]int, numCh)
	for ch, spans := range chSpans {
		type ev struct {
			x     float64
			delta int
		}
		evs := make([]ev, 0, 2*len(spans))
		for _, s := range spans {
			evs = append(evs, ev{s.lo, 1}, ev{s.hi, -1})
		}
		sort.Slice(evs, func(a, b int) bool {
			if evs[a].x < evs[b].x {
				return true
			}
			if evs[a].x > evs[b].x {
				return false
			}
			return evs[a].delta > evs[b].delta // open before close at ties
		})
		cur, max := 0, 0
		for _, e := range evs {
			cur += e.delta
			if cur > max {
				max = cur
			}
		}
		dens[ch] = max
	}
	return dens
}

// padRow maps a pad y-coordinate to a pseudo row index so boundary nets
// enter the bottom (row -1 → clamped to 0) or top channel.
func padRow(p geom.Point, chipH float64, numRows int) int {
	if p.Y <= chipH/2 {
		return 0
	}
	return numRows - 1
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// applyChannelOffsets stacks rows with their channel heights so final cell
// positions reflect the routed chip.
func applyChannelOffsets(nl *netlist.Netlist, rows []*row, dens []int, lib *library.Library) {
	y := float64(dens[0]) * lib.WirePitch // bottom channel
	for ri, r := range rows {
		for _, ci := range r.cells {
			c := nl.Cells[ci]
			c.Pos = geom.Point{X: c.Pos.X, Y: y + lib.RowHeight/2}
		}
		y += lib.RowHeight
		if ri+1 < len(dens) {
			y += float64(dens[ri+1]) * lib.WirePitch
		}
	}
}

// projectPads rescales pad positions onto the final chip boundary.
func projectPads(nl *netlist.Netlist, chipW, chipH float64) {
	var maxX, maxY float64
	for _, p := range nl.PIPos {
		maxX, maxY = math.Max(maxX, p.X), math.Max(maxY, p.Y)
	}
	for _, po := range nl.POs {
		maxX, maxY = math.Max(maxX, po.Pad.X), math.Max(maxY, po.Pad.Y)
	}
	if maxX <= 0 {
		maxX = 1
	}
	if maxY <= 0 {
		maxY = 1
	}
	proj := func(p geom.Point) geom.Point {
		return geom.Point{X: clamp(p.X/maxX, 0, 1) * chipW, Y: clamp(p.Y/maxY, 0, 1) * chipH}
	}
	for i := range nl.PIPos {
		nl.PIPos[i] = snapToBoundary(proj(nl.PIPos[i]), chipW, chipH)
	}
	for i := range nl.POs {
		nl.POs[i].Pad = snapToBoundary(proj(nl.POs[i].Pad), chipW, chipH)
	}
}

// snapToBoundary moves a point to the nearest chip edge.
func snapToBoundary(p geom.Point, w, h float64) geom.Point {
	dLeft, dRight := p.X, w-p.X
	dBot, dTop := p.Y, h-p.Y
	min := math.Min(math.Min(dLeft, dRight), math.Min(dBot, dTop))
	switch min {
	case dLeft:
		return geom.Point{X: 0, Y: p.Y}
	case dRight:
		return geom.Point{X: w, Y: p.Y}
	case dBot:
		return geom.Point{X: p.X, Y: 0}
	default:
		return geom.Point{X: p.X, Y: h}
	}
}
