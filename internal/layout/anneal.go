package layout

import (
	"math"
	"math/rand"
	"sort"

	"lily/internal/library"
	"lily/internal/netlist"
)

// annealConfig tunes the simulated-annealing refinement.
type annealConfig struct {
	moves   int     // proposed moves per temperature step
	steps   int     // temperature steps
	t0      float64 // initial temperature as a fraction of mean net HPWL
	cooling float64 // geometric cooling factor
	seed    int64
}

func defaultAnneal() annealConfig {
	return annealConfig{moves: 400, steps: 60, t0: 0.5, cooling: 0.92, seed: 1}
}

// annealRows runs a deterministic seeded simulated annealing over the row
// assignment — the TimberWolf-style refinement of the paper's backend —
// proposing in-row adjacent swaps and width-compatible inter-row exchanges,
// accepting uphill moves with Metropolis probability. Rows stay legalized
// throughout (swaps recompute the affected x positions).
func annealRows(nl *netlist.Netlist, rows []*row, lib *library.Library, cfg annealConfig) {
	legalize(nl, rows, lib)
	ix := newNetIndex(nl)
	affected := func(a, b int) []int {
		out := ix.affected(a, b)
		sort.Ints(out) // fixed summation order keeps runs bit-reproducible
		return out
	}
	total := ix.totalHP

	// Initial temperature from the mean net length.
	mean := 0.0
	for ni := range ix.nets {
		mean += ix.hp(ni)
	}
	if len(ix.nets) > 0 {
		mean /= float64(len(ix.nets))
	}
	temp := cfg.t0 * math.Max(mean, 1)
	//lint:impure generator is seeded from cfg.seed (fixed per flow run), so the move sequence is reproducible
	rng := rand.New(rand.NewSource(cfg.seed))

	for step := 0; step < cfg.steps; step++ {
		for mv := 0; mv < cfg.moves; mv++ {
			if rng.Intn(2) == 0 {
				// In-row adjacent swap.
				r := rows[rng.Intn(len(rows))]
				if len(r.cells) < 2 {
					continue
				}
				i := rng.Intn(len(r.cells) - 1)
				a, b := r.cells[i], r.cells[i+1]
				ns := affected(a, b)
				before := total(ns)
				swapInRow(nl, r, i)
				delta := total(ns) - before
				if !accept(delta, temp, rng) {
					swapInRow(nl, r, i)
				}
			} else if len(rows) >= 2 {
				// Inter-row exchange of width-compatible cells.
				ri := rng.Intn(len(rows) - 1)
				lower, upper := rows[ri], rows[ri+1]
				if len(lower.cells) == 0 || len(upper.cells) == 0 {
					continue
				}
				li := rng.Intn(len(lower.cells))
				a := lower.cells[li]
				ui := nearestByX(nl, upper, nl.Cells[a].Pos.X)
				if ui < 0 {
					continue
				}
				b := upper.cells[ui]
				wa, wb := nl.Cells[a].Gate.Width, nl.Cells[b].Gate.Width
				if math.Abs(wa-wb) > 0.3*math.Max(wa, wb) {
					continue
				}
				ns := affected(a, b)
				before := total(ns)
				pa, pb := nl.Cells[a].Pos, nl.Cells[b].Pos
				nl.Cells[a].Pos, nl.Cells[b].Pos = pb, pa
				lower.cells[li], upper.cells[ui] = b, a
				delta := total(ns) - before
				if !accept(delta, temp, rng) {
					nl.Cells[a].Pos, nl.Cells[b].Pos = pa, pb
					lower.cells[li], upper.cells[ui] = a, b
				}
			}
		}
		temp *= cfg.cooling
	}
	legalize(nl, rows, lib)
}

func accept(delta, temp float64, rng *rand.Rand) bool {
	if delta <= 0 {
		return true
	}
	if temp <= 0 {
		return false
	}
	return rng.Float64() < math.Exp(-delta/temp)
}
