package layout

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"lily/internal/geom"
	"lily/internal/library"
	"lily/internal/netlist"
)

// linearNearestByX is the O(n) reference the binary-search nearestByX
// must reproduce exactly: first index with strictly minimal |x - center|.
func linearNearestByX(nl *netlist.Netlist, r *row, x float64) int {
	best, bestD := -1, math.MaxFloat64
	for i, ci := range r.cells {
		if d := math.Abs(nl.Cells[ci].Pos.X - x); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// TestNearestByXMatchesLinear: the binary search must agree with the
// linear scan on every query, including exact-center hits, midpoints
// between neighbors (distance ties resolve leftmost), duplicate
// x-centers, queries off both ends, and the empty row.
func TestNearestByXMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(12)
		nl := &netlist.Netlist{}
		r := &row{}
		x := 0.0
		for i := 0; i < n; i++ {
			// Occasional zero step makes duplicate centers.
			if rng.Intn(4) != 0 {
				x += float64(rng.Intn(10) + 1)
			}
			nl.Cells = append(nl.Cells, &netlist.Cell{Pos: geom.Point{X: x, Y: 5}})
			r.cells = append(r.cells, i)
		}
		queries := []float64{-3, 0, x, x + 7, rng.Float64() * (x + 1)}
		for _, ci := range r.cells {
			c := nl.Cells[ci].Pos.X
			queries = append(queries, c, c-0.5, c+0.5)
		}
		// Midpoints between distinct neighbors: exact distance ties.
		for i := 0; i+1 < n; i++ {
			queries = append(queries, (nl.Cells[r.cells[i]].Pos.X+nl.Cells[r.cells[i+1]].Pos.X)/2)
		}
		for _, q := range queries {
			got, want := nearestByX(nl, r, q), linearNearestByX(nl, r, q)
			if got != want {
				centers := make([]float64, n)
				for i, ci := range r.cells {
					centers[i] = nl.Cells[ci].Pos.X
				}
				t.Fatalf("trial %d: nearestByX(%v, %g) = %d, linear scan = %d", trial, centers, q, got, want)
			}
		}
	}
}

// TestNetIndexMatchesNaive: the CSR index, the stamp-based affected set,
// and the allocation-free hp must reproduce the naive formulations — hp
// bit-identical to Enclosing(NetPins()).HalfPerimeter(), and affected(a,b)
// equal as an ordered dedup union of the two cells' net lists.
func TestNetIndexMatchesNaive(t *testing.T) {
	nl := misNetlist(t, "C499")
	lib := library.Big()
	rows := buildRows(nl, lib)
	legalize(nl, rows, lib)
	ix := newNetIndex(nl)

	nets := nl.Nets()
	if len(nets) != len(ix.nets) {
		t.Fatalf("index holds %d nets, Nets() returns %d", len(ix.nets), len(nets))
	}
	for ni := range nets {
		want := geom.Enclosing(nl.NetPins(nets[ni])).HalfPerimeter()
		if got := ix.hp(ni); got != want {
			t.Fatalf("net %d: hp = %v, Enclosing.HalfPerimeter = %v (must be bit-identical)", ni, got, want)
		}
	}

	netsOf := make([][]int, len(nl.Cells))
	for ni, net := range nets {
		for _, s := range net.Sinks {
			netsOf[s.Cell] = append(netsOf[s.Cell], ni)
		}
		if !net.Driver.IsPI {
			netsOf[net.Driver.Index] = append(netsOf[net.Driver.Index], ni)
		}
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		a, b := rng.Intn(len(nl.Cells)), rng.Intn(len(nl.Cells))
		seen := map[int]bool{}
		var want []int
		for _, ni := range netsOf[a] {
			if !seen[ni] {
				seen[ni] = true
				want = append(want, ni)
			}
		}
		for _, ni := range netsOf[b] {
			if !seen[ni] {
				seen[ni] = true
				want = append(want, ni)
			}
		}
		got := ix.affected(a, b)
		if len(got) != len(want) {
			t.Fatalf("affected(%d,%d) = %v, want %v", a, b, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("affected(%d,%d) = %v, want %v (order matters)", a, b, got, want)
			}
		}
	}

	// CSR per-cell lists must be exactly the naive slice-of-slices.
	for c := range nl.Cells {
		got := ix.ids[ix.off[c]:ix.off[c+1]]
		if len(got) != len(netsOf[c]) {
			t.Fatalf("cell %d: CSR degree %d, want %d", c, len(got), len(netsOf[c]))
		}
		gi := make([]int, len(got))
		for i, v := range got {
			gi[i] = int(v)
		}
		sort.Ints(gi)
		wi := append([]int(nil), netsOf[c]...)
		sort.Ints(wi)
		for i := range gi {
			if gi[i] != wi[i] {
				t.Fatalf("cell %d: CSR nets %v, want %v", c, gi, wi)
			}
		}
	}
}
