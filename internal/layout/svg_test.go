package layout

import (
	"bytes"
	"strings"
	"testing"

	"lily/internal/library"
)

func TestWriteSVG(t *testing.T) {
	lib := library.Big()
	nl := misNetlist(t, "misex1")
	res, err := Place(nl, lib, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSVG(&buf, res, SVGOptions{DrawNets: true, MaxNets: 20}); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Error("not a well-formed SVG document")
	}
	// One rect per cell plus the chip outline.
	if got := strings.Count(svg, "<rect"); got != len(nl.Cells)+1 {
		t.Errorf("%d rects for %d cells", got, len(nl.Cells))
	}
	// One circle per pad.
	if got := strings.Count(svg, "<circle"); got != len(nl.PINames)+len(nl.POs) {
		t.Errorf("%d circles for %d pads", got, len(nl.PINames)+len(nl.POs))
	}
	// Net paths drawn and capped.
	paths := strings.Count(svg, "<path")
	if paths == 0 {
		t.Error("no nets drawn")
	}
	// Titles make cells identifiable.
	if !strings.Contains(svg, "<title>") {
		t.Error("no tooltips")
	}
}

func TestWriteSVGNoNets(t *testing.T) {
	lib := library.Big()
	nl := misNetlist(t, "misex1")
	res, err := Place(nl, lib, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSVG(&buf, res, SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<path") {
		t.Error("nets drawn although disabled")
	}
}
