package wire

import (
	"math"
	"math/rand"
	"testing"

	"lily/internal/geom"
)

// Property-based tests over randomized pin sets with fixed seeds: every
// estimator invariant asserted here is mathematically true for rectilinear
// metrics (no wishful bounds), so a failure is a real regression.

// randPins draws n pins in a 1000×1000 window, with a bias toward
// coincident and collinear configurations (the degenerate cases that break
// naive geometric code).
func randPins(rng *rand.Rand, n int) []geom.Point {
	pins := make([]geom.Point, n)
	for i := range pins {
		switch rng.Intn(5) {
		case 1:
			if i > 0 { // duplicate an earlier pin
				pins[i] = pins[rng.Intn(i)]
				continue
			}
			fallthrough
		case 2:
			if i > 0 { // collinear with an earlier pin
				p := pins[rng.Intn(i)]
				if rng.Intn(2) == 0 {
					pins[i] = geom.Point{X: p.X, Y: rng.Float64() * 1000}
				} else {
					pins[i] = geom.Point{X: rng.Float64() * 1000, Y: p.Y}
				}
				continue
			}
			fallthrough
		default:
			pins[i] = geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		}
	}
	return pins
}

const propTrials = 300

// relTol returns an absolute tolerance scaled to the magnitude of the
// values being compared (float summation order differs between paths).
func relTol(vals ...float64) float64 {
	m := 1.0
	for _, v := range vals {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return 1e-9 * m
}

// The rectilinear estimator sandwich: HPWL ≤ RSMT ≤ RMST, and the
// HPWL-Steiner model never undercuts plain HPWL (ratio ≥ 1). Any spanning
// or Steiner tree must cross the full bounding box in both axes, so the
// half-perimeter is a true lower bound.
func TestPropEstimatorOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < propTrials; trial++ {
		n := 2 + rng.Intn(12)
		pins := randPins(rng, n)
		hp := HPWL(pins)
		rmst := RMST(pins)
		rsmt := RSMT(pins)
		steiner := NetLength(ModelHPWLSteiner, pins)
		tol := relTol(hp, rmst, rsmt)
		if hp > rmst+tol {
			t.Fatalf("trial %d: HPWL %v > RMST %v for %v", trial, hp, rmst, pins)
		}
		if hp > rsmt+tol {
			t.Fatalf("trial %d: HPWL %v > RSMT %v for %v", trial, hp, rsmt, pins)
		}
		if rsmt > rmst+tol {
			t.Fatalf("trial %d: RSMT %v > RMST %v (Steiner insertion made it worse)", trial, rsmt, rmst)
		}
		if steiner < hp-tol {
			t.Fatalf("trial %d: HPWL-Steiner %v < HPWL %v (ratio < 1?)", trial, steiner, hp)
		}
	}
}

// ChungHwangRatio is ≥ 1 everywhere and non-decreasing in the pin count.
func TestPropChungHwangMonotone(t *testing.T) {
	prev := 0.0
	for n := 0; n <= 200; n++ {
		k := ChungHwangRatio(n)
		if k < 1 {
			t.Fatalf("ratio(%d) = %v < 1", n, k)
		}
		if k < prev-1e-12 {
			t.Fatalf("ratio(%d) = %v < ratio(%d) = %v", n, k, n-1, prev)
		}
		prev = k
	}
}

// LengthXY must decompose NetLength: x + y equals the scalar estimate for
// both models (up to summation-order rounding).
func TestPropLengthXYDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < propTrials; trial++ {
		n := 2 + rng.Intn(10)
		pins := randPins(rng, n)
		for _, model := range []Model{ModelHPWLSteiner, ModelSpanningTree} {
			x, y := LengthXY(model, pins)
			if x < 0 || y < 0 {
				t.Fatalf("%v: negative component (%v, %v)", model, x, y)
			}
			total := NetLength(model, pins)
			if d := math.Abs(x + y - total); d > relTol(total) {
				t.Fatalf("%v trial %d: x+y = %v, NetLength = %v (Δ %g)", model, trial, x+y, total, d)
			}
		}
	}
}

// The pooled Scratch methods are documented to be bit-identical to the
// package-level functions: same algorithm, same visit order, recycled
// buffers. Assert exact equality, not approximate.
func TestPropScratchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := Get()
	defer Put(s)
	for trial := 0; trial < propTrials; trial++ {
		n := rng.Intn(14)
		pins := randPins(rng, n)
		if got, want := s.RMST(pins), RMST(pins); got != want {
			t.Fatalf("Scratch.RMST = %v, RMST = %v for %v", got, want, pins)
		}
		gx, gy := s.RMSTXY(pins)
		wx, wy := rmstXY(pins)
		if gx != wx || gy != wy {
			t.Fatalf("Scratch.RMSTXY = (%v,%v), rmstXY = (%v,%v)", gx, gy, wx, wy)
		}
		for _, model := range []Model{ModelHPWLSteiner, ModelSpanningTree} {
			if got, want := s.NetLength(model, pins), NetLength(model, pins); got != want {
				t.Fatalf("Scratch.NetLength(%v) = %v, want %v", model, got, want)
			}
			sx, sy := s.LengthXY(model, pins)
			px, py := LengthXY(model, pins)
			if sx != px || sy != py {
				t.Fatalf("Scratch.LengthXY(%v) = (%v,%v), want (%v,%v)", model, sx, sy, px, py)
			}
		}
		// Rectangle fast paths against the pin-list formulation.
		r := geom.Enclosing(pins)
		if got, want := HPWLNetLength(r, len(pins)), NetLength(ModelHPWLSteiner, pins); got != want {
			t.Fatalf("HPWLNetLength = %v, NetLength = %v", got, want)
		}
		fx, fy := HPWLLengthXY(r, len(pins))
		px, py := LengthXY(ModelHPWLSteiner, pins)
		if fx != px || fy != py {
			t.Fatalf("HPWLLengthXY = (%v,%v), LengthXY = (%v,%v)", fx, fy, px, py)
		}
	}
}

// Estimates are invariant under pin permutation (HPWL exactly — min/max —
// and MST totals up to summation order: all minimum spanning trees of a
// graph share the same total weight).
func TestPropPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < propTrials; trial++ {
		n := 2 + rng.Intn(10)
		pins := randPins(rng, n)
		perm := append([]geom.Point(nil), pins...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		if HPWL(pins) != HPWL(perm) {
			t.Fatalf("HPWL not permutation invariant: %v vs %v", HPWL(pins), HPWL(perm))
		}
		a, b := RMST(pins), RMST(perm)
		if math.Abs(a-b) > relTol(a, b) {
			t.Fatalf("RMST weight changed under permutation: %v vs %v for %v", a, b, pins)
		}
	}
}

// Translation shifts and uniform scaling act on the estimates exactly as
// the metric demands: invariance and linear scaling respectively.
func TestPropTranslationAndScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < propTrials; trial++ {
		n := 2 + rng.Intn(8)
		pins := randPins(rng, n)
		d := geom.Point{X: rng.Float64()*200 - 100, Y: rng.Float64()*200 - 100}
		k := 0.5 + rng.Float64()*3
		shifted := make([]geom.Point, n)
		scaled := make([]geom.Point, n)
		for i, p := range pins {
			shifted[i] = p.Add(d)
			scaled[i] = p.Scale(k)
		}
		base := RMST(pins)
		if got := RMST(shifted); math.Abs(got-base) > 1e-7*math.Max(1, base) {
			t.Fatalf("RMST not translation invariant: %v vs %v", got, base)
		}
		if got := RMST(scaled); math.Abs(got-k*base) > 1e-7*math.Max(1, k*base) {
			t.Fatalf("RMST not homogeneous: %v vs %v·%v", got, k, base)
		}
	}
}

// MedianPoint is the Manhattan-optimal location: no random probe point may
// beat its summed rectangle distance (§3.2 — the median minimizes the
// separable per-axis objective).
func TestPropMedianPointOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 150; trial++ {
		nr := 1 + rng.Intn(6)
		rects := make([]geom.Rect, nr)
		for i := range rects {
			p := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
			q := geom.Point{X: p.X + rng.Float64()*100, Y: p.Y + rng.Float64()*100}
			rects[i] = geom.RectAround(p).Extend(q)
		}
		opt := MedianPoint(rects)
		best := RectDistanceSum(opt, rects)
		for probe := 0; probe < 50; probe++ {
			p := geom.Point{X: rng.Float64() * 1200, Y: rng.Float64() * 1200}
			if d := RectDistanceSum(p, rects); d < best-relTol(best) {
				t.Fatalf("probe %v beats MedianPoint %v: %v < %v", p, opt, d, best)
			}
		}
	}
}

// RSMT never allocates Steiner points that worsen the tree and degrades
// gracefully to RMST outside its small-net range.
func TestPropRSMTBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(24) // crosses the n>16 fallback boundary
		pins := randPins(rng, n)
		rsmt := RSMT(pins)
		rmst := RMST(pins)
		if rsmt > rmst+relTol(rmst) {
			t.Fatalf("RSMT %v > RMST %v at n=%d", rsmt, rmst, n)
		}
		if n > 16 && rsmt != rmst {
			t.Fatalf("RSMT must fall back to RMST for n=%d: %v vs %v", n, rsmt, rmst)
		}
	}
}
