package wire

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lily/internal/geom"
)

func randPts(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	return pts
}

func TestHPWL(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 3, Y: 4}, {X: 1, Y: 1}}
	if got := HPWL(pts); got != 7 {
		t.Errorf("hpwl = %v", got)
	}
	if HPWL(nil) != 0 {
		t.Error("empty hpwl")
	}
}

func TestChungHwangRatio(t *testing.T) {
	if ChungHwangRatio(2) != 1 || ChungHwangRatio(3) != 1 {
		t.Error("ratio must be 1 for <=3 pins")
	}
	prev := 0.0
	for n := 2; n <= 40; n++ {
		r := ChungHwangRatio(n)
		if r < prev-1e-12 {
			t.Errorf("ratio not monotone at n=%d: %v < %v", n, r, prev)
		}
		prev = r
	}
	// Continuity at the table boundary.
	if d := math.Abs(ChungHwangRatio(11) - ChungHwangRatio(10)); d > 0.1 {
		t.Errorf("discontinuity at n=10..11: %v", d)
	}
}

func TestRMSTSimple(t *testing.T) {
	// Three collinear points: MST is the direct chain.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 10, Y: 0}}
	if got := RMST(pts); got != 10 {
		t.Errorf("rmst = %v, want 10", got)
	}
	// L-shape.
	pts = []geom.Point{{X: 0, Y: 0}, {X: 0, Y: 4}, {X: 3, Y: 4}}
	if got := RMST(pts); got != 7 {
		t.Errorf("rmst = %v, want 7", got)
	}
	if RMST(pts[:1]) != 0 {
		t.Error("single-pin rmst must be 0")
	}
}

// Kruskal reference implementation for cross-checking Prim.
func kruskalRMST(pts []geom.Point) float64 {
	n := len(pts)
	type edge struct {
		i, j int
		d    float64
	}
	var edges []edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, edge{i, j, pts[i].Manhattan(pts[j])})
		}
	}
	for a := range edges {
		for b := a + 1; b < len(edges); b++ {
			if edges[b].d < edges[a].d {
				edges[a], edges[b] = edges[b], edges[a]
			}
		}
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	total, used := 0.0, 0
	for _, e := range edges {
		ri, rj := find(e.i), find(e.j)
		if ri != rj {
			parent[ri] = rj
			total += e.d
			used++
			if used == n-1 {
				break
			}
		}
	}
	return total
}

func TestRMSTMatchesKruskal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		pts := randPts(rng, 2+rng.Intn(10))
		p, k := RMST(pts), kruskalRMST(pts)
		if math.Abs(p-k) > 1e-9 {
			t.Fatalf("prim %v != kruskal %v for %v", p, k, pts)
		}
	}
}

// Property: HPWL <= RMST (any spanning tree must traverse the bbox extents)
// and RSMT <= RMST (Steiner points only help).
func TestWirelengthOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randPts(rng, 2+rng.Intn(8))
		h, m, s := HPWL(pts), RMST(pts), RSMT(pts)
		return h <= m+1e-9 && s <= m+1e-9 && s >= h-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRSMTImprovesCross(t *testing.T) {
	// Four points in a cross: the Steiner point at the center saves
	// length versus the MST.
	pts := []geom.Point{{X: 0, Y: 5}, {X: 10, Y: 5}, {X: 5, Y: 0}, {X: 5, Y: 10}}
	m, s := RMST(pts), RSMT(pts)
	if s >= m {
		t.Errorf("steiner %v not better than mst %v", s, m)
	}
	if s != 20 {
		t.Errorf("cross steiner = %v, want 20", s)
	}
}

func TestMedianPointSingleRect(t *testing.T) {
	r := geom.Enclosing([]geom.Point{{X: 2, Y: 2}, {X: 6, Y: 4}})
	p := MedianPoint([]geom.Rect{r})
	if !r.Contains(p) {
		t.Errorf("median point %v outside sole rect", p)
	}
	if RectDistanceSum(p, []geom.Rect{r}) != 0 {
		t.Error("distance to own rect not 0")
	}
}

// Property (paper Fig 3.2): MedianPoint minimizes the summed Manhattan
// distance to the rectangles — verify against a brute-force grid search.
func TestMedianPointOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		nr := 1 + rng.Intn(5)
		rects := make([]geom.Rect, nr)
		for i := range rects {
			a := geom.Point{X: float64(rng.Intn(20)), Y: float64(rng.Intn(20))}
			b := geom.Point{X: a.X + float64(rng.Intn(6)), Y: a.Y + float64(rng.Intn(6))}
			rects[i] = geom.Enclosing([]geom.Point{a, b})
		}
		p := MedianPoint(rects)
		got := RectDistanceSum(p, rects)
		// Brute force over the integer grid (corners are integers, so an
		// optimal point exists on the grid).
		best := math.MaxFloat64
		for x := 0.0; x <= 26; x++ {
			for y := 0.0; y <= 26; y++ {
				if d := RectDistanceSum(geom.Point{X: x, Y: y}, rects); d < best {
					best = d
				}
			}
		}
		if got > best+1e-9 {
			t.Fatalf("median point %v cost %v > brute force %v (rects %v)", p, got, best, rects)
		}
	}
}

func TestMedianPointEmpty(t *testing.T) {
	if p := MedianPoint(nil); p != (geom.Point{}) {
		t.Errorf("empty median = %v", p)
	}
	if p := MedianPoint([]geom.Rect{geom.EmptyRect()}); p != (geom.Point{}) {
		t.Errorf("all-empty median = %v", p)
	}
}

func TestCenterOfMassPoint(t *testing.T) {
	rects := []geom.Rect{
		geom.Enclosing([]geom.Point{{X: 0, Y: 0}, {X: 2, Y: 2}}),
		geom.Enclosing([]geom.Point{{X: 4, Y: 4}, {X: 6, Y: 6}}),
	}
	c := CenterOfMassPoint(rects)
	if c.X != 3 || c.Y != 3 {
		t.Errorf("com = %v", c)
	}
}

func TestNetLengthModels(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 0, Y: 10}, {X: 10, Y: 10}}
	h := NetLength(ModelHPWLSteiner, pts)
	s := NetLength(ModelSpanningTree, pts)
	if h != 20*ChungHwangRatio(4) {
		t.Errorf("hpwl-steiner = %v", h)
	}
	if s != RMST(pts) {
		t.Errorf("spanning = %v", s)
	}
	if NetLength(ModelHPWLSteiner, pts[:1]) != 0 {
		t.Error("single pin net has length")
	}
}
