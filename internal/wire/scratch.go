package wire

import (
	"math"
	"sync"

	"lily/internal/geom"
)

// Scratch holds reusable work buffers for the net-length estimators, so
// the mapper's inner loop — which evaluates wire cost for every candidate
// match of every node (paper §3.4) — performs no per-call allocations.
// A Scratch is not safe for concurrent use; each mapping run owns one
// (or borrows one from the package pool via Get/Put).
//
// The scratch-backed methods compute bit-identical results to the
// package-level functions: they run the same algorithms over recycled
// buffers.
type Scratch struct {
	dist   []float64
	from   []int
	inTree []bool
	pts    []geom.Point
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// Get borrows a Scratch from the package pool.
func Get() *Scratch { return scratchPool.Get().(*Scratch) }

// Put returns a Scratch to the package pool.
func Put(s *Scratch) { scratchPool.Put(s) }

// grow readies the Prim buffers for an n-pin net.
func (s *Scratch) grow(n int) {
	if cap(s.dist) < n {
		s.dist = make([]float64, n)
		s.from = make([]int, n)
		s.inTree = make([]bool, n)
	}
	s.dist = s.dist[:n]
	s.from = s.from[:n]
	s.inTree = s.inTree[:n]
}

// NetLength is the zero-alloc equivalent of the package-level NetLength.
func (s *Scratch) NetLength(model Model, pins []geom.Point) float64 {
	if len(pins) < 2 {
		return 0
	}
	if model == ModelSpanningTree {
		return s.RMST(pins)
	}
	return HPWL(pins) * ChungHwangRatio(len(pins))
}

// LengthXY is the zero-alloc equivalent of the package-level LengthXY.
func (s *Scratch) LengthXY(model Model, pins []geom.Point) (x, y float64) {
	if len(pins) < 2 {
		return 0, 0
	}
	if model == ModelSpanningTree {
		return s.RMSTXY(pins)
	}
	r := geom.Enclosing(pins)
	k := ChungHwangRatio(len(pins))
	return r.Width() * k, r.Height() * k
}

// RMST runs Prim's rectilinear-MST over the scratch buffers (same
// algorithm and visit order as the package-level RMST, so results are
// bit-identical).
func (s *Scratch) RMST(pins []geom.Point) float64 {
	n := len(pins)
	if n < 2 {
		return 0
	}
	const inf = math.MaxFloat64
	s.grow(n)
	dist, inTree := s.dist, s.inTree
	for i := range dist {
		dist[i] = inf
		inTree[i] = false
	}
	dist[0] = 0
	total := 0.0
	for k := 0; k < n; k++ {
		best, bestD := -1, inf
		for i := 0; i < n; i++ {
			if !inTree[i] && dist[i] < bestD {
				best, bestD = i, dist[i]
			}
		}
		inTree[best] = true
		total += bestD
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := pins[best].Manhattan(pins[i]); d < dist[i] {
					dist[i] = d
				}
			}
		}
	}
	return total
}

// RMSTXY is the zero-alloc equivalent of the per-axis MST decomposition
// used by the wiring-capacitance model (paper §4.2).
func (s *Scratch) RMSTXY(pins []geom.Point) (xLen, yLen float64) {
	n := len(pins)
	if n < 2 {
		return 0, 0
	}
	const inf = math.MaxFloat64
	s.grow(n)
	dist, from, inTree := s.dist, s.from, s.inTree
	for i := range dist {
		dist[i] = inf
		from[i] = -1
		inTree[i] = false
	}
	dist[0] = 0
	for k := 0; k < n; k++ {
		best, bestD := -1, inf
		for i := 0; i < n; i++ {
			if !inTree[i] && dist[i] < bestD {
				best, bestD = i, dist[i]
			}
		}
		inTree[best] = true
		if from[best] >= 0 {
			xLen += math.Abs(pins[best].X - pins[from[best]].X)
			yLen += math.Abs(pins[best].Y - pins[from[best]].Y)
		}
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := pins[best].Manhattan(pins[i]); d < dist[i] {
					dist[i] = d
					from[i] = best
				}
			}
		}
	}
	return xLen, yLen
}

// HPWLNetLength returns the half-perimeter × Chung–Hwang estimate for a
// net whose enclosing rectangle and pin count are already known — the
// rectangle-incremental fast path of the cover DP, which extends a cached
// fanin rectangle by the candidate gate position instead of re-scanning
// the pin list. Equivalent to NetLength(ModelHPWLSteiner, pins) when
// r == geom.Enclosing(pins) and npins == len(pins).
func HPWLNetLength(r geom.Rect, npins int) float64 {
	if npins < 2 {
		return 0
	}
	return r.HalfPerimeter() * ChungHwangRatio(npins)
}

// HPWLLengthXY is the rectangle-incremental fast path of LengthXY for the
// HPWL-Steiner model.
func HPWLLengthXY(r geom.Rect, npins int) (x, y float64) {
	if npins < 2 {
		return 0, 0
	}
	k := ChungHwangRatio(npins)
	return r.Width() * k, r.Height() * k
}

// Pts returns a reusable point buffer of length 0 with at least the given
// capacity, for callers assembling pin lists without allocating.
func (s *Scratch) Pts(capacity int) []geom.Point {
	if cap(s.pts) < capacity {
		s.pts = make([]geom.Point, 0, capacity)
	}
	return s.pts[:0]
}
