package wire

import (
	"math/rand"
	"testing"

	"lily/internal/geom"
)

func benchPts(n int) []geom.Point {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	return pts
}

func BenchmarkHPWL8(b *testing.B) {
	pts := benchPts(8)
	for i := 0; i < b.N; i++ {
		HPWL(pts)
	}
}

func BenchmarkRMST8(b *testing.B) {
	pts := benchPts(8)
	for i := 0; i < b.N; i++ {
		RMST(pts)
	}
}

func BenchmarkRMST32(b *testing.B) {
	pts := benchPts(32)
	for i := 0; i < b.N; i++ {
		RMST(pts)
	}
}

func BenchmarkRSMT8(b *testing.B) {
	pts := benchPts(8)
	for i := 0; i < b.N; i++ {
		RSMT(pts)
	}
}

func BenchmarkMedianPoint(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	rects := make([]geom.Rect, 6)
	for i := range rects {
		a := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		c := geom.Point{X: a.X + rng.Float64()*20, Y: a.Y + rng.Float64()*20}
		rects[i] = geom.Enclosing([]geom.Point{a, c})
	}
	for i := 0; i < b.N; i++ {
		MedianPoint(rects)
	}
}
