// Package wire estimates interconnect length. It provides the two wiring
// models of the paper (§3.4): half-perimeter of the net's enclosing
// rectangle scaled by the Chung–Hwang minimal-rectilinear-Steiner-tree
// ratio, and an explicit rectilinear spanning tree over the net's pins.
// It also implements the Manhattan optimal-point computation used by the
// CM-of-Fans placement update (§3.2): the point minimizing the summed
// distance to a set of fanin/fanout rectangles is the median of the
// rectangles' corner coordinates.
package wire

import (
	"math"
	"sort"

	"lily/internal/geom"
)

// Model selects the net-length estimator.
type Model int

const (
	// ModelHPWLSteiner uses half-perimeter × Chung–Hwang ratio.
	ModelHPWLSteiner Model = iota
	// ModelSpanningTree uses an explicit rectilinear minimum spanning tree.
	ModelSpanningTree
)

func (m Model) String() string {
	if m == ModelSpanningTree {
		return "rmst"
	}
	return "hpwl-steiner"
}

// HPWL returns the half-perimeter wirelength of the net's pins.
func HPWL(pins []geom.Point) float64 {
	return geom.Enclosing(pins).HalfPerimeter()
}

// ChungHwangRatio approximates the ratio of the largest minimal rectilinear
// Steiner tree to the enclosing-rectangle half-perimeter for an n-pin net,
// after Chung & Hwang (Networks 9, 1979). For up to three pins the minimal
// Steiner tree never exceeds the half-perimeter; beyond that the worst case
// grows on the order of sqrt(n).
func ChungHwangRatio(n int) float64 {
	switch {
	case n <= 3:
		return 1.0
	case n <= 10:
		// Interpolated table in the range where the exact worst case is
		// known to grow slowly.
		table := [...]float64{4: 1.08, 5: 1.15, 6: 1.22, 7: 1.28, 8: 1.34, 9: 1.39, 10: 1.44}
		return table[n]
	default:
		// Asymptotic sqrt growth, continuous at n=10.
		return 1.44 + 0.18*(math.Sqrt(float64(n))-math.Sqrt(10))
	}
}

// NetLength estimates the routed length of a net with the given model.
func NetLength(model Model, pins []geom.Point) float64 {
	if len(pins) < 2 {
		return 0
	}
	switch model {
	case ModelSpanningTree:
		return RMST(pins)
	default:
		return HPWL(pins) * ChungHwangRatio(len(pins))
	}
}

// RMST returns the length of a rectilinear minimum spanning tree over the
// pins (Prim's algorithm, O(n²) — nets are small). The work buffers come
// from the package pool; hot loops that want to skip even the pool
// round-trip should hold a Scratch and call its RMST method directly.
func RMST(pins []geom.Point) float64 {
	s := Get()
	total := s.RMST(pins)
	Put(s)
	return total
}

// LengthXY splits a net-length estimate into horizontal and vertical
// components, which the wiring-capacitance model C_w = c_h·X + c_v·Y needs
// (paper §4.2). For the HPWL model the components are the bounding-box
// extents scaled by the Chung–Hwang ratio; for the spanning-tree model
// they are the summed |dx| and |dy| of the tree edges.
func LengthXY(model Model, pins []geom.Point) (x, y float64) {
	if len(pins) < 2 {
		return 0, 0
	}
	if model == ModelSpanningTree {
		return rmstXY(pins)
	}
	r := geom.Enclosing(pins)
	k := ChungHwangRatio(len(pins))
	return r.Width() * k, r.Height() * k
}

// rmstXY computes the per-axis edge lengths of a rectilinear MST over
// pooled buffers.
func rmstXY(pins []geom.Point) (xLen, yLen float64) {
	s := Get()
	xLen, yLen = s.RMSTXY(pins)
	Put(s)
	return xLen, yLen
}

// RSMT returns an estimate of the rectilinear Steiner minimal tree length:
// the RMST improved by greedy 1-Steiner insertion over Hanan grid points
// (Kahng/Robins style, one pass) for small nets, plain RMST otherwise.
func RSMT(pins []geom.Point) float64 {
	n := len(pins)
	if n < 3 {
		return RMST(pins)
	}
	if n > 16 {
		return RMST(pins)
	}
	// Room for the original pins, up to n-2 Steiner points, and one probe
	// point, so the candidate loop below never reallocates.
	pts := make([]geom.Point, n, 2*n)
	copy(pts, pins)
	s := Get()
	defer Put(s)
	best := s.RMST(pts)
	// Iteratively add the Hanan point that shrinks the MST the most.
	for iter := 0; iter < n-2; iter++ {
		bestGain := 1e-9
		var bestPt geom.Point
		for _, px := range pins {
			for _, py := range pins {
				cand := geom.Point{X: px.X, Y: py.Y}
				l := s.RMST(append(pts, cand))
				if gain := best - l; gain > bestGain {
					bestGain = gain
					bestPt = cand
				}
			}
		}
		if bestGain <= 1e-9 {
			break
		}
		pts = append(pts, bestPt)
		best -= bestGain
	}
	return best
}

// MedianPoint returns a point minimizing the summed Manhattan distance to
// all rectangles (paper §3.2): the distance function is separable in x and
// y, and each axis is minimized by the median of the rectangles' lower and
// upper corner coordinates on that axis.
func MedianPoint(rects []geom.Rect) geom.Point {
	if len(rects) == 0 {
		return geom.Point{}
	}
	xs := make([]float64, 0, 2*len(rects))
	ys := make([]float64, 0, 2*len(rects))
	for _, r := range rects {
		if r.IsEmpty() {
			continue
		}
		xs = append(xs, r.LL.X, r.UR.X)
		ys = append(ys, r.LL.Y, r.UR.Y)
	}
	if len(xs) == 0 {
		return geom.Point{}
	}
	sort.Float64s(xs)
	sort.Float64s(ys)
	return geom.Point{X: median(xs), Y: median(ys)}
}

func median(sorted []float64) float64 {
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// RectDistanceSum returns the summed Manhattan distance from p to each
// rectangle (zero for rectangles containing p).
func RectDistanceSum(p geom.Point, rects []geom.Rect) float64 {
	total := 0.0
	for _, r := range rects {
		total += r.DistanceTo(p)
	}
	return total
}

// CenterOfMassPoint returns the centroid of the rectangle centers — the
// approximate optimal point used for the Euclidean norm (paper §3.2: "we
// represent each fanin/fanout rectangle by its center point, then the
// optimal point location problem is solved by computing the center of mass
// of these center points").
func CenterOfMassPoint(rects []geom.Rect) geom.Point {
	var pts []geom.Point
	for _, r := range rects {
		if !r.IsEmpty() {
			pts = append(pts, r.Center())
		}
	}
	return geom.Centroid(pts)
}
