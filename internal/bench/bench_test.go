package bench

import (
	"testing"

	"lily/internal/logic"
)

func TestAllProfilesGenerate(t *testing.T) {
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			n := Generate(p)
			if err := n.Check(); err != nil {
				t.Fatalf("check: %v", err)
			}
			s := n.Stat()
			if s.PIs != p.PIs {
				t.Errorf("PIs = %d, want %d", s.PIs, p.PIs)
			}
			if s.POs != p.POs {
				t.Errorf("POs = %d, want %d", s.POs, p.POs)
			}
			// Node budget: sweeping and PO combining may shift the count a
			// little, but it must stay within 25% of the target.
			lo, hi := p.Nodes*3/4, p.Nodes*5/4+8
			if s.Logic < lo || s.Logic > hi {
				t.Errorf("node count %d outside [%d,%d]", s.Logic, lo, hi)
			}
			if s.MaxFanin > p.MaxFanin {
				t.Errorf("max fanin %d > %d", s.MaxFanin, p.MaxFanin)
			}
			if s.Depth < 3 {
				t.Errorf("depth %d too shallow for realistic logic", s.Depth)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ProfileByName("C432")
	a := Generate(p)
	b := Generate(p)
	an, bn := a.SortedNames(), b.SortedNames()
	if len(an) != len(bn) {
		t.Fatalf("node counts differ: %d vs %d", len(an), len(bn))
	}
	for i := range an {
		if an[i] != bn[i] {
			t.Fatalf("names differ at %d: %s vs %s", i, an[i], bn[i])
		}
	}
	// Same functional behaviour on a probe vector.
	in := make(map[string]bool)
	for i, pi := range a.PIs {
		in[a.Nodes[pi].Name] = i%3 == 0
	}
	oa, err := a.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	ob, err := b.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	for k := range oa {
		if oa[k] != ob[k] {
			t.Fatalf("output %s differs between identical seeds", k)
		}
	}
}

func TestProfileByName(t *testing.T) {
	if _, ok := ProfileByName("C5315"); !ok {
		t.Error("C5315 missing")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("bogus profile found")
	}
}

func TestTable2NamesSubset(t *testing.T) {
	for _, name := range Table2Names() {
		if _, ok := ProfileByName(name); !ok {
			t.Errorf("Table 2 name %s not in profile set", name)
		}
	}
	if len(Table2Names()) != 12 {
		t.Errorf("Table 2 has %d circuits, want 12", len(Table2Names()))
	}
}

func TestRandomParametric(t *testing.T) {
	n := Random(7, 10, 5, 50, 4)
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	if len(n.PIs) != 10 || len(n.POs) != 5 {
		t.Errorf("pi/po = %d/%d", len(n.PIs), len(n.POs))
	}
}

func TestGeneratedNetworksHaveReconvergence(t *testing.T) {
	// Multi-fanout internal nodes are what make DAG covering (and the
	// paper's dove/hawk machinery) interesting; the generator must
	// produce a healthy share of them.
	n := Generate(profiles[5]) // C5315
	multi := 0
	total := 0
	for _, nd := range n.Nodes {
		if nd == nil || nd.Kind != logic.KindLogic {
			continue
		}
		total++
		if n.FanoutCount(nd.ID) > 1 {
			multi++
		}
	}
	if multi*10 < total {
		t.Errorf("only %d/%d nodes have fanout > 1", multi, total)
	}
}

func TestGeneratedSuiteScales(t *testing.T) {
	// Relative ordering of circuit sizes should track the paper's areas:
	// C5315 and apex3 are the giants, misex1 the smallest.
	sizes := map[string]int{}
	for _, p := range Profiles() {
		sizes[p.Name] = Generate(p).NumLogic()
	}
	if !(sizes["misex1"] < sizes["b9"] && sizes["b9"] < sizes["C1908"]) {
		t.Errorf("small-circuit ordering broken: %v", sizes)
	}
	if !(sizes["C5315"] > sizes["C3540"] && sizes["apex3"] > sizes["C3540"]) {
		t.Errorf("large-circuit ordering broken: %v", sizes)
	}
}
