package bench

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"testing"

	"lily/internal/logic"
)

// TestScaleProfilesGenerate checks the structural contract of every scale
// profile: exact PI/PO counts, bounded fanin, a node count near the
// budget, acyclicity, and non-trivial depth. The two largest profiles are
// skipped in -short runs.
func TestScaleProfilesGenerate(t *testing.T) {
	for _, p := range ScaleProfiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if testing.Short() && p.Nodes > 50000 {
				t.Skip("large profile skipped in -short mode")
			}
			n := Generate(p)
			if err := n.Check(); err != nil {
				t.Fatalf("check: %v", err)
			}
			if _, err := n.TopoOrder(); err != nil {
				t.Fatalf("not acyclic: %v", err)
			}
			s := n.Stat()
			if s.PIs != p.PIs {
				t.Errorf("PIs = %d, want %d", s.PIs, p.PIs)
			}
			if s.POs != p.POs {
				t.Errorf("POs = %d, want %d", s.POs, p.POs)
			}
			lo, hi := p.Nodes*3/4, p.Nodes*5/4+8
			if s.Logic < lo || s.Logic > hi {
				t.Errorf("node count %d outside [%d,%d]", s.Logic, lo, hi)
			}
			if s.MaxFanin > p.MaxFanin {
				t.Errorf("max fanin %d > %d", s.MaxFanin, p.MaxFanin)
			}
			if s.Depth < 10 {
				t.Errorf("depth %d too shallow for realistic logic", s.Depth)
			}
		})
	}
}

// TestScaleGenerateBytesDeterministic pins the byte-level determinism the
// golden harness and the CI scale-smoke job rely on: two generations of
// the same profile serialize to identical BLIF.
func TestScaleGenerateBytesDeterministic(t *testing.T) {
	p, ok := ProfileByName("gen50k")
	if !ok {
		t.Fatal("gen50k missing")
	}
	var a, b bytes.Buffer
	if err := logic.WriteBLIF(&a, Generate(p)); err != nil {
		t.Fatal(err)
	}
	if err := logic.WriteBLIF(&b, Generate(p)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same seed produced different BLIF bytes (sha %x vs %x)",
			sha256.Sum256(a.Bytes()), sha256.Sum256(b.Bytes()))
	}
}

// TestScaleGenerateRoundTrip is the generator's equivalence self-check:
// the BLIF serialization parses back to a network that computes the same
// outputs as the in-memory original on random input vectors.
func TestScaleGenerateRoundTrip(t *testing.T) {
	p, ok := ProfileByName("mid5k")
	if !ok {
		t.Fatal("mid5k missing")
	}
	n := Generate(p)
	var buf bytes.Buffer
	if err := logic.WriteBLIF(&buf, n); err != nil {
		t.Fatal(err)
	}
	back, err := logic.ParseBLIF(&buf)
	if err != nil {
		t.Fatalf("round-trip parse: %v", err)
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 32; trial++ {
		in := make(map[string]bool, len(n.PIs))
		for _, pi := range n.PIs {
			in[n.Nodes[pi].Name] = rng.Intn(2) == 1
		}
		want, err := n.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		for name, w := range want {
			if got[name] != w {
				t.Fatalf("trial %d: output %s = %t after round-trip, want %t", trial, name, got[name], w)
			}
		}
	}
}

// TestTilingBoundsDepth checks the point of Profile.Tiles: partitioned
// generation must not degenerate into the one deep chain the flat
// recency-biased draw produces at scale. The tiled depth has to land far
// below the flat depth at the same node budget.
func TestTilingBoundsDepth(t *testing.T) {
	p, ok := ProfileByName("gen50k")
	if !ok {
		t.Fatal("gen50k missing")
	}
	flat := p
	flat.Tiles = 0
	dTiled := Generate(p).Stat().Depth
	dFlat := Generate(flat).Stat().Depth
	if dTiled*3 > dFlat {
		t.Errorf("tiled depth %d is not well below flat depth %d", dTiled, dFlat)
	}
}

// TestTilingPreservesFlatPath pins that adding the Tiles knob left the
// flat generator untouched: a paper-suite profile with Tiles forced to
// zero produces the byte-identical network it always did (the golden
// tables depend on this).
func TestTilingPreservesFlatPath(t *testing.T) {
	p, ok := ProfileByName("C5315")
	if !ok {
		t.Fatal("C5315 missing")
	}
	if p.Tiles != 0 {
		t.Fatalf("paper profile %s unexpectedly tiled", p.Name)
	}
	var a, b bytes.Buffer
	if err := logic.WriteBLIF(&a, Generate(p)); err != nil {
		t.Fatal(err)
	}
	explicit := p
	explicit.Tiles = 1 // one tile must take the flat path too
	if err := logic.WriteBLIF(&b, Generate(explicit)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("Tiles=1 diverged from the flat generator")
	}
}

// TestShareProperties checks the tile partitioner: parts always sum to
// the total and differ by at most one.
func TestShareProperties(t *testing.T) {
	for _, tc := range []struct{ total, tiles int }{
		{10, 3}, {192, 24}, {200000, 128}, {7, 7}, {5, 4}, {1, 1},
	} {
		sum, min, max := 0, tc.total, 0
		for i := 0; i < tc.tiles; i++ {
			s := share(tc.total, tc.tiles, i)
			sum += s
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		if sum != tc.total {
			t.Errorf("share(%d,%d) parts sum to %d", tc.total, tc.tiles, sum)
		}
		if max-min > 1 {
			t.Errorf("share(%d,%d) parts differ by %d", tc.total, tc.tiles, max-min)
		}
	}
}

// TestScaleProfileNamesResolvable checks the public lookup path covers
// the scale suite and that names stay unique across both suites.
func TestScaleProfileNamesResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Profiles() {
		seen[p.Name] = true
	}
	for _, p := range ScaleProfiles() {
		if seen[p.Name] {
			t.Errorf("scale profile %s collides with the paper suite", p.Name)
		}
		if _, ok := ProfileByName(p.Name); !ok {
			t.Errorf("scale profile %s not resolvable by name", p.Name)
		}
	}
	if len(ScaleProfiles()) != 6 {
		t.Errorf("scale suite has %d profiles, want 6", len(ScaleProfiles()))
	}
}

// TestTiledCrossLinksExist checks the tiles are actually coupled: some
// logic nodes must read signals created in an earlier tile (the PI name
// sequence is interleaved with the node sequence, so a fanin PI with a
// higher index than the tile's first PI pins the link structurally —
// instead we count fanins whose creation order precedes the consumer's
// tile block, via node IDs, which are allocated in creation order).
func TestTiledCrossLinksExist(t *testing.T) {
	p, ok := ProfileByName("mid5k")
	if !ok {
		t.Fatal("mid5k missing")
	}
	n := Generate(p)
	// Tile block size in creation order (PIs + nodes interleave per tile,
	// IDs are allocated sequentially, combiner nodes come after all tile
	// signals of their block, so a gap larger than one tile's span means a
	// cross-tile edge).
	span := (p.PIs + p.Nodes) / p.Tiles * 2
	crossEdges := 0
	for _, nd := range n.Nodes {
		if nd == nil || nd.Kind != logic.KindLogic {
			continue
		}
		for _, f := range nd.Fanins {
			if int(nd.ID)-int(f) > span {
				crossEdges++
				break
			}
		}
	}
	if crossEdges == 0 {
		t.Error("tiled generation produced no cross-tile edges")
	}
}

func ExampleScaleProfiles() {
	for _, p := range ScaleProfiles() {
		fmt.Printf("%s: %d nodes, %d tiles\n", p.Name, p.Nodes, p.Tiles)
	}
	// Output:
	// mid5k: 2000 nodes, 4 tiles
	// mid10k: 4000 nodes, 6 tiles
	// gen50k: 20000 nodes, 24 tiles
	// gen100k: 40000 nodes, 40 tiles
	// gen200k: 80000 nodes, 64 tiles
	// gen500k: 200000 nodes, 128 tiles
}
