// Package bench generates the synthetic benchmark suite used to reproduce
// the paper's evaluation.
//
// The paper evaluates on MCNC/ISCAS-85 circuits (9symml, C432, ... misex3)
// that are not distributable here, so each named benchmark is replaced by a
// deterministic seeded generator producing a combinational network with the
// same primary-input/primary-output counts and a node budget chosen so the
// premapped NAND2/INV "inchoate" network lands at the same scale the paper
// reports (e.g. C5315 premaps to roughly 1900 base gates). The generator
// builds layered random logic with spatial locality (each signal carries an
// abstract coordinate and fanins are drawn near a random center), which
// reproduces the clustered connectivity structure that makes layout-driven
// mapping matter; reconvergent fanout arises naturally from fanout reuse.
package bench

import (
	"fmt"
	"math"
	"math/rand"

	"lily/internal/logic"
)

// Profile describes one synthetic benchmark.
type Profile struct {
	Name     string
	PIs      int
	POs      int
	Nodes    int // target internal node count of the optimized network
	MaxFanin int
	XORFrac  float64 // fraction of XOR-like nodes (parity-rich circuits)
	Seed     int64
	// Tiles, when above one, partitions the circuit into that many weakly
	// coupled blocks: PIs, internal nodes, and POs are split evenly across
	// tiles and fanins are drawn inside the tile, except for a CrossFrac
	// fraction of nodes that take one fanin from an earlier tile. This is
	// the structure of real large designs — hierarchical blocks with thin
	// interconnect — and it keeps logic cones local: a flat recency-biased
	// draw at 10^5 nodes degenerates into one deep chain whose every
	// output cone spans most of the network, which no real netlist does.
	// Zero or one keeps the flat single-block structure (all paper-suite
	// profiles), whose generation stream is unchanged byte for byte.
	Tiles int
	// CrossFrac is the fraction of tile nodes with one cross-tile fanin;
	// generateTiled defaults it to 0.03 when unset.
	CrossFrac float64
}

// profiles lists the 15 circuits of the paper's Tables 1 and 2 with their
// real PI/PO counts and node budgets scaled to the paper's gate counts.
var profiles = []Profile{
	{Name: "9symml", PIs: 9, POs: 1, Nodes: 65, MaxFanin: 4, XORFrac: 0.15, Seed: 9001},
	{Name: "C1908", PIs: 33, POs: 25, Nodes: 200, MaxFanin: 4, XORFrac: 0.25, Seed: 1908},
	{Name: "C3540", PIs: 50, POs: 22, Nodes: 430, MaxFanin: 5, XORFrac: 0.10, Seed: 3540},
	{Name: "C432", PIs: 36, POs: 7, Nodes: 85, MaxFanin: 5, XORFrac: 0.20, Seed: 432},
	{Name: "C499", PIs: 41, POs: 32, Nodes: 170, MaxFanin: 4, XORFrac: 0.40, Seed: 499},
	{Name: "C5315", PIs: 178, POs: 123, Nodes: 760, MaxFanin: 5, XORFrac: 0.05, Seed: 5315},
	{Name: "C880", PIs: 60, POs: 26, Nodes: 165, MaxFanin: 4, XORFrac: 0.10, Seed: 880},
	{Name: "apex6", PIs: 135, POs: 99, Nodes: 290, MaxFanin: 5, XORFrac: 0.05, Seed: 6001},
	{Name: "apex7", PIs: 49, POs: 37, Nodes: 105, MaxFanin: 4, XORFrac: 0.05, Seed: 7001},
	{Name: "b9", PIs: 41, POs: 21, Nodes: 55, MaxFanin: 4, XORFrac: 0.05, Seed: 901},
	{Name: "apex3", PIs: 54, POs: 50, Nodes: 620, MaxFanin: 5, XORFrac: 0.05, Seed: 3001},
	{Name: "duke2", PIs: 22, POs: 29, Nodes: 150, MaxFanin: 5, XORFrac: 0.05, Seed: 2201},
	{Name: "e64", PIs: 65, POs: 65, Nodes: 105, MaxFanin: 4, XORFrac: 0.0, Seed: 6401},
	{Name: "misex1", PIs: 8, POs: 7, Nodes: 28, MaxFanin: 4, XORFrac: 0.05, Seed: 101},
	{Name: "misex3", PIs: 14, POs: 14, Nodes: 260, MaxFanin: 5, XORFrac: 0.05, Seed: 303},
}

// scaleProfiles lists the synthetic scale suite behind the ROADMAP's
// "production scale" yardstick. Node budgets are chosen so the premapped
// NAND2/INV networks land near the advertised gate counts (premap expands
// a factored network roughly 2.5x): the mid* circuits are the midsize
// golden carriers, the gen* circuits stress the multilevel placement
// regime from 50k up to 500k gates.
var scaleProfiles = []Profile{
	{Name: "mid5k", PIs: 64, POs: 48, Nodes: 2000, MaxFanin: 5, XORFrac: 0.08, Seed: 50001, Tiles: 4},
	{Name: "mid10k", PIs: 96, POs: 64, Nodes: 4000, MaxFanin: 5, XORFrac: 0.08, Seed: 100001, Tiles: 6},
	{Name: "gen50k", PIs: 256, POs: 192, Nodes: 20000, MaxFanin: 5, XORFrac: 0.06, Seed: 500001, Tiles: 24},
	{Name: "gen100k", PIs: 384, POs: 256, Nodes: 40000, MaxFanin: 5, XORFrac: 0.06, Seed: 1000001, Tiles: 40},
	{Name: "gen200k", PIs: 512, POs: 384, Nodes: 80000, MaxFanin: 5, XORFrac: 0.05, Seed: 2000001, Tiles: 64},
	{Name: "gen500k", PIs: 768, POs: 512, Nodes: 200000, MaxFanin: 5, XORFrac: 0.05, Seed: 5000001, Tiles: 128},
}

// Profiles returns the benchmark suite in the paper's Table 1 row order.
// The scale suite is deliberately separate (ScaleProfiles) so the golden
// tables and Table 1/2 reproductions keep their fifteen rows.
func Profiles() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// ScaleProfiles returns the 50k–500k-gate scale suite (plus the two
// midsize golden carriers) in ascending size order.
func ScaleProfiles() []Profile {
	out := make([]Profile, len(scaleProfiles))
	copy(out, scaleProfiles)
	return out
}

// ProfileByName looks up a named benchmark profile in the paper suite and
// the scale suite.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range profiles {
		if p.Name == name {
			return p, true
		}
	}
	for _, p := range scaleProfiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Table2Names lists the 12 circuits that appear in the paper's Table 2.
func Table2Names() []string {
	return []string{"9symml", "C1908", "C432", "C499", "C5315", "C880",
		"apex7", "b9", "duke2", "e64", "misex1", "misex3"}
}

// Generate builds the network for a profile. The result is swept, checked,
// and deterministic for a given profile.
func Generate(p Profile) *logic.Network {
	n, err := generate(p)
	if err != nil {
		panic(fmt.Sprintf("bench: generate %s: %v", p.Name, err))
	}
	return n
}

// Random builds a parametric random network, for tests and property checks.
func Random(seed int64, pis, pos, nodes, maxFanin int) *logic.Network {
	p := Profile{
		Name: fmt.Sprintf("rand%d", seed), PIs: pis, POs: pos,
		Nodes: nodes, MaxFanin: maxFanin, XORFrac: 0.1, Seed: seed,
	}
	return Generate(p)
}

type signal struct {
	id    logic.NodeID
	level int
	coord float64 // abstract 1-D position in [0,1) driving locality
	uses  int
}

func generate(p Profile) (*logic.Network, error) {
	if p.PIs < 1 || p.POs < 1 || p.Nodes < 1 {
		return nil, fmt.Errorf("bad profile %+v", p)
	}
	if p.MaxFanin < 2 {
		p.MaxFanin = 2
	}
	if p.Tiles > 1 {
		return generateTiled(p)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	n := logic.New(p.Name)

	sigs := make([]signal, 0, p.PIs+p.Nodes)
	for i := 0; i < p.PIs; i++ {
		pi := n.AddPI(fmt.Sprintf("pi%d", i))
		sigs = append(sigs, signal{id: pi.ID, coord: (float64(i) + 0.5) / float64(p.PIs)})
	}

	for k := 0; k < p.Nodes; k++ {
		fi := pickFaninCount(rng, p.MaxFanin)
		idxs := pickFanins(rng, sigs, fi)
		fanins := make([]logic.NodeID, len(idxs))
		coord, level := 0.0, 0
		for i, si := range idxs {
			fanins[i] = sigs[si].id
			coord += sigs[si].coord
			if sigs[si].level+1 > level {
				level = sigs[si].level + 1
			}
			sigs[si].uses++
		}
		coord = coord/float64(len(idxs)) + (rng.Float64()-0.5)*0.08
		coord = math.Mod(coord+1, 1)
		cover := pickCover(rng, len(fanins), p.XORFrac)
		nd := n.AddLogic(fmt.Sprintf("g%d", k), fanins, cover)
		sigs = append(sigs, signal{id: nd.ID, level: level, coord: coord})
	}

	markOutputs(rng, n, sigs, p.POs, 0)
	n.Sweep()
	if err := n.Check(); err != nil {
		return nil, err
	}
	return n, nil
}

// share splits total into near-even tile parts: part t is the difference
// of rounded prefix sums, so parts differ by at most one and always sum
// to total.
func share(total, tiles, t int) int {
	return total*(t+1)/tiles - total*t/tiles
}

// crossMaxLevel bounds the depth of signals eligible as cross-tile
// fanins. A deep signal would drag its whole transitive fanin — most of
// an earlier tile — into every consumer's logic cone, defeating the
// point of tiling; shallow signals (PIs and near-PI logic) have
// constant-size support, like the global control and status nets that
// couple real blocks.
const crossMaxLevel = 2

// generateTiled builds the weakly coupled block structure described on
// Profile.Tiles. Tiles are generated in sequence; each tile's signal pool
// is one contiguous slice of sigs (its PIs are created right before its
// nodes), so the flat pickFanins locality machinery applies unchanged
// within the tile. A CrossFrac fraction of nodes swap their last fanin
// for a shallow signal of an earlier tile — earlier-only links keep the
// construction trivially acyclic — and outputs are marked per tile from
// the tile's own signals, which bounds every PO cone's support by
// roughly the tile size plus the thin cross-tile tail.
func generateTiled(p Profile) (*logic.Network, error) {
	cross := p.CrossFrac
	if cross == 0 {
		cross = 0.03
	}
	if p.PIs < 2*p.Tiles {
		return nil, fmt.Errorf("bench: profile %s has %d PIs for %d tiles; need at least two per tile", p.Name, p.PIs, p.Tiles)
	}
	if p.POs < p.Tiles {
		return nil, fmt.Errorf("bench: profile %s has %d POs for %d tiles; need at least one per tile", p.Name, p.POs, p.Tiles)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	n := logic.New(p.Name)
	sigs := make([]signal, 0, p.PIs+p.Nodes)
	var shallow []int // sigs indices with level <= crossMaxLevel
	piIdx, gIdx, poIdx := 0, 0, 0
	for t := 0; t < p.Tiles; t++ {
		lo := len(sigs)
		crossPool := len(shallow) // shallow signals of earlier tiles only
		pis := share(p.PIs, p.Tiles, t)
		for i := 0; i < pis; i++ {
			pi := n.AddPI(fmt.Sprintf("pi%d", piIdx))
			piIdx++
			shallow = append(shallow, len(sigs))
			sigs = append(sigs, signal{id: pi.ID, coord: (float64(i) + 0.5) / float64(pis)})
		}
		for k := 0; k < share(p.Nodes, p.Tiles, t); k++ {
			fi := pickFaninCount(rng, p.MaxFanin)
			local := sigs[lo:]
			idxs := pickFanins(rng, local, fi)
			fanins := make([]logic.NodeID, len(idxs))
			coord, level := 0.0, 0
			for i, si := range idxs {
				fanins[i] = local[si].id
				coord += local[si].coord
				if local[si].level+1 > level {
					level = local[si].level + 1
				}
				local[si].uses++
			}
			if crossPool > 0 && len(fanins) >= 2 && rng.Float64() < cross {
				// Cross-tile link: the earlier-tile signal cannot collide
				// with the local fanins, so distinctness is preserved.
				gi := shallow[rng.Intn(crossPool)]
				last := idxs[len(idxs)-1]
				local[last].uses--
				coord += sigs[gi].coord - local[last].coord
				fanins[len(fanins)-1] = sigs[gi].id
				sigs[gi].uses++
				if sigs[gi].level+1 > level {
					level = sigs[gi].level + 1
				}
			}
			coord = coord/float64(len(idxs)) + (rng.Float64()-0.5)*0.08
			coord = math.Mod(coord+1, 1)
			cover := pickCover(rng, len(fanins), p.XORFrac)
			nd := n.AddLogic(fmt.Sprintf("g%d", gIdx), fanins, cover)
			gIdx++
			if level <= crossMaxLevel {
				shallow = append(shallow, len(sigs))
			}
			sigs = append(sigs, signal{id: nd.ID, level: level, coord: coord})
		}
		poIdx = markOutputs(rng, n, sigs[lo:], share(p.POs, p.Tiles, t), poIdx)
	}
	n.Sweep()
	if err := n.Check(); err != nil {
		return nil, err
	}
	return n, nil
}

// pickFaninCount draws a fanin count biased toward 2 and 3, matching the
// literal distribution of factored MCNC networks.
func pickFaninCount(rng *rand.Rand, max int) int {
	r := rng.Float64()
	switch {
	case r < 0.50 || max < 3:
		return 2
	case r < 0.80 || max < 4:
		return 3
	case r < 0.95 || max < 5:
		return 4
	default:
		return 5
	}
}

// pickFanins selects fi distinct signal indices with spatial locality: a
// random center coordinate is drawn and candidates are accepted with a
// probability that decays with distance from the center. Half of the draws
// are restricted to recently created signals so the network gains depth.
func pickFanins(rng *rand.Rand, sigs []signal, fi int) []int {
	if fi > len(sigs) {
		fi = len(sigs)
	}
	center := rng.Float64()
	chosen := make(map[int]bool, fi)
	out := make([]int, 0, fi)
	const window = 40
	for len(out) < fi {
		var cand int
		if rng.Float64() < 0.5 && len(sigs) > window {
			cand = len(sigs) - 1 - rng.Intn(window)
		} else {
			cand = rng.Intn(len(sigs))
		}
		if chosen[cand] {
			continue
		}
		d := math.Abs(sigs[cand].coord - center)
		if d > 0.5 {
			d = 1 - d // wraparound distance
		}
		// Locality acceptance with fanout-balancing bias.
		accept := math.Exp(-d/0.12) / (1 + 0.3*float64(sigs[cand].uses))
		if rng.Float64() < accept || rng.Float64() < 0.02 {
			chosen[cand] = true
			out = append(out, cand)
		}
	}
	return out
}

func pickCover(rng *rand.Rand, fi int, xorFrac float64) logic.SOP {
	if rng.Float64() < xorFrac && fi <= 3 {
		return logic.XorSOP(fi)
	}
	switch rng.Intn(5) {
	case 0:
		return logic.AndSOP(fi)
	case 1:
		return logic.OrSOP(fi)
	case 2:
		return logic.NandSOP(fi)
	case 3:
		return logic.NorSOP(fi)
	default:
		// Random two-level cover: a handful of random cubes.
		s := logic.NewSOP(fi)
		cubes := 1 + rng.Intn(3)
		for c := 0; c < cubes; c++ {
			cube := make(logic.Cube, fi)
			nonDC := false
			for j := range cube {
				switch rng.Intn(3) {
				case 0:
					cube[j] = logic.LitPos
					nonDC = true
				case 1:
					cube[j] = logic.LitNeg
					nonDC = true
				default:
					cube[j] = logic.LitDC
				}
			}
			if !nonDC {
				cube[rng.Intn(fi)] = logic.LitPos
			}
			s.AddCube(cube)
		}
		return s
	}
}

// markOutputs designates POs: every unused internal node becomes (or is
// merged toward) an output so the network survives sweeping, then
// additional high-level nodes are promoted until the PO budget is met.
// PO names start at poStart (nonzero for the tiled generator, which marks
// outputs per tile); the count of freshly marked POs is bounded by pos
// and the next free name index is returned.
func markOutputs(rng *rand.Rand, n *logic.Network, sigs []signal, pos, poStart int) int {
	var unused []signal
	for _, s := range sigs {
		nd := n.Node(s.id)
		if nd != nil && nd.Kind == logic.KindLogic && s.uses == 0 {
			unused = append(unused, s)
		}
	}
	// Combine surplus unused nodes pairwise with OR gates until they fit
	// the PO budget; the combiners keep all generated logic observable.
	for len(unused) > pos {
		a := unused[len(unused)-1]
		b := unused[len(unused)-2]
		unused = unused[:len(unused)-2]
		nd := n.AddLogic("", []logic.NodeID{a.id, b.id}, logic.OrSOP(2))
		lv := a.level
		if b.level > lv {
			lv = b.level
		}
		unused = append(unused, signal{id: nd.ID, level: lv + 1, coord: (a.coord + b.coord) / 2})
	}
	marked := 0
	for _, s := range unused {
		n.MarkPO(s.id, fmt.Sprintf("po%d", poStart+marked))
		marked++
	}
	// Promote additional used nodes (prefer deep ones) to reach the budget.
	if marked < pos {
		var cands []signal
		for _, s := range sigs {
			nd := n.Node(s.id)
			if nd != nil && nd.Kind == logic.KindLogic && s.uses > 0 {
				cands = append(cands, s)
			}
		}
		rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		// Prefer deeper candidates: stable selection by level descending.
		for lvl := maxLevel(cands); lvl >= 0 && marked < pos; lvl-- {
			for _, s := range cands {
				if marked >= pos {
					break
				}
				if s.level == lvl && !n.IsPO(s.id) {
					n.MarkPO(s.id, fmt.Sprintf("po%d", poStart+marked))
					marked++
				}
			}
		}
	}
	return poStart + marked
}

func maxLevel(sigs []signal) int {
	m := 0
	for _, s := range sigs {
		if s.level > m {
			m = s.level
		}
	}
	return m
}
