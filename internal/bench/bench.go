// Package bench generates the synthetic benchmark suite used to reproduce
// the paper's evaluation.
//
// The paper evaluates on MCNC/ISCAS-85 circuits (9symml, C432, ... misex3)
// that are not distributable here, so each named benchmark is replaced by a
// deterministic seeded generator producing a combinational network with the
// same primary-input/primary-output counts and a node budget chosen so the
// premapped NAND2/INV "inchoate" network lands at the same scale the paper
// reports (e.g. C5315 premaps to roughly 1900 base gates). The generator
// builds layered random logic with spatial locality (each signal carries an
// abstract coordinate and fanins are drawn near a random center), which
// reproduces the clustered connectivity structure that makes layout-driven
// mapping matter; reconvergent fanout arises naturally from fanout reuse.
package bench

import (
	"fmt"
	"math"
	"math/rand"

	"lily/internal/logic"
)

// Profile describes one synthetic benchmark.
type Profile struct {
	Name     string
	PIs      int
	POs      int
	Nodes    int // target internal node count of the optimized network
	MaxFanin int
	XORFrac  float64 // fraction of XOR-like nodes (parity-rich circuits)
	Seed     int64
}

// profiles lists the 15 circuits of the paper's Tables 1 and 2 with their
// real PI/PO counts and node budgets scaled to the paper's gate counts.
var profiles = []Profile{
	{Name: "9symml", PIs: 9, POs: 1, Nodes: 65, MaxFanin: 4, XORFrac: 0.15, Seed: 9001},
	{Name: "C1908", PIs: 33, POs: 25, Nodes: 200, MaxFanin: 4, XORFrac: 0.25, Seed: 1908},
	{Name: "C3540", PIs: 50, POs: 22, Nodes: 430, MaxFanin: 5, XORFrac: 0.10, Seed: 3540},
	{Name: "C432", PIs: 36, POs: 7, Nodes: 85, MaxFanin: 5, XORFrac: 0.20, Seed: 432},
	{Name: "C499", PIs: 41, POs: 32, Nodes: 170, MaxFanin: 4, XORFrac: 0.40, Seed: 499},
	{Name: "C5315", PIs: 178, POs: 123, Nodes: 760, MaxFanin: 5, XORFrac: 0.05, Seed: 5315},
	{Name: "C880", PIs: 60, POs: 26, Nodes: 165, MaxFanin: 4, XORFrac: 0.10, Seed: 880},
	{Name: "apex6", PIs: 135, POs: 99, Nodes: 290, MaxFanin: 5, XORFrac: 0.05, Seed: 6001},
	{Name: "apex7", PIs: 49, POs: 37, Nodes: 105, MaxFanin: 4, XORFrac: 0.05, Seed: 7001},
	{Name: "b9", PIs: 41, POs: 21, Nodes: 55, MaxFanin: 4, XORFrac: 0.05, Seed: 901},
	{Name: "apex3", PIs: 54, POs: 50, Nodes: 620, MaxFanin: 5, XORFrac: 0.05, Seed: 3001},
	{Name: "duke2", PIs: 22, POs: 29, Nodes: 150, MaxFanin: 5, XORFrac: 0.05, Seed: 2201},
	{Name: "e64", PIs: 65, POs: 65, Nodes: 105, MaxFanin: 4, XORFrac: 0.0, Seed: 6401},
	{Name: "misex1", PIs: 8, POs: 7, Nodes: 28, MaxFanin: 4, XORFrac: 0.05, Seed: 101},
	{Name: "misex3", PIs: 14, POs: 14, Nodes: 260, MaxFanin: 5, XORFrac: 0.05, Seed: 303},
}

// Profiles returns the benchmark suite in the paper's Table 1 row order.
func Profiles() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// ProfileByName looks up a named benchmark profile.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Table2Names lists the 12 circuits that appear in the paper's Table 2.
func Table2Names() []string {
	return []string{"9symml", "C1908", "C432", "C499", "C5315", "C880",
		"apex7", "b9", "duke2", "e64", "misex1", "misex3"}
}

// Generate builds the network for a profile. The result is swept, checked,
// and deterministic for a given profile.
func Generate(p Profile) *logic.Network {
	n, err := generate(p)
	if err != nil {
		panic(fmt.Sprintf("bench: generate %s: %v", p.Name, err))
	}
	return n
}

// Random builds a parametric random network, for tests and property checks.
func Random(seed int64, pis, pos, nodes, maxFanin int) *logic.Network {
	p := Profile{
		Name: fmt.Sprintf("rand%d", seed), PIs: pis, POs: pos,
		Nodes: nodes, MaxFanin: maxFanin, XORFrac: 0.1, Seed: seed,
	}
	return Generate(p)
}

type signal struct {
	id    logic.NodeID
	level int
	coord float64 // abstract 1-D position in [0,1) driving locality
	uses  int
}

func generate(p Profile) (*logic.Network, error) {
	if p.PIs < 1 || p.POs < 1 || p.Nodes < 1 {
		return nil, fmt.Errorf("bad profile %+v", p)
	}
	if p.MaxFanin < 2 {
		p.MaxFanin = 2
	}
	rng := rand.New(rand.NewSource(p.Seed))
	n := logic.New(p.Name)

	sigs := make([]signal, 0, p.PIs+p.Nodes)
	for i := 0; i < p.PIs; i++ {
		pi := n.AddPI(fmt.Sprintf("pi%d", i))
		sigs = append(sigs, signal{id: pi.ID, coord: (float64(i) + 0.5) / float64(p.PIs)})
	}

	for k := 0; k < p.Nodes; k++ {
		fi := pickFaninCount(rng, p.MaxFanin)
		idxs := pickFanins(rng, sigs, fi)
		fanins := make([]logic.NodeID, len(idxs))
		coord, level := 0.0, 0
		for i, si := range idxs {
			fanins[i] = sigs[si].id
			coord += sigs[si].coord
			if sigs[si].level+1 > level {
				level = sigs[si].level + 1
			}
			sigs[si].uses++
		}
		coord = coord/float64(len(idxs)) + (rng.Float64()-0.5)*0.08
		coord = math.Mod(coord+1, 1)
		cover := pickCover(rng, len(fanins), p.XORFrac)
		nd := n.AddLogic(fmt.Sprintf("g%d", k), fanins, cover)
		sigs = append(sigs, signal{id: nd.ID, level: level, coord: coord})
	}

	markOutputs(rng, n, sigs, p.POs)
	n.Sweep()
	if err := n.Check(); err != nil {
		return nil, err
	}
	return n, nil
}

// pickFaninCount draws a fanin count biased toward 2 and 3, matching the
// literal distribution of factored MCNC networks.
func pickFaninCount(rng *rand.Rand, max int) int {
	r := rng.Float64()
	switch {
	case r < 0.50 || max < 3:
		return 2
	case r < 0.80 || max < 4:
		return 3
	case r < 0.95 || max < 5:
		return 4
	default:
		return 5
	}
}

// pickFanins selects fi distinct signal indices with spatial locality: a
// random center coordinate is drawn and candidates are accepted with a
// probability that decays with distance from the center. Half of the draws
// are restricted to recently created signals so the network gains depth.
func pickFanins(rng *rand.Rand, sigs []signal, fi int) []int {
	if fi > len(sigs) {
		fi = len(sigs)
	}
	center := rng.Float64()
	chosen := make(map[int]bool, fi)
	out := make([]int, 0, fi)
	const window = 40
	for len(out) < fi {
		var cand int
		if rng.Float64() < 0.5 && len(sigs) > window {
			cand = len(sigs) - 1 - rng.Intn(window)
		} else {
			cand = rng.Intn(len(sigs))
		}
		if chosen[cand] {
			continue
		}
		d := math.Abs(sigs[cand].coord - center)
		if d > 0.5 {
			d = 1 - d // wraparound distance
		}
		// Locality acceptance with fanout-balancing bias.
		accept := math.Exp(-d/0.12) / (1 + 0.3*float64(sigs[cand].uses))
		if rng.Float64() < accept || rng.Float64() < 0.02 {
			chosen[cand] = true
			out = append(out, cand)
		}
	}
	return out
}

func pickCover(rng *rand.Rand, fi int, xorFrac float64) logic.SOP {
	if rng.Float64() < xorFrac && fi <= 3 {
		return logic.XorSOP(fi)
	}
	switch rng.Intn(5) {
	case 0:
		return logic.AndSOP(fi)
	case 1:
		return logic.OrSOP(fi)
	case 2:
		return logic.NandSOP(fi)
	case 3:
		return logic.NorSOP(fi)
	default:
		// Random two-level cover: a handful of random cubes.
		s := logic.NewSOP(fi)
		cubes := 1 + rng.Intn(3)
		for c := 0; c < cubes; c++ {
			cube := make(logic.Cube, fi)
			nonDC := false
			for j := range cube {
				switch rng.Intn(3) {
				case 0:
					cube[j] = logic.LitPos
					nonDC = true
				case 1:
					cube[j] = logic.LitNeg
					nonDC = true
				default:
					cube[j] = logic.LitDC
				}
			}
			if !nonDC {
				cube[rng.Intn(fi)] = logic.LitPos
			}
			s.AddCube(cube)
		}
		return s
	}
}

// markOutputs designates POs: every unused internal node becomes (or is
// merged toward) an output so the network survives sweeping, then
// additional high-level nodes are promoted until the PO budget is met.
func markOutputs(rng *rand.Rand, n *logic.Network, sigs []signal, pos int) {
	var unused []signal
	for _, s := range sigs {
		nd := n.Node(s.id)
		if nd != nil && nd.Kind == logic.KindLogic && s.uses == 0 {
			unused = append(unused, s)
		}
	}
	// Combine surplus unused nodes pairwise with OR gates until they fit
	// the PO budget; the combiners keep all generated logic observable.
	for len(unused) > pos {
		a := unused[len(unused)-1]
		b := unused[len(unused)-2]
		unused = unused[:len(unused)-2]
		nd := n.AddLogic("", []logic.NodeID{a.id, b.id}, logic.OrSOP(2))
		lv := a.level
		if b.level > lv {
			lv = b.level
		}
		unused = append(unused, signal{id: nd.ID, level: lv + 1, coord: (a.coord + b.coord) / 2})
	}
	poIdx := 0
	for _, s := range unused {
		n.MarkPO(s.id, fmt.Sprintf("po%d", poIdx))
		poIdx++
	}
	// Promote additional used nodes (prefer deep ones) to reach the budget.
	if poIdx < pos {
		var cands []signal
		for _, s := range sigs {
			nd := n.Node(s.id)
			if nd != nil && nd.Kind == logic.KindLogic && s.uses > 0 {
				cands = append(cands, s)
			}
		}
		rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		// Prefer deeper candidates: stable selection by level descending.
		for lvl := maxLevel(cands); lvl >= 0 && poIdx < pos; lvl-- {
			for _, s := range cands {
				if poIdx >= pos {
					break
				}
				if s.level == lvl && !n.IsPO(s.id) {
					n.MarkPO(s.id, fmt.Sprintf("po%d", poIdx))
					poIdx++
				}
			}
		}
	}
}

func maxLevel(sigs []signal) int {
	m := 0
	for _, s := range sigs {
		if s.level > m {
			m = s.level
		}
	}
	return m
}
