// Package place implements the global placement substrate Lily relies on
// (paper §3.1): a GORDIAN-style quadratic placement. Movable gates are
// points; pads are fixed at the chip boundary; the placer minimizes the
// squared-Euclidean length over all connections by solving a sparse linear
// system per axis, then recursively bi-partitions the cell set (with
// Fiduccia–Mattheyses refinement) and re-solves with region anchors until
// regions are small, yielding a balanced point placement that captures the
// network's connectivity structure on the plane.
package place

import (
	"context"
	"fmt"
	"math"
	"sync"
)

// entry is one off-diagonal coefficient of the quadratic system.
type entry struct {
	j int
	w float64
}

// quadSystem is the sparse symmetric positive-definite system
// (L + diag(anchor)) x = b for one axis; the same structure is shared by
// both axes with different right-hand sides.
type quadSystem struct {
	n    int
	diag []float64
	adj  [][]entry
	rhsX []float64
	rhsY []float64
	// par bounds the mat-vec/reduction worker count; the solve is
	// bit-identical at any value (elementwise rows, fixed-block sums).
	par int
}

func newQuadSystem(n int) *quadSystem {
	return &quadSystem{
		n:    n,
		diag: make([]float64, n),
		adj:  make([][]entry, n),
		rhsX: make([]float64, n),
		rhsY: make([]float64, n),
	}
}

// addEdge couples movable vertices i and j with weight w.
func (q *quadSystem) addEdge(i, j int, w float64) {
	if i == j {
		return
	}
	q.diag[i] += w
	q.diag[j] += w
	q.adj[i] = append(q.adj[i], entry{j, -w})
	q.adj[j] = append(q.adj[j], entry{i, -w})
}

// addFixed couples movable vertex i to a fixed location with weight w.
func (q *quadSystem) addFixed(i int, w, x, y float64) {
	q.diag[i] += w
	q.rhsX[i] += w * x
	q.rhsY[i] += w * y
}

// multiply computes out = A v. Rows are independent (each out[i] is one
// flat sum over row i), so the row range splits across workers without
// changing a single float operation.
func (q *quadSystem) multiply(v, out []float64) {
	par := q.par
	if q.n < parallelGrain {
		par = 1
	}
	parallelFor(q.n, par, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := q.diag[i] * v[i]
			for _, e := range q.adj[i] {
				s += e.w * v[e.j]
			}
			out[i] = s
		}
	})
}

// solve runs Jacobi-preconditioned conjugate gradient for one axis,
// starting from x0 (which is overwritten with the solution). The iteration
// polls ctx every 32 steps so cancelled placements stop promptly.
func (q *quadSystem) solve(ctx context.Context, rhs, x0 []float64, tol float64, maxIter int) (iters int, err error) {
	n := q.n
	if n == 0 {
		return 0, nil
	}
	for i := 0; i < n; i++ {
		if q.diag[i] <= 0 {
			return 0, fmt.Errorf("place: vertex %d has no connections (singular system)", i)
		}
	}
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	q.multiply(x0, r)
	rr := 0.0
	for i := 0; i < n; i++ {
		r[i] = rhs[i] - r[i]
		z[i] = r[i] / q.diag[i]
		p[i] = z[i]
		rr += r[i] * z[i]
	}
	norm0 := math.Sqrt(dotPar(r, r, q.par))
	if norm0 < tol {
		return 0, nil
	}
	for it := 0; it < maxIter; it++ {
		if it&31 == 31 {
			if cerr := ctx.Err(); cerr != nil {
				return it, cerr
			}
		}
		q.multiply(p, ap)
		pap := dotPar(p, ap, q.par)
		if pap <= 0 {
			return it, fmt.Errorf("place: CG breakdown (pAp=%v)", pap)
		}
		alpha := rr / pap
		for i := 0; i < n; i++ {
			x0[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		if math.Sqrt(dotPar(r, r, q.par)) < tol*(1+norm0) {
			return it + 1, nil
		}
		rrNew := 0.0
		for i := 0; i < n; i++ {
			z[i] = r[i] / q.diag[i]
			rrNew += r[i] * z[i]
		}
		beta := rrNew / rr
		rr = rrNew
		for i := 0; i < n; i++ {
			p[i] = z[i] + beta*p[i]
		}
	}
	return maxIter, nil
}

// dotBlock is the fixed partial-sum width of dot. It is a property of
// the algorithm, not of the machine: the reduction tree (block sums
// folded in block order) is the same at every worker count, which is
// what keeps the CG trajectory bit-identical under parallelism. Vectors
// up to one block sum exactly as the historical flat loop did.
const dotBlock = 4096

func dot(a, b []float64) float64 { return dotPar(a, b, 1) }

// dotPar computes a·b over fixed dotBlock-wide partial sums, evaluating
// the blocks on up to par workers and folding them in block order.
func dotPar(a, b []float64, par int) float64 {
	n := len(a)
	if n <= dotBlock {
		s := 0.0
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
	nb := (n + dotBlock - 1) / dotBlock
	sums := make([]float64, nb)
	parallelFor(nb, par, func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			end := (bi + 1) * dotBlock
			if end > n {
				end = n
			}
			s := 0.0
			for i := bi * dotBlock; i < end; i++ {
				s += a[i] * b[i]
			}
			sums[bi] = s
		}
	})
	total := 0.0
	for _, s := range sums {
		total += s
	}
	return total
}

// parallelGrain is the smallest elementwise range worth splitting:
// below it the goroutine hand-off costs more than the loop body saves.
// It guards only the fine-grained callers (mat-vec rows); coarse items
// like region splits parallelize at any count. Splitting never changes
// results (callers are elementwise), so the cutoff is a pure throughput
// heuristic.
const parallelGrain = 2048

// parallelFor runs fn over [0,n) split into up to par contiguous
// chunks. fn must only write state indexed within its own range. With
// par <= 1 it degenerates to one inline call.
func parallelFor(n, par int, fn func(lo, hi int)) {
	if par > n {
		par = n
	}
	if par <= 1 || n == 0 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + par - 1) / par
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
