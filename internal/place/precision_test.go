package place

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"lily/internal/geom"
	"lily/internal/logic"
)

// scaleNet builds a synthetic n-node network shaped like the scale
// generators' subject graphs — a long chain with random reconvergent
// second fanins, so nets range from two pins to high fanout — placed at
// coordinates offset far from the origin. The offset is the precision
// stressor: at a 500k-cell die the coordinates reach ~1e4 µm, and an
// offset of 1e7 leaves the per-net widths computed as differences of
// large nearby float64 values, the worst case for cancellation the
// HPWL path can meet.
func scaleNet(n int, offset float64) (*logic.Network, *Result) {
	net := logic.New("scale")
	rng := rand.New(rand.NewSource(7))
	ids := make([]logic.NodeID, 0, n+1)
	ids = append(ids, net.AddPI("pi0").ID)
	for i := 0; i < n; i++ {
		prev := ids[len(ids)-1]
		var nd *logic.Node
		if len(ids) >= 2 && i%3 == 0 {
			other := ids[rng.Intn(len(ids)-1)]
			nd = net.AddLogic("", []logic.NodeID{prev, other}, logic.OrSOP(2))
		} else {
			nd = net.AddLogic("", []logic.NodeID{prev}, logic.AndSOP(1))
		}
		ids = append(ids, nd.ID)
	}
	last := ids[len(ids)-1]
	net.MarkPO(last, "po0")

	side := 2e4
	res := &Result{
		Pos:    make(map[logic.NodeID]geom.Point, len(ids)),
		POPads: map[string]geom.Point{"po0": {X: offset + side, Y: offset + side/2}},
		Die:    rectOf(offset, offset, offset+side, offset+side),
	}
	for _, id := range ids {
		res.Pos[id] = geom.Point{
			X: offset + rng.Float64()*side,
			Y: offset + rng.Float64()*side,
		}
	}
	return net, res
}

// TestHPWLPrecisionAtScale pins the numeric contract of TotalHPWL at
// frontier sizes: with hundreds of thousands of nets at coordinates far
// from the origin, the sequential fold must stay within 1e-9 relative
// error of a Kahan-compensated reference, and TotalHPWLParallel must be
// bit-identical to the sequential sum at every worker count (the
// per-net values are computed elementwise and folded in a fixed order,
// so parallelism may not perturb a single bit).
func TestHPWLPrecisionAtScale(t *testing.T) {
	n := 200000
	if testing.Short() {
		n = 20000
	}
	net, res := scaleNet(n, 1e7)

	total := res.TotalHPWL(net)
	if math.IsNaN(total) || math.IsInf(total, 0) || total <= 0 {
		t.Fatalf("TotalHPWL = %v, want a positive finite value", total)
	}

	// Kahan-compensated reference over the same per-net lengths.
	sum, comp := 0.0, 0.0
	for _, nd := range net.Nodes {
		if nd == nil {
			continue
		}
		pts := []geom.Point{res.Pos[nd.ID]}
		seen := map[logic.NodeID]bool{}
		for _, fo := range net.Fanouts(nd.ID) {
			if !seen[fo] {
				seen[fo] = true
				pts = append(pts, res.Pos[fo])
			}
		}
		for i, po := range net.POs {
			if po == nd.ID {
				pts = append(pts, res.POPads[net.PONames[i]])
			}
		}
		if len(pts) < 2 {
			continue
		}
		v := geom.Enclosing(pts).HalfPerimeter() - comp
		s := sum + v
		comp = (s - sum) - v
		sum = s
	}
	if rel := math.Abs(total-sum) / sum; rel > 1e-9 {
		t.Errorf("TotalHPWL drifted %.3g relative from the compensated sum (%.6f vs %.6f)",
			rel, total, sum)
	}

	for _, par := range []int{2, 8, runtime.NumCPU()} {
		if got := res.TotalHPWLParallel(net, par); got != total {
			t.Errorf("par=%d: TotalHPWLParallel = %v, sequential = %v (must be bit-identical)",
				par, got, total)
		}
	}
}

// TestDensityImbalanceExtremeDie checks the grid-binning arithmetic at
// a die offset far from the origin: every bin index must stay in range
// (points exactly on the upper-right boundary clamp into the last bin
// rather than indexing out), and the imbalance ratio is finite and at
// least 1 — the maximum bin can never hold fewer cells than the mean.
func TestDensityImbalanceExtremeDie(t *testing.T) {
	net, res := scaleNet(5000, 1e7)
	// Force the boundary cases the bin clamp exists for.
	res.Pos[net.Nodes[1].ID] = res.Die.UR
	res.Pos[net.Nodes[2].ID] = res.Die.LL
	for _, g := range []int{1, 7, 16, 64} {
		r := res.DensityImbalance(net, g)
		if math.IsNaN(r) || math.IsInf(r, 0) {
			t.Fatalf("g=%d: imbalance = %v", g, r)
		}
		if r < 1 {
			t.Errorf("g=%d: imbalance %v < 1; the max bin cannot be below the mean", g, r)
		}
	}
}

// TestCoarsenVCycleAtScale is the ≥50k-point clustering property test:
// the full coarsening ladder on a premapped 50k-gate generated circuit
// must keep every level a valid matching partition (clusters of one or
// two points), conserve total cell area level to level, never grow the
// pin count, and bottom out by actually shrinking — each accepted level
// reduces the point count by at least 5%.
func TestCoarsenVCycleAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-point coarsening ladder skipped under -short")
	}
	prob := mlProblemFor(t, "gen50k")
	if prob.n < 50000 {
		t.Fatalf("gen50k premapped to %d movable points, want >= 50000", prob.n)
	}
	wantArea := 0.0
	for _, a := range prob.areas {
		wantArea += a
	}
	levels := 0
	for prob.n > 1000 {
		parent, coarse, ok := coarsenOnce(prob)
		if !ok {
			break
		}
		levels++
		sizes := make([]int, coarse.n)
		for i, ci := range parent {
			if ci < 0 || int(ci) >= coarse.n {
				t.Fatalf("level %d: point %d mapped to cluster %d outside [0,%d)",
					levels, i, ci, coarse.n)
			}
			sizes[ci]++
		}
		for ci, sz := range sizes {
			if sz < 1 || sz > 2 {
				t.Fatalf("level %d: cluster %d holds %d points; matching allows 1 or 2",
					levels, ci, sz)
			}
		}
		if coarse.n > prob.n*19/20 {
			t.Fatalf("level %d: %d -> %d points, reduction below 5%%", levels, prob.n, coarse.n)
		}
		gotArea := 0.0
		for _, a := range coarse.areas {
			gotArea += a
		}
		if math.Abs(gotArea-wantArea) > 1e-6*wantArea {
			t.Fatalf("level %d: total area %.6f, want %.6f (conservation)", levels, gotArea, wantArea)
		}
		finePins, coarsePins := 0, 0
		for _, nd := range prob.nets {
			finePins += len(nd.pins)
		}
		for _, nd := range coarse.nets {
			coarsePins += len(nd.pins)
		}
		if coarsePins > finePins {
			t.Fatalf("level %d: pin count grew %d -> %d", levels, finePins, coarsePins)
		}
		prob = coarse
	}
	if levels < 4 {
		t.Fatalf("only %d coarsening levels on a 50k-point problem; ladder stopped early", levels)
	}
	t.Logf("coarsened through %d levels down to %d points", levels, prob.n)
}
