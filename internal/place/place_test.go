package place

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"lily/internal/bench"
	"lily/internal/decomp"
	"lily/internal/geom"
	"lily/internal/logic"
)

func TestCGSolvesSmallSystem(t *testing.T) {
	// Chain of 3 movable vertices between two fixed points at x=0 and x=4:
	// equilibrium is x = 1, 2, 3.
	q := newQuadSystem(3)
	q.addEdge(0, 1, 1)
	q.addEdge(1, 2, 1)
	q.addFixed(0, 1, 0, 0)
	q.addFixed(2, 1, 4, 0)
	x := make([]float64, 3)
	if _, err := q.solve(context.Background(), q.rhsX, x, 1e-10, 100); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-6 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestCGSingularDetected(t *testing.T) {
	q := newQuadSystem(2)
	q.addEdge(0, 1, 1) // no fixed anchor: singular Laplacian
	q.rhsX[0] = 1      // inconsistent right-hand side
	q.rhsX[1] = 1
	x := make([]float64, 2)
	if _, err := q.solve(context.Background(), q.rhsX, x, 1e-10, 100); err == nil {
		t.Error("singular system not detected")
	}
	// An isolated vertex (zero diagonal) must also be rejected.
	q2 := newQuadSystem(1)
	if _, err := q2.solve(context.Background(), q2.rhsX, make([]float64, 1), 1e-10, 10); err == nil {
		t.Error("zero-diagonal system not detected")
	}
}

func TestFMReducesCut(t *testing.T) {
	// Two 4-cliques joined by a single net; a bad initial partition mixes
	// them. FM must recover the natural split with cut 1.
	h := &Hypergraph{Areas: []float64{1, 1, 1, 1, 1, 1, 1, 1}}
	clique := func(cells []int) {
		for i := 0; i < len(cells); i++ {
			for j := i + 1; j < len(cells); j++ {
				h.Nets = append(h.Nets, []int{cells[i], cells[j]})
			}
		}
	}
	clique([]int{0, 1, 2, 3})
	clique([]int{4, 5, 6, 7})
	h.Nets = append(h.Nets, []int{3, 4})
	part := []int{0, 1, 0, 1, 0, 1, 0, 1} // alternating: terrible
	before := h.CutSize(part)
	after := FM(h, part, 0.1, 5)
	if after >= before {
		t.Errorf("FM did not improve: %d -> %d", before, after)
	}
	if after != 1 {
		t.Errorf("FM cut = %d, want 1 (part %v)", after, part)
	}
	// Balance: 4/4.
	n0 := 0
	for _, s := range part {
		if s == 0 {
			n0++
		}
	}
	if n0 != 4 {
		t.Errorf("FM imbalanced: %d vs %d", n0, 8-n0)
	}
}

func TestFMRespectsBalance(t *testing.T) {
	// A star: all nets touch cell 0. Cut is minimized by putting everything
	// on one side, but balance must forbid it.
	h := &Hypergraph{Areas: []float64{1, 1, 1, 1, 1, 1}}
	for i := 1; i < 6; i++ {
		h.Nets = append(h.Nets, []int{0, i})
	}
	part := []int{0, 0, 0, 1, 1, 1}
	FM(h, part, 0.1, 5)
	n0 := 0
	for _, s := range part {
		if s == 0 {
			n0++
		}
	}
	if n0 < 2 || n0 > 4 {
		t.Errorf("balance violated: %d vs %d", n0, 6-n0)
	}
}

func placeBenchmark(t *testing.T, name string) (*logic.Network, *Result) {
	t.Helper()
	p, ok := bench.ProfileByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	src := bench.Generate(p)
	res, err := decomp.Premap(src)
	if err != nil {
		t.Fatal(err)
	}
	sub := res.Inchoate
	pr, err := Global(sub, func(logic.NodeID) float64 { return 24 }, 60, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sub, pr
}

func TestGlobalPlacementBasics(t *testing.T) {
	sub, pr := placeBenchmark(t, "C432")
	// Every live node has a position inside the die.
	for _, nd := range sub.Nodes {
		if nd == nil {
			continue
		}
		pt, ok := pr.Pos[nd.ID]
		if !ok {
			t.Fatalf("node %s unplaced", nd.Name)
		}
		if !pr.Die.Contains(pt) {
			t.Errorf("node %s at %v outside die %v", nd.Name, pt, pr.Die)
		}
	}
	// PO pads exist and sit on the boundary.
	if len(pr.POPads) != len(sub.POs) {
		t.Errorf("%d PO pads for %d POs", len(pr.POPads), len(sub.POs))
	}
	for name, pt := range pr.POPads {
		if !onBoundary(pt, pr.Die) {
			t.Errorf("PO pad %s at %v not on boundary", name, pt)
		}
	}
	for _, pi := range sub.PIs {
		if !onBoundary(pr.Pos[pi], pr.Die) {
			t.Errorf("PI pad %s not on boundary", sub.Nodes[pi].Name)
		}
	}
}

func onBoundary(p geom.Point, die geom.Rect) bool {
	const eps = 1e-6
	return math.Abs(p.X-die.LL.X) < eps || math.Abs(p.X-die.UR.X) < eps ||
		math.Abs(p.Y-die.LL.Y) < eps || math.Abs(p.Y-die.UR.Y) < eps
}

func TestGlobalPlacementBalanced(t *testing.T) {
	_, pr := placeBenchmark(t, "C880")
	sub, _ := placeBenchmark(t, "C880")
	_ = sub
	imb := pr.DensityImbalance(sub, 4)
	if imb > 3.5 {
		t.Errorf("density imbalance %.2f too high; placement not balanced", imb)
	}
}

func TestGlobalPlacementBeatsRandom(t *testing.T) {
	sub, pr := placeBenchmark(t, "C432")
	placed := pr.TotalHPWL(sub)
	// Random placement baseline with the same die and pads.
	rng := rand.New(rand.NewSource(1))
	rnd := &Result{Pos: make(map[logic.NodeID]geom.Point), POPads: pr.POPads, Die: pr.Die}
	for _, nd := range sub.Nodes {
		if nd == nil {
			continue
		}
		if nd.Kind == logic.KindPI {
			rnd.Pos[nd.ID] = pr.Pos[nd.ID]
			continue
		}
		rnd.Pos[nd.ID] = geom.Point{
			X: pr.Die.LL.X + rng.Float64()*pr.Die.Width(),
			Y: pr.Die.LL.Y + rng.Float64()*pr.Die.Height(),
		}
	}
	random := rnd.TotalHPWL(sub)
	if placed >= random*0.7 {
		t.Errorf("global placement HPWL %.0f not clearly better than random %.0f", placed, random)
	}
}

func TestGlobalPlacementDeterministic(t *testing.T) {
	sub1, pr1 := placeBenchmark(t, "misex1")
	sub2, pr2 := placeBenchmark(t, "misex1")
	if pr1.Die != pr2.Die {
		t.Fatal("die differs")
	}
	for _, nd := range sub1.Nodes {
		if nd == nil {
			continue
		}
		id2 := sub2.NodeByName(nd.Name).ID
		a, b := pr1.Pos[nd.ID], pr2.Pos[id2]
		if math.Abs(a.X-b.X) > 1e-9 || math.Abs(a.Y-b.Y) > 1e-9 {
			t.Fatalf("node %s at %v vs %v", nd.Name, a, b)
		}
	}
}

func TestRegionsCoverAndBound(t *testing.T) {
	sub, pr := placeBenchmark(t, "misex1")
	for _, nd := range sub.Nodes {
		if nd == nil || nd.Kind != logic.KindLogic {
			continue
		}
		r, ok := pr.Regions[nd.ID]
		if !ok || r.IsEmpty() {
			t.Fatalf("node %s has no region", nd.Name)
		}
		if !r.Contains(pr.Pos[nd.ID]) {
			t.Errorf("node %s at %v outside its region %v", nd.Name, pr.Pos[nd.ID], r)
		}
	}
}

func TestPerimeterPoint(t *testing.T) {
	die := rectOf(0, 0, 10, 10)
	cases := []struct {
		d    float64
		want geom.Point
	}{
		{0, geom.Point{X: 0, Y: 0}},
		{5, geom.Point{X: 5, Y: 0}},
		{10, geom.Point{X: 10, Y: 0}},
		{15, geom.Point{X: 10, Y: 5}},
		{25, geom.Point{X: 5, Y: 10}},
		{35, geom.Point{X: 0, Y: 5}},
		{40, geom.Point{X: 0, Y: 0}}, // wraps
	}
	for _, tc := range cases {
		got := perimeterPoint(die, tc.d)
		if got != tc.want {
			t.Errorf("perimeterPoint(%v) = %v, want %v", tc.d, got, tc.want)
		}
	}
}

func TestGlobalRejectsEmptyNetwork(t *testing.T) {
	n := logic.New("empty")
	n.AddPI("a")
	if _, err := Global(n, func(logic.NodeID) float64 { return 1 }, 1, DefaultConfig()); err == nil {
		t.Error("expected error for network with no logic")
	}
}

func TestNaivePadsUsuallyWorse(t *testing.T) {
	// Connectivity-driven pad assignment should not lose to the uniform
	// spread on placed wirelength.
	p, _ := bench.ProfileByName("C432")
	src := bench.Generate(p)
	res, err := decomp.Premap(src)
	if err != nil {
		t.Fatal(err)
	}
	sub := res.Inchoate
	w := func(logic.NodeID) float64 { return 24.0 }
	smart, err := Global(sub, w, 60, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.NaivePads = true
	naive, err := Global(sub, w, 60, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if smart.TotalHPWL(sub) > naive.TotalHPWL(sub)*1.05 {
		t.Errorf("connectivity pads (%.0f) clearly worse than naive (%.0f)",
			smart.TotalHPWL(sub), naive.TotalHPWL(sub))
	}
}

func TestFixedPadsPinned(t *testing.T) {
	p, _ := bench.ProfileByName("misex1")
	src := bench.Generate(p)
	res, err := decomp.Premap(src)
	if err != nil {
		t.Fatal(err)
	}
	sub := res.Inchoate
	w := func(logic.NodeID) float64 { return 24.0 }
	first, err := Global(sub, w, 60, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Die = first.Die
	cfg.FixedPads = make(map[string]geom.Point)
	for _, pi := range sub.PIs {
		cfg.FixedPads[sub.Nodes[pi].Name] = first.Pos[pi]
	}
	for name, pos := range first.POPads {
		cfg.FixedPads[name] = pos
	}
	second, err := Global(sub, w, 60, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Die != first.Die {
		t.Error("fixed die not honored")
	}
	for _, pi := range sub.PIs {
		if second.Pos[pi] != first.Pos[pi] {
			t.Errorf("pinned PI pad %s moved", sub.Nodes[pi].Name)
		}
	}
	for name := range first.POPads {
		if second.POPads[name] != first.POPads[name] {
			t.Errorf("pinned PO pad %s moved", name)
		}
	}
}
