package place

import (
	"math"
	"runtime"
	"testing"

	"lily/internal/bench"
	"lily/internal/decomp"
	"lily/internal/logic"
)

// mlProblemFor mirrors GlobalContext's problem construction (pads spread
// on the boundary, nets with movable-index pins) for a premapped
// benchmark circuit, so the coarsening internals can be tested directly.
func mlProblemFor(t *testing.T, name string) mlProblem {
	t.Helper()
	p, ok := bench.ProfileByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	src := bench.Generate(p)
	res, err := decomp.Premap(src)
	if err != nil {
		t.Fatal(err)
	}
	sub := res.Inchoate
	var movable []logic.NodeID
	var areas []float64
	for _, nd := range sub.Nodes {
		if nd == nil || nd.Kind != logic.KindLogic {
			continue
		}
		movable = append(movable, nd.ID)
		areas = append(areas, 24*60)
	}
	idxArr := make([]int32, len(sub.Nodes))
	for i := range idxArr {
		idxArr[i] = -1
	}
	for mi, id := range movable {
		idxArr[id] = int32(mi)
	}
	die := rectOf(0, 0, 1000, 1000)
	var pads []*pad
	for _, pi := range sub.PIs {
		pads = append(pads, &pad{name: sub.Nodes[pi].Name, isPI: true, node: pi})
	}
	for i, po := range sub.POs {
		pads = append(pads, &pad{name: sub.PONames[i], node: po})
	}
	spreadPads(pads, die)
	return mlProblem{n: len(movable), areas: areas, nets: buildNets(sub, pads, idxArr)}
}

// TestCoarsenIsPartition: heavy-edge matching must produce a partition —
// every fine point lands in exactly one cluster, clusters hold one or two
// points, and merged clusters respect the 4x-mean area bound.
func TestCoarsenIsPartition(t *testing.T) {
	prob := mlProblemFor(t, "C880")
	parent, coarse, ok := coarsenOnce(prob)
	if !ok {
		t.Fatal("coarsening failed to shrink C880")
	}
	if len(parent) != prob.n {
		t.Fatalf("parent len %d, want %d", len(parent), prob.n)
	}
	sizes := make([]int, coarse.n)
	for i, ci := range parent {
		if ci < 0 || int(ci) >= coarse.n {
			t.Fatalf("point %d mapped to cluster %d outside [0,%d)", i, ci, coarse.n)
		}
		sizes[ci]++
	}
	total := 0.0
	for _, a := range prob.areas {
		total += a
	}
	maxArea := 4 * total / float64(prob.n)
	carea := make([]float64, coarse.n)
	for i, ci := range parent {
		carea[ci] += prob.areas[i]
	}
	for ci, sz := range sizes {
		if sz == 0 {
			t.Fatalf("cluster %d empty", ci)
		}
		if sz > 2 {
			t.Fatalf("cluster %d holds %d points; matching allows at most 2", ci, sz)
		}
		if sz == 2 && carea[ci] > maxArea+1e-9 {
			t.Fatalf("cluster %d area %.1f exceeds bound %.1f", ci, carea[ci], maxArea)
		}
		if math.Abs(carea[ci]-coarse.areas[ci]) > 1e-9 {
			t.Fatalf("cluster %d area %.3f disagrees with coarse problem %.3f", ci, carea[ci], coarse.areas[ci])
		}
	}
	if coarse.n > prob.n*19/20 {
		t.Fatalf("coarsening kept %d of %d points, reduction below 5%%", coarse.n, prob.n)
	}
}

// TestCoarsenConservesConnectivity: every fine net whose pins touch at
// least two distinct clusters (or a cluster and a pad) must survive as a
// coarse net over exactly those terminals, in fine-net order; nets fully
// interior to one cluster must vanish. Total coarse pin count therefore
// never exceeds the fine pin count.
func TestCoarsenConservesConnectivity(t *testing.T) {
	prob := mlProblemFor(t, "C880")
	parent, coarse, ok := coarsenOnce(prob)
	if !ok {
		t.Fatal("coarsening failed to shrink C880")
	}
	finePins, coarsePins := 0, 0
	ci := 0
	for ni, nd := range prob.nets {
		finePins += len(nd.pins)
		// Independent projection: pads in place, cluster pins deduped to
		// first occurrence.
		var want []netPin
		seen := map[int32]bool{}
		for _, pin := range nd.pins {
			if pin.pad != nil {
				want = append(want, pin)
				continue
			}
			if pin.cell < 0 {
				continue
			}
			c := parent[pin.cell]
			if !seen[c] {
				seen[c] = true
				want = append(want, netPin{cell: int(c)})
			}
		}
		if len(want) < 2 {
			continue // interior to a cluster: must be dropped
		}
		if ci >= len(coarse.nets) {
			t.Fatalf("fine net %d has no coarse image (only %d coarse nets)", ni, len(coarse.nets))
		}
		got := coarse.nets[ci].pins
		if len(got) != len(want) {
			t.Fatalf("fine net %d: coarse image has %d pins, want %d", ni, len(got), len(want))
		}
		for k := range want {
			if got[k].pad != want[k].pad || (want[k].pad == nil && got[k].cell != want[k].cell) {
				t.Fatalf("fine net %d pin %d: got %+v want %+v", ni, k, got[k], want[k])
			}
		}
		coarsePins += len(got)
		ci++
	}
	if ci != len(coarse.nets) {
		t.Fatalf("%d coarse nets produced, %d expected from projection", len(coarse.nets), ci)
	}
	if coarsePins > finePins {
		t.Fatalf("coarse pin total %d exceeds fine total %d", coarsePins, finePins)
	}
}

// TestExpandRegionsInvariants: unclustering a region forest must keep
// every fine point in exactly one region (its cluster's), preserve the
// rectangles, and rebuild per-region net lists in ascending order with
// at least two pins each.
func TestExpandRegionsInvariants(t *testing.T) {
	prob := mlProblemFor(t, "misex1")
	parent, coarse, ok := coarsenOnce(prob)
	if !ok {
		t.Fatal("coarsening failed to shrink misex1")
	}
	// Two coarse regions: even clusters left, odd clusters right.
	left := &region{rect: rectOf(0, 0, 500, 1000)}
	right := &region{rect: rectOf(500, 0, 1000, 1000)}
	for c := 0; c < coarse.n; c++ {
		if c%2 == 0 {
			left.cells = append(left.cells, c)
		} else {
			right.cells = append(right.cells, c)
		}
	}
	out := expandRegions([]*region{left, right}, parent, coarse.n, prob)
	if len(out) != 2 {
		t.Fatalf("expand produced %d regions, want 2", len(out))
	}
	if out[0].rect != left.rect || out[1].rect != right.rect {
		t.Fatal("region rectangles not preserved across expansion")
	}
	seen := make([]int, prob.n)
	for ri, r := range out {
		prev := -1
		for _, c := range r.cells {
			seen[c]++
			if int(parent[c])%2 != ri {
				t.Fatalf("point %d (cluster %d) landed in region %d", c, parent[c], ri)
			}
			if c <= prev {
				t.Fatalf("region %d cells not ascending: %d after %d", ri, c, prev)
			}
			prev = c
		}
		prevN := int32(-1)
		for _, ni := range r.nets {
			if ni <= prevN {
				t.Fatalf("region %d nets not ascending", ri)
			}
			prevN = ni
			cnt := 0
			for _, pin := range prob.nets[ni].pins {
				if c := pinCell(pin); c >= 0 && int(parent[c])%2 == ri {
					cnt++
				}
			}
			if cnt < 2 {
				t.Fatalf("region %d lists net %d with %d interior pins", ri, ni, cnt)
			}
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("point %d appears in %d regions", i, c)
		}
	}
}

// placeWithConfig places a premapped benchmark with the given config.
func placeWithConfig(t *testing.T, name string, cfg Config) (*logic.Network, *Result) {
	t.Helper()
	p, ok := bench.ProfileByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	src := bench.Generate(p)
	res, err := decomp.Premap(src)
	if err != nil {
		t.Fatal(err)
	}
	sub := res.Inchoate
	pr, err := Global(sub, func(logic.NodeID) float64 { return 24 }, 60, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sub, pr
}

// TestMultilevelPlacesInsideDie: with the V-cycle engaged, every node
// still lands inside the die, every movable node keeps a region that
// contains it, and pads stay on the boundary.
func TestMultilevelPlacesInsideDie(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MultilevelThreshold = 200
	sub, pr := placeWithConfig(t, "C880", cfg)
	for _, nd := range sub.Nodes {
		if nd == nil {
			continue
		}
		pt, ok := pr.Pos[nd.ID]
		if !ok {
			t.Fatalf("node %s unplaced", nd.Name)
		}
		if !pr.Die.Contains(pt) {
			t.Errorf("node %s at %v outside die %v", nd.Name, pt, pr.Die)
		}
		if nd.Kind == logic.KindLogic {
			r, ok := pr.Regions[nd.ID]
			if !ok || r.IsEmpty() {
				t.Fatalf("node %s has no region", nd.Name)
			}
			if !r.Contains(pt) {
				t.Errorf("node %s at %v outside its region %v", nd.Name, pt, r)
			}
		}
	}
	for name, pt := range pr.POPads {
		if !onBoundary(pt, pr.Die) {
			t.Errorf("PO pad %s at %v not on boundary", name, pt)
		}
	}
	// The multilevel path must actually have engaged: it produces a
	// different (coarse-seeded) solution than the flat path.
	_, flat := placeWithConfig(t, "C880", DefaultConfig())
	same := true
	for id, pt := range pr.Pos {
		if flat.Pos[id] != pt {
			same = false
			break
		}
	}
	if same {
		t.Fatal("multilevel placement identical to flat: V-cycle did not engage")
	}
}

// TestMultilevelDeterministicAcrossParallelism: the V-cycle must be
// byte-identical at every Parallelism setting (DESIGN.md §13 extended to
// §15's coarsening and refinement stages).
func TestMultilevelDeterministicAcrossParallelism(t *testing.T) {
	base := DefaultConfig()
	base.MultilevelThreshold = 200
	var ref *Result
	var refNet *logic.Network
	for _, par := range []int{1, 2, runtime.NumCPU()} {
		cfg := base
		cfg.Parallelism = par
		sub, pr := placeWithConfig(t, "C499", cfg)
		if ref == nil {
			ref, refNet = pr, sub
			continue
		}
		for _, nd := range refNet.Nodes {
			if nd == nil {
				continue
			}
			id2 := sub.NodeByName(nd.Name).ID
			if ref.Pos[nd.ID] != pr.Pos[id2] {
				t.Fatalf("par=%d: node %s at %v, want %v (bit-exact)", par, nd.Name, pr.Pos[id2], ref.Pos[nd.ID])
			}
		}
		for name, pt := range ref.POPads {
			if pr.POPads[name] != pt {
				t.Fatalf("par=%d: PO pad %s moved", par, name)
			}
		}
	}
}

// TestMultilevelHPWLComparableToFlat: the V-cycle is a scaling device,
// not a quality trade — on a midsize circuit where the flat path is
// still comfortable, the coarse-seeded solution must stay within 2x of
// the flat solution's total HPWL (in practice it lands within a few
// percent; the logged ratio feeds EXPERIMENTS.md's size sweep).
func TestMultilevelHPWLComparableToFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("flat-vs-multilevel quality comparison skipped under -short")
	}
	flatCfg := DefaultConfig()
	flatCfg.MultilevelThreshold = -1
	sub, flat := placeWithConfig(t, "mid5k", flatCfg)

	mlCfg := DefaultConfig()
	mlCfg.MultilevelThreshold = 1000
	subML, ml := placeWithConfig(t, "mid5k", mlCfg)

	hpFlat := flat.TotalHPWL(sub)
	hpML := ml.TotalHPWL(subML)
	if hpFlat <= 0 || hpML <= 0 {
		t.Fatalf("non-positive HPWL: flat %v, multilevel %v", hpFlat, hpML)
	}
	ratio := hpML / hpFlat
	t.Logf("mid5k: flat HPWL %.0f um, multilevel HPWL %.0f um, ratio %.3f", hpFlat, hpML, ratio)
	if ratio > 2 {
		t.Errorf("multilevel HPWL %.0f is %.2fx flat %.0f (want <= 2x)", hpML, ratio, hpFlat)
	}
}
