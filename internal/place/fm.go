package place

// Hypergraph is the netlist view the Fiduccia–Mattheyses partitioner works
// on: cells with areas, and nets as lists of cell indices. Cells belonging
// to a single net position are deduplicated by the caller.
type Hypergraph struct {
	Areas []float64
	Nets  [][]int
}

// NumCells returns the number of cells.
func (h *Hypergraph) NumCells() int { return len(h.Areas) }

// CutSize counts the nets with pins on both sides of the partition.
func (h *Hypergraph) CutSize(part []int) int {
	cut := 0
	for _, net := range h.Nets {
		has0, has1 := false, false
		for _, c := range net {
			if part[c] == 0 {
				has0 = true
			} else {
				has1 = true
			}
		}
		if has0 && has1 {
			cut++
		}
	}
	return cut
}

// FM refines the initial bipartition part (0/1 per cell) in place using the
// Fiduccia–Mattheyses pass algorithm with area balance tolerance tol (each
// side stays within (0.5±tol) of the total area, loosened if the initial
// partition is already outside). It returns the final cut size.
func FM(h *Hypergraph, part []int, tol float64, maxPasses int) int {
	n := h.NumCells()
	if n == 0 {
		return 0
	}
	total := 0.0
	side := [2]float64{}
	for c, a := range h.Areas {
		total += a
		side[part[c]] += a
	}
	maxCell := 0.0
	for _, a := range h.Areas {
		if a > maxCell {
			maxCell = a
		}
	}
	// Classic FM balance criterion: each side may deviate from half the
	// total by tol·total or one maximum cell area, whichever is larger —
	// otherwise no single move is ever legal.
	dev := tol * total
	if maxCell > dev {
		dev = maxCell
	}
	lo := total/2 - dev
	hi := total/2 + dev
	// Loosen bounds if the seed partition violates them (e.g. one huge cell).
	if side[0] < lo || side[1] < lo {
		m := side[0]
		if side[1] < m {
			m = side[1]
		}
		lo = m
		hi = total - m
	}

	// Pin counts per net per side.
	cnt := make([][2]int, len(h.Nets))
	netsOf := make([][]int, n)
	for ni, net := range h.Nets {
		for _, c := range net {
			cnt[ni][part[c]]++
			netsOf[c] = append(netsOf[c], ni)
		}
	}

	maxDeg := 1
	for _, ns := range netsOf {
		if len(ns) > maxDeg {
			maxDeg = len(ns)
		}
	}

	gain := make([]int, n)
	computeGain := func(c int) int {
		g := 0
		from := part[c]
		to := 1 - from
		for _, ni := range netsOf[c] {
			if cnt[ni][from] == 1 {
				g++ // moving c uncuts (or keeps uncut) this net
			}
			if cnt[ni][to] == 0 {
				g-- // moving c newly cuts this net
			}
		}
		return g
	}

	bestCut := h.CutSize(part)
	for pass := 0; pass < maxPasses; pass++ {
		b := newBuckets(n, maxDeg)
		for c := 0; c < n; c++ {
			gain[c] = computeGain(c)
			b.insert(c, gain[c])
		}
		locked := make([]bool, n)
		type move struct {
			cell int
			cut  int
		}
		var moves []move
		curCut := h.CutSize(part)
		runCut := curCut

		for moved := 0; moved < n; moved++ {
			// Highest-gain cell whose move keeps balance.
			c := b.popBest(func(c int) bool {
				from := part[c]
				newFrom := side[from] - h.Areas[c]
				newTo := side[1-from] + h.Areas[c]
				return newFrom >= lo-1e-9 && newTo <= hi+1e-9
			})
			if c < 0 {
				break
			}
			from := part[c]
			to := 1 - from
			// Update gains of neighbors before flipping counts (standard FM
			// incremental update).
			for _, ni := range netsOf[c] {
				// Before move: if net had 0 pins on 'to', every unlocked
				// pin gains +1 when c arrives there... use the classic
				// update rules.
				if cnt[ni][to] == 0 {
					for _, d := range h.Nets[ni] {
						if !locked[d] && d != c {
							b.update(d, gain[d], gain[d]+1)
							gain[d]++
						}
					}
				} else if cnt[ni][to] == 1 {
					for _, d := range h.Nets[ni] {
						if !locked[d] && d != c && part[d] == to {
							b.update(d, gain[d], gain[d]-1)
							gain[d]--
						}
					}
				}
				cnt[ni][from]--
				cnt[ni][to]++
				if cnt[ni][from] == 0 {
					for _, d := range h.Nets[ni] {
						if !locked[d] && d != c {
							b.update(d, gain[d], gain[d]-1)
							gain[d]--
						}
					}
				} else if cnt[ni][from] == 1 {
					for _, d := range h.Nets[ni] {
						if !locked[d] && d != c && part[d] == from {
							b.update(d, gain[d], gain[d]+1)
							gain[d]++
						}
					}
				}
			}
			runCut -= gain[c]
			side[from] -= h.Areas[c]
			side[to] += h.Areas[c]
			part[c] = to
			locked[c] = true
			moves = append(moves, move{c, runCut})
		}

		// Roll back to the best prefix.
		bestIdx := -1
		bestPrefix := curCut
		for i, m := range moves {
			if m.cut < bestPrefix {
				bestPrefix = m.cut
				bestIdx = i
			}
		}
		for i := len(moves) - 1; i > bestIdx; i-- {
			c := moves[i].cell
			from := part[c]
			to := 1 - from
			side[from] -= h.Areas[c]
			side[to] += h.Areas[c]
			part[c] = to
		}
		// Recompute counts after rollback.
		for ni := range cnt {
			cnt[ni] = [2]int{}
			for _, c := range h.Nets[ni] {
				cnt[ni][part[c]]++
			}
		}
		if bestPrefix >= bestCut {
			break
		}
		bestCut = bestPrefix
	}
	return h.CutSize(part)
}

// buckets is the FM gain-bucket structure: doubly linked lists per gain
// value with a moving max pointer.
type buckets struct {
	offset  int
	head    []int // per gain bucket -> first cell or -1
	next    []int
	prev    []int
	bucket  []int // per cell -> bucket index or -1
	maxIdx  int
	numLive int
}

func newBuckets(n, maxGain int) *buckets {
	b := &buckets{
		offset: maxGain,
		head:   make([]int, 2*maxGain+1),
		next:   make([]int, n),
		prev:   make([]int, n),
		bucket: make([]int, n),
	}
	for i := range b.head {
		b.head[i] = -1
	}
	for i := range b.bucket {
		b.bucket[i] = -1
	}
	b.maxIdx = -1
	return b
}

func (b *buckets) insert(c, gain int) {
	idx := gain + b.offset
	b.bucket[c] = idx
	b.prev[c] = -1
	b.next[c] = b.head[idx]
	if b.head[idx] >= 0 {
		b.prev[b.head[idx]] = c
	}
	b.head[idx] = c
	if idx > b.maxIdx {
		b.maxIdx = idx
	}
	b.numLive++
}

func (b *buckets) remove(c int) {
	idx := b.bucket[c]
	if idx < 0 {
		return
	}
	if b.prev[c] >= 0 {
		b.next[b.prev[c]] = b.next[c]
	} else {
		b.head[idx] = b.next[c]
	}
	if b.next[c] >= 0 {
		b.prev[b.next[c]] = b.prev[c]
	}
	b.bucket[c] = -1
	b.numLive--
}

func (b *buckets) update(c, oldGain, newGain int) {
	if b.bucket[c] < 0 {
		return // already popped/locked
	}
	b.remove(c)
	b.insert(c, newGain)
}

// popBest removes and returns the highest-gain cell satisfying ok, or -1.
func (b *buckets) popBest(ok func(c int) bool) int {
	for idx := b.maxIdx; idx >= 0; idx-- {
		for c := b.head[idx]; c >= 0; c = b.next[c] {
			if ok(c) {
				b.remove(c)
				// Lower maxIdx lazily.
				for b.maxIdx >= 0 && b.head[b.maxIdx] < 0 {
					b.maxIdx--
				}
				return c
			}
		}
	}
	return -1
}
