package place

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"lily/internal/geom"
	"lily/internal/logic"
	"lily/internal/obs"
)

// Config tunes the global placer.
type Config struct {
	// Utilization is the cell-area / die-area ratio used to size the die
	// when none is given (standard-cell area predictors in the style of
	// the paper's ref [15] put achievable utilization near 0.5–0.6).
	Utilization float64
	// MinRegion stops recursive bipartitioning when a region holds at most
	// this many cells (the paper's "user-specified parameter", §3.1).
	MinRegion int
	// CGTol and CGMaxIter control the conjugate-gradient solver.
	CGTol     float64
	CGMaxIter int
	// MaxLevels bounds the bipartition recursion depth.
	MaxLevels int
	// Die, when non-empty, fixes the placement region instead of sizing
	// it from the cell area (used when re-placing a partially mapped
	// network in the coordinate system of an earlier placement, §3.2).
	Die geom.Rect
	// FixedPads pins pad positions by name (PI names and PO names) and
	// disables connectivity-driven pad assignment. Pads absent from the
	// map fall back to the uniform boundary spread.
	FixedPads map[string]geom.Point
	// NaivePads keeps the initial uniform pad spread instead of running
	// the connectivity-driven assignment — the ablation behind the
	// paper's §5 remark that the initial pad placement influences how
	// much wire reduction Lily can achieve.
	NaivePads bool
	// Parallelism bounds the worker count for the CG mat-vec, the two
	// per-axis solves, the per-level region splits, and the HPWL
	// reduction (DESIGN.md §13). Every parallel path is elementwise or
	// folds partial sums in a fixed partition order, so the placement is
	// bit-identical at any setting; 0 or 1 runs sequentially.
	Parallelism int
	// MultilevelThreshold engages the multilevel V-cycle (DESIGN.md §15)
	// when the movable-cell count reaches it: seeded heavy-edge matching
	// coarsens the netlist until the coarsest level fits the flat
	// CG+FM engine, and each uncluster step seeds children from the
	// parent cluster centroid and runs a bounded anchored refinement.
	// Zero disables multilevel entirely (the flat path is byte-identical
	// to earlier releases at any threshold above the instance size).
	MultilevelThreshold int
}

// DefaultConfig returns the configuration used throughout the experiments.
func DefaultConfig() Config {
	return Config{
		Utilization:         0.55,
		MinRegion:           12,
		CGTol:               1e-6,
		CGMaxIter:           400,
		MaxLevels:           14,
		MultilevelThreshold: 25000,
	}
}

// Result is a balanced global point placement.
type Result struct {
	// Pos maps every live node (PIs at their pad positions, logic nodes at
	// their placed positions) to a point on the die.
	Pos map[logic.NodeID]geom.Point
	// POPads maps each primary-output name to its pad position on the
	// boundary.
	POPads map[string]geom.Point
	// Die is the placement region.
	Die geom.Rect
	// Regions maps each movable node to its final region rectangle.
	Regions map[logic.NodeID]geom.Rect
}

// pad is a fixed boundary terminal: a PI pad (driving its net) or a PO pad
// (an extra sink on the PO node's net).
type pad struct {
	name string
	isPI bool
	node logic.NodeID // PI node, or the PO's driver node
	pos  geom.Point
}

// Global places the network: pads are assigned to the boundary by
// connectivity, then the movable gates get a balanced quadratic placement
// with recursive min-cut bipartitioning (GORDIAN-style).
func Global(net *logic.Network, cellWidth func(logic.NodeID) float64, rowHeight float64, cfg Config) (*Result, error) {
	return GlobalContext(context.Background(), net, cellWidth, rowHeight, cfg)
}

// GlobalContext is Global with cancellation: the partition levels and the
// conjugate-gradient solver check ctx and abort promptly with ctx.Err()
// when it is cancelled, so long placements can be interrupted.
func GlobalContext(ctx context.Context, net *logic.Network, cellWidth func(logic.NodeID) float64, rowHeight float64, cfg Config) (*Result, error) {
	if cfg.Utilization <= 0 || cfg.Utilization > 1 {
		return nil, fmt.Errorf("place: bad utilization %v", cfg.Utilization)
	}
	// Phase-scoped trace span; a context without a tracer makes this (and
	// every span method below) an allocation-free no-op.
	ctx, span := obs.StartSpan(ctx, "placement")
	defer span.End()
	// Movable cells.
	var movable []logic.NodeID
	var areas []float64
	totalArea := 0.0
	for _, nd := range net.Nodes {
		if nd == nil || nd.Kind != logic.KindLogic {
			continue
		}
		movable = append(movable, nd.ID)
		a := cellWidth(nd.ID) * rowHeight
		areas = append(areas, a)
		totalArea += a
	}
	if len(movable) == 0 {
		return nil, fmt.Errorf("place: network has no logic nodes")
	}
	die := cfg.Die
	// The zero Rect is a degenerate point, not the canonical empty
	// rectangle; treat any zero-extent die as "size it from the area".
	if die.IsEmpty() || die.Width() <= 0 || die.Height() <= 0 {
		side := math.Sqrt(totalArea / cfg.Utilization)
		die = geom.Enclosing([]geom.Point{{X: 0, Y: 0}, {X: side, Y: side}})
	}

	// Pads: PIs then POs, initially spread uniformly around the boundary.
	var pads []*pad
	for _, pi := range net.PIs {
		pads = append(pads, &pad{name: net.Nodes[pi].Name, isPI: true, node: pi})
	}
	for i, po := range net.POs {
		pads = append(pads, &pad{name: net.PONames[i], node: po})
	}
	spreadPads(pads, die)
	if cfg.FixedPads != nil {
		for _, pd := range pads {
			if p, ok := cfg.FixedPads[pd.name]; ok {
				pd.pos = p
			}
		}
	}

	// Dense NodeID -> movable-index translation, used once while building
	// the nets; net pins carry movable indices from then on.
	idxArr := make([]int32, len(net.Nodes))
	for i := range idxArr {
		idxArr[i] = -1
	}
	for mi, id := range movable {
		idxArr[id] = int32(mi)
	}
	// Nets: one per driver with at least two terminals.
	nets := buildNets(net, pads, idxArr)

	p := &placer{
		ctx: ctx, net: net, cfg: cfg, die: die,
		movable: movable, n: len(movable), areas: areas,
		pads: pads, nets: nets,
		width: cellWidth, rowHeight: rowHeight,
		fm: obs.FlowMetricsFrom(ctx),
	}
	var res *Result
	var err error
	if cfg.MultilevelThreshold > 0 && len(movable) >= cfg.MultilevelThreshold {
		res, err = p.runMultilevel()
	} else {
		res, err = p.run()
	}
	if err != nil {
		span.SetError(err)
		return nil, err
	}
	p.fm.CGIterations.Add(uint64(p.cgIters))
	if span.Enabled() {
		span.SetInt("cells", int64(len(movable)))
		span.SetInt("cg_iterations", int64(p.cgIters))
		span.SetInt("partition_levels", int64(p.levels))
		span.SetInt("coarsen_levels", int64(p.mlLevels))
		span.SetFloat("hpwl_um", res.TotalHPWL(net))
	}
	return res, nil
}

// netPin is one terminal of a net: either a movable cell or a fixed pad.
type netPin struct {
	cell int  // movable index, or -1
	pad  *pad // fixed pad, or nil
}

type netDef struct {
	pins []netPin
}

// buildNets builds one net per driver with at least two terminals. Cell
// pins are resolved to movable indices through idxArr up front (-1 for
// non-movable cells), so every later consumer works on dense indices.
func buildNets(net *logic.Network, pads []*pad, idxArr []int32) []netDef {
	piPad := make(map[logic.NodeID]*pad)
	poPads := make(map[logic.NodeID][]*pad)
	for _, pd := range pads {
		if pd.isPI {
			piPad[pd.node] = pd
		} else {
			poPads[pd.node] = append(poPads[pd.node], pd)
		}
	}
	var nets []netDef
	for _, nd := range net.Nodes {
		if nd == nil {
			continue
		}
		var pins []netPin
		if nd.Kind == logic.KindPI {
			pins = append(pins, netPin{cell: -1, pad: piPad[nd.ID]})
		} else {
			pins = append(pins, netPin{cell: int(idxArr[nd.ID])})
		}
		for _, fo := range dedup(net.Fanouts(nd.ID)) {
			pins = append(pins, netPin{cell: int(idxArr[fo])})
		}
		for _, pd := range poPads[nd.ID] {
			pins = append(pins, netPin{cell: -1, pad: pd})
		}
		if len(pins) >= 2 {
			nets = append(nets, netDef{pins: pins})
		}
	}
	return nets
}

func dedup(ids []logic.NodeID) []logic.NodeID {
	seen := make(map[logic.NodeID]bool, len(ids))
	out := ids[:0:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// spreadPads distributes pads uniformly around the die boundary in their
// current order.
func spreadPads(pads []*pad, die geom.Rect) {
	n := len(pads)
	if n == 0 {
		return
	}
	perim := 2 * (die.Width() + die.Height())
	for i, pd := range pads {
		d := perim * float64(i) / float64(n)
		pd.pos = perimeterPoint(die, d)
	}
}

// perimeterPoint maps a distance along the boundary (counterclockwise from
// the lower-left corner) to a point.
func perimeterPoint(die geom.Rect, d float64) geom.Point {
	w, h := die.Width(), die.Height()
	d = math.Mod(d, 2*(w+h))
	switch {
	case d < w:
		return geom.Point{X: die.LL.X + d, Y: die.LL.Y}
	case d < w+h:
		return geom.Point{X: die.UR.X, Y: die.LL.Y + (d - w)}
	case d < 2*w+h:
		return geom.Point{X: die.UR.X - (d - w - h), Y: die.UR.Y}
	default:
		return geom.Point{X: die.LL.X, Y: die.UR.Y - (d - 2*w - h)}
	}
}

type placer struct {
	ctx context.Context
	net *logic.Network
	cfg Config
	die geom.Rect
	// movable maps point index -> NodeID at the finest level; the solver
	// core below it only sees n points with areas and nets, so the
	// multilevel driver can swap in coarsened problems (multilevel.go).
	movable   []logic.NodeID
	n         int
	areas     []float64
	pads      []*pad
	nets      []netDef
	width     func(logic.NodeID) float64
	rowHeight float64

	// fm receives solver-effort counters; levels and cgIters accumulate
	// partition depth and conjugate-gradient iterations for the span;
	// mlLevels counts coarsening levels when the V-cycle engages.
	fm       *obs.FlowMetrics
	levels   int
	cgIters  int
	mlLevels int

	// scratch pools the movable->local projection arrays used by
	// splitRegion, one per partition worker instead of one per region.
	scratch sync.Pool

	x, y []float64
}

func (p *placer) run() (*Result, error) {
	p.x = make([]float64, p.n)
	p.y = make([]float64, p.n)
	c := p.die.Center()
	for i := range p.x {
		p.x[i] = c.X
		p.y[i] = c.Y
	}

	// Phase 1: unconstrained QP with the initial pad spread.
	if err := p.solveQP(nil, 0); err != nil {
		return nil, err
	}
	// Phase 2: connectivity-driven pad assignment, then re-solve —
	// skipped when the caller pinned the pads or asked for naive pads.
	if p.cfg.FixedPads == nil && !p.cfg.NaivePads {
		p.assignPads()
		if err := p.solveQP(nil, 0); err != nil {
			return nil, err
		}
	}
	// Phase 3: recursive bipartitioning with region anchors.
	leaves, err := p.partitionFrom([]*region{p.rootRegion()}, 1, p.cfg.MaxLevels)
	if err != nil {
		return nil, err
	}
	return p.assemble(leaves), nil
}

// assemble turns the final point positions and leaf regions into a Result,
// clamping every point into its region rectangle.
func (p *placer) assemble(leaves []*region) *Result {
	rects := make([]geom.Rect, p.n)
	for _, r := range leaves {
		for _, ci := range r.cells {
			rects[ci] = r.rect
		}
	}
	res := &Result{
		Pos:     make(map[logic.NodeID]geom.Point, p.n+len(p.pads)),
		POPads:  make(map[string]geom.Point),
		Die:     p.die,
		Regions: make(map[logic.NodeID]geom.Rect, p.n),
	}
	for i, id := range p.movable {
		pt := geom.Point{X: p.x[i], Y: p.y[i]}
		r := rects[i]
		pt = clampTo(pt, r)
		res.Pos[id] = pt
		res.Regions[id] = r
	}
	for _, pd := range p.pads {
		if pd.isPI {
			res.Pos[pd.node] = pd.pos
		} else {
			res.POPads[pd.name] = pd.pos
		}
	}
	return res
}

func clampTo(pt geom.Point, r geom.Rect) geom.Point {
	if r.IsEmpty() {
		return pt
	}
	if pt.X < r.LL.X {
		pt.X = r.LL.X
	}
	if pt.X > r.UR.X {
		pt.X = r.UR.X
	}
	if pt.Y < r.LL.Y {
		pt.Y = r.LL.Y
	}
	if pt.Y > r.UR.Y {
		pt.Y = r.UR.Y
	}
	return pt
}

// solveQP solves both axes with optional per-cell anchors (region centers).
// The axes share the system matrix but are otherwise independent, so with
// Parallelism > 1 they solve concurrently; iteration counts still
// accumulate in X-then-Y order.
func (p *placer) solveQP(anchor []geom.Point, anchorW float64) error {
	q := newQuadSystem(p.n)
	q.par = p.cfg.Parallelism
	for _, nd := range p.nets {
		k := len(nd.pins)
		if k <= 8 {
			w := 2.0 / float64(k)
			for a := 0; a < k; a++ {
				for b := a + 1; b < k; b++ {
					p.couple(q, nd.pins[a], nd.pins[b], w)
				}
			}
		} else {
			// Star model from the driver for big nets.
			w := 1.0
			for b := 1; b < k; b++ {
				p.couple(q, nd.pins[0], nd.pins[b], w)
			}
		}
	}
	if anchor != nil {
		for i := 0; i < p.n; i++ {
			q.addFixed(i, anchorW, anchor[i].X, anchor[i].Y)
		}
	}
	if p.cfg.Parallelism > 1 {
		var itY int
		var errY error
		done := make(chan struct{})
		go func() {
			defer close(done)
			itY, errY = q.solve(p.ctx, q.rhsY, p.y, p.cfg.CGTol, p.cfg.CGMaxIter)
		}()
		itX, errX := q.solve(p.ctx, q.rhsX, p.x, p.cfg.CGTol, p.cfg.CGMaxIter)
		<-done
		p.cgIters += itX
		if errX != nil {
			return errX
		}
		p.cgIters += itY
		return errY
	}
	itX, err := q.solve(p.ctx, q.rhsX, p.x, p.cfg.CGTol, p.cfg.CGMaxIter)
	p.cgIters += itX
	if err != nil {
		return err
	}
	itY, err := q.solve(p.ctx, q.rhsY, p.y, p.cfg.CGTol, p.cfg.CGMaxIter)
	p.cgIters += itY
	return err
}

// couple adds the quadratic coupling between two net pins, resolving
// movable indices and fixed pad positions.
func (p *placer) couple(q *quadSystem, a, b netPin, w float64) {
	ai, bi := p.pinIndex(a), p.pinIndex(b)
	switch {
	case ai >= 0 && bi >= 0:
		q.addEdge(ai, bi, w)
	case ai >= 0:
		q.addFixed(ai, w, b.pad.pos.X, b.pad.pos.Y)
	case bi >= 0:
		q.addFixed(bi, w, a.pad.pos.X, a.pad.pos.Y)
	}
}

func (p *placer) pinIndex(pin netPin) int {
	if pin.pad != nil {
		return -1
	}
	return pin.cell
}

// assignPads reassigns pads to boundary slots ordered by the angle of each
// pad's connected-cell centroid around the die center — the bottom-up,
// connectivity-driven pad placement of the paper's ref [20].
func (p *placer) assignPads() {
	center := p.die.Center()
	type padAngle struct {
		pd    *pad
		angle float64
	}
	// Connected-cell centroid per pad.
	conn := make(map[*pad][]geom.Point)
	for _, nd := range p.nets {
		var padsIn []*pad
		var cells []geom.Point
		for _, pin := range nd.pins {
			if pin.pad != nil {
				padsIn = append(padsIn, pin.pad)
			} else if i := p.pinIndex(pin); i >= 0 {
				cells = append(cells, geom.Point{X: p.x[i], Y: p.y[i]})
			}
		}
		for _, pd := range padsIn {
			conn[pd] = append(conn[pd], cells...)
		}
	}
	pas := make([]padAngle, 0, len(p.pads))
	for _, pd := range p.pads {
		cent := geom.Centroid(conn[pd])
		if len(conn[pd]) == 0 {
			cent = pd.pos
		}
		pas = append(pas, padAngle{pd, math.Atan2(cent.Y-center.Y, cent.X-center.X)})
	}
	sort.SliceStable(pas, func(i, j int) bool { return pas[i].angle < pas[j].angle })
	// Boundary slots ordered by angle: start at the rightmost mid-height
	// point (angle ~0) and walk counterclockwise.
	perim := 2 * (p.die.Width() + p.die.Height())
	start := p.die.Width() + p.die.Height()/2 // middle of the right edge
	for i, pa := range pas {
		d := start + perim*float64(i)/float64(len(pas))
		pa.pd.pos = perimeterPoint(p.die, d)
	}
}

// region is one node of the bipartition tree. nets holds, in ascending
// order, the indices (into placer.nets) of the nets with at least two
// movable pins inside the region, inherited from the parent at each split
// so no level rescans the full net list.
type region struct {
	rect  geom.Rect
	cells []int // point indices, ascending
	nets  []int32
	area  float64
}

// rootRegion builds the region covering every point, with the nets that
// have at least two movable pins.
func (p *placer) rootRegion() *region {
	all := make([]int, p.n)
	total := 0.0
	for i := 0; i < p.n; i++ {
		all[i] = i
		total += p.areas[i]
	}
	r := &region{rect: p.die, cells: all, area: total}
	for ni, nd := range p.nets {
		cnt := 0
		for _, pin := range nd.pins {
			if p.pinIndex(pin) >= 0 {
				cnt++
			}
		}
		if cnt >= 2 {
			r.nets = append(r.nets, int32(ni))
		}
	}
	return r
}

// regionScratch is the reusable point->local-index projection used by
// splitRegion. Entries are validated by an epoch stamp so clearing between
// regions is O(1) instead of O(n).
type regionScratch struct {
	local []int32
	stamp []int32
	cur   int32
}

func (s *regionScratch) begin(n int) {
	if len(s.local) < n {
		s.local = make([]int32, n)
		s.stamp = make([]int32, n)
		s.cur = 0
	}
	if s.cur == math.MaxInt32 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.cur = 0
	}
	s.cur++
}

func (s *regionScratch) set(i int, li int32) {
	s.local[i] = li
	s.stamp[i] = s.cur
}

func (s *regionScratch) get(i int) int32 {
	if s.stamp[i] == s.cur {
		return s.local[i]
	}
	return -1
}

// partitionFrom recursively splits the given regions, re-solving the QP
// with region anchors after each level, and returns the final leaf
// regions. startLevel continues the anchor-weight schedule (the flat path
// starts at 1; the multilevel driver resumes from the depth already
// reached at the coarser level).
func (p *placer) partitionFrom(regions []*region, startLevel, maxLevel int) ([]*region, error) {
	for level := startLevel; level <= maxLevel; level++ {
		if err := p.ctx.Err(); err != nil {
			return nil, err
		}
		split := false
		var next []*region
		// Each split reads only the frozen solution (p.x/p.y/p.nets) and
		// writes region-local state, so a level's splits run concurrently;
		// the results are assembled in region order either way.
		type splitPair struct{ a, b *region }
		pairs := make([]splitPair, len(regions))
		parallelFor(len(regions), p.cfg.Parallelism, func(lo, hi int) {
			scr, _ := p.scratch.Get().(*regionScratch)
			if scr == nil {
				scr = &regionScratch{}
			}
			for ri := lo; ri < hi; ri++ {
				if len(regions[ri].cells) > p.cfg.MinRegion {
					a, b := p.splitRegion(regions[ri], scr)
					pairs[ri] = splitPair{a, b}
				}
			}
			p.scratch.Put(scr)
		})
		for ri, r := range regions {
			if pairs[ri].a == nil {
				next = append(next, r)
				continue
			}
			next = append(next, pairs[ri].a, pairs[ri].b)
			split = true
		}
		regions = next
		if !split {
			break
		}
		p.levels = level
		// Re-solve with anchors pulling each cell toward its region center;
		// anchor strength grows with level so late levels dominate.
		anchor := make([]geom.Point, p.n)
		for _, r := range regions {
			c := r.rect.Center()
			for _, ci := range r.cells {
				anchor[ci] = c
			}
		}
		w := anchorWeight(level)
		if err := p.solveQP(anchor, w); err != nil {
			return nil, err
		}
	}
	return regions, nil
}

// anchorWeight is the geometric anchor-strength schedule shared by the
// flat partition and the multilevel continuation.
func anchorWeight(level int) float64 {
	return 0.08 * math.Pow(1.9, float64(level))
}

// splitRegion bisects a region along its longer axis: cells are seeded into
// halves by sorted position (area-balanced), refined by FM on the nets
// projected into the region, and the rectangle is split proportionally to
// the resulting side areas. Children inherit the parent's net list, keeping
// only nets with at least two pins on their side.
func (p *placer) splitRegion(r *region, scr *regionScratch) (*region, *region) {
	horiz := r.rect.Width() >= r.rect.Height() // split along x if wide
	cells := append([]int(nil), r.cells...)
	sort.SliceStable(cells, func(a, b int) bool {
		if horiz {
			//lint:exact comparator tie-break: exact != keeps the order strict-weak
			if p.x[cells[a]] != p.x[cells[b]] {
				return p.x[cells[a]] < p.x[cells[b]]
			}
			return cells[a] < cells[b]
		}
		//lint:exact comparator tie-break: exact != keeps the order strict-weak
		if p.y[cells[a]] != p.y[cells[b]] {
			return p.y[cells[a]] < p.y[cells[b]]
		}
		return cells[a] < cells[b]
	})
	// Area-median seed.
	half := r.area / 2
	acc := 0.0
	cut := 0
	for i, c := range cells {
		acc += p.areas[c]
		if acc >= half {
			cut = i + 1
			break
		}
	}
	if cut == 0 || cut == len(cells) {
		cut = len(cells) / 2
	}

	// Local FM refinement on the hypergraph projected from the region's
	// own net list. The point→local translation is an epoch-stamped
	// scratch (-1 = outside the region) shared across the worker's
	// regions: this projection is the hottest loop of the partition.
	scr.begin(p.n)
	for li, c := range cells {
		scr.set(c, int32(li))
	}
	h := &Hypergraph{Areas: make([]float64, len(cells))}
	for li, c := range cells {
		h.Areas[li] = p.areas[c]
	}
	for _, ni := range r.nets {
		var pins []int
		for _, pin := range p.nets[ni].pins {
			if i := p.pinIndex(pin); i >= 0 {
				if li := scr.get(i); li >= 0 {
					pins = append(pins, int(li))
				}
			}
		}
		if len(pins) >= 2 {
			h.Nets = append(h.Nets, pins)
		}
	}
	part := make([]int, len(cells))
	for li := range cells {
		if li >= cut {
			part[li] = 1
		}
	}
	FM(h, part, 0.08, 3)

	a := &region{cells: nil}
	b := &region{cells: nil}
	for li, c := range cells {
		if part[li] == 0 {
			a.cells = append(a.cells, c)
			a.area += p.areas[c]
		} else {
			b.cells = append(b.cells, c)
			b.area += p.areas[c]
		}
	}
	// Project the parent's nets onto each side, preserving ascending order.
	for _, ni := range r.nets {
		ca, cb := 0, 0
		for _, pin := range p.nets[ni].pins {
			if i := p.pinIndex(pin); i >= 0 {
				if li := scr.get(i); li >= 0 {
					if part[li] == 0 {
						ca++
					} else {
						cb++
					}
				}
			}
		}
		if ca >= 2 {
			a.nets = append(a.nets, ni)
		}
		if cb >= 2 {
			b.nets = append(b.nets, ni)
		}
	}
	frac := 0.5
	if r.area > 0 {
		frac = a.area / r.area
	}
	if horiz {
		mid := r.rect.LL.X + r.rect.Width()*frac
		a.rect = rectOf(r.rect.LL.X, r.rect.LL.Y, mid, r.rect.UR.Y)
		b.rect = rectOf(mid, r.rect.LL.Y, r.rect.UR.X, r.rect.UR.Y)
	} else {
		mid := r.rect.LL.Y + r.rect.Height()*frac
		a.rect = rectOf(r.rect.LL.X, r.rect.LL.Y, r.rect.UR.X, mid)
		b.rect = rectOf(r.rect.LL.X, mid, r.rect.UR.X, r.rect.UR.Y)
	}
	return a, b
}

func rectOf(llx, lly, urx, ury float64) geom.Rect {
	return geom.Enclosing([]geom.Point{{X: llx, Y: lly}, {X: urx, Y: ury}})
}

// Quality metrics for tests and reporting.

// TotalHPWL sums the half-perimeter length over all nets at the placed
// positions.
func (r *Result) TotalHPWL(net *logic.Network) float64 {
	return r.TotalHPWLParallel(net, 1)
}

// TotalHPWLParallel is TotalHPWL with a bounded worker count: the
// per-net lengths are computed elementwise into a slice partitioned by
// driver index and folded in that fixed order, so the sum is
// bit-identical to the sequential one at any par (DESIGN.md §13).
func (r *Result) TotalHPWLParallel(net *logic.Network, par int) float64 {
	vals := make([]float64, len(net.Nodes))
	parallelFor(len(net.Nodes), par, func(lo, hi int) {
		for id := lo; id < hi; id++ {
			nd := net.Nodes[id]
			if nd == nil {
				continue
			}
			pts := []geom.Point{r.Pos[nd.ID]}
			for _, fo := range dedup(net.Fanouts(nd.ID)) {
				pts = append(pts, r.Pos[fo])
			}
			for i, po := range net.POs {
				if po == nd.ID {
					pts = append(pts, r.POPads[net.PONames[i]])
				}
			}
			if len(pts) >= 2 {
				vals[id] = geom.Enclosing(pts).HalfPerimeter()
			}
		}
	})
	total := 0.0
	for _, v := range vals {
		total += v
	}
	return total
}

// DensityImbalance splits the die into a g×g grid and returns the ratio of
// the most populated bin's cell count to the mean — a balance check (a
// perfectly uniform placement scores 1).
func (r *Result) DensityImbalance(net *logic.Network, g int) float64 {
	bins := make([]int, g*g)
	n := 0
	for _, nd := range net.Nodes {
		if nd == nil || nd.Kind != logic.KindLogic {
			continue
		}
		pt := r.Pos[nd.ID]
		bx := int(float64(g) * (pt.X - r.Die.LL.X) / (r.Die.Width() + 1e-9))
		by := int(float64(g) * (pt.Y - r.Die.LL.Y) / (r.Die.Height() + 1e-9))
		if bx < 0 {
			bx = 0
		}
		if bx >= g {
			bx = g - 1
		}
		if by < 0 {
			by = 0
		}
		if by >= g {
			by = g - 1
		}
		bins[by*g+bx]++
		n++
	}
	max := 0
	for _, c := range bins {
		if c > max {
			max = c
		}
	}
	mean := float64(n) / float64(g*g)
	if mean == 0 {
		return 0
	}
	return float64(max) / mean
}
