package place

import (
	"context"
	"fmt"
	"math"
	"sort"

	"lily/internal/geom"
	"lily/internal/logic"
	"lily/internal/obs"
)

// Config tunes the global placer.
type Config struct {
	// Utilization is the cell-area / die-area ratio used to size the die
	// when none is given (standard-cell area predictors in the style of
	// the paper's ref [15] put achievable utilization near 0.5–0.6).
	Utilization float64
	// MinRegion stops recursive bipartitioning when a region holds at most
	// this many cells (the paper's "user-specified parameter", §3.1).
	MinRegion int
	// CGTol and CGMaxIter control the conjugate-gradient solver.
	CGTol     float64
	CGMaxIter int
	// MaxLevels bounds the bipartition recursion depth.
	MaxLevels int
	// Die, when non-empty, fixes the placement region instead of sizing
	// it from the cell area (used when re-placing a partially mapped
	// network in the coordinate system of an earlier placement, §3.2).
	Die geom.Rect
	// FixedPads pins pad positions by name (PI names and PO names) and
	// disables connectivity-driven pad assignment. Pads absent from the
	// map fall back to the uniform boundary spread.
	FixedPads map[string]geom.Point
	// NaivePads keeps the initial uniform pad spread instead of running
	// the connectivity-driven assignment — the ablation behind the
	// paper's §5 remark that the initial pad placement influences how
	// much wire reduction Lily can achieve.
	NaivePads bool
	// Parallelism bounds the worker count for the CG mat-vec, the two
	// per-axis solves, the per-level region splits, and the HPWL
	// reduction (DESIGN.md §13). Every parallel path is elementwise or
	// folds partial sums in a fixed partition order, so the placement is
	// bit-identical at any setting; 0 or 1 runs sequentially.
	Parallelism int
}

// DefaultConfig returns the configuration used throughout the experiments.
func DefaultConfig() Config {
	return Config{
		Utilization: 0.55,
		MinRegion:   12,
		CGTol:       1e-6,
		CGMaxIter:   400,
		MaxLevels:   14,
	}
}

// Result is a balanced global point placement.
type Result struct {
	// Pos maps every live node (PIs at their pad positions, logic nodes at
	// their placed positions) to a point on the die.
	Pos map[logic.NodeID]geom.Point
	// POPads maps each primary-output name to its pad position on the
	// boundary.
	POPads map[string]geom.Point
	// Die is the placement region.
	Die geom.Rect
	// Regions maps each movable node to its final region rectangle.
	Regions map[logic.NodeID]geom.Rect
}

// pad is a fixed boundary terminal: a PI pad (driving its net) or a PO pad
// (an extra sink on the PO node's net).
type pad struct {
	name string
	isPI bool
	node logic.NodeID // PI node, or the PO's driver node
	pos  geom.Point
}

// Global places the network: pads are assigned to the boundary by
// connectivity, then the movable gates get a balanced quadratic placement
// with recursive min-cut bipartitioning (GORDIAN-style).
func Global(net *logic.Network, cellWidth func(logic.NodeID) float64, rowHeight float64, cfg Config) (*Result, error) {
	return GlobalContext(context.Background(), net, cellWidth, rowHeight, cfg)
}

// GlobalContext is Global with cancellation: the partition levels and the
// conjugate-gradient solver check ctx and abort promptly with ctx.Err()
// when it is cancelled, so long placements can be interrupted.
func GlobalContext(ctx context.Context, net *logic.Network, cellWidth func(logic.NodeID) float64, rowHeight float64, cfg Config) (*Result, error) {
	if cfg.Utilization <= 0 || cfg.Utilization > 1 {
		return nil, fmt.Errorf("place: bad utilization %v", cfg.Utilization)
	}
	// Phase-scoped trace span; a context without a tracer makes this (and
	// every span method below) an allocation-free no-op.
	ctx, span := obs.StartSpan(ctx, "placement")
	defer span.End()
	// Movable cells.
	var movable []logic.NodeID
	idx := make(map[logic.NodeID]int)
	totalArea := 0.0
	for _, nd := range net.Nodes {
		if nd == nil || nd.Kind != logic.KindLogic {
			continue
		}
		idx[nd.ID] = len(movable)
		movable = append(movable, nd.ID)
		totalArea += cellWidth(nd.ID) * rowHeight
	}
	if len(movable) == 0 {
		return nil, fmt.Errorf("place: network has no logic nodes")
	}
	die := cfg.Die
	// The zero Rect is a degenerate point, not the canonical empty
	// rectangle; treat any zero-extent die as "size it from the area".
	if die.IsEmpty() || die.Width() <= 0 || die.Height() <= 0 {
		side := math.Sqrt(totalArea / cfg.Utilization)
		die = geom.Enclosing([]geom.Point{{X: 0, Y: 0}, {X: side, Y: side}})
	}

	// Pads: PIs then POs, initially spread uniformly around the boundary.
	var pads []*pad
	for _, pi := range net.PIs {
		pads = append(pads, &pad{name: net.Nodes[pi].Name, isPI: true, node: pi})
	}
	for i, po := range net.POs {
		pads = append(pads, &pad{name: net.PONames[i], node: po})
	}
	spreadPads(pads, die)
	if cfg.FixedPads != nil {
		for _, pd := range pads {
			if p, ok := cfg.FixedPads[pd.name]; ok {
				pd.pos = p
			}
		}
	}

	// Nets: one per driver with at least two terminals.
	nets := buildNets(net, pads)

	idxArr := make([]int32, len(net.Nodes))
	for i := range idxArr {
		idxArr[i] = -1
	}
	for mi, id := range movable {
		idxArr[id] = int32(mi)
	}
	p := &placer{
		ctx: ctx, net: net, cfg: cfg, die: die,
		movable: movable, idx: idx, idxArr: idxArr, pads: pads, nets: nets,
		width: cellWidth, rowHeight: rowHeight,
		fm: obs.FlowMetricsFrom(ctx),
	}
	res, err := p.run()
	if err != nil {
		span.SetError(err)
		return nil, err
	}
	p.fm.CGIterations.Add(uint64(p.cgIters))
	if span.Enabled() {
		span.SetInt("cells", int64(len(movable)))
		span.SetInt("cg_iterations", int64(p.cgIters))
		span.SetInt("partition_levels", int64(p.levels))
		span.SetFloat("hpwl_um", res.TotalHPWL(net))
	}
	return res, nil
}

// netPin is one terminal of a net: either a movable cell or a fixed pad.
type netPin struct {
	cell int  // movable index, or -1
	pad  *pad // fixed pad, or nil
}

type netDef struct {
	pins []netPin
}

func buildNets(net *logic.Network, pads []*pad) []netDef {
	piPad := make(map[logic.NodeID]*pad)
	poPads := make(map[logic.NodeID][]*pad)
	for _, pd := range pads {
		if pd.isPI {
			piPad[pd.node] = pd
		} else {
			poPads[pd.node] = append(poPads[pd.node], pd)
		}
	}
	var nets []netDef
	for _, nd := range net.Nodes {
		if nd == nil {
			continue
		}
		var pins []netPin
		if nd.Kind == logic.KindPI {
			pins = append(pins, netPin{cell: -1, pad: piPad[nd.ID]})
		} else {
			pins = append(pins, netPin{cell: int(nd.ID)}) // fixed up below
		}
		for _, fo := range dedup(net.Fanouts(nd.ID)) {
			pins = append(pins, netPin{cell: int(fo)})
		}
		for _, pd := range poPads[nd.ID] {
			pins = append(pins, netPin{cell: -1, pad: pd})
		}
		if len(pins) >= 2 {
			nets = append(nets, netDef{pins: pins})
		}
	}
	return nets
}

func dedup(ids []logic.NodeID) []logic.NodeID {
	seen := make(map[logic.NodeID]bool, len(ids))
	out := ids[:0:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// spreadPads distributes pads uniformly around the die boundary in their
// current order.
func spreadPads(pads []*pad, die geom.Rect) {
	n := len(pads)
	if n == 0 {
		return
	}
	perim := 2 * (die.Width() + die.Height())
	for i, pd := range pads {
		d := perim * float64(i) / float64(n)
		pd.pos = perimeterPoint(die, d)
	}
}

// perimeterPoint maps a distance along the boundary (counterclockwise from
// the lower-left corner) to a point.
func perimeterPoint(die geom.Rect, d float64) geom.Point {
	w, h := die.Width(), die.Height()
	d = math.Mod(d, 2*(w+h))
	switch {
	case d < w:
		return geom.Point{X: die.LL.X + d, Y: die.LL.Y}
	case d < w+h:
		return geom.Point{X: die.UR.X, Y: die.LL.Y + (d - w)}
	case d < 2*w+h:
		return geom.Point{X: die.UR.X - (d - w - h), Y: die.UR.Y}
	default:
		return geom.Point{X: die.LL.X, Y: die.UR.Y - (d - 2*w - h)}
	}
}

type placer struct {
	ctx     context.Context
	net     *logic.Network
	cfg     Config
	die     geom.Rect
	movable []logic.NodeID
	idx     map[logic.NodeID]int
	// idxArr is the dense mirror of idx (-1 for non-movable node IDs);
	// pinIndex sits inside the per-region net projection loops, where
	// the map lookup dominated the partition profile.
	idxArr    []int32
	pads      []*pad
	nets      []netDef
	width     func(logic.NodeID) float64
	rowHeight float64

	// fm receives solver-effort counters; levels and cgIters accumulate
	// partition depth and conjugate-gradient iterations for the span.
	fm      *obs.FlowMetrics
	levels  int
	cgIters int

	x, y []float64
}

func (p *placer) run() (*Result, error) {
	n := len(p.movable)
	p.x = make([]float64, n)
	p.y = make([]float64, n)
	c := p.die.Center()
	for i := range p.x {
		p.x[i] = c.X
		p.y[i] = c.Y
	}

	// Phase 1: unconstrained QP with the initial pad spread.
	if err := p.solveQP(nil, 0); err != nil {
		return nil, err
	}
	// Phase 2: connectivity-driven pad assignment, then re-solve —
	// skipped when the caller pinned the pads or asked for naive pads.
	if p.cfg.FixedPads == nil && !p.cfg.NaivePads {
		p.assignPads()
		if err := p.solveQP(nil, 0); err != nil {
			return nil, err
		}
	}
	// Phase 3: recursive bipartitioning with region anchors.
	regions, err := p.partition()
	if err != nil {
		return nil, err
	}

	res := &Result{
		Pos:     make(map[logic.NodeID]geom.Point, n+len(p.pads)),
		POPads:  make(map[string]geom.Point),
		Die:     p.die,
		Regions: make(map[logic.NodeID]geom.Rect, n),
	}
	for i, id := range p.movable {
		pt := geom.Point{X: p.x[i], Y: p.y[i]}
		r := regions[i]
		pt = clampTo(pt, r)
		res.Pos[id] = pt
		res.Regions[id] = r
	}
	for _, pd := range p.pads {
		if pd.isPI {
			res.Pos[pd.node] = pd.pos
		} else {
			res.POPads[pd.name] = pd.pos
		}
	}
	return res, nil
}

func clampTo(pt geom.Point, r geom.Rect) geom.Point {
	if r.IsEmpty() {
		return pt
	}
	if pt.X < r.LL.X {
		pt.X = r.LL.X
	}
	if pt.X > r.UR.X {
		pt.X = r.UR.X
	}
	if pt.Y < r.LL.Y {
		pt.Y = r.LL.Y
	}
	if pt.Y > r.UR.Y {
		pt.Y = r.UR.Y
	}
	return pt
}

// solveQP solves both axes with optional per-cell anchors (region centers).
// The axes share the system matrix but are otherwise independent, so with
// Parallelism > 1 they solve concurrently; iteration counts still
// accumulate in X-then-Y order.
func (p *placer) solveQP(anchor []geom.Point, anchorW float64) error {
	q := newQuadSystem(len(p.movable))
	q.par = p.cfg.Parallelism
	for _, nd := range p.nets {
		k := len(nd.pins)
		if k <= 8 {
			w := 2.0 / float64(k)
			for a := 0; a < k; a++ {
				for b := a + 1; b < k; b++ {
					p.couple(q, nd.pins[a], nd.pins[b], w)
				}
			}
		} else {
			// Star model from the driver for big nets.
			w := 1.0
			for b := 1; b < k; b++ {
				p.couple(q, nd.pins[0], nd.pins[b], w)
			}
		}
	}
	if anchor != nil {
		for i := range p.movable {
			q.addFixed(i, anchorW, anchor[i].X, anchor[i].Y)
		}
	}
	if p.cfg.Parallelism > 1 {
		var itY int
		var errY error
		done := make(chan struct{})
		go func() {
			defer close(done)
			itY, errY = q.solve(p.ctx, q.rhsY, p.y, p.cfg.CGTol, p.cfg.CGMaxIter)
		}()
		itX, errX := q.solve(p.ctx, q.rhsX, p.x, p.cfg.CGTol, p.cfg.CGMaxIter)
		<-done
		p.cgIters += itX
		if errX != nil {
			return errX
		}
		p.cgIters += itY
		return errY
	}
	itX, err := q.solve(p.ctx, q.rhsX, p.x, p.cfg.CGTol, p.cfg.CGMaxIter)
	p.cgIters += itX
	if err != nil {
		return err
	}
	itY, err := q.solve(p.ctx, q.rhsY, p.y, p.cfg.CGTol, p.cfg.CGMaxIter)
	p.cgIters += itY
	return err
}

// couple adds the quadratic coupling between two net pins, resolving
// movable indices and fixed pad positions.
func (p *placer) couple(q *quadSystem, a, b netPin, w float64) {
	ai, bi := p.pinIndex(a), p.pinIndex(b)
	switch {
	case ai >= 0 && bi >= 0:
		q.addEdge(ai, bi, w)
	case ai >= 0:
		q.addFixed(ai, w, b.pad.pos.X, b.pad.pos.Y)
	case bi >= 0:
		q.addFixed(bi, w, a.pad.pos.X, a.pad.pos.Y)
	}
}

func (p *placer) pinIndex(pin netPin) int {
	if pin.pad != nil {
		return -1
	}
	return int(p.idxArr[pin.cell])
}

// assignPads reassigns pads to boundary slots ordered by the angle of each
// pad's connected-cell centroid around the die center — the bottom-up,
// connectivity-driven pad placement of the paper's ref [20].
func (p *placer) assignPads() {
	center := p.die.Center()
	type padAngle struct {
		pd    *pad
		angle float64
	}
	// Connected-cell centroid per pad.
	conn := make(map[*pad][]geom.Point)
	for _, nd := range p.nets {
		var padsIn []*pad
		var cells []geom.Point
		for _, pin := range nd.pins {
			if pin.pad != nil {
				padsIn = append(padsIn, pin.pad)
			} else if i := p.pinIndex(pin); i >= 0 {
				cells = append(cells, geom.Point{X: p.x[i], Y: p.y[i]})
			}
		}
		for _, pd := range padsIn {
			conn[pd] = append(conn[pd], cells...)
		}
	}
	pas := make([]padAngle, 0, len(p.pads))
	for _, pd := range p.pads {
		cent := geom.Centroid(conn[pd])
		if len(conn[pd]) == 0 {
			cent = pd.pos
		}
		pas = append(pas, padAngle{pd, math.Atan2(cent.Y-center.Y, cent.X-center.X)})
	}
	sort.SliceStable(pas, func(i, j int) bool { return pas[i].angle < pas[j].angle })
	// Boundary slots ordered by angle: start at the rightmost mid-height
	// point (angle ~0) and walk counterclockwise.
	perim := 2 * (p.die.Width() + p.die.Height())
	start := p.die.Width() + p.die.Height()/2 // middle of the right edge
	for i, pa := range pas {
		d := start + perim*float64(i)/float64(len(pas))
		pa.pd.pos = perimeterPoint(p.die, d)
	}
}

// region is one node of the bipartition tree.
type region struct {
	rect  geom.Rect
	cells []int // movable indices
	area  float64
}

// partition recursively splits the cell set, re-solving the QP with region
// anchors after each level, and returns the final region of every cell.
func (p *placer) partition() ([]geom.Rect, error) {
	all := make([]int, len(p.movable))
	areas := make([]float64, len(p.movable))
	total := 0.0
	for i, id := range p.movable {
		all[i] = i
		areas[i] = p.width(id) * p.rowHeight
		total += areas[i]
	}
	regions := []*region{{rect: p.die, cells: all, area: total}}

	for level := 1; level <= p.cfg.MaxLevels; level++ {
		if err := p.ctx.Err(); err != nil {
			return nil, err
		}
		split := false
		var next []*region
		// Each split reads only the frozen solution (p.x/p.y/p.nets) and
		// writes region-local state, so a level's splits run concurrently;
		// the results are assembled in region order either way.
		type splitPair struct{ a, b *region }
		pairs := make([]splitPair, len(regions))
		parallelFor(len(regions), p.cfg.Parallelism, func(lo, hi int) {
			for ri := lo; ri < hi; ri++ {
				if len(regions[ri].cells) > p.cfg.MinRegion {
					a, b := p.splitRegion(regions[ri], areas)
					pairs[ri] = splitPair{a, b}
				}
			}
		})
		for ri, r := range regions {
			if pairs[ri].a == nil {
				next = append(next, r)
				continue
			}
			next = append(next, pairs[ri].a, pairs[ri].b)
			split = true
		}
		regions = next
		if !split {
			break
		}
		p.levels = level
		// Re-solve with anchors pulling each cell toward its region center;
		// anchor strength grows with level so late levels dominate.
		anchor := make([]geom.Point, len(p.movable))
		for _, r := range regions {
			c := r.rect.Center()
			for _, ci := range r.cells {
				anchor[ci] = c
			}
		}
		w := 0.08 * math.Pow(1.9, float64(level))
		if err := p.solveQP(anchor, w); err != nil {
			return nil, err
		}
	}

	out := make([]geom.Rect, len(p.movable))
	for _, r := range regions {
		for _, ci := range r.cells {
			out[ci] = r.rect
		}
	}
	return out, nil
}

// splitRegion bisects a region along its longer axis: cells are seeded into
// halves by sorted position (area-balanced), refined by FM on the nets
// projected into the region, and the rectangle is split proportionally to
// the resulting side areas.
func (p *placer) splitRegion(r *region, areas []float64) (*region, *region) {
	horiz := r.rect.Width() >= r.rect.Height() // split along x if wide
	cells := append([]int(nil), r.cells...)
	sort.SliceStable(cells, func(a, b int) bool {
		if horiz {
			//lint:exact comparator tie-break: exact != keeps the order strict-weak
			if p.x[cells[a]] != p.x[cells[b]] {
				return p.x[cells[a]] < p.x[cells[b]]
			}
			return cells[a] < cells[b]
		}
		//lint:exact comparator tie-break: exact != keeps the order strict-weak
		if p.y[cells[a]] != p.y[cells[b]] {
			return p.y[cells[a]] < p.y[cells[b]]
		}
		return cells[a] < cells[b]
	})
	// Area-median seed.
	half := r.area / 2
	acc := 0.0
	cut := 0
	for i, c := range cells {
		acc += areas[c]
		if acc >= half {
			cut = i + 1
			break
		}
	}
	if cut == 0 || cut == len(cells) {
		cut = len(cells) / 2
	}

	// Local FM refinement on the projected hypergraph. The movable→local
	// index translation is a dense array (-1 = outside the region): this
	// projection runs over every net for every region of every level,
	// where a hash lookup per pin dominated the partition profile.
	local := make([]int32, len(p.movable)) // movable idx -> local idx
	for i := range local {
		local[i] = -1
	}
	for li, c := range cells {
		local[c] = int32(li)
	}
	h := &Hypergraph{Areas: make([]float64, len(cells))}
	for li, c := range cells {
		h.Areas[li] = areas[c]
	}
	for _, nd := range p.nets {
		var pins []int
		for _, pin := range nd.pins {
			if i := p.pinIndex(pin); i >= 0 {
				if li := local[i]; li >= 0 {
					pins = append(pins, int(li))
				}
			}
		}
		if len(pins) >= 2 {
			h.Nets = append(h.Nets, pins)
		}
	}
	part := make([]int, len(cells))
	for li := range cells {
		if li >= cut {
			part[li] = 1
		}
	}
	FM(h, part, 0.08, 3)

	a := &region{cells: nil}
	b := &region{cells: nil}
	for li, c := range cells {
		if part[li] == 0 {
			a.cells = append(a.cells, c)
			a.area += areas[c]
		} else {
			b.cells = append(b.cells, c)
			b.area += areas[c]
		}
	}
	frac := 0.5
	if r.area > 0 {
		frac = a.area / r.area
	}
	if horiz {
		mid := r.rect.LL.X + r.rect.Width()*frac
		a.rect = rectOf(r.rect.LL.X, r.rect.LL.Y, mid, r.rect.UR.Y)
		b.rect = rectOf(mid, r.rect.LL.Y, r.rect.UR.X, r.rect.UR.Y)
	} else {
		mid := r.rect.LL.Y + r.rect.Height()*frac
		a.rect = rectOf(r.rect.LL.X, r.rect.LL.Y, r.rect.UR.X, mid)
		b.rect = rectOf(r.rect.LL.X, mid, r.rect.UR.X, r.rect.UR.Y)
	}
	return a, b
}

func rectOf(llx, lly, urx, ury float64) geom.Rect {
	return geom.Enclosing([]geom.Point{{X: llx, Y: lly}, {X: urx, Y: ury}})
}

// Quality metrics for tests and reporting.

// TotalHPWL sums the half-perimeter length over all nets at the placed
// positions.
func (r *Result) TotalHPWL(net *logic.Network) float64 {
	return r.TotalHPWLParallel(net, 1)
}

// TotalHPWLParallel is TotalHPWL with a bounded worker count: the
// per-net lengths are computed elementwise into a slice partitioned by
// driver index and folded in that fixed order, so the sum is
// bit-identical to the sequential one at any par (DESIGN.md §13).
func (r *Result) TotalHPWLParallel(net *logic.Network, par int) float64 {
	vals := make([]float64, len(net.Nodes))
	parallelFor(len(net.Nodes), par, func(lo, hi int) {
		for id := lo; id < hi; id++ {
			nd := net.Nodes[id]
			if nd == nil {
				continue
			}
			pts := []geom.Point{r.Pos[nd.ID]}
			for _, fo := range dedup(net.Fanouts(nd.ID)) {
				pts = append(pts, r.Pos[fo])
			}
			for i, po := range net.POs {
				if po == nd.ID {
					pts = append(pts, r.POPads[net.PONames[i]])
				}
			}
			if len(pts) >= 2 {
				vals[id] = geom.Enclosing(pts).HalfPerimeter()
			}
		}
	})
	total := 0.0
	for _, v := range vals {
		total += v
	}
	return total
}

// DensityImbalance splits the die into a g×g grid and returns the ratio of
// the most populated bin's cell count to the mean — a balance check (a
// perfectly uniform placement scores 1).
func (r *Result) DensityImbalance(net *logic.Network, g int) float64 {
	bins := make([]int, g*g)
	n := 0
	for _, nd := range net.Nodes {
		if nd == nil || nd.Kind != logic.KindLogic {
			continue
		}
		pt := r.Pos[nd.ID]
		bx := int(float64(g) * (pt.X - r.Die.LL.X) / (r.Die.Width() + 1e-9))
		by := int(float64(g) * (pt.Y - r.Die.LL.Y) / (r.Die.Height() + 1e-9))
		if bx < 0 {
			bx = 0
		}
		if bx >= g {
			bx = g - 1
		}
		if by < 0 {
			by = 0
		}
		if by >= g {
			by = g - 1
		}
		bins[by*g+bx]++
		n++
	}
	max := 0
	for _, c := range bins {
		if c > max {
			max = c
		}
	}
	mean := float64(n) / float64(g*g)
	if mean == 0 {
		return 0
	}
	return float64(max) / mean
}
