package place

import (
	"sort"

	"lily/internal/geom"
)

// Multilevel placement (DESIGN.md §15): above Config.MultilevelThreshold
// movable cells, the flat CG+FM engine no longer sees the whole problem at
// once. Seeded heavy-edge matching coarsens the netlist level by level
// until the coarsest problem fits the flat engine comfortably; the flat
// phases place that level, and each uncluster step seeds children at the
// parent cluster position, expands the bipartition tree through the
// cluster map, and runs one bounded anchored CG solve before the
// partition continues splitting the expanded regions. Every step visits
// vertices and nets in fixed ascending order with explicit tie-breaks, so
// the V-cycle is byte-deterministic at any Parallelism x GOMAXPROCS.

// mlRefineIters caps the conjugate-gradient iteration budget of the
// per-uncluster refinement solve; the continuation solves inside
// partitionFrom keep the full budget.
const mlRefineIters = 120

// mlProblem is one level of the V-cycle: n points with areas, connected
// by nets whose cell pins are point indices at this level. Pads are
// shared across levels (cluster positions and pad assignment agree on the
// same boundary objects).
type mlProblem struct {
	n     int
	areas []float64
	nets  []netDef
}

// mlLevel records one coarsening step: the finer problem and the
// fine-point -> cluster-index map.
type mlLevel struct {
	fine   mlProblem
	parent []int32
}

// install points the solver core at a level's problem.
func (p *placer) install(prob mlProblem) {
	p.n = prob.n
	p.areas = prob.areas
	p.nets = prob.nets
}

// mlMaxLevels sizes the partition depth so the continuation can keep
// splitting down to MinRegion at the finest level (the flat default is
// tuned for flat-sized instances).
func (p *placer) mlMaxLevels(finestN int) int {
	minR := p.cfg.MinRegion
	if minR < 1 {
		minR = 1
	}
	need := 2
	for sz := finestN; sz > minR; sz = (sz + 1) / 2 {
		need++
	}
	if need < p.cfg.MaxLevels {
		need = p.cfg.MaxLevels
	}
	return need
}

// runMultilevel is the V-cycle driver. It falls back to the flat path
// when coarsening cannot reduce the instance (tiny or pathological
// netlists), so callers never lose a placement to the threshold.
func (p *placer) runMultilevel() (*Result, error) {
	cur := mlProblem{n: p.n, areas: p.areas, nets: p.nets}
	target := p.cfg.MultilevelThreshold / 8
	if target < 64 {
		target = 64
	}
	var stack []mlLevel
	for cur.n > target {
		parent, coarse, ok := coarsenOnce(cur)
		if !ok {
			break
		}
		stack = append(stack, mlLevel{fine: cur, parent: parent})
		cur = coarse
	}
	if len(stack) == 0 {
		return p.run()
	}
	p.mlLevels = len(stack)
	maxLv := p.mlMaxLevels(p.n)

	// Place the coarsest level with the full flat pipeline: free solve,
	// connectivity-driven pad assignment (pads are shared objects, so
	// the assignment sticks for every finer level), then partitioning.
	p.install(cur)
	p.x = make([]float64, p.n)
	p.y = make([]float64, p.n)
	c := p.die.Center()
	for i := range p.x {
		p.x[i] = c.X
		p.y[i] = c.Y
	}
	if err := p.solveQP(nil, 0); err != nil {
		return nil, err
	}
	if p.cfg.FixedPads == nil && !p.cfg.NaivePads {
		p.assignPads()
		if err := p.solveQP(nil, 0); err != nil {
			return nil, err
		}
	}
	leaves, err := p.partitionFrom([]*region{p.rootRegion()}, 1, maxLv)
	if err != nil {
		return nil, err
	}

	// Uncluster: seed children at the parent cluster position (the
	// cluster centroid the coarse QP converged to), expand the region
	// tree through the cluster map, refine with one bounded anchored
	// solve, and let the partition continue from the depth reached so
	// far — the anchor-weight schedule carries across levels.
	for li := len(stack) - 1; li >= 0; li-- {
		lv := stack[li]
		fx := make([]float64, lv.fine.n)
		fy := make([]float64, lv.fine.n)
		for i := 0; i < lv.fine.n; i++ {
			fx[i] = p.x[lv.parent[i]]
			fy[i] = p.y[lv.parent[i]]
		}
		leaves = expandRegions(leaves, lv.parent, p.n, lv.fine)
		p.install(lv.fine)
		p.x, p.y = fx, fy

		anchor := make([]geom.Point, p.n)
		for _, r := range leaves {
			rc := r.rect.Center()
			for _, ci := range r.cells {
				anchor[ci] = rc
			}
		}
		savedIters := p.cfg.CGMaxIter
		if p.cfg.CGMaxIter > mlRefineIters {
			p.cfg.CGMaxIter = mlRefineIters
		}
		err := p.solveQP(anchor, anchorWeight(p.levels))
		p.cfg.CGMaxIter = savedIters
		if err != nil {
			return nil, err
		}
		leaves, err = p.partitionFrom(leaves, p.levels+1, maxLv)
		if err != nil {
			return nil, err
		}
	}
	return p.assemble(leaves), nil
}

// pinCell returns a pin's point index, or -1 for pads.
func pinCell(pin netPin) int {
	if pin.pad != nil {
		return -1
	}
	return pin.cell
}

// coarsenOnce runs one level of heavy-edge matching: vertices are visited
// in ascending order and each unmatched vertex merges with its heaviest
// unmatched neighbor (ties broken toward the smallest index), subject to
// an area bound that keeps clusters within 4x the level's mean area.
// Edge weights mirror the QP connectivity model: clique 2/k for nets with
// at most eight pins, a unit star from the driver above that. Returns
// ok=false when matching cannot shrink the problem by at least 5%.
func coarsenOnce(prob mlProblem) (parent []int32, coarse mlProblem, ok bool) {
	n := prob.n
	// Pass 1: count directed adjacency entries per vertex. The CSR arrays
	// use int32: a net with k pins contributes k(k-1) directed entries
	// (clique, k <= 8) or 2(k-1) (star), so even the 500k-gate frontier —
	// ~765k subject nodes, ~765k nets — tops out near 3e7 entries, two
	// orders of magnitude under the int32 ceiling.
	deg := make([]int32, n)
	forEachNetEdge(prob.nets, func(a, b int, w float64) {
		deg[a]++
		deg[b]++
	})
	off := make([]int32, n+1)
	for i := 0; i < n; i++ {
		off[i+1] = off[i] + deg[i]
	}
	nbr := make([]int32, off[n])
	wts := make([]float64, off[n])
	pos := make([]int32, n)
	copy(pos, off[:n])
	forEachNetEdge(prob.nets, func(a, b int, w float64) {
		nbr[pos[a]] = int32(b)
		wts[pos[a]] = w
		pos[a]++
		nbr[pos[b]] = int32(a)
		wts[pos[b]] = w
		pos[b]++
	})
	// Per-vertex: sort neighbors by index and merge duplicate edges by
	// summing weights (fill order is deterministic, so the sums are too).
	end := make([]int32, n) // merged segment end per vertex
	totalArea := 0.0
	for _, a := range prob.areas {
		totalArea += a
	}
	for u := 0; u < n; u++ {
		lo, hi := off[u], off[u+1]
		seg := nbrSeg{ids: nbr[lo:hi], ws: wts[lo:hi]}
		sort.Sort(seg)
		w := lo
		for r := lo; r < hi; r++ {
			if w > lo && nbr[w-1] == nbr[r] {
				wts[w-1] += wts[r]
				continue
			}
			nbr[w] = nbr[r]
			wts[w] = wts[r]
			w++
		}
		end[u] = w
	}
	maxArea := 4 * totalArea / float64(n)

	parent = make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	nc := 0
	for u := 0; u < n; u++ {
		if parent[u] >= 0 {
			continue
		}
		best := -1
		bestW := 0.0
		for e := off[u]; e < end[u]; e++ {
			v := int(nbr[e])
			if v == u || parent[v] >= 0 {
				continue
			}
			if prob.areas[u]+prob.areas[v] > maxArea {
				continue
			}
			// Strict > keeps the first (smallest-index) neighbor on ties:
			// the merged list is ascending in v.
			if wts[e] > bestW {
				best, bestW = v, wts[e]
			}
		}
		ci := int32(nc)
		nc++
		parent[u] = ci
		if best >= 0 {
			parent[best] = ci
		}
	}
	if nc > n*19/20 {
		return nil, mlProblem{}, false
	}

	careas := make([]float64, nc)
	for i := 0; i < n; i++ {
		careas[parent[i]] += prob.areas[i]
	}
	// Project nets: cell pins map through parent, duplicates within a net
	// collapse (first occurrence keeps the pin slot, so the driver stays
	// first), pads carry over; nets left with fewer than two distinct
	// pins are interior to a cluster and drop out.
	stamp := make([]int32, nc)
	epoch := int32(0)
	var cnets []netDef
	for _, nd := range prob.nets {
		epoch++
		var pins []netPin
		for _, pin := range nd.pins {
			if pin.pad != nil {
				pins = append(pins, pin)
				continue
			}
			if pin.cell < 0 {
				continue
			}
			ci := parent[pin.cell]
			if stamp[ci] == epoch {
				continue
			}
			stamp[ci] = epoch
			pins = append(pins, netPin{cell: int(ci)})
		}
		if len(pins) >= 2 {
			cnets = append(cnets, netDef{pins: pins})
		}
	}
	return parent, mlProblem{n: nc, areas: careas, nets: cnets}, true
}

// forEachNetEdge enumerates the weighted cell-cell edges of the QP
// connectivity model (clique 2/k up to eight pins, unit star from the
// driver beyond) in a fixed order.
func forEachNetEdge(nets []netDef, fn func(a, b int, w float64)) {
	for _, nd := range nets {
		k := len(nd.pins)
		if k <= 8 {
			w := 2.0 / float64(k)
			for a := 0; a < k; a++ {
				ia := pinCell(nd.pins[a])
				if ia < 0 {
					continue
				}
				for b := a + 1; b < k; b++ {
					ib := pinCell(nd.pins[b])
					if ib < 0 || ib == ia {
						continue
					}
					fn(ia, ib, w)
				}
			}
		} else {
			i0 := pinCell(nd.pins[0])
			if i0 < 0 {
				continue
			}
			for b := 1; b < k; b++ {
				ib := pinCell(nd.pins[b])
				if ib < 0 || ib == i0 {
					continue
				}
				fn(i0, ib, 1.0)
			}
		}
	}
}

// nbrSeg sorts a neighbor segment by vertex index, carrying weights along.
type nbrSeg struct {
	ids []int32
	ws  []float64
}

func (s nbrSeg) Len() int           { return len(s.ids) }
func (s nbrSeg) Less(i, j int) bool { return s.ids[i] < s.ids[j] }
func (s nbrSeg) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.ws[i], s.ws[j] = s.ws[j], s.ws[i]
}

// expandRegions maps a coarse bipartition forest onto the finer level:
// each fine point lands in its cluster's region (cells stay in ascending
// point order), region rectangles carry over, and the per-region net
// lists are rebuilt in one pass over the finer net list (ascending, so
// the splitRegion inheritance invariant holds).
func expandRegions(coarse []*region, parent []int32, coarseN int, fine mlProblem) []*region {
	regionOf := make([]int32, coarseN)
	out := make([]*region, len(coarse))
	for ri, r := range coarse {
		out[ri] = &region{rect: r.rect}
		for _, ci := range r.cells {
			regionOf[ci] = int32(ri)
		}
	}
	pr := make([]int32, fine.n) // fine point -> region index
	for i := 0; i < fine.n; i++ {
		ri := regionOf[parent[i]]
		pr[i] = ri
		out[ri].cells = append(out[ri].cells, i)
		out[ri].area += fine.areas[i]
	}
	cnt := make([]int32, len(out))
	var touched []int32
	for ni, nd := range fine.nets {
		for _, pin := range nd.pins {
			if ci := pinCell(pin); ci >= 0 {
				r := pr[ci]
				if cnt[r] == 0 {
					touched = append(touched, r)
				}
				cnt[r]++
			}
		}
		for _, r := range touched {
			if cnt[r] >= 2 {
				out[r].nets = append(out[r].nets, int32(ni))
			}
			cnt[r] = 0
		}
		touched = touched[:0]
	}
	return out
}
