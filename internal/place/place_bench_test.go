package place

import (
	"context"
	"testing"

	"lily/internal/bench"
	"lily/internal/decomp"
	"lily/internal/logic"
)

// BenchmarkGlobalC5315 places the paper's runtime example: the pre-mapped
// C5315 network (§5 reports ~3 minutes on a DEC3100 for 1892 gates).
func BenchmarkGlobalC5315(b *testing.B) {
	p, _ := bench.ProfileByName("C5315")
	src := bench.Generate(p)
	res, err := decomp.Premap(src)
	if err != nil {
		b.Fatal(err)
	}
	sub := res.Inchoate
	b.ReportMetric(float64(sub.NumLogic()), "gates")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Global(sub, func(logic.NodeID) float64 { return 24 }, 60, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFMPass(b *testing.B) {
	src := bench.Random(8, 30, 15, 400, 4)
	res, err := decomp.Premap(src)
	if err != nil {
		b.Fatal(err)
	}
	sub := res.Inchoate
	// Build a hypergraph over the subject nodes.
	idx := make(map[logic.NodeID]int)
	h := &Hypergraph{}
	for _, nd := range sub.Nodes {
		if nd != nil && nd.Kind == logic.KindLogic {
			idx[nd.ID] = len(h.Areas)
			h.Areas = append(h.Areas, 1)
		}
	}
	for _, nd := range sub.Nodes {
		if nd == nil {
			continue
		}
		var pins []int
		if i, ok := idx[nd.ID]; ok {
			pins = append(pins, i)
		}
		for _, fo := range sub.Fanouts(nd.ID) {
			if i, ok := idx[fo]; ok {
				pins = append(pins, i)
			}
		}
		if len(pins) >= 2 {
			h.Nets = append(h.Nets, pins)
		}
	}
	part := make([]int, len(h.Areas))
	for i := range part {
		part[i] = i % 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := append([]int(nil), part...)
		FM(h, work, 0.1, 2)
	}
}

func BenchmarkCGSolve(b *testing.B) {
	// A 1000-vertex chain anchored at both ends.
	n := 1000
	q := newQuadSystem(n)
	for i := 0; i+1 < n; i++ {
		q.addEdge(i, i+1, 1)
	}
	q.addFixed(0, 1, 0, 0)
	q.addFixed(n-1, 1, 1000, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float64, n)
		if _, err := q.solve(context.Background(), q.rhsX, x, 1e-6, 2000); err != nil {
			b.Fatal(err)
		}
	}
}
