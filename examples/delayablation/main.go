// Delayablation explores the paper's §5 observation that Lily's "dynamic
// wire length estimation procedure is not always accurate" and its proposed
// remedies, on the timing objective (Table 2):
//
//   - base:     Lily delay mode as in the paper's experiments,
//   - replace:  periodic global re-placement of the partially mapped
//     network (§3.2),
//   - fresh:    discard Lily's constructive positions and let the backend
//     re-place the mapped netlist (isolates netlist-structure gains),
//   - twopass:  MIS 2.2-style load recording (§6),
//   - autotune: run the portfolio and keep the best measured delay
//     (the paper's "repeat the mapping" remark, automated).
package main

import (
	"flag"
	"fmt"
	"log"

	"lily"
)

func main() {
	circuits := flag.String("circuits", "C499,duke2,misex3", "comma-separated benchmark names")
	flag.Parse()

	names := splitList(*circuits)
	fmt.Printf("%-8s %9s | %9s %9s %9s %9s %9s\n",
		"circuit", "mis2.1", "base", "replace", "fresh", "twopass", "autotune")
	for _, name := range names {
		c, err := lily.GenerateBenchmark(name)
		if err != nil {
			log.Fatal(err)
		}
		run := func(opt lily.FlowOptions) float64 {
			opt.Objective = lily.ObjectiveDelay
			r, err := lily.RunFlow(c, opt)
			if err != nil {
				log.Fatal(err)
			}
			return r.DelayNS
		}
		mis := run(lily.FlowOptions{Mapper: lily.MapperMIS})
		base := run(lily.FlowOptions{Mapper: lily.MapperLily})
		repl := run(lily.FlowOptions{Mapper: lily.MapperLily, ReplaceEvery: 10})
		fresh := run(lily.FlowOptions{Mapper: lily.MapperLily, RePlaceMapped: true})
		twop := run(lily.FlowOptions{Mapper: lily.MapperLily, TwoPassDelay: true})
		auto := run(lily.FlowOptions{Mapper: lily.MapperLily, AutoTune: true})
		fmt.Printf("%-8s %8.2fns | %8.2fns %8.2fns %8.2fns %8.2fns %8.2fns\n",
			name, mis, base, repl, fresh, twop, auto)
		fmt.Printf("%-8s %9s | %+8.1f%% %+8.1f%% %+8.1f%% %+8.1f%% %+8.1f%%\n",
			"", "", pct(base, mis), pct(repl, mis), pct(fresh, mis), pct(twop, mis), pct(auto, mis))
	}
	fmt.Println("\nNegative percentages beat the MIS 2.1 baseline; the autotune column")
	fmt.Println("shows what the paper's retry remedy achieves automatically.")
}

func pct(v, ref float64) float64 { return (v - ref) / ref * 100 }

func splitList(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
