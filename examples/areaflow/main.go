// Areaflow walks one circuit through the Table-1 area pipeline stage by
// stage, printing what each mapper chose and why the layout metrics end up
// different: gate-size histograms, routing congestion, and the λ wire-cost
// ablation the paper suggests in §5 ("we could repeat the mapping with
// reduced wire cost weight to obtain better solutions").
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"lily"
)

func main() {
	name := flag.String("circuit", "duke2", "benchmark circuit")
	flag.Parse()

	c, err := lily.GenerateBenchmark(*name)
	if err != nil {
		log.Fatal(err)
	}
	st := c.Stats()
	fmt.Printf("=== %s: %d PIs, %d POs, %d nodes ===\n\n", c.Name(), st.PIs, st.POs, st.Nodes)

	fmt.Println("--- stage 1: MIS 2.1 baseline (layout-blind area cover) ---")
	misRes, err := lily.RunFlow(c, lily.FlowOptions{Mapper: lily.MapperMIS, VerifyEquivalence: true})
	if err != nil {
		log.Fatal(err)
	}
	report(misRes)

	fmt.Println("--- stage 2: Lily (wire-aware cover, λ = 1) ---")
	lilyRes, err := lily.RunFlow(c, lily.FlowOptions{Mapper: lily.MapperLily, VerifyEquivalence: true})
	if err != nil {
		log.Fatal(err)
	}
	report(lilyRes)

	fmt.Println("--- stage 3: λ sweep (paper §5: retune the wire weight) ---")
	fmt.Printf("%8s %10s %10s %10s %8s\n", "λ", "gates", "inst mm²", "chip mm²", "WL mm")
	for _, lambda := range []float64{0.25, 0.5, 1.0, 2.0, 4.0} {
		r, err := lily.RunFlow(c, lily.FlowOptions{Mapper: lily.MapperLily, WireWeight: lambda})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.2f %10d %10.3f %10.3f %8.2f\n",
			lambda, r.Gates, r.ActiveAreaMM2, r.ChipAreaMM2, r.WirelengthMM)
	}
	fmt.Println()

	fmt.Println("--- summary ---")
	fmt.Printf("chip area:  MIS %.3f mm² -> Lily %.3f mm² (%+.1f%%)\n",
		misRes.ChipAreaMM2, lilyRes.ChipAreaMM2,
		(lilyRes.ChipAreaMM2-misRes.ChipAreaMM2)/misRes.ChipAreaMM2*100)
	fmt.Printf("wirelength: MIS %.2f mm -> Lily %.2f mm (%+.1f%%)\n",
		misRes.WirelengthMM, lilyRes.WirelengthMM,
		(lilyRes.WirelengthMM-misRes.WirelengthMM)/misRes.WirelengthMM*100)
}

func report(r *lily.FlowResult) {
	fmt.Printf("gates %d over %d subject nodes; %d rows; peak channel density %d\n",
		r.Gates, r.SubjectNodes, r.Rows, r.PeakChannelDensity)
	fmt.Printf("instance %.3f mm², chip %.3f mm², wire %.2f mm\n",
		r.ActiveAreaMM2, r.ChipAreaMM2, r.WirelengthMM)
	var names []string
	for g := range r.GateHistogram {
		names = append(names, g)
	}
	sort.Strings(names)
	fmt.Print("histogram:")
	for _, g := range names {
		fmt.Printf(" %s:%d", g, r.GateHistogram[g])
	}
	fmt.Println()
	fmt.Println()
}
