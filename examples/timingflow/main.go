// Timingflow runs the Table-2 delay pipeline on one circuit and prints the
// critical path both mappers produce, showing how Lily's positional wiring
// capacitance (§4.2) changes gate selection along the worst path.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"lily"
)

func main() {
	name := flag.String("circuit", "C1908", "benchmark circuit")
	flag.Parse()

	c, err := lily.GenerateBenchmark(*name)
	if err != nil {
		log.Fatal(err)
	}
	st := c.Stats()
	fmt.Printf("=== %s: %d PIs, %d POs, %d nodes, depth %d ===\n\n",
		c.Name(), st.PIs, st.POs, st.Nodes, st.Depth)

	run := func(m lily.Mapper) *lily.FlowResult {
		r, err := lily.RunFlow(c, lily.FlowOptions{
			Mapper:            m,
			Objective:         lily.ObjectiveDelay,
			VerifyEquivalence: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	misRes := run(lily.MapperMIS)
	lilyRes := run(lily.MapperLily)

	show := func(label string, r *lily.FlowResult) {
		fmt.Printf("--- %s ---\n", label)
		fmt.Printf("longest path %.2f ns over %d stages; instance %.3f mm²; wire %.2f mm\n",
			r.DelayNS, len(r.CriticalPath)-1, r.ActiveAreaMM2, r.WirelengthMM)
		path := r.CriticalPath
		if len(path) > 12 {
			path = append(append([]string{}, path[:6]...),
				append([]string{fmt.Sprintf("... %d more ...", len(r.CriticalPath)-12)},
					path[len(path)-6:]...)...)
		}
		fmt.Printf("critical path: %s\n\n", strings.Join(path, " -> "))
	}
	show("MIS 2.1, timing mode (fanout-count load model)", misRes)
	show("Lily, timing mode (positional wiring capacitance)", lilyRes)

	fmt.Printf("delay change: %+.1f%% (paper's Table 2 average: -8%%)\n",
		(lilyRes.DelayNS-misRes.DelayNS)/misRes.DelayNS*100)
}
