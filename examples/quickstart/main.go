// Quickstart: generate a benchmark circuit, run both mapping pipelines,
// and compare the layout metrics the paper reports.
package main

import (
	"fmt"
	"log"

	"lily"
)

func main() {
	// 1. Get a circuit. GenerateBenchmark builds the synthetic stand-in
	//    for one of the paper's MCNC circuits; LoadBLIF reads your own.
	c, err := lily.GenerateBenchmark("C880")
	if err != nil {
		log.Fatal(err)
	}
	st := c.Stats()
	fmt.Printf("circuit %s: %d inputs, %d outputs, %d nodes, depth %d\n\n",
		c.Name(), st.PIs, st.POs, st.Nodes, st.Depth)

	// 2. Run the layout-blind MIS 2.1 baseline.
	misRes, err := lily.RunFlow(c, lily.FlowOptions{
		Mapper:            lily.MapperMIS,
		Objective:         lily.ObjectiveArea,
		VerifyEquivalence: true, // simulate mapped netlist against source
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run Lily, the layout-driven mapper.
	lilyRes, err := lily.RunFlow(c, lily.FlowOptions{
		Mapper:            lily.MapperLily,
		Objective:         lily.ObjectiveArea,
		VerifyEquivalence: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Compare.
	fmt.Printf("%-22s %12s %12s\n", "", "MIS 2.1", "Lily")
	row := func(label string, m, l float64, unit string) {
		fmt.Printf("%-22s %9.3f %s %9.3f %s (%+.1f%%)\n", label, m, unit, l, unit, (l-m)/m*100)
	}
	fmt.Printf("%-22s %12d %12d\n", "gates", misRes.Gates, lilyRes.Gates)
	row("instance area", misRes.ActiveAreaMM2, lilyRes.ActiveAreaMM2, "mm²")
	row("chip area", misRes.ChipAreaMM2, lilyRes.ChipAreaMM2, "mm²")
	row("wirelength", misRes.WirelengthMM, lilyRes.WirelengthMM, "mm ")
	row("longest path", misRes.DelayNS, lilyRes.DelayNS, "ns ")
	fmt.Printf("\nLily processed %d cones with %d logic duplications.\n",
		lilyRes.LilyConesProcessed, lilyRes.LilyReincarnations)
}
