// Distribution points (paper Figure 1.1).
//
// Part 1 reproduces Figure 1.1(a): signals from k sources must reach a sink
// through AND logic. A traditional mapper always picks one big gate (one
// "distribution point"); when the sources are spread across the layout
// plane, an optimal solution uses more than one distribution point — the
// total wire length is minimized at some k > 1 even though active gate
// area grows. With few sources, k = 1 wins both metrics, which is why
// layout-blind mapping is fine for small fanin counts.
//
// Part 2 demonstrates Figure 1.1(b) on a real circuit: a decomposition
// that conflicts with the placement robs the mapper of the option to split
// big matches, so layout-driven decomposition plus Lily beats balanced
// decomposition plus Lily on interconnect.
package main

import (
	"fmt"
	"log"
	"math"

	"lily"
)

// point is a location on the abstract layout plane (µm).
type point struct{ x, y float64 }

func dist(a, b point) float64 { return math.Abs(a.x-b.x) + math.Abs(a.y-b.y) }

func centroid(ps []point) point {
	var c point
	for _, p := range ps {
		c.x += p.x
		c.y += p.y
	}
	c.x /= float64(len(ps))
	c.y /= float64(len(ps))
	return c
}

// wireCost computes the total Manhattan wire length of implementing
// AND(sources) -> sink with k distribution gates: sources are split into k
// contiguous clusters, each cluster gets an AND gate at its centroid, and a
// final combining gate (for k > 1) sits at the centroid of the cluster
// gates before driving the sink.
func wireCost(sources []point, sink point, k int) (wire, gates float64) {
	n := len(sources)
	per := (n + k - 1) / k
	var gatePts []point
	for i := 0; i < n; i += per {
		end := i + per
		if end > n {
			end = n
		}
		cluster := sources[i:end]
		g := centroid(cluster)
		for _, s := range cluster {
			wire += dist(s, g)
		}
		gatePts = append(gatePts, g)
		gates += 1 + 0.35*float64(len(cluster)) // area grows with fanin
	}
	if len(gatePts) == 1 {
		return wire + dist(gatePts[0], sink), gates
	}
	comb := centroid(gatePts)
	for _, g := range gatePts {
		wire += dist(g, comb)
	}
	wire += dist(comb, sink)
	gates += 1 + 0.35*float64(len(gatePts))
	return wire, gates
}

func part1() {
	fmt.Println("Figure 1.1(a): distribution points vs wire cost")
	fmt.Println()

	sink := point{500, 250}
	scenarios := []struct {
		name    string
		sources []point
	}{
		{"3 clustered sources", []point{{0, 240}, {0, 250}, {0, 260}}},
		{"6 spread sources", []point{
			{0, 0}, {10, 20}, {20, 10}, // cluster A: bottom-left
			{0, 500}, {10, 480}, {20, 490}, // cluster B: top-left
		}},
		{"9 very spread sources", []point{
			{0, 0}, {15, 10}, {5, 25},
			{0, 500}, {15, 490}, {5, 475},
			{250, 0}, {260, 15}, {245, 10},
		}},
	}
	for _, sc := range scenarios {
		fmt.Printf("  %s (sink at %.0f,%.0f):\n", sc.name, sink.x, sink.y)
		bestK, bestW := 0, math.MaxFloat64
		for k := 1; k <= 4 && k <= len(sc.sources); k++ {
			w, g := wireCost(sc.sources, sink, k)
			marker := ""
			if w < bestW {
				bestK, bestW = k, w
				marker = " <-"
			}
			fmt.Printf("    k=%d distribution points: wire %7.1f µm, gate area %5.2f units%s\n",
				k, w, g, marker)
		}
		fmt.Printf("    optimum k = %d\n\n", bestK)
	}
	fmt.Println("  With clustered sources one big gate wins; with spread sources the")
	fmt.Println("  minimum-wire solution uses several smaller gates — information only a")
	fmt.Println("  placement-aware mapper has.")
	fmt.Println()
}

func part2() {
	fmt.Println("Figure 1.1(b): balanced vs layout-driven decomposition (Lily mapper)")
	fmt.Println()
	for _, name := range []string{"C880", "duke2", "e64"} {
		c, err := lily.GenerateBenchmark(name)
		if err != nil {
			log.Fatal(err)
		}
		balanced, err := lily.RunFlow(c, lily.FlowOptions{Mapper: lily.MapperLily})
		if err != nil {
			log.Fatal(err)
		}
		placed, err := lily.RunFlow(c, lily.FlowOptions{
			Mapper:                    lily.MapperLily,
			LayoutDrivenDecomposition: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s balanced: %6.2f mm wire, %.3f mm² chip | layout-driven: %6.2f mm, %.3f mm² (%+.1f%% wire)\n",
			name, balanced.WirelengthMM, balanced.ChipAreaMM2,
			placed.WirelengthMM, placed.ChipAreaMM2,
			(placed.WirelengthMM-balanced.WirelengthMM)/balanced.WirelengthMM*100)
	}
}

func main() {
	part1()
	part2()
}
