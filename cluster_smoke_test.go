// Cluster smoke test: the distributed subsystem's end-to-end acceptance.
// Three in-process lilyd-equivalent nodes (engine + cluster layer + HTTP
// server, wired exactly as cmd/lilyd does) serve the full benchmark
// suite through the batch API, and every mapped-BLIF SHA-256 must match
// testdata/golden.json no matter which node served the request or which
// tier (local compute, proxied compute, peer cache) produced it — the
// determinism argument of DESIGN.md §12, asserted byte for byte. Then an
// owner node is killed and its digests must still complete, degraded to
// another node's compute, with the spill visible in the survivor's
// counters.
//
// `make cluster-smoke` runs exactly this test; CI runs it as its own job.
package lily_test

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"lily"
	"lily/internal/cluster"
	"lily/internal/engine"
	"lily/internal/server"
)

func sha256Hex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// smokeNode is one in-process cluster member.
type smokeNode struct {
	id      string
	ts      *httptest.Server
	handler atomic.Value // of smokeHandler
	eng     *engine.Engine
	clu     *cluster.Cluster
}

// smokeHandler gives atomic.Value one concrete type across swaps.
type smokeHandler struct{ h http.Handler }

// newSmokeTrio wires three nodes the way three lilyd processes with the
// same -peers flags would be: shared metrics registry per node, cluster
// Remote hook on each engine, cluster-aware HTTP server.
func newSmokeTrio(t *testing.T) []*smokeNode {
	t.Helper()
	ids := []string{"n1", "n2", "n3"}
	nodes := make([]*smokeNode, len(ids))
	for i, id := range ids {
		n := &smokeNode{id: id}
		n.handler.Store(smokeHandler{http.NotFoundHandler()})
		n.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			n.handler.Load().(smokeHandler).h.ServeHTTP(w, r)
		}))
		nodes[i] = n
	}
	for i, n := range nodes {
		var peers []cluster.Node
		for j, p := range nodes {
			if j != i {
				peers = append(peers, cluster.Node{ID: p.id, URL: p.ts.URL})
			}
		}
		clu, err := cluster.New(cluster.Config{
			Self:          n.id,
			Peers:         peers,
			ProbeInterval: 100 * time.Millisecond,
			PeekTimeout:   5 * time.Second,
			ProxyTimeout:  10 * time.Minute,
		})
		if err != nil {
			t.Fatalf("cluster.New(%s): %v", n.id, err)
		}
		n.clu = clu
		n.eng = engine.New(engine.Config{
			Workers: 2,
			Metrics: clu.Registry(),
			Remote:  clu.Remote,
		})
		n.handler.Store(smokeHandler{server.New(n.eng, server.WithCluster(clu))})
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.ts.Close()
			n.clu.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			_ = n.eng.Shutdown(ctx)
			cancel()
		}
	})
	return nodes
}

// suiteBatch builds the batch request covering every benchmark circuit in
// both objectives (honoring -short), with emit_blif so each stream line
// carries the golden hash.
func suiteBatch(t *testing.T) (server.BatchSubmitRequest, []string) {
	t.Helper()
	circuits := lily.BenchmarkNames()
	sort.Strings(circuits)
	var req server.BatchSubmitRequest
	var keys []string
	for _, circuit := range circuits {
		if testing.Short() && shortSkip[circuit] {
			continue
		}
		for _, obj := range []struct {
			name string
			obj  lily.Objective
		}{{"area", lily.ObjectiveArea}, {"delay", lily.ObjectiveDelay}} {
			req.Jobs = append(req.Jobs, server.SubmitRequest{
				Benchmark: circuit,
				EmitBLIF:  true,
				// Parallelism exercises the wave-parallel mapper through
				// the whole cluster path; the golden hashes below prove
				// it changes nothing in the bytes.
				Options: server.JobOptions{Mapper: "lily", Objective: obj.name, Parallelism: 2},
			})
			keys = append(keys, goldenKey(circuit, obj.obj))
		}
	}
	return req, keys
}

// lutSuiteBatch builds the suite batch at target=lut4 in area mode (the
// pinned LUT goldens), with emit_blif so each stream line carries the
// golden hash. The LUT backend rides the same distribution machinery as
// ASIC mapping: same digest routing, same cache tiers.
func lutSuiteBatch(t *testing.T) (server.BatchSubmitRequest, []string) {
	t.Helper()
	circuits := lily.BenchmarkNames()
	sort.Strings(circuits)
	var req server.BatchSubmitRequest
	var keys []string
	for _, circuit := range circuits {
		if testing.Short() && shortSkip[circuit] {
			continue
		}
		req.Jobs = append(req.Jobs, server.SubmitRequest{
			Benchmark: circuit,
			EmitBLIF:  true,
			Options: server.JobOptions{
				Mapper: "lily", Objective: "area", Target: "lut4", Parallelism: 2},
		})
		keys = append(keys, lutGoldenKey(circuit, lily.ObjectiveArea, lily.TargetLUT4))
	}
	return req, keys
}

// runSuiteBatch submits the suite to one node and returns the stream
// lines keyed by job index, plus the submit ack.
func runSuiteBatch(t *testing.T, ts *httptest.Server, req server.BatchSubmitRequest) (server.BatchSubmitResponse, map[int]server.BatchResult) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/batches", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch submit status = %d, want 202", resp.StatusCode)
	}
	var ack server.BatchSubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	sr, err := http.Get(ts.URL + ack.Stream)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	if sr.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d, want 200", sr.StatusCode)
	}
	results := make(map[int]server.BatchResult, len(req.Jobs))
	sc := bufio.NewScanner(sr.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		var line server.BatchResult
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad stream line: %v", err)
		}
		results[line.Index] = line
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(results) != len(req.Jobs) {
		t.Fatalf("streamed %d of %d results", len(results), len(req.Jobs))
	}
	return ack, results
}

// assertGoldenResults checks every stream line terminated successfully
// with the pinned mapped-BLIF hash for its (circuit, objective).
func assertGoldenResults(t *testing.T, node string, keys []string, results map[int]server.BatchResult, goldens map[string]goldenEntry) {
	t.Helper()
	for i, key := range keys {
		line, ok := results[i]
		if !ok {
			t.Errorf("[%s] %s: missing from stream", node, key)
			continue
		}
		if line.State != "done" {
			t.Errorf("[%s] %s: finished %s (%s), want done", node, key, line.State, line.Error)
			continue
		}
		want, ok := goldens[key]
		if !ok {
			t.Fatalf("no golden for %s", key)
		}
		if line.BLIFSHA256 != want.BLIFSHA256 {
			t.Errorf("[%s] %s: mapped BLIF hash drifted across the cluster:\n got %s\nwant %s",
				node, key, line.BLIFSHA256, want.BLIFSHA256)
		}
		if line.Result == nil || line.Result.Gates != want.Gates {
			t.Errorf("[%s] %s: gates drifted: %+v, want %d", node, key, line.Result, want.Gates)
		}
	}
}

func TestClusterSmoke(t *testing.T) {
	goldens := loadGoldens(t)
	nodes := newSmokeTrio(t)
	n1, n2, n3 := nodes[0], nodes[1], nodes[2]
	ring := n1.clu.Nodes()
	req, keys := suiteBatch(t)

	// Round 1 via n1: first sight of every digest — computed distributed,
	// each job at its HRW owner.
	ack, results := runSuiteBatch(t, n1.ts, req)
	assertGoldenResults(t, "n1", keys, results, goldens)

	// The suite must actually have been distributed: with 3 nodes, some
	// digests are owned elsewhere, so n1 proxied or spilled — it cannot
	// have computed everything without the cluster noticing.
	if info := n1.clu.Info(); info.Proxied == 0 {
		t.Errorf("round 1 proxied nothing — suite was not distributed: %+v", info)
	}

	// Rounds 2 and 3 via the other nodes: every digest is now cached at
	// its owner, so these exercise the shared cache tier (remote peeks
	// and local hits), and the bytes must not change.
	_, results2 := runSuiteBatch(t, n2.ts, req)
	assertGoldenResults(t, "n2", keys, results2, goldens)
	_, results3 := runSuiteBatch(t, n3.ts, req)
	assertGoldenResults(t, "n3", keys, results3, goldens)
	if info := n3.clu.Info(); info.RemoteHits == 0 {
		t.Errorf("round 3 hit no peer caches — cache tier not shared: %+v", info)
	}
	if hits := n2.eng.Stats().CacheHits + n2.eng.Stats().RemoteHits; hits == 0 {
		t.Errorf("round 2 recomputed everything — no tier served n2")
	}

	// Round 4: the suite again at target=lut4. Different target ⇒
	// different digests ⇒ fresh distributed compute, and every hash must
	// match the pinned LUT goldens no matter which node produced it.
	lutReq, lutKeys := lutSuiteBatch(t)
	_, lutResults := runSuiteBatch(t, n2.ts, lutReq)
	assertGoldenResults(t, "n2/lut4", lutKeys, lutResults, goldens)

	// Kill an owner: pick a job n2 owns (from the round-1 refs), close
	// n2, and resubmit it to n1 alone. The job must still complete with
	// the golden hash — degraded to another node's compute — and the
	// spill must be observable on n1.
	victim := -1
	for _, ref := range ack.Refs {
		if cluster.Owner(ref.Digest, ring) == "n2" {
			victim = ref.Index
			break
		}
	}
	if victim < 0 {
		t.Fatalf("no suite digest owned by n2 (ring %v)", ring)
	}
	n2.ts.Close()
	// Evict the victim from n1's local cache awareness by... it IS still
	// in n1's local LRU from round 1, which would short-circuit the walk.
	// Use a fresh engine-level path instead: ask n1's cluster layer
	// directly, as its engine would on a cache miss.
	spillsBefore := n1.clu.Info().Spills
	circ, err := lily.GenerateBenchmark(req.Jobs[victim].Benchmark)
	if err != nil {
		t.Fatal(err)
	}
	obj := lily.ObjectiveArea
	if req.Jobs[victim].Options.Objective == "delay" {
		obj = lily.ObjectiveDelay
	}
	ereq := engine.Request{
		Benchmark: req.Jobs[victim].Benchmark,
		EmitBLIF:  true,
		Options:   lily.FlowOptions{Mapper: lily.MapperLily, Objective: obj},
	}
	digest := ack.Refs[victim].Digest
	out, rerr := n1.clu.Remote(context.Background(), digest, circ, ereq)
	if rerr != nil {
		t.Fatalf("Remote after owner death errored: %v — must degrade, not fail", rerr)
	}
	// (nil, nil) = "compute locally" is the expected degradation when the
	// spill walk reaches n1's own slot; a non-nil outcome means n3 served
	// it. Both are success — the job never fails.
	if out != nil && len(out.MappedBLIF) > 0 {
		key := goldenKey(req.Jobs[victim].Benchmark, obj)
		sum := sha256Hex(out.MappedBLIF)
		if sum != goldens[key].BLIFSHA256 {
			t.Errorf("degraded result hash drifted for %s: got %s want %s", key, sum, goldens[key].BLIFSHA256)
		}
	}
	if spills := n1.clu.Info().Spills; spills <= spillsBefore {
		t.Errorf("dead owner produced no spill on n1 (before %d, after %d)", spillsBefore, spills)
	}

	// And the full HTTP path still works with the dead node: resubmit the
	// victim job as a one-job batch to n1 — golden hash, no failure.
	oneJob := server.BatchSubmitRequest{Jobs: []server.SubmitRequest{req.Jobs[victim]}}
	_, degraded := runSuiteBatch(t, n1.ts, oneJob)
	key := goldenKey(req.Jobs[victim].Benchmark, obj)
	if line := degraded[0]; line.State != "done" || line.BLIFSHA256 != goldens[key].BLIFSHA256 {
		t.Errorf("degraded batch job: state=%s hash=%s, want done with %s",
			line.State, line.BLIFSHA256, goldens[key].BLIFSHA256)
	}
}
