//go:build race

package lily_test

// raceEnabled reports whether the race detector is compiled in. The
// scale smoke test excludes itself under -race: the detector's ~10x
// slowdown on a 100k-gate pipeline tells us nothing the race-lifecycle
// CI job (which runs the concurrency suites under -race directly)
// doesn't, and would blow the wall-clock budget the test exists to pin.
const raceEnabled = true
